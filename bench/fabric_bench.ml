(* Fabric/allocator scaling benchmark.

   Emits a machine-readable BENCH_fabric.json (ops/sec per subject) so
   successive PRs can track the perf trajectory of the allocation hot
   path (the §3.2-Q3 "enforcement overhead" cost model).

   Subjects:
   - allocate-{64,512,4096}: one Fairshare.allocate call over n demands
     with overlapping usages on a 96-resource pool (distinct weights and
     caps so the filling front hits many separate events).
   - flow-churn-{256,4096}: one start_flow + stop_flow pair against a
     dgx-like fabric carrying that many GPU->local-NIC flows. The eight
     gpu_i->nic_i paths are link-disjoint, so the churned flow's
     contention component holds ~n/8 flows — the case incremental,
     component-scoped reallocation is built for.
   - flow-churn-coupled-4096: same, but every background flow crosses
     switch/socket boundaries (gpu_i->nic_{i+3 mod 8}), welding the
     whole host into one contention component. Worst case: the
     component IS the full flow set, so only the allocator speedup
     shows, not the scoping.

   Usage: fabric_bench [--smoke] [-o FILE] [--subject NAME]...
   --smoke runs every subject exactly once (CI liveness check) and
   writes no file. --subject restricts the run to the named subject(s)
   (repeatable) — used by the CI bench-regression smoke step to time
   only the sentinel subject. *)

module U = Ihnet_util
module E = Ihnet_engine
module T = Ihnet_topology
module M = Ihnet_manager
module Mon = Ihnet_monitor
module Rec = Ihnet_record
module F = Ihnet_fleet
module Api = Ihnet_api

let usage () =
  prerr_endline "usage: fabric_bench [--smoke] [-o FILE] [--subject NAME]...";
  exit 2

let smoke, out_file, only =
  let smoke = ref false and out = ref "BENCH_fabric.json" and only = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--smoke" ->
          smoke := true;
          parse (i + 1)
      | "-o" when i + 1 < Array.length Sys.argv ->
          out := Sys.argv.(i + 1);
          parse (i + 2)
      | "--subject" when i + 1 < Array.length Sys.argv ->
          only := Sys.argv.(i + 1) :: !only;
          parse (i + 2)
      | a ->
          Printf.eprintf "fabric_bench: unknown or incomplete argument %S\n" a;
          usage ()
  in
  parse 1;
  (!smoke, !out, !only)

(* ops/sec of [f], adaptively iterated; one shot in smoke mode *)
let time_ops f =
  if smoke then begin
    ignore (f ());
    0.0
  end
  else begin
    ignore (f ());
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let min_time = 0.5 and min_iters = 5 in
    while
      let dt = Unix.gettimeofday () -. t0 in
      dt < min_time || !iters < min_iters
    do
      ignore (f ());
      incr iters
    done;
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int !iters /. dt
  end

(* {1 allocate-n: the bare allocator} *)

let make_demands n =
  let nr = 96 in
  Array.init n (fun i ->
      {
        E.Fairshare.weight = 1.0 +. (0.01 *. float_of_int (i mod 37));
        floor = 0.01;
        cap = (if i mod 4 = 0 then 5.0 +. (0.37 *. float_of_int (i mod 59)) else infinity);
        usage =
          [
            (i mod nr, 1.0);
            ((i * 7) + 1 mod nr, 1.1);
            (((i * 13) + 5) mod nr, 1.0);
          ]
          |> List.map (fun (r, c) -> (r mod nr, c));
      })

let bench_allocate n =
  let capacities = Array.init 96 (fun r -> 80.0 +. float_of_int (r mod 7)) in
  let demands = make_demands n in
  time_ops (fun () -> Sys.opaque_identity (E.Fairshare.allocate ~capacities demands))

(* {1 flow-churn-n: start/stop against a loaded fabric} *)

let bench_churn ?domains ?warm ?(wire = fun _ -> ()) ~nic_of n =
  let topo = T.Builder.dgx_like () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ?domains ?warm sim topo in
  wire fab;
  let dev name =
    match T.Topology.device_by_name topo name with
    | Some d -> d.T.Device.id
    | None -> failwith ("fabric_bench: no device " ^ name)
  in
  let paths =
    List.init 8 (fun i ->
        let src = Printf.sprintf "gpu%d" i and dst = Printf.sprintf "nic%d" (nic_of i) in
        Option.get (T.Routing.shortest_path topo (dev src) (dev dst)))
    |> Array.of_list
  in
  E.Fabric.batch fab (fun () ->
      for i = 0 to n - 1 do
        ignore
          (E.Fabric.start_flow fab ~tenant:(1 + (i mod 16))
             ~weight:(1.0 +. float_of_int (i mod 3))
             ~path:paths.(i mod Array.length paths)
             ~size:E.Flow.Unbounded ())
      done);
  let churn_path = paths.(0) in
  time_ops (fun () ->
      let f = E.Fabric.start_flow fab ~tenant:99 ~path:churn_path ~size:E.Flow.Unbounded () in
      E.Fabric.stop_flow fab f)

let bench_churn_local n = bench_churn ~nic_of:Fun.id n
let bench_churn_coupled n = bench_churn ~nic_of:(fun i -> (i + 3) mod 8) n

(* flow-churn-warm-4096 pins warm-starting on regardless of IHNET_WARM,
   so the snapshot always carries one explicitly-warm churn subject to
   hold against [baseline_pre_warmstart]. *)
let bench_churn_warm n = bench_churn ~warm:true ~nic_of:Fun.id n

(* flow-churn-sketch-4096 is flow-churn-4096 with the always-on
   latency-sketch plane recording at every reallocation epoch — the
   "active" half of the sketch perf contract (stay within noise of the
   dormant run; the gate tolerance absorbs runner jitter). *)
let bench_churn_sketch n = bench_churn ~wire:E.Fabric.enable_latency_sketches ~nic_of:Fun.id n

(* flow-churn-coupled-par-* runs the coupled (single giant component)
   churn at pool widths 1/2/4. One component cannot shard, so these
   measure the domain pool's overhead on the worst case — the contract
   is parity with flow-churn-coupled-4096, not speedup — while the
   determinism contract keeps all three bit-identical. *)
let bench_churn_coupled_par ~domains n =
  bench_churn ~domains ~nic_of:(fun i -> (i + 3) mod 8) n

(* {1 flow-churn-par-*: domain-parallel reallocation}

   Same dgx fabric and link-disjoint gpu_i->nic_i background load as
   flow-churn, but each op batches one start+stop per disjoint path, so
   a single reallocation carries all eight contention components —
   exactly the shape Fabric's domain pool shards. The -seq/-2/-4
   variants differ only in the fabric's [~domains]; the determinism
   contract says their rate tables are bit-identical, so any rate delta
   is pure wall-clock scaling (on a 1-core runner expect parity, not
   speedup). *)

let bench_churn_par ~domains n =
  let topo = T.Builder.dgx_like () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~domains sim topo in
  let dev name =
    match T.Topology.device_by_name topo name with
    | Some d -> d.T.Device.id
    | None -> failwith ("fabric_bench: no device " ^ name)
  in
  let paths =
    List.init 8 (fun i ->
        let src = Printf.sprintf "gpu%d" i and dst = Printf.sprintf "nic%d" i in
        Option.get (T.Routing.shortest_path topo (dev src) (dev dst)))
    |> Array.of_list
  in
  E.Fabric.batch fab (fun () ->
      for i = 0 to n - 1 do
        ignore
          (E.Fabric.start_flow fab ~tenant:(1 + (i mod 16))
             ~weight:(1.0 +. float_of_int (i mod 3))
             ~path:paths.(i mod Array.length paths)
             ~size:E.Flow.Unbounded ())
      done);
  time_ops (fun () ->
      let churned =
        ref []
      in
      E.Fabric.batch fab (fun () ->
          Array.iter
            (fun path ->
              churned :=
                E.Fabric.start_flow fab ~tenant:99 ~path ~size:E.Flow.Unbounded () :: !churned)
            paths);
      E.Fabric.batch fab (fun () -> List.iter (E.Fabric.stop_flow fab) !churned))

(* {1 allocate-par-*: the bare allocator over disjoint banks}

   Eight independent allocation problems (disjoint resource ranges, no
   shared state), solved inline vs fanned out over a domain pool. This
   isolates Pool.map's dispatch overhead and its best-case scaling from
   everything fabric-specific. *)

let bench_allocate_par ~domains n =
  let banks = 8 in
  let per = n / banks in
  let capacities = Array.init 96 (fun r -> 80.0 +. float_of_int (r mod 7)) in
  let demand_banks = Array.init banks (fun _ -> make_demands per) in
  let pool = if domains > 1 then Some (U.Pool.get domains) else None in
  time_ops (fun () ->
      let solve i = E.Fairshare.allocate ~capacities demand_banks.(i) in
      let results =
        match pool with
        | Some p -> U.Pool.map p banks solve
        | None -> Array.init banks solve
      in
      Sys.opaque_identity results)

(* {1 remediation-idle: the supervisor must be free when nothing is
   broken}

   A managed two-socket host with guaranteed pipes and live flows runs
   50 simulated ms twice — without and with the remediation loop — and
   no fault is ever injected. The loop must take zero actions and leave
   the fabric's reallocation count and the arbiter's decision count
   exactly unchanged (deterministic, not a timing judgement; it holds
   in --smoke too). The reported rate is then simulated-ms/sec with the
   idle supervisor ticking. *)

let make_managed_host ?(wire = fun _ -> ()) () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  wire fab;
  let mgr = M.Manager.create fab () in
  List.iter
    (fun intent ->
      match M.Manager.submit mgr intent with
      | Ok ps ->
        List.iter
          (fun (p : M.Placement.t) ->
            let f =
              E.Fabric.start_flow fab ~tenant:p.M.Placement.tenant
                ~demand:p.M.Placement.rate ~path:p.M.Placement.path ~size:E.Flow.Unbounded ()
            in
            ignore (M.Manager.attach mgr f))
          ps
      | Error e -> failwith ("fabric_bench: admission refused: " ^ M.Mgr_error.to_string e))
    [
      M.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:8e9;
      M.Intent.pipe ~tenant:2 ~src:"gpu0" ~dst:"socket0" ~rate:4e9;
      M.Intent.pipe ~tenant:3 ~src:"ext" ~dst:"socket1" ~rate:6e9;
    ];
  M.Manager.start_shim mgr ~period:5e4;
  (sim, fab, mgr)

let bench_remediation_idle () =
  let measure ~remediate =
    let sim, fab, mgr = make_managed_host () in
    let rem =
      if remediate then begin
        let r = M.Remediation.create mgr in
        M.Remediation.start r;
        Some r
      end
      else None
    in
    E.Sim.run ~until:50e6 sim;
    ((E.Fabric.reallocations fab, M.Manager.decisions mgr), rem, sim)
  in
  let baseline, _, _ = measure ~remediate:false in
  let supervised, rem, sim = measure ~remediate:true in
  (match rem with
  | Some r when M.Remediation.actions_count r > 0 ->
    failwith
      (Printf.sprintf "remediation-idle: %d action(s) taken with no fault injected"
         (M.Remediation.actions_count r))
  | _ -> ());
  if supervised <> baseline then
    failwith
      (Printf.sprintf
         "remediation-idle: fault-free overhead detected — %d reallocations/%d decisions \
          without the loop, %d/%d with it"
         (fst baseline) (snd baseline) (fst supervised) (snd supervised));
  (* rate: simulated ms advanced per wall second with the loop idle *)
  let t = ref (E.Sim.now sim) in
  time_ops (fun () ->
      t := !t +. 1e6;
      E.Sim.run ~until:!t sim)

(* {1 recorder-idle: the flight-recorder hooks must be free when no
   recorder is attached, and an active recorder must observe without
   steering}

   Three identical 50 ms managed-host runs: bare, with a recorder
   attached and immediately stopped (dormant listener, cleared
   dispatch tap), and with a recorder streaming the whole run into a
   buffer. All three must leave the reallocation and decision counts
   exactly equal — recording is passive, and recording-off costs only
   the emptiness checks the compiler already paid for. The reported
   rate is simulated-ms/sec with the dormant recorder in place. *)

let bench_recorder_idle () =
  let signature wire =
    let sim, fab, mgr = make_managed_host ~wire () in
    E.Sim.run ~until:50e6 sim;
    ((E.Fabric.reallocations fab, M.Manager.decisions mgr), sim)
  in
  let baseline, _ = signature (fun _ -> ()) in
  let stopped, sim =
    signature (fun fab ->
        let buf = Buffer.create 256 in
        Rec.Recorder.stop (Rec.Recorder.attach ~sink:(Rec.Recorder.buffer_sink buf) fab))
  in
  let buf = Buffer.create 65536 in
  let recording, _ =
    signature (fun fab ->
        ignore (Rec.Recorder.attach ~label:"bench" ~sink:(Rec.Recorder.buffer_sink buf) fab))
  in
  if stopped <> baseline then
    failwith
      (Printf.sprintf
         "recorder-idle: dormant recorder changed the run — %d reallocations/%d decisions bare, \
          %d/%d with it"
         (fst baseline) (snd baseline) (fst stopped) (snd stopped));
  if recording <> baseline then
    failwith
      (Printf.sprintf
         "recorder-idle: active recording steered the run — %d reallocations/%d decisions bare, \
          %d/%d recording"
         (fst baseline) (snd baseline) (fst recording) (snd recording));
  if Buffer.length buf = 0 then failwith "recorder-idle: active recorder captured nothing";
  let t = ref (E.Sim.now sim) in
  time_ops (fun () ->
      t := !t +. 1e6;
      E.Sim.run ~until:!t sim)

(* {1 evidence-idle: the corroboration gate must be free when every
   sensor is honest}

   Two identical 50 ms supervised runs with no fault and no lying
   sensor: one with the bare remediation loop, one with an evidence
   gate installed (and its fabric subscription live). Both must take
   zero actions and leave reallocation and decision counts exactly
   equal — with no detector reports the gate's verdict path is a hash
   lookup that never fires, and its fabric listener only reacts to
   fault events that never come. The reported rate is simulated-ms/sec
   with the gated supervisor ticking. *)

let bench_evidence_idle () =
  let measure ~gated =
    let sim, fab, mgr = make_managed_host () in
    let rem = M.Remediation.create mgr in
    if gated then begin
      let ev = Mon.Evidence.create fab in
      M.Remediation.set_gate rem (Mon.Evidence.gate ev)
    end;
    M.Remediation.start rem;
    E.Sim.run ~until:50e6 sim;
    ((E.Fabric.reallocations fab, M.Manager.decisions mgr), rem, sim)
  in
  let baseline, rem0, _ = measure ~gated:false in
  let gated, rem1, sim = measure ~gated:true in
  List.iter
    (fun (label, r) ->
      if M.Remediation.actions_count r > 0 then
        failwith
          (Printf.sprintf "evidence-idle: %d action(s) taken with no fault injected (%s)"
             (M.Remediation.actions_count r) label))
    [ ("ungated", rem0); ("gated", rem1) ];
  if gated <> baseline then
    failwith
      (Printf.sprintf
         "evidence-idle: fault-free gate overhead detected — %d reallocations/%d decisions \
          ungated, %d/%d gated"
         (fst baseline) (snd baseline) (fst gated) (snd gated));
  let t = ref (E.Sim.now sim) in
  time_ops (fun () ->
      t := !t +. 1e6;
      E.Sim.run ~until:!t sim)

(* {1 sketch-idle: the always-on sketch plane must observe without
   steering}

   Two identical 50 ms managed-host runs — one bare, one with the
   latency-sketch plane enabled — must leave the reallocation and
   decision counts exactly equal: recording is pure observation (no
   RNG, no events, no rate mutation), so an enabled plane cannot
   perturb the run, and a dormant one costs only a None check
   (deterministic, not a timing judgement; it holds in --smoke too).
   The active run must also have actually recorded samples — a plane
   optimized into a no-op would pass the equality vacuously. The
   reported rate is simulated-ms/sec with the plane recording. *)

let bench_sketch_idle () =
  let measure wire =
    let sim, fab, mgr = make_managed_host ~wire () in
    E.Sim.run ~until:50e6 sim;
    ((E.Fabric.reallocations fab, M.Manager.decisions mgr), fab, sim)
  in
  let baseline, _, _ = measure (fun _ -> ()) in
  let sketched, fab, sim = measure E.Fabric.enable_latency_sketches in
  if sketched <> baseline then
    failwith
      (Printf.sprintf
         "sketch-idle: sketch plane steered the run — %d reallocations/%d decisions bare, \
          %d/%d with it"
         (fst baseline) (snd baseline) (fst sketched) (snd sketched));
  let samples = ref 0 in
  List.iter
    (fun (l : T.Link.t) ->
      List.iter
        (fun dir ->
          match E.Fabric.link_latency_sketch fab l.T.Link.id dir with
          | Some sk -> samples := !samples + U.Sketch.count sk
          | None -> ())
        [ T.Link.Fwd; T.Link.Rev ])
    (T.Topology.links (E.Fabric.topology fab));
  if !samples = 0 then failwith "sketch-idle: active sketch plane recorded nothing";
  let t = ref (E.Sim.now sim) in
  time_ops (fun () ->
      t := !t +. 1e6;
      E.Sim.run ~until:!t sim)

(* {1 scanport-idle: the zero-impact guarantee, mechanically checked}

   Two identical 50 ms managed-host runs, both streaming the flight
   recorder into a buffer. One additionally captures a full Scanport
   snapshot at every reallocation epoch from a fabric listener. Because
   capture is a pure read (no RNG draw, no lazy-sync, no event, no heap
   generation, no warm-solver movement), the scanned run must be
   bit-identical to the bare one: the two trace buffers compare equal
   byte for byte — every digest the recorder emitted matches — and the
   reallocation/decision counts are exactly equal. The scanned run must
   also have captured something, or the equality would be vacuous. The
   reported rate is simulated-ms/sec with scan-every-epoch active. *)

let bench_scanport_idle () =
  let measure ~scan =
    let buf = Buffer.create 65536 in
    let snaps = ref [] in
    let sim, fab, mgr =
      make_managed_host
        ~wire:(fun fab ->
          ignore (Rec.Recorder.attach ~label:"bench" ~sink:(Rec.Recorder.buffer_sink buf) fab);
          if scan then
            E.Fabric.subscribe fab (function
              | E.Fabric.Reallocated _ -> snaps := Rec.Scanport.capture fab :: !snaps
              | _ -> ()))
        ()
    in
    E.Sim.run ~until:50e6 sim;
    ((E.Fabric.reallocations fab, M.Manager.decisions mgr), Buffer.contents buf, !snaps, sim)
  in
  let baseline, bare_trace, _, _ = measure ~scan:false in
  let scanned, scanned_trace, snaps, sim = measure ~scan:true in
  if scanned <> baseline then
    failwith
      (Printf.sprintf
         "scanport-idle: scanning steered the run — %d reallocations/%d decisions bare, %d/%d \
          scanned"
         (fst baseline) (snd baseline) (fst scanned) (snd scanned));
  if scanned_trace <> bare_trace then
    failwith "scanport-idle: scan-every-epoch run produced a different trace than the bare run";
  (match snaps with
  | [] -> failwith "scanport-idle: scan-every-epoch run captured no snapshots"
  | last :: _ ->
    (* the chain must really be read out, not elided *)
    if last.Rec.Scanport.s_regs = [] then failwith "scanport-idle: empty scan chain");
  let t = ref (E.Sim.now sim) in
  time_ops (fun () ->
      t := !t +. 1e6;
      E.Sim.run ~until:!t sim)

(* {1 fleet-idle: a dormant fleet controller is invisible}

   Same discipline as recorder-idle and scanport-idle, one layer up:
   enrolling a live host in a fleet controller with no tenants and no
   channel faults must leave the host's run byte-identical to an
   unmanaged one. The proof is mechanical — equal Scanport digests
   after the same simulated time, an empty decision log, and channel
   RNG state untouched (Chanfault's RNG-only-under-fault discipline).
   The reported rate is controller rounds/sec over the wrapped host. *)

let bench_fleet_idle () =
  let build () =
    let host = Ihnet.Host.create ~seed:11 ~domains:1 Ihnet.Host.Minimal in
    let fab = Ihnet.Host.fabric host in
    let topo = Ihnet.Host.topology host in
    let dev name =
      match T.Topology.device_by_name topo name with
      | Some d -> d.T.Device.id
      | None -> failwith ("fabric_bench: no device " ^ name)
    in
    let path =
      match T.Routing.shortest_path topo (dev "nic0") (dev "socket0") with
      | Some p -> p
      | None -> failwith "fabric_bench: no nic0->socket0 path"
    in
    ignore (E.Fabric.start_flow fab ~tenant:1 ~path ~size:E.Flow.Unbounded ());
    host
  in
  let rounds = 50 and round_len = U.Units.us 100.0 in
  let bare = build () in
  for _ = 1 to rounds do
    Ihnet.Host.run_for bare round_len
  done;
  let wrapped = build () in
  let cfg = { F.Controller.default_config with F.Controller.round_len = round_len } in
  let t = F.Controller.create ~config:cfg ~seed:7 () in
  F.Controller.add_host t ~label:"live0" wrapped;
  let rng_before = F.Controller.channel_rng_peek t "live0" in
  F.Controller.run t ~rounds;
  if
    (Ihnet.Host.scan wrapped).Rec.Scanport.s_digest
    <> (Ihnet.Host.scan bare).Rec.Scanport.s_digest
  then failwith "fleet-idle: dormant controller changed the wrapped host's run";
  if F.Controller.decisions t <> [] then
    failwith
      (Printf.sprintf "fleet-idle: %d decision(s) with no tenants and no faults"
         (List.length (F.Controller.decisions t)));
  if F.Controller.channel_rng_peek t "live0" <> rng_before then
    failwith "fleet-idle: fault-free channel plane drew from its RNG";
  time_ops (fun () -> F.Controller.run t ~rounds:10)

(* {1 fleet-churn-1k: the control loop at fleet scale}

   1000 minimal hosts, 1000 placed tenants. The measured op is one
   tenant replacement through the full control plane — revoke the
   oldest tenant, submit a fresh one, run one controller round (1000
   host advances + 1000 health reports + the control step that routes
   the cleanup and the new placement). *)

let bench_fleet_churn () =
  let n = 1000 in
  let cfg =
    { F.Controller.default_config with F.Controller.round_len = U.Units.us 100.0 }
  in
  let t = F.Controller.create ~config:cfg ~seed:5 () in
  for i = 0 to n - 1 do
    F.Controller.spawn t ~preset:Ihnet.Host.Minimal (Printf.sprintf "host%d" i)
  done;
  let submit i =
    F.Controller.submit t
      (M.Intent.pipe ~tenant:i ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbps 2.0))
  in
  for i = 1 to n do
    submit i
  done;
  let placed () =
    List.for_all
      (fun id ->
        match F.Controller.tenant_view t id with Some (F.Controller.Placed _) -> true | _ -> false)
      (F.Controller.tenants t)
  in
  let guard = ref 0 in
  while (not (placed ())) && !guard < 50 do
    incr guard;
    F.Controller.round t
  done;
  if not (placed ()) then failwith "fleet-churn-1k: fleet failed to converge during setup";
  let next = ref (n + 1) in
  time_ops (fun () ->
      F.Controller.revoke t ~tenant:(!next - n);
      submit !next;
      incr next;
      F.Controller.round t)

(* {1 daemon-cmds-4: the wire command plane}

   One in-process ihnetd server with four connected clients; each op
   pushes a Flow_start from every client through the full wire path
   (encode, frame, select loop, batched ingestion, typed reply) and
   then the four matching Flow_stops. Measures command-plane overhead
   — framing, JSON codecs, the select loop and per-tick batching — on
   top of mutations whose raw fabric cost flow-churn already tracks. *)

let bench_daemon_cmds () =
  let module C = Api.Command in
  let module Resp = Api.Response in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ihnetd-bench-%d.sock" (Unix.getpid ()))
  in
  let srv = Api.Server.create (Api.Handlers.local (Api.Host_spec.make ~seed:11 ())) path in
  let pump () = ignore (Api.Server.step ~timeout:0.0 srv) in
  let conns =
    Array.init 4 (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd)
  in
  (* clients and server share this thread, so drive the select loop by
     hand until every client has a reply waiting *)
  let await_replies () =
    let fds = Array.to_list conns in
    let rec go n =
      if n > 10_000 then failwith "daemon-cmds-4: daemon never replied";
      let ready, _, _ = Unix.select fds [] [] 0.0 in
      if List.length ready < Array.length conns then begin
        pump ();
        go (n + 1)
      end
    in
    go 0
  in
  let exchange cmd_of check =
    Array.iteri (fun i fd -> Api.Wire.write_frame fd (C.to_json (cmd_of i))) conns;
    await_replies ();
    Array.map
      (fun fd ->
        match Api.Wire.read_frame fd with
        | None -> failwith "daemon-cmds-4: connection closed"
        | Some j -> (
          match Resp.of_json j with
          | Ok r -> check r
          | Error e -> failwith ("daemon-cmds-4: bad reply: " ^ e)))
      conns
  in
  ignore
    (exchange
       (fun _ -> C.Hello { version = C.version })
       (function Resp.Hello_ok _ -> 0 | _ -> failwith "daemon-cmds-4: bad hello"));
  let tenant = ref 0 in
  let ops =
    time_ops (fun () ->
        let flows =
          exchange
            (fun i ->
              incr tenant;
              C.Flow_start
                {
                  tenant = !tenant;
                  src = "ext";
                  dst = (if i mod 2 = 0 then "socket0" else "socket1");
                  gbps = Some 1.0;
                })
            (function
              | Resp.Flow_ok { flow } -> flow | _ -> failwith "daemon-cmds-4: flow refused")
        in
        ignore
          (exchange
             (fun i -> C.Flow_stop { flow = flows.(i) })
             (function Resp.Err _ -> failwith "daemon-cmds-4: stop refused" | _ -> 0)))
  in
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  Api.Server.stop srv;
  ops

let () =
  let subjects =
    [
      ("allocate-64", fun () -> bench_allocate 64);
      ("allocate-512", fun () -> bench_allocate 512);
      ("allocate-4096", fun () -> bench_allocate 4096);
      ("flow-churn-256", fun () -> bench_churn_local 256);
      ("flow-churn-4096", fun () -> bench_churn_local 4096);
      ("flow-churn-coupled-4096", fun () -> bench_churn_coupled 4096);
      ("flow-churn-par-seq-4096", fun () -> bench_churn_par ~domains:1 4096);
      ("flow-churn-par-2-4096", fun () -> bench_churn_par ~domains:2 4096);
      ("flow-churn-par-4-4096", fun () -> bench_churn_par ~domains:4 4096);
      ("allocate-par-seq-4096", fun () -> bench_allocate_par ~domains:1 4096);
      ("allocate-par-4-4096", fun () -> bench_allocate_par ~domains:4 4096);
      ("remediation-idle", bench_remediation_idle);
      ("recorder-idle", bench_recorder_idle);
      ("evidence-idle", bench_evidence_idle);
      (* new subjects go AFTER every pre-warm-start subject: despite the
         per-subject compaction above, a subject's throughput is still
         sensitive to the ambient heap/pool state its predecessors leave
         behind, so keeping the historical prefix order is what makes
         the [baseline_pre_warmstart] comparison like-for-like. *)
      ("flow-churn-warm-4096", fun () -> bench_churn_warm 4096);
      ("flow-churn-coupled-par-seq-4096", fun () -> bench_churn_coupled_par ~domains:1 4096);
      ("flow-churn-coupled-par-2-4096", fun () -> bench_churn_coupled_par ~domains:2 4096);
      ("flow-churn-coupled-par-4-4096", fun () -> bench_churn_coupled_par ~domains:4 4096);
      ("sketch-idle", bench_sketch_idle);
      ("flow-churn-sketch-4096", fun () -> bench_churn_sketch 4096);
      ("scanport-idle", bench_scanport_idle);
      ("fleet-idle", bench_fleet_idle);
      ("fleet-churn-1k", bench_fleet_churn);
      ("daemon-cmds-4", bench_daemon_cmds);
    ]
  in
  let subjects =
    match only with
    | [] -> subjects
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n subjects) then begin
              Printf.eprintf "fabric_bench: unknown subject %S\n" n;
              usage ()
            end)
          names;
        List.filter (fun (n, _) -> List.mem n names) subjects
  in
  let results =
    List.map
      (fun (name, f) ->
        (* decouple subjects: start each from a compacted heap so a
           fast, allocation-heavy subject can't skew the next one's
           numbers through inherited GC state *)
        Gc.compact ();
        let ops = f () in
        if smoke then Printf.printf "%-18s ok\n%!" name
        else Printf.printf "%-18s %12.1f ops/sec\n%!" name ops;
        (name, ops))
      subjects
  in
  (* Frozen pre-warmstart measurements (commit before the warm-started
     solver + component memo landed), taken on the same machine as the
     committed subjects snapshot: mean of three full runs of this
     harness built from that commit. Kept in the emitted JSON so every
     regenerated snapshot still documents the cliff the warm path
     removed; new warm-era subjects have no pre-warmstart value. *)
  let baseline_pre_warmstart =
    [
      ("allocate-64", 46862.75);
      ("allocate-512", 9004.39);
      ("allocate-4096", 1041.73);
      ("flow-churn-256", 72133.34);
      ("flow-churn-4096", 3942.28);
      ("flow-churn-coupled-4096", 138.60);
      ("flow-churn-par-seq-4096", 315.31);
      ("flow-churn-par-2-4096", 198.01);
      ("flow-churn-par-4-4096", 82.40);
      ("allocate-par-seq-4096", 304.72);
      ("allocate-par-4-4096", 230.36);
      ("remediation-idle", 269.76);
      ("recorder-idle", 250.81);
      ("evidence-idle", 272.41);
    ]
  in
  if not smoke then begin
    let oc = open_out out_file in
    output_string oc "{\n  \"benchmark\": \"fabric\",\n  \"unit\": \"ops_per_sec\",\n  \"subjects\": {\n";
    List.iteri
      (fun i (name, ops) ->
        Printf.fprintf oc "    \"%s\": %.2f%s\n" name ops
          (if i = List.length results - 1 then "" else ","))
      results;
    output_string oc "  },\n  \"baseline_pre_warmstart\": {\n";
    List.iteri
      (fun i (name, ops) ->
        Printf.fprintf oc "    \"%s\": %.2f%s\n" name ops
          (if i = List.length baseline_pre_warmstart - 1 then "" else ","))
      baseline_pre_warmstart;
    output_string oc "  }\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n%!" out_file
  end
