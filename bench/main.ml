(* Benchmark harness.

   Part 1 regenerates every experiment table (E1-E16, A1-A3) — the paper's
   "evaluation" as defined in DESIGN.md. Part 2 runs bechamel
   micro-benchmarks of the framework's hot kernels: the allocator, the
   router, the fabric's event step, the monitor's data path and the
   manager's compile/schedule/arbitrate decisions (the rigorous version
   of E10's table). *)

open Bechamel
open Toolkit
module T = Ihnet_topology
module E = Ihnet_engine
module U = Ihnet_util
module Mon = Ihnet_monitor
module R = Ihnet_manager

(* {1 Micro-benchmark subjects} *)

let dev topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> failwith ("bench: no device " ^ name)

(* fairshare: n elastic flows over a shared 3-resource path *)
let bench_fairshare n =
  let capacities = [| 100.0; 80.0; 60.0 |] in
  let demands =
    Array.init n (fun i ->
        {
          E.Fairshare.weight = 1.0 +. float_of_int (i mod 3);
          floor = 0.5;
          cap = (if i mod 4 = 0 then 10.0 else infinity);
          usage = [ (0, 1.0); (1, 1.1); (2, 1.0) ];
        })
  in
  Test.make
    ~name:(Printf.sprintf "allocate-%d-flows" n)
    (Staged.stage (fun () -> Sys.opaque_identity (E.Fairshare.allocate ~capacities demands)))

let bench_routing () =
  let topo = T.Builder.dgx_like () in
  let gpu0 = dev topo "gpu0" and nic7 = dev topo "nic7" in
  [
    Test.make ~name:"dijkstra-dgx"
      (Staged.stage (fun () -> Sys.opaque_identity (T.Routing.shortest_path topo gpu0 nic7)));
    Test.make ~name:"yen-k4-dgx"
      (Staged.stage (fun () ->
           Sys.opaque_identity (T.Routing.k_shortest_paths ~k:4 topo gpu0 nic7)));
  ]

let bench_fabric () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  let path =
    Option.get (T.Routing.shortest_path topo (dev topo "nic0") (dev topo "dimm0.0.0"))
  in
  (* steady background so reallocation has real work *)
  for i = 1 to 8 do
    ignore
      (E.Fabric.start_flow fab ~tenant:i ~cap:(1e9 *. float_of_int i) ~path
         ~size:E.Flow.Unbounded ())
  done;
  [
    Test.make ~name:"start-stop-flow"
      (Staged.stage (fun () ->
           let f = E.Fabric.start_flow fab ~tenant:99 ~path ~size:E.Flow.Unbounded () in
           E.Fabric.stop_flow fab f));
    Test.make ~name:"path-latency"
      (Staged.stage (fun () -> Sys.opaque_identity (E.Fabric.path_latency fab path)));
  ]

(* one start/stop against a dgx-like host already carrying [n] local
   GPU->NIC flows: the incremental-reallocation hot path (see
   fabric_bench.ml for the JSON-emitting scaling version) *)
let bench_churn n =
  let topo = T.Builder.dgx_like () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  let paths =
    Array.init 8 (fun i ->
        Option.get
          (T.Routing.shortest_path topo
             (dev topo (Printf.sprintf "gpu%d" i))
             (dev topo (Printf.sprintf "nic%d" i))))
  in
  E.Fabric.batch fab (fun () ->
      for i = 0 to n - 1 do
        ignore
          (E.Fabric.start_flow fab ~tenant:(1 + (i mod 16))
             ~weight:(1.0 +. float_of_int (i mod 3))
             ~path:paths.(i mod 8) ~size:E.Flow.Unbounded ())
      done);
  Test.make
    ~name:(Printf.sprintf "flow-churn-%d" n)
    (Staged.stage (fun () ->
         let f = E.Fabric.start_flow fab ~tenant:99 ~path:paths.(0) ~size:E.Flow.Unbounded () in
         E.Fabric.stop_flow fab f))

let bench_monitor () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle in
  let telemetry = Mon.Telemetry.create () in
  let hist = U.Histogram.create () in
  let i = ref 0 in
  [
    Test.make ~name:"counter-read"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Mon.Counter.read counter 0 T.Link.Fwd ~tenants:[ 1; 2; 3 ])));
    Test.make ~name:"telemetry-record"
      (Staged.stage (fun () ->
           incr i;
           Mon.Telemetry.record telemetry ~series:"bench" ~at:(float_of_int !i) 0.5));
    Test.make ~name:"histogram-add"
      (Staged.stage (fun () ->
           incr i;
           U.Histogram.add hist (float_of_int (1 + (!i land 0xffff)))));
  ]

let bench_manager () =
  (* the rigorous E10: compile / schedule / arbitrate on a large host *)
  let topo = T.Builder.scaled ~sockets:4 ~switches_per_socket:4 ~devices_per_switch:8 () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  let intent = R.Intent.pipe ~tenant:1 ~src:"nic0" ~dst:"socket0" ~rate:1e9 in
  let reqs = Result.get_ok (R.Interpreter.compile topo intent) in
  let mgr = R.Manager.create fab () in
  (match R.Manager.submit mgr intent with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e));
  let path =
    Option.get (T.Routing.shortest_path topo (dev topo "nic0") (dev topo "socket0"))
  in
  let flows =
    List.init 8 (fun _ -> E.Fabric.start_flow fab ~tenant:1 ~path ~size:E.Flow.Unbounded ())
  in
  List.iter (fun f -> ignore (R.Manager.attach mgr f)) flows;
  [
    Test.make ~name:"interpret-intent"
      (Staged.stage (fun () -> Sys.opaque_identity (R.Interpreter.compile topo intent)));
    Test.make ~name:"schedule-placement"
      (Staged.stage (fun () ->
           let sched = R.Scheduler.create topo () in
           Sys.opaque_identity (R.Scheduler.place_all sched reqs)));
    Test.make ~name:"arbitrate-refresh-8-flows"
      (Staged.stage (fun () -> R.Arbiter.refresh (R.Manager.arbiter mgr)));
  ]

let bench_extensions () =
  let topo = T.Builder.two_socket_server () in
  let series = List.init 24 (fun i -> Printf.sprintf "s%d" i) in
  let mm = Mon.Multimodal.create ~warmup:8 ~series () in
  let vec = Array.make 24 1.0 in
  let i = ref 0 in
  for _ = 1 to 16 do
    incr i;
    ignore (Mon.Multimodal.observe mm ~at:(float_of_int !i) vec)
  done;
  let gpus = List.init 8 (fun g -> Printf.sprintf "gpu%d" g) in
  let dgx = T.Builder.dgx_like () in
  [
    Test.make ~name:"multimodal-observe-24dims"
      (Staged.stage (fun () ->
           incr i;
           ignore (Mon.Multimodal.observe mm ~at:(float_of_int !i) vec)));
    Test.make ~name:"spec-parse-example"
      (Staged.stage (fun () -> Sys.opaque_identity (T.Spec.parse T.Spec.example)));
    Test.make ~name:"ring-cost-8gpus"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Ihnet_workload.Allreduce.ring_cost dgx gpus)));
    Test.make ~name:"misconfig-check"
      (Staged.stage (fun () -> Sys.opaque_identity (Mon.Anomaly.check_configuration topo)));
  ]

let bench_sim () =
  [
    Test.make ~name:"schedule-and-step"
      (Staged.stage
         (let sim = E.Sim.create () in
          fun () ->
            E.Sim.schedule sim ~after:1.0 (fun _ -> ());
            ignore (E.Sim.step sim)));
  ]

(* {1 Runner} *)

let run_tests tests =
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols_result) in
          (name, ns, r2) :: acc)
        analyzed [])
    tests

let print_bench_table rows =
  let table =
    U.Table.create ~title:"micro-benchmarks (bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "time/op"; "r^2" ]
  in
  List.iter
    (fun (name, ns, r2) ->
      U.Table.add_row table
        [ name; Format.asprintf "%a" U.Units.pp_time ns; Printf.sprintf "%.3f" r2 ])
    (List.sort compare rows);
  U.Table.print table

let () =
  print_endline "=== ihnet benchmark harness ===";
  print_endline "--- part 1: experiment tables (one per table/figure) ---";
  ignore (Ihnet_experiments.Registry.run_all ());
  print_endline "\n--- part 2: micro-benchmarks ---";
  let groups =
    [
      Test.make_grouped ~name:"fairshare"
        [
          bench_fairshare 4;
          bench_fairshare 32;
          bench_fairshare 64;
          bench_fairshare 256;
          bench_fairshare 512;
          bench_fairshare 4096;
        ];
      Test.make_grouped ~name:"routing" (bench_routing ());
      Test.make_grouped ~name:"fabric" (bench_fabric () @ [ bench_churn 512 ]);
      Test.make_grouped ~name:"monitor" (bench_monitor ());
      Test.make_grouped ~name:"manager" (bench_manager ());
      Test.make_grouped ~name:"sim" (bench_sim ());
      Test.make_grouped ~name:"ext" (bench_extensions ());
    ]
  in
  let rows = run_tests groups in
  print_bench_table rows
