(** The [ihnet] library's front door.

    {!Host} wires a simulated host together; the aliases below re-export
    the layer libraries so application code can reach everything through
    one [open Ihnet] (or fully qualified, [Ihnet.Units.gbps]). *)

module Host = Host

(** {1 Layer aliases} *)

module Units = Ihnet_util.Units
module Rng = Ihnet_util.Rng
module Stats = Ihnet_util.Stats
module Histogram = Ihnet_util.Histogram
module Device = Ihnet_topology.Device
module Link = Ihnet_topology.Link
module Pcie = Ihnet_topology.Pcie
module Hostconfig = Ihnet_topology.Hostconfig
module Topology = Ihnet_topology.Topology
module Path = Ihnet_topology.Path
module Routing = Ihnet_topology.Routing
module Builder = Ihnet_topology.Builder
module Spec = Ihnet_topology.Spec
module Sim = Ihnet_engine.Sim
module Flow = Ihnet_engine.Flow
module Fabric = Ihnet_engine.Fabric
module Fault = Ihnet_engine.Fault
module Sensorfault = Ihnet_engine.Sensorfault
module Tenant = Ihnet_workload.Tenant
module Traffic = Ihnet_workload.Traffic
module Kvstore = Ihnet_workload.Kvstore
module Mltrain = Ihnet_workload.Mltrain
module Rdma = Ihnet_workload.Rdma
module Storage = Ihnet_workload.Storage
module Allreduce = Ihnet_workload.Allreduce
module Trace = Ihnet_workload.Trace
module Scenario = Ihnet_workload.Scenario
module Counter = Ihnet_monitor.Counter
module Telemetry = Ihnet_monitor.Telemetry
module Sampler = Ihnet_monitor.Sampler
module Heartbeat = Ihnet_monitor.Heartbeat
module Anomaly = Ihnet_monitor.Anomaly
module Multimodal = Ihnet_monitor.Multimodal
module Rootcause = Ihnet_monitor.Rootcause
module Diagnostics = Ihnet_monitor.Diagnostics
module Health = Ihnet_monitor.Health
module Fleet = Ihnet_monitor.Fleet
module Evidence = Ihnet_monitor.Evidence
module Intent = Ihnet_manager.Intent
module Manager = Ihnet_manager.Manager
module Placement = Ihnet_manager.Placement
module Scheduler = Ihnet_manager.Scheduler
module Arbiter = Ihnet_manager.Arbiter
module Vnet = Ihnet_manager.Vnet
module Slo = Ihnet_manager.Slo
module Planner = Ihnet_manager.Planner
module Policy = Ihnet_manager.Policy
module Remediation = Ihnet_manager.Remediation
module Pool = Ihnet_util.Pool
