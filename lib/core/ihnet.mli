(** The [ihnet] library's front door.

    [ihnet] implements the monitoring system and holistic resource
    manager of {e Towards a Manageable Intra-Host Network} (HotOS
    2023) on a calibrated flow-level simulator of the network inside a
    server — PCIe fabric, memory buses, inter-socket links and the
    devices hanging off them.

    {!Host} is the managed-host handle most applications want:

    {[
      open Ihnet

      let host = Host.create Host.Two_socket in
      Host.run_for host (Units.ms 20.0);
      match
        Host.submit_intent host
          (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:(Units.gbps 4.0))
      with
      | Ok placements -> ...
      | Error e -> prerr_endline (Manager.error_to_string e)
    ]}

    The aliases below re-export the layer libraries so application
    code can reach everything through one [open Ihnet] (or fully
    qualified, [Ihnet.Units.gbps]); each layer remains independently
    usable under its own library name ([Ihnet_engine.Fabric], ...). *)

module Host = Host
(** Simulator + fabric + tenants + optional monitoring/management
    behind one handle. Start here. *)

(** {1 Utilities} *)

module Units = Ihnet_util.Units
(** Unit constructors and conversions ([gbps], [ms], [mib], ...);
    internal units are bytes/s and nanoseconds. *)

module Rng = Ihnet_util.Rng
(** Seeded splittable PRNG + distributions; all randomness flows from
    explicit seeds so every run is reproducible. *)

module Stats = Ihnet_util.Stats
(** Streaming statistics: mean/variance, EWMA, CUSUM. *)

module Histogram = Ihnet_util.Histogram
(** Log-bucketed latency/size histograms with quantile queries. *)

module Pool = Ihnet_util.Pool
(** Fixed-size domain pool behind the fabric's parallel reallocation
    ({!Host.create}'s [?domains]). *)

(** {1 Topology (the intra-host network graph)} *)

module Device = Ihnet_topology.Device
module Link = Ihnet_topology.Link

module Pcie = Ihnet_topology.Pcie
(** PCIe bandwidth from a gen/lane/encoding/MaxPayloadSize model. *)

module Hostconfig = Ihnet_topology.Hostconfig
(** Host knobs: DDIO on/off, IOMMU mode, PCIe MPS. *)

module Topology = Ihnet_topology.Topology
module Path = Ihnet_topology.Path

module Routing = Ihnet_topology.Routing
(** Shortest and k-shortest pathway search over the fabric graph. *)

module Builder = Ihnet_topology.Builder
(** Canned servers: Figure-1 two-socket, DGX-like, EPYC-like,
    minimal, parametric. *)

module Spec = Ihnet_topology.Spec
(** Textual topology DSL ([ihnetctl spec] / [--topo-file]). *)

(** {1 Engine (the fabric "hardware")} *)

module Sim = Ihnet_engine.Sim
(** Discrete-event simulator core. *)

module Flow = Ihnet_engine.Flow

module Fabric = Ihnet_engine.Fabric
(** The fabric runtime: flows, weighted max-min allocation with
    floors/caps, DDIO coupling, faults, telemetry counters. *)

module Fault = Ihnet_engine.Fault
(** Link-level fault injection: degrade/down/lossy/delay. *)

module Sensorfault = Ihnet_engine.Sensorfault
(** Telemetry-plane fault injection — corrupts what detectors see,
    never what the fabric does. *)

(** {1 Workloads} *)

module Tenant = Ihnet_workload.Tenant
module Traffic = Ihnet_workload.Traffic
module Kvstore = Ihnet_workload.Kvstore
module Mltrain = Ihnet_workload.Mltrain
module Rdma = Ihnet_workload.Rdma
module Storage = Ihnet_workload.Storage
module Allreduce = Ihnet_workload.Allreduce
module Trace = Ihnet_workload.Trace
module Scenario = Ihnet_workload.Scenario

(** {1 Monitor (building block 1, §3.1)} *)

module Counter = Ihnet_monitor.Counter
(** Counter reads at a chosen fidelity (hardware-like, software
    interception, oracle) + plausibility verdicts. *)

module Telemetry = Ihnet_monitor.Telemetry
module Sampler = Ihnet_monitor.Sampler

module Heartbeat = Ihnet_monitor.Heartbeat
(** Probe mesh + coverage-discounted fault localization. *)

module Anomaly = Ihnet_monitor.Anomaly
module Multimodal = Ihnet_monitor.Multimodal
module Rootcause = Ihnet_monitor.Rootcause

module Diagnostics = Ihnet_monitor.Diagnostics
(** Intra-host ping / trace / perf / dump. *)

module Health = Ihnet_monitor.Health
module Fleet = Ihnet_monitor.Fleet

module Evidence = Ihnet_monitor.Evidence
(** Multi-modality corroboration gate for remediation actions. *)

(** {1 Manager (building block 2, §3.2)} *)

module Intent = Ihnet_manager.Intent
(** Tenant performance targets: pipes and hoses. *)

module Manager = Ihnet_manager.Manager
(** Interpreter → scheduler → arbiter behind one facade; admission
    errors are the typed {!Manager.error}. *)

module Placement = Ihnet_manager.Placement
module Scheduler = Ihnet_manager.Scheduler
module Arbiter = Ihnet_manager.Arbiter

module Vnet = Ihnet_manager.Vnet
(** Per-tenant virtualized view of the network. *)

module Slo = Ihnet_manager.Slo
module Planner = Ihnet_manager.Planner
module Policy = Ihnet_manager.Policy

module Remediation = Ihnet_manager.Remediation
(** Self-healing supervisor: detect → diagnose → act with an
    escalation ladder, flap damping and evidence gating. *)
