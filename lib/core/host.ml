module T = Ihnet_topology
module E = Ihnet_engine
module W = Ihnet_workload
module M = Ihnet_monitor
module R = Ihnet_manager

type preset = Two_socket | Dgx | Epyc | Minimal | Custom of T.Topology.t

type t = {
  sim : E.Sim.t;
  fabric : E.Fabric.t;
  tenants : W.Tenant.registry;
  mutable sampler : M.Sampler.t option;
  mutable heartbeat : M.Heartbeat.t option;
  mutable manager : R.Manager.t option;
  mutable remediation : R.Remediation.t option;
  mutable evidence : M.Evidence.t option;
}

let build_topology ?config = function
  | Two_socket -> T.Builder.two_socket_server ?config ()
  | Dgx -> T.Builder.dgx_like ?config ()
  | Epyc -> T.Builder.epyc_like ?config ()
  | Minimal -> T.Builder.minimal ?config ()
  | Custom topo ->
    Option.iter (T.Topology.set_config topo) config;
    topo

type wiring = {
  heartbeat : bool;
  evidence : bool;
  headroom : float;
  shim_period : Ihnet_util.Units.ns;
  sampler : M.Sampler.config option;
  latency_sketches : bool;
}

let default_wiring =
  {
    heartbeat = true;
    evidence = false;
    headroom = 0.9;
    shim_period = Ihnet_util.Units.us 50.0;
    sampler = None;
    latency_sketches = false;
  }

let apply_wiring t (wiring : wiring) =
  if wiring.latency_sketches then E.Fabric.enable_latency_sketches t.fabric

let create ?(seed = 42) ?config ?domains ?warm preset =
  let topo = build_topology ?config preset in
  (match T.Topology.validate topo with
  | Ok () -> ()
  | Error es -> invalid_arg ("Host.create: invalid topology: " ^ String.concat "; " es));
  let sim = E.Sim.create () in
  let fabric = E.Fabric.create ~seed ?domains ?warm sim topo in
  {
    sim;
    fabric;
    tenants = W.Tenant.create_registry ();
    sampler = None;
    heartbeat = None;
    manager = None;
    remediation = None;
    evidence = None;
  }

let sim t = t.sim
let fabric t = t.fabric
let topology t = E.Fabric.topology t.fabric
let tenants t = t.tenants
let now t = E.Sim.now t.sim

let run_for t duration =
  assert (duration >= 0.0);
  E.Sim.run ~until:(E.Sim.now t.sim +. duration) t.sim

let run_until_idle t = E.Sim.run t.sim
let add_tenant t ~name = W.Tenant.register t.tenants ~name ~kind:W.Tenant.Vm

let start_monitoring (t : t) ?(wiring = default_wiring) () =
  apply_wiring t wiring;
  match t.sampler with
  | Some s -> s
  | None ->
    let config =
      match wiring.sampler with Some c -> c | None -> M.Sampler.default_config ()
    in
    let s = M.Sampler.start t.fabric config in
    t.sampler <- Some s;
    s

let sampler (t : t) = t.sampler

let start_heartbeats (t : t) ?config () =
  match t.heartbeat with
  | Some h -> h
  | None ->
    let h = M.Heartbeat.start t.fabric ?config () in
    t.heartbeat <- Some h;
    h

let heartbeat (t : t) = t.heartbeat

let enable_manager t ?(wiring = default_wiring) () =
  apply_wiring t wiring;
  match t.manager with
  | Some m -> m
  | None ->
    let m = R.Manager.create t.fabric ~headroom:wiring.headroom () in
    R.Manager.start_shim m ~period:wiring.shim_period;
    t.manager <- Some m;
    m

let manager t = t.manager

(* The layering seam: Ihnet_manager must not depend on Ihnet_monitor
   (observe vs act), so the supervisor takes detectors as callbacks and
   the host — which sees both layers — plugs heartbeat localization in
   here. Operator-injected faults reach the supervisor directly through
   fabric events; this source is what catches the silent ones. *)
let enable_remediation (t : t) ?config ?(wiring = default_wiring) () =
  match t.remediation with
  | Some r -> r
  | None ->
    let m = enable_manager t ~wiring () in
    let r = R.Remediation.create ?config m in
    let ev =
      if wiring.evidence then begin
        let ev = M.Evidence.create t.fabric in
        t.evidence <- Some ev;
        Some ev
      end
      else None
    in
    (if wiring.heartbeat then begin
       let hb = start_heartbeats t () in
       R.Remediation.add_source r ~name:"heartbeat"
         (fun () ->
           let suspects = M.Heartbeat.localize hb in
           (* the gate judges coverage-discounted confidence; the raw
              coverage score still drives case opening *)
           Option.iter (fun ev -> M.Evidence.feed_heartbeat ev suspects) ev;
           List.map
             (fun (s : M.Heartbeat.suspect) -> (s.M.Heartbeat.link, s.M.Heartbeat.score))
             suspects)
     end);
    (* tail-latency SLO watch: placements carrying a p99 bound open
       cases against their worst hop when the observed sketch p99
       breaches the bound *)
    if wiring.latency_sketches then
      R.Remediation.add_source r ~name:"tail-latency" (R.Remediation.tail_latency_source m);
    Option.iter (fun ev -> R.Remediation.set_gate r (M.Evidence.gate ev)) ev;
    R.Remediation.start r;
    t.remediation <- Some r;
    r

let remediation t = t.remediation
let evidence (t : t) = t.evidence

let submit_intent t intent =
  let m = enable_manager t () in
  R.Manager.submit m intent

(* The out-of-band scan surface: everything the host wired in —
   remediation state machines, the evidence window — rides along in
   the snapshot when present. A pure read (Scanport's zero-impact
   contract), safe under any load. *)
let scan t =
  Ihnet_record.Scanport.capture ?remediation:t.remediation ?evidence:t.evidence t.fabric

let ping t ~src ~dst = M.Diagnostics.ping_once t.fabric ~src ~dst
let trace t ~src ~dst = M.Diagnostics.trace t.fabric ~src ~dst
let bandwidth t ~src ~dst = M.Diagnostics.perf_now t.fabric ~src ~dst
let check_configuration t = M.Anomaly.check_configuration (topology t)
