(** A managed host: simulator + fabric + tenant registry + (optional)
    monitoring and resource management, behind one handle.

    This is the library's front door. Lower layers remain fully usable
    directly; [Host] only wires them together and owns their
    lifetimes. *)

type preset =
  | Two_socket  (** Figure 1's example server. *)
  | Dgx  (** 8-GPU/8-NIC DGX-like box. *)
  | Epyc  (** Flat, switchless EPYC-like box. *)
  | Minimal  (** One socket, one NIC. *)
  | Custom of Ihnet_topology.Topology.t

type t

val create : ?seed:int -> ?config:Ihnet_topology.Hostconfig.t -> preset -> t
(** Builds (and validates) the topology and the fabric.
    @raise Invalid_argument if a custom topology fails validation. *)

val sim : t -> Ihnet_engine.Sim.t
val fabric : t -> Ihnet_engine.Fabric.t
val topology : t -> Ihnet_topology.Topology.t
val tenants : t -> Ihnet_workload.Tenant.registry

val now : t -> Ihnet_util.Units.ns
val run_for : t -> Ihnet_util.Units.ns -> unit
(** Advance the simulation by a duration. *)

val run_until_idle : t -> unit
(** Drain all pending events (careful: periodic monitors never
    drain — stop them first, or use {!run_for}). *)

val add_tenant : t -> name:string -> Ihnet_workload.Tenant.t
(** Registers a VM tenant. *)

(** {1 Monitoring} *)

val start_monitoring : t -> ?config:Ihnet_monitor.Sampler.config -> unit -> Ihnet_monitor.Sampler.t
(** Idempotent: returns the running sampler if one exists. *)

val sampler : t -> Ihnet_monitor.Sampler.t option
val start_heartbeats : t -> ?config:Ihnet_monitor.Heartbeat.config -> unit -> Ihnet_monitor.Heartbeat.t
val heartbeat : t -> Ihnet_monitor.Heartbeat.t option

(** {1 Resource management} *)

val enable_manager :
  t -> ?headroom:float -> ?shim_period:Ihnet_util.Units.ns -> unit -> Ihnet_manager.Manager.t
(** Creates the manager and starts its shim. Idempotent. *)

val manager : t -> Ihnet_manager.Manager.t option

val enable_remediation :
  t ->
  ?config:Ihnet_manager.Remediation.config ->
  ?use_heartbeat:bool ->
  ?use_evidence:bool ->
  unit ->
  Ihnet_manager.Remediation.t
(** Creates the self-healing supervisor (enabling the manager if
    needed) and starts its detect → diagnose → act loop. With
    [use_heartbeat] (default true) it also starts the heartbeat mesh
    and wires {!Ihnet_monitor.Heartbeat.localize} in as a detector
    source, so silent faults — not just operator-injected ones — open
    remediation cases. With [use_evidence] (default false) it creates
    an {!Ihnet_monitor.Evidence.t} corroboration gate, feeds heartbeat
    suspects into it, and installs it via
    {!Ihnet_manager.Remediation.set_gate} — migrations and degradations
    then require independent-modality agreement. Idempotent. *)

val remediation : t -> Ihnet_manager.Remediation.t option
val evidence : t -> Ihnet_monitor.Evidence.t option

val submit_intent :
  t -> Ihnet_manager.Intent.t -> (Ihnet_manager.Placement.t list, string) result
(** Enables the manager (defaults) if needed, then submits. *)

(** {1 Diagnostics shortcuts} *)

val ping : t -> src:string -> dst:string -> Ihnet_util.Units.ns option
val trace : t -> src:string -> dst:string -> Ihnet_monitor.Diagnostics.trace_hop list
val bandwidth : t -> src:string -> dst:string -> float
(** Instantaneous available bandwidth (what-if), bytes/s. *)

val check_configuration : t -> string list
(** Static misconfiguration findings. *)
