(** A managed host: simulator + fabric + tenant registry + (optional)
    monitoring and resource management, behind one handle.

    This is the library's front door. Lower layers remain fully usable
    directly; [Host] only wires them together and owns their
    lifetimes. *)

type preset =
  | Two_socket  (** Figure 1's example server. *)
  | Dgx  (** 8-GPU/8-NIC DGX-like box. *)
  | Epyc  (** Flat, switchless EPYC-like box. *)
  | Minimal  (** One socket, one NIC. *)
  | Custom of Ihnet_topology.Topology.t

type t

type wiring = {
  heartbeat : bool;
      (** Start the heartbeat mesh and wire
          {!Ihnet_monitor.Heartbeat.localize} in as a remediation
          detector source, so silent faults — not just
          operator-injected ones — open cases. Default [true]. *)
  evidence : bool;
      (** Create an {!Ihnet_monitor.Evidence.t} corroboration gate,
          feed heartbeat suspects into it, and install it via
          {!Ihnet_manager.Remediation.set_gate} — migrations and
          degradations then require independent-modality agreement.
          Default [false]. *)
  headroom : float;
      (** Reservable fraction of each link the scheduler may admit
          against. Default 0.9. *)
  shim_period : Ihnet_util.Units.ns;
      (** Polling period of the arbiter's enforcement shim.
          Default 50 µs. *)
  sampler : Ihnet_monitor.Sampler.config option;
      (** Sampler configuration for {!start_monitoring};
          [None] (default) means {!Ihnet_monitor.Sampler.default_config}. *)
  latency_sketches : bool;
      (** Enable the fabric's always-on latency-percentile plane
          ({!Ihnet_engine.Fabric.enable_latency_sketches}) when a
          subsystem starts with this wiring, and — under
          {!enable_remediation} — wire the tail-latency SLO detector
          ({!Ihnet_manager.Remediation.tail_latency_source}) in as a
          case source, so placements with a [p99_bound] are watched and
          remediated. Default [false]. *)
}
(** How the optional subsystems are wired when enabled — one record
    instead of a per-function option soup. Build variations with
    functional update: [{ default_wiring with evidence = true }]. *)

val default_wiring : wiring

val create :
  ?seed:int -> ?config:Ihnet_topology.Hostconfig.t -> ?domains:int -> ?warm:bool -> preset -> t
(** Builds (and validates) the topology and the fabric. [domains] is
    the reallocation pool width and [warm] enables warm-started
    arbitration, both forwarded to {!Ihnet_engine.Fabric.create}
    (defaults: [IHNET_DOMAINS] from the environment, else 1 —
    sequential; [IHNET_WARM], else on). Rates and digests are
    bit-identical for every combination (MODEL.md §13).
    @raise Invalid_argument if a custom topology fails validation. *)

val sim : t -> Ihnet_engine.Sim.t
val fabric : t -> Ihnet_engine.Fabric.t
val topology : t -> Ihnet_topology.Topology.t
val tenants : t -> Ihnet_workload.Tenant.registry

val now : t -> Ihnet_util.Units.ns
val run_for : t -> Ihnet_util.Units.ns -> unit
(** Advance the simulation by a duration. *)

val run_until_idle : t -> unit
(** Drain all pending events (careful: periodic monitors never
    drain — stop them first, or use {!run_for}). *)

val add_tenant : t -> name:string -> Ihnet_workload.Tenant.t
(** Registers a VM tenant. *)

(** {1 Monitoring} *)

val start_monitoring : t -> ?wiring:wiring -> unit -> Ihnet_monitor.Sampler.t
(** Starts the counter sampler ([wiring.sampler] configures it).
    Idempotent: returns the running sampler if one exists. *)

val sampler : t -> Ihnet_monitor.Sampler.t option
val start_heartbeats : t -> ?config:Ihnet_monitor.Heartbeat.config -> unit -> Ihnet_monitor.Heartbeat.t
val heartbeat : t -> Ihnet_monitor.Heartbeat.t option

(** {1 Resource management} *)

val enable_manager : t -> ?wiring:wiring -> unit -> Ihnet_manager.Manager.t
(** Creates the manager ([wiring.headroom]) and starts its shim
    ([wiring.shim_period]). Idempotent. *)

val manager : t -> Ihnet_manager.Manager.t option

val enable_remediation :
  t ->
  ?config:Ihnet_manager.Remediation.config ->
  ?wiring:wiring ->
  unit ->
  Ihnet_manager.Remediation.t
(** Creates the self-healing supervisor (enabling the manager if
    needed, with the same [wiring]) and starts its
    detect → diagnose → act loop. [wiring.heartbeat] and
    [wiring.evidence] select the detector source and the corroboration
    gate — see {!wiring}. Idempotent. *)

val remediation : t -> Ihnet_manager.Remediation.t option
val evidence : t -> Ihnet_monitor.Evidence.t option

val submit_intent :
  t -> Ihnet_manager.Intent.t -> (Ihnet_manager.Placement.t list, Ihnet_manager.Manager.error) result
(** Enables the manager (defaults) if needed, then submits. Match on
    {!Ihnet_manager.Manager.error} (or render it with
    {!Ihnet_manager.Manager.error_to_string}) on refusal. *)

(** {1 Diagnostics shortcuts} *)

val scan : t -> Ihnet_record.Scanport.snapshot
(** Dump the host's full scan chain ({!Ihnet_record.Scanport}):
    fabric registers always, plus the remediation state machines and
    the evidence window when those subsystems are enabled. Zero
    impact — a scanned run is bit-identical to a bare one. *)

val ping : t -> src:string -> dst:string -> Ihnet_util.Units.ns option
val trace : t -> src:string -> dst:string -> Ihnet_monitor.Diagnostics.trace_hop list
val bandwidth : t -> src:string -> dst:string -> float
(** Instantaneous available bandwidth (what-if), bytes/s. *)

val check_configuration : t -> string list
(** Static misconfiguration findings. *)
