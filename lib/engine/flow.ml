type cls = Payload | Monitoring | Heartbeat | Probe | Induced
type size = Bytes of float | Unbounded
type state = Running | Completed | Stopped

type t = {
  id : int;
  tenant : int;
  cls : cls;
  path : Ihnet_topology.Path.t;
  size : size;
  demand : float;
  payload_bytes : int;
  working_set_pages : int;
  llc_target : bool;
  started_at : Ihnet_util.Units.ns;
  mutable weight : float;
  mutable floor : float;
  mutable cap : float;
  mutable rate : float;
  mutable remaining : float;
  mutable transferred : float;
  mutable state : state;
  mutable completed_at : Ihnet_util.Units.ns;
  on_complete : (t -> unit) option;
}

let cls_label = function
  | Payload -> "payload"
  | Monitoring -> "monitoring"
  | Heartbeat -> "heartbeat"
  | Probe -> "probe"
  | Induced -> "induced"

let effective_demand t = Float.min t.demand t.cap

let eta_ns t =
  if t.rate <= 0.0 || t.remaining = infinity then infinity
  else t.remaining /. t.rate *. 1e9

let duration t =
  match t.state with
  | Completed -> t.completed_at -. t.started_at
  | Running | Stopped -> invalid_arg "Flow.duration: flow not completed"

let pp ppf t =
  Format.fprintf ppf "flow#%d[t%d %s rate=%a %s]" t.id t.tenant (cls_label t.cls)
    Ihnet_util.Units.pp_rate t.rate
    (match t.state with Running -> "running" | Completed -> "done" | Stopped -> "stopped")
