type link_fault = {
  capacity_factor : float;
  extra_latency : Ihnet_util.Units.ns;
  loss_prob : float;
}

type t = (Ihnet_topology.Link.id, link_fault) Hashtbl.t

let create () = Hashtbl.create 8
let healthy = { capacity_factor = 1.0; extra_latency = 0.0; loss_prob = 0.0 }

let inject t id f =
  assert (f.capacity_factor >= 0.0 && f.capacity_factor <= 1.0);
  assert (f.loss_prob >= 0.0 && f.loss_prob <= 1.0);
  assert (f.extra_latency >= 0.0);
  Hashtbl.replace t id f

let clear t id = Hashtbl.remove t id
let clear_all t = Hashtbl.reset t
let get t id = Option.value ~default:healthy (Hashtbl.find_opt t id)
let faulty_links t = Hashtbl.fold (fun id f acc -> (id, f) :: acc) t []

let degrade ~capacity_factor ?(extra_latency = 0.0) () =
  { capacity_factor; extra_latency; loss_prob = 0.0 }

let down = { capacity_factor = 0.0; extra_latency = 0.0; loss_prob = 1.0 }
