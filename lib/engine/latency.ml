let beta = 0.5
let max_inflation = 100.0

let hop_latency ~base ~utilization ?(extra = 0.0) () =
  let u = Float.min 0.999 (Float.max 0.0 utilization) in
  let inflation = Float.min max_inflation (1.0 +. (beta *. u /. (1.0 -. u))) in
  (base +. extra) *. inflation

let stalled = 1e12

let serialization ~bytes ~rate =
  if rate = infinity then 0.0
  else if rate > 0.0 then Float.min stalled (bytes /. rate *. 1e9)
  else stalled

