module T = Ihnet_topology
module U = Ihnet_util

type entry = { flow : Flow.t; usage : (int * float) list }

(* Per-socket memory fan-out used to stripe induced DDIO traffic. *)
type socket_mem = {
  socket_dev : T.Device.id;
  to_mem : (int * float) list; (* resources socket->DIMMs, striped coefficients *)
  from_mem : (int * float) list; (* resources DIMMs->socket *)
}

type t = {
  sim : Sim.t;
  topo : T.Topology.t;
  rng : U.Rng.t;
  faults : Fault.t;
  mutable cache : Cache.t;
  mutable entries : entry list; (* active flows, insertion order (kept reversed) *)
  mutable next_flow_id : int;
  mutable epoch : int;
  mutable last_update : float;
  mutable load : float array; (* per resource, set by reallocate *)
  mutable flows_on : int array; (* active flow count per resource *)
  (* induced DDIO traffic, per socket *)
  mutable ddio_write : float array;
  mutable ddio_hit : float array;
  mutable spill_wb : float array; (* write-back rate, socket->mem *)
  mutable spill_rr : float array; (* re-read rate, mem->socket *)
  socket_mems : socket_mem option array; (* indexed by socket number *)
  link_bytes : float array;
  tenant_bytes_tbl : (int * int, float) Hashtbl.t; (* (resource, tenant) -> bytes *)
  cls_bytes_tbl : (int * int, float) Hashtbl.t; (* (resource, cls index) -> bytes *)
  mutable allocs : int;
  mutable in_batch : bool; (* defer reallocation inside Fabric.batch *)
  mutable listeners : (event -> unit) list; (* registration order *)
}

and event =
  | Flow_started of Flow.t
  | Flow_completed of Flow.t
  | Flow_stopped of Flow.t
  | Fault_injected of T.Link.id * Fault.link_fault
  | Fault_cleared of T.Link.id

let res_of link_id (dir : T.Link.dir) = (2 * link_id) + match dir with T.Link.Fwd -> 0 | T.Link.Rev -> 1

let cls_index : Flow.cls -> int = function
  | Flow.Payload -> 0
  | Flow.Monitoring -> 1
  | Flow.Heartbeat -> 2
  | Flow.Probe -> 3
  | Flow.Induced -> 4

let nresources topo = 2 * T.Topology.link_count topo

(* Build the striped socket->memory usage lists: each memory-controller
   mesh link carries 1/#mc of the rate, each DDR channel 1/#channels
   (hardware interleaving). *)
let build_socket_mems topo =
  let sockets =
    T.Topology.find_devices topo (fun d ->
        match d.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false)
  in
  let max_socket =
    List.fold_left (fun acc (d : T.Device.t) -> max acc d.socket) (-1) sockets
  in
  let arr = Array.make (max_socket + 1) None in
  List.iter
    (fun (sock : T.Device.t) ->
      let mcs =
        List.filter_map
          (fun ((l : T.Link.t), peer) ->
            match (T.Topology.device topo peer).T.Device.kind with
            | T.Device.Memory_controller _ -> Some (l, peer)
            | _ -> None)
          (T.Topology.neighbors topo sock.id)
      in
      if mcs <> [] then begin
        let nmc = float_of_int (List.length mcs) in
        let channels =
          List.concat_map
            (fun (_, mc) ->
              List.filter_map
                (fun ((l : T.Link.t), peer) ->
                  match (T.Topology.device topo peer).T.Device.kind with
                  | T.Device.Dimm _ -> Some (l, mc)
                  | _ -> None)
                (T.Topology.neighbors topo mc))
            mcs
        in
        let nch = float_of_int (max 1 (List.length channels)) in
        let dir_out (l : T.Link.t) from = if l.a = from then T.Link.Fwd else T.Link.Rev in
        let to_mem =
          List.map (fun ((l : T.Link.t), _) -> (res_of l.id (dir_out l sock.id), 1.0 /. nmc)) mcs
          @ List.map
              (fun ((l : T.Link.t), mc) -> (res_of l.id (dir_out l mc), 1.0 /. nch))
              channels
        in
        let from_mem =
          List.map
            (fun ((l : T.Link.t), _) ->
              (res_of l.id (T.Link.opposite (dir_out l sock.id)), 1.0 /. nmc))
            mcs
          @ List.map
              (fun ((l : T.Link.t), mc) ->
                (res_of l.id (T.Link.opposite (dir_out l mc)), 1.0 /. nch))
              channels
        in
        arr.(sock.socket) <- Some { socket_dev = sock.id; to_mem; from_mem }
      end)
    sockets;
  arr

let create ?(seed = 42) sim topo =
  let nr = nresources topo in
  let socket_mems = build_socket_mems topo in
  let ns = Array.length socket_mems in
  {
    sim;
    topo;
    rng = U.Rng.create seed;
    faults = Fault.create ();
    cache = Cache.create (T.Topology.config topo).T.Hostconfig.ddio;
    entries = [];
    next_flow_id = 0;
    epoch = 0;
    last_update = Sim.now sim;
    load = Array.make nr 0.0;
    flows_on = Array.make nr 0;
    ddio_write = Array.make (max 1 ns) 0.0;
    ddio_hit = Array.make (max 1 ns) 1.0;
    spill_wb = Array.make (max 1 ns) 0.0;
    spill_rr = Array.make (max 1 ns) 0.0;
    socket_mems;
    link_bytes = Array.make nr 0.0;
    tenant_bytes_tbl = Hashtbl.create 64;
    cls_bytes_tbl = Hashtbl.create 16;
    allocs = 0;
    in_batch = false;
    listeners = [];
  }

let subscribe t f = t.listeners <- t.listeners @ [ f ]
let emit t ev = List.iter (fun f -> f ev) t.listeners

let sim t = t.sim
let topology t = t.topo
let rng t = t.rng
let now t = Sim.now t.sim

(* Faults degrade both directions alike; [dir] is kept for interface
   symmetry with the per-direction telemetry. *)
let effective_capacity t link_id _dir =
  let link = T.Topology.link t.topo link_id in
  let f = Fault.get t.faults link_id in
  link.T.Link.capacity *. f.Fault.capacity_factor

let capacities t =
  let nr = nresources t.topo in
  Array.init nr (fun r ->
      let link_id = r / 2 in
      let dir = if r mod 2 = 0 then T.Link.Fwd else T.Link.Rev in
      effective_capacity t link_id dir)

(* Integrate flow progress and byte counters from last_update to now. *)
let add_bytes t res tenant cls bytes =
  t.link_bytes.(res) <- t.link_bytes.(res) +. bytes;
  let bump tbl key =
    Hashtbl.replace tbl key (bytes +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key))
  in
  bump t.tenant_bytes_tbl (res, tenant);
  bump t.cls_bytes_tbl (res, cls_index cls)

let sync t =
  let now = Sim.now t.sim in
  let dt = now -. t.last_update in
  if dt > 0.0 then begin
    let secs = dt /. 1e9 in
    List.iter
      (fun e ->
        let f = e.flow in
        if f.Flow.state = Flow.Running && f.Flow.rate > 0.0 then begin
          let goodput = f.Flow.rate *. secs in
          f.Flow.transferred <- f.Flow.transferred +. goodput;
          if f.Flow.remaining <> infinity then
            f.Flow.remaining <- Float.max 0.0 (f.Flow.remaining -. goodput);
          List.iter
            (fun (res, coeff) -> add_bytes t res f.Flow.tenant f.Flow.cls (f.Flow.rate *. coeff *. secs))
            e.usage
        end)
      t.entries;
    (* induced DDIO traffic *)
    Array.iteri
      (fun s sm ->
        match sm with
        | None -> ()
        | Some sm ->
          if t.spill_wb.(s) > 0.0 then
            List.iter
              (fun (res, coeff) -> add_bytes t res 0 Flow.Induced (t.spill_wb.(s) *. coeff *. secs))
              sm.to_mem;
          if t.spill_rr.(s) > 0.0 then
            List.iter
              (fun (res, coeff) -> add_bytes t res 0 Flow.Induced (t.spill_rr.(s) *. coeff *. secs))
              sm.from_mem)
      t.socket_mems;
    t.last_update <- now
  end
  else t.last_update <- now

(* The socket (number) an llc_target flow writes into, when its
   destination is a CPU socket. *)
let llc_socket t (f : Flow.t) =
  let dst = f.path.T.Path.dst in
  match (T.Topology.device t.topo dst).T.Device.kind with
  | T.Device.Cpu_socket _ -> Some (T.Topology.device t.topo dst).T.Device.socket
  | _ -> None

let demand_of_entry e : Fairshare.demand =
  let f = e.flow in
  {
    Fairshare.weight = f.Flow.weight;
    floor = f.Flow.floor;
    cap = Flow.effective_demand f;
    usage = e.usage;
  }

let spill_demand rate usage : Fairshare.demand =
  { Fairshare.weight = 1.0; floor = 0.0; cap = rate; usage }

exception Stale

(* Recompute all rates; resolve the DDIO spill fixed point by a short
   damped iteration (spill depends on allocated write rates which depend
   on memory-bus contention which includes spill). *)
let rec reallocate t =
  if t.in_batch then ()
  else reallocate_now t

and reallocate_now t =
  sync t;
  t.allocs <- t.allocs + 1;
  t.epoch <- t.epoch + 1;
  let caps = capacities t in
  let nr = Array.length caps in
  let active = List.filter (fun e -> e.flow.Flow.state = Flow.Running) t.entries in
  t.entries <- active;
  let entries = Array.of_list (List.rev active) in
  let n = Array.length entries in
  let ns = Array.length t.socket_mems in
  let ddio_on = Cache.enabled t.cache in
  let wb = Array.make (max 1 ns) 0.0 and rr = Array.make (max 1 ns) 0.0 in
  let write = Array.make (max 1 ns) 0.0 and hit = Array.make (max 1 ns) 1.0 in
  let rates = ref (Array.make n 0.0) in
  (* the spill fixed point only matters when LLC-targeted flows exist *)
  let any_llc = Array.exists (fun e -> e.flow.Flow.llc_target) entries in
  let iterations = if ns > 0 && any_llc then 4 else 1 in
  for _iter = 1 to iterations do
    let spills = ref [] in
    Array.iteri
      (fun s sm ->
        match sm with
        | None -> ()
        | Some sm ->
          if wb.(s) > 0.0 then spills := spill_demand wb.(s) sm.to_mem :: !spills;
          if rr.(s) > 0.0 then spills := spill_demand rr.(s) sm.from_mem :: !spills)
      t.socket_mems;
    let demands =
      Array.append (Array.map demand_of_entry entries) (Array.of_list !spills)
    in
    let all = Fairshare.allocate ~capacities:caps demands in
    rates := Array.sub all 0 n;
    (* recompute spill targets from the allocated LLC write rates *)
    Array.fill write 0 (Array.length write) 0.0;
    Array.iteri
      (fun i e ->
        if e.flow.Flow.llc_target then
          match llc_socket t e.flow with
          | Some s when s >= 0 && s < ns -> write.(s) <- write.(s) +. !rates.(i)
          | Some _ | None -> ())
      entries;
    for s = 0 to ns - 1 do
      let h = Cache.hit_rate t.cache ~write_rate:write.(s) in
      hit.(s) <- (if ddio_on then h else 0.0);
      let target_wb, target_rr =
        if write.(s) <= 0.0 then (0.0, 0.0)
        else if ddio_on then ((1.0 -. h) *. write.(s), (1.0 -. h) *. write.(s))
        else (write.(s), 0.0)
      in
      wb.(s) <- (wb.(s) +. target_wb) /. 2.0;
      rr.(s) <- (rr.(s) +. target_rr) /. 2.0
    done
  done;
  (* commit rates *)
  Array.iteri (fun i e -> e.flow.Flow.rate <- !rates.(i)) entries;
  t.ddio_write <- write;
  t.ddio_hit <- hit;
  t.spill_wb <- wb;
  t.spill_rr <- rr;
  (* recompute loads and per-resource flow counts *)
  let load = Array.make nr 0.0 and fon = Array.make nr 0 in
  Array.iter
    (fun e ->
      List.iter
        (fun (res, coeff) ->
          load.(res) <- load.(res) +. (e.flow.Flow.rate *. coeff);
          fon.(res) <- fon.(res) + 1)
        e.usage)
    entries;
  Array.iteri
    (fun s sm ->
      match sm with
      | None -> ()
      | Some sm ->
        List.iter (fun (res, c) -> load.(res) <- load.(res) +. (wb.(s) *. c)) sm.to_mem;
        List.iter (fun (res, c) -> load.(res) <- load.(res) +. (rr.(s) *. c)) sm.from_mem)
    t.socket_mems;
  t.load <- load;
  t.flows_on <- fon;
  schedule_next_completion t

and schedule_next_completion t =
  let next =
    List.fold_left
      (fun acc e ->
        let f = e.flow in
        if f.Flow.state = Flow.Running && f.Flow.remaining <> infinity && f.Flow.rate > 0.0
        then Float.min acc (f.Flow.remaining /. f.Flow.rate *. 1e9)
        else acc)
      infinity t.entries
  in
  if next < infinity then begin
    let epoch = t.epoch in
    Sim.schedule t.sim ~after:next (fun _ ->
        match if epoch <> t.epoch then raise_notrace Stale with
        | () -> handle_completions t
        | exception Stale -> ())
  end

and handle_completions t =
  sync t;
  let completed, rest =
    List.partition
      (fun e -> e.flow.Flow.state = Flow.Running && e.flow.Flow.remaining <= 1.0)
      t.entries
  in
  t.entries <- rest;
  List.iter
    (fun e ->
      let f = e.flow in
      f.Flow.state <- Flow.Completed;
      f.Flow.remaining <- 0.0;
      f.Flow.completed_at <- Sim.now t.sim;
      f.Flow.rate <- 0.0)
    completed;
  reallocate t;
  (* callbacks run after reallocation so they observe a consistent fabric *)
  List.iter
    (fun e ->
      emit t (Flow_completed e.flow);
      match e.flow.Flow.on_complete with Some cb -> cb e.flow | None -> ())
    completed

(* Capacity-consumption coefficient of a flow on one hop. *)
let hop_coeff t ~payload_bytes ~working_set_pages (hop : T.Path.hop) =
  match hop.link.T.Link.kind with
  | T.Link.Pcie _ ->
    let config = T.Topology.config t.topo in
    let mps = min payload_bytes config.T.Hostconfig.pcie_mps in
    let proto = 1.0 /. T.Pcie.payload_efficiency ~mps in
    let iommu =
      Iommu.bandwidth_overhead_factor config.T.Hostconfig.iommu ~working_set_pages
        ~payload_bytes:mps
    in
    proto *. iommu
  | T.Link.Cxl _ ->
    (* 64 B flits with 2-4 B overhead and no IOMMU on the coherent
       path: near-wire efficiency *)
    1.04
  | T.Link.Inter_socket | T.Link.Intra_socket | T.Link.Memory_channel | T.Link.Inter_host ->
    1.0

let usage_of_path t ~payload_bytes ~working_set_pages (path : T.Path.t) =
  List.map
    (fun (hop : T.Path.hop) ->
      (res_of hop.link.T.Link.id hop.dir, hop_coeff t ~payload_bytes ~working_set_pages hop))
    path.T.Path.hops

let start_flow t ~tenant ?(cls = Flow.Payload) ?(weight = 1.0) ?(floor = 0.0) ?(cap = infinity)
    ?(demand = infinity) ?payload_bytes ?(working_set_pages = 32) ?(llc_target = false)
    ?on_complete ~path ~size () =
  if not (T.Path.well_formed t.topo path) then invalid_arg "Fabric.start_flow: malformed path";
  if weight <= 0.0 then invalid_arg "Fabric.start_flow: weight must be positive";
  if floor < 0.0 || cap < 0.0 || demand < 0.0 then
    invalid_arg "Fabric.start_flow: negative rate bound";
  let payload_bytes =
    match payload_bytes with
    | Some p ->
      if p <= 0 then invalid_arg "Fabric.start_flow: payload_bytes must be positive";
      p
    | None -> (T.Topology.config t.topo).T.Hostconfig.pcie_mps
  in
  if llc_target then begin
    let dst_kind = (T.Topology.device t.topo path.T.Path.dst).T.Device.kind in
    match dst_kind with
    | T.Device.Cpu_socket _ -> ()
    | _ -> invalid_arg "Fabric.start_flow: llc_target path must end at a CPU socket"
  end;
  let flow =
    {
      Flow.id = t.next_flow_id;
      tenant;
      cls;
      path;
      size;
      demand;
      payload_bytes;
      llc_target;
      started_at = Sim.now t.sim;
      weight;
      floor;
      cap;
      rate = 0.0;
      remaining = (match size with Flow.Bytes b -> b | Flow.Unbounded -> infinity);
      transferred = 0.0;
      state = Flow.Running;
      completed_at = nan;
      on_complete;
    }
  in
  t.next_flow_id <- t.next_flow_id + 1;
  let usage = usage_of_path t ~payload_bytes ~working_set_pages path in
  t.entries <- { flow; usage } :: t.entries;
  reallocate t;
  emit t (Flow_started flow);
  flow

let stop_flow t (f : Flow.t) =
  if f.Flow.state = Flow.Running then begin
    sync t;
    f.Flow.state <- Flow.Stopped;
    f.Flow.rate <- 0.0;
    t.entries <- List.filter (fun e -> e.flow.Flow.id <> f.Flow.id) t.entries;
    reallocate t;
    emit t (Flow_stopped f)
  end

let set_flow_limits t (f : Flow.t) ?weight ?floor ?cap () =
  Option.iter (fun w -> if w <= 0.0 then invalid_arg "set_flow_limits: weight" else f.Flow.weight <- w) weight;
  Option.iter (fun x -> if x < 0.0 then invalid_arg "set_flow_limits: floor" else f.Flow.floor <- x) floor;
  Option.iter (fun x -> if x < 0.0 then invalid_arg "set_flow_limits: cap" else f.Flow.cap <- x) cap;
  if f.Flow.state = Flow.Running then reallocate t

let active_flows t = List.rev_map (fun e -> e.flow) t.entries
let flow_count t = List.length t.entries
let refresh t = sync t

let batch t f =
  if t.in_batch then f ()
  else begin
    t.in_batch <- true;
    Fun.protect
      ~finally:(fun () ->
        t.in_batch <- false;
        reallocate t)
      f
  end

let transfer_time t ~path ~bytes =
  let usage = usage_of_path t ~payload_bytes:(T.Topology.config t.topo).T.Hostconfig.pcie_mps ~working_set_pages:32 path in
  let caps = capacities t in
  let existing = List.rev_map demand_of_entry t.entries in
  let probe = { Fairshare.weight = 1.0; floor = 0.0; cap = infinity; usage } in
  let demands = Array.of_list (existing @ [ probe ]) in
  let rates = Fairshare.allocate ~capacities:caps demands in
  let rate = rates.(Array.length rates - 1) in
  if rate <= 0.0 then None else Some (bytes /. rate *. 1e9)

let link_rate t link_id dir = t.load.(res_of link_id dir)

let link_utilization t link_id dir =
  let cap = effective_capacity t link_id dir in
  let rate = link_rate t link_id dir in
  if cap <= 0.0 then if rate > 0.0 then 1.0 else 0.0 else Float.min 1.0 (rate /. cap)

let link_bytes t link_id dir =
  sync t;
  t.link_bytes.(res_of link_id dir)

let tenant_link_bytes t link_id dir ~tenant =
  sync t;
  Option.value ~default:0.0 (Hashtbl.find_opt t.tenant_bytes_tbl (res_of link_id dir, tenant))

let cls_link_bytes t link_id dir ~cls =
  sync t;
  Option.value ~default:0.0 (Hashtbl.find_opt t.cls_bytes_tbl (res_of link_id dir, cls_index cls))

let tenant_bytes t ~tenant =
  sync t;
  Hashtbl.fold
    (fun (_, tn) b acc -> if tn = tenant then acc +. b else acc)
    t.tenant_bytes_tbl 0.0

let crosses_root_complex t (path : T.Path.t) =
  List.exists
    (fun id ->
      match (T.Topology.device t.topo id).T.Device.kind with
      | T.Device.Root_complex -> true
      | _ -> false)
    (T.Path.devices path)

let path_latency t ?(payload_bytes = 0) ?(working_set_pages = 32) (path : T.Path.t) =
  let hops_latency =
    List.fold_left
      (fun acc (hop : T.Path.hop) ->
        let f = Fault.get t.faults hop.link.T.Link.id in
        let u = link_utilization t hop.link.T.Link.id hop.dir in
        acc
        +. Latency.hop_latency ~base:hop.link.T.Link.base_latency ~utilization:u
             ~extra:f.Fault.extra_latency ())
      0.0 path.T.Path.hops
  in
  let iommu_latency =
    if crosses_root_complex t path then
      Iommu.expected_translation_latency (T.Topology.config t.topo).T.Hostconfig.iommu
        ~working_set_pages
    else 0.0
  in
  let serialization =
    if payload_bytes <= 0 then 0.0
    else begin
      (* a small message is serialized at roughly the rate a new flow
         would get: the larger of residual capacity and a fair share *)
      let rate =
        List.fold_left
          (fun acc (hop : T.Path.hop) ->
            let res = res_of hop.link.T.Link.id hop.dir in
            let cap = effective_capacity t hop.link.T.Link.id hop.dir in
            let residual = Float.max 0.0 (cap -. t.load.(res)) in
            let fair = cap /. float_of_int (t.flows_on.(res) + 1) in
            Float.min acc (Float.max residual fair))
          infinity path.T.Path.hops
      in
      if rate = infinity || rate <= 0.0 then 0.0
      else Latency.serialization ~bytes:(float_of_int payload_bytes) ~rate
    end
  in
  hops_latency +. iommu_latency +. serialization

(* WFQ delay isolation: a flow holding a guaranteed floor is served at
   least at that rate on every hop regardless of the aggregate queue, so
   its queueing delay follows its OWN utilization of the guarantee, not
   the aggregate's. Unmanaged flows (floor 0) see the aggregate. *)
let flow_path_latency t ?(payload_bytes = 0) (flow : Flow.t) =
  let path = flow.Flow.path in
  let base = path_latency t ~payload_bytes path in
  if flow.Flow.floor <= 0.0 then base
  else begin
    let own_u = Float.min 0.999 (flow.Flow.rate /. flow.Flow.floor) in
    let hops_latency =
      List.fold_left
        (fun acc (hop : T.Path.hop) ->
          let f = Fault.get t.faults hop.link.T.Link.id in
          let agg_u = link_utilization t hop.link.T.Link.id hop.T.Path.dir in
          let u = Float.min own_u agg_u in
          acc
          +. Latency.hop_latency ~base:hop.link.T.Link.base_latency ~utilization:u
               ~extra:f.Fault.extra_latency ())
        0.0 path.T.Path.hops
    in
    let iommu_latency =
      if crosses_root_complex t path then
        Iommu.expected_translation_latency (T.Topology.config t.topo).T.Hostconfig.iommu
          ~working_set_pages:32
      else 0.0
    in
    let serialization =
      (* once its WFQ slot arrives the message moves at wire speed; the
         waiting is already captured by the queueing term above *)
      if payload_bytes <= 0 then 0.0
      else
        let bottleneck =
          List.fold_left
            (fun acc (hop : T.Path.hop) ->
              Float.min acc (effective_capacity t hop.link.T.Link.id hop.T.Path.dir))
            infinity path.T.Path.hops
        in
        if bottleneck <= 0.0 || bottleneck = infinity then 0.0
        else Latency.serialization ~bytes:(float_of_int payload_bytes) ~rate:bottleneck
    in
    Float.min base (hops_latency +. iommu_latency +. serialization)
  end

let probe_loss_prob t (path : T.Path.t) =
  let survive =
    List.fold_left
      (fun acc (hop : T.Path.hop) ->
        let f = Fault.get t.faults hop.link.T.Link.id in
        acc *. (1.0 -. f.Fault.loss_prob))
      1.0 path.T.Path.hops
  in
  1.0 -. survive

let ddio_write_rate t ~socket =
  if socket >= 0 && socket < Array.length t.ddio_write then t.ddio_write.(socket) else 0.0

let ddio_hit_rate t ~socket =
  if socket >= 0 && socket < Array.length t.ddio_hit then t.ddio_hit.(socket) else 1.0

let ddio_spill_rate t ~socket =
  if socket >= 0 && socket < Array.length t.spill_wb then
    t.spill_wb.(socket) +. t.spill_rr.(socket)
  else 0.0

let inject_fault t link_id fault =
  Fault.inject t.faults link_id fault;
  reallocate t;
  emit t (Fault_injected (link_id, fault))

let clear_fault t link_id =
  Fault.clear t.faults link_id;
  reallocate t;
  emit t (Fault_cleared link_id)

let clear_all_faults t =
  Fault.clear_all t.faults;
  reallocate t

let fault_of t link_id = Fault.get t.faults link_id

let on_device_links t device f =
  batch t (fun () ->
      List.iter (fun ((l : T.Link.t), _) -> f l.T.Link.id) (T.Topology.neighbors t.topo device))

let fail_device t device = on_device_links t device (fun id -> inject_fault t id Fault.down)
let revive_device t device = on_device_links t device (fun id -> clear_fault t id)

let set_config t config =
  T.Topology.set_config t.topo config;
  t.cache <- Cache.create config.T.Hostconfig.ddio;
  reallocate t

let reallocations t = t.allocs
