module T = Ihnet_topology
module U = Ihnet_util

(* An active flow plus the allocator-facing view of it. [conn] is the
   connectivity footprint used to partition flows into contention
   components: the usage resources, plus — for LLC-targeted flows —
   the destination socket's virtual coupling resource and its memory
   links, because DDIO spill couples every LLC-targeted flow on a
   socket (and everything sharing the socket's memory bus) into one
   component. *)
type entry = {
  flow : Flow.t;
  usage : (int * float) list;
  conn : int array;
  mutable dem : Fairshare.demand;
      (* cached allocator view; rebuilt only when the flow's limits
         change, not on every reallocation *)
  trow : float array; (* per-resource cumulative bytes, owning tenant's row *)
  crow : float array; (* per-resource cumulative bytes, traffic class row *)
  mutable mark : int; (* component-BFS visit generation *)
  mutable hstamp : int; (* completion-heap generation (lazy invalidation) *)
}

(* Per-socket memory fan-out used to stripe induced DDIO traffic. *)
type socket_mem = {
  socket_dev : T.Device.id;
  to_mem : (int * float) list; (* resources socket->DIMMs, striped coefficients *)
  from_mem : (int * float) list; (* resources DIMMs->socket *)
}

(* What a component's allocation pass produces; the socket arrays are
   full-width (indexed by global socket number) but only the slots in
   [c_sockets] are meaningful. *)
type comp_result = {
  cr_rates : float array; (* per entry, in c_entries order *)
  cr_write : float array;
  cr_hit : float array;
  cr_wb : float array;
  cr_rr : float array;
  cr_load : float array; (* per resource, in c_res order *)
  cr_flows : int array; (* active flow count per resource, c_res order *)
  cr_stats : Fairshare.stats; (* solver work this compute did (zeros when cold) *)
}

(* Warm-start memo: one fully-computed component result, keyed by the
   exact inputs [compute_component] read. A hit replays the result
   without solving; any input difference — a demand record, the
   connectivity footprint, an effective capacity, the cache config
   generation — misses and recomputes. Entry identity does not matter,
   only values: a stopped-and-restarted identical flow legitimately
   hits. *)
type comp_memo = {
  m_dems : Fairshare.demand array; (* snapshot, c_entries order *)
  m_conn : int array array;
  m_llc : bool array;
  m_res : int array;
  m_sockets : int array;
  m_caps : float array; (* effective capacities at m_res indices *)
  m_gen : int; (* cache-config generation at compute time *)
  m_result : comp_result;
  mutable m_epoch : int; (* last hit, for LRU within a bucket *)
}

(* The always-on latency plane: one fixed-geometry sketch per (link,
   dir) resource plus one for end-to-end flow latencies. Off by default
   ([sketches = None]); recording is a pure observation of committed
   state, so enabling it never perturbs rates, events or digests. *)
type sketch_plane = {
  sk_links : U.Sketch.t array; (* indexed by resource (res_of) *)
  sk_flows : U.Sketch.t;
}

type t = {
  sim : Sim.t;
  topo : T.Topology.t;
  rng : U.Rng.t;
  faults : Fault.t;
  sensorfaults : Sensorfault.t;
  mutable cache : Cache.t;
  entries : (int, entry) Hashtbl.t; (* flow id -> entry *)
  mutable next_flow_id : int;
  mutable epoch : int;
  mutable last_update : float;
  mutable load : float array; (* per resource, maintained by reallocate *)
  mutable flows_on : int array; (* active flow count per resource *)
  (* induced DDIO traffic, per socket *)
  mutable ddio_write : float array;
  mutable ddio_hit : float array;
  mutable spill_wb : float array; (* write-back rate, socket->mem *)
  mutable spill_rr : float array; (* re-read rate, mem->socket *)
  socket_mems : socket_mem option array; (* indexed by socket number *)
  link_bytes : float array;
  tenant_rows : (int, float array) Hashtbl.t; (* tenant -> per-resource bytes *)
  cls_rows : float array array; (* cls index -> per-resource bytes *)
  induced_trow : float array; (* tenant 0's row, cached for the spill path *)
  mutable allocs : int;
  mutable in_batch : bool; (* defer reallocation inside Fabric.batch *)
  mutable listeners : (event -> unit) list; (* registration order *)
  (* incremental allocation state *)
  nr : int; (* real (link, dir) resource count *)
  res_entries : entry list array; (* conn resource -> incident entries *)
  socket_of_res : int array; (* conn resource -> DDIO-coupled socket, -1 if none *)
  caps : float array; (* cached effective capacities, refreshed on faults *)
  mutable comp_gen : int; (* BFS generation counter *)
  res_mark : int array; (* conn resource -> last visit generation *)
  socket_mark : int array; (* socket -> last visit generation *)
  comp_entries : entry U.Vec.t; (* scratch: current component's members *)
  comp_res : int U.Vec.t; (* scratch: current component's real resources *)
  comp_sockets : int U.Vec.t; (* scratch: current component's coupled sockets *)
  cheap : (entry * int) U.Heap.t; (* completion times, prio = absolute ns *)
  domains : int; (* requested pool width (1 = sequential) *)
  pool : U.Pool.t option; (* shared domain pool, present iff domains > 1 *)
  (* warm-started arbitration *)
  warm : bool; (* memoize component results + warm-start the solver *)
  comp_cache : (int, comp_memo list) Hashtbl.t; (* min component resource -> memos *)
  mutable cache_gen : int; (* bumped when the cache config changes *)
  mutable warm_hits : int;
  mutable warm_misses : int;
  mutable solver_stats : Fairshare.stats; (* cumulative, over component computes *)
  mutable sketches : sketch_plane option; (* latency plane, off by default *)
}

and event =
  | Flow_started of Flow.t
  | Flow_completed of Flow.t
  | Flow_stopped of Flow.t
  | Fault_injected of T.Link.id * Fault.link_fault
  | Fault_cleared of T.Link.id
  | All_faults_cleared
  | Limits_changed of Flow.t
  | Config_changed of T.Hostconfig.t
  | Reallocated of int (* the new epoch *)
  | Batch_started
  | Batch_ended
  | Synced
  | Sensor_fault_injected of Sensorfault.target * Sensorfault.sensor_fault
  | Sensor_fault_cleared of Sensorfault.target

let res_of link_id (dir : T.Link.dir) = (2 * link_id) + match dir with T.Link.Fwd -> 0 | T.Link.Rev -> 1

let cls_index : Flow.cls -> int = function
  | Flow.Payload -> 0
  | Flow.Monitoring -> 1
  | Flow.Heartbeat -> 2
  | Flow.Probe -> 3
  | Flow.Induced -> 4

let cls_count = 5
let nresources topo = 2 * T.Topology.link_count topo

(* Build the striped socket->memory usage lists: each memory-controller
   mesh link carries 1/#mc of the rate, each DDR channel 1/#channels
   (hardware interleaving). *)
let build_socket_mems topo =
  let sockets =
    T.Topology.find_devices topo (fun d ->
        match d.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false)
  in
  let max_socket =
    List.fold_left (fun acc (d : T.Device.t) -> max acc d.socket) (-1) sockets
  in
  let arr = Array.make (max_socket + 1) None in
  List.iter
    (fun (sock : T.Device.t) ->
      let mcs =
        List.filter_map
          (fun ((l : T.Link.t), peer) ->
            match (T.Topology.device topo peer).T.Device.kind with
            | T.Device.Memory_controller _ -> Some (l, peer)
            | _ -> None)
          (T.Topology.neighbors topo sock.id)
      in
      if mcs <> [] then begin
        let nmc = float_of_int (List.length mcs) in
        let channels =
          List.concat_map
            (fun (_, mc) ->
              List.filter_map
                (fun ((l : T.Link.t), peer) ->
                  match (T.Topology.device topo peer).T.Device.kind with
                  | T.Device.Dimm _ -> Some (l, mc)
                  | _ -> None)
                (T.Topology.neighbors topo mc))
            mcs
        in
        let nch = float_of_int (max 1 (List.length channels)) in
        let dir_out (l : T.Link.t) from = if l.a = from then T.Link.Fwd else T.Link.Rev in
        let to_mem =
          List.map (fun ((l : T.Link.t), _) -> (res_of l.id (dir_out l sock.id), 1.0 /. nmc)) mcs
          @ List.map
              (fun ((l : T.Link.t), mc) -> (res_of l.id (dir_out l mc), 1.0 /. nch))
              channels
        in
        let from_mem =
          List.map
            (fun ((l : T.Link.t), _) ->
              (res_of l.id (T.Link.opposite (dir_out l sock.id)), 1.0 /. nmc))
            mcs
          @ List.map
              (fun ((l : T.Link.t), mc) ->
                (res_of l.id (T.Link.opposite (dir_out l mc)), 1.0 /. nch))
              channels
        in
        arr.(sock.socket) <- Some { socket_dev = sock.id; to_mem; from_mem }
      end)
    sockets;
  arr

(* Faults degrade both directions alike; [dir] is kept for interface
   symmetry with the per-direction telemetry. *)
let effective_capacity t link_id _dir =
  let link = T.Topology.link t.topo link_id in
  let f = Fault.get t.faults link_id in
  link.T.Link.capacity *. f.Fault.capacity_factor

let refresh_link_caps t link_id =
  let c = effective_capacity t link_id T.Link.Fwd in
  t.caps.(res_of link_id T.Link.Fwd) <- c;
  t.caps.(res_of link_id T.Link.Rev) <- c

let refresh_all_caps t =
  List.iter (fun (l : T.Link.t) -> refresh_link_caps t l.T.Link.id) (T.Topology.links t.topo)

(* Warm-started arbitration defaults on; IHNET_WARM=0 forces the cold
   path everywhere (the escape hatch the determinism tests use to
   cross-check warm against cold at full fabric scale). *)
let warm_default () =
  match Sys.getenv_opt "IHNET_WARM" with
  | Some ("0" | "off" | "false") -> false
  | Some _ | None -> true

let create ?(seed = 42) ?domains ?warm sim topo =
  let warm = match warm with Some w -> w | None -> warm_default () in
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Fabric.create: domains must be >= 1";
      min d 64
    | None -> U.Pool.default_domains ()
  in
  let nr = nresources topo in
  let socket_mems = build_socket_mems topo in
  let ns = Array.length socket_mems in
  let cache = Cache.create (T.Topology.config topo).T.Hostconfig.ddio in
  let socket_of_res = Array.make (nr + ns) (-1) in
  Array.iteri
    (fun s sm ->
      match sm with
      | None -> ()
      | Some sm ->
        socket_of_res.(nr + s) <- s;
        List.iter (fun (r, _) -> socket_of_res.(r) <- s) sm.to_mem;
        List.iter (fun (r, _) -> socket_of_res.(r) <- s) sm.from_mem)
    socket_mems;
  let induced_trow = Array.make nr 0.0 in
  let tenant_rows = Hashtbl.create 64 in
  Hashtbl.add tenant_rows 0 induced_trow;
  let t =
    {
      sim;
      topo;
      rng = U.Rng.create seed;
      faults = Fault.create ();
      sensorfaults = Sensorfault.create ();
      cache;
      entries = Hashtbl.create 256;
      next_flow_id = 0;
      epoch = 0;
      last_update = Sim.now sim;
      load = Array.make nr 0.0;
      flows_on = Array.make nr 0;
      ddio_write = Array.make (max 1 ns) 0.0;
      ddio_hit = Array.make (max 1 ns) (if Cache.enabled cache then 1.0 else 0.0);
      spill_wb = Array.make (max 1 ns) 0.0;
      spill_rr = Array.make (max 1 ns) 0.0;
      socket_mems;
      link_bytes = Array.make nr 0.0;
      tenant_rows;
      cls_rows = Array.init cls_count (fun _ -> Array.make nr 0.0);
      induced_trow;
      allocs = 0;
      in_batch = false;
      listeners = [];
      nr;
      res_entries = Array.make (nr + ns) [];
      socket_of_res;
      caps = Array.make nr 0.0;
      comp_gen = 0;
      res_mark = Array.make (nr + ns) 0;
      socket_mark = Array.make (max 1 ns) 0;
      comp_entries = U.Vec.create ();
      comp_res = U.Vec.create ();
      comp_sockets = U.Vec.create ();
      cheap = U.Heap.create ();
      domains;
      pool = (if domains > 1 then Some (U.Pool.get domains) else None);
      warm;
      comp_cache = Hashtbl.create 64;
      cache_gen = 0;
      warm_hits = 0;
      warm_misses = 0;
      solver_stats = { Fairshare.solves = 0; full_rebuilds = 0; incremental = 0; unchanged = 0 };
      sketches = None;
    }
  in
  refresh_all_caps t;
  t

let subscribe t f = t.listeners <- t.listeners @ [ f ]
let emit t ev = List.iter (fun f -> f ev) t.listeners

let sim t = t.sim
let topology t = t.topo
let rng t = t.rng
let now t = Sim.now t.sim
let domains t = t.domains

let tenant_row t tenant =
  match Hashtbl.find_opt t.tenant_rows tenant with
  | Some row -> row
  | None ->
    let row = Array.make t.nr 0.0 in
    Hashtbl.add t.tenant_rows tenant row;
    row

(* Integrate flow progress and byte counters from last_update to now.
   Byte accumulation is a single array store per (hop, counter): each
   entry carries direct references to its tenant and class rows, so the
   per-sync cost is three float bumps per hop with no table lookups. *)
let sync t =
  let now = Sim.now t.sim in
  let dt = now -. t.last_update in
  if dt > 0.0 then begin
    let secs = dt /. 1e9 in
    Hashtbl.iter
      (fun _ e ->
        let f = e.flow in
        if f.Flow.state = Flow.Running && f.Flow.rate > 0.0 then begin
          let goodput = f.Flow.rate *. secs in
          f.Flow.transferred <- f.Flow.transferred +. goodput;
          if f.Flow.remaining <> infinity then
            f.Flow.remaining <- Float.max 0.0 (f.Flow.remaining -. goodput);
          List.iter
            (fun (res, coeff) ->
              let bytes = f.Flow.rate *. coeff *. secs in
              t.link_bytes.(res) <- t.link_bytes.(res) +. bytes;
              e.trow.(res) <- e.trow.(res) +. bytes;
              e.crow.(res) <- e.crow.(res) +. bytes)
            e.usage
        end)
      t.entries;
    (* induced DDIO traffic: infrastructure tenant 0, class Induced *)
    let irow = t.induced_trow and icls = t.cls_rows.(cls_index Flow.Induced) in
    let add_induced res bytes =
      t.link_bytes.(res) <- t.link_bytes.(res) +. bytes;
      irow.(res) <- irow.(res) +. bytes;
      icls.(res) <- icls.(res) +. bytes
    in
    Array.iteri
      (fun s sm ->
        match sm with
        | None -> ()
        | Some sm ->
          if t.spill_wb.(s) > 0.0 then
            List.iter (fun (res, coeff) -> add_induced res (t.spill_wb.(s) *. coeff *. secs)) sm.to_mem;
          if t.spill_rr.(s) > 0.0 then
            List.iter (fun (res, coeff) -> add_induced res (t.spill_rr.(s) *. coeff *. secs)) sm.from_mem)
      t.socket_mems;
    t.last_update <- now
  end
  else t.last_update <- now

(* Public counter reads go through this wrapper: when the read actually
   advances the lazy byte integration, announce it. Replay must
   re-integrate over the same intervals (float addition is not
   associative), so a recorder needs to see every observation-driven
   sync; command-driven syncs (inside reallocate/stop) recur naturally
   when the command is replayed and stay silent. *)
let observed_sync t =
  let stale = t.last_update < Sim.now t.sim in
  sync t;
  if stale && t.listeners <> [] then emit t Synced

(* The socket (number) an llc_target flow writes into, when its
   destination is a CPU socket. *)
let llc_socket t (f : Flow.t) =
  let dst = f.path.T.Path.dst in
  match (T.Topology.device t.topo dst).T.Device.kind with
  | T.Device.Cpu_socket _ -> Some (T.Topology.device t.topo dst).T.Device.socket
  | _ -> None

let demand_of_entry e : Fairshare.demand =
  let f = e.flow in
  {
    Fairshare.weight = f.Flow.weight;
    floor = f.Flow.floor;
    cap = Flow.effective_demand f;
    usage = e.usage;
  }

let spill_demand rate usage : Fairshare.demand =
  { Fairshare.weight = 1.0; floor = 0.0; cap = rate; usage }

(* Connectivity footprint of a flow: its usage resources, widened for
   LLC-targeted flows with the destination socket's virtual coupling
   resource [nr + s] and the socket's memory links. *)
let conn_of t (f : Flow.t) usage =
  let base = List.map fst usage in
  let full =
    if not f.Flow.llc_target then base
    else
      match llc_socket t f with
      | Some s when s >= 0 && s < Array.length t.socket_mems -> (
        match t.socket_mems.(s) with
        | Some sm ->
          ((t.nr + s) :: base) @ List.map fst sm.to_mem @ List.map fst sm.from_mem
        | None -> base)
      | Some _ | None -> base
  in
  Array.of_list (List.sort_uniq compare full)

let register t e =
  Array.iter (fun r -> t.res_entries.(r) <- e :: t.res_entries.(r)) e.conn

let unregister t e =
  let id = e.flow.Flow.id in
  Array.iter
    (fun r ->
      t.res_entries.(r) <- List.filter (fun e' -> e'.flow.Flow.id <> id) t.res_entries.(r))
    e.conn

let all_seeds t = Array.init (Array.length t.res_entries) Fun.id

(* Collect into the scratch vectors the contention component reachable
   from [seeds]: every entry transitively sharing a resource with the
   seeds, every real resource the component touches, and every
   DDIO-coupled socket. Marking a coupled socket pulls in all of its
   memory-side resources, so spill accounting is recomputed whole. *)
let collect_component t seeds =
  t.comp_gen <- t.comp_gen + 1;
  let gen = t.comp_gen in
  U.Vec.clear t.comp_entries;
  U.Vec.clear t.comp_res;
  U.Vec.clear t.comp_sockets;
  let stack = ref [] in
  let rec mark_res r =
    if t.res_mark.(r) <> gen then begin
      t.res_mark.(r) <- gen;
      if r < t.nr then U.Vec.push t.comp_res r;
      stack := r :: !stack;
      let s = t.socket_of_res.(r) in
      if s >= 0 && t.socket_mark.(s) <> gen then begin
        t.socket_mark.(s) <- gen;
        U.Vec.push t.comp_sockets s;
        match t.socket_mems.(s) with
        | Some sm ->
          mark_res (t.nr + s);
          List.iter (fun (r', _) -> mark_res r') sm.to_mem;
          List.iter (fun (r', _) -> mark_res r') sm.from_mem
        | None -> ()
      end
    end
  in
  Array.iter mark_res seeds;
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | r :: rest ->
      stack := rest;
      List.iter
        (fun e ->
          if e.mark <> gen then begin
            e.mark <- gen;
            U.Vec.push t.comp_entries e;
            Array.iter mark_res e.conn
          end)
        t.res_entries.(r)
  done

(* A snapshot of one contention component: the shardable unit of
   reallocation. Components reachable from distinct seeds are
   resource-disjoint by construction, so their allocations are
   independent — each can be computed on any domain. *)
type component = {
  c_entries : entry array; (* BFS discovery order *)
  c_res : int array; (* real resources the component touches *)
  c_sockets : int array; (* DDIO-coupled sockets *)
}

(* Partition the contention closure of [seeds] into its connected
   components, in seed order (first-seed-reached first). The order is a
   pure function of the fabric state and the seed array — never of any
   scheduling decision — so it serves as the canonical component id
   for the deterministic merge below. *)
let collect_components t seeds =
  t.comp_gen <- t.comp_gen + 1;
  let gen = t.comp_gen in
  let comps = ref [] in
  let stack = ref [] in
  let rec mark_res r =
    if t.res_mark.(r) <> gen then begin
      t.res_mark.(r) <- gen;
      if r < t.nr then U.Vec.push t.comp_res r;
      stack := r :: !stack;
      let s = t.socket_of_res.(r) in
      if s >= 0 && t.socket_mark.(s) <> gen then begin
        t.socket_mark.(s) <- gen;
        U.Vec.push t.comp_sockets s;
        match t.socket_mems.(s) with
        | Some sm ->
          mark_res (t.nr + s);
          List.iter (fun (r', _) -> mark_res r') sm.to_mem;
          List.iter (fun (r', _) -> mark_res r') sm.from_mem
        | None -> ()
      end
    end
  in
  Array.iter
    (fun seed ->
      if t.res_mark.(seed) <> gen then begin
        U.Vec.clear t.comp_entries;
        U.Vec.clear t.comp_res;
        U.Vec.clear t.comp_sockets;
        mark_res seed;
        let continue = ref true in
        while !continue do
          match !stack with
          | [] -> continue := false
          | r :: rest ->
            stack := rest;
            List.iter
              (fun e ->
                if e.mark <> gen then begin
                  e.mark <- gen;
                  U.Vec.push t.comp_entries e;
                  Array.iter mark_res e.conn
                end)
              t.res_entries.(r)
        done;
        comps :=
          {
            c_entries = U.Vec.to_array t.comp_entries;
            c_res = U.Vec.to_array t.comp_res;
            c_sockets = U.Vec.to_array t.comp_sockets;
          }
          :: !comps
      end)
    seeds;
  List.rev !comps

(* Rate computation for one component. Pure with respect to the fabric:
   reads only state that is frozen for the duration of a reallocation
   (caps, cache model, topology, cached demands) and writes only its
   own local arrays — so it may run on any domain of the pool, and the
   result is bit-identical no matter which one. The DDIO spill fixed
   point is resolved per affected socket by a short damped iteration
   (spill depends on allocated write rates which depend on memory-bus
   contention which includes spill). *)
let compute_component t (c : component) =
  let nc = Array.length c.c_entries in
  let ns = Array.length t.socket_mems in
  let ddio_on = Cache.enabled t.cache in
  let wb = Array.make (max 1 ns) 0.0
  and rr = Array.make (max 1 ns) 0.0
  and write = Array.make (max 1 ns) 0.0
  and hit = Array.make (max 1 ns) (if ddio_on then 1.0 else 0.0) in
  let base = Array.map (fun e -> e.dem) c.c_entries in
  let rates = ref (Array.make nc 0.0) in
  (* One solver state carried across the spill iterations (warm mode):
     iteration k+1 differs from k only in the spill caps, so after the
     spill set stabilizes — the (wb>0, rr>0) pattern is monotone under
     the damping, so the demand count changes at most twice — each
     re-solve takes the incremental path. Cold mode re-solves from
     scratch; both produce bitwise-identical rates (Fairshare's
     warm≡cold contract). *)
  let st = ref None in
  (* the spill fixed point only matters when LLC-targeted flows exist *)
  let any_llc = Array.exists (fun e -> e.flow.Flow.llc_target) c.c_entries in
  let iterations = if Array.length c.c_sockets > 0 && any_llc then 4 else 1 in
  for _iter = 1 to iterations do
    let spills = ref [] in
    Array.iter
      (fun s ->
        match t.socket_mems.(s) with
        | None -> ()
        | Some sm ->
          if wb.(s) > 0.0 then spills := spill_demand wb.(s) sm.to_mem :: !spills;
          if rr.(s) > 0.0 then spills := spill_demand rr.(s) sm.from_mem :: !spills)
      c.c_sockets;
    let demands = Array.append base (Array.of_list !spills) in
    let all =
      if not t.warm then Fairshare.allocate ~capacities:t.caps demands
      else begin
        (match !st with
        | Some s when Fairshare.state_size s = Array.length demands -> Fairshare.reset s demands
        | Some _ | None -> st := Some (Fairshare.make_state ~capacities:t.caps demands));
        Fairshare.allocate_warm (Option.get !st)
      end
    in
    rates := Array.sub all 0 nc;
    (* recompute spill targets from the allocated LLC write rates *)
    Array.iter (fun s -> write.(s) <- 0.0) c.c_sockets;
    Array.iteri
      (fun i e ->
        if e.flow.Flow.llc_target then
          match llc_socket t e.flow with
          | Some s when s >= 0 && s < ns -> write.(s) <- write.(s) +. !rates.(i)
          | Some _ | None -> ())
      c.c_entries;
    Array.iter
      (fun s ->
        let h = Cache.hit_rate t.cache ~write_rate:write.(s) in
        hit.(s) <- (if ddio_on then h else 0.0);
        let target_wb, target_rr =
          if write.(s) <= 0.0 then (0.0, 0.0)
          else if ddio_on then ((1.0 -. h) *. write.(s), (1.0 -. h) *. write.(s))
          else (write.(s), 0.0)
        in
        wb.(s) <- (wb.(s) +. target_wb) /. 2.0;
        rr.(s) <- (rr.(s) +. target_rr) /. 2.0)
      c.c_sockets
  done;
  let rates = !rates in
  (* Pre-aggregate the component-local loads and flow counts here (in
     the memoizable, pool-runnable part) so commit is O(resources)
     stores instead of O(entries x usage) list walks. The accumulation
     order — entry-major over usages, then socket spill terms — is
     exactly the order the commit-side recomputation used, so the float
     sums are bitwise identical. *)
  let loadb = Array.make t.nr 0.0 and flowsb = Array.make t.nr 0 in
  Array.iteri
    (fun i e ->
      List.iter
        (fun (res, coeff) ->
          loadb.(res) <- loadb.(res) +. (rates.(i) *. coeff);
          flowsb.(res) <- flowsb.(res) + 1)
        e.usage)
    c.c_entries;
  Array.iter
    (fun s ->
      match t.socket_mems.(s) with
      | None -> ()
      | Some sm ->
        List.iter (fun (res, co) -> loadb.(res) <- loadb.(res) +. (wb.(s) *. co)) sm.to_mem;
        List.iter (fun (res, co) -> loadb.(res) <- loadb.(res) +. (rr.(s) *. co)) sm.from_mem)
    c.c_sockets;
  {
    cr_rates = rates;
    cr_write = write;
    cr_hit = hit;
    cr_wb = wb;
    cr_rr = rr;
    cr_load = Array.map (fun res -> loadb.(res)) c.c_res;
    cr_flows = Array.map (fun res -> flowsb.(res)) c.c_res;
    cr_stats =
      (match !st with
      | Some s -> Fairshare.stats s
      | None -> { Fairshare.solves = 0; full_rebuilds = 0; incremental = 0; unchanged = 0 });
  }

(* Commit one component's result into the fabric. Always runs on the
   coordinating domain, in canonical component order, so rate stores,
   completion-heap pushes and load recomputation happen in exactly the
   same sequence whether the results were computed sequentially or on
   the pool. *)
let commit_component t tnow (c : component) (r : comp_result) =
  Array.iteri
    (fun i e ->
      let f = e.flow in
      f.Flow.rate <- r.cr_rates.(i);
      e.hstamp <- e.hstamp + 1;
      if f.Flow.state = Flow.Running && f.Flow.remaining <> infinity && f.Flow.rate > 0.0 then
        U.Heap.push t.cheap (tnow +. Flow.eta_ns f) (e, e.hstamp))
    c.c_entries;
  Array.iter
    (fun s ->
      t.ddio_write.(s) <- r.cr_write.(s);
      t.ddio_hit.(s) <- r.cr_hit.(s);
      t.spill_wb.(s) <- r.cr_wb.(s);
      t.spill_rr.(s) <- r.cr_rr.(s))
    c.c_sockets;
  (* loads and per-resource flow counts were pre-aggregated (in this
     exact float order) by compute_component; just store them *)
  Array.iteri
    (fun i res ->
      t.load.(res) <- r.cr_load.(i);
      t.flows_on.(res) <- r.cr_flows.(i))
    c.c_res

(* {2 Component-result memo}

   [compute_component] is a pure function of (demand records, conn
   footprints, llc flags, effective capacities at the component's
   resources, cache config) — so its whole result can be replayed
   whenever those inputs recur. This is what makes coupled churn
   cheap: starting/stopping a flow perturbs one giant component, but
   the steady state alternates between exactly two component values,
   and after the first lap both are memoized.

   All comparisons are exact: [feq] compares float bits (the recorder
   digests raw rate bits, so -0.0 vs 0.0 or any ULP would fork the
   trace), and the hot path is pointer equality on the immutable
   per-entry [dem]/[conn] records. Lookups and stores run only on the
   coordinating domain — never from the pool. *)

let feq (a : float) (b : float) = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let int_array_eq (a : int array) (b : int array) =
  a == b
  || (Array.length a = Array.length b
     &&
     let n = Array.length a in
     let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
     go 0)

let usage_eq u1 u2 =
  u1 == u2 || List.equal (fun (r1, c1) (r2, c2) -> r1 = r2 && feq c1 c2) u1 u2

let demand_eq (d1 : Fairshare.demand) (d2 : Fairshare.demand) =
  d1 == d2
  || (feq d1.Fairshare.weight d2.Fairshare.weight
     && feq d1.Fairshare.floor d2.Fairshare.floor
     && feq d1.Fairshare.cap d2.Fairshare.cap
     && usage_eq d1.Fairshare.usage d2.Fairshare.usage)

let memo_match t (c : component) (m : comp_memo) =
  let n = Array.length c.c_entries in
  m.m_gen = t.cache_gen
  && Array.length m.m_dems = n
  && int_array_eq m.m_res c.c_res
  && int_array_eq m.m_sockets c.c_sockets
  && (let nres = Array.length c.c_res in
      let rec caps_ok i =
        i >= nres || (feq m.m_caps.(i) t.caps.(c.c_res.(i)) && caps_ok (i + 1))
      in
      caps_ok 0)
  && (let rec entries_ok i =
        i >= n
        || (let e = c.c_entries.(i) in
            ((m.m_conn.(i) == e.conn && m.m_dems.(i) == e.dem)
            || (demand_eq m.m_dems.(i) e.dem && int_array_eq m.m_conn.(i) e.conn))
            && m.m_llc.(i) = e.flow.Flow.llc_target)
           && entries_ok (i + 1)
      in
      entries_ok 0)

let memo_find t (c : component) =
  if Array.length c.c_res = 0 then None
  else
    let key = Array.fold_left min c.c_res.(0) c.c_res in
    match Hashtbl.find_opt t.comp_cache key with
    | None -> None
    | Some ms ->
      let rec go = function
        | [] -> None
        | m :: rest -> if memo_match t c m then Some m else go rest
      in
      go ms

let memo_store t (c : component) (r : comp_result) =
  if Array.length c.c_res > 0 then begin
    let key = Array.fold_left min c.c_res.(0) c.c_res in
    let m =
      {
        m_dems = Array.map (fun e -> e.dem) c.c_entries;
        m_conn = Array.map (fun e -> e.conn) c.c_entries;
        m_llc = Array.map (fun e -> e.flow.Flow.llc_target) c.c_entries;
        m_res = c.c_res;
        m_sockets = c.c_sockets;
        m_caps = Array.map (fun res -> t.caps.(res)) c.c_res;
        m_gen = t.cache_gen;
        m_result = r;
        m_epoch = t.epoch;
      }
    in
    (* at most two memos per bucket — the new one plus the most
       recently hit survivor. Churn steady state alternates between
       the with-flow and without-flow values of one component, so two
       slots make every post-warmup epoch a hit. *)
    let keep =
      match Hashtbl.find_opt t.comp_cache key with
      | None | Some [] -> []
      | Some [ x ] -> [ x ]
      | Some (x :: y :: _) -> if x.m_epoch >= y.m_epoch then [ x ] else [ y ]
    in
    Hashtbl.replace t.comp_cache key (m :: keep)
  end

(* {2 Instantaneous latency views}

   Defined before the reallocation recursion because the always-on
   sketch plane records them from inside it (per-link at epochs,
   per-flow at completions). Pure reads of committed state. *)

let link_rate t link_id dir = t.load.(res_of link_id dir)

let link_utilization t link_id dir =
  let cap = effective_capacity t link_id dir in
  let rate = link_rate t link_id dir in
  if cap <= 0.0 then if rate > 0.0 then 1.0 else 0.0 else Float.min 1.0 (rate /. cap)

let crosses_root_complex t (path : T.Path.t) =
  List.exists
    (fun id ->
      match (T.Topology.device t.topo id).T.Device.kind with
      | T.Device.Root_complex -> true
      | _ -> false)
    (T.Path.devices path)

let path_latency t ?(payload_bytes = 0) ?(working_set_pages = 32) (path : T.Path.t) =
  let hops_latency =
    List.fold_left
      (fun acc (hop : T.Path.hop) ->
        let f = Fault.get t.faults hop.link.T.Link.id in
        let u = link_utilization t hop.link.T.Link.id hop.dir in
        acc
        +. Latency.hop_latency ~base:hop.link.T.Link.base_latency ~utilization:u
             ~extra:f.Fault.extra_latency ())
      0.0 path.T.Path.hops
  in
  let iommu_latency =
    if crosses_root_complex t path then
      Iommu.expected_translation_latency (T.Topology.config t.topo).T.Hostconfig.iommu
        ~working_set_pages
    else 0.0
  in
  let serialization =
    if payload_bytes <= 0 then 0.0
    else begin
      (* a small message is serialized at roughly the rate a new flow
         would get: the larger of residual capacity and a fair share *)
      let rate =
        List.fold_left
          (fun acc (hop : T.Path.hop) ->
            let res = res_of hop.link.T.Link.id hop.dir in
            let cap = effective_capacity t hop.link.T.Link.id hop.dir in
            let residual = Float.max 0.0 (cap -. t.load.(res)) in
            let fair = cap /. float_of_int (t.flows_on.(res) + 1) in
            Float.min acc (Float.max residual fair))
          infinity path.T.Path.hops
      in
      if rate = infinity || rate <= 0.0 then 0.0
      else Latency.serialization ~bytes:(float_of_int payload_bytes) ~rate
    end
  in
  hops_latency +. iommu_latency +. serialization

(* WFQ delay isolation: a flow holding a guaranteed floor is served at
   least at that rate on every hop regardless of the aggregate queue, so
   its queueing delay follows its OWN utilization of the guarantee, not
   the aggregate's. Unmanaged flows (floor 0) see the aggregate. *)
let flow_path_latency t ?(payload_bytes = 0) (flow : Flow.t) =
  let path = flow.Flow.path in
  let base = path_latency t ~payload_bytes path in
  if flow.Flow.floor <= 0.0 then base
  else begin
    let own_u = Float.min 0.999 (flow.Flow.rate /. flow.Flow.floor) in
    let hops_latency =
      List.fold_left
        (fun acc (hop : T.Path.hop) ->
          let f = Fault.get t.faults hop.link.T.Link.id in
          let agg_u = link_utilization t hop.link.T.Link.id hop.T.Path.dir in
          let u = Float.min own_u agg_u in
          acc
          +. Latency.hop_latency ~base:hop.link.T.Link.base_latency ~utilization:u
               ~extra:f.Fault.extra_latency ())
        0.0 path.T.Path.hops
    in
    let iommu_latency =
      if crosses_root_complex t path then
        Iommu.expected_translation_latency (T.Topology.config t.topo).T.Hostconfig.iommu
          ~working_set_pages:32
      else 0.0
    in
    let serialization =
      (* once its WFQ slot arrives the message moves at wire speed; the
         waiting is already captured by the queueing term above *)
      if payload_bytes <= 0 then 0.0
      else
        let bottleneck =
          List.fold_left
            (fun acc (hop : T.Path.hop) ->
              Float.min acc (effective_capacity t hop.link.T.Link.id hop.T.Path.dir))
            infinity path.T.Path.hops
        in
        if bottleneck <= 0.0 || bottleneck = infinity then 0.0
        else Latency.serialization ~bytes:(float_of_int payload_bytes) ~rate:bottleneck
    in
    Float.min base (hops_latency +. iommu_latency +. serialization)
  end

(* Record the sketch plane's per-link observations for one committed
   component: the loaded hop latency of every (link, dir) resource the
   reallocation just touched. Pure reads; no events, no RNG, no rate
   movement — the digests a recorder takes are untouched whether the
   plane is dormant or active. *)
let record_link_latencies t sk (c : component) =
  Array.iter
    (fun r ->
      let link_id = r / 2 in
      let dir = if r land 1 = 0 then T.Link.Fwd else T.Link.Rev in
      let l = T.Topology.link t.topo link_id in
      let f = Fault.get t.faults link_id in
      U.Sketch.record sk.sk_links.(r)
        (Latency.hop_latency ~base:l.T.Link.base_latency
           ~utilization:(link_utilization t link_id dir)
           ~extra:f.Fault.extra_latency ()))
    c.c_res

(* Recompute rates for the component(s) reachable from [seeds] only;
   flows outside keep their rates, loads and completion events. Each
   component is either replayed from the memo or computed — on the
   domain pool when one is attached and more than one component
   missed — and the results are merged in canonical component order,
   so a parallel or memoized run commits byte-identical state to a
   sequential cold one. *)
let rec reallocate t seeds =
  if t.in_batch then ()
  else reallocate_now t seeds

and reallocate_now t seeds =
  sync t;
  t.allocs <- t.allocs + 1;
  t.epoch <- t.epoch + 1;
  let comps = Array.of_list (collect_components t seeds) in
  let n = Array.length comps in
  let results = Array.make n None in
  let miss = ref [] in
  for i = n - 1 downto 0 do
    match if t.warm then memo_find t comps.(i) else None with
    | Some m ->
      m.m_epoch <- t.epoch;
      t.warm_hits <- t.warm_hits + 1;
      results.(i) <- Some m.m_result
    | None ->
      if t.warm then t.warm_misses <- t.warm_misses + 1;
      miss := i :: !miss
  done;
  let miss = Array.of_list !miss in
  let nm = Array.length miss in
  let computed =
    match t.pool with
    | Some pool when nm > 1 -> U.Pool.map pool nm (fun k -> compute_component t comps.(miss.(k)))
    | _ -> Array.init nm (fun k -> compute_component t comps.(miss.(k)))
  in
  for k = 0 to nm - 1 do
    results.(miss.(k)) <- Some computed.(k);
    (* cumulative solver-work ledger; memo hits replay a result without
       solving, so only fresh computes contribute *)
    let s = computed.(k).cr_stats and acc = t.solver_stats in
    t.solver_stats <-
      {
        Fairshare.solves = acc.Fairshare.solves + s.Fairshare.solves;
        full_rebuilds = acc.Fairshare.full_rebuilds + s.Fairshare.full_rebuilds;
        incremental = acc.Fairshare.incremental + s.Fairshare.incremental;
        unchanged = acc.Fairshare.unchanged + s.Fairshare.unchanged;
      }
  done;
  let tnow = Sim.now t.sim in
  for i = 0 to n - 1 do
    commit_component t tnow comps.(i) (Option.get results.(i))
  done;
  if t.warm then
    for k = 0 to nm - 1 do
      memo_store t comps.(miss.(k)) computed.(k)
    done;
  (match t.sketches with
  | None -> ()
  | Some sk ->
    (* per-link latency observations for the resources this epoch just
       recommitted — the always-on percentile feed *)
    Array.iter (fun c -> record_link_latencies t sk c) comps);
  schedule_next_completion t;
  (* guarded so unobserved fabrics pay nothing for the recorder hook *)
  if t.listeners <> [] then emit t (Reallocated t.epoch)

and schedule_next_completion t =
  U.Heap.drop_while t.cheap (fun (e, stamp) ->
      stamp <> e.hstamp || e.flow.Flow.state <> Flow.Running);
  (* lazy deletion can leave stale entries below the top; compact when
     they dominate so the heap stays proportional to the live flows *)
  if U.Heap.size t.cheap > 64 + (4 * Hashtbl.length t.entries) then begin
    let live = ref [] in
    let rec drain () =
      match U.Heap.pop t.cheap with
      | None -> ()
      | Some (at, ((e, stamp) as v)) ->
        if stamp = e.hstamp && e.flow.Flow.state = Flow.Running then live := (at, v) :: !live;
        drain ()
    in
    drain ();
    List.iter (fun (at, v) -> U.Heap.push t.cheap at v) !live
  end;
  match U.Heap.peek t.cheap with
  | None -> ()
  | Some (at, _) ->
    let epoch = t.epoch in
    Sim.schedule t.sim
      ~after:(Float.max 0.0 (at -. Sim.now t.sim))
      (fun _ -> if epoch = t.epoch then handle_completions t)

and handle_completions t =
  sync t;
  let tnow = Sim.now t.sim in
  let completed = ref [] in
  let continue = ref true in
  while !continue do
    U.Heap.drop_while t.cheap (fun (e, stamp) ->
        stamp <> e.hstamp || e.flow.Flow.state <> Flow.Running);
    match U.Heap.peek t.cheap with
    | Some (_, (e, _)) when e.flow.Flow.remaining <= 1.0 ->
      ignore (U.Heap.pop t.cheap);
      e.hstamp <- e.hstamp + 1;
      let f = e.flow in
      f.Flow.state <- Flow.Completed;
      f.Flow.remaining <- 0.0;
      f.Flow.completed_at <- tnow;
      f.Flow.rate <- 0.0;
      Hashtbl.remove t.entries f.Flow.id;
      unregister t e;
      completed := e :: !completed
    | Some (at, (e, stamp)) when at <= tnow ->
      (* fired marginally early (float rounding): re-key to the fresh
         remaining/rate estimate and keep draining *)
      ignore (U.Heap.pop t.cheap);
      let f = e.flow in
      if f.Flow.rate > 0.0 && f.Flow.remaining <> infinity then
        U.Heap.push t.cheap (tnow +. Flow.eta_ns f) (e, stamp)
    | _ -> continue := false
  done;
  match !completed with
  | [] -> schedule_next_completion t
  | completed ->
    reallocate t (Array.concat (List.map (fun e -> e.conn) completed));
    (match t.sketches with
    | None -> ()
    | Some sk ->
      (* end-to-end latency as the flow saw the fabric at completion *)
      List.iter
        (fun e -> U.Sketch.record sk.sk_flows (flow_path_latency t e.flow))
        completed);
    (* callbacks run after reallocation so they observe a consistent fabric *)
    List.iter
      (fun e ->
        emit t (Flow_completed e.flow);
        match e.flow.Flow.on_complete with Some cb -> cb e.flow | None -> ())
      completed

(* Capacity-consumption coefficient of a flow on one hop. *)
let hop_coeff t ~payload_bytes ~working_set_pages (hop : T.Path.hop) =
  match hop.link.T.Link.kind with
  | T.Link.Pcie _ ->
    let config = T.Topology.config t.topo in
    let mps = min payload_bytes config.T.Hostconfig.pcie_mps in
    let proto = 1.0 /. T.Pcie.payload_efficiency ~mps in
    let iommu =
      Iommu.bandwidth_overhead_factor config.T.Hostconfig.iommu ~working_set_pages
        ~payload_bytes:mps
    in
    proto *. iommu
  | T.Link.Cxl _ ->
    (* 64 B flits with 2-4 B overhead and no IOMMU on the coherent
       path: near-wire efficiency *)
    1.04
  | T.Link.Inter_socket | T.Link.Intra_socket | T.Link.Memory_channel | T.Link.Inter_host ->
    1.0

let usage_of_path t ~payload_bytes ~working_set_pages (path : T.Path.t) =
  List.map
    (fun (hop : T.Path.hop) ->
      (res_of hop.link.T.Link.id hop.dir, hop_coeff t ~payload_bytes ~working_set_pages hop))
    path.T.Path.hops

let start_flow t ~tenant ?(cls = Flow.Payload) ?(weight = 1.0) ?(floor = 0.0) ?(cap = infinity)
    ?(demand = infinity) ?payload_bytes ?(working_set_pages = 32) ?(llc_target = false)
    ?on_complete ~path ~size () =
  if not (T.Path.well_formed t.topo path) then invalid_arg "Fabric.start_flow: malformed path";
  if weight <= 0.0 then invalid_arg "Fabric.start_flow: weight must be positive";
  if floor < 0.0 || cap < 0.0 || demand < 0.0 then
    invalid_arg "Fabric.start_flow: negative rate bound";
  let payload_bytes =
    match payload_bytes with
    | Some p ->
      if p <= 0 then invalid_arg "Fabric.start_flow: payload_bytes must be positive";
      p
    | None -> (T.Topology.config t.topo).T.Hostconfig.pcie_mps
  in
  if llc_target then begin
    let dst_kind = (T.Topology.device t.topo path.T.Path.dst).T.Device.kind in
    match dst_kind with
    | T.Device.Cpu_socket _ -> ()
    | _ -> invalid_arg "Fabric.start_flow: llc_target path must end at a CPU socket"
  end;
  let flow =
    {
      Flow.id = t.next_flow_id;
      tenant;
      cls;
      path;
      size;
      demand;
      payload_bytes;
      working_set_pages;
      llc_target;
      started_at = Sim.now t.sim;
      weight;
      floor;
      cap;
      rate = 0.0;
      remaining = (match size with Flow.Bytes b -> b | Flow.Unbounded -> infinity);
      transferred = 0.0;
      state = Flow.Running;
      completed_at = nan;
      on_complete;
    }
  in
  t.next_flow_id <- t.next_flow_id + 1;
  let usage = usage_of_path t ~payload_bytes ~working_set_pages path in
  let entry =
    {
      flow;
      usage;
      conn = conn_of t flow usage;
      dem = { Fairshare.weight; floor; cap = Flow.effective_demand flow; usage };
      trow = tenant_row t tenant;
      crow = t.cls_rows.(cls_index cls);
      mark = 0;
      hstamp = 0;
    }
  in
  Hashtbl.replace t.entries flow.Flow.id entry;
  register t entry;
  reallocate t entry.conn;
  emit t (Flow_started flow);
  flow

let stop_flow t (f : Flow.t) =
  if f.Flow.state = Flow.Running then begin
    sync t;
    f.Flow.state <- Flow.Stopped;
    f.Flow.rate <- 0.0;
    (match Hashtbl.find_opt t.entries f.Flow.id with
    | Some e ->
      e.hstamp <- e.hstamp + 1;
      Hashtbl.remove t.entries f.Flow.id;
      unregister t e;
      reallocate t e.conn
    | None -> ());
    emit t (Flow_stopped f)
  end

let set_flow_limits t (f : Flow.t) ?weight ?floor ?cap () =
  Option.iter (fun w -> if w <= 0.0 then invalid_arg "set_flow_limits: weight" else f.Flow.weight <- w) weight;
  Option.iter (fun x -> if x < 0.0 then invalid_arg "set_flow_limits: floor" else f.Flow.floor <- x) floor;
  Option.iter (fun x -> if x < 0.0 then invalid_arg "set_flow_limits: cap" else f.Flow.cap <- x) cap;
  if f.Flow.state = Flow.Running then
    match Hashtbl.find_opt t.entries f.Flow.id with
    | Some e ->
      e.dem <- demand_of_entry e;
      reallocate t e.conn;
      if t.listeners <> [] then emit t (Limits_changed f)
    | None -> reallocate t (all_seeds t)

let active_flows t =
  Hashtbl.fold (fun _ e acc -> e.flow :: acc) t.entries []
  |> List.sort (fun (a : Flow.t) b -> compare a.Flow.id b.Flow.id)

let flow_count t = Hashtbl.length t.entries
let refresh t = observed_sync t

let batch t f =
  if t.in_batch then f ()
  else begin
    if t.listeners <> [] then emit t Batch_started;
    t.in_batch <- true;
    Fun.protect
      ~finally:(fun () ->
        t.in_batch <- false;
        reallocate t (all_seeds t);
        if t.listeners <> [] then emit t Batch_ended)
      f
  end

let transfer_time t ~path ~bytes =
  let usage = usage_of_path t ~payload_bytes:(T.Topology.config t.topo).T.Hostconfig.pcie_mps ~working_set_pages:32 path in
  (* the probe only contends with its own component; everything else
     is resource-disjoint and cannot shift its allocation *)
  collect_component t (Array.of_list (List.map fst usage));
  let nc = U.Vec.length t.comp_entries in
  let probe = { Fairshare.weight = 1.0; floor = 0.0; cap = infinity; usage } in
  let demands =
    Array.init (nc + 1) (fun i -> if i < nc then (U.Vec.get t.comp_entries i).dem else probe)
  in
  let rates = Fairshare.allocate ~capacities:t.caps demands in
  let rate = rates.(nc) in
  if rate <= 0.0 then None else Some (bytes /. rate *. 1e9)

let link_bytes t link_id dir =
  observed_sync t;
  t.link_bytes.(res_of link_id dir)

let tenant_link_bytes t link_id dir ~tenant =
  observed_sync t;
  match Hashtbl.find_opt t.tenant_rows tenant with
  | Some row -> row.(res_of link_id dir)
  | None -> 0.0

let cls_link_bytes t link_id dir ~cls =
  observed_sync t;
  t.cls_rows.(cls_index cls).(res_of link_id dir)

let tenant_bytes t ~tenant =
  observed_sync t;
  match Hashtbl.find_opt t.tenant_rows tenant with
  | Some row -> Array.fold_left ( +. ) 0.0 row
  | None -> 0.0

let probe_loss_prob t (path : T.Path.t) =
  let survive =
    List.fold_left
      (fun acc (hop : T.Path.hop) ->
        let f = Fault.get t.faults hop.link.T.Link.id in
        acc *. (1.0 -. f.Fault.loss_prob))
      1.0 path.T.Path.hops
  in
  1.0 -. survive

let ddio_write_rate t ~socket =
  if socket >= 0 && socket < Array.length t.ddio_write then t.ddio_write.(socket) else 0.0

let ddio_hit_rate t ~socket =
  if socket >= 0 && socket < Array.length t.ddio_hit then t.ddio_hit.(socket) else 1.0

let ddio_spill_rate t ~socket =
  if socket >= 0 && socket < Array.length t.spill_wb then
    t.spill_wb.(socket) +. t.spill_rr.(socket)
  else 0.0

let fault_seeds link_id = [| res_of link_id T.Link.Fwd; res_of link_id T.Link.Rev |]

let inject_fault t link_id fault =
  Fault.inject t.faults link_id fault;
  refresh_link_caps t link_id;
  reallocate t (fault_seeds link_id);
  emit t (Fault_injected (link_id, fault))

let clear_fault t link_id =
  Fault.clear t.faults link_id;
  refresh_link_caps t link_id;
  reallocate t (fault_seeds link_id);
  emit t (Fault_cleared link_id)

let flap_link t link_id fault ~period ~toggles =
  if period <= 0.0 then invalid_arg "Fabric.flap_link: period must be positive";
  if toggles < 1 then invalid_arg "Fabric.flap_link: toggles must be >= 1";
  let rec toggle k _ =
    if k < toggles then begin
      if k mod 2 = 0 then inject_fault t link_id fault else clear_fault t link_id;
      Sim.schedule t.sim ~after:period (toggle (k + 1))
    end
  in
  Sim.schedule t.sim ~after:0.0 (toggle 0)

let clear_all_faults t =
  Fault.clear_all t.faults;
  refresh_all_caps t;
  reallocate t (all_seeds t);
  if t.listeners <> [] then emit t All_faults_cleared

let fault_of t link_id = Fault.get t.faults link_id

(* Sensor faults corrupt only the telemetry path: no capacity changes,
   no reallocation, no rate movement — epoch-neutral for replay. The
   events exist so the flight recorder can reproduce the corruption. *)
let inject_sensor_fault t target f =
  Sensorfault.inject t.sensorfaults target f;
  if t.listeners <> [] then emit t (Sensor_fault_injected (target, f))

let clear_sensor_fault t target =
  Sensorfault.clear t.sensorfaults target;
  if t.listeners <> [] then emit t (Sensor_fault_cleared target)

let clear_all_sensor_faults t =
  List.iter (fun (tg, _) -> clear_sensor_fault t tg) (Sensorfault.active t.sensorfaults)

let sensor_fault_of t target = Sensorfault.get t.sensorfaults target
let sensor_faults t = Sensorfault.active t.sensorfaults

let device_sensor_fault t dev = Sensorfault.get t.sensorfaults (Sensorfault.Device dev)

let link_sensor_fault t link_id =
  let l = T.Topology.link t.topo link_id in
  Sensorfault.merge (device_sensor_fault t l.T.Link.a) (device_sensor_fault t l.T.Link.b)

let on_device_links t device f =
  batch t (fun () ->
      List.iter (fun ((l : T.Link.t), _) -> f l.T.Link.id) (T.Topology.neighbors t.topo device))

let fail_device t device = on_device_links t device (fun id -> inject_fault t id Fault.down)
let revive_device t device = on_device_links t device (fun id -> clear_fault t id)

let set_config t config =
  T.Topology.set_config t.topo config;
  t.cache <- Cache.create config.T.Hostconfig.ddio;
  (* the cache model is an input to every memoized component result:
     bump the generation (cheap, future-proof against gen reuse) and
     drop the memos outright *)
  t.cache_gen <- t.cache_gen + 1;
  Hashtbl.reset t.comp_cache;
  refresh_all_caps t;
  reallocate t (all_seeds t);
  if t.listeners <> [] then emit t (Config_changed config)

let enable_latency_sketches t =
  match t.sketches with
  | Some _ -> ()
  | None ->
    t.sketches <-
      Some
        {
          sk_links = Array.init t.nr (fun _ -> U.Sketch.create ());
          sk_flows = U.Sketch.create ();
        }

let latency_sketches_enabled t = t.sketches <> None

let link_latency_sketch t link_id dir =
  Option.map (fun sk -> sk.sk_links.(res_of link_id dir)) t.sketches

let flow_latency_sketch t = Option.map (fun sk -> sk.sk_flows) t.sketches

let reallocations t = t.allocs
let warm_enabled t = t.warm
let warm_hits t = t.warm_hits
let warm_misses t = t.warm_misses

(* {2 Out-of-band scan exposition}

   The boundary-scan view of the fabric: every accessor below is a pure
   read of committed state. None of them syncs the lazy byte
   integration, emits an event, draws from the RNG, touches heap
   generations or perturbs the warm solver — the zero-impact contract
   the scanport-idle bench asserts. Mutable arrays are copied so a
   caller can hold a snapshot across further simulation. *)

let scan_epoch t = t.epoch
let scan_clock t = Sim.now t.sim
let scan_last_update t = t.last_update
let scan_next_flow_id t = t.next_flow_id
let scan_rng_state t = U.Rng.peek t.rng
let scan_cache_gen t = t.cache_gen
let scan_resources t = t.nr
let scan_load t = Array.copy t.load
let scan_flows_on t = Array.copy t.flows_on
let scan_link_bytes t = Array.copy t.link_bytes
let scan_caps t = Array.copy t.caps

let scan_ddio t =
  (Array.copy t.ddio_write, Array.copy t.ddio_hit, Array.copy t.spill_wb, Array.copy t.spill_rr)

let scan_tenant_rows t =
  Hashtbl.fold (fun tn row acc -> (tn, Array.copy row) :: acc) t.tenant_rows []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let scan_cls_rows t = Array.map Array.copy t.cls_rows
let scan_flows t = active_flows t

let scan_completion_heap t =
  List.map
    (fun (at, (e, stamp)) ->
      (at, e.flow.Flow.id, stamp, stamp = e.hstamp && e.flow.Flow.state = Flow.Running))
    (U.Heap.to_list t.cheap)

let scan_memo_keys t =
  Hashtbl.fold
    (fun key ms acc ->
      List.fold_left (fun acc m -> (key, Array.length m.m_dems, m.m_epoch) :: acc) acc ms)
    t.comp_cache []
  |> List.sort compare

let scan_solver_stats t = t.solver_stats

(* Advance the simulation by whole reallocation epochs: execute queued
   events one at a time until the epoch counter moves past where it
   was, then stop — the single-step half of the scan port's
   freeze/step protocol. Between calls the fabric is exactly at an
   epoch boundary (nothing runs unless the sim is driven). *)
let step_epoch t =
  let start = t.epoch in
  let rec go () = t.epoch > start || (Sim.step t.sim && go ()) in
  go ()
