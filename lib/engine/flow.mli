(** Flows: the unit of traffic in the fluid simulation.

    A flow moves bytes along a fixed {!Ihnet_topology.Path.t} at a rate
    decided by the fabric's max-min allocation, subject to its source
    demand and the arbiter's floor/cap. Flows carry a traffic class so
    the monitor can account for its own overhead (§3.1-Q2) and so
    [ihdump] can filter captures. *)

type cls =
  | Payload  (** Application traffic. *)
  | Monitoring  (** Telemetry shipping (counted as monitor overhead). *)
  | Heartbeat  (** Device-to-device liveness probes. *)
  | Probe  (** Diagnostic traffic: ihping/ihperf. *)
  | Induced
      (** Traffic the fabric generates as a side effect — DDIO-miss
          write-backs and re-reads on the memory bus. Never set on
          user-created flows. *)

type size = Bytes of float | Unbounded

type state = Running | Completed | Stopped

type t = {
  id : int;
  tenant : int;  (** Owning tenant (0 = infrastructure). *)
  cls : cls;
  path : Ihnet_topology.Path.t;
  size : size;
  demand : float;  (** Source offered rate, bytes/s; [infinity] = elastic. *)
  payload_bytes : int;
      (** Per-transaction payload on PCIe hops, for protocol-efficiency
          accounting (small payloads waste link capacity on headers). *)
  working_set_pages : int;
      (** Distinct IOVA pages the flow's DMA touches (IOTLB pressure). *)
  llc_target : bool;
      (** True when DMA writes terminate in the LLC via DDIO (the path
          then ends at the CPU socket, not a DIMM). *)
  started_at : Ihnet_util.Units.ns;
  mutable weight : float;  (** Max-min weight (default 1.0). *)
  mutable floor : float;  (** Guaranteed rate, bytes/s (arbiter). *)
  mutable cap : float;  (** Rate ceiling, bytes/s (arbiter); [infinity] = none. *)
  mutable rate : float;  (** Current allocated rate (engine-owned). *)
  mutable remaining : float;  (** Bytes left ([infinity] for unbounded). *)
  mutable transferred : float;  (** Bytes moved so far. *)
  mutable state : state;
  mutable completed_at : Ihnet_util.Units.ns;  (** Valid when [Completed]. *)
  on_complete : (t -> unit) option;
}

val cls_label : cls -> string

val effective_demand : t -> float
(** [min demand cap] — the most the source may be given. *)

val eta_ns : t -> float
(** Nanoseconds until the flow drains at its current rate; [infinity]
    when unbounded or stalled. The fabric keys its completion heap on
    [now + eta_ns]. *)

val duration : t -> Ihnet_util.Units.ns
(** Completion time minus start time.
    @raise Invalid_argument if the flow has not completed. *)

val pp : Format.formatter -> t -> unit
