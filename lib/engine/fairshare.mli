(** Weighted max-min fair rate allocation with floors and caps
    (progressive filling / water-filling).

    This is the engine's bandwidth-sharing law and simultaneously the
    arbiter's enforcement mechanism: the arbiter expresses guarantees as
    per-flow {e floors} and limits as {e caps}, and the same filling
    algorithm realizes both (a pure reservation system is
    [floor = cap]; a work-conserving one leaves [cap = infinity]).

    A demand consumes [coeff × rate] on each resource it uses; the
    coefficient models protocol inefficiency (e.g. a 64 B-payload DMA
    stream consumes ~1.4× its goodput on a PCIe link in TLP headers). *)

type demand = {
  weight : float;  (** Filling speed; must be > 0. *)
  floor : float;  (** Guaranteed rate (bytes/s); >= 0. *)
  cap : float;  (** Ceiling — already folded with the source's offered
                    rate; [infinity] when elastic. *)
  usage : (int * float) list;
      (** (resource index, coefficient) pairs, coefficient >= 1
          typically; a resource may appear once per demand. *)
}

val allocate : capacities:float array -> demand array -> float array
(** [allocate ~capacities demands] returns one rate per demand such
    that:
    - no resource's aggregate coefficient-weighted rate exceeds its
      capacity (up to rounding);
    - every demand receives at least its floor, unless floors are
      jointly infeasible, in which case {e all} floors are scaled down
      by the single factor that restores feasibility;
    - no demand exceeds its cap;
    - the remaining capacity is filled max-min fairly in proportion to
      the weights.

    Demands with an empty [usage] get their cap.

    Implementation: an event-driven sweep over the progressive-filling
    front — next cap hits and next resource saturations live in one
    min-heap, and each event touches only the demands incident to the
    frozen resource. O((n + Σ|usage|) log n) rather than the
    reference's O(n · (n + Σ|usage|)). *)

val allocate_reference : capacities:float array -> demand array -> float array
(** The original round-based progressive-filling implementation,
    retained as the semantic oracle: [allocate] must agree with it to
    within 1e-6 relative error on every input (enforced by a
    differential property test). Do not use on hot paths. *)

val max_min_fair : capacities:float array -> (int * float) list array -> float array
(** Unweighted, floorless, capless convenience wrapper (weight 1,
    floor 0, cap ∞). *)

val validate : capacities:float array -> demand array -> unit
(** Check every demand against the documented invariants (weight > 0,
    floor >= 0, cap >= 0, in-range resources, coefficients > 0).

    @raise Invalid_argument on the first violation. [allocate],
    [allocate_reference], [make_state], [set_demand] and [reset] all
    perform the same checks — with a real raise, not [assert], so they
    survive [-noassert] builds. *)

(** {1 Warm-started solving}

    A {!state} persists the solver's derived structures between calls:
    the flattened CSR usage arrays, the resource→demand incidence, the
    seed-phase accumulators (per-resource floor load and scale
    factors, per-demand seed rates and initial active set,
    per-resource initial load/speed), the working arrays of the
    event sweep, and the event min-heap. Re-solving after a small
    parameter change re-derives only the demands and resources
    reachable from the change; anything structural (demand count, any
    usage list) triggers a full rebuild.

    {b Bit-identity:} for any state contents, [allocate_warm] returns
    bitwise the same rates as a cold [allocate ~capacities demands]
    over the state's current capacities and demands. This is part of
    the fabric's determinism contract (MODEL.md §13) and is enforced
    by a 1000-case differential property test. *)

type state

val make_state : capacities:float array -> demand array -> state
(** Create a warm-startable solver instance. The capacity vector is
    copied (later [set_capacity] calls do not alias the argument);
    its length fixes the resource count for the state's lifetime.
    Validation of the demands happens on the first solve. *)

val set_demand : state -> int -> demand -> unit
(** Replace demand [i]. Equal-valued replacements (in particular the
    same physical record) are free no-ops; weight/floor/cap changes
    take the incremental path; a changed usage list marks the state
    structural. @raise Invalid_argument on a bad index or demand. *)

val set_capacity : state -> int -> float -> unit
(** Update one resource capacity (exact-value compare; equal stores
    are no-ops). @raise Invalid_argument on a bad index. *)

val reset : state -> demand array -> unit
(** Replace the whole demand vector, diffing slot by slot against the
    current one — a cheap way to re-enter with mostly-unchanged
    demands. A length change triggers a full structural rebuild. *)

val allocate_warm : state -> float array
(** Solve over the state's current capacities and demands; returns a
    fresh rates array (same contract as {!allocate}, bitwise). Clean
    re-solves (no input changed since the last call) return the cached
    solution without sweeping. *)

val state_size : state -> int
(** Current number of demands. *)

val state_demand : state -> int -> demand
(** Current demand record in slot [i]. *)

type stats = {
  solves : int;  (** Total [allocate_warm] calls. *)
  full_rebuilds : int;  (** Solves that rebuilt CSR + full reseed. *)
  incremental : int;  (** Solves that reseeded only dirty inputs. *)
  unchanged : int;  (** Solves answered from the cached solution. *)
}

val stats : state -> stats
(** Counters since [make_state]; used by tests to assert that
    invalidation actually fires (or doesn't). *)
