(** Weighted max-min fair rate allocation with floors and caps
    (progressive filling / water-filling).

    This is the engine's bandwidth-sharing law and simultaneously the
    arbiter's enforcement mechanism: the arbiter expresses guarantees as
    per-flow {e floors} and limits as {e caps}, and the same filling
    algorithm realizes both (a pure reservation system is
    [floor = cap]; a work-conserving one leaves [cap = infinity]).

    A demand consumes [coeff × rate] on each resource it uses; the
    coefficient models protocol inefficiency (e.g. a 64 B-payload DMA
    stream consumes ~1.4× its goodput on a PCIe link in TLP headers). *)

type demand = {
  weight : float;  (** Filling speed; must be > 0. *)
  floor : float;  (** Guaranteed rate (bytes/s); >= 0. *)
  cap : float;  (** Ceiling — already folded with the source's offered
                    rate; [infinity] when elastic. *)
  usage : (int * float) list;
      (** (resource index, coefficient) pairs, coefficient >= 1
          typically; a resource may appear once per demand. *)
}

val allocate : capacities:float array -> demand array -> float array
(** [allocate ~capacities demands] returns one rate per demand such
    that:
    - no resource's aggregate coefficient-weighted rate exceeds its
      capacity (up to rounding);
    - every demand receives at least its floor, unless floors are
      jointly infeasible, in which case {e all} floors are scaled down
      by the single factor that restores feasibility;
    - no demand exceeds its cap;
    - the remaining capacity is filled max-min fairly in proportion to
      the weights.

    Demands with an empty [usage] get their cap.

    Implementation: an event-driven sweep over the progressive-filling
    front — next cap hits and next resource saturations live in one
    min-heap, and each event touches only the demands incident to the
    frozen resource. O((n + Σ|usage|) log n) rather than the
    reference's O(n · (n + Σ|usage|)). *)

val allocate_reference : capacities:float array -> demand array -> float array
(** The original round-based progressive-filling implementation,
    retained as the semantic oracle: [allocate] must agree with it to
    within 1e-6 relative error on every input (enforced by a
    differential property test). Do not use on hot paths. *)

val max_min_fair : capacities:float array -> (int * float) list array -> float array
(** Unweighted, floorless, capless convenience wrapper (weight 1,
    floor 0, cap ∞). *)
