type t = {
  mutable clock : float;
  queue : (t -> unit) Ihnet_util.Heap.t;
  mutable tap : (float -> unit) option;
}

let create () = { clock = 0.0; queue = Ihnet_util.Heap.create (); tap = None }
let now t = t.clock
let set_tap t f = t.tap <- Some f
let clear_tap t = t.tap <- None

let schedule_at t time f =
  let time = Float.max time t.clock in
  Ihnet_util.Heap.push t.queue time f

let schedule t ~after f =
  assert (after >= 0.0);
  schedule_at t (t.clock +. after) f

let every t ~period ?until f =
  assert (period > 0.0);
  let rec tick sim =
    match until with
    | Some u when sim.clock > u -> ()
    | _ ->
      f sim;
      (match until with
      | Some u when sim.clock +. period > u -> ()
      | _ -> schedule sim ~after:period tick)
  in
  schedule t ~after:period tick

let step t =
  match Ihnet_util.Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- Float.max t.clock time;
    (match t.tap with None -> () | Some g -> g t.clock);
    f t;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some u ->
    let continue = ref true in
    while !continue do
      match Ihnet_util.Heap.peek t.queue with
      | Some (time, _) when time <= u -> ignore (step t)
      | Some _ | None ->
        t.clock <- Float.max t.clock u;
        continue := false
    done

let pending t = Ihnet_util.Heap.size t.queue
