(** Discrete-event simulation core.

    A simulation is a clock plus a priority queue of timestamped
    events. Events scheduled at equal times fire in scheduling order
    (FIFO), so runs are deterministic. Time is simulated nanoseconds
    and never flows backwards. *)

type t

val create : unit -> t

val now : t -> Ihnet_util.Units.ns

val schedule : t -> after:Ihnet_util.Units.ns -> (t -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t +. after]. [after] must be
    non-negative. *)

val schedule_at : t -> Ihnet_util.Units.ns -> (t -> unit) -> unit
(** Absolute-time variant; clamps times in the past to [now]. *)

val every : t -> period:Ihnet_util.Units.ns -> ?until:Ihnet_util.Units.ns -> (t -> unit) -> unit
(** Periodic event, first firing one [period] from now, stopping after
    [until] (absolute) when given. Requires [period > 0.]. *)

val step : t -> bool
(** Execute the next event. [false] when the queue is empty. *)

val run : ?until:Ihnet_util.Units.ns -> t -> unit
(** Drain events. With [until] (absolute time), stops — without
    executing — at the first event past it and advances the clock to
    exactly [until]. *)

val pending : t -> int
(** Number of queued events (testing aid). *)

val set_tap : t -> (Ihnet_util.Units.ns -> unit) -> unit
(** [set_tap t f] installs a dispatch observer: [f time] runs before
    every event executes, after the clock has advanced to the event's
    time. One tap at most; [clear_tap] removes it. The tap must not
    schedule events or mutate simulation state — it exists so a flight
    recorder can observe dispatch without perturbing the run. When no
    tap is installed the per-event cost is a single immediate check. *)

val clear_tap : t -> unit
