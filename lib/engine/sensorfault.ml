type target = Device of Ihnet_topology.Device.id | Series of string

type sensor_fault = {
  stuck : bool;
  drift : float;
  drop_prob : float;
  dup_prob : float;
  skew : Ihnet_util.Units.ns;
  probe_loss : float;
  probe_slow : float;
}

type t = (target, sensor_fault) Hashtbl.t

let create () = Hashtbl.create 8

let none =
  {
    stuck = false;
    drift = 1.0;
    drop_prob = 0.0;
    dup_prob = 0.0;
    skew = 0.0;
    probe_loss = 0.0;
    probe_slow = 0.0;
  }

let is_none f = f = none

let stuck_at = { none with stuck = true }
let drifting ~factor = { none with drift = factor }
let lossy ~drop_prob ?(dup_prob = 0.0) () = { none with drop_prob; dup_prob }
let skewed ~skew = { none with skew }
let probe_corruption ~loss ?(slow = 0.0) () = { none with probe_loss = loss; probe_slow = slow }

(* probabilities of independent corruption sources combine as noisy-OR *)
let por a b = 1.0 -. ((1.0 -. a) *. (1.0 -. b))

let merge a b =
  {
    stuck = a.stuck || b.stuck;
    drift = a.drift *. b.drift;
    drop_prob = por a.drop_prob b.drop_prob;
    dup_prob = por a.dup_prob b.dup_prob;
    skew = a.skew +. b.skew;
    probe_loss = por a.probe_loss b.probe_loss;
    probe_slow = por a.probe_slow b.probe_slow;
  }

let inject t target f =
  let prob name p =
    if p < 0.0 || p > 1.0 then invalid_arg ("Sensorfault.inject: " ^ name ^ " not in [0,1]")
  in
  prob "drop_prob" f.drop_prob;
  prob "dup_prob" f.dup_prob;
  prob "probe_loss" f.probe_loss;
  prob "probe_slow" f.probe_slow;
  if f.drift < 0.0 then invalid_arg "Sensorfault.inject: negative drift factor";
  Hashtbl.replace t target f

let clear t target = Hashtbl.remove t target
let clear_all t = Hashtbl.reset t
let get t target = Option.value ~default:none (Hashtbl.find_opt t target)

let active t =
  Hashtbl.fold (fun tg f acc -> (tg, f) :: acc) t []
  |> List.sort (fun (a, _) (b, _) ->
         match (a, b) with
         | Device x, Device y -> compare x y
         | Device _, Series _ -> -1
         | Series _, Device _ -> 1
         | Series x, Series y -> compare x y)

let count t = Hashtbl.length t

let target_label = function
  | Device d -> Printf.sprintf "device %d" d
  | Series s -> Printf.sprintf "series %s" s

let describe f =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  if f.probe_slow > 0.0 then add (Printf.sprintf "probe-slow %.0f%%" (100.0 *. f.probe_slow));
  if f.probe_loss > 0.0 then add (Printf.sprintf "probe-loss %.0f%%" (100.0 *. f.probe_loss));
  if f.skew <> 0.0 then add (Printf.sprintf "skew %.0fns" f.skew);
  if f.dup_prob > 0.0 then add (Printf.sprintf "dup %.0f%%" (100.0 *. f.dup_prob));
  if f.drop_prob > 0.0 then add (Printf.sprintf "drop %.0f%%" (100.0 *. f.drop_prob));
  if f.drift <> 1.0 then add (Printf.sprintf "drift x%.2f" f.drift);
  if f.stuck then add "stuck";
  if !parts = [] then "healthy" else String.concat ", " !parts
