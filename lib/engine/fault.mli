(** Fault injection.

    The §3.1 motivating case: "a hardware failure occurring on the PCIe
    switch may silently cause the connected PCIe device to suffer
    performance degradation" — silent meaning no error counter fires.
    Faults here change link behaviour (capacity factor, added latency,
    loss) without any explicit signal; only their performance effects
    are observable, which is exactly what the monitor must detect. *)

type link_fault = {
  capacity_factor : float;  (** Multiplies link capacity; 1.0 healthy,
                                0.0 down. In [\[0,1\]]. *)
  extra_latency : Ihnet_util.Units.ns;  (** Added per-hop delay. *)
  loss_prob : float;  (** Probability a probe/heartbeat is lost. *)
}

type t

val create : unit -> t
val healthy : link_fault

val inject : t -> Ihnet_topology.Link.id -> link_fault -> unit
val clear : t -> Ihnet_topology.Link.id -> unit
val clear_all : t -> unit
val get : t -> Ihnet_topology.Link.id -> link_fault
val faulty_links : t -> (Ihnet_topology.Link.id * link_fault) list

val degrade : capacity_factor:float -> ?extra_latency:Ihnet_util.Units.ns -> unit -> link_fault
(** Silent degradation: reduced capacity, optional extra delay, no
    loss. *)

val down : link_fault
(** Complete failure: zero capacity, all probes lost. *)
