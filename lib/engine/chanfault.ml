module Rng = Ihnet_util.Rng

type fault = {
  loss : float;
  delay_lo : int;
  delay_hi : int;
  dup_prob : float;
  partitioned : bool;
}

let none = { loss = 0.0; delay_lo = 0; delay_hi = 0; dup_prob = 0.0; partitioned = false }
let is_none f = f = none

let check_prob name p =
  if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Chanfault: %s %f not in [0,1]" name p)

let lossy ~loss ?(dup_prob = 0.0) () =
  check_prob "loss" loss;
  check_prob "dup_prob" dup_prob;
  { none with loss; dup_prob }

let delayed ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Chanfault: delay range must satisfy 0 <= lo <= hi";
  { none with delay_lo = lo; delay_hi = hi }

let partition = { none with partitioned = true }

(* independent combination for the probabilities, additive delay,
   partition dominates — same shape as Sensorfault.merge *)
let merge a b =
  {
    loss = 1.0 -. ((1.0 -. a.loss) *. (1.0 -. b.loss));
    delay_lo = a.delay_lo + b.delay_lo;
    delay_hi = a.delay_hi + b.delay_hi;
    dup_prob = 1.0 -. ((1.0 -. a.dup_prob) *. (1.0 -. b.dup_prob));
    partitioned = a.partitioned || b.partitioned;
  }

type verdict = Dropped | Delivered of { delay : int; copies : int }

let apply rng f =
  if f.partitioned then Dropped
  else if is_none f then Delivered { delay = 0; copies = 1 }
  else if f.loss > 0.0 && Rng.float rng 1.0 < f.loss then Dropped
  else begin
    let delay =
      if f.delay_hi = 0 then 0
      else if f.delay_hi = f.delay_lo then f.delay_lo
      else f.delay_lo + Rng.int rng (f.delay_hi - f.delay_lo + 1)
    in
    let copies = if f.dup_prob > 0.0 && Rng.float rng 1.0 < f.dup_prob then 2 else 1 in
    Delivered { delay; copies }
  end

let describe f =
  if f.partitioned then "partitioned"
  else if is_none f then "healthy"
  else
    let parts =
      (if f.loss > 0.0 then [ Printf.sprintf "loss %.0f%%" (100.0 *. f.loss) ] else [])
      @ (if f.delay_hi > 0 then
           [ Printf.sprintf "delay %d-%d round(s)" f.delay_lo f.delay_hi ]
         else [])
      @
      if f.dup_prob > 0.0 then [ Printf.sprintf "dup %.0f%%" (100.0 *. f.dup_prob) ] else []
    in
    String.concat ", " parts
