(** IOMMU / IOTLB translation-cost model.

    With the IOMMU enabled, every DMA address is translated; the IOTLB
    caches translations. Agarwal et al. (HotNets'22) — the paper's [2] —
    show that once the devices' aggregate working set exceeds IOTLB
    reach, translation misses inflate both latency and PCIe bandwidth
    cost. We model the IOTLB as an LRU cache under independent-reference
    pressure: miss rate ≈ max(0, 1 − entries / working-set-pages). *)

val miss_rate : entries:int -> working_set_pages:int -> float
(** In [\[0,1\]]; 0 when the working set fits. *)

val expected_translation_latency :
  Ihnet_topology.Hostconfig.iommu -> working_set_pages:int -> Ihnet_util.Units.ns
(** Per-transaction expected cost: 0 when off, else
    [hit_latency + miss_rate × miss_penalty]. *)

val bandwidth_overhead_factor :
  Ihnet_topology.Hostconfig.iommu -> working_set_pages:int -> payload_bytes:int -> float
(** Multiplicative capacity-consumption factor (≥ 1) on PCIe hops:
    translation stalls reduce achievable DMA efficiency for small
    payloads. 1.0 when the IOMMU is off. *)
