let miss_rate ~entries ~working_set_pages =
  assert (entries > 0);
  if working_set_pages <= entries then 0.0
  else 1.0 -. (float_of_int entries /. float_of_int working_set_pages)

let expected_translation_latency iommu ~working_set_pages =
  match iommu with
  | Ihnet_topology.Hostconfig.Iommu_off -> 0.0
  | Ihnet_topology.Hostconfig.Iommu_on { iotlb_entries; hit_latency; miss_penalty } ->
    let m = miss_rate ~entries:iotlb_entries ~working_set_pages in
    hit_latency +. (m *. miss_penalty)

(* A transaction of [payload_bytes] that stalls [t_xlat] on translation
   wastes link-time worth [t_xlat × line_rate]; relative to the payload
   this is an extra consumption factor. We charge it only on the stalled
   fraction (misses), assuming hits are pipelined. *)
let bandwidth_overhead_factor iommu ~working_set_pages ~payload_bytes =
  match iommu with
  | Ihnet_topology.Hostconfig.Iommu_off -> 1.0
  | Ihnet_topology.Hostconfig.Iommu_on { iotlb_entries; miss_penalty; _ } ->
    let m = miss_rate ~entries:iotlb_entries ~working_set_pages in
    if m = 0.0 then 1.0
    else begin
      (* bytes a gen4 x16 link could move during one miss penalty *)
      let line_rate = 32e9 (* bytes/s, order of magnitude *) in
      let wasted = m *. (miss_penalty /. 1e9) *. line_rate in
      1.0 +. (wasted /. float_of_int payload_bytes /. 64.0)
      (* /64: modern root complexes keep ~64 translations in flight,
         hiding most of the walk latency; the residual matches the
         10-30% small-payload IOMMU tax measurement studies report *)
    end
