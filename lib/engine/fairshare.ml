module U = Ihnet_util

type demand = {
  weight : float;
  floor : float;
  cap : float;
  usage : (int * float) list;
}

let eps = 1e-9

let validate ~capacities demands =
  let nr = Array.length capacities in
  Array.iter
    (fun d ->
      assert (d.weight > 0.0);
      assert (d.floor >= 0.0);
      assert (d.cap >= 0.0);
      List.iter (fun (r, c) -> assert (r >= 0 && r < nr && c > 0.0)) d.usage)
    demands

(* Floor feasibility. Each over-committed resource r gets a scale
   s_r = cap_r / load_r < 1; a demand's floor is scaled by the worst
   s_r among the resources it uses. This keeps infeasibility local: a
   dead link only shrinks the guarantees of the flows crossing it.
   Returns the initial (post-floor) rates and the active set. *)
let seed_rates ~capacities demands =
  let nr = Array.length capacities in
  let rates = Array.map (fun d -> Float.min d.floor d.cap) demands in
  let load = Array.make nr 0.0 in
  Array.iteri
    (fun i d -> List.iter (fun (r, c) -> load.(r) <- load.(r) +. (rates.(i) *. c)) d.usage)
    demands;
  let scale = Array.make nr 1.0 in
  for r = 0 to nr - 1 do
    if load.(r) > capacities.(r) then
      scale.(r) <- (if load.(r) > 0.0 then capacities.(r) /. load.(r) else 0.0)
  done;
  Array.iteri
    (fun i d ->
      let f = List.fold_left (fun acc (r, _) -> Float.min acc scale.(r)) 1.0 d.usage in
      if f < 1.0 then rates.(i) <- rates.(i) *. f)
    demands;
  (* Demands with no usage are not resource-constrained: they simply
     get their cap; demands already at their cap never fill. *)
  let active = Array.map (fun d -> d.usage <> []) demands in
  Array.iteri (fun i d -> if d.usage = [] then rates.(i) <- d.cap) demands;
  Array.iteri (fun i d -> if rates.(i) >= d.cap -. eps then active.(i) <- false) demands;
  (rates, active)

(* {1 Reference implementation}

   Round-based progressive filling: every round scans all demands for
   the next cap hit and all used resources for the next saturation,
   advances the filling front, and freezes what it hit. O(rounds ×
   (n + Σ|usage|)) with up to n + nr rounds — quadratic under churn.
   Kept verbatim as the semantic oracle for the event-driven
   implementation below (see test/test_properties.ml). *)

let allocate_reference ~capacities demands =
  let n = Array.length demands in
  let nr = Array.length capacities in
  validate ~capacities demands;
  let rates, active = seed_rates ~capacities demands in
  (* Only resources some demand actually uses can ever saturate; on a
     large host most links are idle, so iterate over the used set. *)
  let used_resources =
    let seen = Array.make nr false in
    let out = ref [] in
    Array.iter
      (fun d ->
        List.iter
          (fun (r, _) ->
            if not seen.(r) then begin
              seen.(r) <- true;
              out := r :: !out
            end)
          d.usage)
      demands;
    !out
  in
  let saturated = Array.make nr false in
  (* incremental per-resource load and per-resource active growth speed *)
  let load = Array.make nr 0.0 in
  let speed = Array.make nr 0.0 in
  Array.iteri
    (fun i d ->
      List.iter
        (fun (r, c) ->
          load.(r) <- load.(r) +. (rates.(i) *. c);
          if active.(i) then speed.(r) <- speed.(r) +. (d.weight *. c))
        d.usage)
    demands;
  let deactivate i =
    if active.(i) then begin
      active.(i) <- false;
      List.iter
        (fun (r, c) -> speed.(r) <- speed.(r) -. (demands.(i).weight *. c))
        demands.(i).usage
    end
  in
  let continue = ref true in
  let guard = ref (n + nr + 2) in
  while !continue && !guard > 0 do
    decr guard;
    let any_active = Array.exists Fun.id active in
    if not any_active then continue := false
    else begin
      (* time to saturate each used resource *)
      let dt = ref infinity in
      List.iter
        (fun r ->
          if (not saturated.(r)) && speed.(r) > eps then begin
            let res = capacities.(r) -. load.(r) in
            if res <= eps then dt := 0.0 else dt := Float.min !dt (res /. speed.(r))
          end)
        used_resources;
      (* time for each active demand to hit its cap *)
      Array.iteri
        (fun i d ->
          if active.(i) && d.cap < infinity then
            dt := Float.min !dt ((d.cap -. rates.(i)) /. d.weight))
        demands;
      if !dt = infinity then begin
        (* nothing constrains the remaining demands (cannot happen with
           finite capacities on every used resource); freeze defensively *)
        Array.iteri (fun i a -> if a then deactivate i) active;
        continue := false
      end
      else begin
        let dt = Float.max !dt 0.0 in
        Array.iteri
          (fun i d ->
            if active.(i) then begin
              let delta = d.weight *. dt in
              rates.(i) <- rates.(i) +. delta;
              List.iter (fun (r, c) -> load.(r) <- load.(r) +. (delta *. c)) d.usage
            end)
          demands;
        (* freeze capped demands *)
        Array.iteri
          (fun i d ->
            if active.(i) && rates.(i) >= d.cap -. (eps *. Float.max 1.0 d.cap) then begin
              List.iter (fun (r, c) -> load.(r) <- load.(r) +. ((d.cap -. rates.(i)) *. c)) d.usage;
              rates.(i) <- d.cap;
              deactivate i
            end)
          demands;
        (* saturate resources and freeze their demands *)
        List.iter
          (fun r ->
            if
              (not saturated.(r))
              && capacities.(r) -. load.(r) <= eps *. Float.max 1.0 capacities.(r)
            then begin
              saturated.(r) <- true;
              Array.iteri
                (fun i d ->
                  if active.(i) && List.exists (fun (r', _) -> r' = r) d.usage then deactivate i)
                demands
            end)
          used_resources
      end
    end
  done;
  rates

(* {1 Event-driven implementation}

   Same progressive filling, computed as a discrete-event sweep over a
   virtual fill time τ. While active, demand i's rate is
   rate_i(τ) = start_i + w_i·τ, so the next constraint it can hit is
   known in closed form: a cap hit at τ = (cap_i − start_i)/w_i, and a
   resource saturation at τ = τ_r + residual_r/speed_r. Both event
   kinds go into one min-heap; processing an event freezes demands and
   lowers the growth speed of exactly the resources they use (found
   via a resource→demand incidence index).

   Saturation events use lazy re-insert: each resource keeps at most
   one event in the heap, stamped with the resource's version at push
   time. A freeze bumps the versions of the resources it touches
   without pushing anything; when a stale event reaches the top it is
   re-keyed from the current residual and re-pushed. This is sound
   because speeds only ever decrease, so the true saturation time only
   moves later — a stale event fires early, never late.

   Each demand freezes once and each resource saturates at most once,
   so the total work is O((n + Σ|usage|) · log) plus O(nr) array
   setup — linear in the touched contention component rather than
   quadratic in the demand count. *)

type fill_event = Cap of int | Sat of int * int (* resource, version at push *)

let allocate ~capacities demands =
  let nr = Array.length capacities in
  let n = Array.length demands in
  (* Flatten usages into CSR form in one pass: every later sweep reads
     flat int/float arrays instead of chasing boxed tuple lists. The
     seeding below re-states the seed_rates law over the CSR arrays —
     any divergence is caught by the differential property test. *)
  let off = Array.make (n + 1) 0 in
  Array.iteri (fun i d -> off.(i + 1) <- List.length d.usage) demands;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let m = off.(n) in
  let ures = Array.make (max 1 m) 0 in
  let ucoef = Array.make (max 1 m) 0.0 in
  let weight = Array.make (max 1 n) 0.0 in
  let cap = Array.make (max 1 n) 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun i d ->
      assert (d.weight > 0.0);
      assert (d.floor >= 0.0);
      assert (d.cap >= 0.0);
      weight.(i) <- d.weight;
      cap.(i) <- d.cap;
      List.iter
        (fun (r, c) ->
          assert (r >= 0 && r < nr && c > 0.0);
          ures.(!k) <- r;
          ucoef.(!k) <- c;
          incr k)
        d.usage)
    demands;
  (* seed rates: floors, clipped by caps, scaled down locally where
     jointly infeasible (same law as seed_rates) *)
  let rates = Array.make (max 1 n) 0.0 in
  for i = 0 to n - 1 do
    rates.(i) <- Float.min demands.(i).floor cap.(i)
  done;
  let load = Array.make nr 0.0 in
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      load.(ures.(j)) <- load.(ures.(j)) +. (rates.(i) *. ucoef.(j))
    done
  done;
  let any_over = ref false in
  let scale = Array.make nr 1.0 in
  for r = 0 to nr - 1 do
    if load.(r) > capacities.(r) then begin
      any_over := true;
      scale.(r) <- (if load.(r) > 0.0 then capacities.(r) /. load.(r) else 0.0)
    end
  done;
  if !any_over then
    for i = 0 to n - 1 do
      let f = ref 1.0 in
      for j = off.(i) to off.(i + 1) - 1 do
        f := Float.min !f scale.(ures.(j))
      done;
      if !f < 1.0 then rates.(i) <- rates.(i) *. !f
    done;
  let active = Array.make (max 1 n) false in
  for i = 0 to n - 1 do
    if off.(i + 1) = off.(i) then rates.(i) <- cap.(i)
    else active.(i) <- rates.(i) < cap.(i) -. eps
  done;
  (* resource → usage-entry incidence, CSR again *)
  let inc_off = Array.make (nr + 1) 0 in
  for j = 0 to m - 1 do
    inc_off.(ures.(j) + 1) <- inc_off.(ures.(j) + 1) + 1
  done;
  for r = 0 to nr - 1 do
    inc_off.(r + 1) <- inc_off.(r + 1) + inc_off.(r)
  done;
  let inc_d = Array.make (max 1 m) 0 in
  let cursor = Array.copy inc_off in
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      let r = ures.(j) in
      inc_d.(cursor.(r)) <- i;
      cursor.(r) <- cursor.(r) + 1
    done
  done;
  let saturated = Array.make nr false in
  let speed = Array.make nr 0.0 in
  let tau_r = Array.make nr 0.0 in
  let version = Array.make nr 0 in
  Array.fill load 0 nr 0.0;
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      let r = ures.(j) in
      load.(r) <- load.(r) +. (rates.(i) *. ucoef.(j));
      if active.(i) then speed.(r) <- speed.(r) +. (weight.(i) *. ucoef.(j))
    done
  done;
  let start_rate = Array.copy rates in
  let tau = ref 0.0 in
  let events : fill_event U.Heap.t = U.Heap.create () in
  let push_sat r =
    if (not saturated.(r)) && speed.(r) > eps then begin
      let residual = capacities.(r) -. load.(r) in
      let at = if residual <= 0.0 then !tau else tau_r.(r) +. (residual /. speed.(r)) in
      U.Heap.push events (Float.max at !tau) (Sat (r, version.(r)))
    end
  in
  (* bring load.(r) forward to virtual time [at] *)
  let touch r at =
    if at > tau_r.(r) then begin
      load.(r) <- load.(r) +. (speed.(r) *. (at -. tau_r.(r)));
      tau_r.(r) <- at
    end
  in
  let freeze i at =
    if active.(i) then begin
      active.(i) <- false;
      rates.(i) <- Float.min cap.(i) (start_rate.(i) +. (weight.(i) *. at));
      for j = off.(i) to off.(i + 1) - 1 do
        let r = ures.(j) in
        touch r at;
        speed.(r) <- speed.(r) -. (weight.(i) *. ucoef.(j));
        (* invalidate r's in-heap saturation event; it will be
           re-keyed lazily if it surfaces before r saturates *)
        version.(r) <- version.(r) + 1
      done
    end
  in
  for i = 0 to n - 1 do
    if active.(i) && cap.(i) < infinity then
      U.Heap.push events ((cap.(i) -. rates.(i)) /. weight.(i)) (Cap i)
  done;
  for r = 0 to nr - 1 do
    push_sat r
  done;
  let continue = ref true in
  while !continue do
    match U.Heap.pop events with
    | None -> continue := false
    | Some (at, Cap i) ->
      if active.(i) then begin
        tau := Float.max !tau at;
        freeze i !tau
      end
    | Some (at, Sat (r, v)) ->
      if not saturated.(r) then begin
        if v = version.(r) then begin
          (* no incident freeze since push: the key is exact *)
          tau := Float.max !tau at;
          saturated.(r) <- true;
          touch r !tau;
          for jj = inc_off.(r) to inc_off.(r + 1) - 1 do
            let i = inc_d.(jj) in
            if active.(i) then freeze i !tau
          done
        end
        else
          (* speeds dropped since push, so r saturates later (or
             never); re-key from the current residual *)
          push_sat r
      end
  done;
  (* anything still active is unconstrained (possible only when every
     resource it uses has vanishing growth speed); freeze defensively
     at the current front, as the reference does *)
  for i = 0 to n - 1 do
    if active.(i) then begin
      active.(i) <- false;
      rates.(i) <- Float.min cap.(i) (start_rate.(i) +. (weight.(i) *. !tau))
    end
  done;
  if Array.length rates = n then rates else Array.sub rates 0 n

let max_min_fair ~capacities usages =
  let demands =
    Array.map (fun usage -> { weight = 1.0; floor = 0.0; cap = infinity; usage }) usages
  in
  allocate ~capacities demands
