module U = Ihnet_util

type demand = {
  weight : float;
  floor : float;
  cap : float;
  usage : (int * float) list;
}

let eps = 1e-9

let invalidf fmt = Printf.ksprintf invalid_arg fmt

(* Input validation raises [Invalid_argument] — deliberately not
   [assert], which vanishes under [-noassert]/release builds: a NaN
   weight or negative coefficient that silently enters the solver
   corrupts every rate downstream, far more expensive to debug than
   these comparisons are to run. The [not (...)] form keeps the
   NaN-rejecting behavior the asserts had. *)
let check_demand ~nr i d =
  if not (d.weight > 0.0) then invalidf "Fairshare: demand %d: weight must be > 0" i;
  if not (d.floor >= 0.0) then invalidf "Fairshare: demand %d: floor must be >= 0" i;
  if not (d.cap >= 0.0) then invalidf "Fairshare: demand %d: cap must be >= 0" i;
  List.iter
    (fun (r, c) ->
      if r < 0 || r >= nr then
        invalidf "Fairshare: demand %d: resource %d out of range [0, %d)" i r nr;
      if not (c > 0.0) then invalidf "Fairshare: demand %d: usage coefficient must be > 0" i)
    d.usage

let validate ~capacities demands =
  let nr = Array.length capacities in
  Array.iteri (fun i d -> check_demand ~nr i d) demands

(* Floor feasibility. Each over-committed resource r gets a scale
   s_r = cap_r / load_r < 1; a demand's floor is scaled by the worst
   s_r among the resources it uses. This keeps infeasibility local: a
   dead link only shrinks the guarantees of the flows crossing it.
   Returns the initial (post-floor) rates and the active set. *)
let seed_rates ~capacities demands =
  let nr = Array.length capacities in
  let rates = Array.map (fun d -> Float.min d.floor d.cap) demands in
  let load = Array.make nr 0.0 in
  Array.iteri
    (fun i d -> List.iter (fun (r, c) -> load.(r) <- load.(r) +. (rates.(i) *. c)) d.usage)
    demands;
  let scale = Array.make nr 1.0 in
  for r = 0 to nr - 1 do
    if load.(r) > capacities.(r) then
      scale.(r) <- (if load.(r) > 0.0 then capacities.(r) /. load.(r) else 0.0)
  done;
  Array.iteri
    (fun i d ->
      let f = List.fold_left (fun acc (r, _) -> Float.min acc scale.(r)) 1.0 d.usage in
      if f < 1.0 then rates.(i) <- rates.(i) *. f)
    demands;
  (* Demands with no usage are not resource-constrained: they simply
     get their cap; demands already at their cap never fill. *)
  let active = Array.map (fun d -> d.usage <> []) demands in
  Array.iteri (fun i d -> if d.usage = [] then rates.(i) <- d.cap) demands;
  Array.iteri (fun i d -> if rates.(i) >= d.cap -. eps then active.(i) <- false) demands;
  (rates, active)

(* {1 Reference implementation}

   Round-based progressive filling: every round scans all demands for
   the next cap hit and all used resources for the next saturation,
   advances the filling front, and freezes what it hit. O(rounds ×
   (n + Σ|usage|)) with up to n + nr rounds — quadratic under churn.
   Kept verbatim as the semantic oracle for the event-driven
   implementation below (see test/test_properties.ml). *)

let allocate_reference ~capacities demands =
  let n = Array.length demands in
  let nr = Array.length capacities in
  validate ~capacities demands;
  let rates, active = seed_rates ~capacities demands in
  (* Only resources some demand actually uses can ever saturate; on a
     large host most links are idle, so iterate over the used set. *)
  let used_resources =
    let seen = Array.make nr false in
    let out = ref [] in
    Array.iter
      (fun d ->
        List.iter
          (fun (r, _) ->
            if not seen.(r) then begin
              seen.(r) <- true;
              out := r :: !out
            end)
          d.usage)
      demands;
    !out
  in
  let saturated = Array.make nr false in
  (* incremental per-resource load and per-resource active growth speed *)
  let load = Array.make nr 0.0 in
  let speed = Array.make nr 0.0 in
  Array.iteri
    (fun i d ->
      List.iter
        (fun (r, c) ->
          load.(r) <- load.(r) +. (rates.(i) *. c);
          if active.(i) then speed.(r) <- speed.(r) +. (d.weight *. c))
        d.usage)
    demands;
  let deactivate i =
    if active.(i) then begin
      active.(i) <- false;
      List.iter
        (fun (r, c) -> speed.(r) <- speed.(r) -. (demands.(i).weight *. c))
        demands.(i).usage
    end
  in
  let continue = ref true in
  let guard = ref (n + nr + 2) in
  while !continue && !guard > 0 do
    decr guard;
    let any_active = Array.exists Fun.id active in
    if not any_active then continue := false
    else begin
      (* time to saturate each used resource *)
      let dt = ref infinity in
      List.iter
        (fun r ->
          if (not saturated.(r)) && speed.(r) > eps then begin
            let res = capacities.(r) -. load.(r) in
            if res <= eps then dt := 0.0 else dt := Float.min !dt (res /. speed.(r))
          end)
        used_resources;
      (* time for each active demand to hit its cap *)
      Array.iteri
        (fun i d ->
          if active.(i) && d.cap < infinity then
            dt := Float.min !dt ((d.cap -. rates.(i)) /. d.weight))
        demands;
      if !dt = infinity then begin
        (* nothing constrains the remaining demands (cannot happen with
           finite capacities on every used resource); freeze defensively *)
        Array.iteri (fun i a -> if a then deactivate i) active;
        continue := false
      end
      else begin
        let dt = Float.max !dt 0.0 in
        Array.iteri
          (fun i d ->
            if active.(i) then begin
              let delta = d.weight *. dt in
              rates.(i) <- rates.(i) +. delta;
              List.iter (fun (r, c) -> load.(r) <- load.(r) +. (delta *. c)) d.usage
            end)
          demands;
        (* freeze capped demands *)
        Array.iteri
          (fun i d ->
            if active.(i) && rates.(i) >= d.cap -. (eps *. Float.max 1.0 d.cap) then begin
              List.iter (fun (r, c) -> load.(r) <- load.(r) +. ((d.cap -. rates.(i)) *. c)) d.usage;
              rates.(i) <- d.cap;
              deactivate i
            end)
          demands;
        (* saturate resources and freeze their demands *)
        List.iter
          (fun r ->
            if
              (not saturated.(r))
              && capacities.(r) -. load.(r) <= eps *. Float.max 1.0 capacities.(r)
            then begin
              saturated.(r) <- true;
              Array.iteri
                (fun i d ->
                  if active.(i) && List.exists (fun (r', _) -> r' = r) d.usage then deactivate i)
                demands
            end)
          used_resources
      end
    end
  done;
  rates

(* {1 Event-driven implementation}

   Same progressive filling, computed as a discrete-event sweep over a
   virtual fill time τ. While active, demand i's rate is
   rate_i(τ) = start_i + w_i·τ, so the next constraint it can hit is
   known in closed form: a cap hit at τ = (cap_i − start_i)/w_i, and a
   resource saturation at τ = τ_r + residual_r/speed_r. Both event
   kinds go into one min-heap; processing an event freezes demands and
   lowers the growth speed of exactly the resources they use (found
   via a resource→demand incidence index).

   Saturation events use lazy re-insert: each resource keeps at most
   one event in the heap, stamped with the resource's version at push
   time. A freeze bumps the versions of the resources it touches
   without pushing anything; when a stale event reaches the top it is
   re-keyed from the current residual and re-pushed. This is sound
   because speeds only ever decrease, so the true saturation time only
   moves later — a stale event fires early, never late.

   Each demand freezes once and each resource saturates at most once,
   so the total work is O((n + Σ|usage|) · log) plus O(nr) array
   setup — linear in the touched contention component rather than
   quadratic in the demand count. *)

type fill_event = Cap of int | Sat of int * int (* resource, version at push *)

let allocate ~capacities demands =
  let nr = Array.length capacities in
  let n = Array.length demands in
  (* Flatten usages into CSR form in one pass: every later sweep reads
     flat int/float arrays instead of chasing boxed tuple lists. The
     seeding below re-states the seed_rates law over the CSR arrays —
     any divergence is caught by the differential property test. *)
  let off = Array.make (n + 1) 0 in
  Array.iteri (fun i d -> off.(i + 1) <- List.length d.usage) demands;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let m = off.(n) in
  let ures = Array.make (max 1 m) 0 in
  let ucoef = Array.make (max 1 m) 0.0 in
  let weight = Array.make (max 1 n) 0.0 in
  let cap = Array.make (max 1 n) 0.0 in
  let k = ref 0 in
  (* validation is fused into the CSR fill so each usage list is
     traversed exactly once. The fast path is one combined comparison
     (NaN-rejecting: a NaN compares false and falls through); only the
     failing branch calls [check_demand], which re-scans the demand and
     raises [Invalid_argument] naming the exact offending field. *)
  Array.iteri
    (fun i d ->
      if not (d.weight > 0.0 && d.floor >= 0.0 && d.cap >= 0.0) then check_demand ~nr i d;
      weight.(i) <- d.weight;
      cap.(i) <- d.cap;
      List.iter
        (fun (r, c) ->
          if not (r >= 0 && r < nr && c > 0.0) then check_demand ~nr i d;
          ures.(!k) <- r;
          ucoef.(!k) <- c;
          incr k)
        d.usage)
    demands;
  (* seed rates: floors, clipped by caps, scaled down locally where
     jointly infeasible (same law as seed_rates) *)
  let rates = Array.make (max 1 n) 0.0 in
  for i = 0 to n - 1 do
    rates.(i) <- Float.min demands.(i).floor cap.(i)
  done;
  let load = Array.make nr 0.0 in
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      load.(ures.(j)) <- load.(ures.(j)) +. (rates.(i) *. ucoef.(j))
    done
  done;
  let any_over = ref false in
  let scale = Array.make nr 1.0 in
  for r = 0 to nr - 1 do
    if load.(r) > capacities.(r) then begin
      any_over := true;
      scale.(r) <- (if load.(r) > 0.0 then capacities.(r) /. load.(r) else 0.0)
    end
  done;
  if !any_over then
    for i = 0 to n - 1 do
      let f = ref 1.0 in
      for j = off.(i) to off.(i + 1) - 1 do
        f := Float.min !f scale.(ures.(j))
      done;
      if !f < 1.0 then rates.(i) <- rates.(i) *. !f
    done;
  let active = Array.make (max 1 n) false in
  for i = 0 to n - 1 do
    if off.(i + 1) = off.(i) then rates.(i) <- cap.(i)
    else active.(i) <- rates.(i) < cap.(i) -. eps
  done;
  (* resource → usage-entry incidence, CSR again *)
  let inc_off = Array.make (nr + 1) 0 in
  for j = 0 to m - 1 do
    inc_off.(ures.(j) + 1) <- inc_off.(ures.(j) + 1) + 1
  done;
  for r = 0 to nr - 1 do
    inc_off.(r + 1) <- inc_off.(r + 1) + inc_off.(r)
  done;
  let inc_d = Array.make (max 1 m) 0 in
  let cursor = Array.copy inc_off in
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      let r = ures.(j) in
      inc_d.(cursor.(r)) <- i;
      cursor.(r) <- cursor.(r) + 1
    done
  done;
  let saturated = Array.make nr false in
  let speed = Array.make nr 0.0 in
  let tau_r = Array.make nr 0.0 in
  let version = Array.make nr 0 in
  Array.fill load 0 nr 0.0;
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      let r = ures.(j) in
      load.(r) <- load.(r) +. (rates.(i) *. ucoef.(j));
      if active.(i) then speed.(r) <- speed.(r) +. (weight.(i) *. ucoef.(j))
    done
  done;
  let start_rate = Array.copy rates in
  let tau = ref 0.0 in
  let events : fill_event U.Heap.t = U.Heap.create () in
  let push_sat r =
    if (not saturated.(r)) && speed.(r) > eps then begin
      let residual = capacities.(r) -. load.(r) in
      let at = if residual <= 0.0 then !tau else tau_r.(r) +. (residual /. speed.(r)) in
      U.Heap.push events (Float.max at !tau) (Sat (r, version.(r)))
    end
  in
  (* bring load.(r) forward to virtual time [at] *)
  let touch r at =
    if at > tau_r.(r) then begin
      load.(r) <- load.(r) +. (speed.(r) *. (at -. tau_r.(r)));
      tau_r.(r) <- at
    end
  in
  let freeze i at =
    if active.(i) then begin
      active.(i) <- false;
      rates.(i) <- Float.min cap.(i) (start_rate.(i) +. (weight.(i) *. at));
      for j = off.(i) to off.(i + 1) - 1 do
        let r = ures.(j) in
        touch r at;
        speed.(r) <- speed.(r) -. (weight.(i) *. ucoef.(j));
        (* invalidate r's in-heap saturation event; it will be
           re-keyed lazily if it surfaces before r saturates *)
        version.(r) <- version.(r) + 1
      done
    end
  in
  for i = 0 to n - 1 do
    if active.(i) && cap.(i) < infinity then
      U.Heap.push events ((cap.(i) -. rates.(i)) /. weight.(i)) (Cap i)
  done;
  for r = 0 to nr - 1 do
    push_sat r
  done;
  let continue = ref true in
  while !continue do
    match U.Heap.pop events with
    | None -> continue := false
    | Some (at, Cap i) ->
      if active.(i) then begin
        tau := Float.max !tau at;
        freeze i !tau
      end
    | Some (at, Sat (r, v)) ->
      if not saturated.(r) then begin
        if v = version.(r) then begin
          (* no incident freeze since push: the key is exact *)
          tau := Float.max !tau at;
          saturated.(r) <- true;
          touch r !tau;
          for jj = inc_off.(r) to inc_off.(r + 1) - 1 do
            let i = inc_d.(jj) in
            if active.(i) then freeze i !tau
          done
        end
        else
          (* speeds dropped since push, so r saturates later (or
             never); re-key from the current residual *)
          push_sat r
      end
  done;
  (* anything still active is unconstrained (possible only when every
     resource it uses has vanishing growth speed); freeze defensively
     at the current front, as the reference does *)
  for i = 0 to n - 1 do
    if active.(i) then begin
      active.(i) <- false;
      rates.(i) <- Float.min cap.(i) (start_rate.(i) +. (weight.(i) *. !tau))
    end
  done;
  if Array.length rates = n then rates else Array.sub rates 0 n

let max_min_fair ~capacities usages =
  let demands =
    Array.map (fun usage -> { weight = 1.0; floor = 0.0; cap = infinity; usage }) usages
  in
  allocate ~capacities demands

(* {1 Warm-started state}

   [allocate] above rebuilds everything — CSR, incidence, seeds — on
   every call, which is the right shape for one-shot use but wasteful
   when the fabric re-arbitrates the same component on every churn
   event. A [state] persists across solves:

   - the CSR usage arrays and the resource→demand incidence (rebuilt
     only on a structural change: demand count or any usage list);
   - the seed-phase accumulators (per-resource floor load, scale
     factors, per-demand seed rates and initial active set,
     per-resource initial load/speed), re-derived only for the demands
     and resources reachable from a dirty input;
   - the working arrays and the event min-heap of the τ-sweep, which
     are overwritten (not reallocated) by every solve.

   Bit-identity with the cold path is load-bearing (the fabric's
   determinism contract, MODEL.md §12–13), and rests on three facts:

   1. Per-resource accumulators (floor load, initial load/speed)
      re-computed by an incidence scan equal the cold demand-major
      accumulation bitwise: the incidence index is built by a cursor
      sweep in demand-major order, so for any fixed resource the
      additions happen in exactly the same order, and float addition
      order is all that matters.
   2. The seed of one demand is a pure function of its own
      (floor, cap) and the scale factors of the resources it uses;
      cold's [if any_over] guard is equivalent to the per-demand
      f = 1.0 no-op, so re-deriving only affected demands is exact.
   3. The heap's tie-break uses relative insertion order only, so a
      cleared, reused heap replays cold's tie-breaks exactly.

   Dirty tracking is value-based with exact (bitwise) float compares —
   [feq] below distinguishes -0.0 from 0.0, because Float.min does,
   and a digest over the output rates would too. *)

let feq (a : float) (b : float) = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let usage_eq u1 u2 =
  u1 == u2 || List.equal (fun (r1, c1) (r2, c2) -> r1 = r2 && feq c1 c2) u1 u2

type state = {
  nr : int;
  capacities : float array; (* owned copy, mutated by [set_capacity] *)
  mutable n : int;
  mutable dems : demand array; (* current demand records, slot order *)
  (* scalar parameter mirrors (valid when [not structural]) *)
  mutable weight : float array;
  mutable floor : float array;
  mutable dcap : float array;
  (* usage CSR + resource→demand incidence *)
  mutable off : int array;
  mutable ures : int array;
  mutable ucoef : float array;
  mutable inc_off : int array;
  mutable inc_d : int array;
  mutable inc_coef : float array;
  (* persistent seed accumulators; invariant: when [seeded], each one
     equals what a full reseed over the current inputs would produce *)
  mutable seeded : bool;
  mutable structural : bool;
  mutable floor_load : float array; (* per resource *)
  mutable scale : float array; (* per resource *)
  mutable seed_rate : float array; (* per demand *)
  mutable active0 : bool array; (* per demand *)
  mutable load0 : float array; (* per resource *)
  mutable speed0 : float array; (* per resource *)
  (* inputs changed since the last solve (may hold duplicates;
     consumers dedup with the generation marks below) *)
  dirty_dem : int U.Vec.t;
  dirty_cap : int U.Vec.t;
  (* solve-local scratch *)
  aff_res : int U.Vec.t;
  aff_dem : int U.Vec.t;
  dd_res : int U.Vec.t;
  mutable gmark_dem : int array;
  mutable gmark_res : int array;
  mutable mark_gen : int;
  (* working arrays, overwritten by every sweep *)
  mutable rates : float array;
  mutable wload : float array;
  mutable wspeed : float array;
  mutable tau_r : float array;
  mutable version : int array;
  mutable wsat : bool array;
  mutable wactive : bool array;
  events : fill_event U.Heap.t;
  mutable clean : bool; (* [rates] already solves the current inputs *)
  (* counters *)
  mutable c_solves : int;
  mutable c_full : int;
  mutable c_incremental : int;
  mutable c_noop : int;
}

type stats = { solves : int; full_rebuilds : int; incremental : int; unchanged : int }

let stats st =
  {
    solves = st.c_solves;
    full_rebuilds = st.c_full;
    incremental = st.c_incremental;
    unchanged = st.c_noop;
  }

let state_size st = st.n
let state_demand st i = st.dems.(i)

let make_state ~capacities demands =
  let nr = Array.length capacities in
  {
    nr;
    capacities = Array.copy capacities;
    n = Array.length demands;
    dems = Array.copy demands;
    weight = [||];
    floor = [||];
    dcap = [||];
    off = [||];
    ures = [||];
    ucoef = [||];
    inc_off = [||];
    inc_d = [||];
    inc_coef = [||];
    seeded = false;
    structural = true;
    floor_load = [||];
    scale = [||];
    seed_rate = [||];
    active0 = [||];
    load0 = [||];
    speed0 = [||];
    dirty_dem = U.Vec.create ();
    dirty_cap = U.Vec.create ();
    aff_res = U.Vec.create ();
    aff_dem = U.Vec.create ();
    dd_res = U.Vec.create ();
    gmark_dem = [||];
    gmark_res = [||];
    mark_gen = 0;
    rates = [||];
    wload = [||];
    wspeed = [||];
    tau_r = [||];
    version = [||];
    wsat = [||];
    wactive = [||];
    events = U.Heap.create ();
    clean = false;
    c_solves = 0;
    c_full = 0;
    c_incremental = 0;
    c_noop = 0;
  }

let set_demand st i d =
  if i < 0 || i >= st.n then invalidf "Fairshare.set_demand: index %d out of range" i;
  check_demand ~nr:st.nr i d;
  let old = st.dems.(i) in
  if old != d then
    if not (usage_eq old.usage d.usage) then begin
      st.dems.(i) <- d;
      st.structural <- true;
      st.clean <- false
    end
    else begin
      let changed =
        not (feq old.weight d.weight && feq old.floor d.floor && feq old.cap d.cap)
      in
      st.dems.(i) <- d;
      if changed then begin
        st.clean <- false;
        if st.seeded && not st.structural then begin
          st.weight.(i) <- d.weight;
          st.floor.(i) <- d.floor;
          st.dcap.(i) <- d.cap;
          U.Vec.push st.dirty_dem i
        end
      end
    end

let set_capacity st r v =
  if r < 0 || r >= st.nr then invalidf "Fairshare.set_capacity: resource %d out of range" r;
  if not (feq st.capacities.(r) v) then begin
    st.capacities.(r) <- v;
    st.clean <- false;
    if st.seeded && not st.structural then U.Vec.push st.dirty_cap r
  end

let reset st demands =
  if Array.length demands <> st.n then begin
    st.dems <- Array.copy demands;
    st.n <- Array.length demands;
    st.structural <- true;
    st.clean <- false
  end
  else Array.iteri (fun i d -> set_demand st i d) demands

(* Rebuild the CSR usage arrays, parameter mirrors, and the incidence
   index from [st.dems]. Mirrors the cold path's build exactly; local
   arrays are committed only once fully built, so a validation raise
   leaves the state consistent (still structural). *)
let rebuild st =
  let n = st.n and nr = st.nr in
  let off = Array.make (n + 1) 0 in
  Array.iteri (fun i d -> off.(i + 1) <- List.length d.usage) st.dems;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let m = off.(n) in
  let ures = Array.make (max 1 m) 0 in
  let ucoef = Array.make (max 1 m) 0.0 in
  let weight = Array.make (max 1 n) 0.0 in
  let floor_ = Array.make (max 1 n) 0.0 in
  let dcap = Array.make (max 1 n) 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun i d ->
      check_demand ~nr i d;
      weight.(i) <- d.weight;
      floor_.(i) <- d.floor;
      dcap.(i) <- d.cap;
      List.iter
        (fun (r, c) ->
          ures.(!k) <- r;
          ucoef.(!k) <- c;
          incr k)
        d.usage)
    st.dems;
  let inc_off = Array.make (nr + 1) 0 in
  for j = 0 to m - 1 do
    inc_off.(ures.(j) + 1) <- inc_off.(ures.(j) + 1) + 1
  done;
  for r = 0 to nr - 1 do
    inc_off.(r + 1) <- inc_off.(r + 1) + inc_off.(r)
  done;
  let inc_d = Array.make (max 1 m) 0 in
  let inc_coef = Array.make (max 1 m) 0.0 in
  let cursor = Array.copy inc_off in
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      let r = ures.(j) in
      inc_d.(cursor.(r)) <- i;
      inc_coef.(cursor.(r)) <- ucoef.(j);
      cursor.(r) <- cursor.(r) + 1
    done
  done;
  st.off <- off;
  st.ures <- ures;
  st.ucoef <- ucoef;
  st.weight <- weight;
  st.floor <- floor_;
  st.dcap <- dcap;
  st.inc_off <- inc_off;
  st.inc_d <- inc_d;
  st.inc_coef <- inc_coef;
  st.floor_load <- Array.make nr 0.0;
  st.scale <- Array.make nr 1.0;
  st.seed_rate <- Array.make (max 1 n) 0.0;
  st.active0 <- Array.make (max 1 n) false;
  st.load0 <- Array.make nr 0.0;
  st.speed0 <- Array.make nr 0.0;
  st.rates <- Array.make (max 1 n) 0.0;
  st.wload <- Array.make nr 0.0;
  st.wspeed <- Array.make nr 0.0;
  st.tau_r <- Array.make nr 0.0;
  st.version <- Array.make nr 0;
  st.wsat <- Array.make nr false;
  st.wactive <- Array.make (max 1 n) false;
  st.gmark_dem <- Array.make (max 1 n) 0;
  st.gmark_res <- Array.make nr 0;
  U.Vec.clear st.dirty_dem;
  U.Vec.clear st.dirty_cap;
  st.seeded <- false;
  st.structural <- false

(* Full seed-phase pass, demand-major, in exactly the cold path's
   order of float operations. *)
let full_seed st =
  let n = st.n and nr = st.nr in
  let off = st.off and ures = st.ures and ucoef = st.ucoef in
  let sr = st.seed_rate in
  for i = 0 to n - 1 do
    sr.(i) <- Float.min st.floor.(i) st.dcap.(i)
  done;
  let fl = st.floor_load in
  Array.fill fl 0 nr 0.0;
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      fl.(ures.(j)) <- fl.(ures.(j)) +. (sr.(i) *. ucoef.(j))
    done
  done;
  let any_over = ref false in
  let scale = st.scale in
  for r = 0 to nr - 1 do
    scale.(r) <- 1.0;
    if fl.(r) > st.capacities.(r) then begin
      any_over := true;
      scale.(r) <- (if fl.(r) > 0.0 then st.capacities.(r) /. fl.(r) else 0.0)
    end
  done;
  if !any_over then
    for i = 0 to n - 1 do
      let f = ref 1.0 in
      for j = off.(i) to off.(i + 1) - 1 do
        f := Float.min !f scale.(ures.(j))
      done;
      if !f < 1.0 then sr.(i) <- sr.(i) *. !f
    done;
  let act = st.active0 in
  for i = 0 to n - 1 do
    if off.(i + 1) = off.(i) then begin
      sr.(i) <- st.dcap.(i);
      act.(i) <- false
    end
    else act.(i) <- sr.(i) < st.dcap.(i) -. eps
  done;
  let l0 = st.load0 and s0 = st.speed0 in
  Array.fill l0 0 nr 0.0;
  Array.fill s0 0 nr 0.0;
  for i = 0 to n - 1 do
    for j = off.(i) to off.(i + 1) - 1 do
      let r = ures.(j) in
      l0.(r) <- l0.(r) +. (sr.(i) *. ucoef.(j));
      if act.(i) then s0.(r) <- s0.(r) +. (st.weight.(i) *. ucoef.(j))
    done
  done;
  st.seeded <- true

(* Incremental reseed: re-derive only what a dirty input can reach.
   dirty demand/capacity → floor load and scale of its resources →
   seed rate and active bit of every demand on a rescaled (or dirty)
   resource → initial load/speed of every resource those demands use.
   Per-resource recomputation scans the incidence index, whose order
   matches the cold demand-major accumulation (see the module
   comment), so unchanged inputs reproduce the exact same bits. *)
let incremental_seed st =
  let off = st.off and ures = st.ures in
  let inc_off = st.inc_off and inc_d = st.inc_d and inc_coef = st.inc_coef in
  (* affected resources: rows of dirty demands ∪ capacity-dirty *)
  st.mark_gen <- st.mark_gen + 1;
  let g = st.mark_gen in
  U.Vec.clear st.aff_res;
  let mark_res r =
    if st.gmark_res.(r) <> g then begin
      st.gmark_res.(r) <- g;
      U.Vec.push st.aff_res r
    end
  in
  U.Vec.iter
    (fun i ->
      for j = off.(i) to off.(i + 1) - 1 do
        mark_res ures.(j)
      done)
    st.dirty_dem;
  U.Vec.iter mark_res st.dirty_cap;
  (* floor load + scale of affected resources; a scale change taints
     every demand using that resource *)
  U.Vec.clear st.aff_dem;
  let mark_dem i =
    if st.gmark_dem.(i) <> g then begin
      st.gmark_dem.(i) <- g;
      U.Vec.push st.aff_dem i
    end
  in
  U.Vec.iter
    (fun r ->
      let acc = ref 0.0 in
      for jj = inc_off.(r) to inc_off.(r + 1) - 1 do
        let i = inc_d.(jj) in
        acc := !acc +. (Float.min st.floor.(i) st.dcap.(i) *. inc_coef.(jj))
      done;
      st.floor_load.(r) <- !acc;
      let fl = !acc in
      let ns =
        if fl > st.capacities.(r) then
          if fl > 0.0 then st.capacities.(r) /. fl else 0.0
        else 1.0
      in
      if not (feq ns st.scale.(r)) then begin
        st.scale.(r) <- ns;
        for jj = inc_off.(r) to inc_off.(r + 1) - 1 do
          mark_dem inc_d.(jj)
        done
      end)
    st.aff_res;
  U.Vec.iter mark_dem st.dirty_dem;
  (* seed rate + active bit of affected demands; their rows need
     their initial load/speed re-accumulated (a weight change moves
     speed even when the seed rate is unchanged, so mark rows
     unconditionally) *)
  st.mark_gen <- st.mark_gen + 1;
  let g2 = st.mark_gen in
  U.Vec.clear st.dd_res;
  U.Vec.iter
    (fun i ->
      let s =
        if off.(i + 1) = off.(i) then st.dcap.(i)
        else begin
          let s = ref (Float.min st.floor.(i) st.dcap.(i)) in
          let f = ref 1.0 in
          for j = off.(i) to off.(i + 1) - 1 do
            f := Float.min !f st.scale.(ures.(j))
          done;
          if !f < 1.0 then s := !s *. !f;
          !s
        end
      in
      st.seed_rate.(i) <- s;
      st.active0.(i) <- off.(i + 1) <> off.(i) && s < st.dcap.(i) -. eps;
      for j = off.(i) to off.(i + 1) - 1 do
        let r = ures.(j) in
        if st.gmark_res.(r) <> g2 then begin
          st.gmark_res.(r) <- g2;
          U.Vec.push st.dd_res r
        end
      done)
    st.aff_dem;
  U.Vec.iter
    (fun r ->
      let l = ref 0.0 and sp = ref 0.0 in
      for jj = inc_off.(r) to inc_off.(r + 1) - 1 do
        let i = inc_d.(jj) in
        l := !l +. (st.seed_rate.(i) *. inc_coef.(jj));
        if st.active0.(i) then sp := !sp +. (st.weight.(i) *. inc_coef.(jj))
      done;
      st.load0.(r) <- !l;
      st.speed0.(r) <- !sp)
    st.dd_res

(* The τ-sweep of the cold path, verbatim, run over the working
   copies of the persistent seed arrays. *)
let sweep st =
  let n = st.n and nr = st.nr in
  let off = st.off and ures = st.ures and ucoef = st.ucoef in
  let inc_off = st.inc_off and inc_d = st.inc_d in
  let weight = st.weight and cap = st.dcap in
  let capacities = st.capacities in
  let rates = st.rates in
  let load = st.wload and speed = st.wspeed in
  let tau_r = st.tau_r and version = st.version in
  let saturated = st.wsat and active = st.wactive in
  Array.blit st.seed_rate 0 rates 0 n;
  Array.blit st.load0 0 load 0 nr;
  Array.blit st.speed0 0 speed 0 nr;
  Array.fill tau_r 0 nr 0.0;
  Array.fill version 0 nr 0;
  Array.fill saturated 0 nr false;
  Array.blit st.active0 0 active 0 n;
  let start_rate = st.seed_rate in
  let tau = ref 0.0 in
  let events = st.events in
  U.Heap.clear events;
  let push_sat r =
    if (not saturated.(r)) && speed.(r) > eps then begin
      let residual = capacities.(r) -. load.(r) in
      let at = if residual <= 0.0 then !tau else tau_r.(r) +. (residual /. speed.(r)) in
      U.Heap.push events (Float.max at !tau) (Sat (r, version.(r)))
    end
  in
  let touch r at =
    if at > tau_r.(r) then begin
      load.(r) <- load.(r) +. (speed.(r) *. (at -. tau_r.(r)));
      tau_r.(r) <- at
    end
  in
  let freeze i at =
    if active.(i) then begin
      active.(i) <- false;
      rates.(i) <- Float.min cap.(i) (start_rate.(i) +. (weight.(i) *. at));
      for j = off.(i) to off.(i + 1) - 1 do
        let r = ures.(j) in
        touch r at;
        speed.(r) <- speed.(r) -. (weight.(i) *. ucoef.(j));
        version.(r) <- version.(r) + 1
      done
    end
  in
  for i = 0 to n - 1 do
    if active.(i) && cap.(i) < infinity then
      U.Heap.push events ((cap.(i) -. rates.(i)) /. weight.(i)) (Cap i)
  done;
  for r = 0 to nr - 1 do
    push_sat r
  done;
  let continue = ref true in
  while !continue do
    match U.Heap.pop events with
    | None -> continue := false
    | Some (at, Cap i) ->
      if active.(i) then begin
        tau := Float.max !tau at;
        freeze i !tau
      end
    | Some (at, Sat (r, v)) ->
      if not saturated.(r) then begin
        if v = version.(r) then begin
          tau := Float.max !tau at;
          saturated.(r) <- true;
          touch r !tau;
          for jj = inc_off.(r) to inc_off.(r + 1) - 1 do
            let i = inc_d.(jj) in
            if active.(i) then freeze i !tau
          done
        end
        else push_sat r
      end
  done;
  for i = 0 to n - 1 do
    if active.(i) then begin
      active.(i) <- false;
      rates.(i) <- Float.min cap.(i) (start_rate.(i) +. (weight.(i) *. !tau))
    end
  done

let allocate_warm st =
  st.c_solves <- st.c_solves + 1;
  if st.clean then begin
    st.c_noop <- st.c_noop + 1;
    Array.sub st.rates 0 st.n
  end
  else begin
    if st.structural then begin
      rebuild st;
      full_seed st;
      st.c_full <- st.c_full + 1
    end
    else if not st.seeded then begin
      full_seed st;
      st.c_full <- st.c_full + 1
    end
    else begin
      incremental_seed st;
      st.c_incremental <- st.c_incremental + 1
    end;
    U.Vec.clear st.dirty_dem;
    U.Vec.clear st.dirty_cap;
    sweep st;
    st.clean <- true;
    Array.sub st.rates 0 st.n
  end
