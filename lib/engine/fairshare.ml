type demand = {
  weight : float;
  floor : float;
  cap : float;
  usage : (int * float) list;
}

let eps = 1e-9

let allocate ~capacities demands =
  let n = Array.length demands in
  let nr = Array.length capacities in
  Array.iter
    (fun d ->
      assert (d.weight > 0.0);
      assert (d.floor >= 0.0);
      assert (d.cap >= 0.0);
      List.iter (fun (r, c) -> assert (r >= 0 && r < nr && c > 0.0)) d.usage)
    demands;
  let rates = Array.map (fun d -> Float.min d.floor d.cap) demands in
  (* Floor feasibility. Each over-committed resource r gets a scale
     s_r = cap_r / load_r < 1; a demand's floor is scaled by the worst
     s_r among the resources it uses. This keeps infeasibility local: a
     dead link only shrinks the guarantees of the flows crossing it. *)
  let load = Array.make nr 0.0 in
  Array.iteri
    (fun i d -> List.iter (fun (r, c) -> load.(r) <- load.(r) +. (rates.(i) *. c)) d.usage)
    demands;
  let scale = Array.make nr 1.0 in
  for r = 0 to nr - 1 do
    if load.(r) > capacities.(r) then
      scale.(r) <- (if load.(r) > 0.0 then capacities.(r) /. load.(r) else 0.0)
  done;
  Array.iteri
    (fun i d ->
      let f = List.fold_left (fun acc (r, _) -> Float.min acc scale.(r)) 1.0 d.usage in
      if f < 1.0 then rates.(i) <- rates.(i) *. f)
    demands;
  (* Progressive filling from the floors. Demands with no usage are not
     resource-constrained: they simply get their cap. *)
  let active = Array.map (fun d -> d.usage <> []) demands in
  Array.iteri (fun i d -> if d.usage = [] then rates.(i) <- d.cap) demands;
  Array.iteri (fun i d -> if rates.(i) >= d.cap -. eps then active.(i) <- false) demands;
  (* Only resources some demand actually uses can ever saturate; on a
     large host most links are idle, so iterate over the used set. *)
  let used_resources =
    let seen = Array.make nr false in
    let out = ref [] in
    Array.iter
      (fun d ->
        List.iter
          (fun (r, _) ->
            if not seen.(r) then begin
              seen.(r) <- true;
              out := r :: !out
            end)
          d.usage)
      demands;
    !out
  in
  let saturated = Array.make nr false in
  (* incremental per-resource load and per-resource active growth speed *)
  let load = Array.make nr 0.0 in
  let speed = Array.make nr 0.0 in
  Array.iteri
    (fun i d ->
      List.iter
        (fun (r, c) ->
          load.(r) <- load.(r) +. (rates.(i) *. c);
          if active.(i) then speed.(r) <- speed.(r) +. (d.weight *. c))
        d.usage)
    demands;
  let deactivate i =
    if active.(i) then begin
      active.(i) <- false;
      List.iter
        (fun (r, c) -> speed.(r) <- speed.(r) -. (demands.(i).weight *. c))
        demands.(i).usage
    end
  in
  let continue = ref true in
  let guard = ref (n + nr + 2) in
  while !continue && !guard > 0 do
    decr guard;
    let any_active = Array.exists Fun.id active in
    if not any_active then continue := false
    else begin
      (* time to saturate each used resource *)
      let dt = ref infinity in
      List.iter
        (fun r ->
          if (not saturated.(r)) && speed.(r) > eps then begin
            let res = capacities.(r) -. load.(r) in
            if res <= eps then dt := 0.0 else dt := Float.min !dt (res /. speed.(r))
          end)
        used_resources;
      (* time for each active demand to hit its cap *)
      Array.iteri
        (fun i d ->
          if active.(i) && d.cap < infinity then
            dt := Float.min !dt ((d.cap -. rates.(i)) /. d.weight))
        demands;
      if !dt = infinity then begin
        (* nothing constrains the remaining demands (cannot happen with
           finite capacities on every used resource); freeze defensively *)
        Array.iteri (fun i a -> if a then deactivate i) active;
        continue := false
      end
      else begin
        let dt = Float.max !dt 0.0 in
        Array.iteri
          (fun i d ->
            if active.(i) then begin
              let delta = d.weight *. dt in
              rates.(i) <- rates.(i) +. delta;
              List.iter (fun (r, c) -> load.(r) <- load.(r) +. (delta *. c)) d.usage
            end)
          demands;
        (* freeze capped demands *)
        Array.iteri
          (fun i d ->
            if active.(i) && rates.(i) >= d.cap -. (eps *. Float.max 1.0 d.cap) then begin
              List.iter (fun (r, c) -> load.(r) <- load.(r) +. ((d.cap -. rates.(i)) *. c)) d.usage;
              rates.(i) <- d.cap;
              deactivate i
            end)
          demands;
        (* saturate resources and freeze their demands *)
        List.iter
          (fun r ->
            if
              (not saturated.(r))
              && capacities.(r) -. load.(r) <= eps *. Float.max 1.0 capacities.(r)
            then begin
              saturated.(r) <- true;
              Array.iteri
                (fun i d ->
                  if active.(i) && List.exists (fun (r', _) -> r' = r) d.usage then deactivate i)
                demands
            end)
          used_resources
      end
    end
  done;
  rates

let max_min_fair ~capacities usages =
  let demands =
    Array.map (fun usage -> { weight = 1.0; floor = 0.0; cap = infinity; usage }) usages
  in
  allocate ~capacities demands
