type t = { ddio : Ihnet_topology.Hostconfig.ddio }

let create ddio = { ddio }
let reuse_window = 100_000.0 (* 100 us *)
let enabled t = match t.ddio with Ihnet_topology.Hostconfig.Ddio_off -> false | _ -> true

let capacity_bytes t =
  match t.ddio with
  | Ihnet_topology.Hostconfig.Ddio_off -> 0.0
  | Ihnet_topology.Hostconfig.Ddio_on { io_ways; way_size; _ } ->
    float_of_int io_ways *. way_size

let hit_rate t ~write_rate =
  match t.ddio with
  | Ihnet_topology.Hostconfig.Ddio_off -> 0.0
  | Ihnet_topology.Hostconfig.Ddio_on _ ->
    if write_rate <= 0.0 then 1.0
    else begin
      let needed = write_rate *. (reuse_window /. 1e9) in
      Float.min 1.0 (capacity_bytes t /. needed)
    end

let spill_rate t ~write_rate =
  if write_rate <= 0.0 then 0.0
  else
    match t.ddio with
    | Ihnet_topology.Hostconfig.Ddio_off -> write_rate
    | Ihnet_topology.Hostconfig.Ddio_on _ ->
      let h = hit_rate t ~write_rate in
      (1.0 -. h) *. write_rate *. 2.0
