(** Load-dependent latency model.

    Figure 1's "basic latency" numbers are zero-load figures; under
    congestion each hop adds queueing delay. We use the standard fluid
    approximation: a hop at utilization [u] inflates its base latency by
    [1 + beta · u/(1-u)], capped — the M/M/1-shaped knee that
    measurement studies of PCIe/memory fabrics report (latency roughly
    flat until ~70% load, then a sharp rise). *)

val beta : float
(** Queueing-sensitivity coefficient (0.5). *)

val max_inflation : float
(** Latency inflation ceiling (100×): models bounded on-device queues —
    beyond this, loss/backpressure rather than delay. *)

val hop_latency :
  base:Ihnet_util.Units.ns ->
  utilization:float ->
  ?extra:Ihnet_util.Units.ns ->
  unit ->
  Ihnet_util.Units.ns
(** [hop_latency ~base ~utilization ()] for [utilization] in [\[0,1\]]
    (values out of range are clamped). [extra] is fault-injected added
    delay, applied before inflation (a degraded component is slow even
    when idle). *)

val stalled : Ihnet_util.Units.ns
(** Serialization-time ceiling (10^12 ns = 1000 s): what a fully
    stalled transfer reports instead of [infinity], so fault-degraded
    (zero-rate) links can never inject non-finite durations into
    workload histograms. *)

val serialization : bytes:float -> rate:float -> Ihnet_util.Units.ns
(** Time to push [bytes] at [rate] bytes/s. [infinity] rate gives 0; a
    zero, negative or NaN rate — a link degraded to nothing — gives
    {!stalled} rather than [infinity], and finite results are capped at
    {!stalled}. *)
