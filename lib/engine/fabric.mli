(** The fabric runtime: topology + simulator + models, wired together.

    The fabric owns the set of active flows and, whenever that set (or
    a limit, fault or configuration) changes, recomputes flow rates
    with {!Fairshare} over the per-(link, direction) capacities.
    Reallocation is {e contention-scoped}: only the connected
    component(s) of flows sharing a resource with the change are
    recomputed — every other flow keeps its rate and its pending
    completion event — so an event costs O(affected), not O(all flows)
    (see "Reallocation cost model" in doc/MODEL.md). Between changes,
    rates are constant and flow progress is integrated lazily, so
    simulated time advances in O(events), not O(time). Completions are
    scheduled from a min-heap of predicted completion times rather
    than a scan over the flow table.

    DDIO coupling: flows marked [llc_target] terminate at their CPU
    socket; the per-socket {!Cache} model converts the aggregate DDIO
    write rate into induced memory-bus traffic (write-back + re-read on
    miss), which competes with explicit flows on the socket's memory
    links. The rate/spill fixed point is resolved by a short damped
    iteration at each reallocation; for contention scoping, every
    [llc_target] flow on a socket is coupled into one component with
    the socket's memory links.

    This module also exports the raw byte counters and utilizations
    that the monitoring layer samples — deliberately: the fabric is
    "the hardware", and {!Ihnet_monitor} may only observe it through
    these counters (at a configured fidelity), never through the
    internal flow table. *)

type t

val create : ?seed:int -> ?domains:int -> ?warm:bool -> Sim.t -> Ihnet_topology.Topology.t -> t
(** [domains] sets the width of the reallocation pool (default:
    [IHNET_DOMAINS] from the environment, else 1). At 1, reallocation
    is sequential on the calling domain; at [n > 1], the dirty
    connected components of a reallocation are computed in parallel on
    a shared process-wide pool of [n] domains and committed in
    canonical component order, so the simulation is bit-identical to a
    sequential run (see "Parallel reallocation" in doc/MODEL.md). RNG
    draws and all state mutation stay on the calling domain.

    [warm] enables warm-started arbitration (default: [IHNET_WARM]
    from the environment, off only for ["0"|"off"|"false"]): component
    results are memoized against their exact inputs and the fair-share
    solver warm-starts across the DDIO spill iterations. Rates, counters,
    digests and replay are bit-identical warm or cold (MODEL.md §13);
    only the time spent computing them changes.
    @raise Invalid_argument when [domains < 1]. *)

val domains : t -> int
(** The pool width this fabric was created with. *)

val sim : t -> Sim.t
val topology : t -> Ihnet_topology.Topology.t
val rng : t -> Ihnet_util.Rng.t
val now : t -> Ihnet_util.Units.ns

(** {1 Flows} *)

val start_flow :
  t ->
  tenant:int ->
  ?cls:Flow.cls ->
  ?weight:float ->
  ?floor:float ->
  ?cap:float ->
  ?demand:float ->
  ?payload_bytes:int ->
  ?working_set_pages:int ->
  ?llc_target:bool ->
  ?on_complete:(Flow.t -> unit) ->
  path:Ihnet_topology.Path.t ->
  size:Flow.size ->
  unit ->
  Flow.t
(** Starts a flow and triggers reallocation. [payload_bytes] defaults
    to the host's PCIe MaxPayloadSize; [working_set_pages] (default
    128) drives the IOMMU model. An [llc_target] flow must have a CPU
    socket as one endpoint of its path.
    @raise Invalid_argument on a malformed path or bad parameters. *)

val stop_flow : t -> Flow.t -> unit
(** Idempotent; completed flows are ignored. *)

val set_flow_limits :
  t -> Flow.t -> ?weight:float -> ?floor:float -> ?cap:float -> unit -> unit
(** The arbiter's knob: update guarantees/limits and reallocate. *)

val active_flows : t -> Flow.t list
val flow_count : t -> int

val refresh : t -> unit
(** Integrate flow progress and byte counters up to the current
    simulated time. Counter queries do this implicitly; call it before
    reading [Flow.transferred]/[Flow.remaining] directly. *)

val batch : t -> (unit -> unit) -> unit
(** [batch t f] runs [f] with rate reallocation deferred, then
    reallocates once. Used by the arbiter to push many limit updates as
    a single enforcement action. Nested batches are flattened. *)

(** {1 Event subscription}

    The "software module interception" data source of §3.1-Q1: hooks on
    the I/O control path. Unlike the counters these see every flow's
    identity and boundaries (that is their fidelity advantage), but only
    software-initiated events — induced DDIO traffic and silent faults
    never surface here. *)

type event =
  | Flow_started of Flow.t
  | Flow_completed of Flow.t
  | Flow_stopped of Flow.t
  | Fault_injected of Ihnet_topology.Link.id * Fault.link_fault
      (** Only {e operator-injected} faults are announced (the operator
          knows what they injected); genuinely silent degradations fire
          no event — detecting those is the monitor's job. *)
  | Fault_cleared of Ihnet_topology.Link.id
  | All_faults_cleared
      (** {!clear_all_faults} ran — one reallocation regardless of how
          many links were faulted, so it must be replayed as one
          command, not per-link clears. *)
  | Limits_changed of Flow.t
      (** A flow's weight/floor/cap changed via {!set_flow_limits}. *)
  | Config_changed of Ihnet_topology.Hostconfig.t
      (** Host configuration swapped via {!set_config}. *)
  | Reallocated of int
      (** A reallocation committed; the payload is the new epoch. Fired
          after rates, loads and completion events are consistent, so
          listeners may read any telemetry accessor. *)
  | Batch_started
  | Batch_ended  (** Outermost {!batch} boundaries (nested are flattened). *)
  | Synced
      (** A public counter read advanced the lazy byte integration to
          the current time. Replay re-applies these as {!refresh} so
          integration intervals — and hence float rounding — match the
          recorded run exactly. *)
  | Sensor_fault_injected of Sensorfault.target * Sensorfault.sensor_fault
      (** A telemetry-plane fault was installed. Like link faults these
          are operator actions, so they are announced (and recorded);
          unlike link faults they never reallocate — only what the
          monitor {e reads} changes, never what the fabric {e does}. *)
  | Sensor_fault_cleared of Sensorfault.target

val subscribe : t -> (event -> unit) -> unit
(** Register a listener for all subsequent events. Listeners run
    synchronously in registration order; there is no unsubscribe (wire
    monitors at host setup). *)

val transfer_time :
  t -> path:Ihnet_topology.Path.t -> bytes:float -> Ihnet_util.Units.ns option
(** One-shot what-if: time a [bytes]-sized transfer would take at the
    rate a new flow would currently receive on [path] (without actually
    starting it); [None] if it would get no bandwidth. *)

(** {1 Telemetry surface (what real hardware counters expose)} *)

val effective_capacity : t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> float
(** Link capacity after fault degradation, bytes/s. *)

val link_rate : t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> float
(** Current aggregate allocated rate on the link direction (including
    induced DDIO traffic and protocol overhead), bytes/s. *)

val link_utilization : t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> float
(** [link_rate / effective_capacity], in [\[0,1\]]; 1.0 for a down link
    carrying demand. *)

val link_bytes : t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> float
(** Cumulative bytes moved across the link direction. *)

val tenant_link_bytes :
  t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> tenant:int -> float
(** Per-tenant cumulative bytes (the fine-grained counter real hardware
    mostly lacks — §3.1-Q1; the monitor decides whether it may read
    this). *)

val cls_link_bytes :
  t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> cls:Flow.cls -> float

val tenant_bytes : t -> tenant:int -> float
(** Total bytes moved by a tenant across all links. *)

(** {1 Latency} *)

val path_latency :
  t -> ?payload_bytes:int -> ?working_set_pages:int -> Ihnet_topology.Path.t ->
  Ihnet_util.Units.ns
(** Expected one-way latency of a message on [path] now: per-hop base
    latency inflated by current utilization (plus fault extra delay),
    plus IOMMU translation cost when the path crosses a root complex,
    plus serialization of [payload_bytes] (default 0) at the path
    bottleneck's residual rate. *)

val flow_path_latency : t -> ?payload_bytes:int -> Flow.t -> Ihnet_util.Units.ns
(** Like {!path_latency} for the path of a specific {e live} flow, but
    honouring WFQ delay isolation: a flow with a guaranteed floor is
    served at that rate on every hop, so its queueing delay follows its
    own utilization of the guarantee ([rate/floor]) rather than the
    aggregate link utilization — never worse than the unmanaged
    estimate. This is how the arbiter's bandwidth guarantees also bound
    latency. *)

val probe_loss_prob : t -> Ihnet_topology.Path.t -> float
(** Probability that a probe on [path] is lost to injected faults. *)

(** {1 Always-on latency sketches}

    The continuous percentile plane of §3.1: per-(link, direction)
    {!Ihnet_util.Sketch}es fed with the loaded hop latency of every
    resource a reallocation epoch recommits, plus one end-to-end sketch
    fed with {!flow_path_latency} at each flow completion. Dormant by
    default and free when dormant; when enabled, recording is a pure
    observation of committed state — rates, events, RNG draws and
    recorder digests are byte-identical either way (the [sketch-idle]
    bench subject asserts this). *)

val enable_latency_sketches : t -> unit
(** Turn the latency plane on (normally via
    [Host.wiring.latency_sketches]). Idempotent; there is no off switch
    — the plane is append-only observation state. *)

val latency_sketches_enabled : t -> bool

val link_latency_sketch :
  t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> Ihnet_util.Sketch.t option
(** The live per-resource sketch ([None] when the plane is dormant).
    Callers must treat it as read-only; use {!Ihnet_util.Sketch.copy}
    before merging elsewhere. *)

val flow_latency_sketch : t -> Ihnet_util.Sketch.t option
(** End-to-end latency of completed flows ([None] when dormant). *)

(** {1 DDIO observability} *)

val ddio_write_rate : t -> socket:int -> float
(** Aggregate DDIO (LLC-targeted) write rate into the socket. *)

val ddio_hit_rate : t -> socket:int -> float
val ddio_spill_rate : t -> socket:int -> float
(** Induced memory-bus traffic (bytes/s, both directions combined). *)

(** {1 Faults and configuration} *)

val inject_fault : t -> Ihnet_topology.Link.id -> Fault.link_fault -> unit
val clear_fault : t -> Ihnet_topology.Link.id -> unit
val clear_all_faults : t -> unit
val fault_of : t -> Ihnet_topology.Link.id -> Fault.link_fault

val inject_sensor_fault : t -> Sensorfault.target -> Sensorfault.sensor_fault -> unit
(** Install a telemetry-plane fault (see {!Sensorfault}). Emits
    {!Sensor_fault_injected} but triggers {e no} reallocation: sensor
    faults corrupt readings, not rates, so they are epoch-neutral for
    record/replay digests. *)

val clear_sensor_fault : t -> Sensorfault.target -> unit
val clear_all_sensor_faults : t -> unit

val sensor_fault_of : t -> Sensorfault.target -> Sensorfault.sensor_fault
(** {!Sensorfault.none} when the target is healthy. *)

val sensor_faults : t -> (Sensorfault.target * Sensorfault.sensor_fault) list

val device_sensor_fault : t -> Ihnet_topology.Device.id -> Sensorfault.sensor_fault

val link_sensor_fault : t -> Ihnet_topology.Link.id -> Sensorfault.sensor_fault
(** Merged sensor fault of the link's two endpoint devices — what a
    hardware counter attached to that link suffers. *)

val flap_link :
  t -> Ihnet_topology.Link.id -> Fault.link_fault -> period:Ihnet_util.Units.ns ->
  toggles:int -> unit
(** Oscillate a link: inject [fault] now, then alternate clear/inject
    every [period] until [toggles] transitions have fired (an odd count
    leaves the fault installed, an even count leaves the link clean).
    Each transition emits its {!event}, so listeners — notably the
    remediation supervisor's flap damping — see every toggle. *)

val fail_device : t -> Ihnet_topology.Device.id -> unit
(** Take a device down: every incident link goes to {!Fault.down} in
    one reallocation (flows through it starve; probes are lost). *)

val revive_device : t -> Ihnet_topology.Device.id -> unit
(** Clear the faults {!fail_device} installed. *)

val set_config : t -> Ihnet_topology.Hostconfig.t -> unit
(** Swap the host configuration (e.g. toggle DDIO) and reallocate. *)

val reallocations : t -> int
(** Number of reallocation passes so far (cost model for §3.2-Q3). *)

(** {1 Warm-start observability} *)

val warm_enabled : t -> bool
(** Whether this fabric memoizes component results (see {!create}). *)

val warm_hits : t -> int
(** Components replayed from the memo instead of being recomputed. *)

val warm_misses : t -> int
(** Components that had to be computed. Both counters stay 0 when
    warm-starting is disabled. Tests use hits/misses to assert that
    fault, limit and config changes actually invalidate the memo. *)

(** {1 Out-of-band scan exposition}

    The boundary-scan (JTAG-style) view of the fabric, consumed by
    {!Ihnet_record.Scanport}. Every [scan_*] accessor is a {e pure
    read} of committed state: unlike the telemetry accessors above
    ({!link_bytes} &c., which run the lazy byte integration and may
    emit [Synced]), a scan never advances [last_update], never emits an
    event, never draws from the RNG, never bumps completion-heap
    generations and never touches the warm solver — so a run scanned at
    every epoch stays bit-identical to a bare run. Mutable arrays are
    returned as copies. *)

val scan_epoch : t -> int
(** Current reallocation epoch (what {!event.Reallocated} carries). *)

val scan_clock : t -> Ihnet_util.Units.ns
(** Simulated now — same value as {!now}, listed here for the scan
    chain's completeness. *)

val scan_last_update : t -> Ihnet_util.Units.ns
(** Time up to which the lazy byte integration has run; byte counters
    below are exact as of this instant. *)

val scan_next_flow_id : t -> int
val scan_rng_state : t -> int64
(** Raw SplitMix64 state, read without advancing the stream. *)

val scan_cache_gen : t -> int
(** Cache-config generation (bumped by {!set_config}). *)

val scan_resources : t -> int
(** Real (link, dir) resource count — the width of the arrays below.
    Resource [r] is link [r/2], forward when [r] is even. *)

val scan_load : t -> float array
(** Per-resource allocated rate (B/s), as committed by the last
    reallocation. *)

val scan_flows_on : t -> int array
(** Per-resource active flow count. *)

val scan_link_bytes : t -> float array
(** Per-resource cumulative bytes as of {!scan_last_update} — the raw
    counters behind {!link_bytes}, without the sync that accessor
    performs. *)

val scan_caps : t -> float array
(** Cached effective capacities (fault-adjusted). *)

val scan_ddio : t -> float array * float array * float array * float array
(** Per-socket [(write, hit, spill_wb, spill_rr)] DDIO state. *)

val scan_tenant_rows : t -> (int * float array) list
(** Per-tenant per-resource cumulative bytes, tenant id ascending
    (tenant 0 is the induced-traffic row). *)

val scan_cls_rows : t -> float array array
(** Per-class per-resource cumulative bytes, class index order
    (payload, monitoring, heartbeat, probe, induced). *)

val scan_flows : t -> Flow.t list
(** Active flows, id ascending — {!active_flows} is already pure. *)

val scan_completion_heap : t -> (Ihnet_util.Units.ns * int * int * bool) list
(** Completion-heap contents in pop order:
    [(due_at, flow_id, stamp, live)]. Lazily-deleted entries (stale
    stamp or stopped flow) appear with [live = false] — the scan sees
    the heap exactly as stored, stale residue included. *)

val scan_memo_keys : t -> (int * int * int) list
(** Warm-start memo occupancy: [(bucket_key, entries, last_hit_epoch)]
    per memo, sorted. Empty when warm-starting is off — a
    microarchitectural register, legitimately different warm vs cold. *)

val scan_solver_stats : t -> Fairshare.stats
(** Cumulative warm-solver work across all component computes (zeros
    when cold — also microarchitectural). *)

val step_epoch : t -> bool
(** Single-step the simulation by one reallocation epoch: execute
    queued events until the epoch counter advances, then stop at that
    boundary. [false] when the event queue drained without another
    reallocation. The scan port's freeze/step hook. *)
