(** DDIO / last-level-cache occupancy model (per socket).

    With DDIO on, inbound DMA writes allocate into a small set of
    dedicated LLC ways. §2 of the paper: two high-throughput devices
    writing concurrently thrash those ways — "data are evicted from the
    cache before being consumed", converting I/O writes into extra
    memory-bus traffic (eviction write-back plus the consumer's re-read
    from DRAM).

    Model: data written at aggregate rate [r] and consumed after a reuse
    window [d] needs occupancy [r·d]; the I/O ways hold [w] bytes. The
    hit fraction is [min 1 (w / (r·d))] and every missed byte crosses
    the memory bus twice. This is the standard fluid working-set
    approximation of Lamda [37] / Farshin et al. [17]. *)

type t

val create : Ihnet_topology.Hostconfig.ddio -> t

val reuse_window : Ihnet_util.Units.ns
(** Assumed producer→consumer delay for DMA'd data (100 µs: a busy
    application polls its rings within tens of microseconds).
    Calibrated so a single ~28 GB/s DDIO writer just fits the default
    2-way/3 MiB I/O partition while two concurrent writers thrash it —
    the §2 scenario. *)

val enabled : t -> bool

val capacity_bytes : t -> float
(** Bytes the I/O ways hold; 0 when DDIO is off. *)

val hit_rate : t -> write_rate:float -> float
(** [hit_rate t ~write_rate] for the aggregate DDIO write rate into
    this socket, in [\[0,1\]]. 0 when DDIO is off (every I/O byte goes
    to DRAM — but without DDIO it goes there {e once}, see
    {!spill_amplification}). *)

val spill_rate : t -> write_rate:float -> float
(** Memory-bus traffic induced by DDIO misses, bytes/s: [(1 − hit) ×
    write_rate × 2] when on (write-back + re-read); [write_rate × 1]
    when off (plain DMA-to-memory, the consumer read then hits the
    LLC by normal allocation). *)
