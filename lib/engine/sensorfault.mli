(** Telemetry-plane fault injection.

    {!Fault} breaks the network; this module breaks the {e eyes}. A
    sensor fault corrupts what the monitoring layer reads — counters,
    sampler series, heartbeat probes — while the fabric underneath
    keeps behaving normally. Injecting one therefore never triggers a
    reallocation and never changes any flow's rate: only the telemetry
    path lies. That separation is what lets the evidence gate be tested
    honestly (a lying sensor must not be distinguishable from a real
    fault by cheating and peeking at the fabric).

    All randomness consumed when applying a fault (sample drops,
    duplications, probe corruption) is drawn from the consumer's own
    seeded RNG stream, so runs remain bit-for-bit deterministic and the
    flight recorder replays them exactly. *)

type target =
  | Device of Ihnet_topology.Device.id
      (** Corrupts hardware counters of links incident to the device
          and heartbeat probes originating or terminating there. *)
  | Series of string
      (** Corrupts one named telemetry series at the sampler
          (e.g. ["link.4.fwd.bytes"]). *)

type sensor_fault = {
  stuck : bool;  (** Counter freezes at its current value. *)
  drift : float;
      (** Multiplicative miscalibration; 1.0 = exact. Values > 1 can
          produce physically impossible readings (more bytes than
          capacity x time), which the range detector catches. *)
  drop_prob : float;  (** Probability a sample is silently dropped. *)
  dup_prob : float;  (** Probability a sample is recorded twice. *)
  skew : Ihnet_util.Units.ns;
      (** Bounded clock skew added to sample timestamps. *)
  probe_loss : float;
      (** Probability a heartbeat probe falsely reports [`Lost]. *)
  probe_slow : float;
      (** Probability a heartbeat probe falsely reports [`Slow]. *)
}

type t

val create : unit -> t
val none : sensor_fault
(** The healthy sensor: no corruption of any kind. *)

val is_none : sensor_fault -> bool

val stuck_at : sensor_fault
val drifting : factor:float -> sensor_fault
val lossy : drop_prob:float -> ?dup_prob:float -> unit -> sensor_fault
val skewed : skew:Ihnet_util.Units.ns -> sensor_fault
val probe_corruption : loss:float -> ?slow:float -> unit -> sensor_fault

val merge : sensor_fault -> sensor_fault -> sensor_fault
(** Combine two faults affecting the same reading (e.g. both endpoint
    devices of a link): stuck if either is stuck, drifts multiply,
    probabilities combine independently, skews add. *)

val inject : t -> target -> sensor_fault -> unit
(** @raise Invalid_argument on out-of-range parameters. *)

val clear : t -> target -> unit
val clear_all : t -> unit
val get : t -> target -> sensor_fault
(** {!none} when no fault is installed on the target. *)

val active : t -> (target * sensor_fault) list
(** Installed faults, deterministically ordered (devices by id, then
    series by name). *)

val count : t -> int

val target_label : target -> string
(** ["device 3"] / ["series link.4.fwd.bytes"] — for logs and CLIs. *)

val describe : sensor_fault -> string
(** Compact human-readable parameter list, e.g.
    ["stuck, drift x1.50, drop 10%"]. *)
