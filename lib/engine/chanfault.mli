(** Control-channel fault injection.

    {!Fault} breaks the network and {!Sensorfault} breaks the eyes;
    this module breaks the {e strings} — the controller↔host control
    channel a fleet controller ({!Ihnet_fleet.Controller}) speaks over.
    A channel fault corrupts message {e delivery}: commands and health
    reports can be lost, delayed, duplicated, or blackholed entirely
    (partition), while both endpoints keep running normally on whatever
    state they last agreed on.

    The module follows {!Sensorfault}'s RNG-only-under-fault
    discipline: {!apply} on a {!none} fault (or on the healthy side of
    a partial fault) draws {e nothing} from the supplied RNG, so a
    fault-free fleet run is bit-identical to one with no channel model
    at all — the fleet-idle bench subject asserts it mechanically.
    Delivery delay is counted in controller {e rounds}, the fleet
    control plane's clock, not simulated nanoseconds: the channel is a
    property of the control plane, not of the intra-host fabric. *)

type fault = {
  loss : float;  (** Probability a message is silently dropped. *)
  delay_lo : int;
  delay_hi : int;
      (** Extra delivery delay, uniform in [\[delay_lo, delay_hi\]]
          controller rounds (0 = same-round delivery). *)
  dup_prob : float;  (** Probability a message is delivered twice. *)
  partitioned : bool;
      (** Both directions blackholed: nothing gets through until the
          partition heals. Deterministic — no RNG consumed. *)
}

val none : fault
(** The healthy channel: immediate, exactly-once delivery. *)

val is_none : fault -> bool

val lossy : loss:float -> ?dup_prob:float -> unit -> fault
val delayed : lo:int -> hi:int -> fault
val partition : fault

val merge : fault -> fault -> fault
(** Combine two faults on the same channel: loss/dup probabilities
    combine independently, delays add, partition wins. *)

type verdict =
  | Dropped  (** The message never arrives. *)
  | Delivered of { delay : int; copies : int }
      (** Arrives [delay] rounds late, [copies] ∈ {1, 2} times. *)

val apply : Ihnet_util.Rng.t -> fault -> verdict
(** Judge one message. [apply rng none] is [Delivered { delay = 0;
    copies = 1 }] {e without drawing from [rng]} — the discipline that
    keeps fault-free fleet runs bit-identical. A partition returns
    [Dropped] without drawing either (there is nothing probabilistic
    about a cut cable). Under a probabilistic fault the draw order is
    fixed: loss, then delay, then duplication. *)

val describe : fault -> string
(** Compact parameter list, e.g. ["loss 30%, delay 1-3 rounds"]. *)
