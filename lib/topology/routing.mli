(** Path computation over a topology.

    Shortest paths use Dijkstra; alternatives use Yen's k-shortest-paths
    algorithm. The scheduler asks for several candidate "pathways"
    between endpoints and picks by current usage (§3.2,
    "topology-aware resource scheduler"). *)

type weight = [ `Latency | `Hops | `Inverse_capacity ]
(** Edge weight: base latency (default), hop count, or 1/capacity
    (prefers fat pipes). *)

val shortest_path :
  ?weight:weight -> ?avoid:Link.id list -> Topology.t -> Device.id -> Device.id -> Path.t option
(** [shortest_path topo src dst] or [None] when [dst] is unreachable
    (e.g. through [avoid]-induced cuts). A trivial path (empty hops) is
    returned when [src = dst]. *)

val k_shortest_paths :
  ?weight:weight -> k:int -> Topology.t -> Device.id -> Device.id -> Path.t list
(** Up to [k] loop-free paths, best first (Yen). *)

val reachable : Topology.t -> Device.id -> Device.id -> bool

val path_weight : weight -> Path.t -> float
