type id = int

type kind =
  | Inter_socket
  | Intra_socket
  | Memory_channel
  | Pcie of Pcie.t
  | Cxl of Pcie.t
  | Inter_host

type t = {
  id : id;
  kind : kind;
  a : Device.id;
  b : Device.id;
  capacity : Ihnet_util.Units.bytes_per_s;
  base_latency : Ihnet_util.Units.ns;
}

type dir = Fwd | Rev

let figure1_class t =
  match t.kind with
  | Inter_socket -> Some 1
  | Intra_socket | Memory_channel -> Some 2
  | Pcie _ -> Some 3
  | Cxl _ -> None
  | Inter_host -> Some 5

let kind_label = function
  | Inter_socket -> "inter-socket"
  | Intra_socket -> "intra-socket"
  | Memory_channel -> "mem-channel"
  | Pcie p -> "pcie-" ^ Pcie.label p
  | Cxl p -> "cxl-" ^ Pcie.label p
  | Inter_host -> "inter-host"

let opposite = function Fwd -> Rev | Rev -> Fwd

let pp ppf t =
  Format.fprintf ppf "link#%d[%s %d<->%d %a %a]" t.id (kind_label t.kind) t.a t.b
    Ihnet_util.Units.pp_rate t.capacity Ihnet_util.Units.pp_time t.base_latency
