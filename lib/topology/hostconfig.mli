(** Host-wide configuration knobs.

    Figure 1's dashed box lists configurations that "heavily impact the
    performance of intra-host connections": socket interconnect, NUMA,
    IOMMU, DDIO, request/payload size, ordering restrictions, access
    control services (ACS), translation services, interrupt moderation.
    These knobs parameterize the engine's behaviour and are what the
    monitor's misconfiguration detector inspects. *)

type iommu =
  | Iommu_off
  | Iommu_on of {
      iotlb_entries : int;  (** IOTLB capacity (entries). *)
      hit_latency : Ihnet_util.Units.ns;
      miss_penalty : Ihnet_util.Units.ns;  (** Page-table walk cost. *)
    }

type ddio =
  | Ddio_off
  | Ddio_on of {
      llc_ways : int;  (** Total LLC ways. *)
      io_ways : int;  (** Ways I/O writes may allocate into (Intel
                          default: 2 of e.g. 11). *)
      way_size : float;  (** Bytes per way. *)
    }

type t = {
  iommu : iommu;
  ddio : ddio;
  pcie_mps : int;  (** MaxPayloadSize in force on the PCIe fabric,
                       bytes (128/256/512). *)
  relaxed_ordering : bool;
      (** PCIe relaxed ordering; disabled it serializes DMA writes and
          costs throughput on multi-hop paths. *)
  acs : bool;
      (** Access Control Services: when on, peer-to-peer PCIe traffic is
          redirected through the root complex (longer path). *)
  interrupt_moderation : Ihnet_util.Units.ns;
      (** Interrupt coalescing delay added to small-transfer completion
          notification. *)
}

val default : t
(** Cascade-Lake-style defaults: IOMMU on (IOTLB 64 entries, 10/250 ns),
    DDIO on (2 of 11 ways, 1.5 MiB ways), MPS 256, relaxed ordering on,
    ACS off, no interrupt moderation. *)

val validate : t -> (unit, string) result
(** Structural sanity: MPS a power of two in 128–4096, io_ways <=
    llc_ways, positive latencies. The monitor's misconfiguration checks
    go further (see {!Ihnet_monitor.Anomaly}). *)

val pp : Format.formatter -> t -> unit
