(** End-node and fabric devices of the intra-host network.

    The paper names "these fabrics and the end node devices together"
    the intra-host network (§2): CPU sockets, memory controllers and
    DIMMs, the PCIe hierarchy (root complex, root ports, switches), and
    I/O devices (NICs, GPUs, NVMe SSDs, FPGAs, CXL devices). *)

type id = int
(** Dense ids assigned by {!Topology} at insertion. *)

type kind =
  | Cpu_socket of { cores : int }
      (** A CPU package; the hub of its socket's mesh interconnect. *)
  | Memory_controller of { channels : int }
  | Dimm of { channel : int }
  | Root_complex  (** PCIe root complex integrated in a socket. *)
  | Root_port  (** One root port below a root complex. *)
  | Pcie_switch of { ports : int }
  | Nic of { inter_host_gbps : float }
      (** Network adapter; its inter-host port speed is carried here so
          topology builders can attach the matching external link. *)
  | Gpu
  | Nvme_ssd
  | Fpga
  | Cxl_device  (** CXL.mem expander (exposed as remote NUMA memory). *)
  | External_network
      (** The inter-host fabric beyond a NIC — the far endpoint of a
          Figure 1 class (5) link. Lets end-to-end paths traverse all
          five link classes. *)

type t = {
  id : id;
  name : string;  (** Unique human-readable name, e.g. ["nic0"]. *)
  kind : kind;
  socket : int;  (** NUMA socket the device belongs to (0-based). *)
}

val kind_label : kind -> string
(** Short class label, e.g. ["gpu"], ["pcie-switch"]. *)

val is_endpoint : t -> bool
(** True for devices that originate or sink traffic (sockets, DIMMs,
    NICs, GPUs, SSDs, FPGAs, CXL devices); false for pure fabric
    elements (root complex/ports, switches, memory controllers). *)

val is_io_device : t -> bool
(** True for PCIe endpoint I/O devices (NIC, GPU, SSD, FPGA, CXL). *)

val can_transit : t -> bool
(** True for devices traffic can flow {e through}: sockets, memory
    controllers, root complexes/ports, PCIe switches, and NICs (which
    bridge PCIe to the inter-host wire). Leaf endpoints (GPUs, SSDs,
    DIMMs, the external network) terminate paths — a route must never
    use one as an intermediate hop, so intra-host traffic can never
    detour through the external network. *)

val pp : Format.formatter -> t -> unit
