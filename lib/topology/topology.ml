type t = {
  name : string;
  mutable config : Hostconfig.t;
  mutable devices : Device.t array; (* index = id *)
  mutable links : Link.t array; (* index = id *)
  mutable ndevices : int;
  mutable nlinks : int;
  by_name : (string, Device.id) Hashtbl.t;
  mutable adjacency : (Link.t * Device.id) list array; (* device id -> incident *)
}

let create ?(config = Hostconfig.default) ~name () =
  {
    name;
    config;
    devices = [||];
    links = [||];
    ndevices = 0;
    nlinks = 0;
    by_name = Hashtbl.create 64;
    adjacency = [||];
  }

let name t = t.name
let config t = t.config
let set_config t c = t.config <- c

let grow arr len dummy = if len = Array.length arr then
    (let n = Array.make (max 16 (2 * len)) dummy in
     Array.blit arr 0 n 0 len;
     n)
  else arr

let add_device t ~name ~kind ~socket =
  if Hashtbl.mem t.by_name name then invalid_arg ("Topology.add_device: duplicate name " ^ name);
  let d = { Device.id = t.ndevices; name; kind; socket } in
  t.devices <- grow t.devices t.ndevices d;
  t.adjacency <-
    (if t.ndevices = Array.length t.adjacency then (
       let n = Array.make (max 16 (2 * t.ndevices)) [] in
       Array.blit t.adjacency 0 n 0 t.ndevices;
       n)
     else t.adjacency);
  t.devices.(t.ndevices) <- d;
  t.adjacency.(t.ndevices) <- [];
  t.ndevices <- t.ndevices + 1;
  Hashtbl.add t.by_name name d.id;
  d

let device t id =
  if id < 0 || id >= t.ndevices then raise Not_found;
  t.devices.(id)

let device_by_name t n =
  Option.map (fun id -> t.devices.(id)) (Hashtbl.find_opt t.by_name n)

let add_link t ~kind ~a ~b ~capacity ~base_latency =
  if a < 0 || a >= t.ndevices || b < 0 || b >= t.ndevices then
    invalid_arg "Topology.add_link: unknown endpoint";
  if a = b then invalid_arg "Topology.add_link: self-loop";
  if capacity <= 0.0 then invalid_arg "Topology.add_link: capacity must be positive";
  if base_latency < 0.0 then invalid_arg "Topology.add_link: negative latency";
  let l = { Link.id = t.nlinks; kind; a; b; capacity; base_latency } in
  t.links <- grow t.links t.nlinks l;
  t.links.(t.nlinks) <- l;
  t.nlinks <- t.nlinks + 1;
  t.adjacency.(a) <- (l, b) :: t.adjacency.(a);
  t.adjacency.(b) <- (l, a) :: t.adjacency.(b);
  l

let link t id =
  if id < 0 || id >= t.nlinks then raise Not_found;
  t.links.(id)

let device_count t = t.ndevices
let link_count t = t.nlinks
let devices t = Array.to_list (Array.sub t.devices 0 t.ndevices)
let links t = Array.to_list (Array.sub t.links 0 t.nlinks)
let find_devices t pred = List.filter pred (devices t)
let neighbors t id = List.rev t.adjacency.(id)

let links_between t a b =
  List.filter_map (fun (l, peer) -> if peer = b then Some l else None) t.adjacency.(a)

let endpoint_of _t (l : Link.t) = function Link.Fwd -> l.b | Link.Rev -> l.a

(* "Higher" in the PCIe hierarchy: root complex > root port > switch >
   endpoint. Upstream link = the one whose upper endpoint is a root
   port/complex. *)
let pcie_rank t id =
  match (device t id).kind with
  | Device.Root_complex -> 3
  | Device.Root_port -> 2
  | Device.Pcie_switch _ -> 1
  | _ -> 0

let pcie_position t (l : Link.t) =
  match l.kind with
  | Link.Pcie _ ->
    let ra = pcie_rank t l.a and rb = pcie_rank t l.b in
    if max ra rb >= 2 then `Upstream else `Downstream
  | Link.Cxl _ | Link.Inter_socket | Link.Intra_socket | Link.Memory_channel
  | Link.Inter_host ->
    `Not_pcie

let figure1_class t (l : Link.t) =
  match l.kind with
  | Link.Pcie _ -> (
    match pcie_position t l with
    | `Upstream -> Some 3
    | `Downstream -> Some 4
    | `Not_pcie -> assert false)
  | _ -> Link.figure1_class l

let connected t =
  if t.ndevices = 0 then true
  else begin
    let seen = Array.make t.ndevices false in
    let rec dfs id =
      if not seen.(id) then begin
        seen.(id) <- true;
        List.iter (fun (_, peer) -> dfs peer) t.adjacency.(id)
      end
    in
    dfs 0;
    Array.for_all Fun.id (Array.sub seen 0 t.ndevices)
  end

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  if t.ndevices = 0 then err "topology has no devices";
  if t.ndevices > 0 && not (connected t) then err "topology is not connected";
  List.iter
    (fun d ->
      if Device.is_io_device d then begin
        let uplinks =
          List.filter
            (fun (l, _) ->
              match l.Link.kind with Link.Pcie _ | Link.Cxl _ -> true | _ -> false)
            t.adjacency.(d.Device.id)
        in
        if List.length uplinks <> 1 then
          err "i/o device %s must have exactly one PCIe/CXL uplink (has %d)" d.Device.name
            (List.length uplinks)
      end)
    (devices t);
  (match Hostconfig.validate t.config with Ok () -> () | Error e -> err "config: %s" e);
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %S {\n  node [shape=box];\n" t.name);
  List.iter
    (fun (d : Device.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  d%d [label=\"%s\\n%s\"];\n" d.id d.name (Device.kind_label d.kind)))
    (devices t);
  List.iter
    (fun (l : Link.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  d%d -- d%d [label=\"%s\"];\n" l.a l.b (Link.kind_label l.kind)))
    (links t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary t =
  let count_by label_of items =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun x ->
        let k = label_of x in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      items;
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%s=%d" k v :: acc) tbl []
    |> List.sort compare |> String.concat " "
  in
  Printf.sprintf "%s: %d devices (%s), %d links (%s)" t.name t.ndevices
    (count_by (fun (d : Device.t) -> Device.kind_label d.kind) (devices t))
    t.nlinks
    (count_by (fun (l : Link.t) -> Link.kind_label l.kind) (links t))
