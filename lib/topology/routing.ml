type weight = [ `Latency | `Hops | `Inverse_capacity ]

let link_weight w (l : Link.t) =
  match w with
  | `Latency -> l.base_latency +. 1e-9 (* epsilon keeps zero-latency hops counted *)
  | `Hops -> 1.0
  | `Inverse_capacity -> 1.0 /. l.capacity

let path_weight w (p : Path.t) =
  List.fold_left (fun acc (h : Path.hop) -> acc +. link_weight w h.link) 0.0 p.hops

(* Dijkstra with per-device predecessor hop; [avoid] removes links,
   [banned_devices] removes intermediate devices (needed by Yen's spur
   construction). *)
let dijkstra ?(weight = `Latency) ?(avoid = []) ?(banned_devices = []) topo src dst =
  let n = Topology.device_count topo in
  if src < 0 || src >= n || dst < 0 || dst >= n then None
  else if src = dst then Some { Path.src; dst; hops = [] }
  else begin
    let avoid_set = Hashtbl.create 8 in
    List.iter (fun id -> Hashtbl.replace avoid_set id ()) avoid;
    let banned = Array.make n false in
    List.iter (fun d -> if d >= 0 && d < n then banned.(d) <- true) banned_devices;
    let dist = Array.make n infinity in
    let prev : Path.hop option array = Array.make n None in
    let visited = Array.make n false in
    let pq = Ihnet_util.Heap.create () in
    dist.(src) <- 0.0;
    Ihnet_util.Heap.push pq 0.0 src;
    let rec run () =
      match Ihnet_util.Heap.pop pq with
      | None -> ()
      | Some (d, u) ->
        if visited.(u) || d > dist.(u) then run ()
        else if u = dst then () (* settled: the path is final *)
        else begin
          visited.(u) <- true;
          (* endpoint devices terminate paths: only expand from [u] when
             it can carry transit traffic (or is the source itself) *)
          if u = src || Device.can_transit (Topology.device topo u) then
            List.iter
              (fun ((l : Link.t), peer) ->
                if
                  (not (Hashtbl.mem avoid_set l.id))
                  && (not banned.(peer))
                  && not visited.(peer)
                then begin
                  let nd = dist.(u) +. link_weight weight l in
                  if nd < dist.(peer) then begin
                    dist.(peer) <- nd;
                    let dir = if l.a = u then Link.Fwd else Link.Rev in
                    prev.(peer) <- Some { Path.link = l; dir };
                    Ihnet_util.Heap.push pq nd peer
                  end
                end)
              (Topology.neighbors topo u);
          run ()
        end
    in
    run ();
    if dist.(dst) = infinity then None
    else begin
      let rec build acc cur =
        if cur = src then acc
        else
          match prev.(cur) with
          | None -> assert false
          | Some hop ->
            let entered = match hop.dir with Link.Fwd -> hop.link.Link.a | Link.Rev -> hop.link.Link.b in
            build (hop :: acc) entered
      in
      Some { Path.src; dst; hops = build [] dst }
    end
  end

let shortest_path ?weight ?avoid topo src dst = dijkstra ?weight ?avoid topo src dst

let reachable topo src dst = Option.is_some (shortest_path ~weight:`Hops topo src dst)

let path_key (p : Path.t) = List.map (fun (h : Path.hop) -> h.link.Link.id) p.hops

let k_shortest_paths ?(weight = `Latency) ~k topo src dst =
  if k <= 0 then []
  else
    match dijkstra ~weight topo src dst with
    | None -> []
    | Some first ->
      let accepted = ref [ first ] in
      let candidates : (float * Path.t) list ref = ref [] in
      let seen = Hashtbl.create 16 in
      Hashtbl.replace seen (path_key first) ();
      let rec iterate () =
        if List.length !accepted >= k then ()
        else begin
          let prev_path = List.hd (List.rev !accepted) in
          let prev_devs = Array.of_list (Path.devices prev_path) in
          let prev_hops = Array.of_list prev_path.hops in
          (* For each spur node on the previous path, ban the links that
             earlier accepted paths take out of the same root, and the
             root's devices, then find a spur path. *)
          for i = 0 to Array.length prev_hops - 1 do
            let spur_node = prev_devs.(i) in
            let root_hops = Array.to_list (Array.sub prev_hops 0 i) in
            let root_key = List.map (fun (h : Path.hop) -> h.link.Link.id) root_hops in
            let banned_links =
              List.filter_map
                (fun (p : Path.t) ->
                  let hops = Array.of_list p.hops in
                  if Array.length hops > i then begin
                    let pk =
                      List.map
                        (fun (h : Path.hop) -> h.link.Link.id)
                        (Array.to_list (Array.sub hops 0 i))
                    in
                    if pk = root_key then Some hops.(i).link.Link.id else None
                  end
                  else None)
                !accepted
            in
            let banned_devices =
              List.filteri (fun j _ -> j < i) (Array.to_list prev_devs)
            in
            match
              dijkstra ~weight ~avoid:banned_links ~banned_devices topo spur_node dst
            with
            | None -> ()
            | Some spur ->
              let total = { Path.src; dst; hops = root_hops @ spur.hops } in
              let key = path_key total in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                candidates := (path_weight weight total, total) :: !candidates
              end
          done;
          match List.sort (fun (a, _) (b, _) -> compare a b) !candidates with
          | [] -> ()
          | (_, best) :: rest ->
            candidates := rest;
            accepted := !accepted @ [ best ];
            iterate ()
        end
      in
      iterate ();
      !accepted
