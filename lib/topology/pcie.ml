type gen = Gen1 | Gen2 | Gen3 | Gen4 | Gen5 | Gen6
type t = { gen : gen; lanes : int }

let v gen lanes =
  match lanes with
  | 1 | 2 | 4 | 8 | 16 -> { gen; lanes }
  | _ -> invalid_arg "Pcie.v: lanes must be one of 1,2,4,8,16"

let gt_per_s = function
  | Gen1 -> 2.5
  | Gen2 -> 5.0
  | Gen3 -> 8.0
  | Gen4 -> 16.0
  | Gen5 -> 32.0
  | Gen6 -> 64.0

let encoding_efficiency = function
  | Gen1 | Gen2 -> 0.8
  | Gen3 | Gen4 | Gen5 | Gen6 -> 128.0 /. 130.0

(* GT/s is 1e9 transfers/s of one bit per lane. *)
let raw_bandwidth t =
  gt_per_s t.gen *. 1e9 /. 8.0 *. float_of_int t.lanes *. encoding_efficiency t.gen

let tlp_header_bytes = 26

let payload_efficiency ~mps =
  assert (mps > 0);
  float_of_int mps /. float_of_int (mps + tlp_header_bytes)

let effective_bandwidth t ~mps = raw_bandwidth t *. payload_efficiency ~mps

let gen_label = function
  | Gen1 -> "gen1"
  | Gen2 -> "gen2"
  | Gen3 -> "gen3"
  | Gen4 -> "gen4"
  | Gen5 -> "gen5"
  | Gen6 -> "gen6"

let label t = Printf.sprintf "%s x%d" (gen_label t.gen) t.lanes
let pp ppf t = Format.pp_print_string ppf (label t)
