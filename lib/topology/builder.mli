(** Canned server topologies.

    Capacities and basic latencies default to the mid-points of
    Figure 1's ranges for commodity hardware (Intel Cascade Lake / AMD
    EPYC CPUs, PCIe 4.0):

    - inter-socket (1): 40 GB/s per direction, 150 ns;
    - intra-socket mesh (2): 60–100 GB/s segments, 10–40 ns;
    - memory channel (2): 25.6 GB/s (DDR4-3200), 60 ns;
    - PCIe gen4 x16 hop (3)/(4): ≈31.5 GB/s raw, 100 ns;
    - inter-host (5): 25 GB/s (200 GbE), 1.5 µs. *)

val two_socket_server : ?config:Hostconfig.t -> ?pcie_gen:Pcie.gen -> unit -> Topology.t
(** The example topology of Figure 1. Two sockets; per socket: two
    memory controllers with three DDR channels each, one root complex
    with two root ports. Socket 0: rp0.0 → switch ("pciesw0") → nic0 +
    gpu0 + ssd0; rp0.1 → nic1 (direct). Socket 1 mirrors with gpu1,
    ssd1, nic2. All NICs link to the external network device "ext". *)

val dgx_like : ?config:Hostconfig.t -> unit -> Topology.t
(** NVIDIA-DGX-style: 2 sockets × 2 root ports, 4 PCIe switches, each
    switch pairing 2 GPUs with 2 NICs — 8 GPUs + 8 200G NICs, the §1
    example of a server whose intra-host network rivals a rack. *)

val epyc_like : ?config:Hostconfig.t -> unit -> Topology.t
(** AMD-EPYC-style: 2 sockets, 4 memory controllers × 2 channels per
    socket, 4 root ports per socket with direct-attached devices (no
    switches) — a wider, flatter PCIe fabric. *)

val minimal : ?config:Hostconfig.t -> unit -> Topology.t
(** Smallest useful host: one socket, one memory controller/DIMM, one
    root port, one NIC, external network. For unit tests. *)

(** {1 Low-level assembly}

    The pieces the canned builders are made of, exported for {!Spec}
    and for hand-built topologies. All use the Figure 1 default
    capacities/latencies. *)

val add_socket :
  Topology.t -> idx:int -> ?cores:int -> mem_controllers:int -> channels_per_mc:int -> unit ->
  Device.t
(** Socket [socket<idx>] with its memory controllers, channels and
    DIMMs (named [mc<idx>.<m>], [dimm<idx>.<m>.<c>]). No root
    complex. *)

val add_root_complex : Topology.t -> socket:Device.t -> Device.t
(** [rc<idx>] on the socket's mesh. One per socket. *)

val add_root_port : Topology.t -> socket:int -> port:int -> Device.t
(** [rp<socket>.<port>] below [rc<socket>], created idempotently.
    @raise Invalid_argument when the socket has no root complex. *)

val link_inter_socket : Topology.t -> Device.t -> Device.t -> unit

val attach_pcie :
  Topology.t -> parent:Device.id -> child:Device.id -> ?gen:Pcie.gen -> ?lanes:int -> unit -> unit
(** A PCIe link (default gen4 x16) with the standard hop latency. *)

val ensure_ext : Topology.t -> Device.id
(** The external-network device, created on first use. *)

val link_inter_host : Topology.t -> nic:Device.t -> gbps:float -> unit
(** NIC ↔ external network at the port speed. *)

val add_cxl_expander : Topology.t -> name:string -> socket:int -> Device.t
(** Attach a CXL.mem expander below the socket's root complex over a
    CXL gen5 x8 link (32 GB/s, 25 ns). With the default mesh/memory
    latencies this puts device → host-DRAM at 150 ns one-way — the
    figure the paper quotes for CXL ("a latency of ~150ns from device
    to host memory", §2 citing [49]).
    @raise Invalid_argument if the socket has no root complex. *)

val two_socket_with_cxl : ?config:Hostconfig.t -> unit -> Topology.t
(** {!two_socket_server} plus a CXL expander ("cxl0") on socket 0. *)

val scaled :
  ?config:Hostconfig.t ->
  sockets:int ->
  switches_per_socket:int ->
  devices_per_switch:int ->
  unit ->
  Topology.t
(** Parametric family for scaling studies (E10): [sockets] sockets in a
    chain, each with [switches_per_socket] switches below one root
    complex and [devices_per_switch] endpoint devices (NIC/GPU/SSD
    round-robin) per switch. *)
