let example =
  {|host my-server
config ddio=on iommu=on mps=256

socket 0 cores=32 mc=2 channels=3
socket 1 cores=32 mc=2 channels=3

# PCIe: a switch on socket 0's root port 0, devices below it
switch sw0 at 0:0
nic  nic0 on sw0 port=200
gpu  gpu0 on sw0
ssd  ssd0 on sw0

# direct-attached on other root ports
nic  nic1 at 0:1 port=200
gpu  gpu1 at 1:0 gen=5 lanes=16

# a CXL expander below socket 1's root complex
cxl  cxl0 at 1
|}

type state = {
  mutable topo : Topology.t option;
  mutable sockets : Device.t list; (* newest first; chained on creation *)
}

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let topo_of st =
  match st.topo with
  | Some t -> t
  | None ->
    (* a nameless spec still works: default host name *)
    let t = Topology.create ~name:"spec-host" () in
    st.topo <- Some t;
    t

(* key=value arguments after the positional words *)
let parse_args words =
  List.filter_map
    (fun w ->
      match String.index_opt w '=' with
      | Some i -> Some (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
      | None -> None)
    words

let arg args key = List.assoc_opt key args

let int_arg args key ~default =
  match arg args key with
  | None -> default
  | Some v -> (
    match int_of_string_opt v with Some n -> n | None -> bad "%s=%s is not an integer" key v)

let float_arg args key =
  Option.map
    (fun v ->
      match float_of_string_opt v with
      | Some f -> f
      | None -> bad "%s=%s is not a number" key v)
    (arg args key)

let bool_arg args key ~default =
  match arg args key with
  | None -> default
  | Some "on" -> true
  | Some "off" -> false
  | Some v -> bad "%s=%s must be on or off" key v

let gen_arg args ~default =
  match arg args "gen" with
  | None -> default
  | Some "1" -> Pcie.Gen1
  | Some "2" -> Pcie.Gen2
  | Some "3" -> Pcie.Gen3
  | Some "4" -> Pcie.Gen4
  | Some "5" -> Pcie.Gen5
  | Some "6" -> Pcie.Gen6
  | Some v -> bad "gen=%s must be 1..6" v

(* [at S:P] -> root port; [at S] -> socket's root complex; [on NAME] ->
   existing switch. Returns the parent device id and its socket. *)
let parse_attachment st words =
  let topo = topo_of st in
  let rec find = function
    | "at" :: spec :: _ -> (
      match String.split_on_char ':' spec with
      | [ s; p ] -> (
        match (int_of_string_opt s, int_of_string_opt p) with
        | Some s, Some p ->
          let rp = Builder.add_root_port topo ~socket:s ~port:p in
          ((rp : Device.t).Device.id, s)
        | _ -> bad "at %s: expected SOCKET:PORT" spec)
      | [ s ] -> (
        match int_of_string_opt s with
        | Some s -> (
          match Topology.device_by_name topo (Printf.sprintf "rc%d" s) with
          | Some rc -> (rc.Device.id, s)
          | None -> bad "at %s: socket %d has no root complex" spec s)
        | None -> bad "at %s: expected SOCKET or SOCKET:PORT" spec)
      | _ -> bad "at %s: expected SOCKET or SOCKET:PORT" spec)
    | "on" :: name :: _ -> (
      match Topology.device_by_name topo name with
      | Some sw -> (sw.Device.id, sw.Device.socket)
      | None -> bad "on %s: no such switch" name)
    | _ :: rest -> find rest
    | [] -> bad "missing attachment: use 'at SOCKET:PORT', 'at SOCKET' or 'on SWITCH'"
  in
  find words

let handle_config st args =
  let topo = topo_of st in
  let c = Topology.config topo in
  let c =
    if bool_arg args "ddio" ~default:true then c
    else { c with Hostconfig.ddio = Hostconfig.Ddio_off }
  in
  let c =
    if bool_arg args "iommu" ~default:true then c
    else { c with Hostconfig.iommu = Hostconfig.Iommu_off }
  in
  let c = { c with Hostconfig.pcie_mps = int_arg args "mps" ~default:c.Hostconfig.pcie_mps } in
  let c = { c with Hostconfig.acs = bool_arg args "acs" ~default:c.Hostconfig.acs } in
  let c =
    {
      c with
      Hostconfig.relaxed_ordering = bool_arg args "ro" ~default:c.Hostconfig.relaxed_ordering;
    }
  in
  Topology.set_config topo c

let handle_socket st words args =
  let topo = topo_of st in
  let idx =
    match words with
    | i :: _ -> (
      match int_of_string_opt i with Some i -> i | None -> bad "socket %s: expected an index" i)
    | [] -> bad "socket: missing index"
  in
  let sock =
    Builder.add_socket topo ~idx
      ~cores:(int_arg args "cores" ~default:28)
      ~mem_controllers:(int_arg args "mc" ~default:2)
      ~channels_per_mc:(int_arg args "channels" ~default:3)
      ()
  in
  ignore (Builder.add_root_complex topo ~socket:sock);
  (match st.sockets with prev :: _ -> Builder.link_inter_socket topo prev sock | [] -> ());
  st.sockets <- sock :: st.sockets

let handle_switch st words args =
  let topo = topo_of st in
  let name = match words with n :: _ -> n | [] -> bad "switch: missing name" in
  let parent, socket = parse_attachment st words in
  let sw =
    Topology.add_device topo ~name ~kind:(Device.Pcie_switch { ports = 8 }) ~socket
  in
  Builder.attach_pcie topo ~parent ~child:sw.Device.id ~gen:(gen_arg args ~default:Pcie.Gen4)
    ~lanes:(int_arg args "lanes" ~default:16)
    ()

let handle_device st kind_word words args =
  let topo = topo_of st in
  let name = match words with n :: _ -> n | [] -> bad "%s: missing name" kind_word in
  let parent, socket = parse_attachment st words in
  let gen = gen_arg args ~default:Pcie.Gen4 in
  let lanes = int_arg args "lanes" ~default:16 in
  match kind_word with
  | "nic" ->
    let gbps =
      match float_arg args "port" with
      | Some g -> g
      | None -> bad "nic %s: needs port=<Gbps>" name
    in
    let nic =
      Topology.add_device topo ~name ~kind:(Device.Nic { inter_host_gbps = gbps }) ~socket
    in
    Builder.attach_pcie topo ~parent ~child:nic.Device.id ~gen ~lanes ();
    Builder.link_inter_host topo ~nic ~gbps
  | "gpu" | "ssd" | "fpga" ->
    let kind =
      match kind_word with
      | "gpu" -> Device.Gpu
      | "ssd" -> Device.Nvme_ssd
      | _ -> Device.Fpga
    in
    let d = Topology.add_device topo ~name ~kind ~socket in
    Builder.attach_pcie topo ~parent ~child:d.Device.id ~gen ~lanes ()
  | "cxl" ->
    (* always below the root complex of the attachment's socket *)
    ignore (Builder.add_cxl_expander topo ~name ~socket)
  | other -> bad "unknown device kind %s" other

let handle_line st line =
  let line =
    match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | "host" :: name :: _ ->
    if st.topo <> None then bad "host must be the first directive";
    st.topo <- Some (Topology.create ~name ())
  | "host" :: [] -> bad "host: missing name"
  | "config" :: rest -> handle_config st (parse_args rest)
  | "socket" :: rest -> handle_socket st rest (parse_args rest)
  | "switch" :: rest -> handle_switch st rest (parse_args rest)
  | (("nic" | "gpu" | "ssd" | "fpga" | "cxl") as kind) :: rest ->
    handle_device st kind rest (parse_args rest)
  | d :: _ -> bad "unknown directive %s" d

let parse text =
  let st = { topo = None; sockets = [] } in
  let lines = String.split_on_char '\n' text in
  let rec walk n = function
    | [] -> Ok ()
    | line :: rest -> (
      match handle_line st line with
      | () -> walk (n + 1) rest
      | exception Bad msg -> Error (Printf.sprintf "line %d: %s" n msg)
      | exception Invalid_argument msg -> Error (Printf.sprintf "line %d: %s" n msg))
  in
  match walk 1 lines with
  | Error e -> Error e
  | Ok () -> (
    let topo = topo_of st in
    match Topology.validate topo with
    | Ok () -> Ok topo
    | Error es -> Error ("invalid topology: " ^ String.concat "; " es))
