type hop = { link : Link.t; dir : Link.dir }
type t = { src : Device.id; dst : Device.id; hops : hop list }

let exit_device hop = match hop.dir with Link.Fwd -> hop.link.Link.b | Link.Rev -> hop.link.Link.a
let enter_device hop = match hop.dir with Link.Fwd -> hop.link.Link.a | Link.Rev -> hop.link.Link.b

let devices t = t.src :: List.map exit_device t.hops
let links t = List.map (fun h -> h.link) t.hops
let hop_count t = List.length t.hops

let base_latency t =
  List.fold_left (fun acc h -> acc +. h.link.Link.base_latency) 0.0 t.hops

let bottleneck_capacity t =
  List.fold_left (fun acc h -> Float.min acc h.link.Link.capacity) infinity t.hops

let concat a b =
  if a.dst <> b.src then invalid_arg "Path.concat: paths do not chain";
  { src = a.src; dst = b.dst; hops = a.hops @ b.hops }

let mem_link t id = List.exists (fun h -> h.link.Link.id = id) t.hops

let well_formed _topo t =
  let rec walk cur = function
    | [] -> cur = t.dst
    | h :: rest -> enter_device h = cur && walk (exit_device h) rest
  in
  walk t.src t.hops

let pp topo ppf t =
  let names = List.map (fun id -> (Topology.device topo id).Device.name) (devices t) in
  Format.pp_print_string ppf (String.concat " -> " names)
