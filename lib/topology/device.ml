type id = int

type kind =
  | Cpu_socket of { cores : int }
  | Memory_controller of { channels : int }
  | Dimm of { channel : int }
  | Root_complex
  | Root_port
  | Pcie_switch of { ports : int }
  | Nic of { inter_host_gbps : float }
  | Gpu
  | Nvme_ssd
  | Fpga
  | Cxl_device
  | External_network

type t = { id : id; name : string; kind : kind; socket : int }

let kind_label = function
  | Cpu_socket _ -> "cpu-socket"
  | Memory_controller _ -> "mem-ctrl"
  | Dimm _ -> "dimm"
  | Root_complex -> "root-complex"
  | Root_port -> "root-port"
  | Pcie_switch _ -> "pcie-switch"
  | Nic _ -> "nic"
  | Gpu -> "gpu"
  | Nvme_ssd -> "nvme-ssd"
  | Fpga -> "fpga"
  | Cxl_device -> "cxl-device"
  | External_network -> "external-net"

let is_endpoint t =
  match t.kind with
  | Cpu_socket _ | Dimm _ | Nic _ | Gpu | Nvme_ssd | Fpga | Cxl_device | External_network ->
    true
  | Memory_controller _ | Root_complex | Root_port | Pcie_switch _ -> false

let is_io_device t =
  match t.kind with
  | Nic _ | Gpu | Nvme_ssd | Fpga | Cxl_device -> true
  | Cpu_socket _ | Memory_controller _ | Dimm _ | Root_complex | Root_port | Pcie_switch _
  | External_network ->
    false

let can_transit t =
  match t.kind with
  | Cpu_socket _ | Memory_controller _ | Root_complex | Root_port | Pcie_switch _ -> true
  (* a NIC bridges its PCIe slot to the inter-host wire *)
  | Nic _ -> true
  | Dimm _ | Gpu | Nvme_ssd | Fpga | Cxl_device | External_network -> false

let pp ppf t = Format.fprintf ppf "%s#%d(%s,s%d)" t.name t.id (kind_label t.kind) t.socket
