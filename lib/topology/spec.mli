(** Text format for custom host topologies.

    Line-oriented; [#] starts a comment. Example:

    {v
    host my-server
    config ddio=on iommu=on mps=256

    socket 0 cores=32 mc=2 channels=3
    socket 1 cores=32 mc=2 channels=3

    # PCIe: a switch on socket 0's root port 0, devices below it
    switch sw0 at 0:0
    nic  nic0 on sw0 port=200
    gpu  gpu0 on sw0
    ssd  ssd0 on sw0

    # direct-attached on other root ports
    nic  nic1 at 0:1 port=200
    gpu  gpu1 at 1:0 gen=5 lanes=16

    # a CXL expander below socket 1's root complex
    cxl  cxl0 at 1
    v}

    Rules:
    - [socket IDX] creates a socket with its memory controllers, DIMMs
      and root complex; consecutive sockets are chained with
      inter-socket links automatically.
    - [at S:P] attaches below socket [S]'s root port [P] (root ports
      are created on demand); [at S] attaches a CXL device below the
      socket's root complex; [on NAME] attaches below a switch.
    - Device kinds: [nic] (needs [port=<Gbps>]), [gpu], [ssd], [fpga],
      [cxl]. PCIe links default to gen4 x16; override with
      [gen=] / [lanes=].
    - [config] keys: [ddio=on|off], [iommu=on|off], [mps=N],
      [acs=on|off], [ro=on|off].
    - An external-network device ["ext"] is created automatically and
      every NIC is linked to it at its port speed. *)

val parse : string -> (Topology.t, string) result
(** Parse a spec; errors carry the offending line number. The resulting
    topology is validated. *)

val example : string
(** A ready-to-parse example spec (the one above). *)
