(** A concrete route through the intra-host network.

    A path is a device sequence plus, for each hop, the link taken and
    the direction it is traversed in. The scheduler reasons about
    alternative paths (e.g. "several GPU–SSD pathways", §3.2); the
    engine charges a flow against every (link, direction) on its
    path. *)

type hop = { link : Link.t; dir : Link.dir }

type t = {
  src : Device.id;
  dst : Device.id;
  hops : hop list;  (** In traversal order; empty iff [src = dst]. *)
}

val devices : t -> Device.id list
(** All devices visited, [src] first, [dst] last. *)

val links : t -> Link.t list
val hop_count : t -> int

val base_latency : t -> Ihnet_util.Units.ns
(** Sum of link base latencies (the zero-load path latency). *)

val bottleneck_capacity : t -> Ihnet_util.Units.bytes_per_s
(** Minimum link capacity along the path; [infinity] for an empty
    path. *)

val concat : t -> t -> t
(** [concat a b] joins two paths end to end.
    @raise Invalid_argument unless [a.dst = b.src]. *)

val mem_link : t -> Link.id -> bool
val well_formed : Topology.t -> t -> bool
(** Hops chain correctly from [src] to [dst]. *)

val pp : Topology.t -> Format.formatter -> t -> unit
(** e.g. ["nic0 -> pciesw0 -> rp0.0 -> socket0"]. *)
