type iommu =
  | Iommu_off
  | Iommu_on of {
      iotlb_entries : int;
      hit_latency : Ihnet_util.Units.ns;
      miss_penalty : Ihnet_util.Units.ns;
    }

type ddio =
  | Ddio_off
  | Ddio_on of { llc_ways : int; io_ways : int; way_size : float }

type t = {
  iommu : iommu;
  ddio : ddio;
  pcie_mps : int;
  relaxed_ordering : bool;
  acs : bool;
  interrupt_moderation : Ihnet_util.Units.ns;
}

let default =
  {
    iommu = Iommu_on { iotlb_entries = 64; hit_latency = 10.0; miss_penalty = 250.0 };
    ddio = Ddio_on { llc_ways = 11; io_ways = 2; way_size = Ihnet_util.Units.mib 1.5 };
    pcie_mps = 256;
    relaxed_ordering = true;
    acs = false;
    interrupt_moderation = 0.0;
  }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let* () =
    check
      (is_power_of_two t.pcie_mps && t.pcie_mps >= 128 && t.pcie_mps <= 4096)
      "pcie_mps must be a power of two in [128, 4096]"
  in
  let* () =
    match t.ddio with
    | Ddio_off -> Ok ()
    | Ddio_on { llc_ways; io_ways; way_size } ->
      check
        (llc_ways > 0 && io_ways > 0 && io_ways <= llc_ways && way_size > 0.0)
        "ddio: need 0 < io_ways <= llc_ways and positive way_size"
  in
  let* () =
    match t.iommu with
    | Iommu_off -> Ok ()
    | Iommu_on { iotlb_entries; hit_latency; miss_penalty } ->
      check
        (iotlb_entries > 0 && hit_latency >= 0.0 && miss_penalty >= 0.0)
        "iommu: need positive iotlb_entries and non-negative latencies"
  in
  check (t.interrupt_moderation >= 0.0) "interrupt_moderation must be non-negative"

let pp ppf t =
  let iommu_s =
    match t.iommu with
    | Iommu_off -> "off"
    | Iommu_on { iotlb_entries; _ } -> Printf.sprintf "on(iotlb=%d)" iotlb_entries
  in
  let ddio_s =
    match t.ddio with
    | Ddio_off -> "off"
    | Ddio_on { llc_ways; io_ways; _ } -> Printf.sprintf "on(%d/%d ways)" io_ways llc_ways
  in
  Format.fprintf ppf "iommu=%s ddio=%s mps=%d ro=%b acs=%b intmod=%a" iommu_s ddio_s t.pcie_mps
    t.relaxed_ordering t.acs Ihnet_util.Units.pp_time t.interrupt_moderation
