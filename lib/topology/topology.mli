(** The intra-host network graph: devices connected by links.

    Built mutably by the {!Builder} (or by hand), then used read-only by
    the engine, monitor and manager. Names are unique; ids are dense
    ints suitable for array indexing. *)

type t

val create : ?config:Hostconfig.t -> name:string -> unit -> t

val name : t -> string
val config : t -> Hostconfig.t
val set_config : t -> Hostconfig.t -> unit

(** {1 Construction} *)

val add_device : t -> name:string -> kind:Device.kind -> socket:int -> Device.t
(** @raise Invalid_argument if [name] is already taken. *)

val add_link :
  t ->
  kind:Link.kind ->
  a:Device.id ->
  b:Device.id ->
  capacity:Ihnet_util.Units.bytes_per_s ->
  base_latency:Ihnet_util.Units.ns ->
  Link.t
(** @raise Invalid_argument if an endpoint id does not exist, the
    endpoints are equal, capacity is not positive, or latency is
    negative. *)

(** {1 Queries} *)

val device : t -> Device.id -> Device.t
(** @raise Not_found on an unknown id. *)

val device_by_name : t -> string -> Device.t option
val link : t -> Link.id -> Link.t
val device_count : t -> int
val link_count : t -> int
val devices : t -> Device.t list
val links : t -> Link.t list
val find_devices : t -> (Device.t -> bool) -> Device.t list

val neighbors : t -> Device.id -> (Link.t * Device.id) list
(** Adjacent links with the peer endpoint for each. *)

val links_between : t -> Device.id -> Device.id -> Link.t list

val endpoint_of : t -> Link.t -> Link.dir -> Device.id
(** [endpoint_of t l dir] is the device the link enters when traversed
    in [dir] ([Fwd] enters [l.b]). *)

val pcie_position : t -> Link.t -> [ `Upstream | `Downstream | `Not_pcie ]
(** Figure 1 distinguishes switch upstream (3) from downstream (4)
    links. A PCIe link is [`Upstream] when its topologically higher
    endpoint is a root port or root complex, [`Downstream] otherwise. *)

val figure1_class : t -> Link.t -> int option
(** Like {!Link.figure1_class} but resolving PCIe links to 3 or 4 via
    {!pcie_position}. *)

(** {1 Validation and export} *)

val validate : t -> (unit, string list) result
(** Checks: at least one device, graph connected, every I/O device has
    exactly one PCIe uplink, config valid. *)

val to_dot : t -> string
(** Graphviz rendering for documentation. *)

val summary : t -> string
(** One paragraph: device and link counts by kind. *)
