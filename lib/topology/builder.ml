module U = Ihnet_util.Units

(* Figure 1 mid-range constants. *)
let inter_socket_bw = U.gbytes_per_s 40.0
let inter_socket_lat = 150.0
let mesh_mc_bw = U.gbytes_per_s 60.0
let mesh_mc_lat = 40.0
let mesh_rc_bw = U.gbytes_per_s 100.0
let mesh_rc_lat = 20.0
let ddr_channel_bw = U.gbytes_per_s 25.6
let ddr_channel_lat = 60.0
let rc_rp_bw = U.gbytes_per_s 64.0
let rc_rp_lat = 5.0
let pcie_hop_lat = 100.0
let inter_host_lat = 1500.0

(* {1 Low-level assembly} *)

let add_socket topo ~idx ?(cores = 28) ~mem_controllers ~channels_per_mc () =
  let socket =
    Topology.add_device topo
      ~name:(Printf.sprintf "socket%d" idx)
      ~kind:(Device.Cpu_socket { cores })
      ~socket:idx
  in
  for m = 0 to mem_controllers - 1 do
    let mc =
      Topology.add_device topo
        ~name:(Printf.sprintf "mc%d.%d" idx m)
        ~kind:(Device.Memory_controller { channels = channels_per_mc })
        ~socket:idx
    in
    ignore
      (Topology.add_link topo ~kind:Link.Intra_socket ~a:socket.Device.id ~b:mc.Device.id
         ~capacity:mesh_mc_bw ~base_latency:mesh_mc_lat);
    for c = 0 to channels_per_mc - 1 do
      let dimm =
        Topology.add_device topo
          ~name:(Printf.sprintf "dimm%d.%d.%d" idx m c)
          ~kind:(Device.Dimm { channel = c })
          ~socket:idx
      in
      ignore
        (Topology.add_link topo ~kind:Link.Memory_channel ~a:mc.Device.id ~b:dimm.Device.id
           ~capacity:ddr_channel_bw ~base_latency:ddr_channel_lat)
    done
  done;
  socket

let add_root_complex topo ~socket:(sock : Device.t) =
  let rc =
    Topology.add_device topo
      ~name:(Printf.sprintf "rc%d" sock.Device.socket)
      ~kind:Device.Root_complex ~socket:sock.Device.socket
  in
  ignore
    (Topology.add_link topo ~kind:Link.Intra_socket ~a:sock.Device.id ~b:rc.Device.id
       ~capacity:mesh_rc_bw ~base_latency:mesh_rc_lat);
  rc

let add_root_port topo ~socket ~port =
  let name = Printf.sprintf "rp%d.%d" socket port in
  match Topology.device_by_name topo name with
  | Some rp -> rp
  | None -> (
    match Topology.device_by_name topo (Printf.sprintf "rc%d" socket) with
    | None -> invalid_arg "Builder.add_root_port: socket has no root complex"
    | Some rc ->
      let rp = Topology.add_device topo ~name ~kind:Device.Root_port ~socket in
      ignore
        (Topology.add_link topo ~kind:Link.Intra_socket ~a:rc.Device.id ~b:rp.Device.id
           ~capacity:rc_rp_bw ~base_latency:rc_rp_lat);
      rp)

let link_inter_socket topo (a : Device.t) (b : Device.t) =
  ignore
    (Topology.add_link topo ~kind:Link.Inter_socket ~a:a.Device.id ~b:b.Device.id
       ~capacity:inter_socket_bw ~base_latency:inter_socket_lat)

let attach_pcie topo ~parent ~child ?(gen = Pcie.Gen4) ?(lanes = 16) () =
  let pcie = Pcie.v gen lanes in
  ignore
    (Topology.add_link topo ~kind:(Link.Pcie pcie) ~a:parent ~b:child
       ~capacity:(Pcie.raw_bandwidth pcie) ~base_latency:pcie_hop_lat)

let ensure_ext topo =
  match Topology.device_by_name topo "ext" with
  | Some d -> d.Device.id
  | None ->
    (Topology.add_device topo ~name:"ext" ~kind:Device.External_network ~socket:(-1)).Device.id

let link_inter_host topo ~nic:(nic : Device.t) ~gbps =
  let ext = ensure_ext topo in
  ignore
    (Topology.add_link topo ~kind:Link.Inter_host ~a:nic.Device.id ~b:ext ~capacity:(U.gbps gbps)
       ~base_latency:inter_host_lat)

let add_cxl_expander topo ~name ~socket =
  let rc =
    match Topology.device_by_name topo (Printf.sprintf "rc%d" socket) with
    | Some d -> d
    | None -> invalid_arg "Builder.add_cxl_expander: socket has no root complex"
  in
  let cxl = Topology.add_device topo ~name ~kind:Device.Cxl_device ~socket in
  let phy = Pcie.v Pcie.Gen5 8 in
  ignore
    (Topology.add_link topo ~kind:(Link.Cxl phy) ~a:rc.Device.id ~b:cxl.Device.id
       ~capacity:(Pcie.raw_bandwidth phy) ~base_latency:25.0);
  cxl

(* {1 Canned hosts} *)

(* socket + rc + [ports] root ports *)
let socket_with_ports topo ~idx ~mem_controllers ~channels_per_mc ~ports =
  let sock = add_socket topo ~idx ~mem_controllers ~channels_per_mc () in
  ignore (add_root_complex topo ~socket:sock);
  let rps = List.init ports (fun p -> add_root_port topo ~socket:idx ~port:p) in
  (sock, rps)

let add_nic topo ~name ~socket ~gbps ~parent ?(gen = Pcie.Gen4) ?(lanes = 16) () =
  let nic =
    Topology.add_device topo ~name ~kind:(Device.Nic { inter_host_gbps = gbps }) ~socket
  in
  attach_pcie topo ~parent ~child:nic.Device.id ~gen ~lanes ();
  link_inter_host topo ~nic ~gbps;
  nic

let two_socket_server ?config ?(pcie_gen = Pcie.Gen4) () =
  let topo = Topology.create ?config ~name:"two-socket-server" () in
  ignore (ensure_ext topo);
  let s0, rps0 = socket_with_ports topo ~idx:0 ~mem_controllers:2 ~channels_per_mc:3 ~ports:2 in
  let s1, rps1 = socket_with_ports topo ~idx:1 ~mem_controllers:2 ~channels_per_mc:3 ~ports:2 in
  link_inter_socket topo s0 s1;
  (match rps0 with
  | [ rp00; rp01 ] ->
    let sw =
      Topology.add_device topo ~name:"pciesw0" ~kind:(Device.Pcie_switch { ports = 4 }) ~socket:0
    in
    attach_pcie topo ~parent:rp00.Device.id ~child:sw.Device.id ~gen:pcie_gen ();
    ignore (add_nic topo ~name:"nic0" ~socket:0 ~gbps:200.0 ~parent:sw.Device.id ~gen:pcie_gen ());
    let gpu0 = Topology.add_device topo ~name:"gpu0" ~kind:Device.Gpu ~socket:0 in
    attach_pcie topo ~parent:sw.Device.id ~child:gpu0.Device.id ~gen:pcie_gen ();
    let ssd0 = Topology.add_device topo ~name:"ssd0" ~kind:Device.Nvme_ssd ~socket:0 in
    attach_pcie topo ~parent:sw.Device.id ~child:ssd0.Device.id ~gen:pcie_gen ();
    ignore (add_nic topo ~name:"nic1" ~socket:0 ~gbps:200.0 ~parent:rp01.Device.id ~gen:pcie_gen ())
  | _ -> assert false);
  (match rps1 with
  | [ rp10; rp11 ] ->
    let sw =
      Topology.add_device topo ~name:"pciesw1" ~kind:(Device.Pcie_switch { ports = 4 }) ~socket:1
    in
    attach_pcie topo ~parent:rp10.Device.id ~child:sw.Device.id ~gen:pcie_gen ();
    let gpu1 = Topology.add_device topo ~name:"gpu1" ~kind:Device.Gpu ~socket:1 in
    attach_pcie topo ~parent:sw.Device.id ~child:gpu1.Device.id ~gen:pcie_gen ();
    let ssd1 = Topology.add_device topo ~name:"ssd1" ~kind:Device.Nvme_ssd ~socket:1 in
    attach_pcie topo ~parent:sw.Device.id ~child:ssd1.Device.id ~gen:pcie_gen ();
    ignore (add_nic topo ~name:"nic2" ~socket:1 ~gbps:200.0 ~parent:rp11.Device.id ~gen:pcie_gen ())
  | _ -> assert false);
  topo

let dgx_like ?config () =
  let topo = Topology.create ?config ~name:"dgx-like" () in
  ignore (ensure_ext topo);
  let s0, rps0 = socket_with_ports topo ~idx:0 ~mem_controllers:4 ~channels_per_mc:2 ~ports:2 in
  let s1, rps1 = socket_with_ports topo ~idx:1 ~mem_controllers:4 ~channels_per_mc:2 ~ports:2 in
  ignore
    (Topology.add_link topo ~kind:Link.Inter_socket ~a:s0.Device.id ~b:s1.Device.id
       ~capacity:(U.gbytes_per_s 72.0) ~base_latency:130.0);
  List.iteri
    (fun i rps ->
      List.iteri
        (fun p (rp : Device.t) ->
          let swi = (i * 2) + p in
          let sw =
            Topology.add_device topo
              ~name:(Printf.sprintf "pciesw%d" swi)
              ~kind:(Device.Pcie_switch { ports = 5 })
              ~socket:i
          in
          attach_pcie topo ~parent:rp.Device.id ~child:sw.Device.id ();
          for g = 0 to 1 do
            let gid = (swi * 2) + g in
            let gpu =
              Topology.add_device topo ~name:(Printf.sprintf "gpu%d" gid) ~kind:Device.Gpu
                ~socket:i
            in
            attach_pcie topo ~parent:sw.Device.id ~child:gpu.Device.id ();
            ignore
              (add_nic topo
                 ~name:(Printf.sprintf "nic%d" gid)
                 ~socket:i ~gbps:200.0 ~parent:sw.Device.id ())
          done)
        rps)
    [ rps0; rps1 ];
  topo

let epyc_like ?config () =
  let topo = Topology.create ?config ~name:"epyc-like" () in
  ignore (ensure_ext topo);
  let s0, rps0 = socket_with_ports topo ~idx:0 ~mem_controllers:4 ~channels_per_mc:2 ~ports:4 in
  let s1, rps1 = socket_with_ports topo ~idx:1 ~mem_controllers:4 ~channels_per_mc:2 ~ports:4 in
  ignore
    (Topology.add_link topo ~kind:Link.Inter_socket ~a:s0.Device.id ~b:s1.Device.id
       ~capacity:(U.gbytes_per_s 50.0) ~base_latency:200.0);
  List.iteri
    (fun i rps ->
      List.iteri
        (fun p (rp : Device.t) ->
          match p with
          | 0 ->
            ignore
              (add_nic topo ~name:(Printf.sprintf "nic%d" i) ~socket:i ~gbps:200.0
                 ~parent:rp.Device.id ())
          | 1 ->
            let d =
              Topology.add_device topo ~name:(Printf.sprintf "gpu%d" i) ~kind:Device.Gpu ~socket:i
            in
            attach_pcie topo ~parent:rp.Device.id ~child:d.Device.id ()
          | 2 ->
            let d =
              Topology.add_device topo
                ~name:(Printf.sprintf "ssd%d" i)
                ~kind:Device.Nvme_ssd ~socket:i
            in
            attach_pcie topo ~parent:rp.Device.id ~child:d.Device.id ()
          | _ ->
            let d =
              Topology.add_device topo
                ~name:(Printf.sprintf "fpga%d" i)
                ~kind:Device.Fpga ~socket:i
            in
            attach_pcie topo ~parent:rp.Device.id ~child:d.Device.id ())
        rps)
    [ rps0; rps1 ];
  topo

let minimal ?config () =
  let topo = Topology.create ?config ~name:"minimal" () in
  ignore (ensure_ext topo);
  let _, rps = socket_with_ports topo ~idx:0 ~mem_controllers:1 ~channels_per_mc:1 ~ports:1 in
  (match rps with
  | [ rp ] -> ignore (add_nic topo ~name:"nic0" ~socket:0 ~gbps:200.0 ~parent:rp.Device.id ())
  | _ -> assert false);
  topo

let two_socket_with_cxl ?config () =
  let topo = two_socket_server ?config () in
  ignore (add_cxl_expander topo ~name:"cxl0" ~socket:0);
  topo

let scaled ?config ~sockets ~switches_per_socket ~devices_per_switch () =
  assert (sockets > 0 && switches_per_socket >= 0 && devices_per_switch >= 0);
  let topo = Topology.create ?config ~name:"scaled" () in
  ignore (ensure_ext topo);
  let socks =
    List.init sockets (fun i ->
        socket_with_ports topo ~idx:i ~mem_controllers:2 ~channels_per_mc:2
          ~ports:switches_per_socket)
  in
  let rec chain = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      link_inter_socket topo a b;
      chain rest
    | [ _ ] | [] -> ()
  in
  chain socks;
  let dev_counter = ref 0 in
  List.iteri
    (fun i (_, rps) ->
      List.iteri
        (fun p (rp : Device.t) ->
          let sw =
            Topology.add_device topo
              ~name:(Printf.sprintf "pciesw%d.%d" i p)
              ~kind:(Device.Pcie_switch { ports = devices_per_switch + 1 })
              ~socket:i
          in
          attach_pcie topo ~parent:rp.Device.id ~child:sw.Device.id ();
          for d = 0 to devices_per_switch - 1 do
            let n = !dev_counter in
            incr dev_counter;
            match d mod 3 with
            | 0 ->
              ignore
                (add_nic topo ~name:(Printf.sprintf "nic%d" n) ~socket:i ~gbps:200.0
                   ~parent:sw.Device.id ())
            | 1 ->
              let g =
                Topology.add_device topo ~name:(Printf.sprintf "gpu%d" n) ~kind:Device.Gpu
                  ~socket:i
              in
              attach_pcie topo ~parent:sw.Device.id ~child:g.Device.id ()
            | _ ->
              let s =
                Topology.add_device topo
                  ~name:(Printf.sprintf "ssd%d" n)
                  ~kind:Device.Nvme_ssd ~socket:i
              in
              attach_pcie topo ~parent:sw.Device.id ~child:s.Device.id ()
          done)
        rps)
    socks;
  topo
