(** PCIe link model.

    Capacity and protocol-efficiency model following Neugebauer et al.,
    "Understanding PCIe performance for end host networking"
    (SIGCOMM'18), the theoretical model the paper cites ([43]):

    - raw lane rate per generation (GT/s), minus line-coding overhead
      (8b/10b for gen 1–2, 128b/130b for gen 3+);
    - per-TLP overhead: 12–16 B TLP header + 6 B DLLP framing + 2 B
      sequence, so a DMA moving [mps]-byte payloads sustains
      [mps / (mps + overhead)] of the coded rate;
    - reads additionally consume forward bandwidth with request TLPs
      and are limited by outstanding-tag count (not modeled here; the
      engine's latency model covers queueing). *)

type gen = Gen1 | Gen2 | Gen3 | Gen4 | Gen5 | Gen6

type t = {
  gen : gen;
  lanes : int;  (** 1, 2, 4, 8, 16. *)
}

val v : gen -> int -> t
(** [v gen lanes]; validates the lane count.
    @raise Invalid_argument on a non-standard lane count. *)

val gt_per_s : gen -> float
(** Raw signalling rate per lane, GT/s. *)

val encoding_efficiency : gen -> float
(** 0.8 for gen 1–2 (8b/10b), 128/130 for gen 3+. *)

val raw_bandwidth : t -> Ihnet_util.Units.bytes_per_s
(** Coded link bandwidth per direction (what datasheets quote), e.g.
    gen4 x16 ≈ 31.5 GB/s ≈ 252 Gb/s — the "~256 Gbps" of Figure 1. *)

val tlp_header_bytes : int
(** Conservative per-TLP overhead: 18 B framing/seq/CRC + 12 B header
    (3-DW, 32-bit addressing) ≈ 30 B with ECRC; we use 26 B, mid-range
    of the SIGCOMM'18 model. *)

val payload_efficiency : mps:int -> float
(** [payload_efficiency ~mps] is [mps / (mps + tlp_header_bytes)]. *)

val effective_bandwidth : t -> mps:int -> Ihnet_util.Units.bytes_per_s
(** DMA goodput per direction given the MaxPayloadSize in force. *)

val label : t -> string
(** e.g. ["gen4 x16"]. *)

val pp : Format.formatter -> t -> unit
