(** Links (fabric segments) of the intra-host network.

    Link classes follow Figure 1 of the paper:
    - (1) inter-socket connect (QPI/UPI/Infinity): 20–72 GB/s, 130–220 ns
    - (2) intra-socket connect (core mesh, memory channels): 100–200
      GB/s aggregate, 2–110 ns
    - (3) PCIe switch upstream link (x16): ~256 Gb/s, 30–120 ns
    - (4) PCIe switch downstream link (x16): ~256 Gb/s, 30–120 ns
    - (5) inter-host network: ~200 Gb/s, < 2 µs

    All links are full duplex: each direction has independent capacity
    (matching PCIe/UPI/DDR behaviour at flow granularity). *)

type id = int

type kind =
  | Inter_socket  (** Figure 1 class (1). *)
  | Intra_socket  (** Class (2): on-die mesh segment (socket ↔ memory
                      controller, socket ↔ root complex). *)
  | Memory_channel  (** Class (2): memory controller ↔ DIMM channel. *)
  | Pcie of Pcie.t  (** Classes (3)/(4): any PCIe hop. *)
  | Cxl of Pcie.t
      (** A CXL link (rides the PCIe PHY of the given gen/lanes). Not a
          Figure 1 class — the paper discusses CXL as the emerging
          alternative: coherent, flit-based, with far lower protocol
          latency than PCIe DMA (§2, §4, citing [49]). *)
  | Inter_host  (** Class (5): NIC ↔ external network. *)

type t = {
  id : id;
  kind : kind;
  a : Device.id;  (** One endpoint device. *)
  b : Device.id;  (** The other endpoint. *)
  capacity : Ihnet_util.Units.bytes_per_s;  (** Per direction. *)
  base_latency : Ihnet_util.Units.ns;
      (** Propagation + component processing delay at zero load,
          including the downstream component's processing (e.g. a PCIe
          switch hop), as in Figure 1's "basic latency". *)
}

type dir = Fwd | Rev
(** Traversal direction: [Fwd] is [a → b]. Each direction is an
    independent capacity resource. *)

val figure1_class : t -> int option
(** The Figure 1 class number (1–5) of this link, when it has one.
    [Intra_socket] and [Memory_channel] are both class 2; a PCIe link
    is class 3 or 4 depending on position, which the topology decides —
    here both map to [Some 3]. *)

val kind_label : kind -> string
val opposite : dir -> dir
val pp : Format.formatter -> t -> unit
