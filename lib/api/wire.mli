(** Length-prefixed JSON framing over a stream socket.

    A frame is a 4-byte big-endian payload length followed by that
    many bytes of UTF-8 JSON ({!Ihnet_record.Trace.json_to_string}
    output). The length covers the payload only; frames up to
    {!max_frame} bytes are accepted, anything larger is a protocol
    error (a corrupted or misaligned stream would otherwise ask for a
    gigabyte allocation). *)

val max_frame : int
(** 16 MiB. *)

val encode : Ihnet_record.Trace.json -> bytes
(** The full frame (header + payload), for callers doing their own
    buffered writes.
    @raise Api_error.Error [(Protocol _)] when the payload exceeds
    {!max_frame}. *)

val write_frame : Unix.file_descr -> Ihnet_record.Trace.json -> unit
(** Blocking full write.
    @raise Api_error.Error [(Protocol _)] on a short write or closed
    peer. *)

val read_frame : Unix.file_descr -> Ihnet_record.Trace.json option
(** Blocking full read of one frame; [None] on clean EOF at a frame
    boundary.
    @raise Api_error.Error [(Protocol _)] on truncation, oversized
    frames or malformed JSON. *)

(** {1 Incremental reading}

    The daemon's select loop feeds whatever [read] returned into a
    per-client {!reader}; complete frames are popped as they
    materialize, partial ones are buffered across calls. *)

type reader

val reader : unit -> reader

val feed : reader -> bytes -> int -> unit
(** [feed r buf n] appends the first [n] bytes of [buf]. *)

val pop : reader -> Ihnet_record.Trace.json option
(** Next complete frame, if one is buffered.
    @raise Api_error.Error [(Protocol _)] on malformed JSON or an
    oversized declared frame length. *)

val pending : reader -> int
(** Bytes currently buffered (frames not yet popped included). *)
