module U = Ihnet_util
module Resp = Response

let pp_time = U.Units.pp_time
let pp_rate = U.Units.pp_rate

let print_event = function
  | Resp.Ev_telemetry { ev_at; ev_epoch; ev_flows; ev_rate } ->
    Format.printf "%10.0f epoch %-6d flows %-4d %a@." ev_at ev_epoch ev_flows pp_rate ev_rate
  | Resp.Ev_action { ev_at; ev_link; ev_stage; ev_detail } ->
    Format.printf "%10.0f link %-4d %-10s %s@." ev_at ev_link ev_stage ev_detail
  | Resp.Ev_evidence { ev_at; ev_link; ev_modality; ev_score } ->
    Format.printf "%10.0f link %-4d %-10s score %.2f@." ev_at ev_link ev_modality ev_score

let print = function
  | Resp.Ack -> print_endline "ok"
  | Resp.Err e -> Printf.eprintf "ihnetctl: %s\n" (Api_error.message e)
  | Resp.Hello_ok { version; mode; preset } ->
    Printf.printf "connected: ihnetd in %s mode, preset %s, protocol v%d\n" mode preset version
  | Resp.Event e -> print_event e
  | Resp.Topo_report { summary; config; links } ->
    print_endline summary;
    Format.printf "config: %s@." config;
    List.iter
      (fun (l : Resp.link_row) ->
        Format.printf "  link %-2d %-18s %-10s <-> %-10s %a %a@." l.Resp.l_id l.Resp.l_kind
          l.Resp.l_a l.Resp.l_b pp_rate l.Resp.l_capacity pp_time l.Resp.l_latency)
      links
  | Resp.Topo_dot dot -> print_string dot
  | Resp.Ping_report { src; dst; sent; lost; rtt } -> (
    Format.printf "ihping %s <-> %s: %d sent, %d lost@." src dst sent lost;
    match rtt with
    | Some (mn, p50, p99, mx) ->
      Format.printf "rtt min/p50/p99/max = %a / %a / %a / %a@." pp_time mn pp_time p50 pp_time
        p99 pp_time mx
    | None -> ())
  | Resp.Trace_report { src; dst; hops } ->
    Printf.printf "ihtrace %s -> %s:\n" src dst;
    List.iter
      (fun (h : Resp.trace_hop) ->
        Format.printf "  -> %-12s %-18s class %-4s base %a, now %a (util %.0f%%)@."
          h.Resp.h_device h.Resp.h_kind
          (match h.Resp.h_class with Some c -> Printf.sprintf "(%d)" c | None -> "-")
          pp_time h.Resp.h_base pp_time h.Resp.h_loaded
          (h.Resp.h_util *. 100.0))
      hops
  | Resp.Perf_report { src; dst; result; bottleneck } -> (
    match result with
    | None -> prerr_endline "perf did not complete (simulation stalled?)"
    | Some (bytes, dur, rate) -> (
      Format.printf "ihperf %s -> %s: %a over %a (%a)@." src dst U.Units.pp_bytes bytes pp_time
        dur pp_rate rate;
      match bottleneck with
      | Some (a, b, u) -> Format.printf "bottleneck: %s-%s at %.0f%%@." a b (u *. 100.0)
      | None -> ()))
  | Resp.Dump_report { a; b; found; flows } ->
    if not found then Printf.eprintf "no link between %s and %s\n" a b
    else begin
      Printf.printf "ihdump on link %s-%s:\n" a b;
      List.iter
        (fun (c : Resp.dump_row) ->
          Format.printf "  flow#%-4d tenant %-3d %-11s %-10s -> %-10s %a@." c.Resp.f_id
            c.Resp.f_tenant c.Resp.f_cls c.Resp.f_src c.Resp.f_dst pp_rate c.Resp.f_rate)
        flows
    end
  | Resp.Check_report [] -> print_endline "configuration clean: no findings"
  | Resp.Check_report findings -> List.iter (Printf.printf "finding: %s\n") findings
  | Resp.Heartbeat_report { injected; rounds; failing; first; suspects } ->
    (match injected with
    | Some (a, b) -> Printf.printf "[injecting +5 us on %s-%s]\n" a b
    | None -> ());
    Printf.printf "rounds: %d, failing pairs: %d\n" rounds failing;
    (match first with
    | Some at -> Format.printf "first detection at %a@." pp_time at
    | None -> print_endline "no anomaly detected");
    List.iter
      (fun (s : Resp.suspect_row) ->
        Printf.printf "suspect: %s-%s (score %.2f)\n" s.Resp.su_a s.Resp.su_b s.Resp.su_score)
      suspects
  | Resp.Heal_report h ->
    Printf.printf "%s\n" h.Resp.he_banner;
    Format.printf "victim: %a guaranteed, %a before fault, %a after the loop@." pp_rate
      h.Resp.he_rate pp_rate h.Resp.he_pre pp_rate h.Resp.he_post;
    (match h.Resp.he_ttd with
    | Some d -> Format.printf "time-to-detect: %a@." pp_time d
    | None -> print_endline "time-to-detect: (case not opened)");
    (match h.Resp.he_ttr with
    | Some d -> Format.printf "time-to-recover: %a@." pp_time d
    | None -> print_endline "time-to-recover: (not recovered)");
    Format.printf "%s" h.Resp.he_status;
    print_endline "timeline:";
    Format.printf "%s" h.Resp.he_timeline;
    Format.printf "%s" h.Resp.he_slo
  | Resp.Scenario_names names -> List.iter (fun (n, d) -> Printf.printf "%-14s %s\n" n d) names
  | Resp.Scenario_unknown name -> Printf.eprintf "unknown scenario %S; try --list\n" name
  | Resp.Scenario_report s ->
    Printf.printf "scenario %s: %s\n" s.Resp.sc_name s.Resp.sc_describe;
    List.iter (fun (id, role) -> Printf.printf "  tenant %d: %s\n" id role) s.Resp.sc_tenants;
    Printf.printf "after %.0f ms:\n" s.Resp.sc_ms;
    List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) s.Resp.sc_metrics;
    (match s.Resp.sc_protect with
    | None -> ()
    | Some p ->
      Printf.printf "\n%s\n" p.Resp.pr_note;
      Printf.printf "after another %.0f ms under management:\n" p.Resp.pr_ms;
      List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) p.Resp.pr_metrics;
      Format.printf "%s" p.Resp.pr_slo)
  | Resp.Csv csv -> print_string csv
  | Resp.Health text -> Format.printf "%s" text
  | Resp.Plan_report { intents; headroom; fits; scale; bottlenecks } ->
    Printf.printf "deployment: %d intent(s), headroom %.0f%%\n" intents (headroom *. 100.0);
    if fits then begin
      Printf.printf "fits: yes (uniform growth room: %.2fx)\n" scale;
      print_endline "hottest links after placement:";
      List.iter
        (fun (b : Resp.bottleneck_row) ->
          Printf.printf "  %-18s %-10s - %-10s %.0f%%\n" b.Resp.bn_kind b.Resp.bn_a b.Resp.bn_b
            (b.Resp.bn_ratio *. 100.0))
        bottlenecks
    end
    else Printf.printf "fits: NO (would fit at %.2fx of the requested rates)\n" scale
  | Resp.Latency_report { flow; link_table; links } ->
    (match flow with
    | Some s -> Format.printf "flow end-to-end latency: %s@." s
    | None ->
      print_endline
        "flow end-to-end latency: no completed flows observed (try --load or a longer --ms)");
    if link_table then begin
      Format.printf "%-4s %-24s %-4s %8s %10s %10s %10s %10s@." "link" "route" "dir" "n" "p50"
        "p99" "p999" "max";
      List.iter
        (fun (r : Resp.sketch_row) ->
          Format.printf "%-4d %-24s %-4s %8d %10s %10s %10s %10s@." r.Resp.lr_id r.Resp.lr_route
            r.Resp.lr_dir r.Resp.lr_count
            (Format.asprintf "%a" pp_time r.Resp.lr_p50)
            (Format.asprintf "%a" pp_time r.Resp.lr_p99)
            (Format.asprintf "%a" pp_time r.Resp.lr_p999)
            (Format.asprintf "%a" pp_time r.Resp.lr_max))
        links
    end
  | Resp.Scan_report { epoch; regs; digest; steps; drained; snapshot = _ } ->
    Printf.printf "scan: epoch %d, %d registers, digest 0x%016Lx\n" epoch regs digest;
    List.iter
      (fun (s : Resp.scan_step) ->
        Printf.printf "step %d: epoch %d, digest 0x%016Lx\n" s.Resp.st_n s.Resp.st_epoch
          s.Resp.st_digest)
      steps;
    (match drained with
    | Some n -> Printf.printf "event queue drained after %d epoch(s)\n" n
    | None -> ())
  | Resp.Flow_ok { flow } -> Printf.printf "started flow %d\n" flow
  | Resp.Submit_ok { tenant; placements } ->
    Printf.printf "tenant %d: %d placement(s)\n" tenant (List.length placements);
    List.iter (Printf.printf "  %s\n") placements
  | Resp.Stats_report { now; epoch; flows; rate; reallocs; clients; commands } ->
    Format.printf "now %a, epoch %d, %d flow(s), %a aggregate@." pp_time now epoch flows pp_rate
      rate;
    Printf.printf "reallocations %d, clients %d, commands %d\n" reallocs clients commands
  | Resp.Fleet_status_report { hosts; rounds; digest; decisions; text; decision_log } ->
    Printf.printf "fleet: %d host(s), %d round(s)\n" hosts rounds;
    Format.printf "%s" text;
    Printf.printf "fleet digest 0x%016Lx decisions 0x%016Lx\n" digest decisions;
    List.iter (Printf.printf "  %s\n") decision_log
  | Resp.Bye -> print_endline "bye"

let exit_code = function
  | Resp.Err e -> Api_error.exit_code e
  | Resp.Check_report (_ :: _) -> 1
  | Resp.Plan_report { fits = false; _ } -> 1
  | Resp.Scenario_unknown _ -> 1
  | _ -> 0
