type t = { fd : Unix.file_descr; mutable greeting : Response.t }

let protocol fmt = Printf.ksprintf (fun s -> raise (Api_error.Error (Api_error.Protocol s))) fmt

let read_response fd =
  match Wire.read_frame fd with
  | None -> protocol "connection closed by daemon"
  | Some j -> (
    match Response.of_json j with
    | Ok r -> r
    | Error e -> protocol "bad response: %s" e)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    protocol "%s: %s" path (Unix.error_message e));
  match
    Wire.write_frame fd (Command.to_json (Command.Hello { version = Command.version }));
    read_response fd
  with
  | Response.Hello_ok _ as greeting -> { fd; greeting }
  | Response.Err e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Api_error.Error e)
  | _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    protocol "unexpected greeting from daemon"
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let greeting t = t.greeting

let call ?(on_event = fun _ -> ()) t cmd =
  Wire.write_frame t.fd (Command.to_json cmd);
  let rec await () =
    match read_response t.fd with
    | Response.Event ev ->
      on_event ev;
      await ()
    | r -> r
  in
  await ()

let next_event t =
  match Wire.read_frame t.fd with
  | None -> None
  | Some j -> (
    match Response.of_json j with
    | Ok (Response.Event ev) -> Some ev
    | Ok _ -> protocol "unexpected non-event frame on stream"
    | Error e -> protocol "bad frame: %s" e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
