(** One shared description of "which host to build" for every binary.

    [ihnetctl], [ihnetd], the fault campaign and the benches all used
    to carry their own copy of the preset / topology-file / DDIO /
    IOMMU / MPS / domains plumbing; this module is the single home for
    it. A spec is plain data, so it can be built from CLI flags, sent
    in a daemon hello, or embedded in a test. *)

type t = {
  preset : Ihnet.Host.preset;
  preset_name : string;
      (** Canonical CLI name ("two-socket", "dgx", ...) used in daemon
          hellos; "custom" for a topology-file host. Trace headers use
          the topology's own name instead — the
          {!Ihnet_topology.Builder} preset a replay rebuilds from. *)
  ddio : bool option;  (** [Some false] turns DDIO off; on is the default. *)
  iommu : bool option;
  mps : int option;  (** PCIe MaxPayloadSize override, bytes. *)
  domains : int option;  (** Reallocation pool width (default [IHNET_DOMAINS]). *)
  seed : int option;  (** Host RNG seed (default 42). *)
}

val default : t
(** Two-socket host, no overrides. *)

val make :
  ?preset:Ihnet.Host.preset ->
  ?topo_file:string ->
  ?ddio:bool ->
  ?iommu:bool ->
  ?mps:int ->
  ?domains:int ->
  ?seed:int ->
  unit ->
  t
(** Build a spec. [topo_file] (a {!Ihnet_topology.Spec} file) wins
    over [preset].
    @raise Failure ["<path>: <error>"] when the topology file cannot
    be read or parsed (callers that want the historical exit code 2
    use {!load_topo_file} directly). *)

val preset_of_name : string -> (Ihnet.Host.preset, string) result
(** ["two-socket"], ["dgx"], ["epyc"] or ["minimal"]. *)

val preset_name : Ihnet.Host.preset -> string
(** Inverse of {!preset_of_name}; custom topologies render as
    ["custom"]. *)

val load_topo_file : string -> (Ihnet_topology.Topology.t, string) result
(** Read and parse a topology spec file. *)

val config : t -> Ihnet_topology.Hostconfig.t
(** The host configuration the overrides produce. *)

val create_host : t -> Ihnet.Host.t
(** Build (and validate) the host — the one construction path every
    binary shares.
    @raise Invalid_argument if a custom topology fails validation. *)

val topology : t -> Ihnet_topology.Topology.t
(** Build just the topology (what [ihnetctl check] inspects): the
    preset's builder with {!config} applied; custom topologies fall
    back to the minimal builder, mirroring the historical [check]
    behavior. *)

val device_id :
  Ihnet_topology.Topology.t -> string -> Ihnet_topology.Device.id
(** Resolve a device by name.
    @raise Failure ["no device <name>"] when absent — the message every
    CLI path has always printed. *)
