(** Blocking client for an [ihnetd] socket.

    [connect] performs the {!Command.Hello} handshake; {!call} then
    runs one command per round trip. Streamed [Event] frames can
    arrive between a request and its reply — {!call} hands them to
    [on_event] (default: drop) and keeps reading until the actual
    reply shows up. *)

type t

val connect : string -> t
(** Dial a socket path and handshake.
    @raise Api_error.Error [(Protocol _)] when the socket cannot be
    reached, the daemon speaks another version, or the greeting is
    malformed. *)

val greeting : t -> Response.t
(** The daemon's [Hello_ok] captured at {!connect} time. *)

val call : ?on_event:(Response.event -> unit) -> t -> Command.t -> Response.t
(** Send one command, return its reply.
    @raise Api_error.Error [(Protocol _)] on EOF or framing trouble. *)

val next_event : t -> Response.event option
(** Block for the next pushed [Event] frame; [None] on clean EOF
    (daemon shut down). Non-event frames arriving here are a protocol
    error. *)

val close : t -> unit
