module J = Ihnet_record.Trace
module I = Ihnet_manager.Intent

let version = 1

type fidelity = Fid_hardware | Fid_software | Fid_oracle
type stream = S_telemetry | S_decisions | S_evidence
type fleet_fault = F_crash | F_restart | F_partition | F_heal

type t =
  | Hello of { version : int }
  | Topo of { dot : bool }
  | Ping of { src : string; dst : string; count : int; load : bool }
  | Path_trace of { src : string; dst : string; load : bool }
  | Perf of { src : string; dst : string; load : bool }
  | Dump of { a : string; b : string; load : bool }
  | Check
  | Heartbeat of { degrade : (string * string) option }
  | Heal of {
      src : string;
      dst : string;
      gbps : float;
      fault : (string * string) option;
      factor : float;
      silent : bool;
      flap : int option;
      ms : float;
    }
  | Scenario_list
  | Scenario of { name : string; ms : float; protect : float option }
  | Monitor of { ms : float; period_us : float; series : string option; load : bool }
  | Report of { fidelity : fidelity; load : bool }
  | Plan of {
      pipes : (string * string * float) list;
      hoses : (string * float * float) list;
      headroom : float;
    }
  | Latency of { link : bool; ms : float; load : bool }
  | Scan of { ms : float; load : bool; step : int option; snapshot : bool }
  | Run_for of { ms : float }
  | Flow_start of { tenant : int; src : string; dst : string; gbps : float option }
  | Flow_stop of { flow : int }
  | Submit of I.t
  | Fault_inject of { a : string; b : string; factor : float; extra_us : float; loss : float }
  | Fault_clear of { a : string; b : string }
  | Faults_clear_all
  | Subscribe of stream
  | Stats
  | Shutdown
  | Fleet_spawn of { name : string; preset : string }
  | Fleet_submit of I.t
  | Fleet_run of { rounds : int }
  | Fleet_status of { decisions : bool }
  | Fleet_fault of { host : string; what : fleet_fault }

let batchable = function
  | Flow_start _ | Flow_stop _ | Fault_inject _ | Fault_clear _ | Faults_clear_all -> true
  | _ -> false

(* {1 JSON helpers} *)

let jstr s = J.Str s
let jbool b = J.Bool b
let jopt f = function None -> J.Null | Some v -> f v

let opt_of j f = match j with J.Null -> None | j -> Some (f j)

let jpair (a, b) = J.Arr [ jstr a; jstr b ]

let pair_of j =
  match j with
  | J.Arr [ a; b ] -> (J.as_string a, J.as_string b)
  | _ -> raise (J.Parse_error "expected a two-string pair")

(* {1 Intents} *)

let target_to_json = function
  | I.Pipe { src; dst; rate } ->
    J.Obj [ ("t", jstr "pipe"); ("src", jstr src); ("dst", jstr dst); ("rate", J.jfloat rate) ]
  | I.Hose { endpoint; to_host; from_host } ->
    J.Obj
      [ ("t", jstr "hose"); ("endpoint", jstr endpoint); ("to_host", J.jfloat to_host);
        ("from_host", J.jfloat from_host) ]

let target_of_json j =
  match J.as_string (J.field j "t") with
  | "pipe" ->
    I.Pipe
      { src = J.as_string (J.field j "src"); dst = J.as_string (J.field j "dst");
        rate = J.as_float (J.field j "rate") }
  | "hose" ->
    I.Hose
      { endpoint = J.as_string (J.field j "endpoint");
        to_host = J.as_float (J.field j "to_host");
        from_host = J.as_float (J.field j "from_host") }
  | s -> raise (J.Parse_error ("unknown intent target " ^ s))

let intent_to_json (i : I.t) =
  J.Obj
    [ ("tenant", J.jint i.I.tenant);
      ("targets", J.Arr (List.map target_to_json i.I.targets));
      ("latency_bound", jopt J.jfloat i.I.latency_bound);
      ("p99_bound", jopt J.jfloat i.I.p99_bound);
      ("work_conserving", jbool i.I.work_conserving) ]

let intent_of_json j =
  { I.tenant = J.as_int (J.field j "tenant");
    targets = List.map target_of_json (J.as_list (J.field j "targets"));
    latency_bound = opt_of (J.field j "latency_bound") J.as_float;
    p99_bound = opt_of (J.field j "p99_bound") J.as_float;
    work_conserving = J.as_bool (J.field j "work_conserving") }

(* {1 Codec} *)

let fidelity_label = function
  | Fid_hardware -> "hardware"
  | Fid_software -> "software"
  | Fid_oracle -> "oracle"

let fidelity_of = function
  | "hardware" -> Fid_hardware
  | "software" -> Fid_software
  | "oracle" -> Fid_oracle
  | s -> raise (J.Parse_error ("unknown fidelity " ^ s))

let stream_label = function
  | S_telemetry -> "telemetry"
  | S_decisions -> "decisions"
  | S_evidence -> "evidence"

let stream_of = function
  | "telemetry" -> S_telemetry
  | "decisions" -> S_decisions
  | "evidence" -> S_evidence
  | s -> raise (J.Parse_error ("unknown stream " ^ s))

let fleet_fault_label = function
  | F_crash -> "crash"
  | F_restart -> "restart"
  | F_partition -> "partition"
  | F_heal -> "heal"

let fleet_fault_of = function
  | "crash" -> F_crash
  | "restart" -> F_restart
  | "partition" -> F_partition
  | "heal" -> F_heal
  | s -> raise (J.Parse_error ("unknown fleet fault " ^ s))

let tag name fields = J.Obj (("cmd", jstr name) :: fields)

let to_json = function
  | Hello { version } -> tag "hello" [ ("version", J.jint version) ]
  | Topo { dot } -> tag "topo" [ ("dot", jbool dot) ]
  | Ping { src; dst; count; load } ->
    tag "ping"
      [ ("src", jstr src); ("dst", jstr dst); ("count", J.jint count); ("load", jbool load) ]
  | Path_trace { src; dst; load } ->
    tag "trace" [ ("src", jstr src); ("dst", jstr dst); ("load", jbool load) ]
  | Perf { src; dst; load } ->
    tag "perf" [ ("src", jstr src); ("dst", jstr dst); ("load", jbool load) ]
  | Dump { a; b; load } -> tag "dump" [ ("a", jstr a); ("b", jstr b); ("load", jbool load) ]
  | Check -> tag "check" []
  | Heartbeat { degrade } -> tag "heartbeat" [ ("degrade", jopt jpair degrade) ]
  | Heal { src; dst; gbps; fault; factor; silent; flap; ms } ->
    tag "heal"
      [ ("src", jstr src); ("dst", jstr dst); ("gbps", J.jfloat gbps);
        ("fault", jopt jpair fault); ("factor", J.jfloat factor); ("silent", jbool silent);
        ("flap", jopt J.jint flap); ("ms", J.jfloat ms) ]
  | Scenario_list -> tag "scenario_list" []
  | Scenario { name; ms; protect } ->
    tag "scenario"
      [ ("name", jstr name); ("ms", J.jfloat ms); ("protect", jopt J.jfloat protect) ]
  | Monitor { ms; period_us; series; load } ->
    tag "monitor"
      [ ("ms", J.jfloat ms); ("period_us", J.jfloat period_us);
        ("series", jopt jstr series); ("load", jbool load) ]
  | Report { fidelity; load } ->
    tag "report" [ ("fidelity", jstr (fidelity_label fidelity)); ("load", jbool load) ]
  | Plan { pipes; hoses; headroom } ->
    tag "plan"
      [ ( "pipes",
          J.Arr
            (List.map
               (fun (s, d, g) -> J.Arr [ jstr s; jstr d; J.jfloat g ])
               pipes) );
        ( "hoses",
          J.Arr
            (List.map
               (fun (e, i, o) -> J.Arr [ jstr e; J.jfloat i; J.jfloat o ])
               hoses) );
        ("headroom", J.jfloat headroom) ]
  | Latency { link; ms; load } ->
    tag "latency" [ ("link", jbool link); ("ms", J.jfloat ms); ("load", jbool load) ]
  | Scan { ms; load; step; snapshot } ->
    tag "scan"
      [ ("ms", J.jfloat ms); ("load", jbool load); ("step", jopt J.jint step);
        ("snapshot", jbool snapshot) ]
  | Run_for { ms } -> tag "run_for" [ ("ms", J.jfloat ms) ]
  | Flow_start { tenant; src; dst; gbps } ->
    tag "flow_start"
      [ ("tenant", J.jint tenant); ("src", jstr src); ("dst", jstr dst);
        ("gbps", jopt J.jfloat gbps) ]
  | Flow_stop { flow } -> tag "flow_stop" [ ("flow", J.jint flow) ]
  | Submit i -> tag "submit" [ ("intent", intent_to_json i) ]
  | Fault_inject { a; b; factor; extra_us; loss } ->
    tag "fault_inject"
      [ ("a", jstr a); ("b", jstr b); ("factor", J.jfloat factor);
        ("extra_us", J.jfloat extra_us); ("loss", J.jfloat loss) ]
  | Fault_clear { a; b } -> tag "fault_clear" [ ("a", jstr a); ("b", jstr b) ]
  | Faults_clear_all -> tag "faults_clear_all" []
  | Subscribe s -> tag "subscribe" [ ("stream", jstr (stream_label s)) ]
  | Stats -> tag "stats" []
  | Shutdown -> tag "shutdown" []
  | Fleet_spawn { name; preset } ->
    tag "fleet_spawn" [ ("name", jstr name); ("preset", jstr preset) ]
  | Fleet_submit i -> tag "fleet_submit" [ ("intent", intent_to_json i) ]
  | Fleet_run { rounds } -> tag "fleet_run" [ ("rounds", J.jint rounds) ]
  | Fleet_status { decisions } -> tag "fleet_status" [ ("decisions", jbool decisions) ]
  | Fleet_fault { host; what } ->
    tag "fleet_fault" [ ("host", jstr host); ("what", jstr (fleet_fault_label what)) ]

let of_json j =
  let str k = J.as_string (J.field j k) in
  let num k = J.as_float (J.field j k) in
  let int k = J.as_int (J.field j k) in
  let bool k = J.as_bool (J.field j k) in
  let opt k f = opt_of (J.field j k) f in
  match
    match J.as_string (J.field j "cmd") with
    | "hello" -> Hello { version = int "version" }
    | "topo" -> Topo { dot = bool "dot" }
    | "ping" -> Ping { src = str "src"; dst = str "dst"; count = int "count"; load = bool "load" }
    | "trace" -> Path_trace { src = str "src"; dst = str "dst"; load = bool "load" }
    | "perf" -> Perf { src = str "src"; dst = str "dst"; load = bool "load" }
    | "dump" -> Dump { a = str "a"; b = str "b"; load = bool "load" }
    | "check" -> Check
    | "heartbeat" -> Heartbeat { degrade = opt "degrade" pair_of }
    | "heal" ->
      Heal
        { src = str "src"; dst = str "dst"; gbps = num "gbps"; fault = opt "fault" pair_of;
          factor = num "factor"; silent = bool "silent"; flap = opt "flap" J.as_int;
          ms = num "ms" }
    | "scenario_list" -> Scenario_list
    | "scenario" -> Scenario { name = str "name"; ms = num "ms"; protect = opt "protect" J.as_float }
    | "monitor" ->
      Monitor
        { ms = num "ms"; period_us = num "period_us"; series = opt "series" J.as_string;
          load = bool "load" }
    | "report" -> Report { fidelity = fidelity_of (str "fidelity"); load = bool "load" }
    | "plan" ->
      Plan
        { pipes =
            List.map
              (function
                | J.Arr [ s; d; g ] -> (J.as_string s, J.as_string d, J.as_float g)
                | _ -> raise (J.Parse_error "bad pipe"))
              (J.as_list (J.field j "pipes"));
          hoses =
            List.map
              (function
                | J.Arr [ e; i; o ] -> (J.as_string e, J.as_float i, J.as_float o)
                | _ -> raise (J.Parse_error "bad hose"))
              (J.as_list (J.field j "hoses"));
          headroom = num "headroom" }
    | "latency" -> Latency { link = bool "link"; ms = num "ms"; load = bool "load" }
    | "scan" ->
      Scan { ms = num "ms"; load = bool "load"; step = opt "step" J.as_int;
             snapshot = bool "snapshot" }
    | "run_for" -> Run_for { ms = num "ms" }
    | "flow_start" ->
      Flow_start
        { tenant = int "tenant"; src = str "src"; dst = str "dst";
          gbps = opt "gbps" J.as_float }
    | "flow_stop" -> Flow_stop { flow = int "flow" }
    | "submit" -> Submit (intent_of_json (J.field j "intent"))
    | "fault_inject" ->
      Fault_inject
        { a = str "a"; b = str "b"; factor = num "factor"; extra_us = num "extra_us";
          loss = num "loss" }
    | "fault_clear" -> Fault_clear { a = str "a"; b = str "b" }
    | "faults_clear_all" -> Faults_clear_all
    | "subscribe" -> Subscribe (stream_of (str "stream"))
    | "stats" -> Stats
    | "shutdown" -> Shutdown
    | "fleet_spawn" -> Fleet_spawn { name = str "name"; preset = str "preset" }
    | "fleet_submit" -> Fleet_submit (intent_of_json (J.field j "intent"))
    | "fleet_run" -> Fleet_run { rounds = int "rounds" }
    | "fleet_status" -> Fleet_status { decisions = bool "decisions" }
    | "fleet_fault" -> Fleet_fault { host = str "host"; what = fleet_fault_of (str "what") }
    | s -> raise (J.Parse_error ("unknown command tag " ^ s))
  with
  | c -> Ok c
  | exception J.Parse_error e -> Error e
