module J = Ihnet_record.Trace
module M = Ihnet_manager.Mgr_error

type t =
  | Mgr of M.t
  | Invalid of string
  | Failed of string
  | Protocol of string
  | Unsupported of string

exception Error of t

let exit_code = function
  | Invalid _ | Failed _ -> 1
  | Protocol _ -> 3
  | Unsupported _ -> 4
  | Mgr m -> (
    match m with
    | M.Invalid_intent _ -> 10
    | M.Unknown_device _ -> 11
    | M.No_home_socket _ -> 12
    | M.No_path _ -> 13
    | M.No_uplink _ -> 14
    | M.No_downlink _ -> 15
    | M.Capacity_exhausted _ -> 16
    | M.Not_a_pipe -> 17
    | M.No_alternate_path -> 18
    | M.Host_unreachable _ -> 19
    | M.Retries_exhausted _ -> 20
    | M.No_feasible_host _ -> 21)

let message = function
  | Mgr m -> M.to_string m
  | Invalid s | Failed s | Protocol s | Unsupported s -> s

let jstr s = J.Str s

let mgr_to_json m =
  let tag name fields = J.Obj (("mgr", jstr name) :: fields) in
  match m with
  | M.Invalid_intent s -> tag "invalid_intent" [ ("what", jstr s) ]
  | M.Unknown_device s -> tag "unknown_device" [ ("device", jstr s) ]
  | M.No_home_socket { device; socket } ->
    tag "no_home_socket" [ ("device", jstr device); ("socket", jstr socket) ]
  | M.No_path { src; dst } -> tag "no_path" [ ("src", jstr src); ("dst", jstr dst) ]
  | M.No_uplink s -> tag "no_uplink" [ ("endpoint", jstr s) ]
  | M.No_downlink s -> tag "no_downlink" [ ("endpoint", jstr s) ]
  | M.Capacity_exhausted { tenant; rate; best_ratio } ->
    tag "capacity_exhausted"
      [ ("tenant", J.jint tenant); ("rate", J.jfloat rate);
        ("best_ratio", J.jfloat best_ratio) ]
  | M.Not_a_pipe -> tag "not_a_pipe" []
  | M.No_alternate_path -> tag "no_alternate_path" []
  | M.Host_unreachable h -> tag "host_unreachable" [ ("host", jstr h) ]
  | M.Retries_exhausted { host; command } ->
    tag "retries_exhausted" [ ("host", jstr host); ("command", jstr command) ]
  | M.No_feasible_host { tenant } -> tag "no_feasible_host" [ ("tenant", J.jint tenant) ]

let mgr_of_json j =
  let str k = J.as_string (J.field j k) in
  match J.as_string (J.field j "mgr") with
  | "invalid_intent" -> M.Invalid_intent (str "what")
  | "unknown_device" -> M.Unknown_device (str "device")
  | "no_home_socket" -> M.No_home_socket { device = str "device"; socket = str "socket" }
  | "no_path" -> M.No_path { src = str "src"; dst = str "dst" }
  | "no_uplink" -> M.No_uplink (str "endpoint")
  | "no_downlink" -> M.No_downlink (str "endpoint")
  | "capacity_exhausted" ->
    M.Capacity_exhausted
      { tenant = J.as_int (J.field j "tenant");
        rate = J.as_float (J.field j "rate");
        best_ratio = J.as_float (J.field j "best_ratio") }
  | "not_a_pipe" -> M.Not_a_pipe
  | "no_alternate_path" -> M.No_alternate_path
  | "host_unreachable" -> M.Host_unreachable (str "host")
  | "retries_exhausted" -> M.Retries_exhausted { host = str "host"; command = str "command" }
  | "no_feasible_host" -> M.No_feasible_host { tenant = J.as_int (J.field j "tenant") }
  | s -> raise (J.Parse_error ("unknown mgr error tag " ^ s))

let to_json = function
  | Mgr m -> J.Obj [ ("err", jstr "mgr"); ("payload", mgr_to_json m) ]
  | Invalid s -> J.Obj [ ("err", jstr "invalid"); ("msg", jstr s) ]
  | Failed s -> J.Obj [ ("err", jstr "failed"); ("msg", jstr s) ]
  | Protocol s -> J.Obj [ ("err", jstr "protocol"); ("msg", jstr s) ]
  | Unsupported s -> J.Obj [ ("err", jstr "unsupported"); ("msg", jstr s) ]

let of_json j =
  match
    match J.as_string (J.field j "err") with
    | "mgr" -> Mgr (mgr_of_json (J.field j "payload"))
    | "invalid" -> Invalid (J.as_string (J.field j "msg"))
    | "failed" -> Failed (J.as_string (J.field j "msg"))
    | "protocol" -> Protocol (J.as_string (J.field j "msg"))
    | "unsupported" -> Unsupported (J.as_string (J.field j "msg"))
    | s -> raise (J.Parse_error ("unknown error tag " ^ s))
  with
  | e -> Ok e
  | exception J.Parse_error e -> Error e

let wrap f =
  match f () with
  | v -> Ok v
  | exception Error e -> Error e
  | exception Invalid_argument s -> Error (Invalid s)
  | exception Failure s -> Error (Failed s)
