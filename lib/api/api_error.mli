(** The typed error taxonomy of the command plane.

    Every refusal a command can produce — locally or across the
    [ihnetd] wire — is one of these, so clients match on the cause
    instead of grepping message strings, and the CLI maps each cause
    to a {e documented, stable} exit code (the old behavior collapsed
    everything to 1). Manager refusals travel as the full
    {!Ihnet_manager.Mgr_error.t} payload, not its rendering. *)

type t =
  | Mgr of Ihnet_manager.Mgr_error.t
      (** An admission/management refusal, verbatim from the manager. *)
  | Invalid of string  (** [Invalid_argument] from a lower layer. *)
  | Failed of string  (** [Failure] from a lower layer. *)
  | Protocol of string
      (** Wire-level trouble: connect/framing/decode/version. *)
  | Unsupported of string
      (** The daemon runs in the other mode (host vs fleet), or the
          command cannot be served remotely. *)

exception Error of t
(** Raised by client plumbing; handlers return [Err] responses
    instead. *)

val exit_code : t -> int
(** The CLI contract (also in doc/MODEL.md §17):
    [Invalid]/[Failed] → 1 (historical behavior), [Protocol] → 3,
    [Unsupported] → 4, and each {!Ihnet_manager.Mgr_error.t}
    constructor its own code, in declaration order:
    [Invalid_intent] 10, [Unknown_device] 11, [No_home_socket] 12,
    [No_path] 13, [No_uplink] 14, [No_downlink] 15,
    [Capacity_exhausted] 16, [Not_a_pipe] 17, [No_alternate_path] 18,
    [Host_unreachable] 19, [Retries_exhausted] 20,
    [No_feasible_host] 21. *)

val message : t -> string
(** What the CLI prints after "ihnetctl: " — for [Mgr] this is
    {!Ihnet_manager.Mgr_error.to_string}, byte-identical to the old
    string errors. *)

val to_json : t -> Ihnet_record.Trace.json
val of_json : Ihnet_record.Trace.json -> (t, string) result

val wrap : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching [Invalid_argument]/[Failure]/{!Error} into
    the taxonomy. *)
