module E = Ihnet_engine
module R = Ihnet_manager
module Mon = Ihnet_monitor
module C = Command
module Resp = Response

type client = {
  fd : Unix.file_descr;
  rd : Wire.reader;
  out : Buffer.t;
  mutable ooff : int;  (** Bytes of [out] already written. *)
  mutable hello : bool;
  mutable streams : C.stream list;
  mutable dead : bool;
  mutable closing : bool;  (** Close once [out] drains. *)
}

type t = {
  handlers : Handlers.t;
  path : string;
  listen_fd : Unix.file_descr;
  push_every : int;
  mutable clients : client list;
  mutable stopping : bool;
  mutable closed : bool;
  mutable last_push : int;
  mutable actions_seen : int;
  mutable evidence_seen : int;
}

let clients t = List.length (List.filter (fun c -> not c.dead) t.clients)

let enqueue c (resp : Resp.t) =
  Buffer.add_bytes c.out (Wire.encode (Resp.to_json resp))

let broadcast t stream ev =
  List.iter
    (fun c ->
      if (not c.dead) && (not c.closing) && c.hello && List.mem stream c.streams then
        enqueue c (Resp.Event ev))
    t.clients

let create ?(push_every = 64) handlers path =
  if Sys.file_exists path then Unix.unlink path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let t =
    {
      handlers;
      path;
      listen_fd;
      push_every;
      clients = [];
      stopping = false;
      closed = false;
      last_push = 0;
      actions_seen = 0;
      evidence_seen = 0;
    }
  in
  (* telemetry stream: decimated per-epoch samples off the fabric's own
     event bus, built from pure scan reads only *)
  (match Handlers.host handlers with
  | None -> ()
  | Some h ->
    E.Fabric.subscribe (Ihnet.Host.fabric h) (function
      | E.Fabric.Reallocated epoch when epoch - t.last_push >= t.push_every ->
        t.last_push <- epoch;
        (match Handlers.telemetry_sample handlers with
        | Some ev -> broadcast t C.S_telemetry ev
        | None -> ())
      | _ -> ()));
  t

(* decisions / evidence streams: deltas polled after each command *)
let poll_streams t =
  match Handlers.host t.handlers with
  | None -> ()
  | Some h ->
    (match Ihnet.Host.remediation h with
    | None -> ()
    | Some rem ->
      let n = R.Remediation.actions_count rem in
      if n > t.actions_seen then begin
        let fresh =
          List.filteri (fun i _ -> i >= t.actions_seen) (R.Remediation.actions rem)
        in
        t.actions_seen <- n;
        List.iter
          (fun (a : R.Remediation.action) ->
            broadcast t C.S_decisions
              (Resp.Ev_action
                 {
                   ev_at = a.R.Remediation.at;
                   ev_link = a.R.Remediation.action_link;
                   ev_stage = R.Remediation.stage_label a.R.Remediation.action_stage;
                   ev_detail = a.R.Remediation.detail;
                 }))
          fresh
      end);
    (match Ihnet.Host.evidence h with
    | None -> ()
    | Some ev ->
      let reports = Mon.Evidence.scan_reports ev in
      let n = List.length reports in
      if n < t.evidence_seen then t.evidence_seen <- 0;
      if n > t.evidence_seen then begin
        let fresh = List.filteri (fun i _ -> i >= t.evidence_seen) reports in
        t.evidence_seen <- n;
        List.iter
          (fun (link, m, score, at) ->
            broadcast t C.S_evidence
              (Resp.Ev_evidence
                 {
                   ev_at = at;
                   ev_link = link;
                   ev_modality = Mon.Evidence.modality_label m;
                   ev_score = score;
                 }))
          fresh
      end)

let close_client c =
  if not c.dead then begin
    c.dead <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let flush_client c =
  if (not c.dead) && Buffer.length c.out > c.ooff then begin
    let data = Buffer.contents c.out in
    let rec push () =
      let remaining = String.length data - c.ooff in
      if remaining > 0 then begin
        match Unix.write_substring c.fd data c.ooff remaining with
        | 0 -> close_client c
        | n ->
          c.ooff <- c.ooff + n;
          push ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> close_client c
      end
    in
    push ();
    if c.ooff >= String.length data then begin
      Buffer.clear c.out;
      c.ooff <- 0
    end
  end;
  if c.closing && (not c.dead) && Buffer.length c.out = c.ooff then close_client c

let protocol_error c msg =
  enqueue c (Resp.Err (Api_error.Protocol msg));
  c.closing <- true

(* one loop tick's worth of accepted commands, executed with maximal
   batchable runs folded into a single reallocation epoch *)
let execute t pending =
  Handlers.set_clients t.handlers (clients t);
  let exec_one (c, cmd) =
    let resp = Handlers.run t.handlers cmd in
    (match (cmd, resp) with
    | C.Subscribe s, Resp.Ack -> if not (List.mem s c.streams) then c.streams <- s :: c.streams
    | C.Shutdown, _ -> t.stopping <- true
    | _ -> ());
    enqueue c resp
  in
  let batch_run f =
    match Handlers.host t.handlers with
    | Some h -> E.Fabric.batch (Ihnet.Host.fabric h) f
    | None -> f ()
  in
  let rec go = function
    | [] -> ()
    | (_, cmd) :: _ as items when C.batchable cmd ->
      let rec split acc = function
        | (_, cmd') :: _ as rest when not (C.batchable cmd') -> (List.rev acc, rest)
        | item :: rest -> split (item :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let run, rest = split [] items in
      if List.length run >= 2 then batch_run (fun () -> List.iter exec_one run)
      else List.iter exec_one run;
      go rest
    | item :: rest ->
      exec_one item;
      go rest
  in
  go pending;
  if pending <> [] then poll_streams t

let read_client c pending =
  let buf = Bytes.create 4096 in
  let rec drain () =
    match Unix.read c.fd buf 0 4096 with
    | 0 -> close_client c
    | n ->
      Wire.feed c.rd buf n;
      drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_client c
  in
  (try drain () with Api_error.Error (Api_error.Protocol m) -> protocol_error c m);
  let rec frames () =
    if c.dead || c.closing then ()
    else
      match Wire.pop c.rd with
      | exception Api_error.Error (Api_error.Protocol m) -> protocol_error c m
      | None -> ()
      | Some j -> (
        match C.of_json j with
        | Error e -> protocol_error c ("bad command: " ^ e)
        | Ok cmd ->
          (if not c.hello then
             match cmd with
             | C.Hello { version } when version = C.version ->
               c.hello <- true;
               pending := (c, cmd) :: !pending
             | C.Hello { version } ->
               protocol_error c
                 (Printf.sprintf "protocol version mismatch: client v%d, daemon v%d" version
                    C.version)
             | _ -> protocol_error c "expected hello"
           else pending := (c, cmd) :: !pending);
          frames ())
  in
  frames ()

let accept_clients t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.clients <-
        t.clients
        @ [
            {
              fd;
              rd = Wire.reader ();
              out = Buffer.create 256;
              ooff = 0;
              hello = false;
              streams = [];
              dead = false;
              closing = false;
            };
          ];
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let cleanup t =
  if not t.closed then begin
    t.closed <- true;
    List.iter close_client t.clients;
    t.clients <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    if Sys.file_exists t.path then try Unix.unlink t.path with Sys_error _ -> ()
  end

let step ?(timeout = 0.1) t =
  if t.closed then false
  else begin
    let live = List.filter (fun c -> not c.dead) t.clients in
    let rfds = if t.stopping then [] else t.listen_fd :: List.map (fun c -> c.fd) live in
    let wfds =
      List.filter_map (fun c -> if Buffer.length c.out > c.ooff then Some c.fd else None) live
    in
    let readable, writable, _ =
      match Unix.select rfds wfds [] timeout with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.listen_fd readable then accept_clients t;
    let pending = ref [] in
    List.iter
      (fun c -> if List.mem c.fd readable then read_client c pending)
      live;
    execute t (List.rev !pending);
    List.iter
      (fun c ->
        if List.mem c.fd writable || Buffer.length c.out > c.ooff || c.closing then
          flush_client c)
      live;
    t.clients <- List.filter (fun c -> not c.dead) t.clients;
    if t.stopping then begin
      (* serve the already-queued replies, then close up shop *)
      List.iter
        (fun c ->
          if Buffer.length c.out > c.ooff then flush_client c;
          if Buffer.length c.out = c.ooff then close_client c)
        t.clients;
      t.clients <- List.filter (fun c -> not c.dead) t.clients;
      if t.clients = [] then begin
        cleanup t;
        false
      end
      else true
    end
    else true
  end

let serve t = while step t do () done

let stop t =
  if not t.closed then begin
    List.iter flush_client t.clients;
    cleanup t
  end
