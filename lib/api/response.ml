module J = Ihnet_record.Trace

type link_row = {
  l_id : int;
  l_kind : string;
  l_a : string;
  l_b : string;
  l_capacity : float;
  l_latency : float;
}

type trace_hop = {
  h_device : string;
  h_kind : string;
  h_class : int option;
  h_base : float;
  h_loaded : float;
  h_util : float;
}

type dump_row = {
  f_id : int;
  f_tenant : int;
  f_cls : string;
  f_src : string;
  f_dst : string;
  f_rate : float;
}

type suspect_row = { su_a : string; su_b : string; su_score : float }

type sketch_row = {
  lr_id : int;
  lr_route : string;
  lr_dir : string;
  lr_count : int;
  lr_p50 : float;
  lr_p99 : float;
  lr_p999 : float;
  lr_max : float;
}

type bottleneck_row = { bn_kind : string; bn_a : string; bn_b : string; bn_ratio : float }

type heal_info = {
  he_banner : string;
  he_rate : float;
  he_pre : float;
  he_post : float;
  he_ttd : float option;
  he_ttr : float option;
  he_status : string;
  he_timeline : string;
  he_slo : string;
}

type protect_info = {
  pr_note : string;
  pr_ms : float;
  pr_metrics : (string * string) list;
  pr_slo : string;
}

type scenario_info = {
  sc_name : string;
  sc_describe : string;
  sc_tenants : (int * string) list;
  sc_ms : float;
  sc_metrics : (string * string) list;
  sc_protect : protect_info option;
}

type scan_step = { st_n : int; st_epoch : int; st_digest : int64 }

type event =
  | Ev_telemetry of { ev_at : float; ev_epoch : int; ev_flows : int; ev_rate : float }
  | Ev_action of { ev_at : float; ev_link : int; ev_stage : string; ev_detail : string }
  | Ev_evidence of { ev_at : float; ev_link : int; ev_modality : string; ev_score : float }

type t =
  | Ack
  | Err of Api_error.t
  | Hello_ok of { version : int; mode : string; preset : string }
  | Event of event
  | Topo_report of { summary : string; config : string; links : link_row list }
  | Topo_dot of string
  | Ping_report of {
      src : string;
      dst : string;
      sent : int;
      lost : int;
      rtt : (float * float * float * float) option;
    }
  | Trace_report of { src : string; dst : string; hops : trace_hop list }
  | Perf_report of {
      src : string;
      dst : string;
      result : (float * float * float) option;
      bottleneck : (string * string * float) option;
    }
  | Dump_report of { a : string; b : string; found : bool; flows : dump_row list }
  | Check_report of string list
  | Heartbeat_report of {
      injected : (string * string) option;
      rounds : int;
      failing : int;
      first : float option;
      suspects : suspect_row list;
    }
  | Heal_report of heal_info
  | Scenario_names of (string * string) list
  | Scenario_unknown of string
  | Scenario_report of scenario_info
  | Csv of string
  | Health of string
  | Plan_report of {
      intents : int;
      headroom : float;
      fits : bool;
      scale : float;
      bottlenecks : bottleneck_row list;
    }
  | Latency_report of { flow : string option; link_table : bool; links : sketch_row list }
  | Scan_report of {
      epoch : int;
      regs : int;
      digest : int64;
      steps : scan_step list;
      drained : int option;
      snapshot : J.json option;
    }
  | Flow_ok of { flow : int }
  | Submit_ok of { tenant : int; placements : string list }
  | Stats_report of {
      now : float;
      epoch : int;
      flows : int;
      rate : float;
      reallocs : int;
      clients : int;
      commands : int;
    }
  | Fleet_status_report of {
      hosts : int;
      rounds : int;
      digest : int64;
      decisions : int64;
      text : string;
      decision_log : string list;
    }
  | Bye

(* {1 Codec} *)

let jstr s = J.Str s
let jbool b = J.Bool b
let jopt f = function None -> J.Null | Some v -> f v
let opt_of j f = match j with J.Null -> None | j -> Some (f j)
let jpair (a, b) = J.Arr [ jstr a; jstr b ]

let pair_of = function
  | J.Arr [ a; b ] -> (J.as_string a, J.as_string b)
  | _ -> raise (J.Parse_error "expected a two-string pair")

let jkvs kvs = J.Arr (List.map jpair kvs)
let kvs_of j = List.map pair_of (J.as_list j)
let jstrs ss = J.Arr (List.map jstr ss)
let strs_of j = List.map J.as_string (J.as_list j)

let link_row_to_json r =
  J.Obj
    [ ("id", J.jint r.l_id); ("kind", jstr r.l_kind); ("a", jstr r.l_a); ("b", jstr r.l_b);
      ("capacity", J.jfloat r.l_capacity); ("latency", J.jfloat r.l_latency) ]

let link_row_of_json j =
  { l_id = J.as_int (J.field j "id"); l_kind = J.as_string (J.field j "kind");
    l_a = J.as_string (J.field j "a"); l_b = J.as_string (J.field j "b");
    l_capacity = J.as_float (J.field j "capacity"); l_latency = J.as_float (J.field j "latency") }

let hop_to_json h =
  J.Obj
    [ ("device", jstr h.h_device); ("kind", jstr h.h_kind);
      ("class", jopt J.jint h.h_class); ("base", J.jfloat h.h_base);
      ("loaded", J.jfloat h.h_loaded); ("util", J.jfloat h.h_util) ]

let hop_of_json j =
  { h_device = J.as_string (J.field j "device"); h_kind = J.as_string (J.field j "kind");
    h_class = opt_of (J.field j "class") J.as_int; h_base = J.as_float (J.field j "base");
    h_loaded = J.as_float (J.field j "loaded"); h_util = J.as_float (J.field j "util") }

let dump_row_to_json r =
  J.Obj
    [ ("id", J.jint r.f_id); ("tenant", J.jint r.f_tenant); ("cls", jstr r.f_cls);
      ("src", jstr r.f_src); ("dst", jstr r.f_dst); ("rate", J.jfloat r.f_rate) ]

let dump_row_of_json j =
  { f_id = J.as_int (J.field j "id"); f_tenant = J.as_int (J.field j "tenant");
    f_cls = J.as_string (J.field j "cls"); f_src = J.as_string (J.field j "src");
    f_dst = J.as_string (J.field j "dst"); f_rate = J.as_float (J.field j "rate") }

let suspect_to_json s =
  J.Obj [ ("a", jstr s.su_a); ("b", jstr s.su_b); ("score", J.jfloat s.su_score) ]

let suspect_of_json j =
  { su_a = J.as_string (J.field j "a"); su_b = J.as_string (J.field j "b");
    su_score = J.as_float (J.field j "score") }

let sketch_row_to_json r =
  J.Obj
    [ ("id", J.jint r.lr_id); ("route", jstr r.lr_route); ("dir", jstr r.lr_dir);
      ("count", J.jint r.lr_count); ("p50", J.jfloat r.lr_p50); ("p99", J.jfloat r.lr_p99);
      ("p999", J.jfloat r.lr_p999); ("max", J.jfloat r.lr_max) ]

let sketch_row_of_json j =
  { lr_id = J.as_int (J.field j "id"); lr_route = J.as_string (J.field j "route");
    lr_dir = J.as_string (J.field j "dir"); lr_count = J.as_int (J.field j "count");
    lr_p50 = J.as_float (J.field j "p50"); lr_p99 = J.as_float (J.field j "p99");
    lr_p999 = J.as_float (J.field j "p999"); lr_max = J.as_float (J.field j "max") }

let bottleneck_to_json b =
  J.Obj
    [ ("kind", jstr b.bn_kind); ("a", jstr b.bn_a); ("b", jstr b.bn_b);
      ("ratio", J.jfloat b.bn_ratio) ]

let bottleneck_of_json j =
  { bn_kind = J.as_string (J.field j "kind"); bn_a = J.as_string (J.field j "a");
    bn_b = J.as_string (J.field j "b"); bn_ratio = J.as_float (J.field j "ratio") }

let heal_to_json h =
  J.Obj
    [ ("banner", jstr h.he_banner); ("rate", J.jfloat h.he_rate); ("pre", J.jfloat h.he_pre);
      ("post", J.jfloat h.he_post); ("ttd", jopt J.jfloat h.he_ttd);
      ("ttr", jopt J.jfloat h.he_ttr); ("status", jstr h.he_status);
      ("timeline", jstr h.he_timeline); ("slo", jstr h.he_slo) ]

let heal_of_json j =
  { he_banner = J.as_string (J.field j "banner"); he_rate = J.as_float (J.field j "rate");
    he_pre = J.as_float (J.field j "pre"); he_post = J.as_float (J.field j "post");
    he_ttd = opt_of (J.field j "ttd") J.as_float; he_ttr = opt_of (J.field j "ttr") J.as_float;
    he_status = J.as_string (J.field j "status");
    he_timeline = J.as_string (J.field j "timeline"); he_slo = J.as_string (J.field j "slo") }

let protect_to_json p =
  J.Obj
    [ ("note", jstr p.pr_note); ("ms", J.jfloat p.pr_ms); ("metrics", jkvs p.pr_metrics);
      ("slo", jstr p.pr_slo) ]

let protect_of_json j =
  { pr_note = J.as_string (J.field j "note"); pr_ms = J.as_float (J.field j "ms");
    pr_metrics = kvs_of (J.field j "metrics"); pr_slo = J.as_string (J.field j "slo") }

let scenario_to_json s =
  J.Obj
    [ ("name", jstr s.sc_name); ("describe", jstr s.sc_describe);
      ( "tenants",
        J.Arr (List.map (fun (i, r) -> J.Arr [ J.jint i; jstr r ]) s.sc_tenants) );
      ("ms", J.jfloat s.sc_ms); ("metrics", jkvs s.sc_metrics);
      ("protect", jopt protect_to_json s.sc_protect) ]

let scenario_of_json j =
  { sc_name = J.as_string (J.field j "name");
    sc_describe = J.as_string (J.field j "describe");
    sc_tenants =
      List.map
        (function
          | J.Arr [ i; r ] -> (J.as_int i, J.as_string r)
          | _ -> raise (J.Parse_error "bad tenant row"))
        (J.as_list (J.field j "tenants"));
    sc_ms = J.as_float (J.field j "ms"); sc_metrics = kvs_of (J.field j "metrics");
    sc_protect = opt_of (J.field j "protect") protect_of_json }

let step_to_json s =
  J.Obj [ ("n", J.jint s.st_n); ("epoch", J.jint s.st_epoch); ("digest", J.jhash s.st_digest) ]

let step_of_json j =
  { st_n = J.as_int (J.field j "n"); st_epoch = J.as_int (J.field j "epoch");
    st_digest = J.as_hash (J.field j "digest") }

let event_to_json = function
  | Ev_telemetry { ev_at; ev_epoch; ev_flows; ev_rate } ->
    J.Obj
      [ ("ev", jstr "telemetry"); ("at", J.jfloat ev_at); ("epoch", J.jint ev_epoch);
        ("flows", J.jint ev_flows); ("rate", J.jfloat ev_rate) ]
  | Ev_action { ev_at; ev_link; ev_stage; ev_detail } ->
    J.Obj
      [ ("ev", jstr "action"); ("at", J.jfloat ev_at); ("link", J.jint ev_link);
        ("stage", jstr ev_stage); ("detail", jstr ev_detail) ]
  | Ev_evidence { ev_at; ev_link; ev_modality; ev_score } ->
    J.Obj
      [ ("ev", jstr "evidence"); ("at", J.jfloat ev_at); ("link", J.jint ev_link);
        ("modality", jstr ev_modality); ("score", J.jfloat ev_score) ]

let event_of_json j =
  match J.as_string (J.field j "ev") with
  | "telemetry" ->
    Ev_telemetry
      { ev_at = J.as_float (J.field j "at"); ev_epoch = J.as_int (J.field j "epoch");
        ev_flows = J.as_int (J.field j "flows"); ev_rate = J.as_float (J.field j "rate") }
  | "action" ->
    Ev_action
      { ev_at = J.as_float (J.field j "at"); ev_link = J.as_int (J.field j "link");
        ev_stage = J.as_string (J.field j "stage");
        ev_detail = J.as_string (J.field j "detail") }
  | "evidence" ->
    Ev_evidence
      { ev_at = J.as_float (J.field j "at"); ev_link = J.as_int (J.field j "link");
        ev_modality = J.as_string (J.field j "modality");
        ev_score = J.as_float (J.field j "score") }
  | s -> raise (J.Parse_error ("unknown event tag " ^ s))

let tag name fields = J.Obj (("resp", jstr name) :: fields)

let to_json = function
  | Ack -> tag "ack" []
  | Err e -> tag "err" [ ("error", Api_error.to_json e) ]
  | Hello_ok { version; mode; preset } ->
    tag "hello_ok"
      [ ("version", J.jint version); ("mode", jstr mode); ("preset", jstr preset) ]
  | Event e -> tag "event" [ ("event", event_to_json e) ]
  | Topo_report { summary; config; links } ->
    tag "topo"
      [ ("summary", jstr summary); ("config", jstr config);
        ("links", J.Arr (List.map link_row_to_json links)) ]
  | Topo_dot s -> tag "topo_dot" [ ("dot", jstr s) ]
  | Ping_report { src; dst; sent; lost; rtt } ->
    tag "ping"
      [ ("src", jstr src); ("dst", jstr dst); ("sent", J.jint sent); ("lost", J.jint lost);
        ( "rtt",
          jopt
            (fun (mn, p50, p99, mx) ->
              J.Arr [ J.jfloat mn; J.jfloat p50; J.jfloat p99; J.jfloat mx ])
            rtt ) ]
  | Trace_report { src; dst; hops } ->
    tag "trace"
      [ ("src", jstr src); ("dst", jstr dst); ("hops", J.Arr (List.map hop_to_json hops)) ]
  | Perf_report { src; dst; result; bottleneck } ->
    tag "perf"
      [ ("src", jstr src); ("dst", jstr dst);
        ( "result",
          jopt (fun (b, d, r) -> J.Arr [ J.jfloat b; J.jfloat d; J.jfloat r ]) result );
        ( "bottleneck",
          jopt (fun (a, b, u) -> J.Arr [ jstr a; jstr b; J.jfloat u ]) bottleneck ) ]
  | Dump_report { a; b; found; flows } ->
    tag "dump"
      [ ("a", jstr a); ("b", jstr b); ("found", jbool found);
        ("flows", J.Arr (List.map dump_row_to_json flows)) ]
  | Check_report findings -> tag "check" [ ("findings", jstrs findings) ]
  | Heartbeat_report { injected; rounds; failing; first; suspects } ->
    tag "heartbeat"
      [ ("injected", jopt jpair injected); ("rounds", J.jint rounds);
        ("failing", J.jint failing); ("first", jopt J.jfloat first);
        ("suspects", J.Arr (List.map suspect_to_json suspects)) ]
  | Heal_report h -> tag "heal" [ ("heal", heal_to_json h) ]
  | Scenario_names names -> tag "scenario_names" [ ("names", jkvs names) ]
  | Scenario_unknown name -> tag "scenario_unknown" [ ("name", jstr name) ]
  | Scenario_report s -> tag "scenario" [ ("scenario", scenario_to_json s) ]
  | Csv s -> tag "csv" [ ("csv", jstr s) ]
  | Health s -> tag "health" [ ("text", jstr s) ]
  | Plan_report { intents; headroom; fits; scale; bottlenecks } ->
    tag "plan"
      [ ("intents", J.jint intents); ("headroom", J.jfloat headroom); ("fits", jbool fits);
        ("scale", J.jfloat scale);
        ("bottlenecks", J.Arr (List.map bottleneck_to_json bottlenecks)) ]
  | Latency_report { flow; link_table; links } ->
    tag "latency"
      [ ("flow", jopt jstr flow); ("link_table", jbool link_table);
        ("links", J.Arr (List.map sketch_row_to_json links)) ]
  | Scan_report { epoch; regs; digest; steps; drained; snapshot } ->
    tag "scan"
      [ ("epoch", J.jint epoch); ("regs", J.jint regs); ("digest", J.jhash digest);
        ("steps", J.Arr (List.map step_to_json steps)); ("drained", jopt J.jint drained);
        ("snapshot", jopt (fun s -> s) snapshot) ]
  | Flow_ok { flow } -> tag "flow_ok" [ ("flow", J.jint flow) ]
  | Submit_ok { tenant; placements } ->
    tag "submit_ok" [ ("tenant", J.jint tenant); ("placements", jstrs placements) ]
  | Stats_report { now; epoch; flows; rate; reallocs; clients; commands } ->
    tag "stats"
      [ ("now", J.jfloat now); ("epoch", J.jint epoch); ("flows", J.jint flows);
        ("rate", J.jfloat rate); ("reallocs", J.jint reallocs); ("clients", J.jint clients);
        ("commands", J.jint commands) ]
  | Fleet_status_report { hosts; rounds; digest; decisions; text; decision_log } ->
    tag "fleet_status"
      [ ("hosts", J.jint hosts); ("rounds", J.jint rounds); ("digest", J.jhash digest);
        ("decisions", J.jhash decisions); ("text", jstr text);
        ("decision_log", jstrs decision_log) ]
  | Bye -> tag "bye" []

let of_json j =
  let str k = J.as_string (J.field j k) in
  let int k = J.as_int (J.field j k) in
  let num k = J.as_float (J.field j k) in
  let bool k = J.as_bool (J.field j k) in
  let opt k f = opt_of (J.field j k) f in
  let list k f = List.map f (J.as_list (J.field j k)) in
  match
    match J.as_string (J.field j "resp") with
    | "ack" -> Ack
    | "err" -> (
      match Api_error.of_json (J.field j "error") with
      | Ok e -> Err e
      | Error e -> raise (J.Parse_error e))
    | "hello_ok" -> Hello_ok { version = int "version"; mode = str "mode"; preset = str "preset" }
    | "event" -> Event (event_of_json (J.field j "event"))
    | "topo" ->
      Topo_report
        { summary = str "summary"; config = str "config"; links = list "links" link_row_of_json }
    | "topo_dot" -> Topo_dot (str "dot")
    | "ping" ->
      Ping_report
        { src = str "src"; dst = str "dst"; sent = int "sent"; lost = int "lost";
          rtt =
            opt "rtt" (function
              | J.Arr [ mn; p50; p99; mx ] ->
                (J.as_float mn, J.as_float p50, J.as_float p99, J.as_float mx)
              | _ -> raise (J.Parse_error "bad rtt")) }
    | "trace" -> Trace_report { src = str "src"; dst = str "dst"; hops = list "hops" hop_of_json }
    | "perf" ->
      Perf_report
        { src = str "src"; dst = str "dst";
          result =
            opt "result" (function
              | J.Arr [ b; d; r ] -> (J.as_float b, J.as_float d, J.as_float r)
              | _ -> raise (J.Parse_error "bad perf result"));
          bottleneck =
            opt "bottleneck" (function
              | J.Arr [ a; b; u ] -> (J.as_string a, J.as_string b, J.as_float u)
              | _ -> raise (J.Parse_error "bad bottleneck")) }
    | "dump" ->
      Dump_report
        { a = str "a"; b = str "b"; found = bool "found"; flows = list "flows" dump_row_of_json }
    | "check" -> Check_report (strs_of (J.field j "findings"))
    | "heartbeat" ->
      Heartbeat_report
        { injected = opt "injected" pair_of; rounds = int "rounds"; failing = int "failing";
          first = opt "first" J.as_float; suspects = list "suspects" suspect_of_json }
    | "heal" -> Heal_report (heal_of_json (J.field j "heal"))
    | "scenario_names" -> Scenario_names (kvs_of (J.field j "names"))
    | "scenario_unknown" -> Scenario_unknown (str "name")
    | "scenario" -> Scenario_report (scenario_of_json (J.field j "scenario"))
    | "csv" -> Csv (str "csv")
    | "health" -> Health (str "text")
    | "plan" ->
      Plan_report
        { intents = int "intents"; headroom = num "headroom"; fits = bool "fits";
          scale = num "scale"; bottlenecks = list "bottlenecks" bottleneck_of_json }
    | "latency" ->
      Latency_report
        { flow = opt "flow" J.as_string; link_table = bool "link_table";
          links = list "links" sketch_row_of_json }
    | "scan" ->
      Scan_report
        { epoch = int "epoch"; regs = int "regs"; digest = J.as_hash (J.field j "digest");
          steps = list "steps" step_of_json; drained = opt "drained" J.as_int;
          snapshot = opt "snapshot" (fun s -> s) }
    | "flow_ok" -> Flow_ok { flow = int "flow" }
    | "submit_ok" ->
      Submit_ok { tenant = int "tenant"; placements = strs_of (J.field j "placements") }
    | "stats" ->
      Stats_report
        { now = num "now"; epoch = int "epoch"; flows = int "flows"; rate = num "rate";
          reallocs = int "reallocs"; clients = int "clients"; commands = int "commands" }
    | "fleet_status" ->
      Fleet_status_report
        { hosts = int "hosts"; rounds = int "rounds"; digest = J.as_hash (J.field j "digest");
          decisions = J.as_hash (J.field j "decisions"); text = str "text";
          decision_log = strs_of (J.field j "decision_log") }
    | "bye" -> Bye
    | s -> raise (J.Parse_error ("unknown response tag " ^ s))
  with
  | r -> Ok r
  | exception J.Parse_error e -> Error e
