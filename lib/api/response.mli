(** Typed responses to {!Command}s, and the streamed event frames.

    Each response carries the {e data} a command produced; the
    presentation lives in {!Render}, which reproduces the historical
    [ihnetctl] output byte-for-byte from these payloads. Where a
    payload is the rendering of a library pretty-printer (remediation
    timelines, SLO reports, health reports, fleet summaries), the
    handler pre-renders it host-side and the response carries the
    string — those are views, not state, and the daemon is the only
    side holding the objects.

    Responses round-trip over {!Ihnet_record.Trace}'s JSON model
    exactly: [of_json (to_json r) = Ok r], floats (including
    [inf]/[nan]) by IEEE-754 bits, digests as full [int64]s. *)

type link_row = {
  l_id : int;
  l_kind : string;
  l_a : string;
  l_b : string;
  l_capacity : float;
  l_latency : float;
}

type trace_hop = {
  h_device : string;
  h_kind : string;
  h_class : int option;
  h_base : float;
  h_loaded : float;
  h_util : float;
}

type dump_row = {
  f_id : int;
  f_tenant : int;
  f_cls : string;
  f_src : string;
  f_dst : string;
  f_rate : float;
}

type suspect_row = { su_a : string; su_b : string; su_score : float }

type sketch_row = {
  lr_id : int;
  lr_route : string;
  lr_dir : string;
  lr_count : int;
  lr_p50 : float;
  lr_p99 : float;
  lr_p999 : float;
  lr_max : float;
}

type bottleneck_row = { bn_kind : string; bn_a : string; bn_b : string; bn_ratio : float }

type heal_info = {
  he_banner : string;  (** The "[degrading ...]" / "[flapping ...]" line. *)
  he_rate : float;
  he_pre : float;
  he_post : float;
  he_ttd : float option;
  he_ttr : float option;
  he_status : string;  (** Pre-rendered {!Ihnet_manager.Remediation.pp_status}. *)
  he_timeline : string;  (** Pre-rendered {!Ihnet_manager.Remediation.pp_timeline}. *)
  he_slo : string;  (** Pre-rendered {!Ihnet_manager.Slo.pp}. *)
}

type protect_info = {
  pr_note : string;  (** The "[tenant 1 protected ...]" / rejection line. *)
  pr_ms : float;
  pr_metrics : (string * string) list;
  pr_slo : string;
}

type scenario_info = {
  sc_name : string;
  sc_describe : string;
  sc_tenants : (int * string) list;
  sc_ms : float;
  sc_metrics : (string * string) list;
  sc_protect : protect_info option;
}

type scan_step = { st_n : int; st_epoch : int; st_digest : int64 }

type event =
  | Ev_telemetry of { ev_at : float; ev_epoch : int; ev_flows : int; ev_rate : float }
  | Ev_action of { ev_at : float; ev_link : int; ev_stage : string; ev_detail : string }
  | Ev_evidence of { ev_at : float; ev_link : int; ev_modality : string; ev_score : float }

type t =
  | Ack
  | Err of Api_error.t
  | Hello_ok of { version : int; mode : string; preset : string }
  | Event of event  (** A subscription frame, not a command reply. *)
  | Topo_report of { summary : string; config : string; links : link_row list }
  | Topo_dot of string
  | Ping_report of {
      src : string;
      dst : string;
      sent : int;
      lost : int;
      rtt : (float * float * float * float) option;  (** min/p50/p99/max. *)
    }
  | Trace_report of { src : string; dst : string; hops : trace_hop list }
  | Perf_report of {
      src : string;
      dst : string;
      result : (float * float * float) option;  (** bytes, duration, rate. *)
      bottleneck : (string * string * float) option;
    }
  | Dump_report of { a : string; b : string; found : bool; flows : dump_row list }
  | Check_report of string list  (** Findings; empty means clean. *)
  | Heartbeat_report of {
      injected : (string * string) option;
      rounds : int;
      failing : int;
      first : float option;
      suspects : suspect_row list;
    }
  | Heal_report of heal_info
  | Scenario_names of (string * string) list
  | Scenario_unknown of string
  | Scenario_report of scenario_info
  | Csv of string
  | Health of string  (** Pre-rendered {!Ihnet_monitor.Health.pp}. *)
  | Plan_report of {
      intents : int;
      headroom : float;
      fits : bool;
      scale : float;
      bottlenecks : bottleneck_row list;
    }
  | Latency_report of {
      flow : string option;  (** Pre-rendered {!Ihnet_util.Sketch.pp}, when any flow completed. *)
      link_table : bool;
      links : sketch_row list;
    }
  | Scan_report of {
      epoch : int;
      regs : int;
      digest : int64;
      steps : scan_step list;
      drained : int option;  (** Steps completed when the queue drained early. *)
      snapshot : Ihnet_record.Trace.json option;
          (** Full {!Ihnet_record.Scanport} snapshot, when requested. *)
    }
  | Flow_ok of { flow : int }
  | Submit_ok of { tenant : int; placements : string list }
  | Stats_report of {
      now : float;
      epoch : int;
      flows : int;
      rate : float;
      reallocs : int;
      clients : int;
      commands : int;
    }
  | Fleet_status_report of {
      hosts : int;
      rounds : int;
      digest : int64;
      decisions : int64;
      text : string;  (** Pre-rendered {!Ihnet_fleet.Controller.pp}. *)
      decision_log : string list;
    }
  | Bye  (** Reply to [Shutdown]. *)

val to_json : t -> Ihnet_record.Trace.json
val of_json : Ihnet_record.Trace.json -> (t, string) result
