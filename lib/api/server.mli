(** The [ihnetd] serving loop: one live target, N concurrent clients.

    A single-threaded select/accept loop over a Unix-domain socket.
    Each connection must open with {!Command.Hello} at the current
    protocol version; everything after that is length-prefixed
    {!Command}/{!Response} frames ({!Wire}).

    {b Batching.} All complete frames readable in one loop tick are
    ingested together, and maximal consecutive runs of
    {!Command.batchable} mutations (flow starts/stops, fault
    injections/clears — across clients, in arrival order) execute
    under one {!Ihnet_engine.Fabric.batch}, so a burst of commands
    costs one reallocation epoch instead of one per command. Replies
    still go back per command, in order, to the issuing client.

    {b Streams.} [Subscribe]d clients receive [Event] frames pushed
    between replies: telemetry every [push_every]-th reallocation
    epoch (from a fabric event listener, using only pure [scan_*]
    reads), and remediation-action / evidence-report deltas polled
    after each executed command.

    {b Recording.} The server does not record by itself — attach a
    {!Ihnet_record.Recorder} to the target's fabric before serving
    (as [bin/ihnetd.ml] does) and every accepted mutation lands in
    the trace through the fabric's own event stream, so the whole
    session replays bit-for-bit. *)

type t

val create : ?push_every:int -> Handlers.t -> string -> t
(** [create handlers path] binds and listens on Unix-domain socket
    [path] (unlinking a stale one first). [push_every] (default 64)
    is the telemetry stream's epoch decimation.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val step : ?timeout:float -> t -> bool
(** One select round: accept, read, execute, push, flush. [timeout]
    (seconds, default 0.1) bounds the select wait. Returns [false]
    once the server has fully shut down (a [Shutdown] was served and
    every reply flushed) — callers loop on it. *)

val serve : t -> unit
(** Loop {!step} until shutdown. *)

val stop : t -> unit
(** Force shutdown: flush what is writable without blocking, close
    every connection and the listening socket, remove the socket
    file. Idempotent; {!serve} callers reach it through [Shutdown]
    instead. *)

val clients : t -> int
(** Live connections. *)
