(** The typed command surface of the control plane.

    Every operation [ihnetctl] can perform — topology inspection, the
    ih* diagnostics, heartbeat/heal runs, scenarios, monitoring,
    planning, latency sketches, out-of-band scans, flow and fault
    mutations, subscriptions and fleet operations — as one variant.
    The CLI builds these from flags; [ihnetd] decodes them off the
    wire; {!Handlers} executes them against a live host either way.

    Commands serialize over {!Ihnet_record.Trace}'s float-exact JSON
    model, so a command round-trips bit-for-bit:
    [of_json (to_json c) = Ok c]. *)

val version : int
(** Wire protocol version, carried in {!Hello} and checked by the
    daemon before anything else. *)

type fidelity = Fid_hardware | Fid_software | Fid_oracle

type stream =
  | S_telemetry  (** Per-epoch flow-count / aggregate-rate samples. *)
  | S_decisions  (** Remediation actions as they are taken. *)
  | S_evidence  (** Evidence-gate scan reports. *)

type fleet_fault = F_crash | F_restart | F_partition | F_heal

type t =
  | Hello of { version : int }
      (** Must be the first command on a connection. *)
  | Topo of { dot : bool }
  | Ping of { src : string; dst : string; count : int; load : bool }
  | Path_trace of { src : string; dst : string; load : bool }
  | Perf of { src : string; dst : string; load : bool }
  | Dump of { a : string; b : string; load : bool }
  | Check
  | Heartbeat of { degrade : (string * string) option }
  | Heal of {
      src : string;
      dst : string;
      gbps : float;
      fault : (string * string) option;
      factor : float;
      silent : bool;
      flap : int option;
      ms : float;
    }
  | Scenario_list
  | Scenario of { name : string; ms : float; protect : float option }
  | Monitor of { ms : float; period_us : float; series : string option; load : bool }
  | Report of { fidelity : fidelity; load : bool }
  | Plan of {
      pipes : (string * string * float) list;
      hoses : (string * float * float) list;
      headroom : float;
    }
  | Latency of { link : bool; ms : float; load : bool }
  | Scan of { ms : float; load : bool; step : int option; snapshot : bool }
  | Run_for of { ms : float }
  | Flow_start of { tenant : int; src : string; dst : string; gbps : float option }
  | Flow_stop of { flow : int }
  | Submit of Ihnet_manager.Intent.t
  | Fault_inject of { a : string; b : string; factor : float; extra_us : float; loss : float }
  | Fault_clear of { a : string; b : string }
  | Faults_clear_all
  | Subscribe of stream
  | Stats
  | Shutdown
  | Fleet_spawn of { name : string; preset : string }
  | Fleet_submit of Ihnet_manager.Intent.t
  | Fleet_run of { rounds : int }
  | Fleet_status of { decisions : bool }
  | Fleet_fault of { host : string; what : fleet_fault }

val batchable : t -> bool
(** Commands the daemon may group into one reallocation epoch
    ({!Ihnet_engine.Fabric.batch}): flow starts/stops and fault
    mutations. Admission ([Submit]) is excluded — it must observe the
    rates its predecessors produced. *)

val intent_to_json : Ihnet_manager.Intent.t -> Ihnet_record.Trace.json
val intent_of_json : Ihnet_record.Trace.json -> Ihnet_manager.Intent.t
(** @raise Ihnet_record.Trace.Parse_error on malformed input. *)

val to_json : t -> Ihnet_record.Trace.json
val of_json : Ihnet_record.Trace.json -> (t, string) result
