(** CLI presentation of {!Response}s.

    [ihnetctl]'s historical output, reproduced byte-for-byte from the
    typed payloads — the same renderer runs whether the response came
    from an in-process host or off an [ihnetd] socket, which is what
    makes the two transports indistinguishable at the terminal.

    Stdout/stderr targeting, [Printf] vs [Format] interleaving, and
    every format string are copied from the pre-extraction
    [bin/ihnetctl.ml] so the CLI smoke expectations keep passing
    unchanged. *)

val print : Response.t -> unit
(** Print the response the way the old subcommand body did. Does not
    exit; pair with {!exit_code}. *)

val exit_code : Response.t -> int
(** The documented exit status for the response: 0 on success;
    {!Api_error.exit_code} for [Err]; 1 for non-empty check findings,
    a plan that does not fit, and an unknown scenario (all historical
    behavior). *)
