module T = Ihnet_topology

type t = {
  preset : Ihnet.Host.preset;
  preset_name : string;
  ddio : bool option;
  iommu : bool option;
  mps : int option;
  domains : int option;
  seed : int option;
}

let preset_of_name = function
  | "two-socket" -> Ok Ihnet.Host.Two_socket
  | "dgx" -> Ok Ihnet.Host.Dgx
  | "epyc" -> Ok Ihnet.Host.Epyc
  | "minimal" -> Ok Ihnet.Host.Minimal
  | s -> Error (Printf.sprintf "unknown preset %S (two-socket|dgx|epyc|minimal)" s)

let preset_name = function
  | Ihnet.Host.Two_socket -> "two-socket"
  | Ihnet.Host.Dgx -> "dgx"
  | Ihnet.Host.Epyc -> "epyc"
  | Ihnet.Host.Minimal -> "minimal"
  | Ihnet.Host.Custom _ -> "custom"

let load_topo_file path =
  match
    In_channel.with_open_text path In_channel.input_all
  with
  | exception Sys_error e -> Error e
  | text -> T.Spec.parse text

let make ?(preset = Ihnet.Host.Two_socket) ?topo_file ?ddio ?iommu ?mps ?domains ?seed () =
  let preset =
    match topo_file with
    | None -> preset
    | Some path -> (
      match load_topo_file path with
      | Ok topo -> Ihnet.Host.Custom topo
      | Error e -> failwith (path ^ ": " ^ e))
  in
  { preset; preset_name = preset_name preset; ddio; iommu; mps; domains; seed }

let default = make ()

let config t =
  let c = T.Hostconfig.default in
  let c =
    match t.ddio with
    | Some false -> { c with T.Hostconfig.ddio = T.Hostconfig.Ddio_off }
    | Some true | None -> c
  in
  let c =
    match t.iommu with
    | Some false -> { c with T.Hostconfig.iommu = T.Hostconfig.Iommu_off }
    | Some true | None -> c
  in
  match t.mps with Some m -> { c with T.Hostconfig.pcie_mps = m } | None -> c

let create_host t =
  Ihnet.Host.create ~config:(config t) ?domains:t.domains ?seed:t.seed t.preset

let topology t =
  let config = config t in
  match t.preset with
  | Ihnet.Host.Two_socket -> T.Builder.two_socket_server ~config ()
  | Ihnet.Host.Dgx -> T.Builder.dgx_like ~config ()
  | Ihnet.Host.Epyc -> T.Builder.epyc_like ~config ()
  | Ihnet.Host.Minimal | Ihnet.Host.Custom _ -> T.Builder.minimal ~config ()

let device_id topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> failwith ("no device " ^ name)
