module J = Ihnet_record.Trace

let max_frame = 16 * 1024 * 1024

let protocol fmt = Printf.ksprintf (fun s -> raise (Api_error.Error (Api_error.Protocol s))) fmt

let encode json =
  let payload = Bytes.of_string (J.json_to_string json) in
  let n = Bytes.length payload in
  if n > max_frame then protocol "frame too large (%d bytes)" n;
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit payload 0 buf 4 n;
  buf

let write_frame fd json =
  let buf = encode json in
  let rec push off =
    if off < Bytes.length buf then begin
      let w =
        try Unix.write fd buf off (Bytes.length buf - off)
        with Unix.Unix_error (e, _, _) -> protocol "write: %s" (Unix.error_message e)
      in
      if w = 0 then protocol "write: connection closed";
      push (off + w)
    end
  in
  push 0

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let r =
        try Unix.read fd buf off len
        with Unix.Unix_error (e, _, _) -> protocol "read: %s" (Unix.error_message e)
      in
      if r = 0 then protocol "read: truncated frame";
      go (off + r) (len - r)
    end
  in
  go off len

let parse_payload s =
  match J.json_of_string s with
  | j -> j
  | exception J.Parse_error e -> protocol "bad frame: %s" e

let read_frame fd =
  let hdr = Bytes.create 4 in
  let first =
    try Unix.read fd hdr 0 4
    with Unix.Unix_error (e, _, _) -> protocol "read: %s" (Unix.error_message e)
  in
  if first = 0 then None
  else begin
    really_read fd hdr first (4 - first);
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then protocol "bad frame length %d" n;
    let payload = Bytes.create n in
    really_read fd payload 0 n;
    Some (parse_payload (Bytes.unsafe_to_string payload))
  end

(* {1 Incremental reading} *)

type reader = { mutable buf : Buffer.t }

let reader () = { buf = Buffer.create 256 }

let feed r buf n = Buffer.add_subbytes r.buf buf 0 n

let pop r =
  let len = Buffer.length r.buf in
  if len < 4 then None
  else begin
    let hdr = Buffer.sub r.buf 0 4 in
    let n =
      Int32.to_int (Bytes.get_int32_be (Bytes.unsafe_of_string hdr) 0)
    in
    if n < 0 || n > max_frame then protocol "bad frame length %d" n;
    if len < 4 + n then None
    else begin
      let payload = Buffer.sub r.buf 4 n in
      let rest = Buffer.sub r.buf (4 + n) (len - 4 - n) in
      let fresh = Buffer.create (max 256 (String.length rest)) in
      Buffer.add_string fresh rest;
      r.buf <- fresh;
      Some (parse_payload payload)
    end
  end

let pending r = Buffer.length r.buf
