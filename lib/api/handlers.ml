module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager
module Rec = Ihnet_record
module F = Ihnet_fleet
module C = Command
module Resp = Response

type target =
  | Host of Ihnet.Host.t
  | Fleet of F.Controller.t

type t = {
  target : target;
  spec : Host_spec.t;
  recorder : Rec.Recorder.t option;
  mutable commands : int;
  mutable clients : int;
  mutable rem_observed : bool;
}

let create ?recorder ~spec target =
  { target; spec; recorder; commands = 0; clients = 0; rem_observed = false }

let local spec = create ~spec (Host (Host_spec.create_host spec))

let target t = t.target
let spec t = t.spec
let host t = match t.target with Host h -> Some h | Fleet _ -> None
let fleet t = match t.target with Fleet f -> Some f | Host _ -> None
let commands t = t.commands
let set_clients t n = t.clients <- n

(* the standard aggressor mix diagnostics run against with [--load] *)
let apply_load host load =
  if load then begin
    let fab = Ihnet.Host.fabric host in
    (try ignore (W.Rdma.start_loopback fab ~tenant:8 ~nic:"nic0" ()) with Invalid_argument _ -> ());
    (try
       ignore
         (W.Mltrain.start fab
            {
              (W.Mltrain.default_config ~tenant:9 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
              W.Mltrain.compute_time = 0.0;
            })
     with Invalid_argument _ -> ());
    Ihnet.Host.run_for host (U.Units.ms 2.0)
  end

let asp pp v = Format.asprintf "%a" pp v

(* remediation actions become trace annotations the first time the
   supervisor is enabled under a recorded session *)
let enable_remediation t host ?config ?wiring () =
  let rem = Ihnet.Host.enable_remediation host ?config ?wiring () in
  (match t.recorder with
  | Some r when not t.rem_observed ->
    t.rem_observed <- true;
    Rec.Recorder.observe_remediation r rem
  | _ -> ());
  rem

(* {1 Host command bodies} *)

let topo host dot =
  let topo = Ihnet.Host.topology host in
  if dot then Resp.Topo_dot (T.Topology.to_dot topo)
  else begin
    let name id = (T.Topology.device topo id).T.Device.name in
    Resp.Topo_report
      {
        summary = T.Topology.summary topo;
        config = asp T.Hostconfig.pp (T.Topology.config topo);
        links =
          List.map
            (fun (l : T.Link.t) ->
              {
                Resp.l_id = l.T.Link.id;
                l_kind = T.Link.kind_label l.T.Link.kind;
                l_a = name l.T.Link.a;
                l_b = name l.T.Link.b;
                l_capacity = l.T.Link.capacity;
                l_latency = l.T.Link.base_latency;
              })
            (T.Topology.links topo);
      }
  end

let ping host ~src ~dst ~count ~load =
  apply_load host load;
  let report =
    Mon.Diagnostics.ping (Ihnet.Host.fabric host) ~src ~dst ~count ~interval:(U.Units.us 100.0)
      ()
  in
  Ihnet.Host.run_for host (U.Units.ms (0.2 *. float_of_int count));
  let r = report.Mon.Diagnostics.rtts in
  Resp.Ping_report
    {
      src;
      dst;
      sent = report.Mon.Diagnostics.sent;
      lost = report.Mon.Diagnostics.lost;
      rtt =
        (if U.Histogram.count r > 0 then
           Some
             ( U.Histogram.min_value r,
               U.Histogram.percentile r 0.5,
               U.Histogram.percentile r 0.99,
               U.Histogram.max_value r )
         else None);
    }

let path_trace host ~src ~dst ~load =
  apply_load host load;
  Resp.Trace_report
    {
      src;
      dst;
      hops =
        List.map
          (fun (h : Mon.Diagnostics.trace_hop) ->
            {
              Resp.h_device = h.Mon.Diagnostics.hop_device;
              h_kind = h.Mon.Diagnostics.link_kind;
              h_class = h.Mon.Diagnostics.figure1_class;
              h_base = h.Mon.Diagnostics.base_latency;
              h_loaded = h.Mon.Diagnostics.loaded_latency;
              h_util = h.Mon.Diagnostics.utilization;
            })
          (Mon.Diagnostics.trace (Ihnet.Host.fabric host) ~src ~dst);
    }

let perf host ~src ~dst ~load =
  apply_load host load;
  let fab = Ihnet.Host.fabric host in
  let result = ref None and bottleneck = ref None in
  Mon.Diagnostics.perf fab ~src ~dst ~duration:(U.Units.ms 10.0)
    ~on_done:(fun r ->
      result :=
        Some (r.Mon.Diagnostics.bytes_moved, r.Mon.Diagnostics.duration, r.Mon.Diagnostics.achieved_rate);
      match r.Mon.Diagnostics.bottleneck with
      | Some (link, u) ->
        let topo = Ihnet.Host.topology host in
        let l = T.Topology.link topo link in
        let name id = (T.Topology.device topo id).T.Device.name in
        bottleneck := Some (name l.T.Link.a, name l.T.Link.b, u)
      | None -> ())
    ();
  Ihnet.Host.run_for host (U.Units.ms 11.0);
  Resp.Perf_report { src; dst; result = !result; bottleneck = !bottleneck }

let dump host ~a ~b ~load =
  apply_load host load;
  let topo = Ihnet.Host.topology host in
  let dev = Host_spec.device_id topo in
  match T.Topology.links_between topo (dev a) (dev b) with
  | [] -> Resp.Dump_report { a; b; found = false; flows = [] }
  | l :: _ ->
    Resp.Dump_report
      {
        a;
        b;
        found = true;
        flows =
          List.map
            (fun (c : Mon.Diagnostics.captured_flow) ->
              {
                Resp.f_id = c.Mon.Diagnostics.flow_id;
                f_tenant = c.Mon.Diagnostics.tenant;
                f_cls = c.Mon.Diagnostics.cls;
                f_src = c.Mon.Diagnostics.src_dev;
                f_dst = c.Mon.Diagnostics.dst_dev;
                f_rate = c.Mon.Diagnostics.rate;
              })
            (Mon.Diagnostics.dump (Ihnet.Host.fabric host) ~link:l.T.Link.id ());
      }

let check spec = Resp.Check_report (Mon.Anomaly.check_configuration (Host_spec.topology spec))

let heartbeat host ~degrade =
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let hb = Ihnet.Host.start_heartbeats host () in
  Ihnet.Host.run_for host (U.Units.ms 10.0);
  let injected =
    match degrade with
    | Some (a, b) -> (
      let dev = Host_spec.device_id topo in
      match T.Topology.links_between topo (dev a) (dev b) with
      | l :: _ ->
        E.Fabric.inject_fault fab l.T.Link.id
          { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 };
        Some (a, b)
      | [] -> failwith "no such link")
    | None -> None
  in
  Ihnet.Host.run_for host (U.Units.ms 10.0);
  let name id = (T.Topology.device topo id).T.Device.name in
  Resp.Heartbeat_report
    {
      injected;
      rounds = Mon.Heartbeat.rounds hb;
      failing = List.length (Mon.Heartbeat.failing_pairs hb);
      first = Mon.Heartbeat.first_detection hb;
      suspects =
        List.map
          (fun (s : Mon.Heartbeat.suspect) ->
            let l = T.Topology.link topo s.Mon.Heartbeat.link in
            { Resp.su_a = name l.T.Link.a; su_b = name l.T.Link.b; su_score = s.Mon.Heartbeat.score })
          (Mon.Heartbeat.localize hb);
    }

let heal t host ~src ~dst ~gbps ~fault_link ~factor ~silent ~flap ~ms =
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let mgr = Ihnet.Host.enable_manager host () in
  let rate = U.Units.gbps gbps in
  let p =
    match R.Manager.submit mgr (R.Intent.pipe ~tenant:1 ~src ~dst ~rate) with
    | Ok [ p ] -> p
    | Ok _ -> failwith "expected one placement"
    | Error e -> failwith ("intent rejected: " ^ R.Manager.error_to_string e)
  in
  let f =
    E.Fabric.start_flow fab ~tenant:1 ~demand:rate ~path:p.R.Placement.path
      ~size:E.Flow.Unbounded ()
  in
  ignore (R.Manager.attach mgr f);
  let config = { R.Remediation.default_config with R.Remediation.use_fault_events = not silent } in
  let rem =
    enable_remediation t host ~config
      ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = silent }
      ()
  in
  (* heartbeat needs warm-up rounds to learn RTT baselines *)
  Ihnet.Host.run_for host (U.Units.ms (if silent then 10.0 else 2.0));
  let tenant_rate () =
    E.Fabric.refresh fab;
    List.fold_left
      (fun acc (g : E.Flow.t) ->
        if g.E.Flow.tenant = 1 && g.E.Flow.cls = E.Flow.Payload then acc +. g.E.Flow.rate
        else acc)
      0.0 (E.Fabric.active_flows fab)
  in
  let pre = tenant_rate () in
  let bad =
    match fault_link with
    | Some (a, b) -> (
      let dev = Host_spec.device_id topo in
      match T.Topology.links_between topo (dev a) (dev b) with
      | l :: _ -> l.T.Link.id
      | [] -> failwith "no such link")
    | None -> (
      match p.R.Placement.path.T.Path.hops with
      | _ :: h :: _ | [ h ] -> h.T.Path.link.T.Link.id
      | [] -> failwith "victim path has no hops")
  in
  let l = T.Topology.link topo bad in
  let name id = (T.Topology.device topo id).T.Device.name in
  let fault = E.Fault.degrade ~capacity_factor:factor () in
  let banner =
    match flap with
    | Some n ->
      let s = Printf.sprintf "[flapping %s-%s x%d at 1 ms]" (name l.T.Link.a) (name l.T.Link.b) n in
      E.Fabric.flap_link fab bad fault ~period:(U.Units.ms 1.0) ~toggles:n;
      s
    | None ->
      let s =
        Printf.sprintf "[degrading %s-%s to %.0f%% capacity%s]" (name l.T.Link.a)
          (name l.T.Link.b) (factor *. 100.0)
          (if silent then ", silently" else "")
      in
      E.Fabric.inject_fault fab bad fault;
      s
  in
  let t0 = Ihnet.Host.now host in
  Ihnet.Host.run_for host (U.Units.ms ms);
  let post = tenant_rate () in
  Resp.Heal_report
    {
      Resp.he_banner = banner;
      he_rate = rate;
      he_pre = pre;
      he_post = post;
      he_ttd = R.Remediation.time_to_detect rem bad ~since:t0;
      he_ttr = R.Remediation.time_to_recover rem bad;
      he_status = asp R.Remediation.pp_status rem;
      he_timeline = asp R.Remediation.pp_timeline rem;
      he_slo = asp R.Slo.pp (R.Slo.check mgr);
    }

let scenario host ~name ~ms ~protect =
  match W.Scenario.find name with
  | None -> Resp.Scenario_unknown name
  | Some make ->
    let h = make (Ihnet.Host.fabric host) in
    Ihnet.Host.run_for host (U.Units.ms ms);
    let metrics = h.W.Scenario.metrics () in
    let protect_info =
      match protect with
      | None -> None
      | Some gbps ->
        let mgr = Ihnet.Host.enable_manager host () in
        let rate = U.Units.gbps gbps in
        let intent =
          {
            (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate) with
            R.Intent.targets =
              [
                R.Intent.Pipe { src = "ext"; dst = "socket0"; rate };
                R.Intent.Pipe { src = "socket0"; dst = "ext"; rate };
              ];
          }
        in
        let note =
          match R.Manager.submit mgr intent with
          | Ok _ -> Printf.sprintf "[tenant 1 protected with a %.0f Gbps pipe]" gbps
          | Error e -> Printf.sprintf "[intent rejected: %s]" (R.Manager.error_to_string e)
        in
        Ihnet.Host.run_for host (U.Units.ms ms);
        Some
          {
            Resp.pr_note = note;
            pr_ms = ms;
            pr_metrics = h.W.Scenario.metrics ();
            pr_slo = asp R.Slo.pp (R.Slo.check mgr);
          }
    in
    h.W.Scenario.stop ();
    Resp.Scenario_report
      {
        Resp.sc_name = h.W.Scenario.name;
        sc_describe = h.W.Scenario.describe;
        sc_tenants = h.W.Scenario.tenants;
        sc_ms = ms;
        sc_metrics = metrics;
        sc_protect = protect_info;
      }

let monitor host ~ms ~period_us ~series ~load =
  apply_load host load;
  let sampler =
    Mon.Sampler.start (Ihnet.Host.fabric host)
      {
        (Mon.Sampler.default_config ()) with
        Mon.Sampler.period = U.Units.us period_us;
        fidelity = Mon.Counter.Oracle;
      }
  in
  Ihnet.Host.run_for host (U.Units.ms ms);
  let tm = Mon.Sampler.telemetry sampler in
  let filtered =
    match series with
    | None -> None
    | Some prefix ->
      Some
        (List.filter
           (fun n ->
             String.length n >= String.length prefix
             && String.sub n 0 (String.length prefix) = prefix)
           (Mon.Telemetry.series_names tm))
  in
  let csv = Mon.Telemetry.to_csv ?series:filtered tm in
  Mon.Sampler.stop sampler;
  Resp.Csv csv

let report host ~fidelity ~load =
  apply_load host load;
  let fid =
    match fidelity with
    | C.Fid_hardware -> Mon.Counter.Hardware { max_read_hz = 10_000.0 }
    | C.Fid_software -> Mon.Counter.Software
    | C.Fid_oracle -> Mon.Counter.Oracle
  in
  let counter = Mon.Counter.create (Ihnet.Host.fabric host) ~fidelity:fid in
  Resp.Health (asp Mon.Health.pp (Mon.Health.collect counter ~tenants:[ 1; 2; 8; 9 ] ()))

let plan host ~pipes ~hoses ~headroom =
  let topo = Ihnet.Host.topology host in
  let intents =
    List.mapi
      (fun i (src, dst, gbps) -> R.Intent.pipe ~tenant:(i + 1) ~src ~dst ~rate:(U.Units.gbps gbps))
      pipes
    @ List.mapi
        (fun i (endpoint, in_g, out_g) ->
          R.Intent.hose
            ~tenant:(100 + i)
            ~endpoint ~to_host:(U.Units.gbps in_g) ~from_host:(U.Units.gbps out_g))
        hoses
  in
  if intents = [] then failwith "no intents given; use --pipe/--hose";
  let fits = R.Planner.fits topo ~headroom intents in
  let scale = R.Planner.max_scale topo ~headroom intents in
  let name id = (T.Topology.device topo id).T.Device.name in
  Resp.Plan_report
    {
      intents = List.length intents;
      headroom;
      fits;
      scale;
      bottlenecks =
        (if fits then
           List.map
             (fun ((l : T.Link.t), ratio) ->
               {
                 Resp.bn_kind = T.Link.kind_label l.T.Link.kind;
                 bn_a = name l.T.Link.a;
                 bn_b = name l.T.Link.b;
                 bn_ratio = ratio;
               })
             (R.Planner.bottlenecks topo ~headroom intents)
         else []);
    }

let latency host ~link ~ms ~load =
  let fab = Ihnet.Host.fabric host in
  E.Fabric.enable_latency_sketches fab;
  apply_load host load;
  Ihnet.Host.run_for host (U.Units.ms ms);
  let flow =
    match E.Fabric.flow_latency_sketch fab with
    | Some sk when U.Sketch.count sk > 0 -> Some (asp U.Sketch.pp sk)
    | Some _ | None -> None
  in
  let links =
    if not link then []
    else begin
      let topo = Ihnet.Host.topology host in
      let name id = (T.Topology.device topo id).T.Device.name in
      List.concat_map
        (fun (l : T.Link.t) ->
          List.filter_map
            (fun (dir, label) ->
              match E.Fabric.link_latency_sketch fab l.T.Link.id dir with
              | Some sk when U.Sketch.count sk > 0 ->
                let s = U.Sketch.snapshot sk in
                Some
                  {
                    Resp.lr_id = l.T.Link.id;
                    lr_route = Printf.sprintf "%s<->%s" (name l.T.Link.a) (name l.T.Link.b);
                    lr_dir = label;
                    lr_count = s.U.Sketch.s_count;
                    lr_p50 = s.U.Sketch.s_p50;
                    lr_p99 = s.U.Sketch.s_p99;
                    lr_p999 = s.U.Sketch.s_p999;
                    lr_max = s.U.Sketch.s_max;
                  }
              | Some _ | None -> None)
            [ (T.Link.Fwd, "fwd"); (T.Link.Rev, "rev") ])
        (T.Topology.links topo)
    end
  in
  Resp.Latency_report { flow; link_table = link; links }

let scan host ~ms ~load ~step ~snapshot =
  apply_load host load;
  Ihnet.Host.run_for host (U.Units.ms ms);
  let snap = Ihnet.Host.scan host in
  let steps = ref [] and drained = ref None in
  (match step with
  | None -> ()
  | Some n ->
    let fz = Rec.Scanport.freeze (Ihnet.Host.fabric host) in
    let stepped = ref 0 and live = ref true in
    while !live && !stepped < n do
      if Rec.Scanport.step fz 1 = 1 then begin
        incr stepped;
        let s = Ihnet.Host.scan host in
        steps :=
          { Resp.st_n = !stepped; st_epoch = s.Rec.Scanport.s_epoch; st_digest = s.Rec.Scanport.s_digest }
          :: !steps
      end
      else live := false
    done;
    if !stepped < n then drained := Some !stepped;
    Rec.Scanport.thaw fz);
  Resp.Scan_report
    {
      epoch = snap.Rec.Scanport.s_epoch;
      regs = List.length snap.Rec.Scanport.s_regs;
      digest = snap.Rec.Scanport.s_digest;
      steps = List.rev !steps;
      drained = !drained;
      snapshot = (if snapshot then Some (Rec.Scanport.to_json (Ihnet.Host.scan host)) else None);
    }

let flow_start host ~tenant ~src ~dst ~gbps =
  let topo = Ihnet.Host.topology host in
  let dev = Host_spec.device_id topo in
  match T.Routing.shortest_path topo (dev src) (dev dst) with
  | None -> failwith (Printf.sprintf "no path from %s to %s" src dst)
  | Some path ->
    let f =
      E.Fabric.start_flow (Ihnet.Host.fabric host) ~tenant
        ?demand:(Option.map U.Units.gbps gbps) ~path ~size:E.Flow.Unbounded ()
    in
    Resp.Flow_ok { flow = f.E.Flow.id }

let flow_stop host ~flow =
  let fab = Ihnet.Host.fabric host in
  match List.find_opt (fun (f : E.Flow.t) -> f.E.Flow.id = flow) (E.Fabric.scan_flows fab) with
  | None -> failwith (Printf.sprintf "no flow %d" flow)
  | Some f ->
    E.Fabric.stop_flow fab f;
    Resp.Ack

let submit host intent =
  match Ihnet.Host.submit_intent host intent with
  | Error e -> Resp.Err (Api_error.Mgr e)
  | Ok placements ->
    Resp.Submit_ok
      {
        tenant = intent.R.Intent.tenant;
        placements = List.map (asp R.Placement.pp) placements;
      }

let find_link host ~a ~b =
  let topo = Ihnet.Host.topology host in
  let dev = Host_spec.device_id topo in
  match T.Topology.links_between topo (dev a) (dev b) with
  | l :: _ -> l.T.Link.id
  | [] -> failwith (Printf.sprintf "no link between %s and %s" a b)

let fault_inject host ~a ~b ~factor ~extra_us ~loss =
  E.Fabric.inject_fault (Ihnet.Host.fabric host) (find_link host ~a ~b)
    { E.Fault.capacity_factor = factor; extra_latency = U.Units.us extra_us; loss_prob = loss };
  Resp.Ack

let fault_clear host ~a ~b =
  E.Fabric.clear_fault (Ihnet.Host.fabric host) (find_link host ~a ~b);
  Resp.Ack

let stats t host =
  let fab = Ihnet.Host.fabric host in
  let rate =
    List.fold_left (fun acc (f : E.Flow.t) -> acc +. f.E.Flow.rate) 0.0 (E.Fabric.scan_flows fab)
  in
  Resp.Stats_report
    {
      now = Ihnet.Host.now host;
      epoch = E.Fabric.scan_epoch fab;
      flows = E.Fabric.flow_count fab;
      rate;
      reallocs = E.Fabric.reallocations fab;
      clients = t.clients;
      commands = t.commands;
    }

let telemetry_sample t =
  match t.target with
  | Fleet _ -> None
  | Host host ->
    let fab = Ihnet.Host.fabric host in
    let rate =
      List.fold_left (fun acc (f : E.Flow.t) -> acc +. f.E.Flow.rate) 0.0 (E.Fabric.scan_flows fab)
    in
    Some
      (Resp.Ev_telemetry
         {
           ev_at = Ihnet.Host.now host;
           ev_epoch = E.Fabric.scan_epoch fab;
           ev_flows = E.Fabric.flow_count fab;
           ev_rate = rate;
         })

(* {1 Fleet command bodies} *)

let fleet_spawn ctl ~name ~preset =
  match Host_spec.preset_of_name preset with
  | Error e -> failwith e
  | Ok p ->
    F.Controller.spawn ctl ~preset:p name;
    Resp.Ack

let fleet_status ctl ~decisions =
  Resp.Fleet_status_report
    {
      hosts = List.length (F.Controller.hosts ctl);
      rounds = F.Controller.rounds ctl;
      digest = F.Controller.digest ctl;
      decisions = F.Controller.decisions_fingerprint ctl;
      text = asp F.Controller.pp ctl;
      decision_log =
        (if decisions then List.map F.Controller.decision_to_string (F.Controller.decisions ctl)
         else []);
    }

let fleet_fault ctl ~host ~what =
  (match what with
  | C.F_crash -> F.Controller.crash ctl host
  | C.F_restart -> F.Controller.restart ctl host
  | C.F_partition -> F.Controller.partition ctl host
  | C.F_heal -> F.Controller.heal ctl host);
  Resp.Ack

(* {1 Dispatch} *)

let mode t = match t.target with Host _ -> "host" | Fleet _ -> "fleet"

let wrong_mode t =
  Resp.Err
    (Api_error.Unsupported
       (Printf.sprintf "daemon is in %s mode; command unavailable" (mode t)))

let dispatch t cmd =
  match (cmd, t.target) with
  | C.Hello _, _ ->
    Resp.Hello_ok { version = C.version; mode = mode t; preset = t.spec.Host_spec.preset_name }
  | C.Subscribe _, Host _ -> Resp.Ack
  | C.Subscribe _, Fleet _ -> wrong_mode t
  | C.Shutdown, _ -> Resp.Bye
  | C.Check, _ -> check t.spec
  | ( ( C.Topo _ | C.Ping _ | C.Path_trace _ | C.Perf _ | C.Dump _ | C.Heartbeat _ | C.Heal _
      | C.Scenario_list | C.Scenario _ | C.Monitor _ | C.Report _ | C.Plan _ | C.Latency _
      | C.Scan _ | C.Run_for _ | C.Flow_start _ | C.Flow_stop _ | C.Submit _ | C.Fault_inject _
      | C.Fault_clear _ | C.Faults_clear_all | C.Stats ),
      Fleet _ ) ->
    wrong_mode t
  | (C.Fleet_spawn _ | C.Fleet_submit _ | C.Fleet_run _ | C.Fleet_status _ | C.Fleet_fault _), Host _
    ->
    wrong_mode t
  | C.Topo { dot }, Host h -> topo h dot
  | C.Ping { src; dst; count; load }, Host h -> ping h ~src ~dst ~count ~load
  | C.Path_trace { src; dst; load }, Host h -> path_trace h ~src ~dst ~load
  | C.Perf { src; dst; load }, Host h -> perf h ~src ~dst ~load
  | C.Dump { a; b; load }, Host h -> dump h ~a ~b ~load
  | C.Heartbeat { degrade }, Host h -> heartbeat h ~degrade
  | C.Heal { src; dst; gbps; fault; factor; silent; flap; ms }, Host h ->
    heal t h ~src ~dst ~gbps ~fault_link:fault ~factor ~silent ~flap ~ms
  | C.Scenario_list, Host _ -> Resp.Scenario_names W.Scenario.all
  | C.Scenario { name; ms; protect }, Host h -> scenario h ~name ~ms ~protect
  | C.Monitor { ms; period_us; series; load }, Host h -> monitor h ~ms ~period_us ~series ~load
  | C.Report { fidelity; load }, Host h -> report h ~fidelity ~load
  | C.Plan { pipes; hoses; headroom }, Host h -> plan h ~pipes ~hoses ~headroom
  | C.Latency { link; ms; load }, Host h -> latency h ~link ~ms ~load
  | C.Scan { ms; load; step; snapshot }, Host h -> scan h ~ms ~load ~step ~snapshot
  | C.Run_for { ms }, Host h ->
    Ihnet.Host.run_for h (U.Units.ms ms);
    Resp.Ack
  | C.Flow_start { tenant; src; dst; gbps }, Host h -> flow_start h ~tenant ~src ~dst ~gbps
  | C.Flow_stop { flow }, Host h -> flow_stop h ~flow
  | C.Submit intent, Host h -> submit h intent
  | C.Fault_inject { a; b; factor; extra_us; loss }, Host h ->
    fault_inject h ~a ~b ~factor ~extra_us ~loss
  | C.Fault_clear { a; b }, Host h -> fault_clear h ~a ~b
  | C.Faults_clear_all, Host h ->
    E.Fabric.clear_all_faults (Ihnet.Host.fabric h);
    Resp.Ack
  | C.Stats, Host h -> stats t h
  | C.Fleet_spawn { name; preset }, Fleet ctl -> fleet_spawn ctl ~name ~preset
  | C.Fleet_submit intent, Fleet ctl ->
    F.Controller.submit ctl intent;
    Resp.Ack
  | C.Fleet_run { rounds }, Fleet ctl ->
    F.Controller.run ctl ~rounds;
    Resp.Ack
  | C.Fleet_status { decisions }, Fleet ctl -> fleet_status ctl ~decisions
  | C.Fleet_fault { host; what }, Fleet ctl -> fleet_fault ctl ~host ~what

let run t cmd =
  t.commands <- t.commands + 1;
  match Api_error.wrap (fun () -> dispatch t cmd) with
  | Ok r -> r
  | Error e -> Resp.Err e
