(** Command execution against a live target.

    The ~15 subcommand bodies that used to live inline in
    [bin/ihnetctl.ml], carved out as pure [command -> response]
    handlers over one {!target}. The CLI runs them on an in-process
    host (historical behavior); [ihnetd] runs them on its long-lived
    host or fleet controller. Either way the data that comes back is
    the same, and {!Render} reproduces the historical output from it
    byte-for-byte. *)

type target =
  | Host of Ihnet.Host.t
  | Fleet of Ihnet_fleet.Controller.t

type t

val create :
  ?recorder:Ihnet_record.Recorder.t -> spec:Host_spec.t -> target -> t
(** [recorder], when the target session is being recorded, lets the
    handlers wire remediation actions into the trace
    ({!Ihnet_record.Recorder.observe_remediation}) the moment
    remediation is first enabled. *)

val local : Host_spec.t -> t
(** Build the host from the spec and wrap it — the CLI's in-process
    path. *)

val target : t -> target
val spec : t -> Host_spec.t
val host : t -> Ihnet.Host.t option
val fleet : t -> Ihnet_fleet.Controller.t option

val commands : t -> int
(** Commands executed so far (for [Stats]). *)

val set_clients : t -> int -> unit
(** The daemon's live-connection count, surfaced in [Stats]. *)

val run : t -> Command.t -> Response.t
(** Execute one command. Never raises: [Invalid_argument]/[Failure]
    from lower layers and typed manager refusals come back as
    [Response.Err] with the {!Api_error} taxonomy. [Hello], [Subscribe]
    and [Shutdown] get their trivial replies here ([Hello_ok] / [Ack] /
    [Bye]); the transport-level behavior (version check, stream
    registration, connection teardown) is the server's. *)

val telemetry_sample : t -> Response.event option
(** One [Ev_telemetry] snapshot of the host fabric, built from the
    pure [scan_*] reads — [None] in fleet mode. *)
