(* Flat-array log-linear histogram. Bucket layout matches Histogram:
   index < sub        : linear range [0,1), bucket k covers [k/sub, (k+1)/sub)
   index >= sub       : octave o = idx/sub - 1, sub-bucket sb = idx mod sub,
                        covering [2^o (1 + sb/sub), 2^o (1 + (sb+1)/sub)).
   The octave is derived with Float.frexp — frexp v = (m, e) with
   m in [0.5, 1), v = m * 2^e — so octave = e - 1 exactly, with none of
   the round-up hazard of floor (log2 v) for v just below a power of
   two. Counts are ints and min/max exact floats; every derived
   statistic folds the counts in index order, so merged sketches are
   bit-identical under any merge grouping. *)

type t = {
  sub : int;
  max_octave : int;
  counts : int array; (* (max_octave + 2) * sub slots *)
  mutable n : int;
  mutable mn : float;
  mutable mx : float;
}

let create ?(sub = 32) ?(max_octave = 40) () =
  if sub <= 0 then invalid_arg "Sketch.create: sub must be positive";
  if max_octave < 0 then invalid_arg "Sketch.create: max_octave must be non-negative";
  {
    sub;
    max_octave;
    counts = Array.make ((max_octave + 2) * sub) 0;
    n = 0;
    mn = infinity;
    mx = neg_infinity;
  }

let sub t = t.sub
let max_octave t = t.max_octave

let bucket_of t v =
  if v < 1.0 then int_of_float (v *. float_of_int t.sub)
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e, m in [0.5,1) -> v in [2^(e-1), 2^e) *)
    let octave = e - 1 in
    if octave > t.max_octave then Array.length t.counts - 1
    else begin
      (* position within the octave: v / 2^octave - 1 = 2m - 1 in [0,1) *)
      let sb = int_of_float (((m *. 2.0) -. 1.0) *. float_of_int t.sub) in
      let sb = if sb >= t.sub then t.sub - 1 else sb in
      ((octave + 1) * t.sub) + sb
    end
  end

let value_of t idx =
  if idx < t.sub then (float_of_int idx +. 0.5) /. float_of_int t.sub
  else begin
    let octave = (idx / t.sub) - 1 in
    let sb = idx mod t.sub in
    let base = 2.0 ** float_of_int octave in
    base +. ((float_of_int sb +. 0.5) /. float_of_int t.sub *. base)
  end

let record t v =
  if Float.is_finite v && v >= 0.0 then begin
    let idx = bucket_of t v in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.n <- t.n + 1;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v
  end

let count t = t.n

let total t =
  let acc = ref 0.0 in
  for idx = 0 to Array.length t.counts - 1 do
    let c = t.counts.(idx) in
    if c > 0 then acc := !acc +. (float_of_int c *. value_of t idx)
  done;
  !acc

let mean t = if t.n = 0 then nan else total t /. float_of_int t.n

let max_value t = if t.n = 0 then nan else t.mx
let min_value t = if t.n = 0 then nan else t.mn

let percentile t q =
  if t.n = 0 then nan
  else begin
    let target = q *. float_of_int t.n in
    let acc = ref 0.0 and result = ref t.mx in
    (try
       for idx = 0 to Array.length t.counts - 1 do
         let c = t.counts.(idx) in
         if c > 0 then begin
           acc := !acc +. float_of_int c;
           if !acc >= target then begin
             result := value_of t idx;
             raise Exit
           end
         end
       done
     with Exit -> ());
    (* bucket midpoints can stick out of the observed range (one sample
       of 513 has midpoint 520); clamp so estimates stay honest *)
    Float.min t.mx (Float.max t.mn !result)
  end

let merge dst src =
  if dst.sub <> src.sub || dst.max_octave <> src.max_octave then
    invalid_arg "Sketch.merge: geometry mismatch";
  for idx = 0 to Array.length dst.counts - 1 do
    dst.counts.(idx) <- dst.counts.(idx) + src.counts.(idx)
  done;
  dst.n <- dst.n + src.n;
  dst.mn <- Float.min dst.mn src.mn;
  dst.mx <- Float.max dst.mx src.mx

let copy t = { t with counts = Array.copy t.counts }

let fold_buckets t ~init f =
  let acc = ref init in
  for idx = 0 to Array.length t.counts - 1 do
    acc := f !acc t.counts.(idx)
  done;
  !acc

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.mn <- infinity;
  t.mx <- neg_infinity

type snapshot = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : float;
}

let snapshot t =
  {
    s_count = t.n;
    s_mean = mean t;
    s_p50 = percentile t 0.5;
    s_p90 = percentile t 0.9;
    s_p99 = percentile t 0.99;
    s_p999 = percentile t 0.999;
    s_max = max_value t;
  }

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f p999=%.1f max=%.1f" t.n (mean t)
      (percentile t 0.5) (percentile t 0.99) (percentile t 0.999) t.mx
