(** Plain-text table rendering for the experiment harness.

    Every experiment prints its results as one of these tables so the
    bench output can be compared side by side with the paper. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Row cells, one per column. Short rows are padded with [""];
    long rows raise [Invalid_argument]. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Convenience: format one string and split it on ['|'] into cells. *)

val render : t -> string
(** ASCII rendering with a title line, a header, column alignment and
    separators. *)

val to_csv : t -> string
(** Machine-readable rendering: header row then data rows, cells
    quoted when they contain commas. The title is not included. *)

val title : t -> string

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_f : float -> string
(** Standard float cell: ["-"] for NaN, 3 significant digits style. *)
