type 'a t = {
  data : 'a option array;
  cap : int;
  mutable head : int; (* index of next write *)
  mutable len : int;
  mutable dropped : int;
}

let create cap =
  assert (cap > 0);
  { data = Array.make cap None; cap; head = 0; len = 0; dropped = 0 }

let capacity t = t.cap
let length t = t.len

let push t x =
  if t.len = t.cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.data.(t.head) <- Some x;
  t.head <- (t.head + 1) mod t.cap

let dropped t = t.dropped

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring_buffer.get";
  let start = (t.head - t.len + t.cap) mod t.cap in
  match t.data.((start + i) mod t.cap) with
  | Some x -> x
  | None -> assert false

let newest t = if t.len = 0 then None else Some (get t (t.len - 1))
let oldest t = if t.len = 0 then None else Some (get t 0)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
