type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  assert (n > 0);
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let i = if i >= n - 1 then n - 2 else i in
    let frac = pos -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sumsq <= 0.0 then nan else sum *. sum /. (float_of_int n *. sumsq)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = nan; stddev = nan; min = nan; max = nan; p50 = nan; p90 = nan; p99 = nan }
  else begin
    Array.sort compare xs;
    {
      count = n;
      mean = mean xs;
      stddev = stddev xs;
      min = xs.(0);
      max = xs.(n - 1);
      p50 = percentile xs 0.5;
      p90 = percentile xs 0.9;
      p99 = percentile xs 0.99;
    }
  end

module Online = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () = { n = 0; mu = 0.0; m2 = 0.0; mn = infinity; mx = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mu
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
end

module Ewma = struct
  type t = {
    alpha : float;
    mutable avg : float;
    mutable var : float;
    mutable started : bool;
  }

  let create ~alpha =
    assert (alpha > 0.0 && alpha <= 1.0);
    { alpha; avg = nan; var = 0.0; started = false }

  let add t x =
    if not t.started then begin
      t.avg <- x;
      t.var <- 0.0;
      t.started <- true
    end
    else begin
      let diff = x -. t.avg in
      (* variance update before the mean so that [var] reflects deviation
         from the pre-sample average (standard EWMV recursion) *)
      t.var <- ((1.0 -. t.alpha) *. t.var) +. (t.alpha *. diff *. diff);
      t.avg <- t.avg +. (t.alpha *. diff)
    end

  let value t = if t.started then t.avg else nan
  let stddev t = sqrt t.var

  let deviation t x =
    if not t.started then 0.0
    else
      let sd = stddev t in
      if sd <= 0.0 then 0.0 else Float.abs (x -. t.avg) /. sd
end

module Cusum = struct
  type t = {
    drift : float;
    threshold : float;
    mutable up : float;
    mutable down : float;
  }

  let create ?(drift = 0.5) ~threshold () =
    assert (threshold > 0.0);
    { drift; threshold; up = 0.0; down = 0.0 }

  let add t ~expected ~sigma x =
    if sigma <= 0.0 then `Ok
    else begin
      let z = (x -. expected) /. sigma in
      t.up <- Float.max 0.0 (t.up +. z -. t.drift);
      t.down <- Float.max 0.0 (t.down -. z -. t.drift);
      if t.up > t.threshold then begin
        t.up <- 0.0;
        t.down <- 0.0;
        `Alarm `Up
      end
      else if t.down > t.threshold then begin
        t.up <- 0.0;
        t.down <- 0.0;
        `Alarm `Down
      end
      else `Ok
    end

  let upper t = t.up
  let lower t = t.down
end
