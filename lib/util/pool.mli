(** Fixed-size domain pool with a deterministic parallel [map].

    A hand-rolled work queue over [Domain] + [Mutex]/[Condition] (no
    dependencies beyond the OCaml 5 stdlib). A pool of size [n]
    consists of the calling domain plus [n - 1] worker domains parked
    on a condition variable; {!map} fans a batch of index-addressed
    tasks out to all of them and returns the results {e in index
    order}, so callers see the same array regardless of which domain
    computed which element — scheduling nondeterminism cannot leak
    through the interface. Tasks must therefore be pure with respect
    to shared mutable state (they may read anything that no other
    task writes).

    [map] is not reentrant: it may only be called from the domain
    that created the pool (the coordinator), one batch at a time.
    That is exactly the fabric's use — the simulation loop lives on
    one domain and only reallocation fans out. *)

type t

val create : int -> t
(** [create n] builds a pool of [n] total domains ([n - 1] spawned
    workers; clamped to [\[1, 64\]]). A pool of size 1 spawns nothing
    and {!map} degenerates to [Array.init] — the sequential fallback
    is the same code path callers get by not using a pool at all. *)

val size : t -> int
(** Total domains (including the coordinator), as clamped. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map p n f] computes [[| f 0; ...; f (n-1) |]]. Tasks are pulled
    from a shared atomic counter by the coordinator and every worker;
    the coordinator blocks until all [n] results landed. If any task
    raises, the first exception (in completion order) is re-raised on
    the coordinator after the batch drains. Results are published to
    the coordinator with release/acquire semantics via the pending
    counter, so no additional synchronization is needed to read them. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Idempotent; the pool must not
    be used afterwards. Shutting down the {!get} pool is allowed (a
    later [get] builds a fresh one). *)

val default_domains : unit -> int
(** The process-wide default pool size: [IHNET_DOMAINS] from the
    environment when set to a positive integer, else 1. Read once. *)

val get : int -> t
(** [get n] returns the shared process-wide pool, grown to at least
    [n] total domains (workers are added, never removed, so every
    fabric in the process reuses the same worker set — creating many
    hosts never accumulates domains toward the runtime's limit). The
    shared pool is shut down automatically [at_exit]. *)
