(** Streaming and batch statistics used by the monitor and the
    experiment harness. *)

(** {1 Batch summaries} *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** [summarize xs] computes a full summary; [xs] is sorted in place.
    All fields are [nan] (count 0) for an empty array. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]] by linear interpolation.
    Requires [sorted] to be sorted ascending and non-empty. *)

val mean : float array -> float
val stddev : float array -> float

val jain_index : float array -> float
(** Jain's fairness index [ (Σx)² / (n·Σx²) ]: 1 when all shares are
    equal, 1/n when one holds everything. [nan] for empty or all-zero
    input. Used to summarize per-tenant fairness. *)

(** {1 Welford's online mean/variance} *)

module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** {1 EWMA — exponentially weighted moving average}

    Used by the anomaly platform as a cheap baseline tracker: an alarm
    fires when a sample deviates from the EWMA by more than [k] running
    standard deviations. *)

module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] in (0,1]; higher reacts faster. *)

  val add : t -> float -> unit
  val value : t -> float
  (** Current average; [nan] before the first sample. *)

  val stddev : t -> float
  (** EWMA-weighted deviation estimate. *)

  val deviation : t -> float -> float
  (** [deviation t x] is |x - value| / stddev, [0.] before warm-up or
      when stddev is 0. *)
end

(** {1 CUSUM changepoint detector}

    One-sided cumulative-sum detector on standardized residuals; detects
    small persistent shifts (e.g. a silently degraded link) faster than
    thresholding. *)

module Cusum : sig
  type t

  val create : ?drift:float -> threshold:float -> unit -> t
  (** [drift] (default 0.5) is the slack per sample in sigma units;
      [threshold] is the alarm level in sigma units (typ. 4–8). *)

  val add : t -> expected:float -> sigma:float -> float -> [ `Ok | `Alarm of [ `Up | `Down ] ]
  (** Feed a sample with its expected value and scale. After an alarm the
      accumulators reset. [sigma <= 0.] samples are ignored. *)

  val upper : t -> float
  val lower : t -> float
end
