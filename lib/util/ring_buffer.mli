(** Fixed-capacity ring buffer.

    The telemetry store keeps the most recent [capacity] samples per
    series; older samples are overwritten. This bounds monitor memory —
    the "storage" half of the paper's §3.1-Q2 dilemma. *)

type 'a t

val create : int -> 'a t
(** [create capacity]. Requires [capacity > 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append, overwriting the oldest element when full. *)

val dropped : 'a t -> int
(** Number of elements overwritten so far (telemetry loss counter). *)

val get : 'a t -> int -> 'a
(** [get t i] is the i-th oldest retained element, [0 <= i < length t].
    @raise Invalid_argument when out of range. *)

val newest : 'a t -> 'a option
val oldest : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
