(* A batch owns its atomics so a straggling worker that wakes up late
   can never pull indices from (or decrement the pending count of) a
   newer batch: it drains the record it grabbed, finds the counter
   exhausted, and goes back to sleep. *)
type batch = {
  run : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed task index *)
  pending : int Atomic.t; (* tasks not yet completed *)
  err : exn option Atomic.t; (* first exception, re-raised by [map] *)
}

type t = {
  m : Mutex.t;
  work : Condition.t; (* a batch was published, or stop was set *)
  finished : Condition.t; (* a batch's pending count reached zero *)
  mutable batch : batch option;
  mutable gen : int; (* bumped per published batch *)
  mutable workers : unit Domain.t list;
  mutable nworkers : int;
  mutable stop : bool;
  mutable shut : bool;
}

let clamp n = max 1 (min 64 n)
let size t = t.nworkers + 1

(* Pull indices until the batch is exhausted. Runs on workers and on
   the coordinator alike; the last task completion signals [finished]
   under the pool mutex so the coordinator's predicate re-check cannot
   miss it. *)
let drain t (b : batch) =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.n then continue := false
    else begin
      (try b.run i
       with e -> ignore (Atomic.compare_and_set b.err None (Some e)));
      if Atomic.fetch_and_add b.pending (-1) = 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end
    end
  done

let worker t init_gen () =
  let last = ref init_gen in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.gen = !last do
      Condition.wait t.work t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      last := t.gen;
      let b = t.batch in
      Mutex.unlock t.m;
      match b with Some b -> drain t b | None -> ()
    end
  done

let spawn_workers t k =
  Mutex.lock t.m;
  let g = t.gen in
  Mutex.unlock t.m;
  for _ = 1 to k do
    t.workers <- Domain.spawn (worker t g) :: t.workers;
    t.nworkers <- t.nworkers + 1
  done

let create n =
  let n = clamp n in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      gen = 0;
      workers = [];
      nworkers = 0;
      stop = false;
      shut = false;
    }
  in
  spawn_workers t (n - 1);
  t

let grow t n =
  let n = clamp n in
  if size t < n then spawn_workers t (n - size t)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.nworkers <- 0
  end

let map t n f =
  if t.shut then invalid_arg "Pool.map: pool is shut down";
  if n <= 1 || t.nworkers = 0 then Array.init n f
  else begin
    let results = Array.make n None in
    let b =
      {
        run = (fun i -> results.(i) <- Some (f i));
        n;
        next = Atomic.make 0;
        pending = Atomic.make n;
        err = Atomic.make None;
      }
    in
    Mutex.lock t.m;
    t.batch <- Some b;
    t.gen <- t.gen + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    drain t b;
    Mutex.lock t.m;
    while Atomic.get b.pending > 0 do
      Condition.wait t.finished t.m
    done;
    t.batch <- None;
    Mutex.unlock t.m;
    (match Atomic.get b.err with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let default_domains =
  let v =
    lazy
      (match Sys.getenv_opt "IHNET_DOMAINS" with
      | Some s -> ( try clamp (int_of_string (String.trim s)) with _ -> 1)
      | None -> 1)
  in
  fun () -> Lazy.force v

let shared : t option ref = ref None
let exit_hooked = ref false

let get n =
  let fresh () =
    let p = create n in
    shared := Some p;
    if not !exit_hooked then begin
      exit_hooked := true;
      at_exit (fun () -> Option.iter shutdown !shared)
    end;
    p
  in
  match !shared with
  | Some p when not p.shut ->
    grow p n;
    p
  | _ -> fresh ()
