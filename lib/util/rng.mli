(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that all experiments are exactly reproducible from a seed.
    The generator is SplitMix64 (Steele et al.), which is fast, has a
    64-bit state, and is trivially splittable — each tenant/app gets an
    independent stream via {!split}. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each workload source its own stream so that adding a
    source does not perturb the draws of the others. *)

val copy : t -> t
(** Duplicate the current state (the copies then evolve separately). *)

val stream : int -> int -> t
(** [stream seed i] is the [i]-th independent generator derived from
    [seed] — a pure function of [(seed, i)], unlike {!split}, which
    advances the parent. A fleet gives host [i] the stream [i] so each
    host's draws are identical under any sharding or creation order.
    Requires [i >= 0]. *)

val peek : t -> int64
(** Current internal state, read without advancing the stream — the
    scan port's view of the generator. Two generators with equal
    [peek] values produce identical future streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. Used for
    Poisson inter-arrival times. *)

val pareto : t -> float -> float -> float
(** [pareto t alpha x_min] draws from a Pareto distribution; heavy-tailed
    flow sizes. Requires [alpha > 0.], [x_min > 0.]. *)

val gaussian : t -> float -> float -> float
(** [gaussian t mu sigma] draws a normal variate (Box–Muller). *)

val zipf : t -> int -> float -> int
(** [zipf t n s] draws a rank in [\[1, n\]] with Zipf exponent [s] by
    inversion on the precomputed CDF (O(log n) after an O(n) setup that
    is cached per [(n, s)]). Models skewed key popularity. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
