(* Parallel-array binary heap. Priorities live in a bare [float array]
   (unboxed flat storage), so sift comparisons are direct loads instead
   of pointer chases through boxed records — the heap is on the
   simulator's and allocator's innermost paths. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { prios = [||]; seqs = [||]; vals = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let lt t i j =
  t.prios.(i) < t.prios.(j) || (t.prios.(i) = t.prios.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let grow t fill =
  let cap = Array.length t.prios in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let np = Array.make ncap 0.0 in
    let ns = Array.make ncap 0 in
    let nv = Array.make ncap fill in
    Array.blit t.prios 0 np 0 t.len;
    Array.blit t.seqs 0 ns 0 t.len;
    Array.blit t.vals 0 nv 0 t.len;
    t.prios <- np;
    t.seqs <- ns;
    t.vals <- nv
  end

let push t prio value =
  grow t value;
  let n = t.len in
  t.prios.(n) <- prio;
  t.seqs.(n) <- t.next_seq;
  t.vals.(n) <- value;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  let i = ref n in
  while !i > 0 && lt t !i ((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    swap t !i p;
    i := p
  done

let peek t = if t.len = 0 then None else Some (t.prios.(0), t.vals.(0))

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) and value = t.vals.(0) in
    t.len <- t.len - 1;
    let n = t.len in
    if n > 0 then begin
      t.prios.(0) <- t.prios.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.vals.(0) <- t.vals.(n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < n && lt t l !smallest then smallest := l;
        if r < n && lt t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (prio, value)
  end

let clear t = t.len <- 0

let rec drop_while t pred =
  if t.len > 0 && pred t.vals.(0) then begin
    ignore (pop t);
    drop_while t pred
  end

let to_list t =
  let copy =
    {
      prios = Array.sub t.prios 0 t.len;
      seqs = Array.sub t.seqs 0 t.len;
      vals = Array.sub t.vals 0 t.len;
      len = t.len;
      next_seq = t.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some pv -> drain (pv :: acc)
  in
  drain []
