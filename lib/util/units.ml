type ns = float
type bytes_per_s = float

let ns x = x
let us x = x *. 1e3
let ms x = x *. 1e6
let s x = x *. 1e9
let ns_to_us t = t /. 1e3
let ns_to_ms t = t /. 1e6
let ns_to_s t = t /. 1e9

let gib x = x *. 1073741824.0
let mib x = x *. 1048576.0
let kib x = x *. 1024.0

let gbps x = x *. 1e9 /. 8.0
let gbytes_per_s x = x *. 1e9
let mbytes_per_s x = x *. 1e6
let to_gbps r = r *. 8.0 /. 1e9
let to_gbytes_per_s r = r /. 1e9

let pp_rate ppf r =
  if r >= 1e9 then Format.fprintf ppf "%.1f GB/s" (r /. 1e9)
  else if r >= 1e6 then Format.fprintf ppf "%.0f MB/s" (r /. 1e6)
  else if r >= 1e3 then Format.fprintf ppf "%.0f KB/s" (r /. 1e3)
  else Format.fprintf ppf "%.0f B/s" r

let pp_time ppf t =
  if t >= 1e9 then Format.fprintf ppf "%.2f s" (t /. 1e9)
  else if t >= 1e6 then Format.fprintf ppf "%.2f ms" (t /. 1e6)
  else if t >= 1e3 then Format.fprintf ppf "%.2f us" (t /. 1e3)
  else Format.fprintf ppf "%.0f ns" t

let pp_bytes ppf b =
  if b >= 1073741824.0 then Format.fprintf ppf "%.2f GiB" (b /. 1073741824.0)
  else if b >= 1048576.0 then Format.fprintf ppf "%.2f MiB" (b /. 1048576.0)
  else if b >= 1024.0 then Format.fprintf ppf "%.1f KiB" (b /. 1024.0)
  else Format.fprintf ppf "%.0f B" b
