type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }
let peek t = t.state

(* The i-th derived stream is a function of (seed, i) alone — unlike
   [split] it does not advance any shared generator, so stream i is the
   same no matter how many siblings exist or in what order they are
   built. The two mix64 rounds decorrelate seeds and indices that
   differ in few bits. *)
let stream seed i =
  if i < 0 then invalid_arg "Rng.stream: negative index";
  { state = mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.mul golden_gamma (Int64.of_int (i + 1)))) }

let int t n =
  assert (n > 0);
  (* keep 62 bits so the value is a non-negative OCaml int *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

(* 53 random mantissa bits -> uniform in [0,1). *)
let unit_float t =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let float t x = unit_float t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let exponential t mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let pareto t alpha x_min =
  assert (alpha > 0.0 && x_min > 0.0);
  let u = 1.0 -. unit_float t in
  x_min /. (u ** (1.0 /. alpha))

let gaussian t mu sigma =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

(* Zipf by inversion on a cached CDF. The cache is keyed by (n, s); a
   workload typically uses one or two distinct key spaces so this stays
   tiny. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf_cdf n s =
  match Hashtbl.find_opt zipf_cache (n, s) with
  | Some cdf -> cdf
  | None ->
    let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (w.(i) /. total);
      cdf.(i) <- !acc
    done;
    cdf.(n - 1) <- 1.0;
    Hashtbl.add zipf_cache (n, s) cdf;
    cdf

let zipf t n s =
  assert (n > 0);
  let cdf = zipf_cdf n s in
  let u = unit_float t in
  (* smallest i with cdf.(i) >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1) + 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
