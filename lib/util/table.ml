type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  let ncols = List.length t.columns in
  let n = List.length cells in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let cells = if n < ncols then cells @ List.init (ncols - n) (fun _ -> "") else cells in
  t.rows <- cells :: t.rows

let add_rowf t fmt =
  Format.kasprintf (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim)) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) row)
    all;
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        Buffer.add_string buf (pad c widths.(i));
        Buffer.add_string buf " | ")
      row;
    (* drop trailing space *)
    let len = Buffer.length buf in
    Buffer.truncate buf (len - 1);
    Buffer.add_char buf '\n'
  in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  sep ();
  line t.columns;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let csv_cell c =
  if String.contains c ',' || String.contains c '"' then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells = Buffer.add_string buf (String.concat "," (List.map csv_cell cells) ^ "\n") in
  row t.columns;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let title t = t.title

let print t =
  print_string (render t);
  print_newline ()

let cell_f x =
  if Float.is_nan x then "-"
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x
