(** Binary min-heap keyed by [float] priority.

    The simulator's event queue. Entries with equal priority are popped
    in insertion order (a monotone sequence number breaks ties), which
    keeps event execution deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Smallest priority without removing. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority entry. O(log n). *)

val clear : 'a t -> unit

val drop_while : 'a t -> ('a -> bool) -> unit
(** [drop_while h pred] pops entries while the minimum entry's value
    satisfies [pred]. Supports lazy deletion: push a generation stamp
    with each value and drop stale tops before peeking. *)

val to_list : 'a t -> (float * 'a) list
(** All entries in pop order (non-destructive; O(n log n)). Testing aid. *)
