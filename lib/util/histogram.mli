(** Log-bucketed latency histogram (HdrHistogram-style).

    Records non-negative values with bounded relative error (one bucket
    per power of two, [sub] sub-buckets each), so p99 of a billion
    samples costs O(buckets) memory. Used for latency telemetry. *)

type t

val create : ?sub:int -> unit -> t
(** [sub] sub-buckets per octave (default 32 — ~3% relative error). *)

val add : t -> float -> unit
(** Record a value. Negative or non-finite values (NaN, [infinity])
    are ignored — an infinite value would otherwise compute a garbage
    bucket index and permanently poison [sum]/[mean]. *)

val merge : t -> t -> unit
(** [merge dst src] adds all of [src]'s counts into [dst]. The two must
    have the same [sub]. *)

val count : t -> int
val total : t -> float

val mean : t -> float
(** Approximate mean (bucket midpoints); [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t q], [q] in [\[0,1\]]; [nan] when empty. Returns the
    representative (midpoint) value of the bucket holding the q-th
    sample, clamped to [\[min_value, max_value\]] (a lone sample's
    bucket midpoint can stick out past the sample itself). *)

val max_value : t -> float
(** Largest recorded value (exact). [nan] when empty. *)

val min_value : t -> float

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One-line summary: count / mean / p50 / p99 / max. *)
