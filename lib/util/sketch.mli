(** Fixed-geometry, allocation-free latency sketch (HdrHistogram-style).

    Same log-linear bucket layout as {!Histogram} — one octave per power
    of two, [sub] linear sub-buckets each, values in [\[0,1)] in a linear
    range below the octaves — but backed by a flat [int array] sized at
    creation, so {!record} never allocates, resizes, or hashes. This is
    the always-on variant: cheap enough to leave recording on every
    reallocation epoch.

    Determinism contract: a sketch stores only integer counts plus exact
    min/max; mean and percentiles are derived from the counts in bucket
    order at read time. Integer addition and [Float.min]/[Float.max] are
    commutative and associative, so {!merge}d sketches report
    bit-identical statistics under any merge grouping or order — the
    property {!Fleet}-style roll-ups rely on. {!Histogram} remains the
    reference oracle for the differential property tests. *)

type t

val create : ?sub:int -> ?max_octave:int -> unit -> t
(** [sub] sub-buckets per octave (default 32 — ~3% relative error).
    [max_octave] is the largest represented power of two (default 40,
    i.e. ~2^40 ns ≈ 18 min — plenty for intra-host latencies); larger
    values clamp into the top bucket, with min/max staying exact. *)

val sub : t -> int
val max_octave : t -> int

val record : t -> float -> unit
(** Record a value. Non-finite or negative values are ignored.
    Allocation-free: a bucket index is computed with [Float.frexp] and a
    flat-array slot is bumped. *)

val count : t -> int

val total : t -> float
(** Sum of bucket midpoints weighted by counts, accumulated in bucket
    order (bit-deterministic); 0 when empty. *)

val mean : t -> float
(** [total t /. count t]; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t q], [q] in [\[0,1\]]; [nan] when empty. Midpoint of
    the bucket holding the q-th sample, clamped to
    [\[min_value, max_value\]] so the estimate never leaves the observed
    range. *)

val max_value : t -> float
(** Largest recorded value (exact). [nan] when empty. *)

val min_value : t -> float

val merge : t -> t -> unit
(** [merge dst src] adds all of [src]'s counts into [dst].
    @raise Invalid_argument when the two geometries ([sub],
    [max_octave]) differ. *)

val copy : t -> t
val clear : t -> unit

val fold_buckets : t -> init:'a -> ('a -> int -> 'a) -> 'a
(** Fold over the raw bucket counts in index order, without exposing
    (or copying) the backing array — enough to hash the full bucket
    state into a scan digest. *)

type snapshot = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : float;
}
(** A one-shot percentile summary — the unit telemetry and the CLI
    surface. All fields [nan] (count 0) when empty. *)

val snapshot : t -> snapshot

val pp : Format.formatter -> t -> unit
(** One-line summary: count / mean / p50 / p99 / p999 / max. *)
