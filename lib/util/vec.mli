(** Growable array ("vector").

    Amortized O(1) push, O(1) indexed read, O(1) clear. The engine
    uses these as preallocated scratch buffers on its reallocation hot
    path: [clear] keeps the backing store, so a steady-state workload
    stops allocating once the high-water mark is reached. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append one element. Amortized O(1); doubles the backing array. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val clear : 'a t -> unit
(** Logical reset; the backing array (and its references) survive
    until overwritten by later pushes. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
(** Fresh array of the live prefix. O(n). *)
