(* Buckets are indexed by (octave, sub-bucket): octave = exponent of
   the largest power of two <= v, sub-bucket = position within the
   octave. Values in [0,1) land in octave 0's linear range. We support
   values up to 2^52. The octave comes from Float.frexp, which is
   exact; floor (log2 v) rounds up for v just below a power of two
   (log2 (pred 8.0) = 3.0 in doubles), which made frac negative and
   misbucketed into the previous octave. *)

type t = {
  sub : int;
  counts : (int, int) Hashtbl.t; (* bucket index -> count *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create ?(sub = 32) () =
  assert (sub > 0);
  { sub; counts = Hashtbl.create 64; n = 0; sum = 0.0; mn = infinity; mx = neg_infinity }

let bucket_of t v =
  if v < 1.0 then int_of_float (v *. float_of_int t.sub)
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5,1), so v in [2^(e-1), 2^e) *)
    let octave = e - 1 in
    let frac = (m *. 2.0) -. 1.0 in
    let sb = int_of_float (frac *. float_of_int t.sub) in
    let sb = if sb >= t.sub then t.sub - 1 else sb in
    ((octave + 1) * t.sub) + sb
  end

let value_of t idx =
  if idx < t.sub then (float_of_int idx +. 0.5) /. float_of_int t.sub
  else begin
    let octave = (idx / t.sub) - 1 in
    let sb = idx mod t.sub in
    let base = 2.0 ** float_of_int octave in
    base +. ((float_of_int sb +. 0.5) /. float_of_int t.sub *. base)
  end

let add t v =
  if not (Float.is_finite v) || v < 0.0 then ()
  else begin
    let idx = bucket_of t v in
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.counts idx) in
    Hashtbl.replace t.counts idx (cur + 1);
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v
  end

let merge dst src =
  assert (dst.sub = src.sub);
  Hashtbl.iter
    (fun idx c ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt dst.counts idx) in
      Hashtbl.replace dst.counts idx (cur + c))
    src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.mn < dst.mn then dst.mn <- src.mn;
  if src.mx > dst.mx then dst.mx <- src.mx

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let sorted_buckets t =
  let items = Hashtbl.fold (fun idx c acc -> (idx, c) :: acc) t.counts [] in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let percentile t q =
  if t.n = 0 then nan
  else begin
    let target = q *. float_of_int t.n in
    let rec walk acc = function
      | [] -> t.mx
      | (idx, c) :: rest ->
        let acc = acc +. float_of_int c in
        if acc >= target then value_of t idx else walk acc rest
    in
    (* bucket midpoints can exceed the largest observed value; keep the
       estimate inside [min, max] *)
    Float.min t.mx (Float.max t.mn (walk 0.0 (sorted_buckets t)))
  end

let max_value t = if t.n = 0 then nan else t.mx
let min_value t = if t.n = 0 then nan else t.mn

let clear t =
  Hashtbl.reset t.counts;
  t.n <- 0;
  t.sum <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f" t.n (mean t)
      (percentile t 0.5) (percentile t 0.99) t.mx
