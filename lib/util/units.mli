(** Physical units used throughout [ihnet].

    Conventions, fixed once and used everywhere:
    - {b time} is simulated nanoseconds, carried as [float] ([ns]);
    - {b data} is bytes, carried as [float] when it is a rate numerator
      and as [int] when it is a discrete size;
    - {b rates} are bytes per second ([bytes/s]).

    The helpers below exist so that magic conversion factors ([1e9],
    [2.0 ** 30.0], ...) appear in exactly one module. *)

type ns = float
(** Simulated time in nanoseconds. *)

type bytes_per_s = float
(** Bandwidth in bytes per second. *)

val ns : float -> ns
(** Identity, for call-site documentation: [ns 500.0]. *)

val us : float -> ns
(** [us x] is [x] microseconds in nanoseconds. *)

val ms : float -> ns
(** [ms x] is [x] milliseconds in nanoseconds. *)

val s : float -> ns
(** [s x] is [x] seconds in nanoseconds. *)

val ns_to_us : ns -> float
val ns_to_ms : ns -> float
val ns_to_s : ns -> float

val gib : float -> float
(** [gib x] is [x] gibibytes in bytes (2{^30}-based). *)

val mib : float -> float
val kib : float -> float

val gbps : float -> bytes_per_s
(** [gbps x] is [x] gigabits per second as bytes/s (decimal giga,
    matching how link speeds are quoted in the paper and by vendors). *)

val gbytes_per_s : float -> bytes_per_s
(** [gbytes_per_s x] is [x] gigabytes per second as bytes/s (decimal). *)

val mbytes_per_s : float -> bytes_per_s

val to_gbps : bytes_per_s -> float
(** Inverse of {!gbps}, for reporting. *)

val to_gbytes_per_s : bytes_per_s -> float

val pp_rate : Format.formatter -> bytes_per_s -> unit
(** Human-friendly rate, e.g. ["25.6 GB/s"] or ["845 MB/s"]. *)

val pp_time : Format.formatter -> ns -> unit
(** Human-friendly duration, e.g. ["130 ns"], ["2.1 us"], ["4.2 ms"]. *)

val pp_bytes : Format.formatter -> float -> unit
(** Human-friendly byte count, e.g. ["64 B"], ["1.5 MiB"]. *)
