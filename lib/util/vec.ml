type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let exists f t =
  let rec go i = i < t.len && (f t.data.(i) || go (i + 1)) in
  go 0

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len
