(** Versioned JSON-lines trace format of the flight recorder.

    A trace is one header line followed by a stream of command lines
    (the external mutations applied to the fabric, in dispatch order),
    annotation lines (flow completions and remediation actions, used as
    conformance checks / forensics during replay) and digest lines
    (compact state fingerprints taken every [digest_every]-th
    reallocation epoch). All times are simulated nanoseconds relative
    to the moment the recorder attached; all flow ids are the recording
    fabric's ids.

    Every value round-trips exactly: floats are printed with 17
    significant digits (and [inf]/[-inf]/[nan] as tagged strings), so
    [line_of_string (line_to_string l) = Ok l]. The digest hashes are
    FNV-1a over the raw IEEE-754 bits, making a digest comparison an
    exact — not approximate — state equality check. *)

(** {1 Digests} *)

type digest = {
  d_at : float;  (** Clock at the digest point (shifted ns). *)
  d_epoch : int;  (** Reallocation epoch, relative to attach. *)
  d_flows : int;  (** Running flow count. *)
  d_alloc : int64;  (** Hash over sorted (flow id, rate bits). *)
  d_floor : int64;  (** Hash over sorted (flow id, floor bits), floor > 0. *)
  d_bytes : int64;  (** Hash over per-(link, dir) cumulative byte bits. *)
}

val fnv_basis : int64
val fnv_int : int64 -> int -> int64
val fnv_int64 : int64 -> int64 -> int64
(** Fold a full 64-bit word (byte at a time) — what the fleet
    controller uses to chain per-host {!Scanport} digests into one
    fleet fingerprint. *)

val fnv_float : int64 -> float -> int64
val fnv_string : int64 -> string -> int64

(** {1 Lines} *)

type fault = { capacity_factor : float; extra_latency : float; loss_prob : float }

type starget = Sf_device of int | Sf_series of string
(** Sensor-fault target: a device id or a telemetry series name
    (mirrors {!Ihnet_engine.Sensorfault.target} without the engine
    dependency in the codec types). *)

type sensor_fault = {
  sf_stuck : bool;
  sf_drift : float;
  sf_drop : float;
  sf_dup : float;
  sf_skew : float;
  sf_probe_loss : float;
  sf_probe_slow : float;
}

type config = {
  iommu : (int * float * float) option;  (** entries, hit, miss penalty. *)
  ddio : (int * int * float) option;  (** llc ways, io ways, way size. *)
  pcie_mps : int;
  relaxed_ordering : bool;
  acs : bool;
  interrupt_moderation : float;
}

type flow_spec = {
  flow_id : int;
  tenant : int;
  cls : string;
  weight : float;
  floor : float;
  cap : float;
  demand : float;
  payload_bytes : int;
  working_set_pages : int;
  llc_target : bool;
  size : float option;  (** [None] = unbounded. *)
  src : int;
  dst : int;
  hops : (int * int) list;  (** (link id, 0 = Fwd / 1 = Rev). *)
}

type op =
  | Start_flow of flow_spec
  | Stop_flow of int
  | Set_limits of { flow_id : int; weight : float; floor : float; cap : float }
  | Inject_fault of { link : int; fault : fault }
  | Clear_fault of int
  | Clear_all_faults
  | Inject_sensor_fault of { starget : starget; sf : sensor_fault }
      (** Telemetry-plane fault (additive in version 1: older traces
          simply contain none; these ops are epoch-neutral — they never
          reallocate — so digest alignment is unaffected). *)
  | Clear_sensor_fault of starget
  | Set_config of config
  | Sync  (** An observation-driven counter sync (see {!Ihnet_engine.Fabric.event}). *)
  | Batch_start
  | Batch_end

type header = {
  version : int;
  preset : string;  (** Topology preset name, used to rebuild the host. *)
  seed : int;
  label : string;
  digest_every : int;
  host_config : config;  (** Configuration at attach time. *)
}

type line =
  | Header of header
  | Op of { at : float; op : op }
  | Completed of { at : float; flow_id : int; transferred : float }
  | Action of { at : float; link : int; stage : string; detail : string }
  | Digest of digest
  | Final of digest

val version : int

val config_of_host : Ihnet_topology.Hostconfig.t -> config
val host_of_config : config -> Ihnet_topology.Hostconfig.t

val line_to_string : line -> string
(** One line of JSON, no trailing newline. *)

val line_of_string : string -> (line, string) result

(** {1 Whole traces} *)

type t = { header : header; lines : line list }
(** [lines] excludes the header and preserves file order. *)

val of_lines : line list -> (t, string) result
(** First line must be the header. *)

val parse : string -> (t, string) result
(** Parse a full JSON-lines document (blank lines ignored). *)

val load : string -> (t, string) result
(** Read and parse a trace file. *)

val save : string -> t -> unit

val fingerprint : t -> int64
(** FNV chain over every serialized line — a whole-trace identity used
    by the golden store. *)

(** {1 JSON model}

    The hand-rolled JSON the trace codec is built on, exposed so the
    golden store (and tools) can read and write small JSON documents
    with the same exact float round-tripping, without a dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val json_of_string : string -> json
(** @raise Parse_error on malformed input. *)

val json_to_string : json -> string
val jfloat : float -> json
(** Non-finite floats travel as tagged strings ("inf"/"-inf"/"nan"). *)

val jint : int -> json
val jhash : int64 -> json

val field : json -> string -> json
(** @raise Parse_error when missing or not an object. *)

val field_opt : json -> string -> json option
val as_float : json -> float
val as_int : json -> int
val as_string : json -> string
val as_bool : json -> bool
val as_list : json -> json list
val as_hash : json -> int64
val digest_to_json : digest -> json
val digest_of_json : json -> digest
