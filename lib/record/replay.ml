module E = Ihnet_engine
module M = Ihnet_manager
module T = Ihnet_topology

type divergence = {
  at : float;
  epoch : int;
  kind : string;
  detail : string;
  register : string option;
      (* first divergent scan register (path + values), when a scan
         reference was available for the divergent digest epoch *)
}

type report = {
  ops : int;
  digests_checked : int;
  completions_checked : int;
  divergences : int;
  first_divergence : divergence option;
  invariant_failures : string list;
  final_at : float;
}

let topology_of_preset preset (config : Trace.config) =
  let config = Trace.host_of_config config in
  match preset with
  | "two-socket-server" -> Ok (T.Builder.two_socket_server ~config ())
  | "dgx-like" -> Ok (T.Builder.dgx_like ~config ())
  | "epyc-like" -> Ok (T.Builder.epyc_like ~config ())
  | "minimal" -> Ok (T.Builder.minimal ~config ())
  | p -> Error (Printf.sprintf "unknown topology preset %S (trace not replayable)" p)

let cls_of_label = function
  | "payload" -> Ok E.Flow.Payload
  | "monitoring" -> Ok E.Flow.Monitoring
  | "heartbeat" -> Ok E.Flow.Heartbeat
  | "probe" -> Ok E.Flow.Probe
  | "induced" -> Ok E.Flow.Induced
  | c -> Error ("unknown flow class " ^ c)

(* {1 Invariants} *)

let check_invariants ?manager fab =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let topo = E.Fabric.topology fab in
  (* no link loaded beyond its effective capacity (fluid rounding slack:
     1e-6 relative + 1 byte/s absolute) *)
  for l = 0 to T.Topology.link_count topo - 1 do
    List.iter
      (fun dir ->
        let cap = E.Fabric.effective_capacity fab l dir in
        let rate = E.Fabric.link_rate fab l dir in
        if rate > (cap *. (1.0 +. 1e-6)) +. 1.0 then
          fail "link %d/%s over capacity: %.6g > %.6g" l
            (match dir with T.Link.Fwd -> "fwd" | T.Link.Rev -> "rev")
            rate cap)
      [ T.Link.Fwd; T.Link.Rev ]
  done;
  (* byte conservation for bounded running flows *)
  E.Fabric.refresh fab;
  List.iter
    (fun (f : E.Flow.t) ->
      match f.E.Flow.size with
      | E.Flow.Bytes size ->
        let total = f.E.Flow.transferred +. f.E.Flow.remaining in
        if Float.abs (total -. size) > (1e-6 *. size) +. 1.0 then
          fail "flow %d byte conservation: transferred+remaining=%.6g, size=%.6g" f.E.Flow.id
            total size
      | E.Flow.Unbounded ->
        if f.E.Flow.remaining <> infinity then
          fail "flow %d unbounded but remaining=%.6g" f.E.Flow.id f.E.Flow.remaining)
    (E.Fabric.active_flows fab);
  (* floors installed by the arbiter must belong to running flows *)
  (match manager with
  | None -> ()
  | Some mgr ->
    let running =
      List.fold_left
        (fun acc (f : E.Flow.t) -> f.E.Flow.id :: acc)
        [] (E.Fabric.active_flows fab)
    in
    List.iter
      (fun (id, floor) ->
        if floor > 0.0 && not (List.mem id running) then
          fail "floor %.6g installed for flow %d which is not running" floor id)
      (M.Arbiter.installed_floors (M.Manager.arbiter mgr)));
  List.rev !failures

(* {1 Replay state} *)

type st = {
  sim : E.Sim.t;
  fab : E.Fabric.t;
  topo : T.Topology.t;
  fwd : (int, E.Flow.t) Hashtbl.t; (* recorded id -> replayed flow *)
  rev : (int, int) Hashtbl.t; (* replayed id -> recorded id *)
  mutable next_id : int; (* the replay fabric's next flow id (sequential from 0) *)
  digest_every : int;
  digests : Trace.digest Queue.t;
  completions : (float * int * float) Queue.t;
  mutable epoch : int;
  mutable ops : int;
  mutable digests_checked : int;
  mutable completions_checked : int;
  mutable divergences : int;
  mutable first_divergence : divergence option;
  mutable invariant_failures : string list; (* reversed *)
  reference : (int * Scanport.snapshot) list; (* digest epoch -> clean-run scan (-1 = final) *)
  on_digest : (int -> E.Fabric.t -> unit) option; (* post-check hook (reference collection) *)
}

let diverge ?register st ~at ~epoch kind detail =
  st.divergences <- st.divergences + 1;
  if st.first_divergence = None then
    st.first_divergence <- Some { at; epoch; kind; detail; register }

(* Escalate a digest mismatch from "first bad epoch" to "first bad
   register": scan the divergent fabric out of band and diff it against
   the clean-run snapshot captured at the same digest point. Runs after
   Recorder.digest has synced byte counters at both capture sites, so
   the two scans align on last_update. *)
let drill_down st key =
  match List.assoc_opt key st.reference with
  | None -> None
  | Some ref_snap -> (
    let own = Scanport.capture st.fab in
    match Scanport.diff ref_snap own with
    | Some m -> Some (Format.asprintf "%a" Scanport.pp_mismatch m)
    | None -> None)

let hex = Printf.sprintf "0x%016Lx"

let check_digest st epoch =
  let at = E.Sim.now st.sim in
  (match Queue.take_opt st.digests with
  | None ->
    diverge st ~at ~epoch "extra-digest"
      (Printf.sprintf "replay reached digest epoch %d past the end of the recorded stream" epoch)
  | Some (exp : Trace.digest) ->
    st.digests_checked <- st.digests_checked + 1;
    let got =
      Recorder.digest
        ~id_of:(fun f ->
          match Hashtbl.find_opt st.rev f.E.Flow.id with Some id -> id | None -> -1 - f.E.Flow.id)
        ~at ~epoch st.fab
    in
    let mismatch kind detail = diverge ?register:(drill_down st epoch) st ~at ~epoch kind detail in
    if exp.Trace.d_epoch <> got.Trace.d_epoch then
      mismatch "epoch" (Printf.sprintf "recorded epoch %d, replayed %d" exp.Trace.d_epoch epoch)
    else if exp.Trace.d_at <> got.Trace.d_at then
      mismatch "clock" (Printf.sprintf "recorded t=%.17g ns, replayed t=%.17g ns" exp.Trace.d_at got.Trace.d_at)
    else if exp.Trace.d_flows <> got.Trace.d_flows then
      mismatch "flows" (Printf.sprintf "recorded %d running flows, replayed %d" exp.Trace.d_flows got.Trace.d_flows)
    else if exp.Trace.d_alloc <> got.Trace.d_alloc then
      mismatch "alloc"
        (Printf.sprintf "allocation vector hash %s vs %s" (hex exp.Trace.d_alloc) (hex got.Trace.d_alloc))
    else if exp.Trace.d_floor <> got.Trace.d_floor then
      mismatch "floors"
        (Printf.sprintf "floor set hash %s vs %s" (hex exp.Trace.d_floor) (hex got.Trace.d_floor))
    else if exp.Trace.d_bytes <> got.Trace.d_bytes then
      mismatch "bytes"
        (Printf.sprintf "byte counter hash %s vs %s" (hex exp.Trace.d_bytes) (hex got.Trace.d_bytes)));
  (match st.on_digest with Some f -> f epoch st.fab | None -> ());
  if List.length st.invariant_failures < 32 then
    st.invariant_failures <-
      List.rev_append
        (List.map (Printf.sprintf "t=%.0f: %s" at) (check_invariants st.fab))
        st.invariant_failures

let check_completion st (f : E.Flow.t) =
  let at = E.Sim.now st.sim in
  let orig =
    match Hashtbl.find_opt st.rev f.E.Flow.id with Some id -> id | None -> -1 - f.E.Flow.id
  in
  match Queue.take_opt st.completions with
  | None ->
    diverge st ~at ~epoch:st.epoch "extra-completion"
      (Printf.sprintf "flow %d completed in replay but not in the recording" orig)
  | Some (exp_at, exp_id, exp_bytes) ->
    st.completions_checked <- st.completions_checked + 1;
    if exp_id <> orig then
      diverge st ~at ~epoch:st.epoch "completion-order"
        (Printf.sprintf "recorded completion of flow %d, replayed flow %d" exp_id orig)
    else if exp_at <> at then
      diverge st ~at ~epoch:st.epoch "completion-time"
        (Printf.sprintf "flow %d completed at %.17g ns, recorded %.17g ns" orig at exp_at)
    else if exp_bytes <> f.E.Flow.transferred then
      diverge st ~at ~epoch:st.epoch "completion-bytes"
        (Printf.sprintf "flow %d moved %.17g bytes, recorded %.17g" orig f.E.Flow.transferred
           exp_bytes)

(* {1 Command application} *)

let starget_of : Trace.starget -> E.Sensorfault.target = function
  | Trace.Sf_device d -> E.Sensorfault.Device d
  | Trace.Sf_series s -> E.Sensorfault.Series s

let apply st (op : Trace.op) =
  st.ops <- st.ops + 1;
  let at = E.Sim.now st.sim in
  let missing id what =
    diverge st ~at ~epoch:st.epoch "unknown-flow"
      (Printf.sprintf "%s refers to recorded flow %d which replay never started" what id)
  in
  match op with
  | Trace.Start_flow s -> (
    match cls_of_label s.Trace.cls with
    | Error e -> diverge st ~at ~epoch:st.epoch "malformed-op" e
    | Ok cls -> (
      match
        List.map
          (fun (lid, d) ->
            { T.Path.link = T.Topology.link st.topo lid; dir = (if d = 0 then T.Link.Fwd else T.Link.Rev) })
          s.Trace.hops
      with
      | hops ->
        let path = { T.Path.src = s.Trace.src; dst = s.Trace.dst; hops } in
        (* map the id the fabric is about to assign *before* starting:
           the start's own reallocation may hit a digest epoch, and the
           digest must already see this flow under its recorded id *)
        Hashtbl.replace st.rev st.next_id s.Trace.flow_id;
        let f =
          E.Fabric.start_flow st.fab ~tenant:s.Trace.tenant ~cls ~weight:s.Trace.weight
            ~floor:s.Trace.floor ~cap:s.Trace.cap ~demand:s.Trace.demand
            ~payload_bytes:s.Trace.payload_bytes ~working_set_pages:s.Trace.working_set_pages
            ~llc_target:s.Trace.llc_target ~path
            ~size:(match s.Trace.size with Some b -> E.Flow.Bytes b | None -> E.Flow.Unbounded)
            ()
        in
        st.next_id <- f.E.Flow.id + 1;
        Hashtbl.replace st.fwd s.Trace.flow_id f;
        Hashtbl.replace st.rev f.E.Flow.id s.Trace.flow_id
      | exception Not_found ->
        diverge st ~at ~epoch:st.epoch "malformed-op"
          (Printf.sprintf "flow %d path references a link unknown to preset topology"
             s.Trace.flow_id)))
  | Trace.Stop_flow id -> (
    match Hashtbl.find_opt st.fwd id with
    | Some f -> E.Fabric.stop_flow st.fab f
    | None -> missing id "stop")
  | Trace.Set_limits { flow_id; weight; floor; cap } -> (
    match Hashtbl.find_opt st.fwd flow_id with
    | Some f -> E.Fabric.set_flow_limits st.fab f ~weight ~floor ~cap ()
    | None -> missing flow_id "set_limits")
  | Trace.Inject_fault { link; fault } ->
    E.Fabric.inject_fault st.fab link
      {
        E.Fault.capacity_factor = fault.Trace.capacity_factor;
        extra_latency = fault.Trace.extra_latency;
        loss_prob = fault.Trace.loss_prob;
      }
  | Trace.Clear_fault link -> E.Fabric.clear_fault st.fab link
  | Trace.Clear_all_faults -> E.Fabric.clear_all_faults st.fab
  | Trace.Inject_sensor_fault { starget; sf } ->
    E.Fabric.inject_sensor_fault st.fab (starget_of starget)
      {
        E.Sensorfault.stuck = sf.Trace.sf_stuck;
        drift = sf.Trace.sf_drift;
        drop_prob = sf.Trace.sf_drop;
        dup_prob = sf.Trace.sf_dup;
        skew = sf.Trace.sf_skew;
        probe_loss = sf.Trace.sf_probe_loss;
        probe_slow = sf.Trace.sf_probe_slow;
      }
  | Trace.Clear_sensor_fault starget ->
    E.Fabric.clear_sensor_fault st.fab (starget_of starget)
  | Trace.Set_config c -> E.Fabric.set_config st.fab (Trace.host_of_config c)
  | Trace.Sync -> E.Fabric.refresh st.fab
  | Trace.Batch_start | Trace.Batch_end ->
    (* batches are grouped during scheduling; bare markers are no-ops *)
    ()

(* {1 The engine} *)

let run_gen ?setup ?perturb ?domains ?(reference = []) ?on_digest (trace : Trace.t) =
  match topology_of_preset trace.Trace.header.Trace.preset trace.Trace.header.Trace.host_config with
  | Error e -> Error e
  | Ok topo ->
    let sim = E.Sim.create () in
    let fab = E.Fabric.create ~seed:trace.Trace.header.Trace.seed ?domains sim topo in
    let st =
      {
        sim;
        fab;
        topo;
        fwd = Hashtbl.create 256;
        rev = Hashtbl.create 256;
        next_id = 0;
        digest_every = trace.Trace.header.Trace.digest_every;
        digests = Queue.create ();
        completions = Queue.create ();
        epoch = 0;
        ops = 0;
        digests_checked = 0;
        completions_checked = 0;
        divergences = 0;
        first_divergence = None;
        invariant_failures = [];
        reference;
        on_digest;
      }
    in
    (match setup with Some f -> f sim fab | None -> ());
    E.Fabric.subscribe fab (fun ev ->
        match ev with
        | E.Fabric.Reallocated epoch ->
          st.epoch <- epoch;
          if epoch mod st.digest_every = 0 then check_digest st epoch
        | E.Fabric.Flow_completed f -> check_completion st f
        | _ -> ());
    (* clock monotonicity of the trace itself *)
    let prev_at = ref neg_infinity in
    let monotone at =
      if at < !prev_at then
        st.invariant_failures <-
          Printf.sprintf "clock regression in trace: %.17g after %.17g" at !prev_at
          :: st.invariant_failures
      else prev_at := at
    in
    (* schedule commands in file order (FIFO keeps equal-time order);
       ops inside a recorded batch group into one Fabric.batch call so
       the replayed reallocation epochs stay 1:1 with the recording *)
    let final = ref None in
    let rec sched = function
      | [] -> ()
      | Trace.Op { at; op = Trace.Batch_start } :: rest ->
        monotone at;
        let rec collect acc = function
          | Trace.Op { op = Trace.Batch_end; _ } :: rest -> (List.rev acc, rest)
          | Trace.Op { op; _ } :: rest -> collect (op :: acc) rest
          | (Trace.Digest _ as l) :: rest | (Trace.Completed _ as l) :: rest
          | (Trace.Action _ as l) :: rest ->
            note l;
            collect acc rest
          | (Trace.Header _ | Trace.Final _) :: _ | [] -> (List.rev acc, [])
        in
        let ops, rest = collect [] rest in
        E.Sim.schedule_at sim at (fun _ ->
            E.Fabric.batch fab (fun () -> List.iter (apply st) ops));
        sched rest
      | Trace.Op { at; op } :: rest ->
        monotone at;
        E.Sim.schedule_at sim at (fun _ -> apply st op);
        sched rest
      | (Trace.Digest _ | Trace.Completed _ | Trace.Action _) as l :: rest ->
        note l;
        sched rest
      | Trace.Final d :: rest ->
        final := Some d;
        sched rest
      | Trace.Header _ :: rest -> sched rest
    and note = function
      | Trace.Digest d ->
        monotone d.Trace.d_at;
        Queue.add d st.digests
      | Trace.Completed { at; flow_id; transferred } ->
        monotone at;
        Queue.add (at, flow_id, transferred) st.completions
      | _ -> ()
    in
    sched trace.Trace.lines;
    (* perturbation lands after same-time commands (scheduled last) *)
    (match perturb with
    | None -> ()
    | Some (at, f) -> E.Sim.schedule_at sim at (fun _ -> f fab (E.Fabric.active_flows fab)));
    let final_at = match !final with Some d -> d.Trace.d_at | None -> infinity in
    (match !final with
    | Some d ->
      E.Sim.run ~until:d.Trace.d_at sim;
      (* compare the final digest (not epoch-aligned) *)
      let got =
        Recorder.digest
          ~id_of:(fun f ->
            match Hashtbl.find_opt st.rev f.E.Flow.id with Some id -> id | None -> -1 - f.E.Flow.id)
          ~at:(E.Sim.now sim) ~epoch:st.epoch st.fab
      in
      st.digests_checked <- st.digests_checked + 1;
      if got <> d then
        diverge ?register:(drill_down st (-1)) st ~at:(E.Sim.now sim) ~epoch:st.epoch "final"
          (Printf.sprintf
             "final digest mismatch (epoch %d vs %d, flows %d vs %d, alloc %s vs %s)"
             d.Trace.d_epoch got.Trace.d_epoch d.Trace.d_flows got.Trace.d_flows
             (hex d.Trace.d_alloc) (hex got.Trace.d_alloc));
      (match st.on_digest with Some f -> f (-1) st.fab | None -> ())
    | None -> E.Sim.run sim);
    (* anything recorded but never reached is a divergence too *)
    (match Queue.take_opt st.digests with
    | Some d ->
      diverge st ~at:(E.Sim.now sim) ~epoch:st.epoch "missing-digest"
        (Printf.sprintf "recorded digest at epoch %d never reached in replay (%d pending)"
           d.Trace.d_epoch
           (Queue.length st.digests + 1))
    | None -> ());
    (match Queue.take_opt st.completions with
    | Some (_, id, _) ->
      diverge st ~at:(E.Sim.now sim) ~epoch:st.epoch "missing-completion"
        (Printf.sprintf "recorded completion of flow %d never happened in replay (%d pending)" id
           (Queue.length st.completions + 1))
    | None -> ());
    Ok
      {
        ops = st.ops;
        digests_checked = st.digests_checked;
        completions_checked = st.completions_checked;
        divergences = st.divergences;
        first_divergence = st.first_divergence;
        invariant_failures = List.rev st.invariant_failures;
        final_at = (if final_at = infinity then E.Sim.now sim else final_at);
      }

let run ?setup ?perturb ?domains ?reference trace =
  run_gen ?setup ?perturb ?domains ?reference trace

(* Replay the trace cleanly (no perturbation) and scan the fabric out
   of band at every digest point — the reference chain a perturbed
   replay diffs against. Scans are pure reads, so collecting them
   leaves the replay's own digest checks untouched. *)
let scan_reference ?domains (trace : Trace.t) =
  let acc = ref [] in
  match
    run_gen ?domains ~on_digest:(fun epoch fab -> acc := (epoch, Scanport.capture fab) :: !acc)
      trace
  with
  | Error e -> Error e
  | Ok _ -> Ok (List.rev !acc)

let replay_file ?setup ?perturb ?domains ?reference path =
  match Trace.load path with
  | Error e -> Error e
  | Ok trace -> run ?setup ?perturb ?domains ?reference trace

let ok (r : report) = r.divergences = 0 && r.invariant_failures = []

let pp_report ppf (r : report) =
  Format.fprintf ppf "replayed %d command(s): %d digest(s), %d completion(s) checked@." r.ops
    r.digests_checked r.completions_checked;
  (match r.first_divergence with
  | None -> Format.fprintf ppf "no divergence@."
  | Some d ->
    Format.fprintf ppf "%d divergence(s); first at t=%.0f ns, epoch %d [%s]: %s@." r.divergences
      d.at d.epoch d.kind d.detail;
    (match d.register with
    | Some reg -> Format.fprintf ppf "first divergent register: %s@." reg
    | None -> ()));
  match r.invariant_failures with
  | [] -> Format.fprintf ppf "all invariants hold@."
  | fs ->
    Format.fprintf ppf "%d invariant failure(s):@." (List.length fs);
    List.iter (fun f -> Format.fprintf ppf "  %s@." f) fs
