module T = Ihnet_topology

type digest = {
  d_at : float;
  d_epoch : int;
  d_flows : int;
  d_alloc : int64;
  d_floor : int64;
  d_bytes : int64;
}

(* FNV-1a, 64-bit. Hashing IEEE-754 bits keeps digest comparison an
   exact state-equality check with no float-formatting ambiguity. *)
let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let fnv_int h i = fnv_int64 h (Int64.of_int i)
let fnv_float h f = fnv_int64 h (Int64.bits_of_float f)

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

type fault = { capacity_factor : float; extra_latency : float; loss_prob : float }

type starget = Sf_device of int | Sf_series of string

type sensor_fault = {
  sf_stuck : bool;
  sf_drift : float;
  sf_drop : float;
  sf_dup : float;
  sf_skew : float;
  sf_probe_loss : float;
  sf_probe_slow : float;
}

type config = {
  iommu : (int * float * float) option;
  ddio : (int * int * float) option;
  pcie_mps : int;
  relaxed_ordering : bool;
  acs : bool;
  interrupt_moderation : float;
}

type flow_spec = {
  flow_id : int;
  tenant : int;
  cls : string;
  weight : float;
  floor : float;
  cap : float;
  demand : float;
  payload_bytes : int;
  working_set_pages : int;
  llc_target : bool;
  size : float option;
  src : int;
  dst : int;
  hops : (int * int) list;
}

type op =
  | Start_flow of flow_spec
  | Stop_flow of int
  | Set_limits of { flow_id : int; weight : float; floor : float; cap : float }
  | Inject_fault of { link : int; fault : fault }
  | Clear_fault of int
  | Clear_all_faults
  | Inject_sensor_fault of { starget : starget; sf : sensor_fault }
  | Clear_sensor_fault of starget
  | Set_config of config
  | Sync
  | Batch_start
  | Batch_end

type header = {
  version : int;
  preset : string;
  seed : int;
  label : string;
  digest_every : int;
  host_config : config;
}

type line =
  | Header of header
  | Op of { at : float; op : op }
  | Completed of { at : float; flow_id : int; transferred : float }
  | Action of { at : float; link : int; stage : string; detail : string }
  | Digest of digest
  | Final of digest

let version = 1

let config_of_host (c : T.Hostconfig.t) =
  {
    iommu =
      (match c.T.Hostconfig.iommu with
      | T.Hostconfig.Iommu_off -> None
      | T.Hostconfig.Iommu_on { iotlb_entries; hit_latency; miss_penalty } ->
        Some (iotlb_entries, hit_latency, miss_penalty));
    ddio =
      (match c.T.Hostconfig.ddio with
      | T.Hostconfig.Ddio_off -> None
      | T.Hostconfig.Ddio_on { llc_ways; io_ways; way_size } -> Some (llc_ways, io_ways, way_size));
    pcie_mps = c.T.Hostconfig.pcie_mps;
    relaxed_ordering = c.T.Hostconfig.relaxed_ordering;
    acs = c.T.Hostconfig.acs;
    interrupt_moderation = c.T.Hostconfig.interrupt_moderation;
  }

let host_of_config (c : config) : T.Hostconfig.t =
  {
    T.Hostconfig.iommu =
      (match c.iommu with
      | None -> T.Hostconfig.Iommu_off
      | Some (iotlb_entries, hit_latency, miss_penalty) ->
        T.Hostconfig.Iommu_on { iotlb_entries; hit_latency; miss_penalty });
    ddio =
      (match c.ddio with
      | None -> T.Hostconfig.Ddio_off
      | Some (llc_ways, io_ways, way_size) -> T.Hostconfig.Ddio_on { llc_ways; io_ways; way_size });
    pcie_mps = c.pcie_mps;
    relaxed_ordering = c.relaxed_ordering;
    acs = c.acs;
    interrupt_moderation = c.interrupt_moderation;
  }

(* {1 A minimal JSON model — no external dependencies allowed} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* Floats print with 17 significant digits: enough for an exact binary
   round-trip through [float_of_string]. Non-finite values are not
   valid JSON numbers, so they travel as tagged strings. *)
let jfloat f =
  if Float.is_nan f then Str "nan"
  else if f = infinity then Str "inf"
  else if f = neg_infinity then Str "-inf"
  else Num f

let jint i = Num (float_of_int i)
let jhash h = Str (Printf.sprintf "0x%016Lx" h)

let emit_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> emit_string b s
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        emit_string b k;
        Buffer.add_char b ':';
        emit b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 128 in
  emit b j;
  Buffer.contents b

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code = int_of_string ("0x" ^ hex) in
          (* traces only ever escape control characters *)
          Buffer.add_char b (Char.chr (code land 0xff));
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* {1 Decoding helpers} *)

let field obj k =
  match obj with
  | Obj kvs -> (
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> raise (Parse_error ("missing field " ^ k)))
  | _ -> raise (Parse_error "expected object")

let field_opt obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let as_float = function
  | Num f -> f
  | Str "inf" -> infinity
  | Str "-inf" -> neg_infinity
  | Str "nan" -> nan
  | _ -> raise (Parse_error "expected number")

let as_int j =
  let f = as_float j in
  if Float.is_integer f then int_of_float f else raise (Parse_error "expected integer")

let as_string = function Str s -> s | _ -> raise (Parse_error "expected string")
let as_bool = function Bool b -> b | _ -> raise (Parse_error "expected bool")
let as_list = function Arr xs -> xs | _ -> raise (Parse_error "expected array")

let as_hash j =
  let s = as_string j in
  match Int64.of_string_opt s with
  | Some h -> h
  | None -> raise (Parse_error ("bad hash " ^ s))

(* {1 Line encoding} *)

let config_to_json (c : config) =
  Obj
    [
      ( "iommu",
        match c.iommu with
        | None -> Null
        | Some (e, h, m) -> Obj [ ("entries", jint e); ("hit", jfloat h); ("miss", jfloat m) ] );
      ( "ddio",
        match c.ddio with
        | None -> Null
        | Some (lw, iw, ws) ->
          Obj [ ("llc_ways", jint lw); ("io_ways", jint iw); ("way_size", jfloat ws) ] );
      ("mps", jint c.pcie_mps);
      ("ro", Bool c.relaxed_ordering);
      ("acs", Bool c.acs);
      ("int_mod", jfloat c.interrupt_moderation);
    ]

let config_of_json j =
  {
    iommu =
      (match field j "iommu" with
      | Null -> None
      | o -> Some (as_int (field o "entries"), as_float (field o "hit"), as_float (field o "miss")));
    ddio =
      (match field j "ddio" with
      | Null -> None
      | o ->
        Some (as_int (field o "llc_ways"), as_int (field o "io_ways"), as_float (field o "way_size")));
    pcie_mps = as_int (field j "mps");
    relaxed_ordering = as_bool (field j "ro");
    acs = as_bool (field j "acs");
    interrupt_moderation = as_float (field j "int_mod");
  }

let spec_to_json (s : flow_spec) =
  Obj
    [
      ("id", jint s.flow_id);
      ("tenant", jint s.tenant);
      ("cls", Str s.cls);
      ("weight", jfloat s.weight);
      ("floor", jfloat s.floor);
      ("cap", jfloat s.cap);
      ("demand", jfloat s.demand);
      ("payload", jint s.payload_bytes);
      ("wsp", jint s.working_set_pages);
      ("llc", Bool s.llc_target);
      ("size", (match s.size with None -> Null | Some b -> jfloat b));
      ("src", jint s.src);
      ("dst", jint s.dst);
      ("hops", Arr (List.map (fun (l, d) -> Arr [ jint l; jint d ]) s.hops));
    ]

let spec_of_json j =
  {
    flow_id = as_int (field j "id");
    tenant = as_int (field j "tenant");
    cls = as_string (field j "cls");
    weight = as_float (field j "weight");
    floor = as_float (field j "floor");
    cap = as_float (field j "cap");
    demand = as_float (field j "demand");
    payload_bytes = as_int (field j "payload");
    working_set_pages = as_int (field j "wsp");
    llc_target = as_bool (field j "llc");
    size = (match field j "size" with Null -> None | v -> Some (as_float v));
    src = as_int (field j "src");
    dst = as_int (field j "dst");
    hops =
      List.map
        (fun h ->
          match as_list h with
          | [ l; d ] -> (as_int l, as_int d)
          | _ -> raise (Parse_error "bad hop"))
        (as_list (field j "hops"));
  }

let starget_field = function
  | Sf_device d -> ("dev", jint d)
  | Sf_series s -> ("series", Str s)

let starget_of_json j =
  match field_opt j "dev" with
  | Some d -> Sf_device (as_int d)
  | None -> Sf_series (as_string (field j "series"))

let op_to_fields = function
  | Start_flow s -> [ ("op", Str "start"); ("flow", spec_to_json s) ]
  | Stop_flow id -> [ ("op", Str "stop"); ("id", jint id) ]
  | Set_limits { flow_id; weight; floor; cap } ->
    [
      ("op", Str "limits");
      ("id", jint flow_id);
      ("weight", jfloat weight);
      ("floor", jfloat floor);
      ("cap", jfloat cap);
    ]
  | Inject_fault { link; fault } ->
    [
      ("op", Str "fault");
      ("link", jint link);
      ("cf", jfloat fault.capacity_factor);
      ("lat", jfloat fault.extra_latency);
      ("loss", jfloat fault.loss_prob);
    ]
  | Clear_fault link -> [ ("op", Str "clear"); ("link", jint link) ]
  | Clear_all_faults -> [ ("op", Str "clear_all") ]
  | Inject_sensor_fault { starget; sf } ->
    ("op", Str "sensor_fault")
    :: starget_field starget
    :: [
         ("stuck", Bool sf.sf_stuck);
         ("drift", jfloat sf.sf_drift);
         ("drop", jfloat sf.sf_drop);
         ("dup", jfloat sf.sf_dup);
         ("skew", jfloat sf.sf_skew);
         ("ploss", jfloat sf.sf_probe_loss);
         ("pslow", jfloat sf.sf_probe_slow);
       ]
  | Clear_sensor_fault starget -> [ ("op", Str "sensor_clear"); starget_field starget ]
  | Set_config c -> [ ("op", Str "config"); ("config", config_to_json c) ]
  | Sync -> [ ("op", Str "sync") ]
  | Batch_start -> [ ("op", Str "batch_start") ]
  | Batch_end -> [ ("op", Str "batch_end") ]

let op_of_json j =
  match as_string (field j "op") with
  | "start" -> Start_flow (spec_of_json (field j "flow"))
  | "stop" -> Stop_flow (as_int (field j "id"))
  | "limits" ->
    Set_limits
      {
        flow_id = as_int (field j "id");
        weight = as_float (field j "weight");
        floor = as_float (field j "floor");
        cap = as_float (field j "cap");
      }
  | "fault" ->
    Inject_fault
      {
        link = as_int (field j "link");
        fault =
          {
            capacity_factor = as_float (field j "cf");
            extra_latency = as_float (field j "lat");
            loss_prob = as_float (field j "loss");
          };
      }
  | "clear" -> Clear_fault (as_int (field j "link"))
  | "clear_all" -> Clear_all_faults
  | "sensor_fault" ->
    Inject_sensor_fault
      {
        starget = starget_of_json j;
        sf =
          {
            sf_stuck = as_bool (field j "stuck");
            sf_drift = as_float (field j "drift");
            sf_drop = as_float (field j "drop");
            sf_dup = as_float (field j "dup");
            sf_skew = as_float (field j "skew");
            sf_probe_loss = as_float (field j "ploss");
            sf_probe_slow = as_float (field j "pslow");
          };
      }
  | "sensor_clear" -> Clear_sensor_fault (starget_of_json j)
  | "config" -> Set_config (config_of_json (field j "config"))
  | "sync" -> Sync
  | "batch_start" -> Batch_start
  | "batch_end" -> Batch_end
  | op -> raise (Parse_error ("unknown op " ^ op))

let digest_fields (d : digest) =
  [
    ("at", jfloat d.d_at);
    ("epoch", jint d.d_epoch);
    ("flows", jint d.d_flows);
    ("alloc", jhash d.d_alloc);
    ("floor", jhash d.d_floor);
    ("bytes", jhash d.d_bytes);
  ]

let digest_of_json j =
  {
    d_at = as_float (field j "at");
    d_epoch = as_int (field j "epoch");
    d_flows = as_int (field j "flows");
    d_alloc = as_hash (field j "alloc");
    d_floor = as_hash (field j "floor");
    d_bytes = as_hash (field j "bytes");
  }

let line_to_json = function
  | Header h ->
    Obj
      [
        ("t", Str "header");
        ("version", jint h.version);
        ("preset", Str h.preset);
        ("seed", jint h.seed);
        ("label", Str h.label);
        ("digest_every", jint h.digest_every);
        ("config", config_to_json h.host_config);
      ]
  | Op { at; op } -> Obj (("t", Str "op") :: ("at", jfloat at) :: op_to_fields op)
  | Completed { at; flow_id; transferred } ->
    Obj
      [ ("t", Str "done"); ("at", jfloat at); ("id", jint flow_id); ("bytes", jfloat transferred) ]
  | Action { at; link; stage; detail } ->
    Obj
      [
        ("t", Str "action");
        ("at", jfloat at);
        ("link", jint link);
        ("stage", Str stage);
        ("detail", Str detail);
      ]
  | Digest d -> Obj (("t", Str "digest") :: digest_fields d)
  | Final d -> Obj (("t", Str "final") :: digest_fields d)

let line_to_string l = to_string (line_to_json l)

let line_of_json j =
  match as_string (field j "t") with
  | "header" ->
    Header
      {
        version = as_int (field j "version");
        preset = as_string (field j "preset");
        seed = as_int (field j "seed");
        label = (match field_opt j "label" with Some l -> as_string l | None -> "");
        digest_every = as_int (field j "digest_every");
        host_config = config_of_json (field j "config");
      }
  | "op" -> Op { at = as_float (field j "at"); op = op_of_json j }
  | "done" ->
    Completed
      {
        at = as_float (field j "at");
        flow_id = as_int (field j "id");
        transferred = as_float (field j "bytes");
      }
  | "action" ->
    Action
      {
        at = as_float (field j "at");
        link = as_int (field j "link");
        stage = as_string (field j "stage");
        detail = as_string (field j "detail");
      }
  | "digest" -> Digest (digest_of_json j)
  | "final" -> Final (digest_of_json j)
  | t -> raise (Parse_error ("unknown line type " ^ t))

let line_of_string s =
  match line_of_json (parse_json s) with
  | l -> Ok l
  | exception Parse_error msg -> Error msg

type t = { header : header; lines : line list }

let of_lines = function
  | Header h :: rest ->
    if h.version <> version then
      Error (Printf.sprintf "trace version %d, this build reads %d" h.version version)
    else Ok { header = h; lines = rest }
  | _ -> Error "first trace line is not a header"

let parse s =
  let raw = String.split_on_char '\n' s in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
      let l = String.trim l in
      if l = "" then go acc (i + 1) rest
      else (
        match line_of_string l with
        | Ok line -> go (line :: acc) (i + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" i e))
  in
  match go [] 1 raw with Ok lines -> of_lines lines | Error _ as e -> e

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> parse s
  | exception Sys_error e -> Error e

let save path t =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc (line_to_string l);
          Out_channel.output_char oc '\n')
        (Header t.header :: t.lines))

let fingerprint t =
  List.fold_left
    (fun h l -> fnv_string h (line_to_string l))
    fnv_basis
    (Header t.header :: t.lines)

let json_of_string = parse_json
let json_to_string = to_string
let digest_to_json d = Obj (digest_fields d)
