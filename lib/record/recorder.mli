(** The flight recorder: always-on capture of everything needed to
    re-execute a fabric's run bit-for-bit.

    Attach to a {e fresh} host (no flows started yet); every external
    mutation then crossing the fabric's API — flow start/stop, limit
    changes, fault injection/clear, configuration swaps, batch
    boundaries and observation-driven counter syncs — streams to the
    sink as one trace line, interleaved with completion annotations and
    a state digest every [digest_every]-th reallocation epoch.
    {!Replay.run} re-executes the command stream against a rebuilt host
    and checks the digests in order.

    Overhead: when nothing subscribes to the fabric, the recorder hooks
    cost a single list-emptiness check per mutation (and one [option]
    check per simulator dispatch) — recording off is free. When
    recording, cost is O(serialized line) per event with no extra
    simulator events: digests piggyback on reallocations and the
    dispatch tap only counts. *)

type t

val attach :
  ?digest_every:int ->
  ?label:string ->
  ?preset:string ->
  ?seed:int ->
  sink:(Trace.line -> unit) ->
  Ihnet_engine.Fabric.t ->
  t
(** Start recording. [digest_every] (default 32) sets the digest
    cadence in reallocation epochs; [preset] defaults to the topology's
    name (it must name a {!Ihnet_topology.Builder} preset for the trace
    to be replayable); [seed]/[label] are provenance. Installs the
    simulator dispatch tap (one per simulator).
    @raise Invalid_argument if the fabric already has active flows. *)

val observe_remediation : t -> Ihnet_manager.Remediation.t -> unit
(** Also capture every remediation action as an annotation line. *)

val digest : ?id_of:(Ihnet_engine.Flow.t -> int) -> at:float -> epoch:int -> Ihnet_engine.Fabric.t -> Trace.digest
(** Fingerprint the fabric's current state. [id_of] maps flows to the
    id space the digest is keyed on (replay uses the recorded run's
    ids); defaults to the fabric's own. *)

val stop : t -> unit
(** Write the final digest line and detach. Idempotent. *)

val lines : t -> int
val steps : t -> int
(** Simulator events dispatched while recording. *)

val buffer_sink : Buffer.t -> Trace.line -> unit
(** Convenience sink: append JSON lines to a buffer. *)

val channel_sink : out_channel -> Trace.line -> unit
