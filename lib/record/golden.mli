(** Golden-trace store: small deterministic scenarios recorded under
    fixed seeds, fingerprinted, and committed as compact JSON files.

    Each scenario drives a bare simulator + fabric (plus a manager and
    remediation supervisor where the scenario calls for one — never a
    {!Ihnet.Host}, whose monitors would inflate the trace) through a
    fixed workload with a flight recorder attached. The committed
    golden file holds only the trace's identity — line count, final
    digest, whole-trace fingerprint — not the trace itself: the
    regression test re-records the scenario and compares identities,
    then replays the fresh trace to prove conformance.

    Regenerate after an intentional engine change with
    [ihnetctl record --regen-golden test/golden]. *)

type scenario

val scenarios : scenario list
(** [e1] (figure-1 link classes), [e5] (DDIO on/off/on under load),
    [e17] (fault, remediation, flap). *)

val name : scenario -> string
val describe : scenario -> string
val seed : scenario -> int
val find : string -> scenario option

val record : ?tee:(Trace.line -> unit) -> scenario -> Trace.t
(** Drive the scenario from scratch and return the recorded trace.
    [tee] additionally receives every line as it is produced (used to
    stream the trace to a file). Deterministic: same scenario, same
    trace, bit for bit. *)

(** {1 Fingerprints} *)

type fingerprint = {
  g_scenario : string;
  g_seed : int;
  g_version : int;  (** Trace format version the golden was taken at. *)
  g_lines : int;  (** Line count including the header. *)
  g_final : Trace.digest;
  g_trace : int64;  (** {!Trace.fingerprint} of the whole trace. *)
}

val fingerprint_of : scenario -> Trace.t -> fingerprint
val fingerprint_to_string : fingerprint -> string
val fingerprint_of_string : string -> (fingerprint, string) result
val save_fingerprint : string -> fingerprint -> unit
val load_fingerprint : string -> (fingerprint, string) result

val diff : expected:fingerprint -> actual:fingerprint -> string list
(** Human-readable field-by-field differences; [[]] means identical. *)

val regenerate : dir:string -> (string * fingerprint) list
(** Re-record every scenario and rewrite [dir/<name>.json]; returns
    what was written. *)
