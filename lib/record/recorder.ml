module E = Ihnet_engine
module M = Ihnet_manager
module T = Ihnet_topology

type t = {
  fabric : E.Fabric.t;
  sink : Trace.line -> unit;
  digest_every : int;
  t0 : float; (* attach-time clock; all recorded times are relative *)
  epoch0 : int; (* attach-time reallocation count *)
  mutable active : bool;
  mutable nlines : int;
  mutable nsteps : int;
  mutable last_epoch : int; (* relative *)
}

let put t line =
  t.nlines <- t.nlines + 1;
  t.sink line

let now t = E.Fabric.now t.fabric -. t.t0

let spec_of_flow (f : E.Flow.t) : Trace.flow_spec =
  {
    flow_id = f.E.Flow.id;
    tenant = f.E.Flow.tenant;
    cls = E.Flow.cls_label f.E.Flow.cls;
    weight = f.E.Flow.weight;
    floor = f.E.Flow.floor;
    cap = f.E.Flow.cap;
    demand = f.E.Flow.demand;
    payload_bytes = f.E.Flow.payload_bytes;
    working_set_pages = f.E.Flow.working_set_pages;
    llc_target = f.E.Flow.llc_target;
    size = (match f.E.Flow.size with E.Flow.Bytes b -> Some b | E.Flow.Unbounded -> None);
    src = f.E.Flow.path.T.Path.src;
    dst = f.E.Flow.path.T.Path.dst;
    hops =
      List.map
        (fun (h : T.Path.hop) ->
          (h.T.Path.link.T.Link.id, match h.T.Path.dir with T.Link.Fwd -> 0 | T.Link.Rev -> 1))
        f.E.Flow.path.T.Path.hops;
  }

let digest ?(id_of = fun (f : E.Flow.t) -> f.E.Flow.id) ~at ~epoch fab =
  E.Fabric.refresh fab;
  let flows =
    E.Fabric.active_flows fab
    |> List.map (fun f -> (id_of f, f))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let alloc =
    List.fold_left
      (fun h (id, (f : E.Flow.t)) -> Trace.fnv_float (Trace.fnv_int h id) f.E.Flow.rate)
      Trace.fnv_basis flows
  in
  let floor =
    List.fold_left
      (fun h (id, (f : E.Flow.t)) ->
        if f.E.Flow.floor > 0.0 then Trace.fnv_float (Trace.fnv_int h id) f.E.Flow.floor else h)
      Trace.fnv_basis flows
  in
  let topo = E.Fabric.topology fab in
  let bytes = ref Trace.fnv_basis in
  for l = 0 to T.Topology.link_count topo - 1 do
    bytes := Trace.fnv_float !bytes (E.Fabric.link_bytes fab l T.Link.Fwd);
    bytes := Trace.fnv_float !bytes (E.Fabric.link_bytes fab l T.Link.Rev)
  done;
  {
    Trace.d_at = at;
    d_epoch = epoch;
    d_flows = List.length flows;
    d_alloc = alloc;
    d_floor = floor;
    d_bytes = !bytes;
  }

let fault_of (f : E.Fault.link_fault) : Trace.fault =
  {
    capacity_factor = f.E.Fault.capacity_factor;
    extra_latency = f.E.Fault.extra_latency;
    loss_prob = f.E.Fault.loss_prob;
  }

let starget_of : E.Sensorfault.target -> Trace.starget = function
  | E.Sensorfault.Device d -> Trace.Sf_device d
  | E.Sensorfault.Series s -> Trace.Sf_series s

let sensor_fault_of (f : E.Sensorfault.sensor_fault) : Trace.sensor_fault =
  {
    sf_stuck = f.E.Sensorfault.stuck;
    sf_drift = f.E.Sensorfault.drift;
    sf_drop = f.E.Sensorfault.drop_prob;
    sf_dup = f.E.Sensorfault.dup_prob;
    sf_skew = f.E.Sensorfault.skew;
    sf_probe_loss = f.E.Sensorfault.probe_loss;
    sf_probe_slow = f.E.Sensorfault.probe_slow;
  }

let on_event t ev =
  if t.active then
    match (ev : E.Fabric.event) with
    | E.Fabric.Flow_started f ->
      put t (Trace.Op { at = now t; op = Trace.Start_flow (spec_of_flow f) })
    | E.Fabric.Flow_stopped f ->
      put t (Trace.Op { at = now t; op = Trace.Stop_flow f.E.Flow.id })
    | E.Fabric.Flow_completed f ->
      put t
        (Trace.Completed
           { at = now t; flow_id = f.E.Flow.id; transferred = f.E.Flow.transferred })
    | E.Fabric.Limits_changed f ->
      put t
        (Trace.Op
           {
             at = now t;
             op =
               Trace.Set_limits
                 {
                   flow_id = f.E.Flow.id;
                   weight = f.E.Flow.weight;
                   floor = f.E.Flow.floor;
                   cap = f.E.Flow.cap;
                 };
           })
    | E.Fabric.Fault_injected (link, fault) ->
      put t (Trace.Op { at = now t; op = Trace.Inject_fault { link; fault = fault_of fault } })
    | E.Fabric.Fault_cleared link ->
      put t (Trace.Op { at = now t; op = Trace.Clear_fault link })
    | E.Fabric.All_faults_cleared ->
      put t (Trace.Op { at = now t; op = Trace.Clear_all_faults })
    | E.Fabric.Config_changed c ->
      put t (Trace.Op { at = now t; op = Trace.Set_config (Trace.config_of_host c) })
    | E.Fabric.Sensor_fault_injected (target, sf) ->
      put t
        (Trace.Op
           {
             at = now t;
             op =
               Trace.Inject_sensor_fault
                 { starget = starget_of target; sf = sensor_fault_of sf };
           })
    | E.Fabric.Sensor_fault_cleared target ->
      put t (Trace.Op { at = now t; op = Trace.Clear_sensor_fault (starget_of target) })
    | E.Fabric.Synced -> put t (Trace.Op { at = now t; op = Trace.Sync })
    | E.Fabric.Batch_started -> put t (Trace.Op { at = now t; op = Trace.Batch_start })
    | E.Fabric.Batch_ended -> put t (Trace.Op { at = now t; op = Trace.Batch_end })
    | E.Fabric.Reallocated epoch ->
      let rel = epoch - t.epoch0 in
      t.last_epoch <- rel;
      if rel mod t.digest_every = 0 then
        put t (Trace.Digest (digest ~at:(now t) ~epoch:rel t.fabric))

let attach ?(digest_every = 32) ?(label = "") ?preset ?(seed = 0) ~sink fabric =
  if digest_every <= 0 then invalid_arg "Recorder.attach: digest_every must be positive";
  if E.Fabric.flow_count fabric > 0 then
    invalid_arg "Recorder.attach: fabric already has active flows (attach to a fresh host)";
  let topo = E.Fabric.topology fabric in
  let preset = match preset with Some p -> p | None -> T.Topology.name topo in
  let t =
    {
      fabric;
      sink;
      digest_every;
      t0 = E.Fabric.now fabric;
      epoch0 = E.Fabric.reallocations fabric;
      active = true;
      nlines = 0;
      nsteps = 0;
      last_epoch = 0;
    }
  in
  put t
    (Trace.Header
       {
         Trace.version = Trace.version;
         preset;
         seed;
         label;
         digest_every;
         host_config = Trace.config_of_host (T.Topology.config topo);
       });
  E.Fabric.subscribe fabric (on_event t);
  E.Sim.set_tap (E.Fabric.sim fabric) (fun _ -> if t.active then t.nsteps <- t.nsteps + 1);
  t

let stage_label : M.Remediation.stage -> string = function
  | M.Remediation.Rearbitrate -> "rearbitrate"
  | M.Remediation.Replace -> "replace"
  | M.Remediation.Degrade -> "degrade"

let observe_remediation t rem =
  M.Remediation.on_action rem (fun (a : M.Remediation.action) ->
      if t.active then
        put t
          (Trace.Action
             {
               at = a.M.Remediation.at -. t.t0;
               link = a.M.Remediation.action_link;
               stage = stage_label a.M.Remediation.action_stage;
               detail = a.M.Remediation.detail;
             }))

let stop t =
  if t.active then begin
    (* the digest may itself record one last Sync op; write it before
       the final line by computing while still active *)
    let d = digest ~at:(now t) ~epoch:t.last_epoch t.fabric in
    put t (Trace.Final d);
    t.active <- false;
    E.Sim.clear_tap (E.Fabric.sim t.fabric)
  end

let lines t = t.nlines
let steps t = t.nsteps

let buffer_sink buf line =
  Buffer.add_string buf (Trace.line_to_string line);
  Buffer.add_char buf '\n'

let channel_sink oc line =
  output_string oc (Trace.line_to_string line);
  output_char oc '\n'
