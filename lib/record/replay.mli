(** Deterministic replay: re-execute a recorded trace against a fresh
    host and check it epoch-by-epoch.

    The replay engine rebuilds the topology from the header's preset
    name and configuration, creates a bare simulator + fabric (no
    monitors, no manager — every externally visible consequence of
    those is already in the command stream), schedules each recorded
    command at its recorded timestamp in file order (equal-time events
    keep file order by the simulator's FIFO tie-break), and maps
    recorded flow ids to replayed flows. While running it compares, in
    order: every recorded state digest against a freshly computed one,
    and every recorded flow completion (id, time, bytes) against the
    replayed completion stream. All comparisons are exact — the fluid
    model is deterministic, so any drift is a real divergence.

    Known limitation: if an internally scheduled completion landed at
    {e exactly} the same float timestamp as an external command, the
    FIFO tie-break may order them differently in replay than in the
    recorded run (commands are pre-scheduled, completions arise
    dynamically). Equal-time pairs commute for state purposes unless
    the command reads the completing flow; in practice the campaign and
    soak workloads never hit this. *)

type divergence = {
  at : float;
  epoch : int;
  kind : string;
  detail : string;
  register : string option;
      (** First divergent scan register (path and both values), filled
          when a digest mismatch could be drilled down against a scan
          reference (see {!scan_reference} and [run]'s [reference]).
          [None] for non-digest divergences or when no reference
          snapshot covers the divergent epoch. *)
}

type report = {
  ops : int;  (** Commands applied. *)
  digests_checked : int;
  completions_checked : int;
  divergences : int;
  first_divergence : divergence option;
  invariant_failures : string list;
  final_at : float;
}

val run :
  ?setup:(Ihnet_engine.Sim.t -> Ihnet_engine.Fabric.t -> unit) ->
  ?perturb:float * (Ihnet_engine.Fabric.t -> Ihnet_engine.Flow.t list -> unit) ->
  ?domains:int ->
  ?reference:(int * Scanport.snapshot) list ->
  Trace.t ->
  (report, string) result
(** Replay a parsed trace. [setup] runs on the fresh host before any
    command (tests use it to attach observers). [perturb] schedules a
    deliberate mutation at the given time — the callback receives the
    fabric and the currently running replayed flows — to verify that
    divergence detection actually fires. [domains] sizes the replay
    fabric's reallocation pool ({!Ihnet_engine.Fabric.create}); by the
    determinism contract the report must be identical for every width,
    which is exactly what the conformance CI checks. [reference] is a
    clean-run scan chain from {!scan_reference}: when a digest
    mismatch occurs at an epoch the reference covers, the replay scans
    its own fabric out of band, diffs the two snapshots, and fills
    {!divergence.register} — escalating the report from "first bad
    epoch" to "first bad register path". [Error] means the trace could
    not be replayed at all (unknown preset, malformed header);
    divergences during a well-formed replay land in the report. *)

val scan_reference :
  ?domains:int -> Trace.t -> ((int * Scanport.snapshot) list, string) result
(** Replay the trace cleanly and capture a {!Scanport} snapshot at
    every digest point, keyed by digest epoch (the final digest under
    key [-1]) — the reference chain [run]'s [reference] diffs against.
    Scans are pure reads, so the collecting replay is bit-identical to
    a bare one. *)

val replay_file :
  ?setup:(Ihnet_engine.Sim.t -> Ihnet_engine.Fabric.t -> unit) ->
  ?perturb:float * (Ihnet_engine.Fabric.t -> Ihnet_engine.Flow.t list -> unit) ->
  ?domains:int ->
  ?reference:(int * Scanport.snapshot) list ->
  string ->
  (report, string) result

val ok : report -> bool
(** Zero divergences and no invariant failures. *)

val check_invariants : ?manager:Ihnet_manager.Manager.t -> Ihnet_engine.Fabric.t -> string list
(** Structural health of a fabric, checked at every digest point during
    replay and exposed for tests: no link loaded beyond its effective
    capacity (small fluid-rounding slack), every bounded running flow
    conserves bytes ([transferred + remaining = size]), and — when a
    manager is given — every installed floor belongs to a running
    flow. *)

val pp_report : Format.formatter -> report -> unit
