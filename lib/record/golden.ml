module E = Ihnet_engine
module M = Ihnet_manager
module T = Ihnet_topology
module U = Ihnet_util

type scenario = {
  name : string;
  seed : int;
  describe : string;
  drive : sink:(Trace.line -> unit) -> unit;
}

let name s = s.name
let describe s = s.describe
let seed s = s.seed

(* Every scenario runs on the two-socket preset: it has every figure-1
   link class, alternate inter-socket routes for remediation to migrate
   onto, and it is replayable by name. *)
let fresh ~seed =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed sim topo in
  (topo, sim, fab)

let dev topo n =
  match T.Topology.device_by_name topo n with
  | Some d -> d.T.Device.id
  | None -> failwith ("golden: no device " ^ n)

let route topo a b =
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> failwith (Printf.sprintf "golden: %s unreachable from %s" b a)

let run_for sim ns = E.Sim.run ~until:(E.Sim.now sim +. ns) sim

(* E1-like: one probe per figure-1 link class, then the socket-0 DIMM
   channels together, then a bounded DMA so the trace carries
   completion annotations. *)
let drive_e1 ~sink =
  let topo, sim, fab = fresh ~seed:7 in
  let r = Recorder.attach ~digest_every:4 ~label:"golden-e1" ~seed:7 ~sink fab in
  let probe a b =
    let f =
      E.Fabric.start_flow fab ~tenant:1 ~cls:E.Flow.Probe ~path:(route topo a b)
        ~size:E.Flow.Unbounded ()
    in
    run_for sim (U.Units.ms 1.0);
    E.Fabric.stop_flow fab f
  in
  probe "socket0" "socket1";
  probe "nic0" "socket0";
  probe "gpu0" "ssd0";
  probe "gpu0" "ext";
  let mems =
    List.filter_map
      (fun (d : T.Device.t) ->
        match d.T.Device.kind with
        | T.Device.Dimm _ when d.T.Device.socket = 0 ->
          Some
            (E.Fabric.start_flow fab ~tenant:2 ~cls:E.Flow.Probe
               ~path:(route topo "socket0" d.T.Device.name)
               ~size:E.Flow.Unbounded ())
        | _ -> None)
      (T.Topology.devices topo)
  in
  run_for sim (U.Units.ms 1.0);
  List.iter (E.Fabric.stop_flow fab) mems;
  ignore
    (E.Fabric.start_flow fab ~tenant:3 ~path:(route topo "ext" "socket0")
       ~size:(E.Flow.Bytes (U.Units.mib 64.0)) ());
  run_for sim (U.Units.ms 5.0);
  Recorder.stop r

(* E5-like: two DDIO writers thrashing the I/O ways, then the same load
   with DDIO off and on again (config swaps land in the trace), then a
   bounded LLC-target transfer for completions. *)
let drive_e5 ~sink =
  let topo, sim, fab = fresh ~seed:5 in
  let r = Recorder.attach ~digest_every:4 ~label:"golden-e5" ~seed:5 ~sink fab in
  let writer n =
    E.Fabric.start_flow fab ~tenant:1 ~llc_target:true ~path:(route topo n "socket0")
      ~size:E.Flow.Unbounded ()
  in
  let w0 = writer "nic0" in
  let w1 = writer "nic1" in
  run_for sim (U.Units.ms 1.0);
  E.Fabric.set_config fab { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off };
  run_for sim (U.Units.ms 1.0);
  E.Fabric.set_config fab T.Hostconfig.default;
  run_for sim (U.Units.ms 1.0);
  ignore
    (E.Fabric.start_flow fab ~tenant:2 ~llc_target:true ~path:(route topo "nic0" "socket0")
       ~size:(E.Flow.Bytes (U.Units.mib 32.0)) ());
  run_for sim (U.Units.ms 3.0);
  E.Fabric.stop_flow fab w0;
  E.Fabric.stop_flow fab w1;
  run_for sim (U.Units.ms 0.5);
  Recorder.stop r

(* E17-like: a guaranteed pipe, an announced degrade on its path that
   remediation routes around, recovery after the clear, then a flapping
   link to exercise hold-down. Manager and supervisor actions reach the
   fabric as ordinary commands, so the trace replays without either. *)
let drive_e17 ~sink =
  let _topo, sim, fab = fresh ~seed:17 in
  let r = Recorder.attach ~digest_every:4 ~label:"golden-e17" ~seed:17 ~sink fab in
  let mgr = M.Manager.create fab () in
  let rem = M.Remediation.create mgr in
  Recorder.observe_remediation r rem;
  M.Manager.start_shim mgr ~period:(U.Units.us 50.0);
  M.Remediation.start rem;
  let rate = U.Units.gbytes_per_s 10.0 in
  let p =
    match M.Manager.submit mgr (M.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate) with
    | Ok [ p ] -> p
    | Ok _ -> failwith "golden-e17: expected one placement"
    | Error e -> failwith ("golden-e17: admission refused: " ^ M.Mgr_error.to_string e)
  in
  let f =
    E.Fabric.start_flow fab ~tenant:1 ~demand:rate ~path:p.M.Placement.path
      ~size:E.Flow.Unbounded ()
  in
  ignore (M.Manager.attach mgr f);
  run_for sim (U.Units.ms 2.0);
  let hop n = (List.nth p.M.Placement.path.T.Path.hops n).T.Path.link.T.Link.id in
  let sick = E.Fault.degrade ~capacity_factor:0.05 () in
  let bad = hop 1 in
  E.Fabric.inject_fault fab bad sick;
  run_for sim (U.Units.ms 10.0);
  E.Fabric.clear_fault fab bad;
  run_for sim (U.Units.ms 5.0);
  E.Fabric.flap_link fab (hop 0) sick ~period:(U.Units.ms 1.0) ~toggles:6;
  run_for sim (U.Units.ms 10.0);
  M.Remediation.stop rem;
  M.Manager.stop_shim mgr;
  Recorder.stop r

let scenarios =
  [
    { name = "e1"; seed = 7; describe = "figure-1 link classes + bounded DMA"; drive = drive_e1 };
    { name = "e5"; seed = 5; describe = "DDIO thrash, off, on again"; drive = drive_e5 };
    {
      name = "e17";
      seed = 17;
      describe = "degrade + remediation + flapping link";
      drive = drive_e17;
    };
  ]

let find n = List.find_opt (fun s -> s.name = n) scenarios

let record ?tee sc =
  let acc = ref [] in
  let sink l =
    acc := l :: !acc;
    match tee with Some f -> f l | None -> ()
  in
  sc.drive ~sink;
  match Trace.of_lines (List.rev !acc) with
  | Ok t -> t
  | Error e -> failwith ("golden: recorded an unparsable trace: " ^ e)

type fingerprint = {
  g_scenario : string;
  g_seed : int;
  g_version : int;
  g_lines : int;
  g_final : Trace.digest;
  g_trace : int64;
}

let fingerprint_of sc (t : Trace.t) =
  let final =
    match List.filter_map (function Trace.Final d -> Some d | _ -> None) t.Trace.lines with
    | [ d ] -> d
    | _ -> failwith "golden: trace has no single final digest"
  in
  {
    g_scenario = sc.name;
    g_seed = sc.seed;
    g_version = t.Trace.header.Trace.version;
    g_lines = 1 + List.length t.Trace.lines;
    g_final = final;
    g_trace = Trace.fingerprint t;
  }

let fingerprint_to_string f =
  Trace.json_to_string
    (Trace.Obj
       [
         ("scenario", Trace.Str f.g_scenario);
         ("seed", Trace.jint f.g_seed);
         ("version", Trace.jint f.g_version);
         ("lines", Trace.jint f.g_lines);
         ("final", Trace.digest_to_json f.g_final);
         ("trace", Trace.jhash f.g_trace);
       ])

let fingerprint_of_string s =
  match
    let j = Trace.json_of_string (String.trim s) in
    {
      g_scenario = Trace.as_string (Trace.field j "scenario");
      g_seed = Trace.as_int (Trace.field j "seed");
      g_version = Trace.as_int (Trace.field j "version");
      g_lines = Trace.as_int (Trace.field j "lines");
      g_final = Trace.digest_of_json (Trace.field j "final");
      g_trace = Trace.as_hash (Trace.field j "trace");
    }
  with
  | f -> Ok f
  | exception Trace.Parse_error e -> Error e

let save_fingerprint path f =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (fingerprint_to_string f);
      Out_channel.output_char oc '\n')

let load_fingerprint path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> fingerprint_of_string s
  | exception Sys_error e -> Error e

let diff ~expected ~actual =
  let out = ref [] in
  let chk label pp a b = if a <> b then out := Printf.sprintf "%s: golden %s, got %s" label (pp a) (pp b) :: !out in
  let str x = x in
  let int = string_of_int in
  let hash = Printf.sprintf "0x%016Lx" in
  let flt = Printf.sprintf "%.17g" in
  chk "scenario" str expected.g_scenario actual.g_scenario;
  chk "seed" int expected.g_seed actual.g_seed;
  chk "version" int expected.g_version actual.g_version;
  chk "lines" int expected.g_lines actual.g_lines;
  chk "final.at" flt expected.g_final.Trace.d_at actual.g_final.Trace.d_at;
  chk "final.epoch" int expected.g_final.Trace.d_epoch actual.g_final.Trace.d_epoch;
  chk "final.flows" int expected.g_final.Trace.d_flows actual.g_final.Trace.d_flows;
  chk "final.alloc" hash expected.g_final.Trace.d_alloc actual.g_final.Trace.d_alloc;
  chk "final.floor" hash expected.g_final.Trace.d_floor actual.g_final.Trace.d_floor;
  chk "final.bytes" hash expected.g_final.Trace.d_bytes actual.g_final.Trace.d_bytes;
  chk "trace" hash expected.g_trace actual.g_trace;
  List.rev !out

let regenerate ~dir =
  List.map
    (fun sc ->
      let fp = fingerprint_of sc (record sc) in
      let path = Filename.concat dir (sc.name ^ ".json") in
      save_fingerprint path fp;
      (path, fp))
    scenarios
