(** Out-of-band scan port: freeze, inspect, single-step and diff a
    live fabric with provably zero impact.

    The boundary-scan idea from JTAG, applied to the intra-host
    fabric: a side-band TAP that reads every interesting register —
    rate tables, byte counters, DDIO state, flow and completion-heap
    internals, warm-solver counters, remediation state machines,
    evidence windows, latency-sketch planes — without going through
    the normal (telemetry) bus. Where a replay divergence names the
    first bad {e epoch}, diffing two scan snapshots names the first
    bad {e register path}.

    {b The zero-impact guarantee.} {!capture} is built exclusively on
    the [scan_*] exposition ({!Ihnet_engine.Fabric}, §scan): it never
    runs the lazy byte integration, never emits a fabric event, never
    draws from the RNG, never bumps heap generations and never touches
    warm-solver state. A run scanned at every epoch is bit-identical —
    digests, goldens, replay fingerprints — to a bare run; the
    [scanport-idle] bench subject asserts exactly that and CI gates
    it.

    {b Arch vs micro registers.} Registers are tagged:
    [`Arch] registers are part of the determinism contract — equal
    across [IHNET_DOMAINS] ∈ {1,2,4} and warm vs cold solver.
    [`Micro] registers (memo occupancy, warm hit/miss and solver-work
    counters) describe how the answer was produced and legitimately
    differ warm vs cold; they are excluded from {!val-digest} and from
    the default {!diff}. *)

(** {1 Scan records} *)

type value =
  | Int of int
  | Float of float  (** Compared and digested by raw IEEE-754 bits. *)
  | Hash of int64
  | Flag of bool
  | Text of string

type kind = [ `Arch | `Micro ]

type reg = { rpath : string; rvalue : value; rkind : kind }
(** One scan-chain register: a hierarchical slash path (e.g.
    [link[3]/fwd/rate], [flow[17]/remaining], [rem/link[5]/stage])
    and its typed value. *)

type snapshot = {
  s_version : int;
  s_at : Ihnet_util.Units.ns;  (** Simulated clock at capture. *)
  s_epoch : int;  (** Reallocation epoch at capture. *)
  s_regs : reg list;  (** Canonical scan-chain order. *)
  s_digest : int64;  (** FNV-1a over the [`Arch] registers. *)
}

val version : int

val capture :
  ?remediation:Ihnet_manager.Remediation.t ->
  ?evidence:Ihnet_monitor.Evidence.t ->
  Ihnet_engine.Fabric.t ->
  snapshot
(** Dump the scan chain. Pure read (see the zero-impact guarantee
    above); safe to call at any event boundary, including from a
    fabric event listener. *)

val digest : snapshot -> int64
(** [s_digest] — FNV-1a chained over every [`Arch] register's path and
    value bits, in chain order. Equal digests mean bit-identical
    architectural state. *)

val find : snapshot -> string -> value option
(** Look up one register by exact path. *)

val render_value : value -> string
(** Exact textual form (floats at 17 significant digits). *)

(** {1 Codec}

    A snapshot serializes as a single JSON object using {!Trace}'s
    float-exact JSON model, so every register round-trips bit-for-bit:
    [of_json (to_json s) = s]. *)

val to_json : snapshot -> Trace.json
val of_json : Trace.json -> snapshot
(** @raise Trace.Parse_error on malformed or wrong-version input. *)

val save : string -> snapshot -> unit
val load : string -> (snapshot, string) result

(** {1 Diff} *)

type mismatch = {
  d_path : string;  (** First divergent register, chain order. *)
  d_left : string;  (** Rendered value, or ["<absent>"]. *)
  d_right : string;
  d_total : int;  (** Total differing registers at the compared kind. *)
}

val diff : ?scope:[ `Arch | `All ] -> snapshot -> snapshot -> mismatch option
(** First divergent register between two snapshots, or [None] when
    every compared register matches exactly (floats by bits). The
    default scope [`Arch] compares only contract registers, so a warm
    and a cold snapshot of the same run diff clean; [`All] includes
    the microarchitectural ones. Registers present on one side only
    count as divergent ([d_left]/[d_right] = ["<absent>"]). *)

val pp_mismatch : Format.formatter -> mismatch -> unit

(** {1 Freeze and single-step}

    Freezing is cooperative: the simulator only advances when driven,
    so between events a fabric is always at a committed epoch
    boundary. A {!freeze} takes ownership of the drive loop — while it
    is held, nothing advances except through {!step}, which executes
    queued events one at a time until the epoch counter moves. *)

type freeze

val freeze : Ihnet_engine.Fabric.t -> freeze
(** Take ownership at the current epoch boundary. The caller must not
    run the simulator through other means until {!thaw}. *)

val step : freeze -> int -> int
(** [step f n] advances at most [n] reallocation epochs, returning how
    many actually ran (fewer when the event queue drains).
    @raise Invalid_argument after {!thaw}. *)

val epochs_stepped : freeze -> int
(** Total epochs advanced through this freeze. *)

val thaw : freeze -> unit
(** Release the freeze (idempotent); further {!step}s are refused. *)
