(* Out-of-band scan port. Capture is built exclusively on the
   engine's scan_* exposition (pure reads): no sync, no events, no RNG
   draws, no heap or solver movement — the zero-impact contract the
   scanport-idle bench pins down. The register chain is emitted in one
   canonical order so two captures of bit-identical fabrics produce
   byte-identical snapshots (and digests) whatever the domain pool
   width or warm/cold solver mode. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Man = Ihnet_manager
module Mon = Ihnet_monitor

type value =
  | Int of int
  | Float of float
  | Hash of int64
  | Flag of bool
  | Text of string

type kind = [ `Arch | `Micro ]

type reg = { rpath : string; rvalue : value; rkind : kind }

type snapshot = {
  s_version : int;
  s_at : U.Units.ns;
  s_epoch : int;
  s_regs : reg list;
  s_digest : int64;
}

let version = 1

(* {2 Digest} *)

let fnv_int64 acc (h : int64) =
  let acc = Trace.fnv_int acc (Int64.to_int (Int64.shift_right_logical h 32)) in
  Trace.fnv_int acc (Int64.to_int (Int64.logand h 0xFFFFFFFFL))

let fnv_value acc = function
  | Int i -> Trace.fnv_int acc i
  | Float f -> Trace.fnv_float acc f
  | Hash h -> fnv_int64 acc h
  | Flag b -> Trace.fnv_int acc (if b then 1 else 0)
  | Text s -> Trace.fnv_string acc s

let chain_digest regs =
  List.fold_left
    (fun acc r ->
      match r.rkind with
      | `Micro -> acc
      | `Arch -> fnv_value (Trace.fnv_string acc r.rpath) r.rvalue)
    Trace.fnv_basis regs

let digest s = s.s_digest

(* {2 Capture} *)

let dir_name = function T.Link.Fwd -> "fwd" | T.Link.Rev -> "rev"
let cls_names = [| "payload"; "monitoring"; "heartbeat"; "probe"; "induced" |]

let hash_row (row : float array) = Array.fold_left Trace.fnv_float Trace.fnv_basis row

let hash_sketch sk =
  let acc = U.Sketch.fold_buckets sk ~init:Trace.fnv_basis Trace.fnv_int in
  let acc = Trace.fnv_float acc (U.Sketch.min_value sk) in
  Trace.fnv_float acc (U.Sketch.max_value sk)

let capture ?remediation ?evidence fab =
  let regs = ref [] in
  let arch path v = regs := { rpath = path; rvalue = v; rkind = `Arch } :: !regs in
  let micro path v = regs := { rpath = path; rvalue = v; rkind = `Micro } :: !regs in
  let at = E.Fabric.scan_clock fab in
  let epoch = E.Fabric.scan_epoch fab in
  arch "clock/now" (Float at);
  arch "clock/last_update" (Float (E.Fabric.scan_last_update fab));
  arch "epoch" (Int epoch);
  arch "allocs" (Int (E.Fabric.reallocations fab));
  arch "flow/next_id" (Int (E.Fabric.scan_next_flow_id fab));
  arch "rng/state" (Hash (E.Fabric.scan_rng_state fab));
  arch "config/cache_gen" (Int (E.Fabric.scan_cache_gen fab));
  (* per-(link, dir) rate tables, counters and capacities *)
  let nr = E.Fabric.scan_resources fab in
  let load = E.Fabric.scan_load fab
  and flows_on = E.Fabric.scan_flows_on fab
  and bytes = E.Fabric.scan_link_bytes fab
  and caps = E.Fabric.scan_caps fab in
  for r = 0 to nr - 1 do
    let p s = Printf.sprintf "link[%d]/%s/%s" (r / 2) (if r land 1 = 0 then "fwd" else "rev") s in
    arch (p "rate") (Float load.(r));
    arch (p "flows") (Int flows_on.(r));
    arch (p "bytes") (Float bytes.(r));
    arch (p "cap") (Float caps.(r))
  done;
  let ddw, ddh, swb, srr = E.Fabric.scan_ddio fab in
  Array.iteri
    (fun s w ->
      let p n = Printf.sprintf "ddio[%d]/%s" s n in
      arch (p "write") (Float w);
      arch (p "hit") (Float ddh.(s));
      arch (p "spill_wb") (Float swb.(s));
      arch (p "spill_rr") (Float srr.(s)))
    ddw;
  List.iter
    (fun (tn, row) -> arch (Printf.sprintf "tenant[%d]/bytes" tn) (Hash (hash_row row)))
    (E.Fabric.scan_tenant_rows fab);
  Array.iteri
    (fun i row -> arch (Printf.sprintf "cls[%s]/bytes" cls_names.(i)) (Hash (hash_row row)))
    (E.Fabric.scan_cls_rows fab);
  (* flow internals, id ascending *)
  List.iter
    (fun (f : E.Flow.t) ->
      let p s = Printf.sprintf "flow[%d]/%s" f.E.Flow.id s in
      arch (p "tenant") (Int f.E.Flow.tenant);
      arch (p "weight") (Float f.E.Flow.weight);
      arch (p "floor") (Float f.E.Flow.floor);
      arch (p "cap") (Float f.E.Flow.cap);
      arch (p "demand") (Float f.E.Flow.demand);
      arch (p "rate") (Float f.E.Flow.rate);
      arch (p "remaining") (Float f.E.Flow.remaining);
      arch (p "transferred") (Float f.E.Flow.transferred))
    (E.Fabric.scan_flows fab);
  (* completion heap in pop order, lazily-deleted residue included *)
  List.iteri
    (fun i (due, fid, stamp, live) ->
      let p s = Printf.sprintf "heap[%d]/%s" i s in
      arch (p "at") (Float due);
      arch (p "flow") (Int fid);
      arch (p "stamp") (Int stamp);
      arch (p "live") (Flag live))
    (E.Fabric.scan_completion_heap fab);
  (* remediation state machines, link ascending *)
  (match remediation with
  | None -> ()
  | Some rem ->
    let cases =
      List.sort
        (fun (a : Man.Remediation.case) b -> compare a.Man.Remediation.link b.Man.Remediation.link)
        (Man.Remediation.cases rem)
    in
    List.iter
      (fun (c : Man.Remediation.case) ->
        let p s = Printf.sprintf "rem/link[%d]/%s" c.Man.Remediation.link s in
        arch (p "status") (Text (Man.Remediation.status_label c.Man.Remediation.status));
        arch (p "stage") (Text (Man.Remediation.stage_label c.Man.Remediation.stage));
        arch (p "attempts") (Int c.Man.Remediation.attempts);
        arch (p "detected_at") (Float c.Man.Remediation.detected_at);
        arch (p "recovered_at")
          (Float (Option.value ~default:nan c.Man.Remediation.recovered_at));
        arch (p "next_due") (Float c.Man.Remediation.next_due);
        arch (p "held_until") (Float c.Man.Remediation.held_until);
        arch (p "transitions") (Int (List.length c.Man.Remediation.transitions));
        arch (p "degraded") (Int (List.length c.Man.Remediation.degraded_ids));
        arch (p "actions") (Int c.Man.Remediation.total_actions);
        arch (p "gate_waits") (Int c.Man.Remediation.gate_waits))
      cases);
  (* evidence window, raw: (link, modality) ascending *)
  (match evidence with
  | None -> ()
  | Some ev ->
    List.iter
      (fun (link, m, score, rat) ->
        let p s =
          Printf.sprintf "evidence/link[%d]/%s/%s" link (Mon.Evidence.modality_label m) s
        in
        arch (p "score") (Float score);
        arch (p "at") (Float rat))
      (Mon.Evidence.scan_reports ev));
  (* latency-sketch planes (when enabled): bucket-array hash + count *)
  (if E.Fabric.latency_sketches_enabled fab then begin
     for r = 0 to nr - 1 do
       let link = r / 2 and dir = if r land 1 = 0 then T.Link.Fwd else T.Link.Rev in
       match E.Fabric.link_latency_sketch fab link dir with
       | None -> ()
       | Some sk ->
         let p s = Printf.sprintf "sketch/link[%d]/%s/%s" link (dir_name dir) s in
         arch (p "count") (Int (U.Sketch.count sk));
         arch (p "hash") (Hash (hash_sketch sk))
     done;
     match E.Fabric.flow_latency_sketch fab with
     | None -> ()
     | Some sk ->
       arch "sketch/flows/count" (Int (U.Sketch.count sk));
       arch "sketch/flows/hash" (Hash (hash_sketch sk))
   end);
  (* microarchitectural registers: how the answer was produced *)
  micro "warm/enabled" (Flag (E.Fabric.warm_enabled fab));
  micro "warm/hits" (Int (E.Fabric.warm_hits fab));
  micro "warm/misses" (Int (E.Fabric.warm_misses fab));
  List.iteri
    (fun i (key, entries, hit_epoch) ->
      let p s = Printf.sprintf "memo[%d]/%s" i s in
      micro (p "key") (Int key);
      micro (p "entries") (Int entries);
      micro (p "epoch") (Int hit_epoch))
    (E.Fabric.scan_memo_keys fab);
  let st = E.Fabric.scan_solver_stats fab in
  micro "solver/solves" (Int st.E.Fairshare.solves);
  micro "solver/full_rebuilds" (Int st.E.Fairshare.full_rebuilds);
  micro "solver/incremental" (Int st.E.Fairshare.incremental);
  micro "solver/unchanged" (Int st.E.Fairshare.unchanged);
  let regs = List.rev !regs in
  { s_version = version; s_at = at; s_epoch = epoch; s_regs = regs; s_digest = chain_digest regs }

let find s path = List.find_map (fun r -> if r.rpath = path then Some r.rvalue else None) s.s_regs

let render_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Hash h -> Printf.sprintf "0x%016Lx" h
  | Flag b -> string_of_bool b
  | Text s -> s

(* {2 Codec} *)

let tag kind v =
  (match kind with `Arch -> "a" | `Micro -> "m")
  ^ match v with Int _ -> "i" | Float _ -> "f" | Hash _ -> "h" | Flag _ -> "b" | Text _ -> "s"

let reg_to_json r =
  let v =
    match r.rvalue with
    | Int i -> Trace.jint i
    | Float f -> Trace.jfloat f
    | Hash h -> Trace.jhash h
    | Flag b -> Trace.Bool b
    | Text s -> Trace.Str s
  in
  Trace.Arr [ Trace.Str r.rpath; Trace.Str (tag r.rkind r.rvalue); v ]

let reg_of_json j =
  match j with
  | Trace.Arr [ Trace.Str path; Trace.Str tag; v ] when String.length tag = 2 ->
    let kind =
      match tag.[0] with
      | 'a' -> `Arch
      | 'm' -> `Micro
      | _ -> raise (Trace.Parse_error ("scan: bad register kind " ^ tag))
    in
    let value =
      match tag.[1] with
      | 'i' -> Int (Trace.as_int v)
      | 'f' -> Float (Trace.as_float v)
      | 'h' -> Hash (Trace.as_hash v)
      | 'b' -> Flag (Trace.as_bool v)
      | 's' -> Text (Trace.as_string v)
      | _ -> raise (Trace.Parse_error ("scan: bad register type " ^ tag))
    in
    { rpath = path; rvalue = value; rkind = kind }
  | _ -> raise (Trace.Parse_error "scan: malformed register")

let to_json s =
  Trace.Obj
    [
      ("scan", Trace.jint s.s_version);
      ("at", Trace.jfloat s.s_at);
      ("epoch", Trace.jint s.s_epoch);
      ("digest", Trace.jhash s.s_digest);
      ("regs", Trace.Arr (List.map reg_to_json s.s_regs));
    ]

let of_json j =
  let v = Trace.as_int (Trace.field j "scan") in
  if v <> version then
    raise (Trace.Parse_error (Printf.sprintf "scan: unsupported version %d" v));
  let regs = List.map reg_of_json (Trace.as_list (Trace.field j "regs")) in
  let stored = Trace.as_hash (Trace.field j "digest") in
  let computed = chain_digest regs in
  if not (Int64.equal stored computed) then
    raise (Trace.Parse_error "scan: stored digest does not match the register chain");
  {
    s_version = v;
    s_at = Trace.as_float (Trace.field j "at");
    s_epoch = Trace.as_int (Trace.field j "epoch");
    s_regs = regs;
    s_digest = stored;
  }

let save path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Trace.json_to_string (to_json s));
      output_char oc '\n')

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match of_json (Trace.json_of_string (String.trim contents)) with
    | s -> Ok s
    | exception Trace.Parse_error e -> Error e)

(* {2 Diff} *)

type mismatch = { d_path : string; d_left : string; d_right : string; d_total : int }

let value_eq a b =
  match (a, b) with
  | Float x, Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | a, b -> a = b

let diff ?(scope = `Arch) left right =
  let wanted r = match scope with `All -> true | `Arch -> r.rkind = `Arch in
  let lregs = List.filter wanted left.s_regs and rregs = List.filter wanted right.s_regs in
  let rmap = Hashtbl.create (List.length rregs) in
  List.iter (fun r -> Hashtbl.replace rmap r.rpath r.rvalue) rregs;
  let lset = Hashtbl.create (List.length lregs) in
  List.iter (fun r -> Hashtbl.replace lset r.rpath ()) lregs;
  let mismatches =
    List.filter_map
      (fun r ->
        match Hashtbl.find_opt rmap r.rpath with
        | Some v when value_eq r.rvalue v -> None
        | Some v -> Some (r.rpath, render_value r.rvalue, render_value v)
        | None -> Some (r.rpath, render_value r.rvalue, "<absent>"))
      lregs
    @ List.filter_map
        (fun r ->
          if Hashtbl.mem lset r.rpath then None
          else Some (r.rpath, "<absent>", render_value r.rvalue))
        rregs
  in
  match mismatches with
  | [] -> None
  | (p, l, r) :: _ -> Some { d_path = p; d_left = l; d_right = r; d_total = List.length mismatches }

let pp_mismatch ppf m =
  Format.fprintf ppf "%s: %s vs %s (%d register(s) differ)" m.d_path m.d_left m.d_right m.d_total

(* {2 Freeze / single-step} *)

type freeze = { f_fab : E.Fabric.t; mutable f_stepped : int; mutable f_live : bool }

let freeze fab = { f_fab = fab; f_stepped = 0; f_live = true }

let step f n =
  if not f.f_live then invalid_arg "Scanport.step: freeze already thawed";
  if n < 0 then invalid_arg "Scanport.step: negative step count";
  let k = ref 0 in
  (try
     for _ = 1 to n do
       if E.Fabric.step_epoch f.f_fab then incr k else raise Exit
     done
   with Exit -> ());
  f.f_stepped <- f.f_stepped + !k;
  !k

let epochs_stepped f = f.f_stepped
let thaw f = f.f_live <- false
