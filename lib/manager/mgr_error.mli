(** Typed control-plane errors.

    Everything the manager's admission pipeline — intent validation,
    the interpreter, the scheduler, re-placement — can refuse, as one
    variant instead of an opaque string, so callers (remediation, the
    experiments, [ihnetctl]) can match on the cause. {!to_string}
    renders the exact messages the old [(_, string) result] API
    produced, so logs and CLI output are stable across the change.
    Re-exported as [Manager.error]. *)

type t =
  | Invalid_intent of string  (** The intent failed {!Intent.validate}. *)
  | Unknown_device of string  (** No device with this name in the topology. *)
  | No_home_socket of { device : string; socket : string }
      (** A hose endpoint's socket device is missing from the topology. *)
  | No_path of { src : string; dst : string }
      (** No candidate pathway between the pipe endpoints survives the
          latency bound. *)
  | No_uplink of string  (** Hose endpoint cannot reach its home socket. *)
  | No_downlink of string  (** Home socket cannot reach the hose endpoint. *)
  | Capacity_exhausted of { tenant : int; rate : float; best_ratio : float }
      (** Admission refused: every candidate would push some hop past
          the headroom. [rate] is in bytes/s; [best_ratio] is the least
          post-placement bottleneck ratio among the candidates (> 1). *)
  | Not_a_pipe  (** Only pipe placements can be re-placed. *)
  | No_alternate_path
      (** No candidate pathway clears the degraded link(s) during
          re-placement. *)
  | Host_unreachable of string
      (** Fleet controller: the host's control channel timed out
          (crash or partition); commands cannot be confirmed. *)
  | Retries_exhausted of { host : string; command : string }
      (** Fleet controller: a command was retried to its bound (with
          exponential backoff) and never acknowledged. *)
  | No_feasible_host of { tenant : int }
      (** Fleet controller: no reachable host in the fleet
          admission-checks the tenant's placement — the fleet-level
          [Degraded] verdict carries this cause. *)

val to_string : t -> string
(** Human-readable message; byte-identical to the pre-typed API. *)

val pp : Format.formatter -> t -> unit
