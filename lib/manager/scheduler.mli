(** Topology-aware resource scheduler (§3.2).

    "There can be several GPU–SSD pathways within an intra-host network
    that can support the same amount of bandwidth. The scheduler needs
    to carefully choose one of the pathways based on topology and usage
    information to maximize overall resource efficiency."

    The scheduler keeps a reservation ledger per (link, direction).
    Placing a requirement means choosing, among its candidate paths,
    the one that minimizes the post-placement bottleneck reservation
    ratio — greedy water-level packing. Admission fails when every
    candidate would push some hop past [headroom × capacity]. *)

type t

val create : Ihnet_topology.Topology.t -> ?headroom:float -> unit -> t
(** [headroom] (default 0.9) caps the reservable fraction of each link
    direction, leaving slack for latency and unmanaged traffic. *)

val headroom : t -> float

val reserved : t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> float
(** Currently reserved bytes/s on a link direction. *)

val reservation_ratio : t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> float
(** reserved / (headroom × capacity). *)

val place : t -> Interpreter.requirement -> (Placement.t, Mgr_error.t) result
(** Choose a path and record the reservation. The returned placement is
    already charged to the ledger. Refusal is always
    {!Mgr_error.Capacity_exhausted}. *)

val place_all :
  t -> Interpreter.requirement list -> (Placement.t list, Mgr_error.t) result
(** All-or-nothing: on failure the ledger is rolled back to its state
    before the call. *)

val release : t -> Placement.t -> unit
(** Return a placement's reservation to the ledger. Idempotence is the
    caller's duty (the manager tracks what is live). *)

val move : t -> Placement.t -> Ihnet_topology.Path.t -> bool
(** [move t p path] migrates [p]'s reservation onto [path]: releases
    the old charge, and charges the new route if it fits under the
    headroom (updating [p.path]); otherwise restores the old charge and
    returns [false]. Lets the dynamic arbiter follow the route tenant
    traffic actually takes. *)

val total_reserved : t -> float
(** Sum of reservations across all link directions (a capacity-
    consumption measure; hose placements consume much less than the
    equivalent pipes — E9). *)

val utilization_summary : t -> (Ihnet_topology.Link.id * float * float) list
(** Per link: (id, fwd ratio, rev ratio), only links with any
    reservation. *)
