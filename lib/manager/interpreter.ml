module T = Ihnet_topology

type requirement = {
  tenant : int;
  kind : Placement.kind;
  rate : float;
  src : T.Device.id;
  dst : T.Device.id;
  candidates : T.Path.t list;
  work_conserving : bool;
  latency_bound : Ihnet_util.Units.ns option;
  p99_bound : Ihnet_util.Units.ns option;
}

let ( let* ) = Result.bind

let find_device topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> Ok d
  | None -> Error (Mgr_error.Unknown_device name)

let home_socket topo (d : T.Device.t) =
  let name = Printf.sprintf "socket%d" d.T.Device.socket in
  match T.Topology.device_by_name topo name with
  | Some s -> Ok s
  | None -> Error (Mgr_error.No_home_socket { device = d.T.Device.name; socket = name })

let filter_latency latency_bound candidates =
  match latency_bound with
  | None -> candidates
  | Some bound -> List.filter (fun p -> T.Path.base_latency p <= bound) candidates

(* A p99 bound is a latency bound on the tail, so zero-load feasibility
   is the same filter: a path whose base latency already exceeds the
   bound can never meet it. The effective candidate filter is the
   tighter of the two bounds. *)
let effective_bound (intent : Intent.t) =
  match (intent.Intent.latency_bound, intent.Intent.p99_bound) with
  | None, b | b, None -> b
  | Some a, Some b -> Some (Float.min a b)

let compile topo ?(k_paths = 4) (intent : Intent.t) =
  let* () =
    Result.map_error (fun why -> Mgr_error.Invalid_intent why) (Intent.validate intent)
  in
  let compile_target = function
    | Intent.Pipe { src; dst; rate } ->
      let* s = find_device topo src in
      let* d = find_device topo dst in
      let candidates =
        T.Routing.k_shortest_paths ~k:k_paths topo s.T.Device.id d.T.Device.id
        |> List.filter (fun (p : T.Path.t) -> p.T.Path.hops <> [])
        |> filter_latency (effective_bound intent)
      in
      if candidates = [] then Error (Mgr_error.No_path { src; dst })
      else
        Ok
          [
            {
              tenant = intent.Intent.tenant;
              kind = Placement.Pipe_fwd;
              rate;
              src = s.T.Device.id;
              dst = d.T.Device.id;
              candidates;
              work_conserving = intent.Intent.work_conserving;
              latency_bound = intent.Intent.latency_bound;
              p99_bound = intent.Intent.p99_bound;
            };
          ]
    | Intent.Hose { endpoint; to_host; from_host } ->
      let* e = find_device topo endpoint in
      let* sock = home_socket topo e in
      let* up =
        match T.Routing.shortest_path topo e.T.Device.id sock.T.Device.id with
        | Some p when p.T.Path.hops <> [] -> Ok p
        | Some _ | None -> Error (Mgr_error.No_uplink endpoint)
      in
      let* down =
        match T.Routing.shortest_path topo sock.T.Device.id e.T.Device.id with
        | Some p when p.T.Path.hops <> [] -> Ok p
        | Some _ | None -> Error (Mgr_error.No_downlink endpoint)
      in
      let mk kind rate (path : T.Path.t) =
        {
          tenant = intent.Intent.tenant;
          kind;
          rate;
          src = path.T.Path.src;
          dst = path.T.Path.dst;
          candidates = [ path ];
          work_conserving = intent.Intent.work_conserving;
          latency_bound = intent.Intent.latency_bound;
          p99_bound = intent.Intent.p99_bound;
        }
      in
      let reqs =
        (if to_host > 0.0 then [ mk Placement.Hose_to_host to_host up ] else [])
        @ if from_host > 0.0 then [ mk Placement.Hose_from_host from_host down ] else []
      in
      Ok reqs
  in
  List.fold_left
    (fun acc target ->
      let* acc = acc in
      let* reqs = compile_target target in
      Ok (acc @ reqs))
    (Ok []) intent.Intent.targets
