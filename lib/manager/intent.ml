type target =
  | Pipe of { src : string; dst : string; rate : float }
  | Hose of { endpoint : string; to_host : float; from_host : float }

type t = {
  tenant : int;
  targets : target list;
  latency_bound : Ihnet_util.Units.ns option;
  p99_bound : Ihnet_util.Units.ns option;
  work_conserving : bool;
}

let pipe ~tenant ~src ~dst ~rate =
  {
    tenant;
    targets = [ Pipe { src; dst; rate } ];
    latency_bound = None;
    p99_bound = None;
    work_conserving = true;
  }

let hose ~tenant ~endpoint ~to_host ~from_host =
  {
    tenant;
    targets = [ Hose { endpoint; to_host; from_host } ];
    latency_bound = None;
    p99_bound = None;
    work_conserving = true;
  }

let validate t =
  if t.targets = [] then Error "intent has no targets"
  else begin
    let bad =
      List.find_opt
        (fun tgt ->
          match tgt with
          | Pipe { rate; _ } -> rate <= 0.0
          | Hose { to_host; from_host; _ } -> to_host < 0.0 || from_host < 0.0 || to_host +. from_host <= 0.0)
        t.targets
    in
    match bad with
    | Some _ -> Error "intent target with non-positive rate"
    | None -> (
      match t.latency_bound with
      | Some b when b <= 0.0 -> Error "non-positive latency bound"
      | Some _ | None -> (
        match t.p99_bound with
        | Some b when b <= 0.0 -> Error "non-positive p99 bound"
        | Some _ | None -> Ok ()))
  end

let total_guaranteed t =
  List.fold_left
    (fun acc tgt ->
      acc
      +.
      match tgt with
      | Pipe { rate; _ } -> rate
      | Hose { to_host; from_host; _ } -> to_host +. from_host)
    0.0 t.targets

let pp ppf t =
  let target ppf = function
    | Pipe { src; dst; rate } ->
      Format.fprintf ppf "pipe %s->%s %a" src dst Ihnet_util.Units.pp_rate rate
    | Hose { endpoint; to_host; from_host } ->
      Format.fprintf ppf "hose %s in:%a out:%a" endpoint Ihnet_util.Units.pp_rate to_host
        Ihnet_util.Units.pp_rate from_host
  in
  Format.fprintf ppf "tenant %d {%a}%s" t.tenant
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") target)
    t.targets
    (if t.work_conserving then " wc" else "")
