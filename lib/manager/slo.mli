(** SLO compliance reporting: did the manager deliver what it promised?

    §3.2's goal is to "deliver predictable application performance";
    this module closes the loop by checking every live placement
    against its guarantee:

    - {b bandwidth}: the attached flows jointly receive at least
      [min(guaranteed rate, their joint offered demand)] — a tenant
      offering less than its guarantee is compliant by definition;
    - {b latency}: when the intent carried a bound, each attached
      flow's current {!Ihnet_engine.Fabric.flow_path_latency} is within
      it;
    - {b tail latency}: when the intent carried a [p99_bound], the
      observed p99 along the placement's path — per-hop p99 from the
      fabric's always-on latency sketches, summed — is within it. With
      the sketch plane dormant the bound is judged against the
      instantaneous estimate instead (weaker, never silent).

    A placement with no attached flows is [Inactive] (vacuously
    compliant); the interesting states are [Met] and [Violated]. *)

type state =
  | Inactive  (** No live flows charged to the placement. *)
  | Met
  | Degraded of float
      (** The remediation supervisor shrank the floor to this fraction
          of the guarantee (graceful degradation under a fault) and the
          scaled-down promise is being met. An explicit, recorded
          verdict — not a silent violation of the original SLO. *)
  | Violated of string  (** Human-readable reason. *)

type entry = {
  placement : Placement.t;
  delivered : float;  (** Aggregate rate of the attached flows, bytes/s. *)
  demanded : float;  (** Aggregate offered demand ([infinity] = elastic). *)
  worst_latency : Ihnet_util.Units.ns option;
      (** Worst current latency among attached flows, when a bound is
          set. *)
  observed_p99 : Ihnet_util.Units.ns option;
      (** Sketch-observed p99 along the placement's path, when the
          placement carries a [p99_bound] and the plane has samples. *)
  state : state;
}

type report = {
  at : Ihnet_util.Units.ns;
  entries : entry list;
  violations : int;
  degraded : int;  (** Entries under an explicit {!Degraded} verdict. *)
}

val observed_path_p99 : Ihnet_engine.Fabric.t -> Placement.t -> Ihnet_util.Units.ns option
(** Observed p99 along a placement's path: the per-hop p99s of the
    fabric's always-on link sketches, summed hop by hop. [None] while
    the sketch plane is dormant or before any hop has a sample. *)

val check : Manager.t -> report
(** Evaluate every live placement now. *)

val tenant_compliant : report -> tenant:int -> bool
(** No violated entry for the tenant. *)

val pp : Format.formatter -> report -> unit
(** One line per entry. *)
