(** Capacity planning over intents.

    Operators ask two questions before placing a tenant mix on a host:
    does this deployment fit, and how much uniform growth is left?
    Both reduce to trial placements against a scratch scheduler — no
    fabric needed, so planning is cheap enough to run per migration
    decision (the paper's VM-migration motivation for the virtualized
    abstraction). *)

val fits : Ihnet_topology.Topology.t -> ?headroom:float -> Intent.t list -> bool
(** Would the whole deployment be admitted on an empty host? *)

val max_scale :
  Ihnet_topology.Topology.t -> ?headroom:float -> ?tolerance:float -> Intent.t list -> float
(** Largest uniform factor [s] such that every intent with its rates
    multiplied by [s] still fits (binary search, default [tolerance]
    1%). 0.0 when even an arbitrarily small scale is rejected (e.g. an
    unroutable pair); [s < 1.0] means the deployment is over-committed
    today. *)

val bottlenecks :
  Ihnet_topology.Topology.t -> ?headroom:float -> ?top:int -> Intent.t list ->
  (Ihnet_topology.Link.t * float) list
(** After placing the deployment, the [top] (default 5) most reserved
    links with their reservation ratios — where growth will hit first.
    Empty when the deployment does not fit at all. *)

val scale_intent : Intent.t -> float -> Intent.t
(** Every target rate multiplied by the factor. *)
