(** The holistic resource manager: interpreter + scheduler + arbiter
    behind one facade — the paper's compile–schedule–arbitrate scheme.

    Typical use:
    {[
      let mgr = Manager.create fabric () in
      Manager.start_shim mgr ~period:(Units.us 50.0);
      match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0"
                                  ~rate:(Units.gbps 20.0)) with
      | Ok _ -> (* tenant 1's ext->socket0 flows now hold 2.5 GB/s *)
      | Error (Capacity_exhausted _) -> (* admission refused *)
      | Error e -> failwith (Manager.error_to_string e)
    ]} *)

type error = Mgr_error.t =
  | Invalid_intent of string
  | Unknown_device of string
  | No_home_socket of { device : string; socket : string }
  | No_path of { src : string; dst : string }
  | No_uplink of string
  | No_downlink of string
  | Capacity_exhausted of { tenant : int; rate : float; best_ratio : float }
  | Not_a_pipe
  | No_alternate_path
  | Host_unreachable of string
  | Retries_exhausted of { host : string; command : string }
  | No_feasible_host of { tenant : int }
      (** Everything admission, re-placement, and the fleet controller
          can refuse, re-exported from {!Mgr_error} so callers can match
          on the cause instead of parsing message strings. *)

val error_to_string : error -> string
(** Byte-identical to the messages of the old stringly API. *)

val pp_error : Format.formatter -> error -> unit

type t

val create :
  Ihnet_engine.Fabric.t ->
  ?headroom:float ->
  ?k_paths:int ->
  ?reaction_delay:Ihnet_util.Units.ns ->
  unit ->
  t

val fabric : t -> Ihnet_engine.Fabric.t
val scheduler : t -> Scheduler.t
val arbiter : t -> Arbiter.t

val submit : t -> Intent.t -> (Placement.t list, error) result
(** Compile, schedule (all-or-nothing admission), and hand the
    placements to the arbiter. *)

val revoke : t -> tenant:int -> unit
(** Release all of a tenant's placements and return its flows to
    best-effort — "applications come and go". *)

val placements : t -> Placement.t list
val tenants : t -> int list

val attach : t -> Ihnet_engine.Flow.t -> bool
val detach : t -> Ihnet_engine.Flow.t -> unit

val start_shim : t -> period:Ihnet_util.Units.ns -> unit
val stop_shim : t -> unit

val affected_placements : t -> Ihnet_topology.Link.id -> Placement.t list
(** Live placements whose reserved path crosses the link — the blast
    radius of a fault on it. *)

val replace_placement :
  t -> avoid:Ihnet_topology.Link.id list -> Placement.t -> (Ihnet_topology.Path.t, error) result
(** Re-place a pipe placement onto an alternate path avoiding every
    link in [avoid]: recompile the equivalent intent for fresh
    candidates, migrate the reservation ledger ({!Scheduler.move}) to
    the first candidate that fits, then migrate each attached running
    flow onto the new route (remaining bytes, demand and weight carried
    over) in one reallocation batch. Hose placements are anchored to
    their endpoint's uplink and return [Error]. *)

val vnet : t -> tenant:int -> Ihnet_topology.Topology.t
(** The tenant's virtualized view of the intra-host network. *)

val decisions : t -> int
(** Total arbiter enforcement actions. *)

val guaranteed_throughput : t -> tenant:int -> float
(** Sum of the tenant's placed rates, bytes/s. *)
