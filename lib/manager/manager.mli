(** The holistic resource manager: interpreter + scheduler + arbiter
    behind one facade — the paper's compile–schedule–arbitrate scheme.

    Typical use:
    {[
      let mgr = Manager.create fabric () in
      Manager.start_shim mgr ~period:(Units.us 50.0);
      match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0"
                                  ~rate:(Units.gbps 20.0)) with
      | Ok _ -> (* tenant 1's ext->socket0 flows now hold 2.5 GB/s *)
      | Error reason -> (* admission refused, capacity exhausted *)
    ]} *)

type t

val create :
  Ihnet_engine.Fabric.t ->
  ?headroom:float ->
  ?k_paths:int ->
  ?reaction_delay:Ihnet_util.Units.ns ->
  unit ->
  t

val fabric : t -> Ihnet_engine.Fabric.t
val scheduler : t -> Scheduler.t
val arbiter : t -> Arbiter.t

val submit : t -> Intent.t -> (Placement.t list, string) result
(** Compile, schedule (all-or-nothing admission), and hand the
    placements to the arbiter. *)

val revoke : t -> tenant:int -> unit
(** Release all of a tenant's placements and return its flows to
    best-effort — "applications come and go". *)

val placements : t -> Placement.t list
val tenants : t -> int list

val attach : t -> Ihnet_engine.Flow.t -> bool
val detach : t -> Ihnet_engine.Flow.t -> unit

val start_shim : t -> period:Ihnet_util.Units.ns -> unit
val stop_shim : t -> unit

val vnet : t -> tenant:int -> Ihnet_topology.Topology.t
(** The tenant's virtualized view of the intra-host network. *)

val decisions : t -> int
(** Total arbiter enforcement actions. *)

val guaranteed_throughput : t -> tenant:int -> float
(** Sum of the tenant's placed rates, bytes/s. *)
