module Fabric = Ihnet_engine.Fabric

type t = {
  fabric : Fabric.t;
  k_paths : int;
  scheduler : Scheduler.t;
  arbiter : Arbiter.t;
  mutable live : Placement.t list;
}

let create fabric ?(headroom = 0.9) ?(k_paths = 4) ?reaction_delay () =
  {
    fabric;
    k_paths;
    scheduler = Scheduler.create (Fabric.topology fabric) ~headroom ();
    arbiter = Arbiter.create fabric ?reaction_delay ();
    live = [];
  }

let fabric t = t.fabric
let scheduler t = t.scheduler
let arbiter t = t.arbiter

let submit t intent =
  let ( let* ) = Result.bind in
  let* reqs = Interpreter.compile (Fabric.topology t.fabric) ~k_paths:t.k_paths intent in
  let* placements = Scheduler.place_all t.scheduler reqs in
  List.iter
    (fun p ->
      t.live <- p :: t.live;
      Arbiter.add_placement t.arbiter p)
    placements;
  Ok placements

let revoke t ~tenant =
  let gone, kept = List.partition (fun p -> p.Placement.tenant = tenant) t.live in
  t.live <- kept;
  List.iter
    (fun p ->
      Arbiter.remove_placement t.arbiter p;
      Scheduler.release t.scheduler p)
    gone

let placements t = t.live

let tenants t =
  List.sort_uniq compare (List.map (fun p -> p.Placement.tenant) t.live)

(* Attach, then reconcile: if a pipe placement's reserved route is not
   the route the flow actually takes (parallel NICs, P2P shortcuts),
   migrate the reservation onto the real path so the ledger stays
   truthful. Hoses are route-agnostic by construction. *)
let attach t (flow : Ihnet_engine.Flow.t) =
  match Arbiter.attach_placement t.arbiter flow with
  | None -> false
  | Some p ->
    (if p.Placement.kind = Placement.Pipe_fwd then begin
       let same_route =
         List.map (fun (h : Ihnet_topology.Path.hop) -> h.Ihnet_topology.Path.link.Ihnet_topology.Link.id)
           p.Placement.path.Ihnet_topology.Path.hops
         = List.map
             (fun (h : Ihnet_topology.Path.hop) -> h.Ihnet_topology.Path.link.Ihnet_topology.Link.id)
             flow.Ihnet_engine.Flow.path.Ihnet_topology.Path.hops
       in
       if not same_route then
         ignore (Scheduler.move t.scheduler p flow.Ihnet_engine.Flow.path)
     end);
    true

let detach t flow = Arbiter.detach t.arbiter flow
let start_shim t ~period = Arbiter.start_shim ~attach:(attach t) t.arbiter ~period
let stop_shim t = Arbiter.stop_shim t.arbiter

let vnet t ~tenant = Vnet.build (Fabric.topology t.fabric) ~placements:t.live ~tenant

let decisions t = Arbiter.decisions t.arbiter

let guaranteed_throughput t ~tenant =
  List.fold_left
    (fun acc p -> if p.Placement.tenant = tenant then acc +. p.Placement.rate else acc)
    0.0 t.live
