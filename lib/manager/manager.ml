module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module T = Ihnet_topology

type error = Mgr_error.t =
  | Invalid_intent of string
  | Unknown_device of string
  | No_home_socket of { device : string; socket : string }
  | No_path of { src : string; dst : string }
  | No_uplink of string
  | No_downlink of string
  | Capacity_exhausted of { tenant : int; rate : float; best_ratio : float }
  | Not_a_pipe
  | No_alternate_path
  | Host_unreachable of string
  | Retries_exhausted of { host : string; command : string }
  | No_feasible_host of { tenant : int }

let error_to_string = Mgr_error.to_string
let pp_error = Mgr_error.pp

type t = {
  fabric : Fabric.t;
  k_paths : int;
  scheduler : Scheduler.t;
  arbiter : Arbiter.t;
  mutable live : Placement.t list;
}

let create fabric ?(headroom = 0.9) ?(k_paths = 4) ?reaction_delay () =
  {
    fabric;
    k_paths;
    scheduler = Scheduler.create (Fabric.topology fabric) ~headroom ();
    arbiter = Arbiter.create fabric ?reaction_delay ();
    live = [];
  }

let fabric t = t.fabric
let scheduler t = t.scheduler
let arbiter t = t.arbiter

let submit t intent =
  let ( let* ) = Result.bind in
  let* reqs = Interpreter.compile (Fabric.topology t.fabric) ~k_paths:t.k_paths intent in
  let* placements = Scheduler.place_all t.scheduler reqs in
  List.iter
    (fun p ->
      t.live <- p :: t.live;
      Arbiter.add_placement t.arbiter p)
    placements;
  Ok placements

let revoke t ~tenant =
  let gone, kept = List.partition (fun p -> p.Placement.tenant = tenant) t.live in
  t.live <- kept;
  List.iter
    (fun p ->
      Arbiter.remove_placement t.arbiter p;
      Scheduler.release t.scheduler p)
    gone

let placements t = t.live

let tenants t =
  List.sort_uniq compare (List.map (fun p -> p.Placement.tenant) t.live)

(* Attach, then reconcile: if a pipe placement's reserved route is not
   the route the flow actually takes (parallel NICs, P2P shortcuts),
   migrate the reservation onto the real path so the ledger stays
   truthful. Hoses are route-agnostic by construction. *)
let attach t (flow : Ihnet_engine.Flow.t) =
  match Arbiter.attach_placement t.arbiter flow with
  | None -> false
  | Some p ->
    (if p.Placement.kind = Placement.Pipe_fwd then begin
       let same_route =
         List.map (fun (h : Ihnet_topology.Path.hop) -> h.Ihnet_topology.Path.link.Ihnet_topology.Link.id)
           p.Placement.path.Ihnet_topology.Path.hops
         = List.map
             (fun (h : Ihnet_topology.Path.hop) -> h.Ihnet_topology.Path.link.Ihnet_topology.Link.id)
             flow.Ihnet_engine.Flow.path.Ihnet_topology.Path.hops
       in
       if not same_route then
         ignore (Scheduler.move t.scheduler p flow.Ihnet_engine.Flow.path)
     end);
    true

let detach t flow = Arbiter.detach t.arbiter flow
let start_shim t ~period = Arbiter.start_shim ~attach:(attach t) t.arbiter ~period
let stop_shim t = Arbiter.stop_shim t.arbiter

let path_links (p : T.Path.t) =
  List.map (fun (h : T.Path.hop) -> h.T.Path.link.T.Link.id) p.T.Path.hops

let affected_placements t link =
  List.filter (fun (p : Placement.t) -> List.mem link (path_links p.Placement.path)) t.live

(* Re-place one pipe placement onto a pathway avoiding [avoid]:
   recompile the equivalent intent through the interpreter for fresh
   candidates, migrate the reservation (Scheduler.move), then migrate
   the attached flows — each is stopped (the arbiter prunes its floor)
   and restarted on the new route with its demand, weight and remaining
   bytes carried over, modelling the application reconnecting after the
   supervisor re-programmed its I/O path. Hoses are anchored to their
   endpoint's only uplink and cannot be re-placed. *)
let replace_placement t ~avoid (p : Placement.t) =
  let ( let* ) = Result.bind in
  if p.Placement.kind <> Placement.Pipe_fwd then Error Mgr_error.Not_a_pipe
  else begin
    let topo = Fabric.topology t.fabric in
    let name d = (T.Topology.device topo d).T.Device.name in
    let intent =
      {
        (Intent.pipe ~tenant:p.Placement.tenant
           ~src:(name p.Placement.path.T.Path.src)
           ~dst:(name p.Placement.path.T.Path.dst)
           ~rate:p.Placement.rate)
        with
        Intent.latency_bound = p.Placement.latency_bound;
        p99_bound = p.Placement.p99_bound;
        work_conserving = p.Placement.work_conserving;
      }
    in
    let* reqs = Interpreter.compile topo ~k_paths:t.k_paths intent in
    let candidates =
      List.concat_map (fun (r : Interpreter.requirement) -> r.Interpreter.candidates) reqs
      |> List.filter (fun (c : T.Path.t) ->
             let links = path_links c in
             (not (List.exists (fun l -> List.mem l links) avoid))
             && links <> path_links p.Placement.path)
    in
    let rec try_move = function
      | [] -> Error Mgr_error.No_alternate_path
      | c :: rest -> if Scheduler.move t.scheduler p c then Ok c else try_move rest
    in
    let* new_path = try_move candidates in
    let to_migrate =
      List.filter (fun (f : Flow.t) -> f.Flow.state = Flow.Running) p.Placement.attached
    in
    Fabric.batch t.fabric (fun () ->
        List.iter
          (fun (f : Flow.t) ->
            Fabric.stop_flow t.fabric f;
            let size =
              match f.Flow.size with
              | Flow.Unbounded -> Flow.Unbounded
              | Flow.Bytes _ -> Flow.Bytes (Float.max f.Flow.remaining 1.0)
            in
            let g =
              Fabric.start_flow t.fabric ~tenant:f.Flow.tenant ~cls:f.Flow.cls
                ~weight:f.Flow.weight ~demand:f.Flow.demand ~payload_bytes:f.Flow.payload_bytes
                ~llc_target:f.Flow.llc_target
                ?on_complete:f.Flow.on_complete ~path:new_path ~size ()
            in
            ignore (Arbiter.attach_placement t.arbiter g))
          to_migrate);
    Ok new_path
  end

let vnet t ~tenant = Vnet.build (Fabric.topology t.fabric) ~placements:t.live ~tenant

let decisions t = Arbiter.decisions t.arbiter

let guaranteed_throughput t ~tenant =
  List.fold_left
    (fun acc p -> if p.Placement.tenant = tenant then acc +. p.Placement.rate else acc)
    0.0 t.live
