(** Virtualized intra-host network abstraction (§3.2).

    "Each tenant should see a dedicated isolated virtual intra-host
    network. For example, if a tenant is only allocated half of the
    PCIe bandwidth to an I/O device, from the tenant's perspective, it
    should see an illusion that the allocated bandwidth is the
    corresponding PCIe capacity."

    A vnet is a fresh {!Ihnet_topology.Topology.t} containing exactly
    the devices and links the tenant's placements touch, with each
    link's capacity set to the tenant's reserved rate on it. Because it
    is an ordinary topology value, everything else (routing,
    validation, DOT export, even a nested simulation) works on it
    unchanged — that is the abstraction's point. *)

val build :
  Ihnet_topology.Topology.t -> placements:Placement.t list -> tenant:int -> Ihnet_topology.Topology.t
(** The tenant's virtual view. Link capacity = the tenant's reservation
    on that link (max over directions); base latencies are inherited.
    An empty view (no placements) has no devices. *)

val migration_compatible :
  src:Ihnet_topology.Topology.t -> dst_host:Ihnet_topology.Topology.t -> placements:Placement.t list -> tenant:int -> bool
(** Could this tenant's virtual network be re-hosted on [dst_host]
    without renegotiation? True when every device name in the vnet
    exists on the destination with compatible kind, and every vnet
    link's capacity fits under the destination's corresponding device
    pair capacity. The paper's VM-migration motivation. *)
