module T = Ihnet_topology
module Flow = Ihnet_engine.Flow

type kind = Pipe_fwd | Hose_to_host | Hose_from_host

type t = {
  id : int;
  tenant : int;
  kind : kind;
  rate : float;
  mutable path : T.Path.t;
  work_conserving : bool;
  latency_bound : Ihnet_util.Units.ns option;
  p99_bound : Ihnet_util.Units.ns option;
  mutable attached : Flow.t list;
  mutable floor_scale : float;
}

(* Stable identity: placements are rebuilt (recompiled, copied) across
   remediation and migration, so lifecycle operations compare ids, never
   physical or structural equality. *)
let next_id = ref 0

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

(* The hop adjacent to the hose's endpoint: the endpoint's own uplink,
   which only that endpoint's traffic can cross. For [Hose_to_host] the
   placement path starts at the endpoint (first hop); for
   [Hose_from_host] it ends there (last hop). *)
let endpoint_hop t =
  match (t.kind, t.path.T.Path.hops) with
  | _, [] -> None
  | (Pipe_fwd | Hose_to_host), h :: _ -> Some h
  | Hose_from_host, hops -> Some (List.nth hops (List.length hops - 1))

let matches t (f : Flow.t) =
  f.Flow.tenant = t.tenant
  &&
  match t.kind with
  | Pipe_fwd ->
    f.Flow.path.T.Path.src = t.path.T.Path.src && f.Flow.path.T.Path.dst = t.path.T.Path.dst
  | Hose_to_host | Hose_from_host -> (
    match endpoint_hop t with
    | None -> false
    | Some hop ->
      List.exists
        (fun (h : T.Path.hop) ->
          h.T.Path.link.T.Link.id = hop.T.Path.link.T.Link.id && h.T.Path.dir = hop.T.Path.dir)
        f.Flow.path.T.Path.hops)

let reserved_on t =
  List.map
    (fun (h : T.Path.hop) -> (h.T.Path.link.T.Link.id, h.T.Path.dir, t.rate))
    t.path.T.Path.hops

let pp ppf t =
  let k =
    match t.kind with
    | Pipe_fwd -> "pipe"
    | Hose_to_host -> "hose-in"
    | Hose_from_host -> "hose-out"
  in
  Format.fprintf ppf "%s t%d %a (%d flows)%s" k t.tenant Ihnet_util.Units.pp_rate t.rate
    (List.length t.attached)
    (if t.floor_scale < 1.0 then Printf.sprintf " [degraded x%.2f]" t.floor_scale else "")
