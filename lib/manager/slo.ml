module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module T = Ihnet_topology
module U = Ihnet_util

type state = Inactive | Met | Degraded of float | Violated of string

type entry = {
  placement : Placement.t;
  delivered : float;
  demanded : float;
  worst_latency : U.Units.ns option;
  observed_p99 : U.Units.ns option;
  state : state;
}

type report = { at : U.Units.ns; entries : entry list; violations : int; degraded : int }

(* 1% slack absorbs fluid-model rounding *)
let tolerance = 0.99

(* Observed p99 along a placement's path: per-hop p99 from the fabric's
   always-on link sketches, summed hop by hop (the same decomposition
   path_latency uses). [None] while the sketch plane is dormant or
   before any hop has a sample. *)
let observed_path_p99 fabric (p : Placement.t) =
  if not (Fabric.latency_sketches_enabled fabric) then None
  else begin
    let total = ref 0.0 and seen = ref false in
    List.iter
      (fun (h : T.Path.hop) ->
        match Fabric.link_latency_sketch fabric h.T.Path.link.T.Link.id h.T.Path.dir with
        | Some sk when U.Sketch.count sk > 0 ->
          seen := true;
          total := !total +. U.Sketch.percentile sk 0.99
        | Some _ | None -> ())
      p.Placement.path.T.Path.hops;
    if !seen then Some !total else None
  end

let check_placement fabric (p : Placement.t) =
  let flows = List.filter (fun (f : Flow.t) -> f.Flow.state = Flow.Running) p.Placement.attached in
  if flows = [] then
    {
      placement = p;
      delivered = 0.0;
      demanded = 0.0;
      worst_latency = None;
      observed_p99 = None;
      state = Inactive;
    }
  else begin
    let delivered = List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.rate) 0.0 flows in
    let demanded =
      List.fold_left (fun acc (f : Flow.t) -> acc +. Flow.effective_demand f) 0.0 flows
    in
    (* A remediated placement promises only its scaled-down floor; it is
       judged against that and reported Degraded, never silently held to
       (and failed against) the original guarantee. *)
    let scale = p.Placement.floor_scale in
    let entitled = Float.min (p.Placement.rate *. scale) demanded in
    let bandwidth_ok = delivered >= entitled *. tolerance in
    let inst_worst () =
      List.fold_left (fun acc f -> Float.max acc (Fabric.flow_path_latency fabric f)) 0.0 flows
    in
    let worst_latency =
      match (p.Placement.latency_bound, p.Placement.p99_bound) with
      | None, None -> None
      | _ -> Some (inst_worst ())
    in
    let latency_ok =
      match (p.Placement.latency_bound, worst_latency) with
      | Some bound, Some worst -> worst <= bound
      | _ -> true
    in
    let observed_p99 =
      match p.Placement.p99_bound with None -> None | Some _ -> observed_path_p99 fabric p
    in
    (* with the sketch plane dormant the tail bound is still judged, on
       the instantaneous estimate — a weaker check, but never silent *)
    let p99_ok =
      match p.Placement.p99_bound with
      | None -> true
      | Some bound -> (
        match observed_p99 with
        | Some obs -> obs <= bound
        | None -> Option.value ~default:0.0 worst_latency <= bound)
    in
    let state =
      if not bandwidth_ok then
        Violated
          (Format.asprintf "delivered %a of entitled %a" U.Units.pp_rate delivered
             U.Units.pp_rate entitled)
      else if not latency_ok then
        Violated
          (Format.asprintf "latency %a exceeds bound %a" U.Units.pp_time
             (Option.value ~default:nan worst_latency)
             U.Units.pp_time
             (Option.value ~default:nan p.Placement.latency_bound))
      else if not p99_ok then
        Violated
          (Format.asprintf "observed p99 %a exceeds bound %a" U.Units.pp_time
             (match observed_p99 with
             | Some obs -> obs
             | None -> Option.value ~default:nan worst_latency)
             U.Units.pp_time
             (Option.value ~default:nan p.Placement.p99_bound))
      else if scale < 1.0 then Degraded scale
      else Met
    in
    { placement = p; delivered; demanded; worst_latency; observed_p99; state }
  end

let check mgr =
  let fabric = Manager.fabric mgr in
  let entries = List.map (check_placement fabric) (Manager.placements mgr) in
  let violations =
    List.length (List.filter (fun e -> match e.state with Violated _ -> true | _ -> false) entries)
  in
  let degraded =
    List.length (List.filter (fun e -> match e.state with Degraded _ -> true | _ -> false) entries)
  in
  { at = Fabric.now fabric; entries; violations; degraded }

let tenant_compliant report ~tenant =
  not
    (List.exists
       (fun e ->
         e.placement.Placement.tenant = tenant
         && match e.state with Violated _ -> true | _ -> false)
       report.entries)

let pp ppf report =
  Format.fprintf ppf "slo report at %a: %d placement(s), %d violation(s), %d degraded@."
    U.Units.pp_time report.at (List.length report.entries) report.violations report.degraded;
  List.iter
    (fun e ->
      let state =
        match e.state with
        | Inactive -> "inactive"
        | Met -> "met"
        | Degraded scale -> Printf.sprintf "DEGRADED to %.0f%% (explicit remediation verdict)" (scale *. 100.0)
        | Violated why -> "VIOLATED: " ^ why
      in
      Format.fprintf ppf "  %a -> delivered %a (demand %a) %s@." Placement.pp e.placement
        U.Units.pp_rate e.delivered U.Units.pp_rate e.demanded state)
    report.entries
