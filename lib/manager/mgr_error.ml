type t =
  | Invalid_intent of string
  | Unknown_device of string
  | No_home_socket of { device : string; socket : string }
  | No_path of { src : string; dst : string }
  | No_uplink of string
  | No_downlink of string
  | Capacity_exhausted of { tenant : int; rate : float; best_ratio : float }
  | Not_a_pipe
  | No_alternate_path
  | Host_unreachable of string
  | Retries_exhausted of { host : string; command : string }
  | No_feasible_host of { tenant : int }

(* The strings are the exact messages the stringly API used to return,
   so anything that logged or displayed them is unchanged. *)
let to_string = function
  | Invalid_intent why -> why
  | Unknown_device name -> Printf.sprintf "unknown device %S" name
  | No_home_socket { device; socket } ->
    Printf.sprintf "device %s has no home socket %s" device socket
  | No_path { src; dst } ->
    Printf.sprintf "no feasible path %s -> %s (latency bound too tight?)" src dst
  | No_uplink endpoint -> Printf.sprintf "no uplink path from %s to its socket" endpoint
  | No_downlink endpoint -> Printf.sprintf "no downlink path from socket to %s" endpoint
  | Capacity_exhausted { tenant; rate; best_ratio } ->
    Printf.sprintf "tenant %d: no pathway can hold %.2f GB/s (best bottleneck %.0f%%)" tenant
      (rate /. 1e9) (best_ratio *. 100.0)
  | Not_a_pipe -> "only pipe placements can be re-placed"
  | No_alternate_path -> "no alternate pathway clears the degraded link(s)"
  | Host_unreachable host ->
    Printf.sprintf "host %s unreachable: control channel timed out" host
  | Retries_exhausted { host; command } ->
    Printf.sprintf "retries exhausted sending %s to host %s" command host
  | No_feasible_host { tenant } ->
    Printf.sprintf "tenant %d: no host in the fleet can admit the placement" tenant

let pp fmt e = Format.pp_print_string fmt (to_string e)
