module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology

type t =
  | No_management
  | Static_partition of { tenants : int list }
  | Holistic of Manager.t

type handle = { policy : t; mutable running : bool }

(* Total memory-channel bandwidth of the host: what RDT-style memory
   bandwidth allocation divides among tenants. *)
let memory_bandwidth topo =
  List.fold_left
    (fun acc (l : T.Link.t) ->
      match l.T.Link.kind with T.Link.Memory_channel -> acc +. l.T.Link.capacity | _ -> acc)
    0.0 (T.Topology.links topo)

let crosses_memory (f : Flow.t) =
  List.exists
    (fun (h : T.Path.hop) ->
      match h.T.Path.link.T.Link.kind with
      | T.Link.Memory_channel | T.Link.Intra_socket -> true
      | _ -> false)
    f.Flow.path.T.Path.hops

(* Static partition: each listed tenant's memory-crossing flows are
   jointly capped at an even share of memory bandwidth. Nothing else is
   touched — deliberately partial. *)
let static_partition_tick fabric tenants _ =
  let topo = Fabric.topology fabric in
  let share = memory_bandwidth topo /. float_of_int (max 1 (List.length tenants)) in
  List.iter
    (fun tenant ->
      let flows =
        List.filter
          (fun (f : Flow.t) ->
            f.Flow.tenant = tenant && f.Flow.cls = Flow.Payload && crosses_memory f)
          (Fabric.active_flows fabric)
      in
      let n = List.length flows in
      if n > 0 then begin
        let per_flow = share /. float_of_int n in
        List.iter (fun f -> Fabric.set_flow_limits fabric f ~cap:per_flow ()) flows
      end)
    tenants

let install fabric policy ~period =
  assert (period > 0.0);
  let handle = { policy; running = true } in
  (match policy with
  | No_management -> ()
  | Static_partition { tenants } ->
    let rec tick sim =
      if handle.running then begin
        static_partition_tick fabric tenants sim;
        Sim.schedule (Fabric.sim fabric) ~after:period tick
      end
    in
    Sim.schedule (Fabric.sim fabric) ~after:0.0 tick
  | Holistic mgr -> Manager.start_shim mgr ~period);
  handle

let uninstall handle =
  handle.running <- false;
  match handle.policy with Holistic mgr -> Manager.stop_shim mgr | _ -> ()

let label = function
  | No_management -> "no-mgmt"
  | Static_partition _ -> "static-partition"
  | Holistic _ -> "holistic"
