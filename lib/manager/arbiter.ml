module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module U = Ihnet_util

type t = {
  fabric : Fabric.t;
  reaction_delay : U.Units.ns;
  mutable placements : Placement.t list;
  mutable decisions : int;
  mutable shim_running : bool;
  mutable shim_gen : int; (* stamps tick chains so stale ones self-cancel *)
  floors : (int, float) Hashtbl.t; (* flow id -> installed floor *)
}

(* A flow that completes (or is stopped) on its own never goes through
   release_flow/detach, so its floor entry and attachment must be pruned
   here or guaranteed_of reports stale floors and the table grows
   without bound under churn. The share refresh is deferred to the next
   enforcement pass (shim tick or attach/detach) rather than run inside
   the fabric's event dispatch. *)
let on_fabric_event t = function
  | Fabric.Flow_completed (f : Flow.t) | Fabric.Flow_stopped f ->
    Hashtbl.remove t.floors f.Flow.id;
    List.iter
      (fun (p : Placement.t) ->
        p.Placement.attached <-
          List.filter (fun (g : Flow.t) -> g.Flow.id <> f.Flow.id) p.Placement.attached)
      t.placements
  | Fabric.Flow_started _ | Fabric.Fault_injected _ | Fabric.Fault_cleared _
  | Fabric.Limits_changed _ | Fabric.Config_changed _ | Fabric.Reallocated _
  | Fabric.All_faults_cleared | Fabric.Batch_started | Fabric.Batch_ended | Fabric.Synced
  | Fabric.Sensor_fault_injected _ | Fabric.Sensor_fault_cleared _ -> ()

let create fabric ?(reaction_delay = 0.0) () =
  assert (reaction_delay >= 0.0);
  let t =
    {
      fabric;
      reaction_delay;
      placements = [];
      decisions = 0;
      shim_running = false;
      shim_gen = 0;
      floors = Hashtbl.create 32;
    }
  in
  Fabric.subscribe fabric (on_fabric_event t);
  t

let placements t = t.placements

let enforce t (flow : Flow.t) ~floor ~cap =
  t.decisions <- t.decisions + 1;
  Hashtbl.replace t.floors flow.Flow.id floor;
  let apply _ =
    if flow.Flow.state = Flow.Running then
      Fabric.set_flow_limits t.fabric flow ~floor ~cap ()
  in
  if t.reaction_delay > 0.0 then Sim.schedule (Fabric.sim t.fabric) ~after:t.reaction_delay apply
  else apply (Fabric.sim t.fabric)

let release_flow t (flow : Flow.t) =
  if Hashtbl.mem t.floors flow.Flow.id then begin
    Hashtbl.remove t.floors flow.Flow.id;
    t.decisions <- t.decisions + 1;
    if flow.Flow.state = Flow.Running then
      Fabric.set_flow_limits t.fabric flow ~floor:0.0 ~cap:infinity ()
  end

(* Recompute per-flow shares of one placement. *)
let refresh_placement t (p : Placement.t) =
  p.Placement.attached <-
    List.filter (fun (f : Flow.t) -> f.Flow.state = Flow.Running) p.Placement.attached;
  let n = List.length p.Placement.attached in
  if n > 0 then begin
    let share = p.Placement.rate *. p.Placement.floor_scale /. float_of_int n in
    let cap = if p.Placement.work_conserving then infinity else share in
    List.iter (fun f -> enforce t f ~floor:share ~cap) p.Placement.attached
  end

(* one fabric enforcement action for the whole pass *)
let refresh t = Fabric.batch t.fabric (fun () -> List.iter (refresh_placement t) t.placements)

let add_placement t p =
  t.placements <- t.placements @ [ p ];
  refresh_placement t p

let remove_placement t p =
  (* by id: a structurally equal placement rebuilt elsewhere (e.g. after
     recompilation) must still remove the registered one *)
  let gone, kept =
    List.partition (fun (q : Placement.t) -> q.Placement.id = p.Placement.id) t.placements
  in
  t.placements <- kept;
  List.iter
    (fun (q : Placement.t) ->
      List.iter (release_flow t) q.Placement.attached;
      q.Placement.attached <- [])
    gone;
  if gone = [] || not (List.memq p gone) then begin
    List.iter (release_flow t) p.Placement.attached;
    p.Placement.attached <- []
  end

(* Pipes first so a flow that matches both a pipe and a hose is charged
   to the more specific guarantee. *)
let candidates_for t flow =
  let pipes, hoses =
    List.partition (fun p -> p.Placement.kind = Placement.Pipe_fwd) t.placements
  in
  List.filter (fun p -> Placement.matches p flow) (pipes @ hoses)

let attach_placement t (flow : Flow.t) =
  match candidates_for t flow with
  | [] -> None
  | p :: _ ->
    if not (List.exists (fun (f : Flow.t) -> f.Flow.id = flow.Flow.id) p.Placement.attached)
    then begin
      p.Placement.attached <- flow :: p.Placement.attached;
      refresh_placement t p
    end;
    Some p

let attach t flow = Option.is_some (attach_placement t flow)

let detach t (flow : Flow.t) =
  List.iter
    (fun p ->
      if List.exists (fun (f : Flow.t) -> f.Flow.id = flow.Flow.id) p.Placement.attached
      then begin
        p.Placement.attached <-
          List.filter (fun (f : Flow.t) -> f.Flow.id <> flow.Flow.id) p.Placement.attached;
        release_flow t flow;
        refresh_placement t p
      end)
    t.placements

let is_attached t (flow : Flow.t) =
  List.exists
    (fun p -> List.exists (fun (f : Flow.t) -> f.Flow.id = flow.Flow.id) p.Placement.attached)
    t.placements

let start_shim ?attach:attach_opt t ~period =
  assert (period > 0.0);
  let attach_fn = match attach_opt with Some f -> f | None -> attach t in
  if not t.shim_running then begin
    t.shim_running <- true;
    (* generation-stamp the chain: a stop_shim/start_shim pair bumps the
       generation, so the old chain's pending tick sees a stale stamp
       and dies instead of running as a second, double-enforcing chain *)
    t.shim_gen <- t.shim_gen + 1;
    let gen = t.shim_gen in
    let rec tick _ =
      if t.shim_running && gen = t.shim_gen then begin
        refresh t;
        List.iter
          (fun (f : Flow.t) ->
            if f.Flow.cls = Flow.Payload && not (is_attached t f) then ignore (attach_fn f))
          (Fabric.active_flows t.fabric);
        Sim.schedule (Fabric.sim t.fabric) ~after:period tick
      end
    in
    Sim.schedule (Fabric.sim t.fabric) ~after:0.0 tick
  end

let stop_shim t =
  t.shim_running <- false;
  t.shim_gen <- t.shim_gen + 1
let decisions t = t.decisions

let guaranteed_of t (flow : Flow.t) =
  Option.value ~default:0.0 (Hashtbl.find_opt t.floors flow.Flow.id)

let installed_floors t =
  Hashtbl.fold (fun id floor acc -> (id, floor) :: acc) t.floors []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
