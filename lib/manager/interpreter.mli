(** The performance-target interpreter (§3.2).

    Compiles an {!Intent.t} into low-level {e requirements}: concrete
    endpoint pairs with rates and candidate paths. "The interpreter
    needs to generate the requirements in a holistic way, enabling
    different components to collaboratively provide end-to-end
    allocation" — concretely, a 20 Gb/s pipe between NIC and GPU
    becomes a 2.5 GB/s reservation on every hop of a chosen NIC–GPU
    path: PCIe links, root complex segment, and (for memory targets)
    the memory bus. *)

type requirement = {
  tenant : int;
  kind : Placement.kind;
  rate : float;
  src : Ihnet_topology.Device.id;
  dst : Ihnet_topology.Device.id;
  candidates : Ihnet_topology.Path.t list;
      (** Alternative pathways, best (shortest) first; the scheduler
          picks one. Hose requirements have exactly one candidate (the
          endpoint's uplink to its home socket). *)
  work_conserving : bool;
  latency_bound : Ihnet_util.Units.ns option;
  p99_bound : Ihnet_util.Units.ns option;
}

val compile :
  Ihnet_topology.Topology.t -> ?k_paths:int -> Intent.t -> (requirement list, Mgr_error.t) result
(** [k_paths] (default 4) bounds the candidate set per pipe. Fails on
    unknown device names ({!Mgr_error.Unknown_device}), unreachable
    pairs ({!Mgr_error.No_path}/[No_uplink]/[No_downlink]), or invalid
    intents ({!Mgr_error.Invalid_intent}). A [latency_bound] or
    [p99_bound] drops candidate paths whose base latency exceeds the
    tighter of the two — a path slower than the bound at zero load can
    never meet it at the tail — and fails if none survives. *)
