module T = Ihnet_topology

(* Tenant's reservation per link (max of the two directions). *)
let reservations_of placements ~tenant =
  let tbl : (T.Link.id, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Placement.t) ->
      if p.Placement.tenant = tenant then
        List.iter
          (fun (link, _dir, rate) ->
            let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl link) in
            Hashtbl.replace tbl link (Float.max cur rate))
          (Placement.reserved_on p))
    placements;
  tbl

let build topo ~placements ~tenant =
  let reservations = reservations_of placements ~tenant in
  let vnet =
    T.Topology.create ~config:(T.Topology.config topo)
      ~name:(Printf.sprintf "%s-vnet-t%d" (T.Topology.name topo) tenant)
      ()
  in
  let dev_map : (T.Device.id, T.Device.id) Hashtbl.t = Hashtbl.create 16 in
  let ensure_device id =
    match Hashtbl.find_opt dev_map id with
    | Some v -> v
    | None ->
      let d = T.Topology.device topo id in
      let v =
        T.Topology.add_device vnet ~name:d.T.Device.name ~kind:d.T.Device.kind
          ~socket:d.T.Device.socket
      in
      Hashtbl.add dev_map id v.T.Device.id;
      v.T.Device.id
  in
  Hashtbl.iter
    (fun link_id rate ->
      if rate > 0.0 then begin
        let l = T.Topology.link topo link_id in
        let a = ensure_device l.T.Link.a and b = ensure_device l.T.Link.b in
        ignore
          (T.Topology.add_link vnet ~kind:l.T.Link.kind ~a ~b ~capacity:rate
             ~base_latency:l.T.Link.base_latency)
      end)
    reservations;
  vnet

let migration_compatible ~src ~dst_host ~placements ~tenant =
  let vnet = build src ~placements ~tenant in
  let devices_ok =
    List.for_all
      (fun (d : T.Device.t) ->
        match T.Topology.device_by_name dst_host d.T.Device.name with
        | Some d' -> T.Device.kind_label d'.T.Device.kind = T.Device.kind_label d.T.Device.kind
        | None -> false)
      (T.Topology.devices vnet)
  in
  devices_ok
  && List.for_all
       (fun (l : T.Link.t) ->
         let a = (T.Topology.device vnet l.T.Link.a).T.Device.name in
         let b = (T.Topology.device vnet l.T.Link.b).T.Device.name in
         match (T.Topology.device_by_name dst_host a, T.Topology.device_by_name dst_host b) with
         | Some da, Some db ->
           let candidates = T.Topology.links_between dst_host da.T.Device.id db.T.Device.id in
           List.exists (fun (c : T.Link.t) -> c.T.Link.capacity >= l.T.Link.capacity) candidates
         | _ -> false)
       (T.Topology.links vnet)
