(** Tenant performance intents.

    §3.2: the manageable intra-host network "interprets the application
    intent (i.e., performance targets) into a set of low-level
    requirements based on a resource model". An intent is what a tenant
    asks for; the {!Interpreter} compiles it, the {!Scheduler} places
    it, the {!Arbiter} enforces it.

    Two resource models are offered (§3.2-Q1, citing Duffield et al.'s
    hose model [16]):
    - {b pipe}: a guaranteed rate between one specific pair of devices —
      precise but reserves capacity on the whole pair path;
    - {b hose}: an aggregate ingress/egress guarantee at one device,
      whatever the peers — reserves only the device's uplink segment. *)

type target =
  | Pipe of { src : string; dst : string; rate : float }
      (** Guaranteed [rate] bytes/s from device [src] to device [dst]. *)
  | Hose of { endpoint : string; to_host : float; from_host : float }
      (** Aggregate guarantees at [endpoint]: [to_host] covers traffic
          from the device toward the host (inbound DMA writes),
          [from_host] the reverse (reads). *)

type t = {
  tenant : int;
  targets : target list;
  latency_bound : Ihnet_util.Units.ns option;
      (** Advisory SLO; the monitor checks it, the scheduler prefers
          shorter paths when set. *)
  p99_bound : Ihnet_util.Units.ns option;
      (** Tail-latency SLO: the tenant's observed p99 path latency —
          measured by the fabric's always-on latency sketches — must
          stay under this bound. {!Slo} judges it and, when the host
          wires [latency_sketches], {!Remediation.tail_latency_source}
          opens cases on breaches. Build with functional update:
          [{ (pipe ...) with p99_bound = Some (us 8.0) }]. *)
  work_conserving : bool;
      (** When true the tenant may exceed its guarantee using idle
          capacity; when false the guarantee is also a hard ceiling. *)
}

val pipe : tenant:int -> src:string -> dst:string -> rate:float -> t
(** Single-pipe work-conserving intent. *)

val hose : tenant:int -> endpoint:string -> to_host:float -> from_host:float -> t

val validate : t -> (unit, string) result
(** Rates positive, at least one target. *)

val total_guaranteed : t -> float
(** Sum of all target rates — a crude size measure for admission
    reports. *)

val pp : Format.formatter -> t -> unit
