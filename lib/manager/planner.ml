module T = Ihnet_topology

let scale_intent (intent : Intent.t) factor =
  {
    intent with
    Intent.targets =
      List.map
        (fun target ->
          match target with
          | Intent.Pipe { src; dst; rate } -> Intent.Pipe { src; dst; rate = rate *. factor }
          | Intent.Hose { endpoint; to_host; from_host } ->
            Intent.Hose
              { endpoint; to_host = to_host *. factor; from_host = from_host *. factor })
        intent.Intent.targets;
  }

let try_place topo ~headroom intents =
  let sched = Scheduler.create topo ~headroom () in
  let rec go = function
    | [] -> Some sched
    | intent :: rest -> (
      match Interpreter.compile topo intent with
      | Error _ -> None
      | Ok reqs -> (
        match Scheduler.place_all sched reqs with
        | Ok _ -> go rest
        | Error _ -> None))
  in
  go intents

let fits topo ?(headroom = 0.9) intents = Option.is_some (try_place topo ~headroom intents)

let max_scale topo ?(headroom = 0.9) ?(tolerance = 0.01) intents =
  assert (tolerance > 0.0 && tolerance < 1.0);
  if intents = [] then infinity
  else begin
    let fits_at s = fits topo ~headroom (List.map (fun i -> scale_intent i s) intents) in
    if not (fits_at 1e-6) then 0.0
    else begin
      (* exponential probe for an upper bound, then bisect *)
      let hi = ref 1.0 in
      while fits_at !hi && !hi < 1e6 do
        hi := !hi *. 2.0
      done;
      let lo = ref (!hi /. 2.0) in
      while (!hi -. !lo) /. !lo > tolerance do
        let mid = (!lo +. !hi) /. 2.0 in
        if fits_at mid then lo := mid else hi := mid
      done;
      !lo
    end
  end

let bottlenecks topo ?(headroom = 0.9) ?(top = 5) intents =
  match try_place topo ~headroom intents with
  | None -> []
  | Some sched ->
    Scheduler.utilization_summary sched
    |> List.map (fun (id, fwd, rev) -> (T.Topology.link topo id, Float.max fwd rev))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < top)
