module T = Ihnet_topology

type t = {
  topo : T.Topology.t;
  headroom : float;
  ledger : float array; (* per resource = 2*link + dir *)
}

let res_of link_id (dir : T.Link.dir) =
  (2 * link_id) + match dir with T.Link.Fwd -> 0 | T.Link.Rev -> 1

let create topo ?(headroom = 0.9) () =
  assert (headroom > 0.0 && headroom <= 1.0);
  { topo; headroom; ledger = Array.make (2 * T.Topology.link_count topo) 0.0 }

let headroom t = t.headroom
let reserved t link dir = t.ledger.(res_of link dir)

let limit t link = (T.Topology.link t.topo link).T.Link.capacity *. t.headroom

let reservation_ratio t link dir =
  let lim = limit t link in
  if lim <= 0.0 then infinity else t.ledger.(res_of link dir) /. lim

(* Bottleneck ratio of [path] if [rate] more were reserved on it. *)
let ratio_after t (path : T.Path.t) rate =
  List.fold_left
    (fun acc (h : T.Path.hop) ->
      let link = h.T.Path.link.T.Link.id in
      let lim = limit t link in
      let r =
        if lim <= 0.0 then infinity
        else (t.ledger.(res_of link h.T.Path.dir) +. rate) /. lim
      in
      Float.max acc r)
    0.0 path.T.Path.hops

let charge t (path : T.Path.t) rate =
  List.iter
    (fun (h : T.Path.hop) ->
      let r = res_of h.T.Path.link.T.Link.id h.T.Path.dir in
      t.ledger.(r) <- t.ledger.(r) +. rate)
    path.T.Path.hops

let place t (req : Interpreter.requirement) =
  let scored =
    List.map (fun p -> (ratio_after t p req.Interpreter.rate, p)) req.Interpreter.candidates
  in
  let feasible = List.filter (fun (ratio, _) -> ratio <= 1.0) scored in
  match List.sort (fun (a, _) (b, _) -> compare a b) feasible with
  | [] ->
    let best =
      List.fold_left (fun acc (r, _) -> Float.min acc r) infinity scored
    in
    Error
      (Mgr_error.Capacity_exhausted
         { tenant = req.Interpreter.tenant; rate = req.Interpreter.rate; best_ratio = best })
  | (_, path) :: _ ->
    charge t path req.Interpreter.rate;
    Ok
      {
        Placement.id = Placement.fresh_id ();
        tenant = req.Interpreter.tenant;
        kind = req.Interpreter.kind;
        rate = req.Interpreter.rate;
        path;
        work_conserving = req.Interpreter.work_conserving;
        latency_bound = req.Interpreter.latency_bound;
        p99_bound = req.Interpreter.p99_bound;
        attached = [];
        floor_scale = 1.0;
      }

let release t (p : Placement.t) =
  List.iter
    (fun (h : T.Path.hop) ->
      let r = res_of h.T.Path.link.T.Link.id h.T.Path.dir in
      t.ledger.(r) <- Float.max 0.0 (t.ledger.(r) -. p.Placement.rate))
    p.Placement.path.T.Path.hops

let move t (p : Placement.t) path =
  release t p;
  if ratio_after t path p.Placement.rate <= 1.0 then begin
    charge t path p.Placement.rate;
    p.Placement.path <- path;
    true
  end
  else begin
    charge t p.Placement.path p.Placement.rate;
    false
  end

let place_all t reqs =
  let before = Array.copy t.ledger in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | req :: rest -> (
      match place t req with
      | Ok p -> go (p :: acc) rest
      | Error e ->
        Array.blit before 0 t.ledger 0 (Array.length before);
        Error e)
  in
  go [] reqs

let total_reserved t = Array.fold_left ( +. ) 0.0 t.ledger

let utilization_summary t =
  List.filter_map
    (fun (l : T.Link.t) ->
      let fwd = reservation_ratio t l.T.Link.id T.Link.Fwd in
      let rev = reservation_ratio t l.T.Link.id T.Link.Rev in
      if fwd > 0.0 || rev > 0.0 then Some (l.T.Link.id, fwd, rev) else None)
    (T.Topology.links t.topo)
