module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module Fault = Ihnet_engine.Fault
module T = Ihnet_topology
module U = Ihnet_util

type stage = Rearbitrate | Replace | Degrade

type status = Suspected | Remediating | Held_down | Resolved | Exhausted

type case = {
  link : T.Link.id;
  mutable status : status;
  mutable stage : stage;
  mutable attempts : int; (* within the current stage *)
  mutable detected_at : U.Units.ns;
  mutable recovered_at : U.Units.ns option;
  mutable next_due : U.Units.ns;
  mutable held_until : U.Units.ns;
  mutable transitions : U.Units.ns list; (* recent fault toggles, newest first *)
  mutable degraded_ids : int list; (* placements whose floor this case shrank *)
  mutable total_actions : int;
  mutable gate_waits : int; (* consecutive ticks blocked awaiting corroboration *)
}

type action = {
  at : U.Units.ns;
  action_link : T.Link.id;
  action_stage : stage;
  detail : string;
  impact : bool; (* true = fabric/placement state changed; false = a note *)
}

type config = {
  period : U.Units.ns;
  max_attempts : int;
  base_backoff : U.Units.ns;
  backoff_factor : float;
  flap_window : U.Units.ns;
  flap_threshold : int;
  holddown : U.Units.ns;
  suspect_score : float;
  degrade_step : float;
  min_floor_scale : float;
  use_fault_events : bool;
  migration_budget : float;
  migration_refill : U.Units.ns;
}

let default_config =
  {
    period = U.Units.us 200.0;
    max_attempts = 2;
    base_backoff = U.Units.us 500.0;
    backoff_factor = 2.0;
    flap_window = U.Units.ms 5.0;
    flap_threshold = 4;
    holddown = U.Units.ms 10.0;
    suspect_score = 0.5;
    degrade_step = 0.5;
    min_floor_scale = 0.1;
    use_fault_events = true;
    (* generous by default: the limiter is a thrash backstop, not a
       brake on ordinary single-fault remediation *)
    migration_budget = 32.0;
    migration_refill = U.Units.us 250.0;
  }

type t = {
  mgr : Manager.t;
  fabric : Fabric.t;
  config : config;
  mutable cases : case list; (* insertion order *)
  mutable sources : (string * (unit -> (T.Link.id * float) list)) list;
  mutable history : action list; (* newest first *)
  mutable running : bool;
  mutable gen : int; (* stamps tick chains so stale ones self-cancel *)
  mutable observers : (action -> unit) list; (* registration order *)
  mutable gate : (T.Link.id -> [ `Unknown | `Suspected of float | `Corroborated of float ]) option;
  mutable tokens : float; (* migration token bucket (Replace/Degrade) *)
  mutable last_refill : U.Units.ns;
}

(* Same slack the SLO checker grants: absorbs fluid-model rounding. *)
let tolerance = 0.99

let case_for t link = List.find_opt (fun c -> c.link = link) t.cases

let open_case t link =
  let now = Fabric.now t.fabric in
  match case_for t link with
  | Some c ->
    (* A resolved (or exhausted) case that gets re-detected reopens from
       the top of the escalation ladder with a fresh detection stamp;
       an in-flight case just keeps going. *)
    if c.status = Resolved || c.status = Exhausted then begin
      c.status <- Suspected;
      c.stage <- Rearbitrate;
      c.attempts <- 0;
      c.detected_at <- now;
      c.recovered_at <- None;
      c.next_due <- now
    end;
    c
  | None ->
    let c =
      {
        link;
        status = Suspected;
        stage = Rearbitrate;
        attempts = 0;
        detected_at = now;
        recovered_at = None;
        next_due = now;
        held_until = 0.0;
        transitions = [];
        degraded_ids = [];
        total_actions = 0;
        gate_waits = 0;
      }
    in
    t.cases <- t.cases @ [ c ];
    c

(* Fault events are the cheap detector: the operator announced the
   fault, so the case opens at once. The same transitions feed flap
   damping. Heavy work (re-arbitration, migration) stays out of the
   fabric's synchronous dispatch and runs on the next supervisor tick. *)
let on_fabric_event t = function
  | Fabric.Fault_injected (link, _) ->
    if t.config.use_fault_events then begin
      let c = open_case t link in
      c.transitions <- Fabric.now t.fabric :: c.transitions
    end
    else begin
      (* Operator announcements ignored as a detector (to exercise the
         monitor-driven path), but toggles still feed flap damping of
         cases some detector already opened. *)
      match case_for t link with
      | None -> ()
      | Some c -> c.transitions <- Fabric.now t.fabric :: c.transitions
    end
  | Fabric.Fault_cleared link -> (
    match case_for t link with
    | None -> ()
    | Some c -> c.transitions <- Fabric.now t.fabric :: c.transitions)
  | Fabric.Flow_started _ | Fabric.Flow_completed _ | Fabric.Flow_stopped _
  | Fabric.Limits_changed _ | Fabric.Config_changed _ | Fabric.Reallocated _
  | Fabric.All_faults_cleared | Fabric.Batch_started | Fabric.Batch_ended | Fabric.Synced
  | Fabric.Sensor_fault_injected _ | Fabric.Sensor_fault_cleared _ -> ()

let create ?(config = default_config) mgr =
  let t =
    {
      mgr;
      fabric = Manager.fabric mgr;
      config;
      cases = [];
      sources = [];
      history = [];
      running = false;
      gen = 0;
      observers = [];
      gate = None;
      tokens = config.migration_budget;
      last_refill = 0.0;
    }
  in
  Fabric.subscribe t.fabric (on_fabric_event t);
  t

let add_source t ~name f = t.sources <- t.sources @ [ (name, f) ]

let set_gate t g = t.gate <- Some g

let on_action t f = t.observers <- t.observers @ [ f ]

let record ?(impact = false) t c detail =
  c.total_actions <- c.total_actions + 1;
  let a =
    { at = Fabric.now t.fabric; action_link = c.link; action_stage = c.stage; detail; impact }
  in
  t.history <- a :: t.history;
  List.iter (fun f -> f a) t.observers

(* Victims: placements still routed over the suspect link whose running
   flows jointly receive less than the (possibly scaled-down) promise —
   or, for placements carrying a tail-latency bound, whose current path
   latency exceeds it. Latency victimhood is judged on the
   instantaneous estimate, not the cumulative sketch: the sketch
   remembers the breach forever (that is its job as a detector), while
   a case must resolve as soon as the migrated flows are actually fast
   again. A placement replaced onto another path, or with no live
   flows, is no longer this case's problem. *)
let victims t link =
  Fabric.refresh t.fabric;
  List.filter
    (fun (p : Placement.t) ->
      let flows =
        List.filter (fun (f : Flow.t) -> f.Flow.state = Flow.Running) p.Placement.attached
      in
      flows <> []
      &&
      let delivered = List.fold_left (fun a (f : Flow.t) -> a +. f.Flow.rate) 0.0 flows in
      let demanded =
        List.fold_left (fun a (f : Flow.t) -> a +. Flow.effective_demand f) 0.0 flows
      in
      let entitled = Float.min (p.Placement.rate *. p.Placement.floor_scale) demanded in
      let starved = delivered < entitled *. tolerance in
      let too_slow =
        match p.Placement.p99_bound with
        | None -> false
        | Some bound ->
          List.exists (fun (f : Flow.t) -> Fabric.flow_path_latency t.fabric f > bound) flows
      in
      starved || too_slow)
    (Manager.affected_placements t.mgr link)

(* The tail-latency detector (a {!add_source} source, wired by the host
   when the sketch plane is on): for every placement carrying a p99
   bound, sum the observed per-hop sketch p99 along its path; on a
   breach, suspect the hop contributing most, with confidence scaled by
   how far past the bound the tail sits. *)
let tail_latency_source mgr () =
  let fabric = Manager.fabric mgr in
  if not (Fabric.latency_sketches_enabled fabric) then []
  else
    List.fold_left
      (fun acc (p : Placement.t) ->
        match p.Placement.p99_bound with
        | None -> acc
        | Some bound ->
          let total = ref 0.0 and worst = ref (-1) and worst_p99 = ref 0.0 in
          List.iter
            (fun (h : T.Path.hop) ->
              match Fabric.link_latency_sketch fabric h.T.Path.link.T.Link.id h.T.Path.dir with
              | Some sk when U.Sketch.count sk > 0 ->
                let p99 = U.Sketch.percentile sk 0.99 in
                total := !total +. p99;
                if p99 > !worst_p99 then begin
                  worst_p99 := p99;
                  worst := h.T.Path.link.T.Link.id
                end
              | Some _ | None -> ())
            p.Placement.path.T.Path.hops;
          if !worst >= 0 && !total > bound then
            (!worst, Float.min 1.0 ((!total -. bound) /. bound)) :: acc
          else acc)
      []
      (Manager.placements mgr)

let backoff t (c : case) =
  t.config.base_backoff *. (t.config.backoff_factor ** float_of_int c.attempts)

let restore_degraded t c =
  if c.degraded_ids <> [] then begin
    List.iter
      (fun (p : Placement.t) ->
        if List.mem p.Placement.id c.degraded_ids then p.Placement.floor_scale <- 1.0)
      (Manager.placements t.mgr);
    c.degraded_ids <- [];
    Arbiter.refresh (Manager.arbiter t.mgr);
    record ~impact:true t c "restored full floors after fault cleared"
  end

let escalate c =
  match c.stage with
  | Rearbitrate ->
    c.stage <- Replace;
    c.attempts <- 0
  | Replace ->
    c.stage <- Degrade;
    c.attempts <- 0
  | Degrade -> ()

let status_label = function
  | Suspected -> "suspected"
  | Remediating -> "remediating"
  | Held_down -> "held-down"
  | Resolved -> "resolved"
  | Exhausted -> "exhausted"

let stage_label = function
  | Rearbitrate -> "re-arbitrate"
  | Replace -> "re-place"
  | Degrade -> "degrade"

let act t c vs =
  (match c.stage with
  | Rearbitrate ->
    Arbiter.refresh (Manager.arbiter t.mgr);
    record ~impact:true t c
      (Printf.sprintf "re-arbitrated floors/caps for %d victim placement(s)" (List.length vs))
  | Replace ->
    List.iter
      (fun (p : Placement.t) ->
        match Manager.replace_placement t.mgr ~avoid:[ c.link ] p with
        | Ok _ ->
          record ~impact:true t c
            (Printf.sprintf "re-placed t%d onto alternate path" p.Placement.tenant)
        | Error why ->
          record t c
            (Printf.sprintf "re-place t%d failed: %s" p.Placement.tenant
               (Mgr_error.to_string why)))
      vs
  | Degrade ->
    List.iter
      (fun (p : Placement.t) ->
        let scale =
          Float.max t.config.min_floor_scale (p.Placement.floor_scale *. t.config.degrade_step)
        in
        if scale < p.Placement.floor_scale then begin
          p.Placement.floor_scale <- scale;
          if not (List.mem p.Placement.id c.degraded_ids) then
            c.degraded_ids <- p.Placement.id :: c.degraded_ids;
          record ~impact:true t c
            (Printf.sprintf "degraded t%d floor to %.0f%% (explicit verdict)" p.Placement.tenant
               (scale *. 100.0))
        end)
      vs;
    Arbiter.refresh (Manager.arbiter t.mgr));
  c.attempts <- c.attempts + 1;
  c.next_due <- Fabric.now t.fabric +. backoff t c

(* Deterministic token bucket in simulated time: Replace/Degrade each
   burn one token; refill is linear up to the budget. Bounds migrations
   per window even when a corroborated quorum is itself lying. *)
let take_token t =
  let now = Fabric.now t.fabric in
  let dt = now -. t.last_refill in
  if dt > 0.0 then begin
    t.tokens <- Float.min t.config.migration_budget (t.tokens +. (dt /. t.config.migration_refill));
    t.last_refill <- now
  end;
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    true
  end
  else false

(* The evidence gate. Re-arbitration is cheap and reversible, so
   single-source suspicion suffices; migration and explicit degradation
   move real state and require a corroborated verdict. No gate wired =
   every verdict corroborated (exact pre-gate behaviour). *)
let gate_verdict t c =
  match t.gate with
  | None -> `Corroborated 1.0
  | Some g -> (
    match c.stage with Rearbitrate -> `Corroborated 1.0 | Replace | Degrade -> g c.link)

let attempt t c vs =
  match gate_verdict t c with
  | `Unknown | `Suspected _ ->
    if c.gate_waits = 0 then
      record t c
        ("awaiting corroboration before " ^ stage_label c.stage ^ " (single-source suspicion)");
    c.gate_waits <- c.gate_waits + 1;
    c.next_due <- Fabric.now t.fabric +. t.config.period
  | `Corroborated _ ->
    if (c.stage = Replace || c.stage = Degrade) && not (take_token t) then begin
      record t c "migration rate limit: token bucket empty, deferring";
      c.next_due <- Fabric.now t.fabric +. t.config.migration_refill
    end
    else begin
      c.gate_waits <- 0;
      act t c vs
    end

let step_case t c =
  let now = Fabric.now t.fabric in
  (* Flap damping: too many fault transitions inside the window means
     the link is oscillating — acting on every toggle would thrash
     migrations, so the case holds down and waits the flapping out. *)
  c.transitions <- List.filter (fun ts -> now -. ts <= t.config.flap_window) c.transitions;
  if c.status = Held_down && now < c.held_until then ()
  else begin
    if c.status = Held_down then c.status <- Remediating;
    if
      List.length c.transitions >= t.config.flap_threshold
      && c.status <> Resolved && c.status <> Exhausted
    then begin
      c.status <- Held_down;
      c.held_until <- now +. t.config.holddown;
      record t c
        (Printf.sprintf "flap damping: %d transitions in window, holding down"
           (List.length c.transitions))
    end
    else begin
      (if Fabric.fault_of t.fabric c.link = Fault.healthy then restore_degraded t c);
      match c.status with
      | Resolved | Exhausted | Held_down -> ()
      | Suspected | Remediating -> (
        match victims t c.link with
        | [] ->
          c.status <- Resolved;
          if c.recovered_at = None then c.recovered_at <- Some now
        | vs ->
          c.status <- Remediating;
          if now >= c.next_due then
            if c.attempts < t.config.max_attempts then attempt t c vs
            else if c.stage <> Degrade then begin
              escalate c;
              attempt t c vs
            end
            else if
              (* the last stage keeps shrinking past its attempt budget
                 until every victim floor sits at the minimum scale —
                 only then is the ladder genuinely spent *)
              List.exists
                (fun (p : Placement.t) ->
                  p.Placement.floor_scale > t.config.min_floor_scale +. 1e-9)
                vs
            then attempt t c vs
            else begin
              c.status <- Exhausted;
              record t c "escalation exhausted: minimum floors still unmet"
            end)
    end
  end

let poll_sources t =
  List.iter
    (fun (name, f) ->
      List.iter
        (fun (link, score) ->
          if score >= t.config.suspect_score then begin
            (* a closed case only reopens if someone is actually hurt
               again — a detector that keeps flagging a sick-but-routed-
               around link must not spin the resolved case forever *)
            let reopen_or_fresh =
              match case_for t link with
              | None -> true
              | Some c when c.status = Resolved || c.status = Exhausted -> victims t link <> []
              | Some _ -> false
            in
            if reopen_or_fresh then begin
              let c = open_case t link in
              record t c (Printf.sprintf "suspected by %s (score %.2f)" name score)
            end
          end)
        (f ()))
    t.sources

let tick t =
  poll_sources t;
  List.iter (step_case t) t.cases

let start t =
  if not t.running then begin
    t.running <- true;
    t.gen <- t.gen + 1;
    let gen = t.gen in
    let sim = Fabric.sim t.fabric in
    let rec loop _ =
      if t.running && gen = t.gen then begin
        tick t;
        Sim.schedule sim ~after:t.config.period loop
      end
    in
    Sim.schedule sim ~after:0.0 loop
  end

let stop t =
  t.running <- false;
  t.gen <- t.gen + 1

let running t = t.running
let cases t = t.cases
let actions t = List.rev t.history
let actions_count t = List.length t.history

let time_to_detect t link ~since =
  match case_for t link with
  | Some c when c.detected_at >= since -> Some (c.detected_at -. since)
  | _ -> None

let time_to_recover t link =
  match case_for t link with
  | Some c -> Option.map (fun r -> r -. c.detected_at) c.recovered_at
  | None -> None

let pp_status ppf t =
  Format.fprintf ppf "remediation: %d case(s), %d action(s)@." (List.length t.cases)
    (actions_count t);
  List.iter
    (fun c ->
      Format.fprintf ppf "  link %d: %s (stage %s, %d attempt(s), %d action(s))%s@." c.link
        (status_label c.status) (stage_label c.stage) c.attempts c.total_actions
        (match c.recovered_at with
        | Some r ->
          Format.asprintf " detected %a, recovered %a" U.Units.pp_time c.detected_at
            U.Units.pp_time r
        | None -> Format.asprintf " detected %a" U.Units.pp_time c.detected_at))
    t.cases

let pp_timeline ppf t =
  List.iter
    (fun a ->
      Format.fprintf ppf "  [%a] link %d %s: %s@." U.Units.pp_time a.at a.action_link
        (stage_label a.action_stage) a.detail)
    (actions t)
