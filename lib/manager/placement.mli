(** A placed (scheduled) requirement: one guaranteed rate pinned to one
    concrete path. Produced by the {!Scheduler}, enforced by the
    {!Arbiter}. *)

type kind =
  | Pipe_fwd  (** A pipe target, src→dst direction. *)
  | Hose_to_host
  | Hose_from_host

type t = {
  tenant : int;
  kind : kind;
  rate : float;  (** Guaranteed bytes/s on [path]. *)
  mutable path : Ihnet_topology.Path.t;
      (** The reserved route. The manager may migrate it (via
          {!Scheduler.move}) to follow where the tenant's traffic
          actually flows. *)
  work_conserving : bool;
  latency_bound : Ihnet_util.Units.ns option;
      (** The intent's advisory latency SLO, carried through for
          compliance reporting ({!Slo}). *)
  mutable attached : Ihnet_engine.Flow.t list;
      (** Live flows currently charged against this guarantee
          (arbiter-owned). *)
}

val matches : t -> Ihnet_engine.Flow.t -> bool
(** Does a flow belong to this placement? Pipes match on exact
    (tenant, src, dst); hoses match any tenant flow traversing the
    hose's first uplink hop in the reserved direction. *)

val reserved_on : t -> (Ihnet_topology.Link.id * Ihnet_topology.Link.dir * float) list
(** Per-hop reservation this placement holds. *)

val pp : Format.formatter -> t -> unit
