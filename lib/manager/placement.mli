(** A placed (scheduled) requirement: one guaranteed rate pinned to one
    concrete path. Produced by the {!Scheduler}, enforced by the
    {!Arbiter}. *)

type kind =
  | Pipe_fwd  (** A pipe target, src→dst direction. *)
  | Hose_to_host
  | Hose_from_host

type t = {
  id : int;
      (** Stable identity, assigned at construction. Lifecycle
          operations (removal, remediation) compare ids: a placement
          rebuilt elsewhere with equal fields is still the {e same}
          placement iff it carries the same id. *)
  tenant : int;
  kind : kind;
  rate : float;  (** Guaranteed bytes/s on [path]. *)
  mutable path : Ihnet_topology.Path.t;
      (** The reserved route. The manager may migrate it (via
          {!Scheduler.move}) to follow where the tenant's traffic
          actually flows. *)
  work_conserving : bool;
  latency_bound : Ihnet_util.Units.ns option;
      (** The intent's advisory latency SLO, carried through for
          compliance reporting ({!Slo}). *)
  p99_bound : Ihnet_util.Units.ns option;
      (** The intent's tail-latency SLO (observed p99 ≤ bound), carried
          through for {!Slo} reporting and the remediation supervisor's
          tail-latency detector. *)
  mutable attached : Ihnet_engine.Flow.t list;
      (** Live flows currently charged against this guarantee
          (arbiter-owned). *)
  mutable floor_scale : float;
      (** Remediation's graceful-degradation knob in [\[0,1\]] (default
          1.0): floors are enforced at [rate * floor_scale]. Below 1.0
          the placement is explicitly {e degraded} rather than silently
          violated ({!Slo} reports it as such). *)
}

val fresh_id : unit -> int
(** Next stable placement id (process-wide counter). *)

val matches : t -> Ihnet_engine.Flow.t -> bool
(** Does a flow belong to this placement? Pipes match on exact
    (tenant, src, dst); hoses match any tenant flow traversing the
    hose's first uplink hop in the reserved direction. *)

val reserved_on : t -> (Ihnet_topology.Link.id * Ihnet_topology.Link.dir * float) list
(** Per-hop reservation this placement holds. *)

val pp : Format.formatter -> t -> unit
