(** Management policies compared in E8: what runs on the host.

    - [No_management]: today's default — flows share by unmanaged
      max-min fairness; aggressors win.
    - [Static_partition]: the RDT-like {e point solution} the paper
      criticizes ("limited point solutions that mitigate interference
      from specific components in a coarse-grained way"): the memory
      bus is split evenly among tenants; PCIe and everything else stays
      unmanaged.
    - [Holistic]: the full compile–schedule–arbitrate manager. *)

type t =
  | No_management
  | Static_partition of { tenants : int list }
  | Holistic of Manager.t

type handle

val install : Ihnet_engine.Fabric.t -> t -> period:Ihnet_util.Units.ns -> handle
(** Start the policy's enforcement shim (a no-op for
    [No_management]). *)

val uninstall : handle -> unit

val label : t -> string
