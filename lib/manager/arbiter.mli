(** Dynamic resource arbiter (§3.2).

    Enforces the scheduler's placements at run time: every live flow
    that belongs to a placement gets a guaranteed floor (its share of
    the placed rate) and — for non-work-conserving tenants — a matching
    cap. Shares are recomputed whenever flows attach or detach, so "the
    arbiter should dynamically adjust the allocation promptly when
    applications come and go".

    §3.2-Q2 asks {e where} to implement arbitration given rigid PCIe
    hardware; this arbiter is the paper's suggested "unified software
    shim layer": {!start_shim} polls the fabric and classifies every
    new payload flow, so tenants need no cooperation. The polling
    period models the shim's reaction latency, and [reaction_delay]
    adds the enforcement-path latency on top (§3.2-Q3). *)

type t

val create : Ihnet_engine.Fabric.t -> ?reaction_delay:Ihnet_util.Units.ns -> unit -> t
(** [reaction_delay] (default 0): simulated delay between a decision
    and its taking effect on the fabric. *)

val add_placement : t -> Placement.t -> unit
val remove_placement : t -> Placement.t -> unit
(** Detaches its flows (returning them to best-effort). *)

val placements : t -> Placement.t list

val attach : t -> Ihnet_engine.Flow.t -> bool
(** Classify a flow against the placements (pipes take precedence over
    hoses) and, on a match, install floor/cap. Returns [false] when no
    placement matches — the flow stays best-effort. *)

val attach_placement : t -> Ihnet_engine.Flow.t -> Placement.t option
(** Like {!attach} but returns the matched placement, so callers (the
    manager) can reconcile the reservation with the flow's actual
    route. *)

val detach : t -> Ihnet_engine.Flow.t -> unit
val refresh : t -> unit
(** Prune dead flows and recompute all shares. Called internally by
    attach/detach; exposed for the shim. *)

val start_shim : ?attach:(Ihnet_engine.Flow.t -> bool) -> t -> period:Ihnet_util.Units.ns -> unit
(** Poll the fabric every [period]: attach unclassified payload flows
    (through [attach] when given — the manager passes its reconciling
    variant), prune dead ones. The arbiter as software shim layer. *)

val stop_shim : t -> unit

val decisions : t -> int
(** Enforcement actions issued (set_flow_limits calls) — the load that
    must stay microsecond-cheap per §3.2-Q3. *)

val guaranteed_of : t -> Ihnet_engine.Flow.t -> float
(** Current floor installed for a flow; 0.0 if unmanaged. *)

val installed_floors : t -> (int * float) list
(** The floor table as (flow id, floor), sorted by id. Floors are
    pruned when a flow detaches, is released, completes, or is stopped
    — the guarantee-accounting invariant the soak and the qcheck
    property pin: every entry belongs to a live attached flow. *)
