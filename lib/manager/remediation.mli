(** Self-healing remediation supervisor: detect → diagnose → act.

    §3.1's motivating failure is a {e silent} degradation — no error
    counter fires, performance just collapses. Detecting it is the
    monitor's job; this module closes the management loop by acting on
    the diagnosis. Per suspected link it runs a small state machine
    whose actions escalate, each stage bounded by [max_attempts] with
    exponential backoff between attempts:

    + {b re-arbitrate} — re-push floors/caps so the arbiter's
      guarantees are re-asserted against the degraded residual
      capacity (cheap, fixes allocation drift);
    + {b re-place} — migrate affected pipe placements (reservation and
      live flows) onto alternate paths that avoid the suspect link,
      recompiling through the interpreter;
    + {b degrade} — shrink the placement's floor by [degrade_step]
      (never below [min_floor_scale]) and record an explicit
      {!Slo.Degraded} verdict instead of silently violating the
      original guarantee. Floors are restored when the fault clears.

    A case resolves as soon as no placement routed over the link is
    missing its (possibly scaled) promise. Flap damping: when a link
    toggles more than [flap_threshold] times within [flap_window], the
    case holds down for [holddown] instead of thrashing migrations.

    Detection inputs are (a) fabric fault events — operator-injected,
    hence announced — and (b) pluggable {!add_source} detectors
    returning suspect links with confidence scores; the host facade
    wires heartbeat localization in through the latter, keeping this
    library independent of {!Ihnet_monitor}. *)

type stage = Rearbitrate | Replace | Degrade

type status =
  | Suspected  (** Case open, no action taken yet. *)
  | Remediating  (** At least one victim placement, actions in flight. *)
  | Held_down  (** Flap damping engaged; waiting out the oscillation. *)
  | Resolved  (** Every affected placement meets its (scaled) promise. *)
  | Exhausted  (** All stages spent and victims remain. *)

type case = {
  link : Ihnet_topology.Link.id;
  mutable status : status;
  mutable stage : stage;
  mutable attempts : int;  (** Attempts within the current stage. *)
  mutable detected_at : Ihnet_util.Units.ns;
  mutable recovered_at : Ihnet_util.Units.ns option;
  mutable next_due : Ihnet_util.Units.ns;  (** Backoff gate for the next action. *)
  mutable held_until : Ihnet_util.Units.ns;
  mutable transitions : Ihnet_util.Units.ns list;
      (** Recent fault inject/clear timestamps (flap detector input). *)
  mutable degraded_ids : int list;
      (** Placement ids whose floor this case shrank (restored on
          clear). *)
  mutable total_actions : int;
  mutable gate_waits : int;
      (** Consecutive ticks this case has been blocked by the evidence
          gate awaiting corroboration; reset when an action lands. *)
}

type action = {
  at : Ihnet_util.Units.ns;
  action_link : Ihnet_topology.Link.id;
  action_stage : stage;
  detail : string;
  impact : bool;
      (** [true]: the action changed fabric or placement state
          (re-arbitrated, migrated, degraded, restored). [false]: a
          bookkeeping note (suspicion, flap damping, awaiting
          corroboration, rate limiting, exhaustion). False-migration
          accounting counts impactful [Replace]/[Degrade] actions. *)
}

type config = {
  period : Ihnet_util.Units.ns;  (** Supervisor tick period. *)
  max_attempts : int;  (** Per stage, before escalating. *)
  base_backoff : Ihnet_util.Units.ns;
  backoff_factor : float;  (** Delay = base × factor{^ attempts}. *)
  flap_window : Ihnet_util.Units.ns;
  flap_threshold : int;  (** Transitions within the window → hold-down. *)
  holddown : Ihnet_util.Units.ns;
  suspect_score : float;  (** Minimum detector score to open a case. *)
  degrade_step : float;  (** Floor multiplier per degrade action. *)
  min_floor_scale : float;
  use_fault_events : bool;
      (** Open cases from fabric [Fault_injected] events (default).
          Disable to rely purely on {!add_source} detectors — how a
          genuinely silent fault plays out; announced toggles then only
          feed flap damping of already-open cases. *)
  migration_budget : float;
      (** Token-bucket size for [Replace]/[Degrade] actions; each burns
          one token. Bounds migrations per window so even a confidently
          lying corroborated verdict cannot thrash the fabric. *)
  migration_refill : Ihnet_util.Units.ns;
      (** Simulated time to regain one token (linear refill up to the
          budget). *)
}

val default_config : config

type t

val create : ?config:config -> Manager.t -> t
(** Subscribes to the manager's fabric for fault events immediately;
    the periodic loop only runs between {!start} and {!stop}. *)

val add_source : t -> name:string -> (unit -> (Ihnet_topology.Link.id * float) list) -> unit
(** Register a detector polled every tick: returns suspect links with
    confidence scores in [\[0,1\]]. The host wires heartbeat
    localization (and any other monitor verdict) through this. *)

val tail_latency_source :
  Manager.t -> unit -> (Ihnet_topology.Link.id * float) list
(** A ready-made {!add_source} detector for tail-latency SLO intents:
    for every placement carrying an {!Intent.t.p99_bound}, sum the
    observed per-hop p99 of the fabric's always-on latency sketches
    along its path; when the sum breaches the bound, suspect the hop
    contributing the largest p99, with score
    [min 1 ((observed - bound) / bound)]. Returns [[]] while the
    sketch plane is dormant, so it is free to wire unconditionally.
    The host facade installs it when
    {!Ihnet.Host.wiring.latency_sketches} is on. *)

val set_gate :
  t -> (Ihnet_topology.Link.id -> [ `Unknown | `Suspected of float | `Corroborated of float ]) -> unit
(** Install the evidence gate. [Rearbitrate] (cheap, reversible)
    proceeds on any suspicion; [Replace] and [Degrade] are attempted
    only on a [`Corroborated] verdict — otherwise the case waits,
    without consuming attempts or escalating. The gate is a plain
    closure (the host passes {!Ihnet_monitor.Evidence.gate}) so this
    library stays independent of the monitor. Without a gate every
    verdict counts as corroborated — exact pre-gate behaviour. *)

val start : t -> unit
(** Begin the detect → diagnose → act loop (idempotent). *)

val stop : t -> unit
(** Halt the loop; pending ticks self-cancel (generation-stamped). *)

val running : t -> bool
val tick : t -> unit
(** One synchronous supervisor pass (poll sources, step every case) —
    what the loop runs each period; exposed for tests. *)

val cases : t -> case list
val case_for : t -> Ihnet_topology.Link.id -> case option

val status_label : status -> string
(** Stable lowercase name of a {!status} — the scan port serializes
    {!case}s with these, so they are part of the snapshot format, not
    just display strings. *)

val stage_label : stage -> string
(** Stable lowercase name of a {!stage} (same contract). *)

val actions : t -> action list
(** Chronological action log. *)

val actions_count : t -> int

val on_action : t -> (action -> unit) -> unit
(** Register an observer called synchronously for every action the
    supervisor takes, in registration order — the flight recorder's tap
    into the control loop. No unsubscribe. *)

val time_to_detect :
  t -> Ihnet_topology.Link.id -> since:Ihnet_util.Units.ns -> Ihnet_util.Units.ns option
(** Detection latency relative to [since] (the fault injection time);
    [None] if undetected or detected before [since]. *)

val time_to_recover : t -> Ihnet_topology.Link.id -> Ihnet_util.Units.ns option
(** [recovered_at - detected_at] once the case resolved. *)

val pp_status : Format.formatter -> t -> unit
val pp_timeline : Format.formatter -> t -> unit
