module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology
module U = Ihnet_util

type config = {
  tenant : int;
  gpu : string;
  data_source : string;
  loader_streams : int;
  batch_bytes : float;
  compute_time : U.Units.ns;
  sync : (string * float) option;
  iterations : int option;
}

let default_config ~tenant ~gpu ~data_source =
  {
    tenant;
    gpu;
    data_source;
    loader_streams = 2;
    batch_bytes = U.Units.mib 256.0;
    compute_time = U.Units.ms 5.0;
    sync = None;
    iterations = None;
  }

type t = {
  fabric : Fabric.t;
  config : config;
  load_paths : T.Path.t list; (* one per loader stream *)
  sync_path : T.Path.t option;
  times : U.Histogram.t;
  mutable iters : int;
  mutable running : bool;
  mutable current : Flow.t list;
}

let dev fabric name =
  match T.Topology.device_by_name (Fabric.topology fabric) name with
  | Some d -> d
  | None -> invalid_arg ("Mltrain: no device " ^ name)

let path fabric a b =
  match T.Routing.shortest_path (Fabric.topology fabric) a b with
  | Some p -> p
  | None -> invalid_arg "Mltrain: endpoints not connected"

(* The DIMMs loader streams read from: data_source first, then the
   other DIMMs on the GPU's socket, cycled. *)
let loader_sources fabric config (gpu : T.Device.t) =
  let topo = Fabric.topology fabric in
  let primary = dev fabric config.data_source in
  let others =
    T.Topology.find_devices topo (fun d ->
        (match d.T.Device.kind with T.Device.Dimm _ -> true | _ -> false)
        && d.T.Device.socket = gpu.T.Device.socket
        && d.T.Device.id <> primary.T.Device.id)
  in
  let pool = primary :: others in
  List.init config.loader_streams (fun i -> List.nth pool (i mod List.length pool))

let start fabric config =
  assert (config.batch_bytes > 0.0 && config.compute_time >= 0.0 && config.loader_streams >= 1);
  let gpu = dev fabric config.gpu in
  let sources = loader_sources fabric config gpu in
  let load_paths =
    List.map (fun (src : T.Device.t) -> path fabric src.T.Device.id gpu.T.Device.id) sources
  in
  let sync_path =
    Option.map (fun (nic, _) -> path fabric gpu.T.Device.id (dev fabric nic).T.Device.id) config.sync
  in
  let t =
    {
      fabric;
      config;
      load_paths;
      sync_path;
      times = U.Histogram.create ();
      iters = 0;
      running = true;
      current = [];
    }
  in
  let sim = Fabric.sim fabric in
  let share = config.batch_bytes /. float_of_int config.loader_streams in
  let rec iteration started_at =
    if t.running then begin
      let outstanding = ref (List.length t.load_paths) in
      let flows =
        List.map
          (fun p ->
            Fabric.start_flow fabric ~tenant:config.tenant ~path:p ~size:(Flow.Bytes share)
              ~on_complete:(fun f ->
                t.current <- List.filter (fun (x : Flow.t) -> x.Flow.id <> f.Flow.id) t.current;
                decr outstanding;
                if !outstanding = 0 then
                  Sim.schedule sim ~after:config.compute_time (fun _ -> after_compute started_at))
              ())
          t.load_paths
      in
      t.current <- flows
    end
  and after_compute started_at =
    if t.running then
      match (t.sync_path, t.config.sync) with
      | Some sp, Some (_, sync_bytes) ->
        let flow =
          Fabric.start_flow t.fabric ~tenant:t.config.tenant ~path:sp
            ~size:(Flow.Bytes sync_bytes)
            ~on_complete:(fun f ->
              t.current <- List.filter (fun (x : Flow.t) -> x.Flow.id <> f.Flow.id) t.current;
              finish_iteration started_at)
            ()
        in
        t.current <- [ flow ]
      | _ -> finish_iteration started_at
  and finish_iteration started_at =
    let now = Fabric.now t.fabric in
    U.Histogram.add t.times (now -. started_at);
    t.iters <- t.iters + 1;
    let continue =
      match t.config.iterations with Some n -> t.iters < n | None -> true
    in
    if continue && t.running then iteration now else t.running <- false
  in
  iteration (Fabric.now fabric);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    List.iter (Fabric.stop_flow t.fabric) t.current;
    t.current <- []
  end

let iterations_done t = t.iters
let iteration_times t = t.times
let running t = t.running
