module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module Rng = Ihnet_util.Rng

type size_dist =
  | Fixed of float
  | Uniform of float * float
  | Pareto of { alpha : float; x_min : float }

let draw_size rng = function
  | Fixed b -> b
  | Uniform (lo, hi) -> Rng.uniform rng lo hi
  | Pareto { alpha; x_min } -> Rng.pareto rng alpha x_min

type stream = {
  fabric : Fabric.t;
  mutable live : Flow.t list; (* currently running flows *)
  mutable stopped : bool;
  mutable moved : float; (* goodput of completed flows *)
}

let make fabric = { fabric; live = []; stopped = false; moved = 0.0 }

let track stream flow = stream.live <- flow :: stream.live

let finish stream (flow : Flow.t) =
  stream.moved <- stream.moved +. flow.Flow.transferred;
  stream.live <- List.filter (fun (f : Flow.t) -> f.Flow.id <> flow.Flow.id) stream.live

let poisson_transfers fabric ~rng ~tenant ?(cls = Flow.Payload) ?payload_bytes
    ?(llc_target = false) ~rate_per_s ~size ~path ?on_transfer () =
  assert (rate_per_s > 0.0);
  let stream = make fabric in
  let sim = Fabric.sim fabric in
  let rec arrival _ =
    if not stream.stopped then begin
      let bytes = draw_size rng size in
      let flow =
        Fabric.start_flow fabric ~tenant ~cls ?payload_bytes ~llc_target ~path
          ~size:(Flow.Bytes bytes)
          ~on_complete:(fun f ->
            finish stream f;
            match on_transfer with
            | Some cb -> cb ~bytes ~duration:(Flow.duration f)
            | None -> ())
          ()
      in
      track stream flow;
      Sim.schedule sim ~after:(Rng.exponential rng (1e9 /. rate_per_s)) arrival
    end
  in
  Sim.schedule sim ~after:(Rng.exponential rng (1e9 /. rate_per_s)) arrival;
  stream

let constant_stream fabric ~tenant ?(cls = Flow.Payload) ?payload_bytes ?(llc_target = false)
    ?weight ~rate ~path () =
  assert (rate > 0.0);
  let stream = make fabric in
  let flow =
    Fabric.start_flow fabric ~tenant ~cls ?payload_bytes ~llc_target ?weight ~demand:rate ~path
      ~size:Flow.Unbounded ()
  in
  track stream flow;
  stream

let elastic_stream fabric ~tenant ?(cls = Flow.Payload) ?payload_bytes ?(llc_target = false)
    ?weight ~path () =
  let stream = make fabric in
  let flow =
    Fabric.start_flow fabric ~tenant ~cls ?payload_bytes ~llc_target ?weight ~path
      ~size:Flow.Unbounded ()
  in
  track stream flow;
  stream

let on_off_stream fabric ~tenant ?(cls = Flow.Payload) ?(llc_target = false) ~rate ~period ~duty
    ~path () =
  assert (duty > 0.0 && duty <= 1.0 && period > 0.0 && rate > 0.0);
  let stream = make fabric in
  let sim = Fabric.sim fabric in
  let rec on_phase _ =
    if not stream.stopped then begin
      let flow =
        Fabric.start_flow fabric ~tenant ~cls ~llc_target ~demand:rate ~path ~size:Flow.Unbounded
          ()
      in
      track stream flow;
      Sim.schedule sim ~after:(period *. duty) (fun _ ->
          if flow.Flow.state = Flow.Running then begin
            Fabric.stop_flow fabric flow;
            finish stream flow
          end;
          if duty < 1.0 then Sim.schedule sim ~after:(period *. (1.0 -. duty)) on_phase
          else on_phase sim)
    end
  in
  on_phase sim;
  stream

let stop stream =
  if not stream.stopped then begin
    stream.stopped <- true;
    List.iter
      (fun f ->
        Fabric.stop_flow stream.fabric f;
        stream.moved <- stream.moved +. f.Flow.transferred)
      stream.live;
    stream.live <- []
  end

let transferred_bytes stream =
  Fabric.refresh stream.fabric;
  stream.moved
  +. List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.transferred) 0.0 stream.live

let current_rate stream =
  List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.rate) 0.0 stream.live
