module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module T = Ihnet_topology
module U = Ihnet_util

type config = {
  tenant : int;
  ring : string list;
  data_bytes : float;
  iterations : int;
}

type t = {
  fabric : Fabric.t;
  config : config;
  edges : T.Path.t list; (* gpu_i -> gpu_{i+1}, cyclic *)
  times : U.Histogram.t;
  mutable iters : int;
  mutable running : bool;
  mutable live : Flow.t list;
}

let dev fabric name =
  match T.Topology.device_by_name (Fabric.topology fabric) name with
  | Some d -> d.T.Device.id
  | None -> invalid_arg ("Allreduce: no device " ^ name)

let route fabric a b =
  match T.Routing.shortest_path (Fabric.topology fabric) a b with
  | Some p when p.T.Path.hops <> [] -> p
  | Some _ | None -> invalid_arg "Allreduce: ring devices not connected"

let ring_edges fabric ring =
  let ids = List.map (dev fabric) ring in
  let n = List.length ids in
  List.mapi (fun i a -> route fabric a (List.nth ids ((i + 1) mod n))) ids

let start fabric config =
  if List.length config.ring < 2 then invalid_arg "Allreduce: ring needs >= 2 devices";
  assert (config.data_bytes > 0.0 && config.iterations > 0);
  let t =
    {
      fabric;
      config;
      edges = ring_edges fabric config.ring;
      times = U.Histogram.create ();
      iters = 0;
      running = true;
      live = [];
    }
  in
  let n = List.length config.ring in
  let chunk = config.data_bytes /. float_of_int n in
  let steps_per_iter = 2 * (n - 1) in
  let rec step ~iteration_start ~remaining_steps =
    if t.running then begin
      if remaining_steps = 0 then begin
        let now = Fabric.now t.fabric in
        U.Histogram.add t.times (now -. iteration_start);
        t.iters <- t.iters + 1;
        if t.iters < t.config.iterations then
          step ~iteration_start:now ~remaining_steps:steps_per_iter
        else t.running <- false
      end
      else begin
        let outstanding = ref (List.length t.edges) in
        t.live <-
          List.map
            (fun path ->
              Fabric.start_flow t.fabric ~tenant:t.config.tenant ~path ~size:(Flow.Bytes chunk)
                ~on_complete:(fun f ->
                  t.live <- List.filter (fun (x : Flow.t) -> x.Flow.id <> f.Flow.id) t.live;
                  decr outstanding;
                  if !outstanding = 0 then
                    step ~iteration_start ~remaining_steps:(remaining_steps - 1))
                ())
            t.edges
      end
    end
  in
  step ~iteration_start:(Fabric.now fabric) ~remaining_steps:steps_per_iter;
  t

let stop t =
  if t.running then begin
    t.running <- false;
    List.iter (Fabric.stop_flow t.fabric) t.live;
    t.live <- []
  end

let iterations_done t = t.iters
let iteration_times t = t.times
let running t = t.running

let algorithmic_bandwidth t =
  if U.Histogram.count t.times = 0 then nan
  else begin
    let median = U.Histogram.percentile t.times 0.5 in
    t.config.data_bytes /. (median /. 1e9)
  end

(* {1 Ring placement} *)

let ring_cost topo ring =
  let id name =
    match T.Topology.device_by_name topo name with
    | Some d -> d.T.Device.id
    | None -> invalid_arg ("Allreduce.ring_cost: no device " ^ name)
  in
  let ids = List.map id ring in
  let n = List.length ids in
  List.fold_left ( +. ) 0.0
    (List.mapi
       (fun i a ->
         match T.Routing.shortest_path topo a (List.nth ids ((i + 1) mod n)) with
         | Some p -> T.Path.base_latency p
         | None -> infinity)
       ids)

(* all permutations of [xs] *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let optimize_ring topo ring =
  match ring with
  | [] | [ _ ] -> ring
  | first :: rest ->
    let candidates = List.map (fun p -> first :: p) (permutations rest) in
    let best, _ =
      List.fold_left
        (fun (best, best_cost) candidate ->
          let cost = ring_cost topo candidate in
          if cost < best_cost then (candidate, cost) else (best, best_cost))
        (ring, ring_cost topo ring)
        candidates
    in
    best
