type t = { id : int; name : string; kind : kind }
and kind = Vm | Container | Infra

type registry = { mutable tenants : t list; mutable next_id : int }

let create_registry () =
  let infra = { id = 0; name = "infra"; kind = Infra } in
  { tenants = [ infra ]; next_id = 1 }

let register reg ~name ~kind =
  if List.exists (fun t -> t.name = name) reg.tenants then
    invalid_arg ("Tenant.register: duplicate name " ^ name);
  let t = { id = reg.next_id; name; kind } in
  reg.next_id <- reg.next_id + 1;
  reg.tenants <- t :: reg.tenants;
  t

let infra reg = List.find (fun t -> t.id = 0) reg.tenants
let find reg id = List.find_opt (fun t -> t.id = id) reg.tenants
let find_by_name reg name = List.find_opt (fun t -> t.name = name) reg.tenants
let all reg = List.rev reg.tenants
let count reg = List.length reg.tenants

let pp ppf t =
  let k = match t.kind with Vm -> "vm" | Container -> "container" | Infra -> "infra" in
  Format.fprintf ppf "%s#%d(%s)" t.name t.id k
