(** Tenants: the isolation unit of the multi-tenant host.

    Tenant 0 is reserved for the infrastructure itself (monitoring,
    induced traffic); application tenants start at 1. *)

type t = {
  id : int;
  name : string;
  kind : kind;
}

and kind =
  | Vm  (** Virtual machine. *)
  | Container
  | Infra  (** The host infrastructure (monitor, manager). *)

type registry

val create_registry : unit -> registry
(** The infrastructure tenant (id 0) is pre-registered. *)

val register : registry -> name:string -> kind:kind -> t
(** @raise Invalid_argument on duplicate name. *)

val infra : registry -> t
val find : registry -> int -> t option
val find_by_name : registry -> string -> t option
val all : registry -> t list
val count : registry -> int
val pp : Format.formatter -> t -> unit
