(** Traffic generators: reusable arrival/size processes that drive the
    fabric. All randomness comes from a caller-provided {!Ihnet_util.Rng.t}
    stream, so scenarios are reproducible. *)

module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow

type size_dist =
  | Fixed of float  (** Every transfer has this many bytes. *)
  | Uniform of float * float
  | Pareto of { alpha : float; x_min : float }
      (** Heavy-tailed transfer sizes (datacenter flow-size mix). *)

val draw_size : Ihnet_util.Rng.t -> size_dist -> float

type stream
(** A running generator; stop it to cease new arrivals. *)

val poisson_transfers :
  Fabric.t ->
  rng:Ihnet_util.Rng.t ->
  tenant:int ->
  ?cls:Flow.cls ->
  ?payload_bytes:int ->
  ?llc_target:bool ->
  rate_per_s:float ->
  size:size_dist ->
  path:Ihnet_topology.Path.t ->
  ?on_transfer:(bytes:float -> duration:Ihnet_util.Units.ns -> unit) ->
  unit ->
  stream
(** Transfers of random size arrive with exponential inter-arrival
    times (mean [1/rate_per_s] seconds); each becomes a finite flow on
    [path]. [on_transfer] fires at each completion with the measured
    duration. *)

val constant_stream :
  Fabric.t ->
  tenant:int ->
  ?cls:Flow.cls ->
  ?payload_bytes:int ->
  ?llc_target:bool ->
  ?weight:float ->
  rate:float ->
  path:Ihnet_topology.Path.t ->
  unit ->
  stream
(** An unbounded flow whose source offers exactly [rate] bytes/s. *)

val elastic_stream :
  Fabric.t ->
  tenant:int ->
  ?cls:Flow.cls ->
  ?payload_bytes:int ->
  ?llc_target:bool ->
  ?weight:float ->
  path:Ihnet_topology.Path.t ->
  unit ->
  stream
(** An unbounded flow that takes whatever the fabric gives (a bulk
    copy, an aggressor). *)

val on_off_stream :
  Fabric.t ->
  tenant:int ->
  ?cls:Flow.cls ->
  ?llc_target:bool ->
  rate:float ->
  period:Ihnet_util.Units.ns ->
  duty:float ->
  path:Ihnet_topology.Path.t ->
  unit ->
  stream
(** Bursty source: offers [rate] for [duty × period], then idles.
    [duty] in (0,1]. *)

val stop : stream -> unit
(** Stop new arrivals and any active flow of this stream. Idempotent. *)

val transferred_bytes : stream -> float
(** Total goodput moved by the stream's flows so far. *)

val current_rate : stream -> float
(** Allocated rate of the stream's live flow(s) right now. *)
