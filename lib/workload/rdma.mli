(** RDMA traffic models.

    §2 cites Collie [31]: "an RDMA loopback traffic can exhaust the
    PCIe bandwidth and causes the application to suffer from PCIe
    congestion". A loopback transfer makes the NIC DMA-read the message
    from host memory and DMA-write it straight back, doubling the PCIe
    cost per useful byte while never touching the wire. *)

type loopback

val start_loopback :
  Ihnet_engine.Fabric.t -> tenant:int -> nic:string -> ?target:string -> unit -> loopback
(** Elastic loopback aggressor on [nic]: one DMA-read stream (memory →
    NIC) plus one DMA-write stream (NIC → memory). [target] is the
    memory endpoint device (default: the NIC's socket, i.e. DDIO). *)

val stop_loopback : loopback -> unit

val loopback_rate : loopback -> float
(** Aggregate PCIe goodput the aggressor currently holds, bytes/s. *)

(** {1 Remote access modeling (E2)} *)

type hop_breakdown = {
  label : string;  (** e.g. ["pcie-gen4 x16 (nic0->pciesw0)"] *)
  figure1_class : int option;
  latency : Ihnet_util.Units.ns;
}

val remote_read_breakdown :
  Ihnet_engine.Fabric.t -> nic:string -> target:string -> hop_breakdown list
(** Per-hop latency decomposition of a remote one-sided RDMA read
    arriving from the external network through [nic] to [target], under
    the fabric's {e current} load — the paper's "(1) to (5)" traversal.
    The list is ordered from the external network inward. *)

val intra_host_share :
  Ihnet_engine.Fabric.t -> nic:string -> target:string -> float
(** Fraction of the end-to-end one-way latency spent inside the host
    (all hops except the inter-host link), in [\[0,1\]]. *)
