(** Ring allreduce over the intra-host fabric.

    Multi-GPU training synchronizes gradients every iteration; ring
    allreduce moves [2(N−1)] chunks of [size/N] bytes, every GPU
    sending to its ring successor simultaneously. On a multi-socket
    host the {e ring order} decides how often chunks cross the
    inter-socket link — the §4 observation (BytePS [31]) that
    scheduling the workload against the topology "reduces PCIe
    contention and improves communication among GPU workers". E14
    measures a naive vs a topology-aware ring. *)

type config = {
  tenant : int;
  ring : string list;  (** GPU device names, in ring order (≥ 2). *)
  data_bytes : float;  (** Gradient size per iteration. *)
  iterations : int;
}

type t

val start : Ihnet_engine.Fabric.t -> config -> t
(** Runs [iterations] allreduces back to back; each of the [2(N−1)]
    steps starts N concurrent chunk flows and waits for all of them.
    @raise Invalid_argument on unknown devices or a ring shorter
    than 2. *)

val stop : t -> unit
val iterations_done : t -> int
val iteration_times : t -> Ihnet_util.Histogram.t
val running : t -> bool

val algorithmic_bandwidth : t -> float
(** [data_bytes / median iteration time] — the effective allreduce
    bandwidth figure ML papers quote (bytes/s); [nan] before the first
    iteration completes. *)

(** {1 Ring placement} *)

val ring_cost : Ihnet_topology.Topology.t -> string list -> float
(** Sum over ring edges of the GPU-to-GPU path base latency — the
    congestion proxy the optimizer minimizes (inter-socket hops
    dominate it). *)

val optimize_ring : Ihnet_topology.Topology.t -> string list -> string list
(** Reorder the GPUs to minimize {!ring_cost} (exhaustive over
    (N−1)!/2 rotations-and-reflections; fine for N ≤ 9 — a host has at
    most 8 GPUs). The first GPU stays first. *)
