(** Transfer-trace record and replay.

    The monitor's [ihdump] and the experiment harness can persist what
    happened on the fabric and replay it later against a different
    configuration (e.g. the same trace with and without the resource
    manager) — the standard methodology for apples-to-apples
    comparisons. *)

type event = {
  at : Ihnet_util.Units.ns;  (** Arrival time of the transfer. *)
  src : string;  (** Source device name. *)
  dst : string;  (** Destination device name. *)
  bytes : float;
  tenant : int;
}

type t

val empty : unit -> t
val add : t -> event -> unit
(** Events may be added in any order; replay sorts by time. *)

val length : t -> int
val events : t -> event list
(** In time order. *)

val to_csv : t -> string
(** Header [at_ns,src,dst,bytes,tenant] then one line per event. *)

val of_csv : string -> (t, string) result
(** Parse {!to_csv} output; reports the first bad line. *)

type replay_stats = {
  mutable completed : int;
  mutable total_bytes : float;
  durations : Ihnet_util.Histogram.t;
}

val capture : Ihnet_engine.Fabric.t -> t
(** Subscribe to the fabric's event stream and record every finite
    payload flow as it starts (software interception at work). The
    returned trace fills in as the simulation runs; timestamps are
    relative to the capture start. Unbounded flows and monitor traffic
    are skipped — a trace replays discrete transfers. *)

val replay : Ihnet_engine.Fabric.t -> t -> replay_stats
(** Schedule every event as a finite flow at its timestamp (relative to
    the current simulated time). Returns live statistics that fill in
    as the simulation runs.
    @raise Invalid_argument if an event names an unknown device. *)
