module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology
module U = Ihnet_util

type config = {
  tenant : int;
  ssd : string;
  target : string;
  iops : float;
  read_fraction : float;
  block : Traffic.size_dist;
}

let default_config ~tenant ~ssd ~target =
  {
    tenant;
    ssd;
    target;
    iops = 20_000.0;
    read_fraction = 0.7;
    block = Traffic.Pareto { alpha = 1.5; x_min = U.Units.kib 16.0 };
  }

type t = {
  fabric : Fabric.t;
  config : config;
  read_path : T.Path.t;
  write_path : T.Path.t;
  llc_target : bool;
  lat : U.Histogram.t;
  rng : U.Rng.t;
  mutable ops : int;
  mutable moved : float;
  mutable live : Flow.t list;
  mutable stopped : bool;
}

let dev fabric name =
  match T.Topology.device_by_name (Fabric.topology fabric) name with
  | Some d -> d
  | None -> invalid_arg ("Storage: no device " ^ name)

let path fabric a b =
  match T.Routing.shortest_path (Fabric.topology fabric) a b with
  | Some p -> p
  | None -> invalid_arg "Storage: endpoints not connected"

let start fabric ?rng config =
  assert (config.iops > 0.0);
  assert (config.read_fraction >= 0.0 && config.read_fraction <= 1.0);
  let rng = match rng with Some r -> r | None -> U.Rng.split (Fabric.rng fabric) in
  let ssd = dev fabric config.ssd in
  let target = dev fabric config.target in
  let llc_target =
    match target.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false
  in
  let read_path = path fabric ssd.T.Device.id target.T.Device.id in
  let write_path = path fabric target.T.Device.id ssd.T.Device.id in
  let t =
    {
      fabric;
      config;
      read_path;
      write_path;
      llc_target;
      lat = U.Histogram.create ();
      rng;
      ops = 0;
      moved = 0.0;
      live = [];
      stopped = false;
    }
  in
  let sim = Fabric.sim fabric in
  let rec arrival _ =
    if not t.stopped then begin
      let bytes = Traffic.draw_size t.rng t.config.block in
      let is_read = U.Rng.float t.rng 1.0 < t.config.read_fraction in
      let p = if is_read then t.read_path else t.write_path in
      let flow =
        Fabric.start_flow t.fabric ~tenant:t.config.tenant
          ~llc_target:(is_read && t.llc_target) ~path:p ~size:(Flow.Bytes bytes)
          ~on_complete:(fun f ->
            t.ops <- t.ops + 1;
            t.moved <- t.moved +. bytes;
            t.live <- List.filter (fun (x : Flow.t) -> x.Flow.id <> f.Flow.id) t.live;
            U.Histogram.add t.lat (Flow.duration f))
          ()
      in
      t.live <- flow :: t.live;
      Sim.schedule sim ~after:(U.Rng.exponential t.rng (1e9 /. t.config.iops)) arrival
    end
  in
  Sim.schedule sim ~after:(U.Rng.exponential rng (1e9 /. config.iops)) arrival;
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter (Fabric.stop_flow t.fabric) t.live;
    t.live <- []
  end

let completed_ops t = t.ops
let op_latencies t = t.lat
let bytes_moved t = t.moved
