(** Canned workload scenarios: the paper's motivating situations as
    one-call setups.

    Each scenario configures tenants and traffic on a fabric and
    returns a handle with live metrics, so experiments, examples, the
    CLI and tests all drive the same compositions. *)

type handle = {
  name : string;
  describe : string;
  tenants : (int * string) list;  (** (id, role) of the actors. *)
  metrics : unit -> (string * string) list;
      (** Current headline metrics, label → rendered value. *)
  stop : unit -> unit;
}

val colocation : Ihnet_engine.Fabric.t -> handle
(** §2's story: a latency-sensitive KV store (tenant 1, nic0) sharing
    the root-port subtree with a 3-stream ML trainer (tenant 2,
    gpu0). Metrics: kv p50/p99/served, trainer iterations. *)

val loopback : Ihnet_engine.Fabric.t -> handle
(** Collie's aggressor: a 20 GB/s inbound RDMA victim (tenant 1) and an
    RDMA loopback (tenant 2) on the same NIC. Metrics: victim rate and
    latency, aggressor rate. *)

val ddio_thrash : Ihnet_engine.Fabric.t -> handle
(** Two 200G NICs DDIO-writing into socket 0 (tenants 1, 2). Metrics:
    hit rate, induced memory traffic. *)

val gray_failure : Ihnet_engine.Fabric.t -> handle
(** E12's baseline (tenants 1–3: LLC writer, striped direct DMA,
    striped reads); call [stop] to tear down — inject the anomaly
    yourself. Metrics: ddio hit, aggregate rates. *)

val all : (string * string) list
(** (name, description) of every scenario. *)

val find : string -> (Ihnet_engine.Fabric.t -> handle) option
