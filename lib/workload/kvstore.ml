module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology
module U = Ihnet_util

type config = {
  tenant : int;
  nic : string;
  target : [ `Llc | `Dimm of string ];
  request_rate : float;
  request_bytes : float;
  response_bytes : float;
  think_time : U.Units.ns;
  sample_rate : float;
}

let default_config ~tenant ~nic =
  {
    tenant;
    nic;
    target = `Llc;
    request_rate = 100_000.0;
    request_bytes = 512.0;
    response_bytes = 1024.0;
    think_time = 2_000.0;
    sample_rate = 20_000.0;
  }

type t = {
  fabric : Fabric.t;
  config : config;
  inbound : Flow.t;  (* ext -> memory *)
  outbound : Flow.t; (* memory -> ext *)
  req_path : T.Path.t;
  resp_path : T.Path.t;
  lat : U.Histogram.t;
  mutable stopped : bool;
}

let dev fabric name =
  match T.Topology.device_by_name (Fabric.topology fabric) name with
  | Some d -> d
  | None -> invalid_arg ("Kvstore: no device " ^ name)

let path fabric a b =
  match T.Routing.shortest_path (Fabric.topology fabric) a b with
  | Some p -> p
  | None -> invalid_arg "Kvstore: endpoints not connected"

(* mechanical reversal: the response retraces the request's route *)
let reverse_path (p : T.Path.t) =
  {
    T.Path.src = p.T.Path.dst;
    dst = p.T.Path.src;
    hops =
      List.rev_map
        (fun (h : T.Path.hop) -> { h with T.Path.dir = T.Link.opposite h.T.Path.dir })
        p.T.Path.hops;
  }

let start fabric ?rng config =
  assert (config.request_rate > 0.0 && config.sample_rate > 0.0);
  let rng = match rng with Some r -> r | None -> U.Rng.split (Fabric.rng fabric) in
  let nic = dev fabric config.nic in
  let ext = dev fabric "ext" in
  let llc_target, target_dev =
    match config.target with
    | `Llc ->
      let sock_name = Printf.sprintf "socket%d" nic.T.Device.socket in
      (true, dev fabric sock_name)
    | `Dimm name -> (false, dev fabric name)
  in
  (* route via the configured NIC: shortest ext->target would be free
     to pick any NIC on the host *)
  let req_path =
    T.Path.concat
      (path fabric ext.T.Device.id nic.T.Device.id)
      (path fabric nic.T.Device.id target_dev.T.Device.id)
  in
  let resp_path = reverse_path req_path in
  let in_rate = config.request_rate *. config.request_bytes in
  let out_rate = config.request_rate *. config.response_bytes in
  let payload b = max 1 (int_of_float (Float.min b 4096.0)) in
  let inbound =
    Fabric.start_flow fabric ~tenant:config.tenant ~demand:in_rate
      ~payload_bytes:(payload config.request_bytes) ~llc_target ~path:req_path
      ~size:Flow.Unbounded ()
  in
  let outbound =
    Fabric.start_flow fabric ~tenant:config.tenant ~demand:out_rate
      ~payload_bytes:(payload config.response_bytes) ~path:resp_path ~size:Flow.Unbounded ()
  in
  let t =
    {
      fabric;
      config;
      inbound;
      outbound;
      req_path;
      resp_path;
      lat = U.Histogram.create ();
      stopped = false;
    }
  in
  let sim = Fabric.sim fabric in
  let intmod =
    (T.Topology.config (Fabric.topology fabric)).T.Hostconfig.interrupt_moderation
  in
  let rec sample _ =
    if not t.stopped then begin
      (* flow-aware latency: when the arbiter has installed guarantees
         on the store's flows, WFQ delay isolation applies *)
      let l_req =
        Fabric.flow_path_latency fabric
          ~payload_bytes:(int_of_float config.request_bytes)
          t.inbound
      in
      let l_resp =
        Fabric.flow_path_latency fabric
          ~payload_bytes:(int_of_float config.response_bytes)
          t.outbound
      in
      (* queueing at the server when offered load outruns allocation *)
      let backlog_penalty =
        let achieved_reqs = Float.min t.inbound.Flow.rate in_rate /. config.request_bytes in
        if achieved_reqs < config.request_rate *. 0.999 && achieved_reqs > 0.0 then
          (* saturated server queue: latency dominated by drain rate *)
          U.Units.us 50.0 *. (config.request_rate /. achieved_reqs)
        else 0.0
      in
      (* server-side variability: scheduling jitter on top of the mean
         think time (exponential, 30% of the mean) — without it the
         fluid model yields a perfectly flat latency distribution *)
      let jitter = U.Rng.exponential rng (0.3 *. config.think_time) in
      U.Histogram.add t.lat
        (l_req +. l_resp +. config.think_time +. jitter +. (2.0 *. intmod) +. backlog_penalty);
      Sim.schedule sim ~after:(U.Rng.exponential rng (1e9 /. config.sample_rate)) sample
    end
  in
  Sim.schedule sim ~after:(U.Rng.exponential rng (1e9 /. config.sample_rate)) sample;
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Fabric.stop_flow t.fabric t.inbound;
    Fabric.stop_flow t.fabric t.outbound
  end

let latencies t = t.lat
let offered_rate t = t.config.request_rate

let achieved_rate t =
  let in_reqs = t.inbound.Flow.rate /. t.config.request_bytes in
  let out_reqs = t.outbound.Flow.rate /. t.config.response_bytes in
  Float.min in_reqs out_reqs

let goodput t = t.inbound.Flow.rate +. t.outbound.Flow.rate
