module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module T = Ihnet_topology

type loopback = {
  fabric : Fabric.t;
  read : Flow.t;
  write : Flow.t;
  mutable stopped : bool;
}

let dev fabric name =
  match T.Topology.device_by_name (Fabric.topology fabric) name with
  | Some d -> d
  | None -> invalid_arg ("Rdma: no device " ^ name)

let path fabric a b =
  match T.Routing.shortest_path (Fabric.topology fabric) a b with
  | Some p -> p
  | None -> invalid_arg "Rdma: endpoints not connected"

let start_loopback fabric ~tenant ~nic ?target () =
  let nic_dev = dev fabric nic in
  let mem =
    match target with
    | Some name -> dev fabric name
    | None -> dev fabric (Printf.sprintf "socket%d" nic_dev.T.Device.socket)
  in
  let llc_target =
    match mem.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false
  in
  let read =
    Fabric.start_flow fabric ~tenant
      ~path:(path fabric mem.T.Device.id nic_dev.T.Device.id)
      ~size:Flow.Unbounded ()
  in
  let write =
    Fabric.start_flow fabric ~tenant ~llc_target
      ~path:(path fabric nic_dev.T.Device.id mem.T.Device.id)
      ~size:Flow.Unbounded ()
  in
  { fabric; read; write; stopped = false }

let stop_loopback t =
  if not t.stopped then begin
    t.stopped <- true;
    Fabric.stop_flow t.fabric t.read;
    Fabric.stop_flow t.fabric t.write
  end

let loopback_rate t = t.read.Flow.rate +. t.write.Flow.rate

type hop_breakdown = {
  label : string;
  figure1_class : int option;
  latency : Ihnet_util.Units.ns;
}

let remote_read_breakdown fabric ~nic ~target =
  let topo = Fabric.topology fabric in
  let ext = dev fabric "ext" in
  let nic_dev = dev fabric nic in
  let target_dev = dev fabric target in
  (* enter through the named NIC, not whichever NIC is nearest *)
  let p =
    T.Path.concat
      (path fabric ext.T.Device.id nic_dev.T.Device.id)
      (path fabric nic_dev.T.Device.id target_dev.T.Device.id)
  in
  List.map
    (fun (hop : T.Path.hop) ->
      let l = hop.T.Path.link in
      let a = (T.Topology.device topo l.T.Link.a).T.Device.name in
      let b = (T.Topology.device topo l.T.Link.b).T.Device.name in
      let a, b = match hop.T.Path.dir with T.Link.Fwd -> (a, b) | T.Link.Rev -> (b, a) in
      let u = Fabric.link_utilization fabric l.T.Link.id hop.T.Path.dir in
      let fault = Fabric.fault_of fabric l.T.Link.id in
      {
        label = Printf.sprintf "%s (%s->%s)" (T.Link.kind_label l.T.Link.kind) a b;
        figure1_class = T.Topology.figure1_class topo l;
        latency =
          Ihnet_engine.Latency.hop_latency ~base:l.T.Link.base_latency ~utilization:u
            ~extra:fault.Ihnet_engine.Fault.extra_latency ();
      })
    p.T.Path.hops

let intra_host_share fabric ~nic ~target =
  let hops = remote_read_breakdown fabric ~nic ~target in
  let total = List.fold_left (fun acc h -> acc +. h.latency) 0.0 hops in
  let inter =
    List.fold_left
      (fun acc h -> if h.figure1_class = Some 5 then acc +. h.latency else acc)
      0.0 hops
  in
  if total <= 0.0 then 0.0 else (total -. inter) /. total
