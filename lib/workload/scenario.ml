module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module T = Ihnet_topology
module U = Ihnet_util

type handle = {
  name : string;
  describe : string;
  tenants : (int * string) list;
  metrics : unit -> (string * string) list;
  stop : unit -> unit;
}

let time v = Format.asprintf "%a" U.Units.pp_time v
let rate v = Format.asprintf "%a" U.Units.pp_rate v

let route fabric a b =
  let topo = Fabric.topology fabric in
  let dev n =
    match T.Topology.device_by_name topo n with
    | Some d -> d.T.Device.id
    | None -> invalid_arg ("Scenario: no device " ^ n)
  in
  match T.Routing.shortest_path topo (dev a) (dev b) with
  | Some p -> p
  | None -> invalid_arg "Scenario: not connected"

let colocation fabric =
  let kv = Kvstore.start fabric (Kvstore.default_config ~tenant:1 ~nic:"nic0") in
  let ml =
    Mltrain.start fabric
      {
        (Mltrain.default_config ~tenant:2 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
        Mltrain.compute_time = 0.0;
        loader_streams = 3;
      }
  in
  {
    name = "colocation";
    describe = "kv store (nic0) vs 3-stream ML trainer (gpu0) on one root port";
    tenants = [ (1, "kv store"); (2, "ml trainer") ];
    metrics =
      (fun () ->
        let lat = Kvstore.latencies kv in
        [
          ("kv p50", time (U.Histogram.percentile lat 0.5));
          ("kv p99", time (U.Histogram.percentile lat 0.99));
          ("kv req/s", Printf.sprintf "%.0fk" (Kvstore.achieved_rate kv /. 1e3));
          ("ml iterations", string_of_int (Mltrain.iterations_done ml));
        ]);
    stop =
      (fun () ->
        Kvstore.stop kv;
        Mltrain.stop ml);
  }

let loopback fabric =
  let victim_path = T.Path.concat (route fabric "ext" "nic0") (route fabric "nic0" "socket0") in
  let victim =
    Fabric.start_flow fabric ~tenant:1 ~demand:20e9 ~llc_target:true ~path:victim_path
      ~size:Flow.Unbounded ()
  in
  let agg = Rdma.start_loopback fabric ~tenant:2 ~nic:"nic0" () in
  {
    name = "loopback";
    describe = "20 GB/s inbound RDMA victim vs loopback aggressor on nic0";
    tenants = [ (1, "rdma victim"); (2, "loopback aggressor") ];
    metrics =
      (fun () ->
        [
          ("victim rate", rate victim.Flow.rate);
          ("victim latency", time (Fabric.flow_path_latency fabric ~payload_bytes:512 victim));
          ("aggressor rate", rate (Rdma.loopback_rate agg));
        ]);
    stop =
      (fun () ->
        Fabric.stop_flow fabric victim;
        Rdma.stop_loopback agg);
  }

let ddio_thrash fabric =
  let w1 =
    Fabric.start_flow fabric ~tenant:1 ~llc_target:true ~path:(route fabric "nic0" "socket0")
      ~size:Flow.Unbounded ()
  in
  let w2 =
    Fabric.start_flow fabric ~tenant:2 ~llc_target:true ~path:(route fabric "nic1" "socket0")
      ~size:Flow.Unbounded ()
  in
  {
    name = "ddio-thrash";
    describe = "two 200G NICs DDIO-writing into socket 0's LLC I/O ways";
    tenants = [ (1, "nic0 writer"); (2, "nic1 writer") ];
    metrics =
      (fun () ->
        [
          ("aggregate writes", rate (Fabric.ddio_write_rate fabric ~socket:0));
          ( "llc io-way hit",
            Printf.sprintf "%.0f%%" (Fabric.ddio_hit_rate fabric ~socket:0 *. 100.0) );
          ("induced mem traffic", rate (Fabric.ddio_spill_rate fabric ~socket:0));
        ]);
    stop =
      (fun () ->
        Fabric.stop_flow fabric w1;
        Fabric.stop_flow fabric w2);
  }

let gray_failure fabric =
  let flows = ref [] in
  let start f = flows := f :: !flows in
  start
    (Fabric.start_flow fabric ~tenant:1 ~demand:26e9 ~llc_target:true
       ~path:(route fabric "nic0" "socket0") ~size:Flow.Unbounded ());
  let dimms = List.init 6 (fun i -> Printf.sprintf "dimm0.%d.%d" (i / 3) (i mod 3)) in
  List.iter
    (fun d ->
      start
        (Fabric.start_flow fabric ~tenant:2 ~demand:1.5e9 ~path:(route fabric "nic1" d)
           ~size:Flow.Unbounded ());
      start
        (Fabric.start_flow fabric ~tenant:3 ~demand:1.0e9 ~path:(route fabric d "ssd0")
           ~size:Flow.Unbounded ()))
    dimms;
  {
    name = "gray-failure";
    describe = "E12's steady baseline: LLC writer + striped direct DMA + striped reads";
    tenants = [ (1, "llc writer"); (2, "direct dma"); (3, "reader") ];
    metrics =
      (fun () ->
        [
          ( "llc io-way hit",
            Printf.sprintf "%.0f%%" (Fabric.ddio_hit_rate fabric ~socket:0 *. 100.0) );
          ( "aggregate rate",
            rate
              (List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.rate) 0.0 !flows) );
        ]);
    stop = (fun () -> List.iter (Fabric.stop_flow fabric) !flows);
  }

let registry =
  [
    ("colocation", colocation);
    ("loopback", loopback);
    ("ddio-thrash", ddio_thrash);
    ("gray-failure", gray_failure);
  ]

let all =
  List.map
    (fun (name, _) ->
      (* describe without side effects: fixed strings *)
      ( name,
        match name with
        | "colocation" -> "kv store vs ML trainer on one root port (the paper's §2 story)"
        | "loopback" -> "RDMA loopback exhausting a NIC's PCIe slot (Collie)"
        | "ddio-thrash" -> "two fast NICs thrashing the LLC I/O ways"
        | _ -> "a subtle DDIO gray failure's steady baseline" ))
    registry

let find name = List.assoc_opt name registry
