(** NVMe storage traffic: Poisson block reads/writes between an SSD and
    host memory, with heavy-tailed block sizes. A third source of
    intra-host pressure (§2 lists "RAID SSDs" among the DDIO
    thrashers). *)

type config = {
  tenant : int;
  ssd : string;
  target : string;  (** Memory endpoint (a DIMM or a socket for DDIO). *)
  iops : float;  (** Operation arrival rate, ops/s. *)
  read_fraction : float;  (** In [\[0,1\]]: reads are SSD→memory. *)
  block : Traffic.size_dist;
}

val default_config : tenant:int -> ssd:string -> target:string -> config
(** 20 k IOPS, 70% reads, Pareto blocks (α = 1.5, min 16 KiB). *)

type t

val start : Ihnet_engine.Fabric.t -> ?rng:Ihnet_util.Rng.t -> config -> t
val stop : t -> unit

val completed_ops : t -> int
val op_latencies : t -> Ihnet_util.Histogram.t
(** Transfer durations of completed operations, ns. *)

val bytes_moved : t -> float
