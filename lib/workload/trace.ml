module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology
module U = Ihnet_util

type event = { at : U.Units.ns; src : string; dst : string; bytes : float; tenant : int }
type t = { mutable evs : event list }

let empty () = { evs = [] }
let add t e = t.evs <- e :: t.evs
let length t = List.length t.evs
let events t = List.sort (fun a b -> compare a.at b.at) t.evs

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "at_ns,src,dst,bytes,tenant\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.0f,%s,%s,%.0f,%d\n" e.at e.src e.dst e.bytes e.tenant))
    (events t);
  Buffer.contents buf

let of_csv s =
  let lines = String.split_on_char '\n' s in
  let t = empty () in
  let parse_line i line =
    if i = 0 || String.trim line = "" then Ok ()
    else
      match String.split_on_char ',' line with
      | [ at; src; dst; bytes; tenant ] -> (
        match
          (float_of_string_opt at, float_of_string_opt bytes, int_of_string_opt tenant)
        with
        | Some at, Some bytes, Some tenant ->
          add t { at; src; dst; bytes; tenant };
          Ok ()
        | _ -> Error (Printf.sprintf "line %d: bad number" (i + 1)))
      | _ -> Error (Printf.sprintf "line %d: expected 5 fields" (i + 1))
  in
  let rec walk i = function
    | [] -> Ok t
    | line :: rest -> (
      match parse_line i line with Ok () -> walk (i + 1) rest | Error e -> Error e)
  in
  walk 0 lines

let capture fabric =
  let topo = Fabric.topology fabric in
  let t = empty () in
  let t0 = Sim.now (Fabric.sim fabric) in
  Fabric.subscribe fabric (fun ev ->
      match ev with
      | Fabric.Flow_started f -> (
        match (f.Flow.cls, f.Flow.size) with
        | Flow.Payload, Flow.Bytes bytes ->
          let name id = (T.Topology.device topo id).T.Device.name in
          add t
            {
              at = f.Flow.started_at -. t0;
              src = name f.Flow.path.T.Path.src;
              dst = name f.Flow.path.T.Path.dst;
              bytes;
              tenant = f.Flow.tenant;
            }
        | _ -> ())
      | Fabric.Flow_completed _ | Fabric.Flow_stopped _ | Fabric.Fault_injected _
      | Fabric.Fault_cleared _ | Fabric.Limits_changed _ | Fabric.Config_changed _
      | Fabric.Reallocated _ | Fabric.All_faults_cleared | Fabric.Batch_started | Fabric.Batch_ended
      | Fabric.Synced | Fabric.Sensor_fault_injected _ | Fabric.Sensor_fault_cleared _ ->
        ());
  t

type replay_stats = {
  mutable completed : int;
  mutable total_bytes : float;
  durations : U.Histogram.t;
}

let replay fabric t =
  let topo = Fabric.topology fabric in
  let sim = Fabric.sim fabric in
  let stats = { completed = 0; total_bytes = 0.0; durations = U.Histogram.create () } in
  let base = Sim.now sim in
  let dev name =
    match T.Topology.device_by_name topo name with
    | Some d -> d.T.Device.id
    | None -> invalid_arg ("Trace.replay: no device " ^ name)
  in
  List.iter
    (fun e ->
      let src = dev e.src and dst = dev e.dst in
      match T.Routing.shortest_path topo src dst with
      | None -> invalid_arg (Printf.sprintf "Trace.replay: %s and %s not connected" e.src e.dst)
      | Some path ->
        Sim.schedule_at sim (base +. e.at) (fun _ ->
            ignore
              (Fabric.start_flow fabric ~tenant:e.tenant ~path ~size:(Flow.Bytes e.bytes)
                 ~on_complete:(fun f ->
                   stats.completed <- stats.completed + 1;
                   stats.total_bytes <- stats.total_bytes +. e.bytes;
                   U.Histogram.add stats.durations (Flow.duration f))
                 ())))
    (events t);
  stats
