(** Machine-learning trainer: the paper's bandwidth-hungry co-tenant.

    §2: "The machine learning application may have a substantial
    workload for CPU-GPU communication (e.g., loading training data)
    and heavily utilize the bandwidth of the PCIe fabric and the memory
    bus."

    Each iteration: load a batch from host memory to the GPU (a finite
    flow over mesh + PCIe), compute for a fixed time, optionally push a
    gradient-sync transfer GPU → NIC, then repeat. Iteration durations
    are recorded; fabric congestion directly stretches them. *)

type config = {
  tenant : int;
  gpu : string;
  data_source : string;  (** Device the batch is read from (a DIMM). *)
  loader_streams : int;
      (** Parallel data-loader workers. Stream [i] reads its share of
          the batch from the i-th DIMM of the GPU's socket (starting at
          [data_source]), the framework-prefetcher pattern that makes
          training saturate the PCIe uplink rather than a single DDR
          channel. *)
  batch_bytes : float;
  compute_time : Ihnet_util.Units.ns;  (** GPU compute per iteration. *)
  sync : (string * float) option;
      (** [(nic, bytes)]: per-iteration gradient push to the inter-host
          network via [nic]; [None] for single-GPU training. *)
  iterations : int option;  (** [None] = run until stopped. *)
}

val default_config : tenant:int -> gpu:string -> data_source:string -> config
(** 256 MiB batches, 2 loader streams, 5 ms compute, no sync, unbounded
    iterations. *)

type t

val start : Ihnet_engine.Fabric.t -> config -> t
val stop : t -> unit

val iterations_done : t -> int
val iteration_times : t -> Ihnet_util.Histogram.t
(** Wall-clock duration of completed iterations (ns). *)

val running : t -> bool
