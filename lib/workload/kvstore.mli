(** Remote key-value store: the paper's latency-sensitive victim.

    §2: "a remote key-value store client and a machine learning
    application may be co-located on the same host. ... the traffic of
    the remote key-value store application may traverse the same PCIe
    root port and the memory bus and therefore suffer from high latency
    and poor application performance."

    Clients sit beyond the NIC ([ext]); each request crosses inter-host
    → NIC → PCIe → (LLC or DRAM) and back. The request stream is fluid
    (one rate-limited flow per direction); request {e latency} is
    sampled on a Poisson subsample of requests from the live
    load-dependent path latency, plus interrupt moderation and server
    think time. *)

type config = {
  tenant : int;
  nic : string;  (** Device name of the serving NIC. *)
  target : [ `Llc | `Dimm of string ];
      (** Where request payloads land: LLC via DDIO, or a DIMM. *)
  request_rate : float;  (** Offered load, requests/s. *)
  request_bytes : float;  (** Wire size of a request (client→server). *)
  response_bytes : float;  (** Wire size of a response. *)
  think_time : Ihnet_util.Units.ns;  (** Server-side processing. *)
  sample_rate : float;  (** Latency samples/s (Poisson). *)
}

val default_config : tenant:int -> nic:string -> config
(** 100 kreq/s of 512 B requests / 1024 B responses, LLC-targeted,
    2 µs think time, 20 k latency samples/s. *)

type t

val start : Ihnet_engine.Fabric.t -> ?rng:Ihnet_util.Rng.t -> config -> t
(** @raise Invalid_argument when the NIC or DIMM does not exist. *)

val stop : t -> unit

val latencies : t -> Ihnet_util.Histogram.t
(** End-to-end request latencies (ns) sampled so far. *)

val offered_rate : t -> float
(** Offered request rate (requests/s). *)

val achieved_rate : t -> float
(** Requests/s actually sustainable at current fabric allocation
    (min of both directions' bandwidth over the per-request bytes). *)

val goodput : t -> float
(** Bytes/s currently allocated to the store (both directions). *)
