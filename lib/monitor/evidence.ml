module Fabric = Ihnet_engine.Fabric
module T = Ihnet_topology
module U = Ihnet_util

type modality = Operator | Heartbeat | Counter | Anomaly

let modality_label = function
  | Operator -> "operator"
  | Heartbeat -> "heartbeat"
  | Counter -> "counter"
  | Anomaly -> "anomaly"

type config = {
  window : U.Units.ns;
  quorum : int;
  min_score : float;
  trusted : modality list;
}

let default_config () =
  { window = U.Units.ms 5.0; quorum = 2; min_score = 0.25; trusted = [ Operator ] }

type t = {
  fabric : Fabric.t;
  config : config;
  (* at most one live report per (link, modality): a detector updates
     its opinion, it does not accumulate votes with itself *)
  reports : (T.Link.id, (modality * float * U.Units.ns) list) Hashtbl.t;
}

let report t ~modality ~link ~score =
  let score = Float.max 0.0 (Float.min 1.0 score) in
  let now = Fabric.now t.fabric in
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.reports link) in
  let cur = List.filter (fun (m, _, _) -> m <> modality) cur in
  Hashtbl.replace t.reports link ((modality, score, now) :: cur)

let invalidate t ~modality ~link =
  match Hashtbl.find_opt t.reports link with
  | None -> ()
  | Some cur -> (
    match List.filter (fun (m, _, _) -> m <> modality) cur with
    | [] -> Hashtbl.remove t.reports link
    | rest -> Hashtbl.replace t.reports link rest)

let invalidate_everywhere t ~modality =
  Hashtbl.fold (fun link _ acc -> link :: acc) t.reports []
  |> List.iter (fun link -> invalidate t ~modality ~link)

let create ?(config = default_config ()) fabric =
  if config.quorum < 1 then invalid_arg "Evidence.create: quorum must be >= 1";
  if config.window <= 0.0 then invalid_arg "Evidence.create: window must be positive";
  let t = { fabric; config; reports = Hashtbl.create 16 } in
  (* operator-injected faults are first-party evidence; genuinely
     silent degradations never surface here — detectors must earn them *)
  Fabric.subscribe fabric (function
    | Fabric.Fault_injected (link, _) -> report t ~modality:Operator ~link ~score:1.0
    | Fabric.Fault_cleared link -> invalidate t ~modality:Operator ~link
    | Fabric.All_faults_cleared -> invalidate_everywhere t ~modality:Operator
    | _ -> ());
  t

let feed_heartbeat t suspects =
  List.iter
    (fun (s : Heartbeat.suspect) ->
      report t ~modality:Heartbeat ~link:s.Heartbeat.link ~score:s.Heartbeat.confidence)
    suspects

(* "link.<id>." prefix of sampler series names *)
let link_of_series s =
  if String.length s > 5 && String.sub s 0 5 = "link." then begin
    let rest = String.sub s 5 (String.length s - 5) in
    match String.index_opt rest '.' with
    | Some i -> int_of_string_opt (String.sub rest 0 i)
    | None -> None
  end
  else None

let feed_anomaly ?(score = 0.9) t alarms =
  List.iter
    (fun (a : Anomaly.alarm) ->
      match link_of_series a.Anomaly.series with
      | Some link -> report t ~modality:Anomaly ~link ~score
      | None -> ())
    alarms

let live t link =
  let now = Fabric.now t.fabric in
  match Hashtbl.find_opt t.reports link with
  | None -> []
  | Some cur -> (
    match List.filter (fun (_, _, at) -> now -. at <= t.config.window) cur with
    | [] ->
      Hashtbl.remove t.reports link;
      []
    | live ->
      if List.compare_lengths live cur < 0 then Hashtbl.replace t.reports link live;
      live)

(* independent detectors: combined belief is noisy-OR *)
let combined entries =
  1.0 -. List.fold_left (fun acc (_, s, _) -> acc *. (1.0 -. s)) 1.0 entries

let verdict t link =
  match live t link with
  | [] -> `Unknown
  | entries ->
    let conf = combined entries in
    let strong = List.filter (fun (_, s, _) -> s >= t.config.min_score) entries in
    let mods = List.sort_uniq compare (List.map (fun (m, _, _) -> m) strong) in
    if
      List.exists (fun m -> List.mem m t.config.trusted) mods
      || List.length mods >= t.config.quorum
    then `Corroborated conf
    else `Suspected conf

let gate t link = verdict t link

let suspects t =
  Hashtbl.fold (fun link _ acc -> link :: acc) t.reports []
  |> List.sort_uniq compare
  |> List.filter_map (fun link ->
         match verdict t link with
         | `Unknown -> None
         | `Suspected c | `Corroborated c -> Some (link, c))

let report_count t =
  Hashtbl.fold (fun link _ acc -> acc + List.length (live t link)) t.reports 0

(* Raw window contents for the scan port. Unlike [suspects]/[verdict]
   this neither filters nor prunes expired reports — a pure read, so a
   scan leaves the window's internal state untouched. *)
let scan_reports t =
  Hashtbl.fold
    (fun link entries acc ->
      List.fold_left (fun acc (m, score, at) -> (link, m, score, at) :: acc) acc entries)
    t.reports []
  |> List.sort compare
