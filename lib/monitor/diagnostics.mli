(** Diagnostic tools: the intra-host ping / traceroute / iperf /
    wireshark the paper asks for (§3.1).

    All tools are safe to run against a loaded fabric; their own
    traffic is [Probe]-class so the overhead is attributable. *)

(** {1 ihping} *)

type ping_report = {
  mutable sent : int;
  mutable lost : int;
  rtts : Ihnet_util.Histogram.t;  (** RTTs of answered probes, ns. *)
}
(** Fields fill in as the simulation executes the scheduled probes. *)

val ping :
  Ihnet_engine.Fabric.t ->
  src:string ->
  dst:string ->
  ?count:int ->
  ?interval:Ihnet_util.Units.ns ->
  ?probe_bytes:int ->
  ?on_done:(ping_report -> unit) ->
  unit ->
  ping_report
(** Schedule [count] (default 10) probes [interval] (default 100 µs)
    apart; the returned report fills in as the simulation runs and
    [on_done] fires after the last probe. Lost probes (fault loss)
    count in [lost].
    @raise Invalid_argument on unknown devices or no route. *)

val ping_once : Ihnet_engine.Fabric.t -> src:string -> dst:string -> Ihnet_util.Units.ns option
(** Immediate one-shot RTT under current load; [None] if lost. *)

(** {1 ihtrace} *)

type trace_hop = {
  hop_device : string;  (** Device entered at this hop. *)
  link_kind : string;
  figure1_class : int option;
  base_latency : Ihnet_util.Units.ns;
  loaded_latency : Ihnet_util.Units.ns;  (** Under current utilization. *)
  utilization : float;
}

val trace : Ihnet_engine.Fabric.t -> src:string -> dst:string -> trace_hop list
(** Hop-by-hop decomposition of the current one-way path — the
    intra-host traceroute. *)

(** {1 ihperf} *)

type perf_report = {
  duration : Ihnet_util.Units.ns;
  bytes_moved : float;
  achieved_rate : float;  (** bytes/s. *)
  bottleneck : (Ihnet_topology.Link.id * float) option;
      (** Most utilized link on the path at the end of the run. *)
}

val perf :
  Ihnet_engine.Fabric.t ->
  src:string ->
  dst:string ->
  ?duration:Ihnet_util.Units.ns ->
  ?on_done:(perf_report -> unit) ->
  unit ->
  unit
(** Run an elastic [Probe]-class flow for [duration] (default 10 ms)
    and report the achieved bandwidth — the intra-host iperf. *)

val perf_now : Ihnet_engine.Fabric.t -> src:string -> dst:string -> float
(** Instantaneous what-if bandwidth between two devices (the rate a new
    elastic flow would get right now), without starting traffic. *)

(** {1 ihdump} *)

type captured_flow = {
  flow_id : int;
  tenant : int;
  cls : string;
  rate : float;
  src_dev : string;
  dst_dev : string;
}

val dump :
  Ihnet_engine.Fabric.t ->
  link:Ihnet_topology.Link.id ->
  ?dir:Ihnet_topology.Link.dir ->
  unit ->
  captured_flow list
(** Flows currently crossing [link] (optionally one direction only),
    largest rate first — the intra-host wireshark. This is a privileged
    hypervisor view: it reads the flow table, not the counters. *)
