module T = Ihnet_topology
module U = Ihnet_util

type detector =
  | Threshold of { above : float option; below : float option }
  | Ewma_deviation of { alpha : float; k : float }
  | Cusum of { drift : float; threshold : float }

type alarm = { at : U.Units.ns; series : string; value : float; reason : string }

type watcher = {
  series : string;
  detector : detector;
  ewma : U.Stats.Ewma.t option;
  cusum : U.Stats.Cusum.t option;
  cusum_base : U.Stats.Online.t; (* learned in-control level for CUSUM *)
  mutable seen : int; (* samples processed; gates statistical alarms *)
}

type t = {
  mutable watchers : watcher list;
  mutable alarms : alarm list; (* newest first *)
  last_fed : (string, float) Hashtbl.t; (* series -> last processed timestamp *)
}

let create () = { watchers = []; alarms = []; last_fed = Hashtbl.create 16 }

let watch t ~series detector =
  let w =
    match detector with
    | Threshold _ ->
      {
        series;
        detector;
        ewma = None;
        cusum = None;
        cusum_base = U.Stats.Online.create ();
        seen = 0;
      }
    | Ewma_deviation { alpha; _ } ->
      {
        series;
        detector;
        ewma = Some (U.Stats.Ewma.create ~alpha);
        cusum = None;
        cusum_base = U.Stats.Online.create ();
        seen = 0;
      }
    | Cusum { drift; threshold } ->
      {
        series;
        detector;
        ewma = None;
        cusum = Some (U.Stats.Cusum.create ~drift ~threshold ());
        cusum_base = U.Stats.Online.create ();
        seen = 0;
      }
  in
  t.watchers <- w :: t.watchers

(* Tail-latency watchers: static SLO-style bounds over the percentile
   sub-series a sampler records for a latency snapshot. *)
let watch_tail t ~series ?p99_above ?p999_above () =
  let bound field = function
    | None -> ()
    | Some hi ->
      watch t
        ~series:(Telemetry.pct_series ~series field)
        (Threshold { above = Some hi; below = None })
  in
  bound "p99" p99_above;
  bound "p999" p999_above

let raise_alarm t ~at ~series ~value reason =
  t.alarms <- { at; series; value; reason } :: t.alarms

(* Statistical detectors need an in-control reference; learn it from
   the first samples and alarm only afterwards. *)
let stat_warmup = 30

let run_watcher t w ~at value =
  w.seen <- w.seen + 1;
  match w.detector with
  | Threshold { above; below } ->
    (match above with
    | Some hi when value > hi ->
      raise_alarm t ~at ~series:w.series ~value (Printf.sprintf "above threshold %g" hi)
    | Some _ | None -> ());
    (match below with
    | Some lo when value < lo ->
      raise_alarm t ~at ~series:w.series ~value (Printf.sprintf "below threshold %g" lo)
    | Some _ | None -> ())
  | Ewma_deviation { k; _ } -> (
    match w.ewma with
    | None -> assert false
    | Some e ->
      let dev = U.Stats.Ewma.deviation e value in
      if w.seen > stat_warmup && dev > k then
        raise_alarm t ~at ~series:w.series ~value
          (Printf.sprintf "ewma deviation %.1f sigma" dev);
      U.Stats.Ewma.add e value)
  | Cusum _ -> (
    match w.cusum with
    | None -> assert false
    | Some c ->
      if U.Stats.Online.count w.cusum_base < stat_warmup then
        U.Stats.Online.add w.cusum_base value
      else begin
        let expected = U.Stats.Online.mean w.cusum_base in
        let sigma =
          Float.max
            (U.Stats.Online.stddev w.cusum_base)
            (1e-3 *. Float.max 1.0 (Float.abs expected))
        in
        (* keep refining the in-control estimate on unremarkable samples
           so a short warm-up does not freeze a biased baseline *)
        if Float.abs ((value -. expected) /. sigma) < 2.0 then
          U.Stats.Online.add w.cusum_base value;
        match U.Stats.Cusum.add c ~expected ~sigma value with
        | `Alarm `Up -> raise_alarm t ~at ~series:w.series ~value "cusum up-shift"
        | `Alarm `Down -> raise_alarm t ~at ~series:w.series ~value "cusum down-shift"
        | `Ok -> ()
      end)

let observe t ~series ~at value =
  List.iter (fun w -> if w.series = series then run_watcher t w ~at value) t.watchers

let feed t telemetry =
  let names = List.sort_uniq compare (List.map (fun w -> w.series) t.watchers) in
  List.iter
    (fun series ->
      let since =
        match Hashtbl.find_opt t.last_fed series with
        | Some ts -> ts +. 1e-3 (* strictly after *)
        | None -> neg_infinity
      in
      let samples = Telemetry.window telemetry ~series ~since in
      List.iter
        (fun (s : Telemetry.sample) ->
          observe t ~series ~at:s.Telemetry.at s.Telemetry.value;
          Hashtbl.replace t.last_fed series s.Telemetry.at)
        samples)
    names

let alarms t = List.rev t.alarms
let alarms_for t ~series = List.filter (fun (a : alarm) -> a.series = series) (alarms t)

let first_alarm t = match alarms t with [] -> None | a :: _ -> Some a
let clear_alarms t = t.alarms <- []

(* {1 Misconfiguration checks} *)

let check_configuration topo =
  let config = T.Topology.config topo in
  let findings = ref [] in
  let finding fmt = Format.kasprintf (fun s -> findings := s :: !findings) fmt in
  (* NIC faster than its PCIe slot *)
  List.iter
    (fun (d : T.Device.t) ->
      match d.T.Device.kind with
      | T.Device.Nic { inter_host_gbps } ->
        let port_rate = U.Units.gbps inter_host_gbps in
        List.iter
          (fun ((l : T.Link.t), _) ->
            match l.T.Link.kind with
            | T.Link.Pcie _ when l.T.Link.capacity < port_rate ->
              finding "nic %s: inter-host port (%.0f Gbps) outruns its PCIe slot (%a)"
                d.T.Device.name inter_host_gbps U.Units.pp_rate l.T.Link.capacity
            | _ -> ())
          (T.Topology.neighbors topo d.T.Device.id)
      | _ -> ())
    (T.Topology.devices topo);
  (* DDIO off with fast NICs present *)
  let fast_nics =
    T.Topology.find_devices topo (fun d ->
        match d.T.Device.kind with
        | T.Device.Nic { inter_host_gbps } -> inter_host_gbps >= 100.0
        | _ -> false)
  in
  (match config.T.Hostconfig.ddio with
  | T.Hostconfig.Ddio_off when fast_nics <> [] ->
    finding "ddio disabled with %d NIC(s) >= 100 Gbps: inbound DMA will hammer the memory bus"
      (List.length fast_nics)
  | T.Hostconfig.Ddio_on { llc_ways; io_ways; _ } when 2 * io_ways > llc_ways ->
    finding "ddio io_ways (%d of %d) starve the CPU's LLC share" io_ways llc_ways
  | T.Hostconfig.Ddio_off | T.Hostconfig.Ddio_on _ -> ());
  (* tiny IOTLB *)
  (match config.T.Hostconfig.iommu with
  | T.Hostconfig.Iommu_on { iotlb_entries; _ } when iotlb_entries < 32 ->
    finding "iommu iotlb has only %d entries: translation thrash likely under multi-queue DMA"
      iotlb_entries
  | T.Hostconfig.Iommu_on _ | T.Hostconfig.Iommu_off -> ());
  (* small MPS on a gen4+ fabric *)
  let has_fast_pcie =
    List.exists
      (fun (l : T.Link.t) ->
        match l.T.Link.kind with
        | T.Link.Pcie p -> T.Pcie.gt_per_s p.T.Pcie.gen >= 16.0
        | _ -> false)
      (T.Topology.links topo)
  in
  if has_fast_pcie && config.T.Hostconfig.pcie_mps < 256 then
    finding "pcie MaxPayloadSize %d wastes >= 17%% of a gen4 link on TLP headers"
      config.T.Hostconfig.pcie_mps;
  if config.T.Hostconfig.acs then
    finding "acs enabled: peer-to-peer PCIe traffic detours through the root complex";
  if not config.T.Hostconfig.relaxed_ordering then
    finding "relaxed ordering disabled: DMA writes serialize across switch hops";
  if config.T.Hostconfig.interrupt_moderation > U.Units.us 10.0 then
    finding "interrupt moderation of %a penalizes latency-sensitive tenants"
      U.Units.pp_time config.T.Hostconfig.interrupt_moderation;
  (* oversubscribed PCIe switches *)
  List.iter
    (fun (d : T.Device.t) ->
      match d.T.Device.kind with
      | T.Device.Pcie_switch _ ->
        let up, down =
          List.fold_left
            (fun (up, down) ((l : T.Link.t), _) ->
              match T.Topology.pcie_position topo l with
              | `Upstream -> (up +. l.T.Link.capacity, down)
              | `Downstream -> (up, down +. l.T.Link.capacity)
              | `Not_pcie -> (up, down))
            (0.0, 0.0)
            (T.Topology.neighbors topo d.T.Device.id)
        in
        (* 3x oversubscription is the norm in commodity servers (three
           x16 endpoints behind one x16 uplink, as in Figure 1); flag
           only what exceeds it *)
        if up > 0.0 && down > 3.0 *. up then
          finding "pcie switch %s oversubscribed %.1fx (downstream %a vs upstream %a)"
            d.T.Device.name (down /. up) U.Units.pp_rate down U.Units.pp_rate up
      | _ -> ())
    (T.Topology.devices topo);
  List.rev !findings
