module Fabric = Ihnet_engine.Fabric

type member = { label : string; counter : Counter.t; tenants : int list }

type host_status = {
  label : string;
  health : Health.t;
  congested_links : int;
  worst_utilization : float;
  config_findings : string list;
}

type t = { at_wall : int; hosts : host_status list }

let status_of m =
  let health = Health.collect m.counter ~tenants:m.tenants () in
  let worst_utilization =
    match health.Health.congested with
    | [] -> 0.0
    | c :: _ -> c.Health.utilization
  in
  {
    label = m.label;
    health;
    congested_links = List.length health.Health.congested;
    worst_utilization;
    config_findings =
      Anomaly.check_configuration (Fabric.topology (Counter.fabric m.counter));
  }

let severity s =
  (* congestion dominates; misconfigurations break ties *)
  (float_of_int s.congested_links *. 10.0)
  +. s.worst_utilization
  +. float_of_int (List.length s.config_findings)

let collect ?(round = 0) members =
  let hosts =
    List.map status_of members
    |> List.sort (fun a b ->
           (* worst first; equal severity orders by label so a fleet
              report is stable run to run *)
           match compare (severity b) (severity a) with
           | 0 -> compare a.label b.label
           | c -> c)
  in
  { at_wall = round; hosts }

let needs_attention t =
  List.filter (fun s -> s.congested_links > 0 || s.config_findings <> []) t.hosts

let pp ppf t =
  Format.fprintf ppf "fleet round %d: %d host(s), %d need attention@." t.at_wall
    (List.length t.hosts)
    (List.length (needs_attention t));
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-16s congested=%d worst=%.0f%% findings=%d@." s.label
        s.congested_links
        (s.worst_utilization *. 100.0)
        (List.length s.config_findings))
    t.hosts
