module Fabric = Ihnet_engine.Fabric
module U = Ihnet_util

type member = {
  label : string;
  counter : Counter.t;
  tenants : int list;
  slo : (unit -> int * int) option;
}

type host_status = {
  label : string;
  health : Health.t;
  congested_links : int;
  worst_utilization : float;
  config_findings : string list;
  tail : U.Sketch.snapshot option;
  slo_degraded : int;
  slo_violated : int;
}

type t = { at_wall : int; hosts : host_status list; fleet_tail : U.Sketch.snapshot option }

let host_tail m =
  match Fabric.flow_latency_sketch (Counter.fabric m.counter) with
  | Some sk when U.Sketch.count sk > 0 -> Some sk
  | Some _ | None -> None

let status_of m =
  let health = Health.collect m.counter ~tenants:m.tenants () in
  let worst_utilization =
    match health.Health.congested with
    | [] -> 0.0
    | c :: _ -> c.Health.utilization
  in
  let slo_degraded, slo_violated =
    match m.slo with None -> (0, 0) | Some probe -> probe ()
  in
  {
    label = m.label;
    health;
    congested_links = List.length health.Health.congested;
    worst_utilization;
    config_findings =
      Anomaly.check_configuration (Fabric.topology (Counter.fabric m.counter));
    tail = Option.map U.Sketch.snapshot (host_tail m);
    slo_degraded;
    slo_violated;
  }

(* Fleet-wide tail latency: every member's end-to-end flow sketch
   merged into one. Members are visited in label order — merge is
   bit-deterministic under any grouping (see {!Ihnet_util.Sketch}), but
   the pinned order also makes partial-failure replays trivially
   reproducible. *)
let fleet_tail members =
  let sketches =
    List.sort (fun (a : member) (b : member) -> compare a.label b.label) members
    |> List.filter_map host_tail
  in
  match sketches with
  | [] -> None
  | first :: rest ->
    let acc = U.Sketch.copy first in
    List.iter (fun sk -> U.Sketch.merge acc sk) rest;
    Some (U.Sketch.snapshot acc)

let severity s =
  (* a violated SLO outranks any congestion picture (a tail-sick host
     must surface even when no link is congested); within one verdict
     tier congestion dominates and misconfigurations break ties *)
  (float_of_int s.slo_violated *. 100.0)
  +. (float_of_int s.slo_degraded *. 20.0)
  +. (float_of_int s.congested_links *. 10.0)
  +. s.worst_utilization
  +. float_of_int (List.length s.config_findings)

let collect ?(round = 0) members =
  let hosts =
    List.map status_of members
    |> List.sort (fun a b ->
           (* worst first; equal severity orders by label so a fleet
              report is stable run to run *)
           match compare (severity b) (severity a) with
           | 0 -> compare a.label b.label
           | c -> c)
  in
  { at_wall = round; hosts; fleet_tail = fleet_tail members }

let needs_attention t =
  List.filter
    (fun s ->
      s.congested_links > 0 || s.config_findings <> [] || s.slo_degraded > 0
      || s.slo_violated > 0)
    t.hosts

let pp ppf t =
  Format.fprintf ppf "fleet round %d: %d host(s), %d need attention@." t.at_wall
    (List.length t.hosts)
    (List.length (needs_attention t));
  (match t.fleet_tail with
  | Some s ->
    Format.fprintf ppf "  fleet flow latency: n=%d p50=%.0fns p99=%.0fns p999=%.0fns@."
      s.U.Sketch.s_count s.U.Sketch.s_p50 s.U.Sketch.s_p99 s.U.Sketch.s_p999
  | None -> ());
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-16s congested=%d worst=%.0f%% findings=%d%t%t@." s.label
        s.congested_links
        (s.worst_utilization *. 100.0)
        (List.length s.config_findings)
        (fun ppf ->
          if s.slo_degraded > 0 || s.slo_violated > 0 then
            Format.fprintf ppf " slo=%d degraded/%d violated" s.slo_degraded
              s.slo_violated)
        (fun ppf ->
          match s.tail with
          | Some tl ->
            Format.fprintf ppf " flow p50=%.0fns p99=%.0fns p999=%.0fns"
              tl.U.Sketch.s_p50 tl.U.Sketch.s_p99 tl.U.Sketch.s_p999
          | None -> ()))
    t.hosts
