module Ring = Ihnet_util.Ring_buffer
module Sketch = Ihnet_util.Sketch

type sample = { at : Ihnet_util.Units.ns; value : float }
type t = { capacity : int; series : (string, sample Ring.t) Hashtbl.t }

let create ?(capacity_per_series = 1024) () =
  assert (capacity_per_series > 0);
  { capacity = capacity_per_series; series = Hashtbl.create 64 }

let ring t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = Ring.create t.capacity in
    Hashtbl.add t.series name r;
    r

let record t ~series ~at value = Ring.push (ring t series) { at; value }

let series_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.series [] |> List.sort compare

let length t ~series =
  match Hashtbl.find_opt t.series series with Some r -> Ring.length r | None -> 0

let latest t ~series =
  match Hashtbl.find_opt t.series series with Some r -> Ring.newest r | None -> None

let window t ~series ~since =
  match Hashtbl.find_opt t.series series with
  | None -> []
  | Some r -> List.filter (fun s -> s.at >= since) (Ring.to_list r)

let values t ~series =
  match Hashtbl.find_opt t.series series with
  | None -> [||]
  | Some r -> Array.of_list (List.map (fun s -> s.value) (Ring.to_list r))

let rate_of_change t ~series =
  match Hashtbl.find_opt t.series series with
  | None -> None
  | Some r ->
    let n = Ring.length r in
    if n < 2 then None
    else begin
      let a = Ring.get r (n - 2) and b = Ring.get r (n - 1) in
      let dt = b.at -. a.at in
      if dt <= 0.0 then None else Some ((b.value -. a.value) /. (dt /. 1e9))
    end

let last_update t ~series =
  match Hashtbl.find_opt t.series series with
  | None -> None
  | Some r ->
    (* rings hold insertion order; skew can reorder timestamps, so the
       freshest sample is the max over retained [at]s, not the newest *)
    Ring.to_list r |> List.fold_left (fun acc s -> match acc with
        | Some m when m >= s.at -> acc
        | _ -> Some s.at) None

let staleness t ~series ~now =
  match last_update t ~series with None -> None | Some at -> Some (Float.max 0.0 (now -. at))

let to_csv ?series t =
  let names = match series with Some ns -> ns | None -> series_names t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,at_ns,value\n";
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.series name with
      | None -> ()
      | Some r ->
        (* rings hold insertion order; exports promise time order (a
           stable sort, so equal timestamps keep arrival order) *)
        List.iter
          (fun s -> Buffer.add_string buf (Printf.sprintf "%s,%.0f,%.9g\n" name s.at s.value))
          (List.stable_sort (fun a b -> compare a.at b.at) (Ring.to_list r)))
    names;
  Buffer.contents buf

(* Percentile snapshots decompose into one plain sub-series per field,
   so every existing consumer — windows, CSV export, staleness, anomaly
   detectors — works on tail latency unchanged. *)
let pct_fields (s : Sketch.snapshot) =
  [
    ("count", float_of_int s.Sketch.s_count);
    ("mean", s.Sketch.s_mean);
    ("p50", s.Sketch.s_p50);
    ("p90", s.Sketch.s_p90);
    ("p99", s.Sketch.s_p99);
    ("p999", s.Sketch.s_p999);
    ("max", s.Sketch.s_max);
  ]

let pct_series ~series field = series ^ "." ^ field

let record_pct t ~series ~at snap =
  List.iter (fun (f, v) -> record t ~series:(pct_series ~series f) ~at v) (pct_fields snap)

let latest_pct t ~series =
  let get f =
    match latest t ~series:(pct_series ~series f) with
    | Some s -> s.value
    | None -> nan
  in
  match latest t ~series:(pct_series ~series "count") with
  | None -> None
  | Some c ->
    Some
      {
        Sketch.s_count = int_of_float c.value;
        s_mean = get "mean";
        s_p50 = get "p50";
        s_p90 = get "p90";
        s_p99 = get "p99";
        s_p999 = get "p999";
        s_max = get "max";
      }

let dropped_samples t = Hashtbl.fold (fun _ r acc -> acc + Ring.dropped r) t.series 0
let memory_samples t = Hashtbl.fold (fun _ r acc -> acc + Ring.length r) t.series 0
let clear t = Hashtbl.reset t.series
