(** Fleet view: the centralized network-state service of §3.1.

    "The state of an inter-host network is usually collected
    periodically by a centralized service to allow for centralized
    monitoring and control of network traffic. Similarly, a manageable
    intra-host network should monitor configurations and resource
    usage on all the links."

    This module is that collector's host-side aggregation: it pulls
    {!Health} snapshots from many (simulated) hosts and ranks them, so
    an operator sees which machine in the rack needs attention. Each
    host keeps its own simulator; the fleet is just the roll-up. *)

type member = {
  label : string;  (** Operator-facing host name ("rack3-node07"). *)
  counter : Counter.t;
  tenants : int list;  (** Tenants to attribute on that host. *)
  slo : (unit -> int * int) option;
      (** SLO probe: returns [(degraded, violated)] intent counts for
          this host, typically [Slo.check] behind a closure (the monitor
          layer cannot depend on the manager, so the verdicts arrive
          pre-counted). [None] = no SLO plane on that host. *)
}

type host_status = {
  label : string;
  health : Health.t;
  congested_links : int;
  worst_utilization : float;  (** 0 when nothing is congested. *)
  config_findings : string list;  (** Static misconfigurations. *)
  tail : Ihnet_util.Sketch.snapshot option;
      (** End-to-end flow-latency percentiles from the host's always-on
          sketch plane; [None] while the plane is dormant or empty. *)
  slo_degraded : int;  (** Intents currently [Degraded] on this host. *)
  slo_violated : int;  (** Intents with a violated bound (e.g. p99). *)
}

type t = {
  at_wall : int;  (** Collection round number. *)
  hosts : host_status list;  (** Worst first. *)
  fleet_tail : Ihnet_util.Sketch.snapshot option;
      (** Every member's flow sketch merged into fleet-wide latency
          percentiles; [None] when no member has samples. *)
}

val collect : ?round:int -> member list -> t
(** Snapshot every member (each call advances that host's simulation by
    the health-report window) and rank by congestion severity, then by
    misconfiguration count. Members' flow-latency sketches are merged
    into [fleet_tail] in label order; the sketch's determinism contract
    makes the merged percentiles bit-identical under any grouping. *)

val needs_attention : t -> host_status list
(** Hosts with congested links, config findings, or degraded/violated
    SLO verdicts, worst first — a tail-latency-sick host surfaces here
    even when no link is congested. *)

val pp : Format.formatter -> t -> unit
