module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology
module U = Ihnet_util

type congested_link = {
  link : T.Link.id;
  dir : T.Link.dir;
  label : string;
  utilization : float;
}

type talker = { tenant : int; rate : float }
type socket_cache = { socket : int; hit_rate : float option; write_rate : float }

type t = {
  at : U.Units.ns;
  host : string;
  congested : congested_link list;
  top_talkers : talker list;
  ddio : socket_cache list;
  monitoring_overhead : float;
  tenant_fairness : float;
}

let link_label topo (l : T.Link.t) dir =
  let name id = (T.Topology.device topo id).T.Device.name in
  let a, b =
    match dir with
    | T.Link.Fwd -> (name l.T.Link.a, name l.T.Link.b)
    | T.Link.Rev -> (name l.T.Link.b, name l.T.Link.a)
  in
  Printf.sprintf "%s %s->%s" (T.Link.kind_label l.T.Link.kind) a b

let sockets_of topo =
  T.Topology.find_devices topo (fun d ->
      match d.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false)
  |> List.map (fun (d : T.Device.t) -> d.T.Device.socket)

let collect counter ?(congestion_threshold = 0.8) ?(window = U.Units.ms 1.0) ?(tenants = []) () =
  assert (congestion_threshold > 0.0 && window > 0.0);
  let fabric = Counter.fabric counter in
  let topo = Fabric.topology fabric in
  let links = T.Topology.links topo in
  let dirs = [ T.Link.Fwd; T.Link.Rev ] in
  (* two readings [window] apart give per-tenant rates *)
  let before =
    List.concat_map
      (fun (l : T.Link.t) ->
        List.map (fun dir -> ((l.T.Link.id, dir), Counter.read counter l.T.Link.id dir ~tenants)) dirs)
      links
  in
  Sim.run ~until:(Sim.now (Fabric.sim fabric) +. window) (Fabric.sim fabric);
  let congested = ref [] in
  let talker_tbl : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (l : T.Link.t) ->
      List.iter
        (fun dir ->
          let r = Counter.read counter l.T.Link.id dir ~tenants in
          if r.Counter.utilization >= congestion_threshold then
            congested :=
              {
                link = l.T.Link.id;
                dir;
                label = link_label topo l dir;
                utilization = r.Counter.utilization;
              }
              :: !congested;
          let prev = List.assoc (l.T.Link.id, dir) before in
          List.iter
            (fun (tn, bytes) ->
              let prev_bytes =
                Option.value ~default:0.0 (List.assoc_opt tn prev.Counter.per_tenant)
              in
              let rate = (bytes -. prev_bytes) /. (window /. 1e9) in
              if rate > 0.0 then
                Hashtbl.replace talker_tbl tn
                  (rate +. Option.value ~default:0.0 (Hashtbl.find_opt talker_tbl tn)))
            r.Counter.per_tenant)
        dirs)
    links;
  let top_talkers =
    Hashtbl.fold (fun tenant rate acc -> { tenant; rate } :: acc) talker_tbl []
    |> List.sort (fun a b ->
           (* rate desc, tenant asc on ties: Hashtbl.fold order must not
              leak into the report *)
           match compare b.rate a.rate with 0 -> compare a.tenant b.tenant | c -> c)
  in
  let ddio =
    List.map
      (fun socket ->
        {
          socket;
          hit_rate = Counter.ddio_hit_rate counter ~socket;
          write_rate = Fabric.ddio_write_rate fabric ~socket;
        })
      (sockets_of topo)
  in
  let monitoring_overhead =
    List.fold_left
      (fun acc (f : Flow.t) ->
        match f.Flow.cls with
        | Flow.Monitoring | Flow.Probe | Flow.Heartbeat -> acc +. f.Flow.rate
        | Flow.Payload | Flow.Induced -> acc)
      0.0 (Fabric.active_flows fabric)
  in
  let tenant_fairness =
    if List.length top_talkers < 2 then nan
    else U.Stats.jain_index (Array.of_list (List.map (fun t -> t.rate) top_talkers))
  in
  {
    at = Fabric.now fabric;
    host = T.Topology.name topo;
    congested =
      List.sort
        (fun a b ->
          match compare b.utilization a.utilization with
          | 0 -> compare (a.link, a.dir) (b.link, b.dir)
          | c -> c)
        !congested;
    top_talkers;
    ddio;
    monitoring_overhead;
    tenant_fairness;
  }

let pp ppf t =
  Format.fprintf ppf "host %s at %a@." t.host U.Units.pp_time t.at;
  (match t.congested with
  | [] -> Format.fprintf ppf "  no congested links@."
  | cs ->
    Format.fprintf ppf "  congested links:@.";
    List.iter
      (fun c -> Format.fprintf ppf "    %-40s %3.0f%%@." c.label (c.utilization *. 100.0))
      cs);
  (match t.top_talkers with
  | [] -> Format.fprintf ppf "  top talkers: (not visible at this counter fidelity)@."
  | ts ->
    Format.fprintf ppf "  top talkers:@.";
    List.iteri
      (fun i talker ->
        if i < 5 then
          Format.fprintf ppf "    tenant %-3d %a@." talker.tenant U.Units.pp_rate talker.rate)
      ts);
  List.iter
    (fun s ->
      Format.fprintf ppf "  socket %d ddio: write %a, hit %s@." s.socket U.Units.pp_rate
        s.write_rate
        (match s.hit_rate with Some h -> Printf.sprintf "%.0f%%" (h *. 100.0) | None -> "n/a"))
    t.ddio;
  if not (Float.is_nan t.tenant_fairness) then
    Format.fprintf ppf "  tenant fairness (jain): %.2f@." t.tenant_fairness;
  Format.fprintf ppf "  monitoring overhead: %a@." U.Units.pp_rate t.monitoring_overhead
