(** Heartbeat mesh: Pingmesh for the intra-host network.

    §3.1's motivating case — a silently degraded PCIe switch — "can be
    addressed by having devices on the intra-host network periodically
    send heartbeats to each other, similar to works like Pingmesh".

    Every probing device pings every other endpoint each round
    ([Probe]-class messages of 64 B). A probe {e fails} when it is lost
    to an injected fault or its RTT exceeds [rtt_factor ×] the per-pair
    baseline learned during the warm-up rounds. Failed paths feed a
    boolean-tomography localizer: links covered by failing paths but by
    no healthy path are suspects, ranked greedily by failure
    coverage. *)

type config = {
  period : Ihnet_util.Units.ns;  (** Probe round interval. *)
  rtt_factor : float;  (** Alarm when RTT > factor × baseline (e.g. 3). *)
  warmup_rounds : int;  (** Rounds used to learn baselines. *)
  probe_bytes : int;
}

val default_config : unit -> config
(** 1 ms rounds, 3× RTT alarm, 5 warm-up rounds, 64 B probes. *)

type probe_result = {
  src : Ihnet_topology.Device.id;
  dst : Ihnet_topology.Device.id;
  at : Ihnet_util.Units.ns;
  outcome : [ `Ok of Ihnet_util.Units.ns | `Slow of Ihnet_util.Units.ns | `Lost ];
}

type suspect = {
  link : Ihnet_topology.Link.id;
  bad_paths_covered : int;  (** Failing probe paths crossing this link. *)
  score : float;  (** Coverage fraction, 1.0 = explains every failure. *)
  paths_crossing : int;
      (** All probes over this link in the recent history window
          (last 8 rounds), any outcome. *)
  confidence : float;
      (** Failed fraction of [paths_crossing] — how much suspicion
          survives when the healthy crossings around a blackout round
          are counted. A dead link fails everything crossing it, so
          confidence converges to 1.0 within the window; a randomly
          lossy probe agent only surfaces on an all-paths-fail round,
          and confidence stays near its loss rate, well below 1. The
          evidence gate reads this, not [score]. *)
}

type t

val start :
  Ihnet_engine.Fabric.t -> ?config:config -> ?devices:Ihnet_topology.Device.id list -> unit -> t
(** [devices] defaults to every endpoint I/O device plus the CPU
    sockets. Probing starts immediately. *)

val stop : t -> unit

val rounds : t -> int
val results : t -> probe_result list
(** Most recent round's probe results. *)

val failing_pairs : t -> (Ihnet_topology.Device.id * Ihnet_topology.Device.id) list
(** Pairs whose last probe failed (lost or slow), post warm-up. *)

val localize : t -> suspect list
(** Boolean-tomography localization over the last round: suspects
    sorted by score, best first. Empty when nothing fails. *)

val healthy : t -> bool
(** No failures in the most recent round — goes back to [true] once a
    cleared fault stops affecting probes, so operators can watch
    recovery, not only detection. *)

val first_detection : t -> Ihnet_util.Units.ns option
(** Simulated time of the first post-warm-up probe failure, if any —
    the detection-latency metric of E6. *)

val probe_wire_bytes : t -> float
(** Cumulative fabric bytes consumed by probes ([Probe] class). *)
