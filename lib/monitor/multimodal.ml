module U = Ihnet_util

type verdict = Learning | Score of float | Alarm of float

type alarm = {
  at : U.Units.ns;
  accumulated : float;
  drivers : (string * float) list;
}

type t = {
  series : string array;
  warmup : int;
  drift : float;
  threshold : float;
  baseline : U.Stats.Online.t array;
  mutable seen : int;
  mutable accumulator : float;
  mutable alarms : alarm list; (* newest first *)
  mutable last_fed_at : float;
}

let create ?(warmup = 64) ?(drift = 0.5) ?(threshold = 8.0) ~series () =
  if series = [] then invalid_arg "Multimodal.create: empty series list";
  assert (warmup > 1 && threshold > 0.0 && drift >= 0.0);
  {
    series = Array.of_list series;
    warmup;
    drift;
    threshold;
    baseline = Array.init (List.length series) (fun _ -> U.Stats.Online.create ());
    seen = 0;
    accumulator = 0.0;
    alarms = [];
    last_fed_at = neg_infinity;
  }

let dimensions t = Array.to_list t.series

let zscores t x =
  Array.mapi
    (fun i v ->
      let mu = U.Stats.Online.mean t.baseline.(i) in
      (* sigma floor: a constant baseline dimension should not alarm on
         float dust, but a genuine shift must still register *)
      let sd =
        Float.max
          (U.Stats.Online.stddev t.baseline.(i))
          (0.01 *. Float.max 1e-9 (Float.abs mu))
      in
      (v -. mu) /. sd)
    x

(* standardized chi-square: ~N(0,1) under the baseline for moderate k *)
let distance t x =
  let z = zscores t x in
  let k = float_of_int (Array.length z) in
  let sum = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 z in
  (sum -. k) /. sqrt (2.0 *. k)

let score t x = if t.seen < t.warmup then None else Some (distance t x)

let observe t ~at x =
  if Array.length x <> Array.length t.series then
    invalid_arg "Multimodal.observe: arity mismatch";
  t.seen <- t.seen + 1;
  if t.seen <= t.warmup then begin
    Array.iteri (fun i v -> U.Stats.Online.add t.baseline.(i) v) x;
    Learning
  end
  else begin
    let d = distance t x in
    t.accumulator <- Float.max 0.0 (t.accumulator +. d -. t.drift);
    if t.accumulator > t.threshold then begin
      let s = t.accumulator in
      t.accumulator <- 0.0;
      let drivers =
        let z = zscores t x in
        Array.to_list (Array.mapi (fun i v -> (t.series.(i), Float.abs v)) z)
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i (_, z) -> i < 5 && z > 1.0)
      in
      t.alarms <- { at; accumulated = s; drivers } :: t.alarms;
      Alarm s
    end
    else begin
      (* keep adapting on unremarkable vectors so slow drift does not
         poison the baseline *)
      if d < 1.0 then Array.iteri (fun i v -> U.Stats.Online.add t.baseline.(i) v) x;
      Score d
    end
  end

let feed t telemetry =
  let latest =
    Array.map (fun series -> Telemetry.latest telemetry ~series) t.series
  in
  if Array.exists Option.is_none latest then None
  else begin
    let samples = Array.map Option.get latest in
    let newest =
      Array.fold_left (fun acc (s : Telemetry.sample) -> Float.max acc s.Telemetry.at) 0.0 samples
    in
    (* avoid double-feeding the same tick *)
    if newest <= t.last_fed_at then None
    else begin
      t.last_fed_at <- newest;
      Some
        (observe t ~at:newest
           (Array.map (fun (s : Telemetry.sample) -> s.Telemetry.value) samples))
    end
  end

let alarms t = List.rev t.alarms
let first_alarm t = match alarms t with [] -> None | a :: _ -> Some a

let explain t x =
  if t.seen < t.warmup then []
  else begin
    let z = zscores t x in
    Array.to_list (Array.mapi (fun i v -> (t.series.(i), Float.abs v)) z)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  end
