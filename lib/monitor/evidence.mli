(** Corroboration gate between monitoring and remediation.

    Every detector in this library can lie: a stuck counter flatlines,
    a lossy probe agent accuses healthy links, a drifting PMU invents
    utilization shifts. This module fuses their per-link opinions into
    one verdict with a confidence score and only promotes a link to
    [`Corroborated] when {e independent} modalities agree (N-of-M
    quorum) — the precondition the remediation supervisor demands
    before high-cost actions ({!Ihnet_manager.Remediation.set_gate}).

    Reports live in a sliding time window and are replaced, not
    accumulated, per (link, modality): a detector repeating itself a
    thousand times is still one witness. Confidence combines reports as
    noisy-OR (independent sources). Operator-injected faults (observed
    via fabric events) count as a trusted modality by default — the
    operator knows what they injected — which preserves the PR-2
    behaviour for explicitly injected faults. *)

type modality = Operator | Heartbeat | Counter | Anomaly

val modality_label : modality -> string

type config = {
  window : Ihnet_util.Units.ns;  (** Report lifetime (sliding window). *)
  quorum : int;  (** Distinct strong modalities needed to corroborate. *)
  min_score : float;  (** Reports below this don't count toward quorum. *)
  trusted : modality list;
      (** Modalities that corroborate alone, regardless of quorum. *)
}

val default_config : unit -> config
(** 5 ms window, quorum 2, min score 0.25, trusted = [[Operator]]. *)

type t

val create : ?config:config -> Ihnet_engine.Fabric.t -> t
(** Subscribes to the fabric: operator fault injections/clears maintain
    the [Operator] modality automatically.
    @raise Invalid_argument on a non-positive window or quorum. *)

val report :
  t -> modality:modality -> link:Ihnet_topology.Link.id -> score:float -> unit
(** Record (or refresh) one modality's opinion of one link. [score] is
    clamped to [\[0,1\]]. *)

val invalidate : t -> modality:modality -> link:Ihnet_topology.Link.id -> unit
(** Withdraw a modality's report — e.g. when {!Counter.health} or
    {!Sampler.health} says the sensor behind it is itself lying. *)

val feed_heartbeat : t -> Heartbeat.suspect list -> unit
(** Report each suspect under the [Heartbeat] modality at its
    coverage-discounted {!Heartbeat.suspect.confidence} (not its raw
    score — that is the point). *)

val feed_anomaly : ?score:float -> t -> Anomaly.alarm list -> unit
(** Report alarms on ["link.<id>.*"] series under [Anomaly] (default
    score 0.9); alarms on other series are ignored. *)

val verdict :
  t ->
  Ihnet_topology.Link.id ->
  [ `Unknown | `Suspected of float | `Corroborated of float ]
(** Fused verdict for one link over the live window. [`Unknown]: no
    live reports. The payload is the noisy-OR combined confidence.
    [`Corroborated] requires a trusted modality or [quorum] distinct
    modalities at [min_score] or better. *)

val gate :
  t -> Ihnet_topology.Link.id -> [ `Unknown | `Suspected of float | `Corroborated of float ]
(** [gate t] is {!verdict} partially applied — shaped for
    {!Ihnet_manager.Remediation.set_gate}, which takes a closure so the
    manager layer stays monitor-agnostic. *)

val suspects : t -> (Ihnet_topology.Link.id * float) list
(** Every link with a live report and its combined confidence, link id
    ascending. *)

val report_count : t -> int
(** Live reports across all links (diagnostics). *)

val scan_reports :
  t -> (Ihnet_topology.Link.id * modality * float * Ihnet_util.Units.ns) list
(** Raw evidence-window contents for the scan port:
    [(link, modality, score, reported_at)] sorted by link then
    modality. A {e pure read} — expired reports are neither filtered
    nor pruned (unlike {!suspects}, which compacts the window as it
    reads), so scanning never mutates the evidence state. *)
