(** Telemetry store: bounded time series.

    One ring buffer of [(time, value)] samples per series; series are
    named strings (["link.3.fwd.util"], ["ddio.0.hit"]). The bound is
    the §3.1-Q2 "storage" half: memory is finite, old samples are
    overwritten, and {!dropped_samples} quantifies the loss. *)

type sample = { at : Ihnet_util.Units.ns; value : float }
type t

val create : ?capacity_per_series:int -> unit -> t
(** Default capacity: 1024 samples per series. *)

val record : t -> series:string -> at:Ihnet_util.Units.ns -> float -> unit

val series_names : t -> string list
val length : t -> series:string -> int

val latest : t -> series:string -> sample option
val window : t -> series:string -> since:Ihnet_util.Units.ns -> sample list
(** Samples with [at >= since], oldest first. *)

val values : t -> series:string -> float array
(** All retained values, oldest first; [||] for unknown series. *)

val rate_of_change : t -> series:string -> float option
(** Per-second derivative over the last two samples (e.g. turns a
    cumulative byte counter into bytes/s). [None] with fewer than two
    samples or zero time delta. *)

val last_update : t -> series:string -> Ihnet_util.Units.ns option
(** Timestamp of the freshest retained sample (max over [at], robust to
    clock-skewed out-of-order arrival); [None] for an empty/unknown
    series. *)

val staleness : t -> series:string -> now:Ihnet_util.Units.ns -> Ihnet_util.Units.ns option
(** [now - last_update], clamped at 0 — the per-series validity signal
    consumers check before trusting a reading. [None] when the series
    has never produced a sample (which callers should treat as the
    {e most} stale). *)

val dropped_samples : t -> int
(** Total samples lost to ring-buffer overwrite, across series. *)

val memory_samples : t -> int
(** Total samples currently retained (the store's footprint). *)

val to_csv : ?series:string list -> t -> string
(** Export retained samples as CSV ([series,at_ns,value]), ordered by
    series then time. [series] (default: all) selects which to dump —
    how an operator gets the data off the host. *)

val clear : t -> unit
