(** Telemetry store: bounded time series.

    One ring buffer of [(time, value)] samples per series; series are
    named strings (["link.3.fwd.util"], ["ddio.0.hit"]). The bound is
    the §3.1-Q2 "storage" half: memory is finite, old samples are
    overwritten, and {!dropped_samples} quantifies the loss. *)

type sample = { at : Ihnet_util.Units.ns; value : float }
type t

val create : ?capacity_per_series:int -> unit -> t
(** Default capacity: 1024 samples per series. *)

val record : t -> series:string -> at:Ihnet_util.Units.ns -> float -> unit

val series_names : t -> string list
val length : t -> series:string -> int

val latest : t -> series:string -> sample option
val window : t -> series:string -> since:Ihnet_util.Units.ns -> sample list
(** Samples with [at >= since], oldest first. *)

val values : t -> series:string -> float array
(** All retained values, oldest first; [||] for unknown series. *)

val rate_of_change : t -> series:string -> float option
(** Per-second derivative over the last two samples (e.g. turns a
    cumulative byte counter into bytes/s). [None] with fewer than two
    samples or zero time delta. *)

val last_update : t -> series:string -> Ihnet_util.Units.ns option
(** Timestamp of the freshest retained sample (max over [at], robust to
    clock-skewed out-of-order arrival); [None] for an empty/unknown
    series. *)

val staleness : t -> series:string -> now:Ihnet_util.Units.ns -> Ihnet_util.Units.ns option
(** [now - last_update], clamped at 0 — the per-series validity signal
    consumers check before trusting a reading. [None] when the series
    has never produced a sample (which callers should treat as the
    {e most} stale). *)

(** {1 Percentile snapshots}

    Latency-sketch summaries are stored as one plain sub-series per
    field ([<series>.count], [.mean], [.p50], [.p90], [.p99], [.p999],
    [.max]), so windows, CSV export, staleness tracking and anomaly
    detectors all apply to tail latency with no new machinery. *)

val pct_series : series:string -> string -> string
(** [pct_series ~series field] is the sub-series name
    [series ^ "." ^ field]. *)

val pct_fields : Ihnet_util.Sketch.snapshot -> (string * float) list
(** A snapshot decomposed into [(field, value)] pairs in pinned order
    ([count]; [mean]; [p50]; [p90]; [p99]; [p999]; [max]) — what
    {!record_pct} writes, exposed so samplers can route each field
    through their own recording funnel. *)

val record_pct :
  t -> series:string -> at:Ihnet_util.Units.ns -> Ihnet_util.Sketch.snapshot -> unit
(** Record every field of a percentile snapshot under its sub-series. *)

val latest_pct : t -> series:string -> Ihnet_util.Sketch.snapshot option
(** Reassemble the freshest snapshot from the sub-series; [None] before
    the first {!record_pct} (judged on the [.count] sub-series; fields
    individually missing — e.g. dropped by a sensor fault — read as
    [nan]). *)

val dropped_samples : t -> int
(** Total samples lost to ring-buffer overwrite, across series. *)

val memory_samples : t -> int
(** Total samples currently retained (the store's footprint). *)

val to_csv : ?series:string list -> t -> string
(** Export retained samples as CSV ([series,at_ns,value]), ordered by
    series then time. [series] (default: all) selects which to dump —
    how an operator gets the data off the host. *)

val clear : t -> unit
