module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module Sensorfault = Ihnet_engine.Sensorfault
module T = Ihnet_topology
module U = Ihnet_util

type processing =
  | Local of { cost_per_sample : U.Units.ns }
  | Ship of { collector : string; bytes_per_sample : float }

type config = {
  period : U.Units.ns;
  fidelity : Counter.fidelity;
  noise : float;
  processing : processing;
  tenants : int list;
}

let default_config () =
  {
    period = U.Units.us 100.0;
    fidelity = Counter.Hardware { max_read_hz = 10_000.0 };
    noise = 0.0;
    processing = Local { cost_per_sample = 500.0 };
    tenants = [];
  }

type t = {
  fabric : Fabric.t;
  config : config;
  counter : Counter.t;
  telemetry : Telemetry.t;
  rng : Ihnet_util.Rng.t; (* drawn from ONLY while a sensor fault is active *)
  held : (string, float) Hashtbl.t; (* stuck series -> frozen value *)
  mutable ship_flows : Flow.t list;
  mutable ticks : int;
  mutable cpu : float;
  mutable stopped : bool;
}

let dir_label = function T.Link.Fwd -> "fwd" | T.Link.Rev -> "rev"
let util_series id dir = Printf.sprintf "link.%d.%s.util" id (dir_label dir)
let bytes_series id dir = Printf.sprintf "link.%d.%s.bytes" id (dir_label dir)

let tenant_series id dir ~tenant =
  Printf.sprintf "link.%d.%s.tenant.%d.bytes" id (dir_label dir) tenant

let ddio_series ~socket = Printf.sprintf "ddio.%d.hit" socket
let latency_series id dir = Printf.sprintf "link.%d.%s.latency" id (dir_label dir)
let flow_latency_series = "flow.latency"

let sockets_of topo =
  T.Topology.find_devices topo (fun d ->
      match d.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false)
  |> List.map (fun (d : T.Device.t) -> d.T.Device.socket)

(* Number of scalar samples one tick produces. With the latency-sketch
   plane on, each (link, dir) and the flow roll-up add one percentile
   snapshot = 7 scalar fields. *)
let samples_per_tick t =
  let topo = Fabric.topology t.fabric in
  let per_link = 2 * (2 + List.length t.config.tenants) in
  let latency =
    if Fabric.latency_sketches_enabled t.fabric then
      7 * ((2 * T.Topology.link_count topo) + 1)
    else 0
  in
  (T.Topology.link_count topo * per_link) + List.length (sockets_of topo) + latency

(* When shipping, telemetry flows run from every I/O device to the
   collector, splitting the aggregate telemetry rate evenly — a fluid
   stand-in for the per-sample DMA bursts real monitoring agents issue. *)
let setup_shipping t =
  match t.config.processing with
  | Local _ -> ()
  | Ship { collector; bytes_per_sample } ->
    let topo = Fabric.topology t.fabric in
    let collector_dev =
      match T.Topology.device_by_name topo collector with
      | Some d -> d
      | None -> invalid_arg ("Sampler: no collector device " ^ collector)
    in
    let sources = T.Topology.find_devices topo T.Device.is_io_device in
    if sources <> [] then begin
      let total_rate =
        float_of_int (samples_per_tick t) *. bytes_per_sample /. (t.config.period /. 1e9)
      in
      let per_source = total_rate /. float_of_int (List.length sources) in
      t.ship_flows <-
        List.filter_map
          (fun (src : T.Device.t) ->
            match T.Routing.shortest_path topo src.T.Device.id collector_dev.T.Device.id with
            | None -> None
            | Some path ->
              Some
                (Fabric.start_flow t.fabric ~tenant:0 ~cls:Flow.Monitoring ~demand:per_source
                   ~payload_bytes:64 ~path ~size:Flow.Unbounded ()))
          sources
    end

(* Every sample funnels through here so a [Series]-scoped sensor fault
   can corrupt it. The healthy path is a plain record — no RNG draws,
   no table lookups beyond one hashtable probe — so fault-free runs
   stay bit-identical to a build without sensor faults. *)
let put t ~series ~at value =
  let sf = Fabric.sensor_fault_of t.fabric (Sensorfault.Series series) in
  if Sensorfault.is_none sf then Telemetry.record t.telemetry ~series ~at value
  else begin
    let at = at +. sf.Sensorfault.skew in
    let value =
      if sf.Sensorfault.stuck then (
        match Hashtbl.find_opt t.held series with
        | Some v -> v
        | None ->
          Hashtbl.add t.held series value;
          value)
      else value
    in
    let value = value *. sf.Sensorfault.drift in
    if U.Rng.float t.rng 1.0 < sf.Sensorfault.drop_prob then ()
    else begin
      Telemetry.record t.telemetry ~series ~at value;
      if U.Rng.float t.rng 1.0 < sf.Sensorfault.dup_prob then
        Telemetry.record t.telemetry ~series ~at value
    end
  end

let rec tick t _sim =
  if not t.stopped then begin
    let topo = Fabric.topology t.fabric in
    let now = Fabric.now t.fabric in
    List.iter
      (fun (l : T.Link.t) ->
        List.iter
          (fun dir ->
            let r = Counter.read t.counter l.T.Link.id dir ~tenants:t.config.tenants in
            put t ~series:(util_series l.T.Link.id dir) ~at:now r.Counter.utilization;
            put t ~series:(bytes_series l.T.Link.id dir) ~at:now r.Counter.wire_bytes;
            List.iter
              (fun (tn, b) ->
                put t ~series:(tenant_series l.T.Link.id dir ~tenant:tn) ~at:now b)
              r.Counter.per_tenant)
          [ T.Link.Fwd; T.Link.Rev ])
      (T.Topology.links topo);
    List.iter
      (fun s ->
        match Counter.ddio_hit_rate t.counter ~socket:s with
        | Some h -> put t ~series:(ddio_series ~socket:s) ~at:now h
        | None -> ())
      (sockets_of topo);
    (* Latency percentiles, one sub-series per field so each funnels
       through [put] and stays individually corruptible by a
       [Series]-scoped sensor fault. Dormant sketch plane: zero work. *)
    if Fabric.latency_sketches_enabled t.fabric then begin
      let put_pct ~base sk =
        if U.Sketch.count sk > 0 then
          List.iter
            (fun (f, v) -> put t ~series:(Telemetry.pct_series ~series:base f) ~at:now v)
            (Telemetry.pct_fields (U.Sketch.snapshot sk))
      in
      List.iter
        (fun (l : T.Link.t) ->
          List.iter
            (fun dir ->
              match Fabric.link_latency_sketch t.fabric l.T.Link.id dir with
              | Some sk -> put_pct ~base:(latency_series l.T.Link.id dir) sk
              | None -> ())
            [ T.Link.Fwd; T.Link.Rev ])
        (T.Topology.links topo);
      match Fabric.flow_latency_sketch t.fabric with
      | Some sk -> put_pct ~base:flow_latency_series sk
      | None -> ()
    end;
    t.ticks <- t.ticks + 1;
    (match t.config.processing with
    | Local { cost_per_sample } ->
      t.cpu <- t.cpu +. (cost_per_sample *. float_of_int (samples_per_tick t))
    | Ship _ -> ());
    Sim.schedule (Fabric.sim t.fabric) ~after:t.config.period (tick t)
  end

let start fabric ?telemetry config =
  assert (config.period > 0.0);
  let t =
    {
      fabric;
      config;
      counter = Counter.create ~noise:config.noise fabric ~fidelity:config.fidelity;
      telemetry = (match telemetry with Some tm -> tm | None -> Telemetry.create ());
      (* split off a COPY: deriving from the shared stream directly
         would advance it and perturb every later consumer's draws
         (heartbeat streams etc.) even in fault-free runs *)
      rng = U.Rng.split (U.Rng.copy (Fabric.rng fabric));
      held = Hashtbl.create 8;
      ship_flows = [];
      ticks = 0;
      cpu = 0.0;
      stopped = false;
    }
  in
  setup_shipping t;
  Sim.schedule (Fabric.sim fabric) ~after:config.period (tick t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter (Fabric.stop_flow t.fabric) t.ship_flows;
    t.ship_flows <- []
  end

let telemetry t = t.telemetry
let counter t = t.counter
let ticks t = t.ticks
let cpu_time_consumed t = t.cpu

let shipping_rate t =
  List.fold_left (fun acc (f : Flow.t) -> acc +. f.Flow.rate) 0.0 t.ship_flows

(* Series-level plausibility: same physics as {!Counter.health} but
   judged over the retained telemetry, so it also catches corruption
   introduced between the counter and the store (the sampler's own
   sensor faults). Computed on demand — ticks stay cheap. *)
let health t =
  let topo = Fabric.topology t.fabric in
  let found = ref [] in
  List.iter
    (fun (l : T.Link.t) ->
      List.iter
        (fun dir ->
          let id = l.T.Link.id in
          let bytes =
            Telemetry.window t.telemetry ~series:(bytes_series id dir) ~since:neg_infinity
          in
          let nominal = l.T.Link.capacity in
          let rec out_of_range = function
            | (a : Telemetry.sample) :: (b :: _ as rest) ->
              let dt_s = (b.Telemetry.at -. a.Telemetry.at) /. 1e9 in
              if
                dt_s > 0.0
                && b.Telemetry.value -. a.Telemetry.value > (nominal *. dt_s *. 1.05) +. 1.0
              then true
              else out_of_range rest
            | _ -> false
          in
          let flatline =
            match List.rev bytes with
            | c :: b :: a :: _
              when c.Telemetry.value = b.Telemetry.value
                   && b.Telemetry.value = a.Telemetry.value ->
              (* constant bytes are only suspicious while the link shows load *)
              let utils = Telemetry.values t.telemetry ~series:(util_series id dir) in
              let n = Array.length utils in
              let k = min 3 n in
              k > 0
              &&
              let s = ref 0.0 in
              for i = n - k to n - 1 do
                s := !s +. utils.(i)
              done;
              !s /. float_of_int k > 0.02
            | _ -> false
          in
          if out_of_range bytes then found := (id, dir, `Out_of_range) :: !found;
          if flatline then found := (id, dir, `Flatline) :: !found)
        [ T.Link.Fwd; T.Link.Rev ])
    (T.Topology.links topo);
  List.sort_uniq compare !found

let monitoring_wire_bytes t =
  let topo = Fabric.topology t.fabric in
  List.fold_left
    (fun acc (l : T.Link.t) ->
      acc
      +. Fabric.cls_link_bytes t.fabric l.T.Link.id T.Link.Fwd ~cls:Flow.Monitoring
      +. Fabric.cls_link_bytes t.fabric l.T.Link.id T.Link.Rev ~cls:Flow.Monitoring)
    0.0 (T.Topology.links topo)
