(** Anomaly-detection platform (§3.1): streaming detectors over
    telemetry series plus static misconfiguration checks.

    "A platform to analyze monitoring results holistically, enabling
    device failure, misconfiguration, and performance anomaly
    detection." Detectors are deliberately simple, well-understood
    statistics — threshold, EWMA deviation, CUSUM — because the
    interesting question (Q3) is what data they get to see, which is
    decided by the {!Counter.fidelity} and {!Sampler} period feeding
    the telemetry. *)

type detector =
  | Threshold of { above : float option; below : float option }
      (** Alarm when a sample crosses a static bound. *)
  | Ewma_deviation of { alpha : float; k : float }
      (** Alarm when a sample deviates more than [k] running standard
          deviations from the EWMA. *)
  | Cusum of { drift : float; threshold : float }
      (** Alarm on small persistent shifts of the series mean. *)

type alarm = {
  at : Ihnet_util.Units.ns;  (** Timestamp of the offending sample. *)
  series : string;
  value : float;
  reason : string;  (** Human-readable, e.g. ["cusum up-shift"]. *)
}

type t

val create : unit -> t

val watch : t -> series:string -> detector -> unit
(** Multiple detectors per series are allowed. *)

val watch_tail :
  t -> series:string -> ?p99_above:float -> ?p999_above:float -> unit -> unit
(** Install {!Threshold} detectors on the [.p99] / [.p999] sub-series
    of a latency-percentile snapshot (see {!Telemetry.pct_series}) —
    the tail-latency alarm over a {!Sampler.latency_series} or
    {!Sampler.flow_latency_series}. Omitted bounds install nothing. *)

val observe : t -> series:string -> at:Ihnet_util.Units.ns -> float -> unit
(** Feed one sample directly to the detectors watching [series]. *)

val feed : t -> Telemetry.t -> unit
(** Feed every watched series' samples not yet processed (tracked per
    series by timestamp). Call after each sampler tick, or less often —
    detection latency then includes the feeding cadence. *)

val alarms : t -> alarm list
(** All alarms so far, oldest first. *)

val alarms_for : t -> series:string -> alarm list
val first_alarm : t -> alarm option
val clear_alarms : t -> unit

(** {1 Static misconfiguration checks}

    The monitor-for-configuration of §3.1: inspects the host
    configuration and topology for known-bad settings. *)

val check_configuration : Ihnet_topology.Topology.t -> string list
(** Empty when clean; otherwise one message per finding, e.g. a NIC
    whose inter-host port outruns its PCIe slot, DDIO disabled with
    fast NICs present, a tiny IOTLB, ACS forcing P2P through the root
    complex, deep interrupt moderation, or an oversubscribed PCIe
    switch. *)
