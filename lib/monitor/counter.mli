(** Counter sources with an explicit fidelity model.

    §3.1-Q1 — "Informative data and where to find them?": hardware
    counters (Intel PCM/RDT-style) are informative but coarse — device
    aggregates only, no per-tenant attribution, limited read frequency;
    software interception is fine-grained but only sees what software
    can see. This module is the {e only} way the monitoring system may
    observe the fabric, and the chosen fidelity decides which of the
    fabric's counters are visible and how often they may be read. *)

type fidelity =
  | Hardware of { max_read_hz : float }
      (** PCM/RDT-class counters: per-link wire bytes and utilization,
          no per-tenant breakdown, reads above [max_read_hz] return
          stale values (the previous reading). *)
  | Software
      (** Interception-based: per-tenant and per-class attribution, no
          read-rate limit, but blind to induced traffic the hardware
          generates on its own (DDIO spill is invisible). *)
  | Oracle
      (** Full visibility, unlimited rate — an upper bound used to
          quantify what the realistic sources miss. *)

type reading = {
  at : Ihnet_util.Units.ns;
  wire_bytes : float;  (** Cumulative bytes on the link direction. *)
  utilization : float;
      (** Current rate over the link's {e nominal} capacity — a
          silently degraded link does not report its shrunken effective
          capacity to any counter (the §3.1 motivating case). *)
  per_tenant : (int * float) list;
      (** Cumulative per-tenant bytes; [] when the fidelity hides it. *)
  induced_bytes : float;
      (** Cumulative DDIO-induced bytes; 0 when invisible. *)
}

type t

val create : ?noise:float -> Ihnet_engine.Fabric.t -> fidelity:fidelity -> t
(** [noise] (default 0) is the absolute standard deviation, in
    utilization points, of Gaussian measurement noise applied to
    utilization and hit-rate readings — real PMU reads are noisy, and
    detector comparisons are only meaningful against that noise.
    Deterministic per fabric seed. *)

val fidelity : t -> fidelity
val fabric : t -> Ihnet_engine.Fabric.t

val read :
  t -> Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> tenants:int list -> reading
(** Read the counters of one link direction. Under [Hardware] fidelity,
    reads faster than [max_read_hz] return the cached previous reading
    (stale timestamps included) — exactly how rate-limited PMU access
    behaves. *)

val ddio_hit_rate : t -> socket:int -> float option
(** LLC I/O-way hit rate; [None] under [Software] fidelity (no CPU
    uncore access). *)

val reads_issued : t -> int
(** Total counter reads issued (for overhead accounting). *)

val health : t -> (Ihnet_topology.Link.id * [ `Flatline | `Out_of_range ]) list
(** Links whose {e reported} readings have ever violated a plausibility
    bound, sorted and deduplicated. [`Out_of_range]: a byte delta
    exceeding nominal capacity x elapsed time (or going backwards) —
    only an over-reading (drifting/duplicated) sensor can produce it.
    [`Flatline]: three consecutive reads with zero byte delta while the
    same counter claims >= 2% utilization — a stuck sensor. Both checks
    run on what the counter {e returned}, never on fabric internals, so
    they are legitimate monitor-side self-diagnostics. *)
