(** Multivariate (learned) anomaly detection over heterogeneous
    telemetry — §3.1-Q3.

    "Intra-host networks are more heterogeneous, so the collected data
    will have more modalities (e.g., DDIO cache usage, and PCIe
    bandwidth consumption). This means using machine learning may be
    more essential in order to leverage these high-modality data for
    diagnosis than that in inter-host networks."

    The detector learns a per-dimension Gaussian baseline over a
    feature vector assembled from several telemetry series, then scores
    each new vector with the {e standardized chi-square statistic}

    [d(x) = (Σᵢ zᵢ² − k) / √(2k)]   where   [zᵢ = (xᵢ − μᵢ)/σᵢ],

    which is ≈ N(0,1) under the baseline regardless of the number of
    dimensions [k], and accumulates it over time CUSUM-style
    ([S ← max(0, S + d − drift)], alarm at [S > threshold]). A
    composite anomaly that shifts many modalities by ~1σ each — too
    subtle for any single-series detector — still lifts [d] because
    evidence {e sums across dimensions}, and the accumulator turns a
    persistent small lift into an alarm within a few samples. E12
    measures this against per-series CUSUM. *)

type verdict =
  | Learning  (** Still inside the warm-up window. *)
  | Score of float  (** Instantaneous standardized distance; no alarm. *)
  | Alarm of float  (** The accumulator crossed the threshold. *)

type t

val create :
  ?warmup:int -> ?drift:float -> ?threshold:float -> series:string list -> unit -> t
(** [warmup] baseline vectors (default 64); [drift] per-sample slack on
    the accumulated distance (default 0.5); [threshold] on the
    accumulator (default 8.0); [series] the telemetry series forming
    the feature vector, in order.
    @raise Invalid_argument on an empty series list. *)

val dimensions : t -> string list

val observe : t -> at:Ihnet_util.Units.ns -> float array -> verdict
(** Feed one feature vector (same arity and order as [series]). After
    an alarm the accumulator resets.
    @raise Invalid_argument on an arity mismatch. *)

val feed : t -> Telemetry.t -> verdict option
(** Assemble the current vector from the latest sample of each series
    and {!observe} it. [None] when some series has no data yet or no
    series advanced since the last call. Call once per sampler tick. *)

val score : t -> float array -> float option
(** Instantaneous standardized distance of a vector under the learned
    baseline, without updating state; [None] during warm-up. *)

type alarm = {
  at : Ihnet_util.Units.ns;
  accumulated : float;  (** Accumulator value when it crossed. *)
  drivers : (string * float) list;
      (** Per-dimension |z|-scores of the offending vector, largest
          first — captured {e at alarm time}, before the baseline
          re-adapts. *)
}

val alarms : t -> alarm list
(** All alarms so far, oldest first. *)

val first_alarm : t -> alarm option

val explain : t -> float array -> (string * float) list
(** Per-dimension |z|-scores of a vector, largest first — which
    modalities drive the anomaly. Empty during warm-up. *)
