module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module T = Ihnet_topology
module U = Ihnet_util

let dev fabric name =
  match T.Topology.device_by_name (Fabric.topology fabric) name with
  | Some d -> d.T.Device.id
  | None -> invalid_arg ("Diagnostics: no device " ^ name)

let route fabric a b =
  match T.Routing.shortest_path (Fabric.topology fabric) a b with
  | Some p when p.T.Path.hops <> [] -> p
  | Some _ -> invalid_arg "Diagnostics: src equals dst"
  | None -> invalid_arg "Diagnostics: no route"

let reverse (p : T.Path.t) =
  {
    T.Path.src = p.T.Path.dst;
    dst = p.T.Path.src;
    hops =
      List.rev_map
        (fun (h : T.Path.hop) -> { h with T.Path.dir = T.Link.opposite h.T.Path.dir })
        p.T.Path.hops;
  }

(* {1 ihping} *)

type ping_report = { mutable sent : int; mutable lost : int; rtts : U.Histogram.t }

let rtt_of fabric ~probe_bytes p =
  Fabric.path_latency fabric ~payload_bytes:probe_bytes p
  +. Fabric.path_latency fabric ~payload_bytes:probe_bytes (reverse p)

let ping fabric ~src ~dst ?(count = 10) ?(interval = U.Units.us 100.0) ?(probe_bytes = 64)
    ?on_done () =
  assert (count > 0 && interval > 0.0);
  let p = route fabric (dev fabric src) (dev fabric dst) in
  let report = { sent = 0; lost = 0; rtts = U.Histogram.create () } in
  let rng = U.Rng.split (Fabric.rng fabric) in
  let sim = Fabric.sim fabric in
  let rec probe _ =
    report.sent <- report.sent + 1;
    let loss = Fabric.probe_loss_prob fabric p in
    if U.Rng.float rng 1.0 < loss then report.lost <- report.lost + 1
    else U.Histogram.add report.rtts (rtt_of fabric ~probe_bytes p);
    if report.sent < count then Sim.schedule sim ~after:interval probe
    else match on_done with Some cb -> cb report | None -> ()
  in
  Sim.schedule sim ~after:0.0 probe;
  report

let ping_once fabric ~src ~dst =
  let p = route fabric (dev fabric src) (dev fabric dst) in
  if Fabric.probe_loss_prob fabric p >= 1.0 then None
  else Some (rtt_of fabric ~probe_bytes:64 p)

(* {1 ihtrace} *)

type trace_hop = {
  hop_device : string;
  link_kind : string;
  figure1_class : int option;
  base_latency : U.Units.ns;
  loaded_latency : U.Units.ns;
  utilization : float;
}

let trace fabric ~src ~dst =
  let topo = Fabric.topology fabric in
  let p = route fabric (dev fabric src) (dev fabric dst) in
  List.map
    (fun (hop : T.Path.hop) ->
      let l = hop.T.Path.link in
      let entered =
        match hop.T.Path.dir with T.Link.Fwd -> l.T.Link.b | T.Link.Rev -> l.T.Link.a
      in
      let u = Fabric.link_utilization fabric l.T.Link.id hop.T.Path.dir in
      let fault = Fabric.fault_of fabric l.T.Link.id in
      {
        hop_device = (T.Topology.device topo entered).T.Device.name;
        link_kind = T.Link.kind_label l.T.Link.kind;
        figure1_class = T.Topology.figure1_class topo l;
        base_latency = l.T.Link.base_latency;
        loaded_latency =
          Ihnet_engine.Latency.hop_latency ~base:l.T.Link.base_latency ~utilization:u
            ~extra:fault.Ihnet_engine.Fault.extra_latency ();
        utilization = u;
      })
    p.T.Path.hops

(* {1 ihperf} *)

type perf_report = {
  duration : U.Units.ns;
  bytes_moved : float;
  achieved_rate : float;
  bottleneck : (T.Link.id * float) option;
}

let perf fabric ~src ~dst ?(duration = U.Units.ms 10.0) ?on_done () =
  assert (duration > 0.0);
  let p = route fabric (dev fabric src) (dev fabric dst) in
  let flow = Fabric.start_flow fabric ~tenant:0 ~cls:Flow.Probe ~path:p ~size:Flow.Unbounded () in
  let sim = Fabric.sim fabric in
  Sim.schedule sim ~after:duration (fun _ ->
      let bottleneck =
        List.fold_left
          (fun acc (hop : T.Path.hop) ->
            let u = Fabric.link_utilization fabric hop.T.Path.link.T.Link.id hop.T.Path.dir in
            match acc with
            | Some (_, best) when best >= u -> acc
            | _ -> Some (hop.T.Path.link.T.Link.id, u))
          None p.T.Path.hops
      in
      Fabric.stop_flow fabric flow;
      let bytes = flow.Flow.transferred in
      let report =
        {
          duration;
          bytes_moved = bytes;
          achieved_rate = bytes /. (duration /. 1e9);
          bottleneck;
        }
      in
      match on_done with Some cb -> cb report | None -> ())

let perf_now fabric ~src ~dst =
  let p = route fabric (dev fabric src) (dev fabric dst) in
  match Fabric.transfer_time fabric ~path:p ~bytes:1e9 with
  | None -> 0.0
  | Some t -> 1e9 /. (t /. 1e9)

(* {1 ihdump} *)

type captured_flow = {
  flow_id : int;
  tenant : int;
  cls : string;
  rate : float;
  src_dev : string;
  dst_dev : string;
}

let dump fabric ~link ?dir () =
  let topo = Fabric.topology fabric in
  let name id = (T.Topology.device topo id).T.Device.name in
  let crosses (f : Flow.t) =
    List.exists
      (fun (h : T.Path.hop) ->
        h.T.Path.link.T.Link.id = link
        && match dir with None -> true | Some d -> h.T.Path.dir = d)
      f.Flow.path.T.Path.hops
  in
  Fabric.active_flows fabric
  |> List.filter crosses
  |> List.map (fun (f : Flow.t) ->
         {
           flow_id = f.Flow.id;
           tenant = f.Flow.tenant;
           cls = Flow.cls_label f.Flow.cls;
           rate = f.Flow.rate;
           src_dev = name f.Flow.path.T.Path.src;
           dst_dev = name f.Flow.path.T.Path.dst;
         })
  |> List.sort (fun a b -> compare b.rate a.rate)
