module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sim = Ihnet_engine.Sim
module Sensorfault = Ihnet_engine.Sensorfault
module T = Ihnet_topology
module U = Ihnet_util

type config = {
  period : U.Units.ns;
  rtt_factor : float;
  warmup_rounds : int;
  probe_bytes : int;
}

let default_config () =
  { period = U.Units.ms 1.0; rtt_factor = 3.0; warmup_rounds = 5; probe_bytes = 64 }

type probe_result = {
  src : T.Device.id;
  dst : T.Device.id;
  at : U.Units.ns;
  outcome : [ `Ok of U.Units.ns | `Slow of U.Units.ns | `Lost ];
}

type suspect = {
  link : T.Link.id;
  bad_paths_covered : int;
  score : float;
  paths_crossing : int;
  confidence : float;
}

type pair = {
  p_src : T.Device.id;
  p_dst : T.Device.id;
  path : T.Path.t;
  baseline : U.Stats.Online.t;
  mutable load_flow : Flow.t option;
}

(* confidence horizon: a suspect's confidence is the failed fraction of
   probes crossing it over this many recent rounds, so one unlucky
   blackout round is discounted by the healthy crossings around it *)
let history_rounds = 8

type t = {
  fabric : Fabric.t;
  config : config;
  pairs : pair list;
  rng : U.Rng.t;
  mutable rounds : int;
  mutable last_round : probe_result list;
  mutable history : probe_result list list;
  mutable first_detection : U.Units.ns option;
  mutable stopped : bool;
}

let default_devices topo =
  T.Topology.find_devices topo (fun d ->
      T.Device.is_io_device d
      || match d.T.Device.kind with T.Device.Cpu_socket _ -> true | _ -> false)
  |> List.map (fun (d : T.Device.t) -> d.T.Device.id)

let rtt t (pair : pair) =
  let fwd =
    Fabric.path_latency t.fabric ~payload_bytes:t.config.probe_bytes pair.path
  in
  (* the reverse direction sees its own utilization *)
  let rev_path =
    { T.Path.src = pair.path.T.Path.dst; dst = pair.path.T.Path.src;
      hops =
        List.rev_map
          (fun (h : T.Path.hop) -> { h with T.Path.dir = T.Link.opposite h.T.Path.dir })
          pair.path.T.Path.hops }
  in
  let rev = Fabric.path_latency t.fabric ~payload_bytes:t.config.probe_bytes rev_path in
  fwd +. rev

let rec round t _sim =
  if not t.stopped then begin
    let now = Fabric.now t.fabric in
    let results =
      List.map
        (fun pair ->
          let loss = Fabric.probe_loss_prob t.fabric pair.path in
          let outcome =
            if U.Rng.float t.rng 1.0 < loss then `Lost
            else begin
              let sample = rtt t pair in
              if t.rounds < t.config.warmup_rounds then begin
                U.Stats.Online.add pair.baseline sample;
                `Ok sample
              end
              else begin
                let base = U.Stats.Online.mean pair.baseline in
                if Float.is_nan base || sample <= t.config.rtt_factor *. base then `Ok sample
                else `Slow sample
              end
            end
          in
          (* a corrupted probe agent at either endpoint falsifies the
             verdict; RNG drawn from only when a fault is present, so
             fault-free runs are bit-identical *)
          let sf =
            Sensorfault.merge
              (Fabric.device_sensor_fault t.fabric pair.p_src)
              (Fabric.device_sensor_fault t.fabric pair.p_dst)
          in
          let outcome =
            if sf.Sensorfault.probe_loss = 0.0 && sf.Sensorfault.probe_slow = 0.0 then outcome
            else if U.Rng.float t.rng 1.0 < sf.Sensorfault.probe_loss then `Lost
            else if U.Rng.float t.rng 1.0 < sf.Sensorfault.probe_slow then (
              match outcome with
              | `Ok s -> `Slow (s *. (t.config.rtt_factor +. 1.0))
              | o -> o)
            else outcome
          in
          (match outcome with
          | (`Lost | `Slow _) when t.rounds >= t.config.warmup_rounds ->
            if t.first_detection = None then t.first_detection <- Some now
          | `Lost | `Slow _ | `Ok _ -> ());
          { src = pair.p_src; dst = pair.p_dst; at = now; outcome })
        t.pairs
    in
    t.last_round <- results;
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    t.history <- results :: take (history_rounds - 1) t.history;
    t.rounds <- t.rounds + 1;
    Sim.schedule (Fabric.sim t.fabric) ~after:t.config.period (round t)
  end

let start fabric ?(config = default_config ()) ?devices () =
  assert (config.period > 0.0 && config.rtt_factor > 1.0 && config.warmup_rounds >= 1);
  let topo = Fabric.topology fabric in
  let devices = match devices with Some ds -> ds | None -> default_devices topo in
  let probe_rate = float_of_int config.probe_bytes /. (config.period /. 1e9) in
  let pairs =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst ->
            if src = dst then None
            else
              match T.Routing.shortest_path topo src dst with
              | None -> None
              | Some path when path.T.Path.hops = [] -> None
              | Some path ->
                (* a persistent trickle represents the probe traffic on
                   the fabric; measurements themselves are analytic *)
                let load_flow =
                  Fabric.start_flow fabric ~tenant:0 ~cls:Flow.Probe ~demand:probe_rate
                    ~payload_bytes:config.probe_bytes ~path ~size:Flow.Unbounded ()
                in
                Some
                  {
                    p_src = src;
                    p_dst = dst;
                    path;
                    baseline = U.Stats.Online.create ();
                    load_flow = Some load_flow;
                  })
          devices)
      devices
  in
  let t =
    {
      fabric;
      config;
      pairs;
      rng = U.Rng.split (Fabric.rng fabric);
      rounds = 0;
      last_round = [];
      history = [];
      first_detection = None;
      stopped = false;
    }
  in
  (* first round fires immediately: baselines want an idle-ish fabric *)
  Sim.schedule (Fabric.sim fabric) ~after:0.0 (round t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter
      (fun p ->
        match p.load_flow with
        | Some f ->
          Fabric.stop_flow t.fabric f;
          p.load_flow <- None
        | None -> ())
      t.pairs
  end

let rounds t = t.rounds
let results t = t.last_round

let is_failure = function `Lost | `Slow _ -> true | `Ok _ -> false

let failing_pairs t =
  List.filter_map
    (fun r -> if is_failure r.outcome then Some (r.src, r.dst) else None)
    t.last_round

let path_of t src dst =
  List.find_opt (fun p -> p.p_src = src && p.p_dst = dst) t.pairs
  |> Option.map (fun p -> p.path)

let localize t =
  let bad, good =
    List.partition (fun r -> is_failure r.outcome) t.last_round
  in
  if bad = [] then []
  else begin
    let links_memo = Hashtbl.create 64 in
    let links_of src dst =
      match Hashtbl.find_opt links_memo (src, dst) with
      | Some ls -> ls
      | None ->
        let ls =
          match path_of t src dst with
          | Some p -> List.map (fun (l : T.Link.t) -> l.T.Link.id) (T.Path.links p)
          | None -> []
        in
        Hashtbl.add links_memo (src, dst) ls;
        ls
    in
    let exonerated = Hashtbl.create 32 in
    List.iter
      (fun r -> List.iter (fun l -> Hashtbl.replace exonerated l ()) (links_of r.src r.dst))
      good;
    let bad_paths = List.map (fun r -> links_of r.src r.dst) bad in
    let total_bad = List.length bad_paths in
    (* coverage-discounted confidence: the failed fraction of every
       probe crossing the link over the recent history window. A
       genuinely dead link fails all of them (confidence -> 1 within
       [history_rounds]); a randomly lossy probe agent only produces a
       suspect on a blackout round, and the healthy crossings in the
       rounds around it pull confidence down toward the loss rate. *)
    let hist = List.concat t.history in
    let hist_crossing link =
      List.fold_left
        (fun (cross, failed) r ->
          if List.mem link (links_of r.src r.dst) then
            (cross + 1, if is_failure r.outcome then failed + 1 else failed)
          else (cross, failed))
        (0, 0) hist
    in
    let mk link c =
      let cross, failed = hist_crossing link in
      {
        link;
        bad_paths_covered = c;
        score = float_of_int c /. float_of_int total_bad;
        paths_crossing = cross;
        confidence = float_of_int failed /. float_of_int (max 1 cross);
      }
    in
    (* greedy set cover over non-exonerated links *)
    let candidates =
      List.concat bad_paths
      |> List.filter (fun l -> not (Hashtbl.mem exonerated l))
      |> List.sort_uniq compare
    in
    let uncovered = ref bad_paths in
    let picked = ref [] in
    let continue = ref true in
    while !continue && !uncovered <> [] do
      let best =
        List.fold_left
          (fun acc link ->
            let cover = List.length (List.filter (List.mem link) !uncovered) in
            match acc with
            | Some (_, c) when c >= cover -> acc
            | _ when cover = 0 -> acc
            | _ -> Some (link, cover))
          None
          (List.filter (fun l -> not (List.mem_assoc l !picked)) candidates)
      in
      match best with
      | None -> continue := false
      | Some (link, cover) ->
        picked := (link, cover) :: !picked;
        uncovered := List.filter (fun p -> not (List.mem link p)) !uncovered
    done;
    (* score every candidate by raw coverage, greedy picks first *)
    let coverage link = List.length (List.filter (List.mem link) bad_paths) in
    let greedy = List.rev_map (fun (link, _) -> mk link (coverage link)) !picked in
    let rest =
      candidates
      |> List.filter (fun l -> not (List.mem_assoc l !picked))
      |> List.map (fun link -> mk link (coverage link))
    in
    List.sort (fun a b -> compare b.score a.score) (greedy @ rest)
  end

let healthy t = not (List.exists (fun r -> is_failure r.outcome) t.last_round)
let first_detection t = t.first_detection

let probe_wire_bytes t =
  let topo = Fabric.topology t.fabric in
  List.fold_left
    (fun acc (l : T.Link.t) ->
      acc
      +. Fabric.cls_link_bytes t.fabric l.T.Link.id T.Link.Fwd ~cls:Flow.Probe
      +. Fabric.cls_link_bytes t.fabric l.T.Link.id T.Link.Rev ~cls:Flow.Probe)
    0.0 (T.Topology.links topo)
