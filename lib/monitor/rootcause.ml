module T = Ihnet_topology

type snapshot = {
  at : float;
  tenants : int list;
  bytes : (int * int * int, float) Hashtbl.t; (* (link, dir index, tenant) -> bytes *)
  induced : (int * int, float) Hashtbl.t; (* (link, dir index) -> induced bytes *)
}

let dir_index = function T.Link.Fwd -> 0 | T.Link.Rev -> 1

(* One Counter.read per link direction; what it contains is the
   fidelity's decision. *)
let snapshot counter ~tenants =
  let fabric = Counter.fabric counter in
  let topo = Ihnet_engine.Fabric.topology fabric in
  let bytes = Hashtbl.create 64 in
  let induced = Hashtbl.create 32 in
  let at = ref 0.0 in
  List.iter
    (fun (l : T.Link.t) ->
      List.iter
        (fun dir ->
          let r = Counter.read counter l.T.Link.id dir ~tenants in
          at := Float.max !at r.Counter.at;
          List.iter
            (fun (tn, b) -> Hashtbl.replace bytes (l.T.Link.id, dir_index dir, tn) b)
            r.Counter.per_tenant;
          Hashtbl.replace induced (l.T.Link.id, dir_index dir) r.Counter.induced_bytes)
        [ T.Link.Fwd; T.Link.Rev ])
    (T.Topology.links topo);
  { at = !at; tenants; bytes; induced }

type culprit = {
  link : T.Link.id;
  dir : T.Link.dir;
  utilization : float;
  contributors : (int * float) list;
}

let diagnose counter ~before ~after ~victim_path =
  if after.at <= before.at then invalid_arg "Rootcause.diagnose: snapshots out of order";
  let dt_s = (after.at -. before.at) /. 1e9 in
  let delta tbl key =
    let get (t : (_, float) Hashtbl.t) = Option.value ~default:0.0 (Hashtbl.find_opt t key) in
    (get (tbl after) -. get (tbl before)) /. dt_s
  in
  let culprits =
    List.map
      (fun (hop : T.Path.hop) ->
        let link = hop.T.Path.link.T.Link.id in
        let dir = hop.T.Path.dir in
        let contributors =
          List.filter_map
            (fun tn ->
              let rate = delta (fun s -> s.bytes) (link, dir_index dir, tn) in
              if rate > 1.0 then Some (tn, rate) else None)
            after.tenants
        in
        let induced_rate = delta (fun s -> s.induced) (link, dir_index dir) in
        let contributors =
          if induced_rate > 1.0 then (-1, induced_rate) :: contributors else contributors
        in
        let reading = Counter.read counter link dir ~tenants:[] in
        {
          link;
          dir;
          utilization = reading.Counter.utilization;
          contributors = List.sort (fun (_, a) (_, b) -> compare b a) contributors;
        })
      victim_path.T.Path.hops
  in
  List.sort (fun a b -> compare b.utilization a.utilization) culprits

let top_aggressor = function
  | [] -> None
  | top :: _ -> List.find_opt (fun (tn, _) -> tn >= 0) top.contributors
