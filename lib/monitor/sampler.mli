(** Periodic counter sampling into the telemetry store, with explicit
    overhead accounting.

    §3.1-Q2 — "The dilemma of storage and processing": monitoring data
    must go somewhere. Either it is processed {e locally} on the device
    (consuming its scarce compute) or {e shipped} across the very
    fabric being monitored (consuming PCIe/memory bandwidth as
    [Monitoring]-class flows). Both costs are measured here, and E7
    sweeps the sampling period against them and against detection
    latency. *)

type processing =
  | Local of { cost_per_sample : Ihnet_util.Units.ns }
      (** On-device aggregation: each sample costs device compute. *)
  | Ship of { collector : string; bytes_per_sample : float }
      (** Raw samples are DMA'd to the collector device (a CPU socket);
          the sampler maintains [Monitoring]-class flows from every
          I/O device toward it, sized to the telemetry rate. *)

type config = {
  period : Ihnet_util.Units.ns;  (** Sampling interval. *)
  fidelity : Counter.fidelity;
  noise : float;  (** Relative counter-read noise (see {!Counter.create}). *)
  processing : processing;
  tenants : int list;  (** Tenants to attribute (fine fidelity only). *)
}

val default_config : unit -> config
(** 100 µs period, hardware fidelity at 10 kHz, local processing at
    500 ns/sample, no tenant attribution. *)

type t

val start : Ihnet_engine.Fabric.t -> ?telemetry:Telemetry.t -> config -> t
(** Begins ticking immediately (first tick one period from now). *)

val stop : t -> unit

val telemetry : t -> Telemetry.t
val counter : t -> Counter.t
val ticks : t -> int

val cpu_time_consumed : t -> Ihnet_util.Units.ns
(** Total device compute burned by local processing. *)

val shipping_rate : t -> float
(** Current aggregate telemetry-shipping rate (bytes/s); 0 for local
    processing. *)

val monitoring_wire_bytes : t -> float
(** Cumulative fabric bytes consumed by [Monitoring]-class traffic —
    the monitor's own footprint on the network it watches. *)

val health :
  t ->
  (Ihnet_topology.Link.id * Ihnet_topology.Link.dir * [ `Flatline | `Out_of_range ]) list
(** Per-(link, dir) plausibility verdicts over the retained telemetry,
    computed on demand. [`Out_of_range]: some consecutive byte-counter
    delta exceeds nominal capacity x elapsed time (physically
    impossible — an over-reporting sensor). [`Flatline]: the last three
    byte samples are identical while the utilization series shows load
    (a stuck sensor). Judged purely on stored samples, so corruption
    injected anywhere between counter and store is caught. *)

(** {1 Series naming} *)

val util_series : Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> string
val bytes_series : Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> string
val tenant_series : Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> tenant:int -> string
val ddio_series : socket:int -> string

val latency_series : Ihnet_topology.Link.id -> Ihnet_topology.Link.dir -> string
(** Base name of a link's latency-percentile snapshot
    (["link.3.fwd.latency"]); fields live in [.p50]/[.p99]/… sub-series
    (see {!Telemetry.pct_series}). Sampled only while the fabric's
    latency-sketch plane is enabled, once the sketch has samples. *)

val flow_latency_series : string
(** Base name of the host-wide end-to-end flow-latency snapshot,
    recorded at flow completions (["flow.latency"]). *)
