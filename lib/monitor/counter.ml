module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module Sensorfault = Ihnet_engine.Sensorfault
module T = Ihnet_topology

type fidelity = Hardware of { max_read_hz : float } | Software | Oracle

type reading = {
  at : Ihnet_util.Units.ns;
  wire_bytes : float;
  utilization : float;
  per_tenant : (int * float) list;
  induced_bytes : float;
}

type t = {
  fabric : Fabric.t;
  fidelity : fidelity;
  noise : float;
  rng : Ihnet_util.Rng.t;
  cache : (int, reading) Hashtbl.t; (* resource -> last reading (Hardware rate limit) *)
  frozen : (int, reading) Hashtbl.t; (* resource -> reading a stuck counter froze at *)
  last_seen : (int, float * float) Hashtbl.t; (* resource -> (at, wire_bytes) as reported *)
  runs : (int, int) Hashtbl.t; (* resource -> consecutive zero-delta reads under load *)
  unhealthy : (T.Link.id * [ `Flatline | `Out_of_range ], unit) Hashtbl.t;
  mutable reads : int;
}

let create ?(noise = 0.0) fabric ~fidelity =
  assert (noise >= 0.0);
  {
    fabric;
    fidelity;
    noise;
    rng = Ihnet_util.Rng.split (Fabric.rng fabric);
    cache = Hashtbl.create 64;
    frozen = Hashtbl.create 8;
    last_seen = Hashtbl.create 64;
    runs = Hashtbl.create 64;
    unhealthy = Hashtbl.create 8;
    reads = 0;
  }

let fidelity t = t.fidelity
let fabric t = t.fabric

(* additive noise in utilization points: the quantization/sampling error
   of a real PMU read does not shrink with the signal. A zero count is
   exact — an idle link reads as exactly idle (clipping noise at zero
   would otherwise fold the distribution and poison baseline learning). *)
let noisy t v =
  if t.noise = 0.0 || v = 0.0 then v
  else Float.max 0.0 (v +. Ihnet_util.Rng.gaussian t.rng 0.0 t.noise)

let res_key link_id (dir : T.Link.dir) =
  (2 * link_id) + match dir with T.Link.Fwd -> 0 | T.Link.Rev -> 1

let fresh_reading t link_id dir ~tenants =
  let wire_bytes = Fabric.link_bytes t.fabric link_id dir in
  (* against the NOMINAL capacity: a silently degraded link does not
     tell the PMU its effective capacity shrank — that opacity is the
     paper's motivating case for heartbeats *)
  let nominal = (T.Topology.link (Fabric.topology t.fabric) link_id).T.Link.capacity in
  let utilization =
    if nominal <= 0.0 then 0.0
    else Float.min 1.0 (noisy t (Fabric.link_rate t.fabric link_id dir /. nominal))
  in
  let per_tenant =
    match t.fidelity with
    | Hardware _ -> []
    | Software | Oracle ->
      List.map (fun tn -> (tn, Fabric.tenant_link_bytes t.fabric link_id dir ~tenant:tn)) tenants
  in
  let induced_bytes =
    match t.fidelity with
    | Software -> 0.0
    | Hardware _ | Oracle -> Fabric.cls_link_bytes t.fabric link_id dir ~cls:Flow.Induced
  in
  { at = Fabric.now t.fabric; wire_bytes; utilization; per_tenant; induced_bytes }

(* Device-scoped sensor faults corrupt every counter of links incident
   to the faulted device. Applied on top of the (true) cached reading,
   so clearing the fault immediately restores honest values. *)
let corrupt t link_id dir (r : reading) =
  let sf = Fabric.link_sensor_fault t.fabric link_id in
  if Sensorfault.is_none sf then r
  else begin
    let r =
      if sf.Sensorfault.stuck then (
        let key = res_key link_id dir in
        match Hashtbl.find_opt t.frozen key with
        | Some fr -> { fr with at = r.at } (* value froze; the read clock did not *)
        | None ->
          Hashtbl.add t.frozen key r;
          r)
      else r
    in
    let d = sf.Sensorfault.drift in
    if d = 1.0 then r
    else
      {
        r with
        wire_bytes = r.wire_bytes *. d;
        utilization = Float.min 1.0 (r.utilization *. d);
        per_tenant = List.map (fun (tn, b) -> (tn, b *. d)) r.per_tenant;
        induced_bytes = r.induced_bytes *. d;
      }
  end

(* Plausibility checks over what the counter *reported* (post-fault):
   a link cannot move more bytes than nominal capacity x elapsed time,
   and a loaded link cannot move none at all for several reads. *)
let observe_health t link_id dir (r : reading) =
  let key = res_key link_id dir in
  (match Hashtbl.find_opt t.last_seen key with
  | Some (prev_at, prev_bytes) when r.at > prev_at ->
    let dt_s = (r.at -. prev_at) /. 1e9 in
    let delta = r.wire_bytes -. prev_bytes in
    let nominal = (T.Topology.link (Fabric.topology t.fabric) link_id).T.Link.capacity in
    if delta > (nominal *. dt_s *. 1.05) +. 1.0 || delta < 0.0 then
      Hashtbl.replace t.unhealthy (link_id, `Out_of_range) ();
    if delta = 0.0 && r.utilization >= 0.02 then begin
      let run = (match Hashtbl.find_opt t.runs key with Some n -> n | None -> 0) + 1 in
      Hashtbl.replace t.runs key run;
      if run >= 3 then Hashtbl.replace t.unhealthy (link_id, `Flatline) ()
    end
    else Hashtbl.replace t.runs key 0
  | _ -> ());
  Hashtbl.replace t.last_seen key (r.at, r.wire_bytes)

let read t link_id dir ~tenants =
  t.reads <- t.reads + 1;
  let raw =
    match t.fidelity with
    | Software | Oracle -> fresh_reading t link_id dir ~tenants
    | Hardware { max_read_hz } -> (
      let key = res_key link_id dir in
      let min_interval = 1e9 /. max_read_hz in
      match Hashtbl.find_opt t.cache key with
      | Some prev when Fabric.now t.fabric -. prev.at < min_interval -> prev
      | Some _ | None ->
        let r = fresh_reading t link_id dir ~tenants in
        Hashtbl.replace t.cache key r;
        r)
  in
  let r = corrupt t link_id dir raw in
  observe_health t link_id dir r;
  r

let health t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.unhealthy [] |> List.sort_uniq compare

let ddio_hit_rate t ~socket =
  match t.fidelity with
  | Software -> None
  | Hardware _ | Oracle ->
    Some (Float.min 1.0 (noisy t (Fabric.ddio_hit_rate t.fabric ~socket)))

let reads_issued t = t.reads
