module Fabric = Ihnet_engine.Fabric
module Flow = Ihnet_engine.Flow
module T = Ihnet_topology

type fidelity = Hardware of { max_read_hz : float } | Software | Oracle

type reading = {
  at : Ihnet_util.Units.ns;
  wire_bytes : float;
  utilization : float;
  per_tenant : (int * float) list;
  induced_bytes : float;
}

type t = {
  fabric : Fabric.t;
  fidelity : fidelity;
  noise : float;
  rng : Ihnet_util.Rng.t;
  cache : (int, reading) Hashtbl.t; (* resource -> last reading (Hardware rate limit) *)
  mutable reads : int;
}

let create ?(noise = 0.0) fabric ~fidelity =
  assert (noise >= 0.0);
  {
    fabric;
    fidelity;
    noise;
    rng = Ihnet_util.Rng.split (Fabric.rng fabric);
    cache = Hashtbl.create 64;
    reads = 0;
  }

let fidelity t = t.fidelity
let fabric t = t.fabric

(* additive noise in utilization points: the quantization/sampling error
   of a real PMU read does not shrink with the signal. A zero count is
   exact — an idle link reads as exactly idle (clipping noise at zero
   would otherwise fold the distribution and poison baseline learning). *)
let noisy t v =
  if t.noise = 0.0 || v = 0.0 then v
  else Float.max 0.0 (v +. Ihnet_util.Rng.gaussian t.rng 0.0 t.noise)

let res_key link_id (dir : T.Link.dir) =
  (2 * link_id) + match dir with T.Link.Fwd -> 0 | T.Link.Rev -> 1

let fresh_reading t link_id dir ~tenants =
  let wire_bytes = Fabric.link_bytes t.fabric link_id dir in
  (* against the NOMINAL capacity: a silently degraded link does not
     tell the PMU its effective capacity shrank — that opacity is the
     paper's motivating case for heartbeats *)
  let nominal = (T.Topology.link (Fabric.topology t.fabric) link_id).T.Link.capacity in
  let utilization =
    if nominal <= 0.0 then 0.0
    else Float.min 1.0 (noisy t (Fabric.link_rate t.fabric link_id dir /. nominal))
  in
  let per_tenant =
    match t.fidelity with
    | Hardware _ -> []
    | Software | Oracle ->
      List.map (fun tn -> (tn, Fabric.tenant_link_bytes t.fabric link_id dir ~tenant:tn)) tenants
  in
  let induced_bytes =
    match t.fidelity with
    | Software -> 0.0
    | Hardware _ | Oracle -> Fabric.cls_link_bytes t.fabric link_id dir ~cls:Flow.Induced
  in
  { at = Fabric.now t.fabric; wire_bytes; utilization; per_tenant; induced_bytes }

let read t link_id dir ~tenants =
  t.reads <- t.reads + 1;
  match t.fidelity with
  | Software | Oracle -> fresh_reading t link_id dir ~tenants
  | Hardware { max_read_hz } -> (
    let key = res_key link_id dir in
    let min_interval = 1e9 /. max_read_hz in
    match Hashtbl.find_opt t.cache key with
    | Some prev when Fabric.now t.fabric -. prev.at < min_interval -> prev
    | Some _ | None ->
      let r = fresh_reading t link_id dir ~tenants in
      Hashtbl.replace t.cache key r;
      r)

let ddio_hit_rate t ~socket =
  match t.fidelity with
  | Software -> None
  | Hardware _ | Oracle ->
    Some (Float.min 1.0 (noisy t (Fabric.ddio_hit_rate t.fabric ~socket)))

let reads_issued t = t.reads
