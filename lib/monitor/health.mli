(** Operator health report: one structured snapshot of the intra-host
    network's state, assembled from counters.

    This is the "centralized monitoring" view of §3.1 — the summary a
    network-state service would collect periodically from each host:
    congested links, top talkers, DDIO pressure, fault suspicion. All
    data flows through a {!Counter.t}, so the report is only as
    informative as the counter fidelity allows (top talkers are empty
    under hardware fidelity). *)

type congested_link = {
  link : Ihnet_topology.Link.id;
  dir : Ihnet_topology.Link.dir;
  label : string;  (** e.g. ["pcie-gen4 x16 rp0.0->pciesw0"]. *)
  utilization : float;
}

type talker = { tenant : int; rate : float (** bytes/s, summed over links. *) }

type socket_cache = { socket : int; hit_rate : float option; write_rate : float }

type t = {
  at : Ihnet_util.Units.ns;
  host : string;
  congested : congested_link list;  (** Above the threshold, worst first. *)
  top_talkers : talker list;  (** Largest first; [] under hardware fidelity. *)
  ddio : socket_cache list;
  monitoring_overhead : float;
      (** Bytes/s currently consumed by Monitoring+Probe traffic. *)
  tenant_fairness : float;
      (** Jain index over the top talkers' rates; [nan] with fewer than
          two visible tenants. *)
}

val collect :
  Counter.t ->
  ?congestion_threshold:float ->
  ?window:Ihnet_util.Units.ns ->
  ?tenants:int list ->
  unit ->
  t
(** Take a snapshot now. [congestion_threshold] (default 0.8) selects
    the congested list; per-tenant rates are measured over [window]
    (default 1 ms) by differencing byte counters — the call advances
    the simulation by that window. *)

val pp : Format.formatter -> t -> unit
(** Multi-line, operator-facing rendering. *)
