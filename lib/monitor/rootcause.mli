(** Congestion root-cause analysis.

    §2: operators "can use these counters to detect congestion, but
    identifying the root cause of the congestion ... remains
    challenging". Given two counter snapshots and a victim's path, this
    module ranks the path's links by utilization and attributes each
    congested link's traffic to tenants — naming the aggressor.

    All data comes through a {!Counter.t}, so the analysis only knows
    what its fidelity exposes: under [Hardware] fidelity there is no
    per-tenant attribution and {!top_aggressor} returns [None] — the
    §3.1-Q1 limitation, measured in ablation A3. *)

type snapshot
(** Per-(link, direction, tenant) cumulative wire bytes at an instant. *)

val snapshot : Counter.t -> tenants:int list -> snapshot
(** Read every link's counters once. [tenants] is the attribution
    candidate set (ignored by fidelities that hide tenants). *)

type culprit = {
  link : Ihnet_topology.Link.id;
  dir : Ihnet_topology.Link.dir;
  utilization : float;  (** At diagnosis time (against nominal). *)
  contributors : (int * float) list;
      (** (tenant, bytes/s over the window), largest first; tenant −1
          aggregates DDIO-induced traffic. Empty under [Hardware]
          fidelity. *)
}

val diagnose :
  Counter.t ->
  before:snapshot ->
  after:snapshot ->
  victim_path:Ihnet_topology.Path.t ->
  culprit list
(** Hops of the victim path sorted by utilization, most congested
    first, each with its tenant attribution over the snapshot window.
    @raise Invalid_argument if the snapshots are not ordered in time. *)

val top_aggressor : culprit list -> (int * float) option
(** The tenant moving the most bytes/s on the most congested hop,
    excluding the induced pseudo-tenant; [None] when idle or when the
    counter fidelity hides tenants. *)
