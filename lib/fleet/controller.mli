(** The fleet controller: one control loop over hundreds–thousands of
    hosts, with cross-host failover over lossy control channels.

    §3.1's centralized network-state service, made {e active}: where
    {!Ihnet_monitor.Fleet} is the read-only roll-up, this module owns
    a desired-state map (which tenant should run where) and drives the
    fleet toward it, one {!round} at a time:

    + every live host advances its own simulation by
      [config.round_len] and pushes a health report (its placed
      tenants, SLO verdicts, incarnation epoch) through its uplink
      {!Channel} — this phase runs in parallel, hosts sharded across
      the {!Ihnet_util.Pool} domains, and is byte-identical under any
      [IHNET_DOMAINS] width because every host is a [~domains:1]
      island touched by exactly one task and results merge in host
      index order;
    + the coordinator ticks every channel in host index order,
      applying delivered commands host-side (with at-most-once
      application — see below) and folding delivered reports and acks
      into the controller's view;
    + the control step re-plans: reachability timeouts, bounded
      retries with exponential backoff, flap damping with holddown
      (the {!Ihnet_manager.Remediation} idioms), placement of new
      tenants on the least-loaded feasible host, cross-host {e spill}
      when a host refuses admission, failover when a host is lost, and
      an explicit fleet-level degraded verdict — with restore on
      clear — when {e no} host can take a tenant.

    {b The channel protocol.} Commands carry a fresh sequence number
    and the host's believed incarnation epoch. A host applies a
    command only if the epoch matches and the sequence is new,
    recording the outcome in a per-host applied table (its "stable
    storage" — it survives crash/restart); duplicates are re-acked
    from the table without re-applying, which is what makes a healed
    partition reconcile without double-applying buffered commands. A
    partitioned host keeps running on its last-known policy; on heal,
    its report reveals stray placements (tenants the controller
    failed over elsewhere in the meantime) and the controller revokes
    them.

    {b Determinism.} All randomness lives in per-host
    {!Ihnet_util.Rng.stream}s (channel faults, restart seeds), drawn
    only under an injected fault, and all cross-host decisions happen
    on the coordinator in (host index, tenant id) order — so a fleet
    run is byte-identical at [IHNET_DOMAINS] ∈ {1,2,4}, and a
    fault-free run with a dormant controller leaves each host's run
    byte-identical to an unmanaged one (the [fleet-idle] bench
    subject gates this). *)

type config = {
  round_len : Ihnet_util.Units.ns;  (** Sim time per host per round. *)
  cmd_timeout : int;  (** Rounds to wait for an ack before retrying. *)
  max_retries : int;  (** Retries before a command is abandoned. *)
  backoff_factor : float;
      (** Each retry waits [cmd_timeout * factor^attempt] rounds. *)
  unreachable_after : int;
      (** Missed reports before a host is declared unreachable and its
          tenants fail over. *)
  flap_window : int;  (** Rounds over which transitions are counted. *)
  flap_threshold : int;
      (** Reachable↔unreachable transitions within the window that
          trigger holddown. *)
  holddown : int;
      (** Rounds a flapping host is excluded as a placement target. *)
  degraded_retry : int;
      (** Rounds between placement re-attempts for fleet-degraded
          tenants (the restore-on-clear probe). *)
}

val default_config : config

type host_view = Reachable | Unreachable | Crashed
(** The controller's belief. [Crashed] is operator truth injected via
    {!crash} (the controller itself only ever infers [Unreachable]). *)

type tenant_view =
  | Unplaced
  | Placing of string  (** Command in flight toward this host. *)
  | Placed of string
  | Migrating of { from_ : string; to_ : string }
      (** Make-before-break: placing on [to_] before revoking
          [from_]. *)
  | Fleet_degraded
      (** No host in the fleet can currently take the tenant — the
          explicit fleet-level verdict; retried every
          [degraded_retry] rounds. *)

type reason = Host_down | Slo | Admission

type decision =
  | D_placed of { tenant : int; host : string }
  | D_migrated of { tenant : int; from_ : string; to_ : string; reason : reason }
  | D_degraded of { tenant : int; cause : Ihnet_manager.Mgr_error.t }
  | D_restored of { tenant : int; host : string }
  | D_host_lost of { host : string }
  | D_host_recovered of { host : string }
  | D_held_down of { host : string }
  | D_reconciled of { host : string; revoked : int list }
  | D_command_failed of { host : string; tenant : int; error : Ihnet_manager.Mgr_error.t }

val decision_to_string : decision -> string

type t

val create : ?config:config -> ?seed:int -> ?domains:int -> unit -> t
(** [domains] is the pool width for the host-shard phase (default
    [IHNET_DOMAINS] via {!Ihnet_util.Pool.default_domains}) — results
    are byte-identical for every width; the determinism property
    compares widths side by side in one process. *)

(** {1 Fleet membership} *)

val spawn : t -> ?preset:Ihnet.Host.preset -> string -> unit
(** [spawn t label] creates and enrolls a fresh host (default preset
    [Two_socket]), pinned to [~domains:1] so fleets parallelize at
    host granularity, seeded from the controller seed and the host's
    index via {!Ihnet_util.Rng.stream}. Labels must be unique.
    @raise Invalid_argument on a duplicate label. *)

val add_host : t -> label:string -> Ihnet.Host.t -> unit
(** Enroll an existing host (the wrap-a-live-box path the
    [fleet-idle] discipline exercises). The host must have been
    created with [~domains:1] if the fleet runs with a wider pool. *)

val hosts : t -> string list
(** Labels in index (enrollment) order. *)

val host : t -> string -> Ihnet.Host.t option
(** The live host object ([None] while crashed). *)

(** {1 Desired state} *)

val submit : t -> Ihnet_manager.Intent.t -> unit
(** Register the intent's tenant with the fleet; the next {!round}s
    place it on the least-loaded host that admits it.
    @raise Invalid_argument if the tenant is already registered. *)

val revoke : t -> tenant:int -> unit
(** Remove the tenant from the desired state; its placement (if any)
    is revoked through the normal command path. *)

(** {1 The loop} *)

val round : t -> unit
(** One control round (see the module preamble for the three phases). *)

val run : t -> rounds:int -> unit

val rounds : t -> int
(** Rounds executed so far. *)

(** {1 Fault injection (operator / campaign API)} *)

val crash : t -> string -> unit
(** Power the host off: its simulation stops, everything in flight on
    its channels is lost. Its applied table (stable storage) is kept. *)

val restart : t -> string -> unit
(** Power a crashed host back on as a {e fresh} incarnation: new
    simulation state, epoch bumped so commands addressed to the old
    incarnation are ignored, seed drawn from the host's own RNG
    stream. *)

val partition : t -> string -> unit
(** Cut both channel directions. The host keeps running on its
    last-known policy. *)

val heal : t -> string -> unit
(** Remove the partition (base loss/delay faults, if any, remain). *)

val set_chanfault : t -> string -> Ihnet_engine.Chanfault.fault -> unit
(** Base fault model for both directions of the host's channels
    (composes with {!partition} via {!Ihnet_engine.Chanfault.merge}). *)

(** {1 Observation} *)

val host_view : t -> string -> host_view option
val tenant_view : t -> int -> tenant_view option
val tenants : t -> int list
(** Registered tenant ids, ascending. *)

val decisions : t -> decision list
(** Chronological. *)

val decisions_fingerprint : t -> int64
(** FNV-1a over the rendered decision log — the qcheck determinism
    property compares this across pool widths. *)

val digest : t -> int64
(** Per-host {!Ihnet_record.Scanport} digests chained with
    {!Ihnet_record.Trace.fnv_int64} in host index order (crashed
    hosts fold as a marker). Pure read. *)

val host_digests : t -> (string * int64) list
(** Per-host scan digests, index order; crashed hosts omitted. *)

val channel_rng_peek : t -> string -> int64
(** Combined (command, report) channel RNG states for the host — the
    fault-free idle proof: unchanged across a run means the channel
    plane never drew. *)

val collect : t -> Ihnet_monitor.Fleet.t
(** Roll the live hosts up through {!Ihnet_monitor.Fleet.collect},
    wiring each member's [slo] probe to the controller's last
    received report, so SLO verdicts rank hosts without re-running
    {!Ihnet_manager.Slo.check}. Note {!Ihnet_monitor.Health.collect}
    advances each host's sampler window — call after {!digest} if you
    need both. *)

val pp : Format.formatter -> t -> unit
(** Operator summary: hosts (view, placed tenants, epoch), tenants
    (state), decision count. *)
