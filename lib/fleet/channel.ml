module Chanfault = Ihnet_engine.Chanfault
module Rng = Ihnet_util.Rng

(* In-flight messages carry (sequence-at-send, rounds-remaining).
   Delivery order is by send sequence so duplicates sit adjacent and
   reordering can only come from the fault model's delays — never from
   implementation detail. *)
type 'a entry = { e_seq : int; mutable e_left : int; e_msg : 'a }

type 'a t = {
  rng : Rng.t;
  mutable flt : Chanfault.fault;
  mutable next_seq : int;
  mutable inflight : 'a entry list;  (* newest first *)
}

let create rng = { rng; flt = Chanfault.none; next_seq = 0; inflight = [] }
let set_fault t f = t.flt <- f
let fault t = t.flt

let send t msg =
  match Chanfault.apply t.rng t.flt with
  | Chanfault.Dropped -> ()
  | Chanfault.Delivered { delay; copies } ->
    for _ = 1 to copies do
      t.inflight <- { e_seq = t.next_seq; e_left = delay; e_msg = msg } :: t.inflight;
      t.next_seq <- t.next_seq + 1
    done

let tick t =
  let due, rest = List.partition (fun e -> e.e_left <= 0) t.inflight in
  List.iter (fun e -> e.e_left <- e.e_left - 1) rest;
  t.inflight <- rest;
  List.sort (fun a b -> compare a.e_seq b.e_seq) due |> List.map (fun e -> e.e_msg)

let clear t = t.inflight <- []
let in_flight t = List.length t.inflight
let rng_peek t = Rng.peek t.rng
