(** One direction of a controller↔host control link, faulty by
    construction.

    A channel is a FIFO of in-flight messages, clocked in controller
    rounds: {!send} passes the message through the channel's
    {!Ihnet_engine.Chanfault} model (loss, delay, duplication,
    partition) and {!tick} — called once per round — delivers whatever
    arrives this round, in send order. With the fault model at
    {!Ihnet_engine.Chanfault.none} a channel is a perfect one-round
    queue {e and draws nothing from its RNG}, so a fault-free fleet
    run is bit-identical to one with no channel plane at all
    (mirroring the telemetry plane's {!Ihnet_engine.Sensorfault}
    discipline).

    Channels are single-owner: each lives with its host record and is
    only touched by that host's shard task or the coordinator, never
    both in the same phase. *)

type 'a t

val create : Ihnet_util.Rng.t -> 'a t
(** A perfect channel ({!Ihnet_engine.Chanfault.none}) drawing any
    fault randomness from the given generator — the fleet hands each
    host's channels dedicated {!Ihnet_util.Rng.stream}s so faults on
    one host never perturb another's draws. *)

val set_fault : 'a t -> Ihnet_engine.Chanfault.fault -> unit
val fault : 'a t -> Ihnet_engine.Chanfault.fault

val send : 'a t -> 'a -> unit
(** Pass the message through the fault model: it is dropped, delayed
    by whole rounds, and/or duplicated as the verdict dictates. A
    message sent with effective delay [d] is returned by the [d]-th
    subsequent {!tick}. *)

val tick : 'a t -> 'a list
(** Advance one round: messages whose delay has elapsed, oldest send
    first (duplicates adjacent). *)

val clear : 'a t -> unit
(** Drop everything in flight — what a host crash does to the wire. *)

val in_flight : 'a t -> int

val rng_peek : 'a t -> int64
(** The channel RNG's state, unadvanced — the idle-discipline probe:
    equal before/after a fault-free run proves no draws happened. *)
