module U = Ihnet_util
module Units = U.Units
module Rng = U.Rng
module Pool = U.Pool
module M = Ihnet_manager
module Mon = Ihnet_monitor
module Chanfault = Ihnet_engine.Chanfault
module Scanport = Ihnet_record.Scanport
module Trace = Ihnet_record.Trace

type config = {
  round_len : Units.ns;
  cmd_timeout : int;
  max_retries : int;
  backoff_factor : float;
  unreachable_after : int;
  flap_window : int;
  flap_threshold : int;
  holddown : int;
  degraded_retry : int;
}

let default_config =
  {
    round_len = Units.ms 1.0;
    cmd_timeout = 2;
    max_retries = 4;
    backoff_factor = 2.0;
    unreachable_after = 3;
    flap_window = 20;
    flap_threshold = 4;
    holddown = 10;
    degraded_retry = 5;
  }

type host_view = Reachable | Unreachable | Crashed

type tenant_view =
  | Unplaced
  | Placing of string
  | Placed of string
  | Migrating of { from_ : string; to_ : string }
  | Fleet_degraded

type reason = Host_down | Slo | Admission

type decision =
  | D_placed of { tenant : int; host : string }
  | D_migrated of { tenant : int; from_ : string; to_ : string; reason : reason }
  | D_degraded of { tenant : int; cause : M.Mgr_error.t }
  | D_restored of { tenant : int; host : string }
  | D_host_lost of { host : string }
  | D_host_recovered of { host : string }
  | D_held_down of { host : string }
  | D_reconciled of { host : string; revoked : int list }
  | D_command_failed of { host : string; tenant : int; error : M.Mgr_error.t }

let reason_to_string = function
  | Host_down -> "host-down"
  | Slo -> "slo"
  | Admission -> "admission"

let decision_to_string = function
  | D_placed { tenant; host } -> Printf.sprintf "place tenant %d on %s" tenant host
  | D_migrated { tenant; from_; to_; reason } ->
    Printf.sprintf "migrate tenant %d %s -> %s (%s)" tenant from_ to_ (reason_to_string reason)
  | D_degraded { tenant; cause } ->
    Printf.sprintf "fleet-degrade tenant %d: %s" tenant (M.Mgr_error.to_string cause)
  | D_restored { tenant; host } -> Printf.sprintf "restore tenant %d on %s" tenant host
  | D_host_lost { host } -> Printf.sprintf "host %s lost" host
  | D_host_recovered { host } -> Printf.sprintf "host %s recovered" host
  | D_held_down { host } -> Printf.sprintf "hold down flapping host %s" host
  | D_reconciled { host; revoked } ->
    Printf.sprintf "reconcile %s: revoke stray tenant(s) %s" host
      (String.concat "," (List.map string_of_int revoked))
  | D_command_failed { host; tenant; error } ->
    Printf.sprintf "command to %s for tenant %d failed: %s" host tenant
      (M.Mgr_error.to_string error)

(* {1 Wire messages} *)

type cmd_body = Cplace of M.Intent.t | Crevoke of int

let cmd_name = function Cplace _ -> "place" | Crevoke _ -> "revoke"

type command = { c_seq : int; c_epoch : int; c_body : cmd_body }
type ack = { a_seq : int; a_result : (unit, M.Mgr_error.t) result }

type report = {
  r_round : int;
  r_epoch : int;
  r_placed : int list;  (** Tenants with live placements, ascending. *)
  r_sick : int list;  (** Tenants with a violated SLO, ascending. *)
  r_degraded : int;
  r_violated : int;
}

type uplink = Ack of ack | Report of report

(* {1 Records} *)

type hosted = {
  h_label : string;
  h_index : int;
  h_preset : Ihnet.Host.preset option;  (* None = enrolled via add_host *)
  mutable h_host : Ihnet.Host.t option;  (* None while crashed *)
  h_cmd : command Channel.t;  (* controller -> host *)
  h_up : uplink Channel.t;  (* host -> controller *)
  h_applied : (int, (unit, M.Mgr_error.t) result) Hashtbl.t;
      (* at-most-once stable storage: seq -> outcome, survives restart *)
  h_revoked : (int, int) Hashtbl.t;  (* tenant -> round of last cleanup revoke *)
  h_rng : Rng.t;  (* the host's own stream: restart seeds *)
  mutable h_epoch : int;  (* actual incarnation (host-side truth) *)
  mutable h_known_epoch : int;  (* controller's belief *)
  mutable h_belief : [ `Reachable | `Unreachable ];
  mutable h_last_report : int;
  mutable h_flaps : int list;  (* rounds of belief transitions, newest first *)
  mutable h_held_until : int;
  mutable h_base_fault : Chanfault.fault;
  mutable h_partitioned : bool;
  mutable h_last_slo : int * int;  (* (degraded, violated) from last report *)
  mutable h_sick : int list;
}

type tenant = {
  tn_id : int;
  tn_intent : M.Intent.t;
  mutable tn_state : tenant_view;
  mutable tn_prev : string option;  (* origin of a pending move, for the decision *)
  mutable tn_reason : reason option;
  mutable tn_was_degraded : bool;
  mutable tn_tried : int list;  (* host indexes refused during this attempt *)
  mutable tn_since : int;  (* round of the last successful placement ack *)
  mutable tn_retry_at : int;
  mutable tn_gone : bool;  (* operator revoked *)
}

type purpose = Primary | Cleanup

type inflight = {
  if_seq : int;
  if_host : int;
  if_tenant : int;
  if_body : cmd_body;
  if_purpose : purpose;
  mutable if_attempt : int;
  mutable if_deadline : int;
}

type t = {
  cfg : config;
  seed : int;
  domains : int;  (* pool width for the host-shard phase *)
  mutable harr : hosted array;
  mutable nhosts : int;
  host_by_label : (string, int) Hashtbl.t;
  tenant_tbl : (int, tenant) Hashtbl.t;
  mutable tenant_order : int list;  (* ascending ids *)
  mutable round_no : int;
  mutable next_seq : int;
  inflight : (int, inflight) Hashtbl.t;
  mutable log : decision list;  (* newest first *)
  mutable fp : int64;
}

let create ?(config = default_config) ?(seed = 42) ?domains () =
  {
    cfg = config;
    seed;
    domains = (match domains with Some d -> max 1 d | None -> Pool.default_domains ());
    harr = [||];
    nhosts = 0;
    host_by_label = Hashtbl.create 64;
    tenant_tbl = Hashtbl.create 64;
    tenant_order = [];
    round_no = 0;
    next_seq = 0;
    inflight = Hashtbl.create 17;
    log = [];
    fp = Trace.fnv_basis;
  }

let record t d =
  t.log <- d :: t.log;
  t.fp <- Trace.fnv_string (Trace.fnv_int t.fp t.round_no) (decision_to_string d)

let get t label =
  match Hashtbl.find_opt t.host_by_label label with
  | Some i -> t.harr.(i)
  | None -> invalid_arg (Printf.sprintf "Fleet.Controller: unknown host %S" label)

(* {1 Membership} *)

let enroll t label preset host_opt =
  if Hashtbl.mem t.host_by_label label then
    invalid_arg (Printf.sprintf "Fleet.Controller: duplicate host label %S" label);
  let i = t.nhosts in
  let h =
    {
      h_label = label;
      h_index = i;
      h_preset = preset;
      h_host = host_opt;
      h_cmd = Channel.create (Rng.stream t.seed ((3 * i) + 0));
      h_up = Channel.create (Rng.stream t.seed ((3 * i) + 1));
      h_applied = Hashtbl.create 17;
      h_revoked = Hashtbl.create 7;
      h_rng = Rng.stream t.seed ((3 * i) + 2);
      h_epoch = 0;
      h_known_epoch = 0;
      h_belief = `Reachable;
      h_last_report = t.round_no;
      h_flaps = [];
      h_held_until = 0;
      h_base_fault = Chanfault.none;
      h_partitioned = false;
      h_last_slo = (0, 0);
      h_sick = [];
    }
  in
  if i = Array.length t.harr then begin
    let cap = max 8 (2 * Array.length t.harr) in
    let bigger = Array.make cap h in
    Array.blit t.harr 0 bigger 0 i;
    t.harr <- bigger
  end;
  t.harr.(i) <- h;
  t.nhosts <- i + 1;
  Hashtbl.replace t.host_by_label label i;
  h

(* 62 random bits -> a non-negative int seed for a host incarnation. *)
let draw_seed rng = Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 2)

let spawn t ?(preset = Ihnet.Host.Two_socket) label =
  (* the host's stream exists before the host so restart draws continue it *)
  let i = t.nhosts in
  let rng = Rng.stream t.seed ((3 * i) + 2) in
  let seed = draw_seed rng in
  let host = Ihnet.Host.create ~seed ~domains:1 preset in
  let h = enroll t label (Some preset) (Some host) in
  (* keep the pre-advanced stream so the next incarnation draws fresh *)
  ignore (Rng.bits64 h.h_rng)

let add_host t ~label host = ignore (enroll t label None (Some host))

let hosts t = Array.to_list (Array.sub t.harr 0 t.nhosts) |> List.map (fun h -> h.h_label)
let host t label = (get t label).h_host

(* {1 Fault injection} *)

let effective_fault h =
  if h.h_partitioned then Chanfault.merge h.h_base_fault Chanfault.partition
  else h.h_base_fault

let refresh_fault h =
  Channel.set_fault h.h_cmd (effective_fault h);
  Channel.set_fault h.h_up (effective_fault h)

let crash t label =
  let h = get t label in
  h.h_host <- None;
  Channel.clear h.h_cmd;
  Channel.clear h.h_up

let restart t label =
  let h = get t label in
  if h.h_host <> None then
    invalid_arg (Printf.sprintf "Fleet.Controller: host %S is not crashed" label);
  match h.h_preset with
  | None -> invalid_arg (Printf.sprintf "Fleet.Controller: host %S was not spawned here" label)
  | Some preset ->
    h.h_epoch <- h.h_epoch + 1;
    let seed = draw_seed h.h_rng in
    h.h_host <- Some (Ihnet.Host.create ~seed ~domains:1 preset)

let partition t label =
  let h = get t label in
  h.h_partitioned <- true;
  refresh_fault h

let heal t label =
  let h = get t label in
  h.h_partitioned <- false;
  refresh_fault h

let set_chanfault t label fault =
  let h = get t label in
  h.h_base_fault <- fault;
  refresh_fault h

(* {1 Desired state} *)

let submit t intent =
  let id = intent.M.Intent.tenant in
  if Hashtbl.mem t.tenant_tbl id then
    invalid_arg (Printf.sprintf "Fleet.Controller: tenant %d already registered" id);
  Hashtbl.replace t.tenant_tbl id
    {
      tn_id = id;
      tn_intent = intent;
      tn_state = Unplaced;
      tn_prev = None;
      tn_reason = None;
      tn_was_degraded = false;
      tn_tried = [];
      tn_since = 0;
      tn_retry_at = 0;
      tn_gone = false;
    };
  t.tenant_order <- List.sort compare (id :: t.tenant_order)

let revoke t ~tenant =
  match Hashtbl.find_opt t.tenant_tbl tenant with
  | None -> ()
  | Some tn -> tn.tn_gone <- true

let remove_tenant t id =
  Hashtbl.remove t.tenant_tbl id;
  t.tenant_order <- List.filter (fun x -> x <> id) t.tenant_order

let iter_tenants t f =
  List.iter
    (fun id -> match Hashtbl.find_opt t.tenant_tbl id with Some tn -> f tn | None -> ())
    t.tenant_order

(* Guaranteed bytes/s the controller believes it has routed to host
   [i]; make-before-break counts a migrating tenant on both ends. *)
let load_of t i =
  let lbl = t.harr.(i).h_label in
  let total = ref 0.0 in
  iter_tenants t (fun tn ->
      if not tn.tn_gone then
        let here =
          match tn.tn_state with
          | Placed l | Placing l -> l = lbl
          | Migrating { from_; to_ } -> from_ = lbl || to_ = lbl
          | Unplaced | Fleet_degraded -> false
        in
        if here then total := !total +. M.Intent.total_guaranteed tn.tn_intent);
  !total

let has_primary_inflight t id =
  Hashtbl.fold
    (fun _ inf acc -> acc || (inf.if_purpose = Primary && inf.if_tenant = id))
    t.inflight false

let has_cleanup_revoke t ~host ~tenant =
  Hashtbl.fold
    (fun _ inf acc ->
      acc
      || inf.if_purpose = Cleanup && inf.if_host = host && inf.if_tenant = tenant
         && match inf.if_body with Crevoke _ -> true | Cplace _ -> false)
    t.inflight false

let send_cmd t h purpose tenant body =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.inflight seq
    {
      if_seq = seq;
      if_host = h.h_index;
      if_tenant = tenant;
      if_body = body;
      if_purpose = purpose;
      if_attempt = 0;
      if_deadline = t.round_no + t.cfg.cmd_timeout;
    };
  Channel.send h.h_cmd { c_seq = seq; c_epoch = h.h_known_epoch; c_body = body }

let cleanup_revoke t h tenant =
  Hashtbl.replace h.h_revoked tenant t.round_no;
  send_cmd t h Cleanup tenant (Crevoke tenant)

(* {1 Phase 1: advance every live host and push its report}

   Parallel across the pool: each task owns exactly one host (its
   simulation, manager, SLO reports and uplink channel are all
   host-local), results merge by index, so the phase is byte-identical
   under any pool width or shard grouping. The SLO check only runs
   when the host actually carries placements — a dormant controller
   must not perturb an unmanaged host's float stream. *)

let observe_host host =
  match Ihnet.Host.manager host with
  | None -> ([], [], (0, 0))
  | Some mgr ->
    let placed = List.sort compare (M.Manager.tenants mgr) in
    if placed = [] then ([], [], (0, 0))
    else begin
      let rep = M.Slo.check mgr in
      let sick =
        List.filter_map
          (fun (e : M.Slo.entry) ->
            match e.M.Slo.state with
            | M.Slo.Violated _ -> Some e.M.Slo.placement.M.Placement.tenant
            | M.Slo.Inactive | M.Slo.Met | M.Slo.Degraded _ -> None)
          rep.M.Slo.entries
        |> List.sort_uniq compare
      in
      (placed, sick, (rep.M.Slo.degraded, rep.M.Slo.violations))
    end

let advance_and_report t =
  let n = t.nhosts in
  if n > 0 then begin
    let pool = Pool.get t.domains in
    ignore
      (Pool.map pool n (fun i ->
           let h = t.harr.(i) in
           match h.h_host with
           | None -> ()
           | Some host ->
             Ihnet.Host.run_for host t.cfg.round_len;
             let placed, sick, (deg, viol) = observe_host host in
             Channel.send h.h_up
               (Report
                  {
                    r_round = t.round_no;
                    r_epoch = h.h_epoch;
                    r_placed = placed;
                    r_sick = sick;
                    r_degraded = deg;
                    r_violated = viol;
                  })))
  end

(* {1 Phase 2: channel exchange (coordinator, host index order)} *)

let deliver_commands h =
  let arrived = Channel.tick h.h_cmd in
  match h.h_host with
  | None -> ()  (* crashed: arrivals hit a dead box *)
  | Some host ->
    List.iter
      (fun c ->
        if c.c_epoch = h.h_epoch then
          match Hashtbl.find_opt h.h_applied c.c_seq with
          | Some result ->
            (* duplicate: re-ack from stable storage, never re-apply *)
            Channel.send h.h_up (Ack { a_seq = c.c_seq; a_result = result })
          | None ->
            let result =
              match c.c_body with
              | Cplace intent -> (
                match Ihnet.Host.submit_intent host intent with
                | Ok _ -> Ok ()
                | Error e -> Error e)
              | Crevoke tenant -> (
                match Ihnet.Host.manager host with
                | Some mgr ->
                  M.Manager.revoke mgr ~tenant;
                  Ok ()
                | None -> Ok ())
            in
            Hashtbl.replace h.h_applied c.c_seq result;
            Channel.send h.h_up (Ack { a_seq = c.c_seq; a_result = result }))
      arrived

let note_flap t h =
  let cutoff = t.round_no - t.cfg.flap_window in
  h.h_flaps <- t.round_no :: List.filter (fun r -> r > cutoff) h.h_flaps;
  if List.length h.h_flaps >= t.cfg.flap_threshold && t.round_no >= h.h_held_until then begin
    h.h_held_until <- t.round_no + t.cfg.holddown;
    record t (D_held_down { host = h.h_label })
  end

let recently_revoked h tenant report_round =
  match Hashtbl.find_opt h.h_revoked tenant with
  | Some r -> report_round <= r
  | None -> false

(* Compare the host's claimed placements with the desired map: strays
   (tenants the controller failed over elsewhere during a partition)
   are revoked; desired tenants the host no longer carries (it
   restarted) go back to placement. *)
let reconcile t h r =
  let assigned_here tn =
    match tn.tn_state with
    | Placed l | Placing l -> l = h.h_label
    | Migrating { from_; to_ } -> from_ = h.h_label || to_ = h.h_label
    | Unplaced | Fleet_degraded -> false
  in
  let strays =
    List.filter
      (fun id ->
        (match Hashtbl.find_opt t.tenant_tbl id with
        | Some tn -> not (assigned_here tn)
        | None -> true)
        && (not (recently_revoked h id r.r_round))
        && not (has_cleanup_revoke t ~host:h.h_index ~tenant:id))
      r.r_placed
  in
  if strays <> [] then begin
    record t (D_reconciled { host = h.h_label; revoked = strays });
    List.iter (fun id -> cleanup_revoke t h id) strays
  end;
  iter_tenants t (fun tn ->
      match tn.tn_state with
      | Placed l
        when l = h.h_label && (not (List.mem tn.tn_id r.r_placed)) && tn.tn_since < r.r_round ->
        (* the host restarted and lost it: fail over *)
        tn.tn_state <- Unplaced;
        tn.tn_prev <- Some l;
        tn.tn_reason <- Some Host_down;
        tn.tn_tried <- []
      | _ -> ())

let on_report t h r =
  if r.r_epoch > h.h_known_epoch then h.h_known_epoch <- r.r_epoch;
  h.h_last_report <- max h.h_last_report r.r_round;
  h.h_last_slo <- (r.r_degraded, r.r_violated);
  h.h_sick <- r.r_sick;
  if h.h_belief = `Unreachable then begin
    h.h_belief <- `Reachable;
    record t (D_host_recovered { host = h.h_label });
    note_flap t h
  end;
  reconcile t h r

let placement_confirmed t h tn =
  let was_degraded = tn.tn_was_degraded in
  let prev = tn.tn_prev in
  tn.tn_state <- Placed h.h_label;
  tn.tn_since <- t.round_no;
  tn.tn_tried <- [];
  tn.tn_was_degraded <- false;
  let d =
    if was_degraded then D_restored { tenant = tn.tn_id; host = h.h_label }
    else
      match prev with
      | Some from_ when from_ <> h.h_label ->
        D_migrated
          {
            tenant = tn.tn_id;
            from_;
            to_ = h.h_label;
            reason = Option.value tn.tn_reason ~default:Admission;
          }
      | _ -> D_placed { tenant = tn.tn_id; host = h.h_label }
  in
  tn.tn_prev <- None;
  tn.tn_reason <- None;
  record t d

let on_ack t h a =
  match Hashtbl.find_opt t.inflight a.a_seq with
  | None -> ()  (* stale: the command was abandoned; reconciliation owns it now *)
  | Some inf -> (
    Hashtbl.remove t.inflight a.a_seq;
    match inf.if_purpose with
    | Cleanup -> ()
    | Primary -> (
      match Hashtbl.find_opt t.tenant_tbl inf.if_tenant with
      | None -> ()
      | Some tn -> (
        match (inf.if_body, a.a_result) with
        | Crevoke _, _ -> remove_tenant t tn.tn_id
        | Cplace _, Ok () -> (
          match tn.tn_state with
          | Placing l when l = h.h_label -> placement_confirmed t h tn
          | Migrating { from_; to_ } when to_ = h.h_label ->
            placement_confirmed t h tn;
            (* break after make: drop the old copy *)
            (match Hashtbl.find_opt t.host_by_label from_ with
            | Some fi when fi <> h.h_index -> cleanup_revoke t t.harr.(fi) tn.tn_id
            | _ -> ())
          | _ ->
            (* the plan moved on while this ack was in flight: the
               placement landed but is no longer wanted here *)
            cleanup_revoke t h tn.tn_id)
        | Cplace _, Error _ -> (
          (* admission refused: spill to the next candidate *)
          tn.tn_tried <- inf.if_host :: tn.tn_tried;
          match tn.tn_state with
          | Placing l when l = h.h_label -> tn.tn_state <- Unplaced
          | Migrating { from_; to_ } when to_ = h.h_label ->
            (* the better host refused; stay where we are and cool down *)
            tn.tn_state <- Placed from_;
            tn.tn_prev <- None;
            tn.tn_reason <- None;
            tn.tn_retry_at <- t.round_no + t.cfg.degraded_retry
          | _ -> ()))))

let receive t h =
  List.iter
    (function Report r -> on_report t h r | Ack a -> on_ack t h a)
    (Channel.tick h.h_up)

(* {1 Phase 3: control (coordinator)} *)

let sorted_inflight t =
  Hashtbl.fold (fun seq _ acc -> seq :: acc) t.inflight [] |> List.sort compare

let abandon_host t h =
  List.iter
    (fun seq ->
      match Hashtbl.find_opt t.inflight seq with
      | Some inf when inf.if_host = h.h_index ->
        Hashtbl.remove t.inflight seq;
        if inf.if_purpose = Primary then
          record t
            (D_command_failed
               {
                 host = h.h_label;
                 tenant = inf.if_tenant;
                 error = M.Mgr_error.Host_unreachable h.h_label;
               })
      | _ -> ())
    (sorted_inflight t)

let fail_over_tenants t h =
  iter_tenants t (fun tn ->
      match tn.tn_state with
      | Placed l when l = h.h_label ->
        tn.tn_state <- Unplaced;
        tn.tn_prev <- Some l;
        tn.tn_reason <- Some Host_down;
        tn.tn_tried <- [ h.h_index ]
      | Placing l when l = h.h_label ->
        tn.tn_state <- Unplaced;
        tn.tn_tried <- h.h_index :: tn.tn_tried
      | Migrating { from_; to_ } when to_ = h.h_label ->
        tn.tn_state <- Placed from_;
        tn.tn_prev <- None;
        tn.tn_reason <- None
      | _ -> ())

let check_reachability t =
  for i = 0 to t.nhosts - 1 do
    let h = t.harr.(i) in
    if h.h_belief = `Reachable && t.round_no - h.h_last_report > t.cfg.unreachable_after
    then begin
      h.h_belief <- `Unreachable;
      record t (D_host_lost { host = h.h_label });
      note_flap t h;
      abandon_host t h;
      fail_over_tenants t h
    end
  done

let retry_commands t =
  List.iter
    (fun seq ->
      match Hashtbl.find_opt t.inflight seq with
      | None -> ()
      | Some inf ->
        if t.round_no >= inf.if_deadline then begin
          let h = t.harr.(inf.if_host) in
          if inf.if_attempt >= t.cfg.max_retries then begin
            Hashtbl.remove t.inflight seq;
            record t
              (D_command_failed
                 {
                   host = h.h_label;
                   tenant = inf.if_tenant;
                   error =
                     M.Mgr_error.Retries_exhausted
                       { host = h.h_label; command = cmd_name inf.if_body };
                 });
            if inf.if_purpose = Primary then
              match Hashtbl.find_opt t.tenant_tbl inf.if_tenant with
              | None -> ()
              | Some tn -> (
                match (inf.if_body, tn.tn_state) with
                | Cplace _, Placing l when l = h.h_label ->
                  tn.tn_state <- Unplaced;
                  tn.tn_tried <- inf.if_host :: tn.tn_tried
                | Cplace _, Migrating { from_; to_ } when to_ = h.h_label ->
                  tn.tn_state <- Placed from_;
                  tn.tn_prev <- None;
                  tn.tn_reason <- None;
                  tn.tn_retry_at <- t.round_no + t.cfg.degraded_retry
                | Crevoke _, _ -> remove_tenant t tn.tn_id
                | _ -> ())
          end
          else begin
            inf.if_attempt <- inf.if_attempt + 1;
            let wait =
              int_of_float
                (ceil
                   (float_of_int t.cfg.cmd_timeout
                   *. (t.cfg.backoff_factor ** float_of_int inf.if_attempt)))
            in
            inf.if_deadline <- t.round_no + max 1 wait;
            Channel.send h.h_cmd
              { c_seq = seq; c_epoch = h.h_known_epoch; c_body = inf.if_body }
          end
        end)
    (sorted_inflight t)

(* The believed load of every host, computed once per control step
   (O(hosts + tenants)) and updated incrementally as placements are
   routed within the same pass — [load_of] per candidate would make
   each drive pass O(hosts × tenants) and fleet-scale rounds cubic. *)
let compute_loads t =
  let loads = Array.make (max 1 t.nhosts) 0.0 in
  let add lbl g =
    match Hashtbl.find_opt t.host_by_label lbl with
    | Some i -> loads.(i) <- loads.(i) +. g
    | None -> ()
  in
  iter_tenants t (fun tn ->
      if not tn.tn_gone then
        let g = M.Intent.total_guaranteed tn.tn_intent in
        match tn.tn_state with
        | Placed l | Placing l -> add l g
        | Migrating { from_; to_ } ->
          add from_ g;
          add to_ g
        | Unplaced | Fleet_degraded -> ());
  loads

let candidates t tn ~loads ~exclude =
  let rec collect i acc =
    if i < 0 then acc
    else
      let h = t.harr.(i) in
      let ok =
        h.h_belief = `Reachable
        && t.round_no >= h.h_held_until
        && (not (List.mem i tn.tn_tried))
        && not (List.mem i exclude)
      in
      collect (i - 1) (if ok then i :: acc else acc)
  in
  collect (t.nhosts - 1) []
  |> List.map (fun i -> (loads.(i), i))
  |> List.sort compare |> List.map snd

let try_place t tn ~loads =
  match candidates t tn ~loads ~exclude:[] with
  | [] ->
    if tn.tn_state <> Fleet_degraded then begin
      tn.tn_state <- Fleet_degraded;
      tn.tn_was_degraded <- true;
      record t
        (D_degraded
           { tenant = tn.tn_id; cause = M.Mgr_error.No_feasible_host { tenant = tn.tn_id } })
    end;
    tn.tn_tried <- [];
    tn.tn_retry_at <- t.round_no + t.cfg.degraded_retry
  | i :: _ ->
    let h = t.harr.(i) in
    tn.tn_state <- Placing h.h_label;
    loads.(i) <- loads.(i) +. M.Intent.total_guaranteed tn.tn_intent;
    send_cmd t h Primary tn.tn_id (Cplace tn.tn_intent)

let try_migrate t tn from_label ~loads =
  let from_i = Hashtbl.find t.host_by_label from_label in
  match candidates t tn ~loads ~exclude:[ from_i ] with
  | [] -> tn.tn_retry_at <- t.round_no + t.cfg.degraded_retry
  | i :: _ ->
    let h = t.harr.(i) in
    tn.tn_state <- Migrating { from_ = from_label; to_ = h.h_label };
    tn.tn_prev <- Some from_label;
    tn.tn_reason <- Some Slo;
    loads.(i) <- loads.(i) +. M.Intent.total_guaranteed tn.tn_intent;
    send_cmd t h Primary tn.tn_id (Cplace tn.tn_intent)

let drive_tenants t =
  let loads = compute_loads t in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.tenant_tbl id with
      | None -> ()
      | Some tn ->
        if tn.tn_gone then begin
          match tn.tn_state with
          | Unplaced | Fleet_degraded -> remove_tenant t id
          | Placed l when not (has_primary_inflight t id) ->
            let h = get t l in
            if h.h_belief = `Reachable then send_cmd t h Primary id (Crevoke id)
            else (
              (* the host is gone; drop the desire and let
                 reconciliation revoke the stray when it reappears *)
              remove_tenant t id)
          | _ -> ()
        end
        else if not (has_primary_inflight t id) then
          match tn.tn_state with
          | Unplaced -> try_place t tn ~loads
          | Fleet_degraded when t.round_no >= tn.tn_retry_at ->
            tn.tn_tried <- [];
            try_place t tn ~loads
          | Placed l when t.round_no >= tn.tn_retry_at ->
            let h = get t l in
            if h.h_belief = `Reachable && List.mem id h.h_sick then try_migrate t tn l ~loads
          | _ -> ())
    t.tenant_order

let round t =
  t.round_no <- t.round_no + 1;
  advance_and_report t;
  for i = 0 to t.nhosts - 1 do
    deliver_commands t.harr.(i)
  done;
  for i = 0 to t.nhosts - 1 do
    receive t t.harr.(i)
  done;
  check_reachability t;
  retry_commands t;
  drive_tenants t

let run t ~rounds =
  for _ = 1 to rounds do
    round t
  done

let rounds t = t.round_no

(* {1 Observation} *)

let host_view t label =
  match Hashtbl.find_opt t.host_by_label label with
  | None -> None
  | Some i ->
    let h = t.harr.(i) in
    Some
      (if h.h_host = None then Crashed
       else match h.h_belief with `Reachable -> Reachable | `Unreachable -> Unreachable)

let tenant_view t id =
  Option.map (fun tn -> tn.tn_state) (Hashtbl.find_opt t.tenant_tbl id)

let tenants t = t.tenant_order
let decisions t = List.rev t.log
let decisions_fingerprint t = t.fp

let digest t =
  let d = ref Trace.fnv_basis in
  for i = 0 to t.nhosts - 1 do
    match t.harr.(i).h_host with
    | None -> d := Trace.fnv_string !d "crashed"
    | Some host -> d := Trace.fnv_int64 !d (Ihnet.Host.scan host).Scanport.s_digest
  done;
  !d

let host_digests t =
  let acc = ref [] in
  for i = t.nhosts - 1 downto 0 do
    match t.harr.(i).h_host with
    | None -> ()
    | Some host ->
      acc := (t.harr.(i).h_label, (Ihnet.Host.scan host).Scanport.s_digest) :: !acc
  done;
  !acc

let channel_rng_peek t label =
  let h = get t label in
  Trace.fnv_int64
    (Trace.fnv_int64 Trace.fnv_basis (Channel.rng_peek h.h_cmd))
    (Channel.rng_peek h.h_up)

let collect t =
  let members = ref [] in
  for i = t.nhosts - 1 downto 0 do
    let h = t.harr.(i) in
    match h.h_host with
    | None -> ()
    | Some host ->
      let fab = Ihnet.Host.fabric host in
      let mine = ref [] in
      iter_tenants t (fun tn ->
          match tn.tn_state with
          | Placed l when l = h.h_label -> mine := tn.tn_id :: !mine
          | _ -> ());
      members :=
        {
          Mon.Fleet.label = h.h_label;
          counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Software;
          tenants = List.rev !mine;
          slo = Some (fun () -> h.h_last_slo);
        }
        :: !members
  done;
  Mon.Fleet.collect ~round:t.round_no !members

let pp ppf t =
  let reach = ref 0 and unreach = ref 0 and crashed = ref 0 in
  for i = 0 to t.nhosts - 1 do
    let h = t.harr.(i) in
    if h.h_host = None then incr crashed
    else match h.h_belief with `Reachable -> incr reach | `Unreachable -> incr unreach
  done;
  Format.fprintf ppf
    "fleet: %d host(s) (%d reachable, %d unreachable, %d crashed), %d tenant(s), round %d, %d decision(s)@."
    t.nhosts !reach !unreach !crashed
    (List.length t.tenant_order)
    t.round_no (List.length t.log);
  for i = 0 to t.nhosts - 1 do
    let h = t.harr.(i) in
    let state =
      if h.h_host = None then "crashed"
      else match h.h_belief with `Reachable -> "reachable" | `Unreachable -> "unreachable"
    in
    let placed = ref [] in
    iter_tenants t (fun tn ->
        match tn.tn_state with
        | Placed l when l = h.h_label -> placed := tn.tn_id :: !placed
        | _ -> ());
    Format.fprintf ppf "  %-16s %-11s epoch=%d load=%a tenants=[%s]@." h.h_label state
      h.h_epoch Units.pp_rate (load_of t i)
      (String.concat "," (List.rev_map string_of_int !placed))
  done;
  iter_tenants t (fun tn ->
      let state =
        match tn.tn_state with
        | Unplaced -> "unplaced"
        | Placing l -> Printf.sprintf "placing on %s" l
        | Placed l -> Printf.sprintf "placed on %s" l
        | Migrating { from_; to_ } -> Printf.sprintf "migrating %s -> %s" from_ to_
        | Fleet_degraded -> "fleet-degraded"
      in
      Format.fprintf ppf "  tenant %d: %s@." tn.tn_id state)
