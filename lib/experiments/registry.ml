let all =
  [
    ("E1", E1_figure1.run);
    ("E2", E2_latency_share.run);
    ("E3", E3_loopback.run);
    ("E4", E4_colocation.run);
    ("E5", E5_ddio.run);
    ("E6", E6_detection.run);
    ("E7", E7_overhead.run);
    ("E8", E8_policies.run);
    ("E9", E9_models.run);
    ("E10", E10_decision_cost.run);
    ("E11", E11_work_conserving.run);
    ("E12", E12_multimodal.run);
    ("E13", E13_cxl.run);
    ("E14", E14_ring_placement.run);
    ("E15", E15_admission.run);
    ("E16", E16_heartbeat_sizing.run);
    ("E17", E17_remediation.run);
    ("E18", E18_sensor_trust.run);
    ("E19", E19_tail_latency.run);
    ("E20", E20_fleet_failover.run);
    ("A1", Ablations.run_a1);
    ("A2", Ablations.run_a2);
    ("A3", Ablations.run_a3);
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.assoc_opt id all

let contains_mismatch verdict =
  let needle = "MISMATCH" in
  let n = String.length verdict and m = String.length needle in
  let rec go i = i + m <= n && (String.sub verdict i m = needle || go (i + 1)) in
  go 0

let run_all () =
  let results =
    List.map
      (fun (_, run) ->
        let r = run () in
        Common.print_result r;
        r)
      all
  in
  let summary =
    Ihnet_util.Table.create ~title:"summary: paper claim vs measured"
      ~columns:[ "id"; "experiment"; "outcome" ]
  in
  List.iter
    (fun (r : Common.result) ->
      Ihnet_util.Table.add_row summary
        [
          r.Common.id;
          r.Common.title;
          (if contains_mismatch r.Common.verdict then "MISMATCH" else "reproduced");
        ])
    results;
  print_newline ();
  Ihnet_util.Table.print summary;
  let bad = List.length (List.filter (fun r -> contains_mismatch r.Common.verdict) results) in
  Printf.printf "%d/%d experiments reproduce their paper claims\n" (List.length results - bad)
    (List.length results);
  results
