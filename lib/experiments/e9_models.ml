(* E9 — §3.2-Q1: "What resource model (e.g., pipe and hose) best fits
   the intra-host network?"

   Tenants arrive one by one, each wanting a 4 GB/s guarantee for its
   NIC traffic toward host memory. Under the pipe model the guarantee
   is expressed as pipes to two specific DIMMs; under the hose model as
   an aggregate at the NIC. We count how many tenants each model admits
   before the scheduler refuses, and the capacity each reserves. *)

module U = Ihnet_util
module R = Ihnet_manager
open Common

let rate = 4e9
let nics = [ "nic0"; "nic1"; "nic2" ]

let admit_loop mgr make_intent =
  let rec go n =
    if n >= 64 then n
    else
      let tenant = n + 1 in
      match R.Manager.submit mgr (make_intent ~tenant) with
      | Ok _ -> go (n + 1)
      | Error _ -> n
  in
  go 0

let run_model label make_intent =
  let host = fresh_host () in
  let mgr = R.Manager.create (Ihnet.Host.fabric host) () in
  let admitted = admit_loop mgr make_intent in
  let reserved = R.Scheduler.total_reserved (R.Manager.scheduler mgr) in
  (label, admitted, reserved, reserved /. float_of_int (max 1 admitted))

let run () =
  (* both models round-robin tenants across the three NICs *)
  let pipe_intent ~tenant =
    let nic = List.nth nics (tenant mod 3) in
    {
      (R.Intent.pipe ~tenant ~src:nic ~dst:"dimm0.0.0" ~rate:(rate /. 2.0)) with
      R.Intent.targets =
        [
          R.Intent.Pipe { src = nic; dst = "dimm0.0.0"; rate = rate /. 2.0 };
          R.Intent.Pipe { src = nic; dst = "dimm1.0.0"; rate = rate /. 2.0 };
        ];
    }
  in
  let hose_intent ~tenant =
    let nic = List.nth nics (tenant mod 3) in
    R.Intent.hose ~tenant ~endpoint:nic ~to_host:rate ~from_host:0.0
  in
  let rows = [ run_model "pipe" pipe_intent; run_model "hose" hose_intent ] in
  let table =
    U.Table.create ~title:"E9: admitted tenants and reserved capacity, pipe vs hose model"
      ~columns:[ "model"; "tenants admitted"; "total reserved (sum over hops)"; "reserved per tenant" ]
  in
  List.iter
    (fun (label, admitted, reserved, per) ->
      U.Table.add_row table
        [
          label;
          string_of_int admitted;
          Printf.sprintf "%.0f GB/s" (gb reserved);
          Printf.sprintf "%.1f GB/s" (gb per);
        ])
    rows;
  let _, pipe_n, _, pipe_per = List.nth rows 0 in
  let _, hose_n, _, hose_per = List.nth rows 1 in
  let ok = hose_n >= pipe_n && hose_per < pipe_per in
  {
    id = "E9";
    title = "resource model: pipe vs hose";
    claim =
      "the hose model reserves per-endpoint aggregates and should pack more tenants than \
       per-pair pipes, which over-reserve deep paths";
    tables = [ table ];
    verdict =
      Printf.sprintf "pipe admits %d tenants (%.1f GB/s reserved each), hose admits %d (%.1f) — %s"
        pipe_n (gb pipe_per) hose_n (gb hose_per)
        (if ok then "hose packs tighter (expected shape)" else "MISMATCH");
  }
