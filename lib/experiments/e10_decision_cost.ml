(* E10 — §3.2-Q3: "the schedule and arbitration may need to be finished
   in microsecond level in order to achieve efficient and accurate
   resource management."

   Wall-clock cost of one compile+schedule decision and one arbiter
   enforcement pass, as the host scales from a small box to a
   many-switch monster. (bench/main.exe repeats these with bechamel for
   rigorous statistics; this table is the quick summary.) *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module R = Ihnet_manager
open Common

let wall_clock_ns f =
  (* warm up, then time enough repetitions to dominate timer noise *)
  for _ = 1 to 3 do
    f ()
  done;
  let reps = 50 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps

let scale_row ~sockets ~switches ~devices =
  let topo = T.Builder.scaled ~sockets ~switches_per_socket:switches ~devices_per_switch:devices () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  let intent = R.Intent.pipe ~tenant:1 ~src:"nic0" ~dst:"socket0" ~rate:1e9 in
  let compile_cost =
    wall_clock_ns (fun () ->
        match R.Interpreter.compile topo intent with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e))
  in
  let schedule_cost =
    let reqs = Result.get_ok (R.Interpreter.compile topo intent) in
    wall_clock_ns (fun () ->
        let sched = R.Scheduler.create topo () in
        match R.Scheduler.place_all sched reqs with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e))
  in
  (* arbiter enforcement: re-sharing one placement among 8 live flows *)
  let mgr = R.Manager.create fab () in
  (match R.Manager.submit mgr intent with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e));
  let path =
    Option.get
      (T.Routing.shortest_path topo
         (T.Topology.device_by_name topo "nic0" |> Option.get).T.Device.id
         (T.Topology.device_by_name topo "socket0" |> Option.get).T.Device.id)
  in
  let flows =
    List.init 8 (fun _ -> E.Fabric.start_flow fab ~tenant:1 ~path ~size:E.Flow.Unbounded ())
  in
  List.iter (fun f -> ignore (R.Manager.attach mgr f)) flows;
  let arbitrate_cost = wall_clock_ns (fun () -> R.Arbiter.refresh (R.Manager.arbiter mgr)) in
  ( Printf.sprintf "%dx%dx%d (%d dev, %d links)" sockets switches devices
      (T.Topology.device_count topo) (T.Topology.link_count topo),
    compile_cost,
    schedule_cost,
    arbitrate_cost )

let run () =
  let rows =
    [
      scale_row ~sockets:1 ~switches:1 ~devices:3;
      scale_row ~sockets:2 ~switches:2 ~devices:4;
      scale_row ~sockets:4 ~switches:4 ~devices:8;
      scale_row ~sockets:8 ~switches:4 ~devices:16;
    ]
  in
  let table =
    U.Table.create ~title:"E10: decision cost vs host scale (wall clock per operation)"
      ~columns:[ "topology"; "interpret"; "schedule"; "arbitrate (8 flows)" ]
  in
  List.iter
    (fun (label, c, s, a) ->
      U.Table.add_row table
        [
          label;
          Format.asprintf "%a" U.Units.pp_time c;
          Format.asprintf "%a" U.Units.pp_time s;
          Format.asprintf "%a" U.Units.pp_time a;
        ])
    rows;
  let _, _, s_big, a_big = List.nth rows 3 in
  let ok = s_big < U.Units.ms 5.0 && a_big < U.Units.ms 1.0 in
  {
    id = "E10";
    title = "microsecond-level management decisions";
    claim = "schedule and arbitration may need to finish at microsecond level (Q3)";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "on the largest host, scheduling costs %s and an arbitration pass %s — %s"
        (Format.asprintf "%a" U.Units.pp_time s_big)
        (Format.asprintf "%a" U.Units.pp_time a_big)
        (if ok then "arbitration fits the microsecond budget; full rescheduling does not \
                     (quantifies Q3's challenge)"
         else "MISMATCH: costs exploded");
  }
