(* E18 — sensor trust: lying telemetry vs the evidence gate.

   §3.1 wants monitoring for "device failure, misconfiguration, and
   performance anomaly detection" — but the monitor is itself built
   from sensors, and a sensor can lie. A probe agent that drops its own
   probes manufactures heartbeat accusations against healthy links; a
   drifting or stuck counter invents (or hides) load. If the
   remediation supervisor trusts any single detector, a handful of bad
   sensors can drive real migrations of healthy traffic.

   Scenario, run twice (identical seeds, workload and sensor faults):
   a guaranteed 10 GB/s victim pipe, >= 3 lying sensors (a corrupted
   probe agent on an on-path NIC, drifting byte counters on a healthy
   hop, stuck byte counters on the cross-socket link), and ONE true
   silent degradation (capacity x0.05, fabric announcements disabled).

   - ungated: heartbeat suspicion alone drives the full escalation
     ladder — the lying probe agent gets healthy links migrated away
     from (false migrations > 0);
   - gated: Replace/Degrade additionally require a corroborated
     verdict from the evidence gate. Heartbeat is one modality; the
     second is a targeted residual check (per-link latency probe vs its
     pre-fault baseline) reported under [Counter]. Only the truly
     degraded link gets two agreeing modalities, so false migrations
     drop to zero while the true fault still recovers in comparable
     time (the acceptance bound is TTR <= 2x the ungated baseline).

   The sampler's plausibility checks ({!Ihnet_monitor.Sampler.health})
   run alongside and flag the series-level liars — physics-violating
   byte deltas and flatlines — showing the lying sensors are also
   independently detectable, not just outvoted. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module M = Ihnet_monitor
module R = Ihnet_manager
open Common

let victim_rate = U.Units.gbytes_per_s 10.0
let sick = E.Fault.degrade ~capacity_factor:0.05 ()

let tenant_rate host ~tenant =
  let fab = Ihnet.Host.fabric host in
  E.Fabric.refresh fab;
  List.fold_left
    (fun acc (f : E.Flow.t) ->
      if f.E.Flow.tenant = tenant && f.E.Flow.cls = E.Flow.Payload then acc +. f.E.Flow.rate
      else acc)
    0.0 (E.Fabric.active_flows fab)

let start_victim host ~src ~dst =
  let mgr = Ihnet.Host.enable_manager host () in
  let p =
    match Ihnet.Host.submit_intent host (R.Intent.pipe ~tenant:1 ~src ~dst ~rate:victim_rate) with
    | Ok [ p ] -> p
    | Ok _ -> failwith "E18: expected one placement"
    | Error e -> failwith ("E18: admission refused: " ^ R.Mgr_error.to_string e)
  in
  let f =
    E.Fabric.start_flow (Ihnet.Host.fabric host) ~tenant:1 ~demand:victim_rate
      ~path:p.R.Placement.path ~size:E.Flow.Unbounded ()
  in
  ignore (R.Manager.attach mgr f);
  p

let hop_link (p : R.Placement.t) n =
  (List.nth p.R.Placement.path.T.Path.hops n).T.Path.link.T.Link.id

type outcome = {
  label : string;
  pre : float;
  faulted : float;
  post : float;
  detect : U.Units.ns option;
  recover : U.Units.ns option;
  true_migrations : int;  (** impactful Replace/Degrade on the faulted link *)
  false_migrations : int;  (** impactful Replace/Degrade on healthy links *)
  liars : int;  (** sensor faults active during the fault era *)
  flagged : int;  (** distinct links the plausibility checks called out *)
}

(* One-hop latency probe: behavioural (serialization at residual rate +
   fault delay), so it distinguishes a genuinely degraded link from one
   a lying probe agent merely accuses. *)
let link_latency host link_id =
  let topo = Ihnet.Host.topology host in
  let l = T.Topology.link topo link_id in
  E.Fabric.path_latency (Ihnet.Host.fabric host) ~payload_bytes:64
    { T.Path.src = l.T.Link.a; dst = l.T.Link.b; hops = [ { T.Path.link = l; dir = T.Link.Fwd } ] }

let run_one ~gated =
  let host = fresh_host () in
  let p = start_victim host ~src:"ext" ~dst:"socket0" in
  let config =
    {
      R.Remediation.default_config with
      R.Remediation.use_fault_events = false (* the degradation is silent *);
      suspect_score = 0.35 (* aggressive detector tuning: catches silent faults fast,
                              and is exactly what a lying probe agent can weaponize *);
    }
  in
  let rem =
    Ihnet.Host.enable_remediation host ~config
      ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.evidence = gated }
      ()
  in
  let s = Ihnet.Host.start_monitoring host () in
  Ihnet.Host.run_for host (U.Units.ms 6.0) (* heartbeat baseline warm-up *);
  (* The liars. A corrupted probe agent on nic0 (on the victim's path)
     randomly declares its probes lost; byte counters on the healthy
     first hop over-report x3 (both directions); byte counters on the
     cross-socket link are stuck at their last value. *)
  let fab = Ihnet.Host.fabric host in
  let h0 = hop_link p 0 and bad = hop_link p 1 in
  let cross = (find_link host "socket0" "socket1").T.Link.id in
  let bytes_series id dir = Printf.sprintf "link.%d.%s.bytes" id dir in
  E.Fabric.inject_sensor_fault fab
    (E.Sensorfault.Device (device_id host "nic0"))
    (E.Sensorfault.probe_corruption ~loss:0.9 ());
  List.iter
    (fun dir ->
      E.Fabric.inject_sensor_fault fab
        (E.Sensorfault.Series (bytes_series h0 dir))
        (E.Sensorfault.drifting ~factor:3.0);
      E.Fabric.inject_sensor_fault fab (E.Sensorfault.Series (bytes_series cross dir)) E.Sensorfault.stuck_at)
    [ "fwd"; "rev" ];
  let liars = List.length (E.Fabric.sensor_faults fab) in
  Ihnet.Host.run_for host (U.Units.ms 4.0) (* lying sensors active, no real fault *);
  let pre = tenant_rate host ~tenant:1 in
  (* Per-link latency baselines under steady load, for the residual check. *)
  let baseline = Hashtbl.create 32 in
  List.iter
    (fun (l : T.Link.t) -> Hashtbl.replace baseline l.T.Link.id (link_latency host l.T.Link.id))
    (T.Topology.links (Ihnet.Host.topology host));
  let t0 = Ihnet.Host.now host in
  E.Fabric.inject_fault fab bad sick;
  Ihnet.Host.run_for host (U.Units.us 100.0);
  let faulted = tenant_rate host ~tenant:1 in
  (* Fault era: advance in supervisor-period chunks; when gated, run the
     residual check over the evidence gate's current suspects. *)
  for _ = 1 to 100 do
    Ihnet.Host.run_for host (U.Units.us 200.0);
    match Ihnet.Host.evidence host with
    | None -> ()
    | Some ev ->
      List.iter
        (fun (link, _) ->
          match Hashtbl.find_opt baseline link with
          | None -> ()
          | Some base ->
            if link_latency host link > 3.0 *. base then
              M.Evidence.report ev ~modality:M.Evidence.Counter ~link ~score:0.9
            else M.Evidence.invalidate ev ~modality:M.Evidence.Counter ~link)
        (M.Evidence.suspects ev)
  done;
  let post = tenant_rate host ~tenant:1 in
  let true_migrations, false_migrations =
    List.fold_left
      (fun (tm, fm) (a : R.Remediation.action) ->
        if
          a.R.Remediation.impact
          && (a.R.Remediation.action_stage = R.Remediation.Replace
             || a.R.Remediation.action_stage = R.Remediation.Degrade)
        then if a.R.Remediation.action_link = bad then (tm + 1, fm) else (tm, fm + 1)
        else (tm, fm))
      (0, 0) (R.Remediation.actions rem)
  in
  let flagged =
    List.sort_uniq compare
      (List.map (fun (id, _, _) -> id) (M.Sampler.health s)
      @ List.map fst (M.Counter.health (M.Sampler.counter s)))
    |> List.length
  in
  ( {
      label = (if gated then "evidence gate (quorum 2)" else "ungated (trust every detector)");
      pre;
      faulted;
      post;
      detect = R.Remediation.time_to_detect rem bad ~since:t0;
      recover = R.Remediation.time_to_recover rem bad;
      true_migrations;
      false_migrations;
      liars;
      flagged;
    },
    bad )

let run () =
  let ungated, _ = run_one ~gated:false in
  let gated, _ = run_one ~gated:true in
  let table =
    U.Table.create
      ~title:"E18: >=3 lying sensors + 1 true silent degradation — gated vs ungated remediation"
      ~columns:
        [
          "remediation";
          "pre";
          "under fault";
          "after loop";
          "detect";
          "recover";
          "true migr";
          "false migr";
          "liars";
          "flagged";
        ]
  in
  let opt_time = function Some v -> Format.asprintf "%a" U.Units.pp_time v | None -> "-" in
  List.iter
    (fun o ->
      U.Table.add_row table
        [
          o.label;
          Format.asprintf "%a" U.Units.pp_rate o.pre;
          Format.asprintf "%a" U.Units.pp_rate o.faulted;
          Format.asprintf "%a" U.Units.pp_rate o.post;
          opt_time o.detect;
          opt_time o.recover;
          string_of_int o.true_migrations;
          string_of_int o.false_migrations;
          string_of_int o.liars;
          string_of_int o.flagged;
        ])
    [ ungated; gated ];
  let ttr_ratio =
    match (gated.recover, ungated.recover) with
    | Some g, Some u when u > 0.0 -> Some (g /. u)
    | _ -> None
  in
  let ok =
    gated.false_migrations = 0
    && ungated.false_migrations > 0
    && gated.post >= 0.9 *. gated.pre
    && (match ttr_ratio with Some r -> r <= 2.0 | None -> false)
    && gated.flagged > 0
  in
  {
    id = "E18";
    title = "sensor trust: evidence gating vs lying telemetry";
    claim =
      "the monitor is made of sensors, and sensors fail too: remediation should demand \
       corroboration from independent modalities before migrating, so lying telemetry cannot \
       evict healthy links";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "ungated supervisor performed %d false migration(s) on healthy links under %d lying \
         sensors; the evidence gate performed %d while still resolving the true fault (TTR %s, \
         %.1fx the ungated baseline; victim restored to %.0f%% of pre-fault); plausibility checks \
         flagged %d lying link sensor(s) — %s"
        ungated.false_migrations ungated.liars gated.false_migrations
        (opt_time gated.recover)
        (match ttr_ratio with Some r -> r | None -> Float.nan)
        (100.0 *. gated.post /. gated.pre)
        gated.flagged
        (if ok then "matches the sensor-fault-tolerance goal" else "MISMATCH");
  }
