(** Shared plumbing for the experiment harness. *)

type result = {
  id : string;  (** "E1" ... "E11". *)
  title : string;
  claim : string;  (** The paper statement this experiment operationalizes. *)
  tables : Ihnet_util.Table.t list;
  verdict : string;  (** One-line measured-vs-expected summary. *)
}

val print_result : result -> unit

val fresh_host : ?seed:int -> ?config:Ihnet_topology.Hostconfig.t -> unit -> Ihnet.Host.t
(** A fresh Figure-1 two-socket host. *)

val gb : float -> float
(** Bytes/s → GB/s for table cells. *)

val device_id : Ihnet.Host.t -> string -> Ihnet_topology.Device.id
val find_link : Ihnet.Host.t -> string -> string -> Ihnet_topology.Link.t
(** The unique link between two named devices.
    @raise Failure if absent or ambiguous. *)

val p50 : Ihnet_util.Histogram.t -> float
val p99 : Ihnet_util.Histogram.t -> float
