(* E12 — §3.1-Q3: "Intra-host networks are more heterogeneous, so the
   collected data will have more modalities ... using machine learning
   may be more essential in order to leverage these high-modality data
   for diagnosis."

   A gray failure that no single hardware counter shows: a co-tenant
   silently changes its DMA buffer placement, pushing the socket's DDIO
   I/O-ways past their absorbing rate. Every link's utilization barely
   moves (the flows themselves are unchanged in rate), but jointly the
   modalities — DDIO hit rate, per-channel memory traffic, PCIe
   utilizations — shift by ~1σ each under 3% counter-read noise.

   Three detector configurations race to catch it:
   - per-series CUSUM on link-utilization series only (the homogeneous
     "inter-host style" counter set);
   - per-series CUSUM on utilization + DDIO modalities (needs to know
     which extra series matter);
   - the multimodal learner over all of it, no feature selection. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
open Common

let noise = 0.02 (* absolute, utilization points *)
let period = U.Units.us 100.0

let util_series_of host =
  let topo = Ihnet.Host.topology host in
  List.concat_map
    (fun (l : T.Link.t) ->
      [ Mon.Sampler.util_series l.T.Link.id T.Link.Fwd;
        Mon.Sampler.util_series l.T.Link.id T.Link.Rev ])
    (T.Topology.links topo)

let modal_series = [ Mon.Sampler.ddio_series ~socket:0; Mon.Sampler.ddio_series ~socket:1 ]

(* Baseline: one busy DDIO writer, striped direct DMA writes, and
   striped reads — every memory channel carries traffic both ways. *)
let start_baseline host =
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let route a b =
    Option.get (T.Routing.shortest_path topo (device_id host a) (device_id host b))
  in
  ignore
    (E.Fabric.start_flow fab ~tenant:1 ~demand:26e9 ~llc_target:true
       ~path:(route "nic0" "socket0") ~size:E.Flow.Unbounded ());
  let dimms = List.init 6 (fun i -> Printf.sprintf "dimm0.%d.%d" (i / 3) (i mod 3)) in
  let direct =
    List.map
      (fun d ->
        E.Fabric.start_flow fab ~tenant:2 ~demand:1.5e9 ~path:(route "nic1" d)
          ~size:E.Flow.Unbounded ())
      dimms
  in
  List.iter
    (fun d ->
      ignore
        (E.Fabric.start_flow fab ~tenant:3 ~demand:1.0e9 ~path:(route d "ssd0")
           ~size:E.Flow.Unbounded ()))
    dimms;
  direct

(* The anomaly: tenant 2 re-targets its 9 GB/s of DMA from the DIMMs to
   the LLC (a buffer-placement change) — same NIC, same rate. *)
let inject_anomaly host direct =
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let route a b =
    Option.get (T.Routing.shortest_path topo (device_id host a) (device_id host b))
  in
  List.iter (E.Fabric.stop_flow fab) direct;
  ignore
    (E.Fabric.start_flow fab ~tenant:2 ~demand:9e9 ~llc_target:true
       ~path:(route "nic1" "socket0") ~size:E.Flow.Unbounded ())

type outcome = { false_alarms : int; latency : float (* ns; nan = not detected *) }

let run_race () =
  let host = fresh_host () in
  let sampler =
    Mon.Sampler.start (Ihnet.Host.fabric host)
      {
        (Mon.Sampler.default_config ()) with
        Mon.Sampler.period;
        fidelity = Mon.Counter.Oracle;
        noise;
      }
  in
  let utils = util_series_of host in
  let cusum_utils = Mon.Anomaly.create () in
  List.iter
    (fun s -> Mon.Anomaly.watch cusum_utils ~series:s (Mon.Anomaly.Cusum { drift = 0.5; threshold = 8.0 }))
    utils;
  (* the same util-only detector with its threshold raised until the
     noisy baseline is quiet: what an operator would actually deploy *)
  let cusum_tuned = Mon.Anomaly.create () in
  List.iter
    (fun s -> Mon.Anomaly.watch cusum_tuned ~series:s (Mon.Anomaly.Cusum { drift = 0.5; threshold = 20.0 }))
    utils;
  let cusum_all = Mon.Anomaly.create () in
  List.iter
    (fun s -> Mon.Anomaly.watch cusum_all ~series:s (Mon.Anomaly.Cusum { drift = 0.5; threshold = 8.0 }))
    (utils @ modal_series);
  let multimodal = Mon.Multimodal.create ~series:(utils @ modal_series) () in
  let feed () =
    Mon.Anomaly.feed cusum_utils (Mon.Sampler.telemetry sampler);
    Mon.Anomaly.feed cusum_tuned (Mon.Sampler.telemetry sampler);
    Mon.Anomaly.feed cusum_all (Mon.Sampler.telemetry sampler);
    ignore (Mon.Multimodal.feed multimodal (Mon.Sampler.telemetry sampler))
  in
  let direct = start_baseline host in
  (* learn + quiet period: 40 ms = 400 samples *)
  for _ = 1 to 400 do
    Ihnet.Host.run_for host period;
    feed ()
  done;
  let fp_utils = List.length (Mon.Anomaly.alarms cusum_utils) in
  let fp_tuned = List.length (Mon.Anomaly.alarms cusum_tuned) in
  let fp_all = List.length (Mon.Anomaly.alarms cusum_all) in
  let fp_multi = List.length (Mon.Multimodal.alarms multimodal) in
  Mon.Anomaly.clear_alarms cusum_utils;
  Mon.Anomaly.clear_alarms cusum_tuned;
  Mon.Anomaly.clear_alarms cusum_all;
  let t_anomaly = Ihnet.Host.now host in
  inject_anomaly host direct;
  for _ = 1 to 400 do
    Ihnet.Host.run_for host period;
    feed ()
  done;
  let latency_of = function
    | Some at when at >= t_anomaly -> at -. t_anomaly
    | Some _ | None -> nan
  in
  let out_utils =
    {
      false_alarms = fp_utils;
      latency =
        latency_of (Option.map (fun (a : Mon.Anomaly.alarm) -> a.Mon.Anomaly.at)
                      (Mon.Anomaly.first_alarm cusum_utils));
    }
  in
  let out_tuned =
    {
      false_alarms = fp_tuned;
      latency =
        latency_of (Option.map (fun (a : Mon.Anomaly.alarm) -> a.Mon.Anomaly.at)
                      (Mon.Anomaly.first_alarm cusum_tuned));
    }
  in
  let out_all =
    {
      false_alarms = fp_all;
      latency =
        latency_of (Option.map (fun (a : Mon.Anomaly.alarm) -> a.Mon.Anomaly.at)
                      (Mon.Anomaly.first_alarm cusum_all));
    }
  in
  let multi_first =
    List.find_opt
      (fun (a : Mon.Multimodal.alarm) -> a.Mon.Multimodal.at >= t_anomaly)
      (Mon.Multimodal.alarms multimodal)
  in
  let out_multi =
    {
      false_alarms = fp_multi;
      latency =
        latency_of (Option.map (fun (a : Mon.Multimodal.alarm) -> a.Mon.Multimodal.at) multi_first);
    }
  in
  (* what drove the alarm, captured at alarm time *)
  let explanation =
    match multi_first with
    | Some a -> (
      match a.Mon.Multimodal.drivers with
      | (series, z) :: _ -> Printf.sprintf "%s (|z|=%.1f)" series z
      | [] -> "-")
    | None -> "-"
  in
  Mon.Sampler.stop sampler;
  (out_utils, out_tuned, out_all, out_multi, List.length utils, explanation)

let run () =
  let utils, tuned, all, multi, n_utils, explanation = run_race () in
  let table =
    U.Table.create
      ~title:"E12: gray-failure detection — homogeneous counters vs high-modality data"
      ~columns:[ "detector"; "series watched"; "false alarms (40ms)"; "detection latency" ]
  in
  let row label n (o : outcome) =
    U.Table.add_row table
      [
        label;
        string_of_int n;
        string_of_int o.false_alarms;
        (if Float.is_nan o.latency then "not detected"
         else Format.asprintf "%a" U.Units.pp_time o.latency);
      ]
  in
  row "per-series CUSUM(8), link utils only" n_utils utils;
  row "per-series CUSUM(20), link utils only" n_utils tuned;
  row "per-series CUSUM(8), + ddio modality" (n_utils + 2) all;
  row "multimodal learner, all series" (n_utils + 2) multi;
  let ok =
    (not (Float.is_nan multi.latency))
    && multi.false_alarms = 0
    && (utils.false_alarms > 3 (* noisy per-series detector is unusable as-is *)
       || Float.is_nan utils.latency)
    && (Float.is_nan tuned.latency || tuned.latency >= multi.latency)
  in
  {
    id = "E12";
    title = "high-modality data is what makes gray failures detectable";
    claim =
      "heterogeneous modalities (DDIO cache usage, PCIe bandwidth, ...) carry the diagnosis \
       signal; learned multivariate detection leverages them (Q3)";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "util-only CUSUM: %d false alarms per 40 ms at the sensitive threshold, %s once \
         tuned quiet; the multimodal learner detects in %s with 0 false alarms and names \
         the modality (%s) — %s"
        utils.false_alarms
        (if Float.is_nan tuned.latency then "blind"
         else Format.asprintf "%a" U.Units.pp_time tuned.latency)
        (if Float.is_nan multi.latency then "NEVER"
         else Format.asprintf "%a" U.Units.pp_time multi.latency)
        explanation
        (if ok then "matches the paper's Q3 argument" else "MISMATCH");
  }
