(* E4 — §2's co-location story: "a remote key-value store client and a
   machine learning application may be co-located on the same host ...
   The key-value store application seems to have no interference with
   the machine learning application since it does not use GPU at all.
   However, the traffic ... may traverse the same PCIe root port and
   the memory bus and therefore suffer from high latency".

   Three phases: KV alone; KV + ML trainer on the same root port
   subtree; KV moved in intent to a disjoint subtree (nic1, direct root
   port) as the no-sharing control. *)

module U = Ihnet_util
module W = Ihnet_workload
open Common

let kv_stats kv =
  let lat = W.Kvstore.latencies kv in
  (p50 lat, p99 lat, W.Kvstore.achieved_rate kv)

let run () =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let table =
    U.Table.create ~title:"E4: KV store vs co-located ML trainer"
      ~columns:[ "phase"; "kv p50"; "kv p99"; "kv req/s"; "ml iters" ]
  in
  let add phase (a, b, c) iters =
    U.Table.add_row table
      [
        phase;
        Format.asprintf "%a" U.Units.pp_time a;
        Format.asprintf "%a" U.Units.pp_time b;
        Printf.sprintf "%.0fk" (c /. 1e3);
        (match iters with None -> "-" | Some n -> string_of_int n);
      ]
  in
  (* phase 1: kv alone on nic0 *)
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:1 ~nic:"nic0") in
  Ihnet.Host.run_for host (U.Units.ms 20.0);
  let alone = kv_stats kv in
  add "kv alone (nic0)" alone None;
  W.Kvstore.stop kv;
  (* phase 2: kv + trainer sharing rp0.0's subtree *)
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:1 ~nic:"nic0") in
  let ml =
    W.Mltrain.start fab
      {
        (W.Mltrain.default_config ~tenant:2 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
        W.Mltrain.compute_time = 0.0;
        loader_streams = 3;
      }
  in
  Ihnet.Host.run_for host (U.Units.ms 20.0);
  let shared = kv_stats kv in
  add "kv + ml, shared root port" shared (Some (W.Mltrain.iterations_done ml));
  W.Kvstore.stop kv;
  W.Mltrain.stop ml;
  (* phase 3: control — kv on nic1 (own root port), trainer still on gpu0 *)
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:1 ~nic:"nic1") in
  let ml =
    W.Mltrain.start fab
      {
        (W.Mltrain.default_config ~tenant:2 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
        W.Mltrain.compute_time = 0.0;
        loader_streams = 3;
      }
  in
  Ihnet.Host.run_for host (U.Units.ms 20.0);
  let disjoint = kv_stats kv in
  add "kv on nic1 (own root port) + ml" disjoint (Some (W.Mltrain.iterations_done ml));
  W.Kvstore.stop kv;
  W.Mltrain.stop ml;
  let (p99_alone, p99_shared, p99_disjoint) =
    let (_, a, _) = alone and (_, b, _) = shared and (_, c, _) = disjoint in
    (a, b, c)
  in
  let ok = p99_shared > p99_alone *. 1.5 && p99_disjoint < p99_shared in
  {
    id = "E4";
    title = "KV store suffers from a GPU-training co-tenant";
    claim =
      "a kv store that 'does not use GPU at all' still suffers high latency because its \
       traffic traverses the same PCIe root port and memory bus as the ML app";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "kv p99: %.1f us alone -> %.1f us shared -> %.1f us on a disjoint root port — %s"
        (U.Units.ns_to_us p99_alone) (U.Units.ns_to_us p99_shared)
        (U.Units.ns_to_us p99_disjoint)
        (if ok then "sharing, not the GPU, causes the damage (matches paper)" else "MISMATCH");
  }
