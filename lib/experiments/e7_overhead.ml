(* E7 — §3.1-Q2: "Processing the data locally may consume on-device
   computation resources ... sending the collected data to other host
   devices may consume substantial intra-host communication resources."

   Sweep the sampling period across {10us, 100us, 1ms, 10ms} for both
   processing strategies and report: telemetry bandwidth (shipped),
   device CPU time (local), telemetry memory, and the detection latency
   of a threshold alarm on a congestion event injected mid-run — the
   fidelity the overhead buys. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
open Common

let run_cell ~period ~processing =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let sampler =
    Mon.Sampler.start fab
      {
        Mon.Sampler.period;
        fidelity = Mon.Counter.Hardware { max_read_hz = 1e9 /. period };
        noise = 0.0;
        processing;
        tenants = [];
      }
  in
  let watched = (find_link host "pciesw0" "nic0").T.Link.id in
  let platform = Mon.Anomaly.create () in
  List.iter
    (fun dir ->
      Mon.Anomaly.watch platform
        ~series:(Mon.Sampler.util_series watched dir)
        (Mon.Anomaly.Threshold { above = Some 0.8; below = None }))
    [ T.Link.Fwd; T.Link.Rev ];
  Ihnet.Host.run_for host (U.Units.ms 20.0);
  (* congestion event: an elastic flow saturates the watched link *)
  let t_event = Ihnet.Host.now host in
  let path =
    Option.get (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0"))
  in
  let agg = E.Fabric.start_flow fab ~tenant:9 ~llc_target:true ~path ~size:E.Flow.Unbounded () in
  (* feed the platform continuously until the alarm (or 50 ms) *)
  let detection = ref nan in
  (try
     for _ = 1 to 500 do
       Ihnet.Host.run_for host (U.Units.us 100.0);
       Mon.Anomaly.feed platform (Mon.Sampler.telemetry sampler);
       match Mon.Anomaly.first_alarm platform with
       | Some a ->
         detection := a.Mon.Anomaly.at -. t_event;
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  E.Fabric.stop_flow fab agg;
  let shipping = Mon.Sampler.shipping_rate sampler in
  let cpu = Mon.Sampler.cpu_time_consumed sampler in
  let wire = Mon.Sampler.monitoring_wire_bytes sampler in
  let mem = Mon.Telemetry.memory_samples (Mon.Sampler.telemetry sampler) in
  Mon.Sampler.stop sampler;
  (shipping, cpu, wire, mem, !detection)

let run () =
  let table =
    U.Table.create ~title:"E7: monitoring overhead vs sampling period (storage/processing dilemma)"
      ~columns:
        [
          "period";
          "processing";
          "telemetry bw";
          "device cpu (per ms)";
          "fabric bytes (70ms)";
          "stored samples";
          "detection latency";
        ]
  in
  let cells = ref [] in
  List.iter
    (fun period ->
      List.iter
        (fun (label, processing) ->
          let shipping, cpu, wire, mem, det = run_cell ~period ~processing in
          cells := (period, label, shipping, det) :: !cells;
          U.Table.add_row table
            [
              Format.asprintf "%a" U.Units.pp_time period;
              label;
              (if shipping > 0.0 then Format.asprintf "%a" U.Units.pp_rate shipping else "-");
              (if cpu > 0.0 then Format.asprintf "%a" U.Units.pp_time (cpu /. 70.0) else "-");
              Format.asprintf "%a" U.Units.pp_bytes wire;
              string_of_int mem;
              (if Float.is_nan det then "not detected"
               else Format.asprintf "%a" U.Units.pp_time det);
            ])
        [
          ("local", Mon.Sampler.Local { cost_per_sample = 500.0 });
          ("ship", Mon.Sampler.Ship { collector = "socket0"; bytes_per_sample = 64.0 });
        ])
    [ U.Units.us 10.0; U.Units.us 100.0; U.Units.ms 1.0; U.Units.ms 10.0 ];
  (* verdict: detection latency grows with period; shipping bw shrinks *)
  let det_of p =
    List.find_map
      (fun (period, label, _, det) -> if period = p && label = "ship" then Some det else None)
      !cells
  in
  let bw_of p =
    List.find_map
      (fun (period, label, bw, _) -> if period = p && label = "ship" then Some bw else None)
      !cells
  in
  let d_fast = Option.value ~default:nan (det_of (U.Units.us 10.0)) in
  let d_slow = Option.value ~default:nan (det_of (U.Units.ms 10.0)) in
  let b_fast = Option.value ~default:nan (bw_of (U.Units.us 10.0)) in
  let b_slow = Option.value ~default:nan (bw_of (U.Units.ms 10.0)) in
  let ok = d_fast < d_slow && b_fast > b_slow *. 100.0 in
  {
    id = "E7";
    title = "monitoring overhead vs fidelity";
    claim =
      "fine-grained monitoring either burns device compute or fabric bandwidth; \
       microsecond-level loops are costly but cut detection latency";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "10us sampling detects in %s but ships %s; 10ms sampling ships %s but needs %s — %s"
        (Format.asprintf "%a" U.Units.pp_time d_fast)
        (Format.asprintf "%a" U.Units.pp_rate b_fast)
        (Format.asprintf "%a" U.Units.pp_rate b_slow)
        (Format.asprintf "%a" U.Units.pp_time d_slow)
        (if ok then "the dilemma is real (matches paper)" else "MISMATCH");
  }
