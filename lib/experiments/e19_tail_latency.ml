(* E19 — tail-latency SLO intents over the always-on sketch plane.

   §3.2 wants intents richer than bandwidth floors: "predictable
   application performance" includes the latency tail, and the tail is
   invisible to both instantaneous estimates and averages. This
   experiment closes that loop end to end:

   - a pipe intent carries [p99_bound] alongside its rate guarantee;
   - the fabric's always-on latency sketches observe per-hop p99 as a
     request stream churns over the placement;
   - a silent extra-delay fault (capacity untouched — the bandwidth
     detectors see nothing) breaches the bound; the tail-latency
     detector suspects the worst hop and opens a remediation case;
   - re-placement migrates the victim off the slow link and the
     measured post-remediation p99 returns under the bound, while a
     no-remediation baseline stays in violation.

   The verdict p99 is measured with a LOCAL sketch fed from
   instantaneous path latency over each phase window: the fabric's own
   sketches are cumulative by design (they are the detector's memory),
   so they keep the breach visible forever and cannot attest recovery. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module R = Ihnet_manager
open Common

let victim_rate = U.Units.gbytes_per_s 10.0
let req_rate = U.Units.gbytes_per_s 1.0
let req_bytes = 10_000.0
let slice = U.Units.us 20.0

(* The idle one-way latency of the victim's route, measured before any
   load — the bound is set to 4x that, generous enough that queueing
   under the experiment's modest load never trips it on its own. *)
let idle_latency host =
  let fab = Ihnet.Host.fabric host in
  let topo = E.Fabric.topology fab in
  let path =
    match
      T.Routing.shortest_path topo (device_id host "ext") (device_id host "socket0")
    with
    | Some p -> p
    | None -> failwith "E19: no ext->socket0 path"
  in
  E.Fabric.path_latency fab path

let slo_label host =
  match Ihnet.Host.manager host with
  | None -> "-"
  | Some mgr ->
    let r = R.Slo.check mgr in
    if r.R.Slo.violations > 0 then "VIOLATED"
    else if r.R.Slo.degraded > 0 then "degraded (explicit)"
    else "met"

(* Drive a request stream over the placement's current route for [dur],
   sampling instantaneous path latency into a fresh local sketch each
   slice. Requests re-read [p.path] every slice, so after a migration
   they follow the new route — the reconnecting-client model. Each
   request start and completion is a reallocation epoch feeding the
   fabric's always-on sketches. *)
let drive host (p : R.Placement.t) ~dur =
  let fab = Ihnet.Host.fabric host in
  let sk = U.Sketch.create () in
  let n = max 1 (int_of_float (dur /. slice)) in
  for _ = 1 to n do
    ignore
      (E.Fabric.start_flow fab ~tenant:1 ~demand:req_rate ~path:p.R.Placement.path
         ~size:(E.Flow.Bytes req_bytes) ());
    Ihnet.Host.run_for host slice;
    U.Sketch.record sk (E.Fabric.path_latency fab p.R.Placement.path)
  done;
  sk

type outcome = {
  label : string;
  bound : U.Units.ns;
  pre : float;
  faulted : float;
  post : float;
  detect : U.Units.ns option;
  recover : U.Units.ns option;
  state_fault : string;
  state_post : string;
}

let run_scenario ~remediate =
  let host = fresh_host () in
  let bound = 4.0 *. idle_latency host in
  let wiring =
    {
      Ihnet.Host.default_wiring with
      Ihnet.Host.heartbeat = false;
      latency_sketches = true;
    }
  in
  let mgr = Ihnet.Host.enable_manager host ~wiring () in
  let p =
    match
      Ihnet.Host.submit_intent host
        {
          (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:victim_rate) with
          R.Intent.p99_bound = Some bound;
        }
    with
    | Ok [ p ] -> p
    | Ok _ -> failwith "E19: expected one placement"
    | Error e -> failwith ("E19: admission refused: " ^ R.Mgr_error.to_string e)
  in
  let f =
    E.Fabric.start_flow (Ihnet.Host.fabric host) ~tenant:1 ~demand:victim_rate
      ~path:p.R.Placement.path ~size:E.Flow.Unbounded ()
  in
  ignore (R.Manager.attach mgr f);
  let rem =
    if remediate then
      Some
        (Ihnet.Host.enable_remediation host
           ~config:
             { R.Remediation.default_config with R.Remediation.use_fault_events = false }
           ~wiring ())
    else None
  in
  let pre_sk = drive host p ~dur:(U.Units.ms 2.0) in
  let bad =
    (List.nth p.R.Placement.path.T.Path.hops 1).T.Path.link.T.Link.id
  in
  let t0 = Ihnet.Host.now host in
  (* capacity untouched: purely a latency fault, silent to bandwidth *)
  E.Fabric.inject_fault (Ihnet.Host.fabric host) bad
    (E.Fault.degrade ~capacity_factor:1.0 ~extra_latency:(20.0 *. bound) ());
  let fault_sk = drive host p ~dur:(U.Units.ms 2.0) in
  let state_fault = slo_label host in
  (* give the escalation ladder (re-arbitrate backoffs, then re-place)
     room to land, then measure a clean window: the verdict is about
     the steady state after the loop, not the migration transient *)
  ignore (drive host p ~dur:(U.Units.ms 6.0));
  let post_sk = drive host p ~dur:(U.Units.ms 6.0) in
  let state_post = slo_label host in
  {
    label = (if remediate then "tail SLO + remediation (re-place)" else "no remediation (baseline)");
    bound;
    pre = U.Sketch.percentile pre_sk 0.99;
    faulted = U.Sketch.percentile fault_sk 0.99;
    post = U.Sketch.percentile post_sk 0.99;
    detect = Option.bind rem (fun r -> R.Remediation.time_to_detect r bad ~since:t0);
    recover = Option.bind rem (fun r -> R.Remediation.time_to_recover r bad);
    state_fault;
    state_post;
  }

let run () =
  let remediated = run_scenario ~remediate:true in
  let baseline = run_scenario ~remediate:false in
  let table =
    U.Table.create ~title:"E19: tail-latency SLO — measured p99 per phase vs bound"
      ~columns:
        [ "scenario"; "p99 bound"; "pre"; "under fault"; "after loop"; "detect"; "recover"; "SLO" ]
  in
  let t v = Format.asprintf "%a" U.Units.pp_time v in
  let opt_time = function Some v -> t v | None -> "-" in
  List.iter
    (fun o ->
      U.Table.add_row table
        [
          o.label;
          t o.bound;
          t o.pre;
          t o.faulted;
          t o.post;
          opt_time o.detect;
          opt_time o.recover;
          Printf.sprintf "%s -> %s" o.state_fault o.state_post;
        ])
    [ remediated; baseline ];
  let ok =
    remediated.pre <= remediated.bound
    && remediated.faulted > remediated.bound
    && remediated.post <= remediated.bound
    && remediated.detect <> None
    && remediated.recover <> None
    && remediated.state_post = "met"
    && baseline.faulted > baseline.bound
    && baseline.post > baseline.bound
    && baseline.state_post = "VIOLATED"
  in
  {
    id = "E19";
    title = "tail-latency SLO intents over latency sketches";
    claim =
      "predictable performance includes the latency tail: a p99 bound in the intent, observed \
       by always-on sketches, detected and remediated like any other SLO violation";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "latency-only fault breached the bound (p99 %s > %s) invisibly to bandwidth detectors; \
         sketch detector opened the case in %s and re-placement brought p99 back to %s (bound \
         %s) while the baseline stayed violated at %s — %s"
        (Format.asprintf "%a" U.Units.pp_time remediated.faulted)
        (Format.asprintf "%a" U.Units.pp_time remediated.bound)
        (match remediated.detect with
        | Some d -> Format.asprintf "%a" U.Units.pp_time d
        | None -> "(undetected)")
        (Format.asprintf "%a" U.Units.pp_time remediated.post)
        (Format.asprintf "%a" U.Units.pp_time remediated.bound)
        (Format.asprintf "%a" U.Units.pp_time baseline.post)
        (if ok then "matches the tail-latency management goal" else "MISMATCH");
  }
