module T = Ihnet_topology
module U = Ihnet_util

type result = {
  id : string;
  title : string;
  claim : string;
  tables : U.Table.t list;
  verdict : string;
}

let print_result r =
  Printf.printf "\n### %s — %s\n" r.id r.title;
  Printf.printf "paper: %s\n\n" r.claim;
  List.iter U.Table.print r.tables;
  Printf.printf "verdict: %s\n" r.verdict

let fresh_host ?(seed = 42) ?config () = Ihnet.Host.create ~seed ?config Ihnet.Host.Two_socket
let gb r = r /. 1e9

let device_id host name =
  match T.Topology.device_by_name (Ihnet.Host.topology host) name with
  | Some d -> d.T.Device.id
  | None -> failwith ("experiment: no device " ^ name)

let find_link host a b =
  let topo = Ihnet.Host.topology host in
  match T.Topology.links_between topo (device_id host a) (device_id host b) with
  | [ l ] -> l
  | [] -> failwith (Printf.sprintf "experiment: no link %s-%s" a b)
  | _ -> failwith (Printf.sprintf "experiment: ambiguous link %s-%s" a b)

let p50 h = U.Histogram.percentile h 0.5
let p99 h = U.Histogram.percentile h 0.99
