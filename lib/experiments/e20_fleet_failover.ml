(* E20 — victim tenant throughput through a host crash: fleet
   controller vs unmanaged.

   §3.1's management plane is usually argued one host at a time; this
   experiment measures what the cross-host half buys. A victim tenant
   holds a 2 Gb/s pipe guarantee and pushes one round-sized quantum of
   traffic per control round over whatever placement backs it. Twenty
   rounds in, the host under it loses power.

   - Unmanaged: nothing re-places the tenant. Its service drops to
     zero at the crash and stays there — even after the box powers
     back on, the placement died with the old incarnation.
   - Fleet controller: missed health reports mark the host lost after
     [unreachable_after] rounds, the tenant fails over to the
     least-loaded surviving host, and service resumes — the outage is
     the detection window plus one placement round-trip, not the rest
     of the run.

   Service is measured per round as delivered quanta: a bounded flow
   sized to [rate x round_len] is started on the backing placement's
   path and must reach [Completed] by the end of the round. *)

module E = Ihnet_engine
module U = Ihnet_util
module R = Ihnet_manager
module F = Ihnet_fleet
open Common

let rate = U.Units.gbps 2.0
let round_len = U.Units.us 100.0
let warm = 20 (* measured pre-crash rounds *)
let outage = 40 (* rounds the host stays down *)
let tail = 20 (* measured rounds after power-on *)
let victim = 1

let quantum = rate *. (round_len /. 1e9)
let intent i = R.Intent.pipe ~tenant:i ~src:"nic0" ~dst:"socket0" ~rate

(* The victim's backing placement on [host], if any. *)
let backing host =
  match Ihnet.Host.manager host with
  | None -> None
  | Some mgr ->
    List.find_map
      (fun (p : R.Placement.t) ->
        if p.R.Placement.tenant = victim then Some (host, p) else None)
      (R.Manager.placements mgr)

(* One measured round: push the quantum over the backing placement (if
   any), advance via [step], report whether it completed. *)
let serve back step =
  match back with
  | None ->
    step ();
    false
  | Some (host, (p : R.Placement.t)) ->
    let f =
      E.Fabric.start_flow (Ihnet.Host.fabric host) ~tenant:victim ~demand:(4.0 *. rate)
        ~path:p.R.Placement.path ~size:(E.Flow.Bytes quantum) ()
    in
    step ();
    f.E.Flow.state = E.Flow.Completed

type phase = { served : int; total : int }

type outcome = {
  label : string;
  pre : phase;
  during : phase;
  post : phase;
  failover : int option;  (** Rounds from crash to first served round. *)
}

let measure label ~back ~step ~crash ~restore =
  let count n back_at =
    let served = ref 0 in
    for _ = 1 to n do
      if serve (back_at ()) step then incr served
    done;
    { served = !served; total = n }
  in
  let pre = count warm back in
  crash ();
  let first_served = ref None in
  let served = ref 0 in
  for r = 1 to outage do
    if serve (back ()) step then begin
      incr served;
      if !first_served = None then first_served := Some r
    end
  done;
  let during = { served = !served; total = outage } in
  restore ();
  let post = count tail back in
  { label; pre; during; post; failover = !first_served }

let run_fleet () =
  let cfg = { F.Controller.default_config with F.Controller.round_len } in
  let t = F.Controller.create ~config:cfg ~seed:20 () in
  for i = 0 to 2 do
    F.Controller.spawn t ~preset:Ihnet.Host.Minimal (Printf.sprintf "host%d" i)
  done;
  for i = 1 to 3 do
    F.Controller.submit t (intent i)
  done;
  (* settle initial placement before the measured window opens *)
  F.Controller.run t ~rounds:5;
  let back () =
    List.find_map
      (fun l -> Option.bind (F.Controller.host t l) backing)
      (F.Controller.hosts t)
  in
  let home =
    match F.Controller.tenant_view t victim with
    | Some (F.Controller.Placed l) -> l
    | _ -> failwith "E20: victim not placed after settling"
  in
  measure "fleet controller (failover)" ~back
    ~step:(fun () -> F.Controller.round t)
    ~crash:(fun () -> F.Controller.crash t home)
    ~restore:(fun () -> F.Controller.restart t home)

let run_unmanaged () =
  let host = ref (Some (Ihnet.Host.create ~seed:20 ~domains:1 Ihnet.Host.Minimal)) in
  let place h =
    ignore (Ihnet.Host.enable_manager h ());
    match Ihnet.Host.submit_intent h (intent victim) with
    | Ok _ -> ()
    | Error e -> failwith ("E20: admission refused: " ^ R.Mgr_error.to_string e)
  in
  Option.iter place !host;
  let back () = Option.bind !host backing in
  measure "unmanaged host" ~back
    ~step:(fun () -> Option.iter (fun h -> Ihnet.Host.run_for h round_len) !host)
    ~crash:(fun () -> host := None)
    ~restore:(fun () ->
      (* the box powers back on as a fresh incarnation; nobody
         re-submits the tenant's intent *)
      host := Some (Ihnet.Host.create ~seed:21 ~domains:1 Ihnet.Host.Minimal))

let run () =
  let fleet = run_fleet () in
  let bare = run_unmanaged () in
  let table =
    U.Table.create ~title:"E20: victim service through a host crash (quanta delivered/rounds)"
      ~columns:[ "scenario"; "pre-crash"; "host down"; "after power-on"; "failover" ]
  in
  let ph p = Printf.sprintf "%d/%d" p.served p.total in
  List.iter
    (fun o ->
      U.Table.add_row table
        [
          o.label;
          ph o.pre;
          ph o.during;
          ph o.post;
          (match o.failover with
          | Some r -> Printf.sprintf "%d round(s)" r
          | None -> "never");
        ])
    [ fleet; bare ];
  let ok =
    fleet.pre.served = fleet.pre.total
    && fleet.during.served >= fleet.during.total - 10
    && fleet.post.served = fleet.post.total
    && fleet.failover <> None
    && bare.pre.served = bare.pre.total
    && bare.during.served = 0
    && bare.post.served = 0
  in
  {
    id = "E20";
    title = "cross-host failover through a host crash";
    claim =
      "a fleet-level control loop turns a host crash into a bounded service gap for its \
       tenants, where an unmanaged fleet turns it into a permanent outage";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "victim served %d/%d round(s) through the outage (back after %s) and %d/%d after \
         power-on under the controller, vs %d/%d and %d/%d unmanaged — %s"
        fleet.during.served fleet.during.total
        (match fleet.failover with
        | Some r -> Printf.sprintf "%d round(s)" r
        | None -> "never")
        fleet.post.served fleet.post.total bare.during.served bare.during.total bare.post.served
        bare.post.total
        (if ok then "matches the fleet-manageability goal" else "MISMATCH");
  }
