(* E14 — §3.2 "topology-aware resource scheduler" + §4 (BytePS [31]):
   "schedules the machine learning workload to reduce PCIe contention
   and improve communication among GPU workers."

   An 8-GPU ring allreduce on the DGX-like host. A socket-alternating
   ring crosses the single inter-socket link on most edges and
   congests it; a topology-aware ring (minimizing path cost) crosses
   it exactly twice. Same data, same GPUs, ~2-3x the allreduce
   bandwidth. *)

module T = Ihnet_topology
module E = Ihnet_engine
module U = Ihnet_util
module W = Ihnet_workload
open Common

let gpus = List.init 8 (fun i -> Printf.sprintf "gpu%d" i)

(* worst case: alternate sockets on every ring edge *)
let alternating = [ "gpu0"; "gpu4"; "gpu1"; "gpu5"; "gpu2"; "gpu6"; "gpu3"; "gpu7" ]

let run_ring host ring =
  let fab = Ihnet.Host.fabric host in
  let ar =
    W.Allreduce.start fab
      { W.Allreduce.tenant = 1; ring; data_bytes = U.Units.mib 256.0; iterations = 4 }
  in
  Ihnet.Host.run_until_idle host;
  let med = U.Histogram.percentile (W.Allreduce.iteration_times ar) 0.5 in
  let bw = W.Allreduce.algorithmic_bandwidth ar in
  (med, bw)

let inter_socket_crossings topo ring =
  let id name = (Option.get (T.Topology.device_by_name topo name)).T.Device.id in
  let ids = List.map id ring in
  let n = List.length ids in
  List.length
    (List.filteri
       (fun i _ ->
         let a = List.nth ids i and b = List.nth ids ((i + 1) mod n) in
         match T.Routing.shortest_path topo a b with
         | Some p ->
           List.exists
             (fun (l : T.Link.t) -> l.T.Link.kind = T.Link.Inter_socket)
             (T.Path.links p)
         | None -> false)
       ids)

let run () =
  let table =
    U.Table.create ~title:"E14: ring allreduce placement on the DGX-like host (8 GPUs, 256 MiB)"
      ~columns:
        [ "ring order"; "inter-socket crossings"; "iteration (median)"; "allreduce bandwidth" ]
  in
  let topo_probe = T.Builder.dgx_like () in
  let optimized = W.Allreduce.optimize_ring topo_probe gpus in
  let measure label ring =
    let host = Ihnet.Host.create Ihnet.Host.Dgx in
    let crossings = inter_socket_crossings (Ihnet.Host.topology host) ring in
    let med, bw = run_ring host ring in
    U.Table.add_row table
      [
        label;
        string_of_int crossings;
        Format.asprintf "%a" U.Units.pp_time med;
        Format.asprintf "%a" U.Units.pp_rate bw;
      ];
    (med, bw, crossings)
  in
  let _, bw_alt, cross_alt = measure "socket-alternating (worst)" alternating in
  let _, bw_naive, _ = measure "naive (gpu0..gpu7)" gpus in
  let _, bw_opt, cross_opt = measure "topology-aware (optimized)" optimized in
  let ok = cross_opt = 2 && cross_alt = 8 && bw_opt > bw_alt *. 1.5 && bw_opt >= bw_naive *. 0.99 in
  {
    id = "E14";
    title = "topology-aware collective placement";
    claim =
      "a topology-aware scheduler that places communication against the host topology \
       reduces contention and improves GPU communication (§3.2 scheduler, §4 BytePS)";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "optimized ring crosses the inter-socket link %d times vs %d and delivers %s vs %s \
         allreduce bandwidth — %s"
        cross_opt cross_alt
        (Format.asprintf "%a" U.Units.pp_rate bw_opt)
        (Format.asprintf "%a" U.Units.pp_rate bw_alt)
        (if ok then "matches the topology-aware scheduling claim" else "MISMATCH");
  }
