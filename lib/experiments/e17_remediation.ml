(* E17 — closing the management loop: detect → diagnose → act.

   §3.1 motivates with a silently degraded PCIe switch; §3.2 wants the
   manager to "dynamically adjust the allocation promptly". The
   remediation supervisor combines both: faults (announced or
   monitor-detected) open a case per suspect link, and actions escalate
   re-arbitrate → re-place → degrade with bounded retry and exponential
   backoff.

   Four scenarios on the two-socket host, victim pipe guaranteed
   10 GB/s, fault = capacity x0.05 on a link of the victim's path:

   - announced fault, alternate path exists: remediation migrates the
     placement (and its live flow) off the sick link and restores the
     full guarantee, while a no-remediation baseline stays collapsed;
   - no alternate path (GPU behind the one switch uplink): re-placement
     is impossible, so the supervisor shrinks the floor stepwise to
     what the residual capacity can honour and records an explicit
     Degraded verdict — never a silent violation — then restores the
     full floor when the fault clears;
   - silent fault: fabric announcements disabled as a detector; the
     heartbeat mesh localizes the sick link and its suspects open the
     case (time-to-detect is now the monitor's latency, not 0);
   - flapping link: the fault toggles every 1 ms; flap damping holds
     the case down instead of thrashing migrations on every toggle. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module R = Ihnet_manager
open Common

let victim_rate = U.Units.gbytes_per_s 10.0
let sick = E.Fault.degrade ~capacity_factor:0.05 ()

(* Instantaneous payload throughput of a tenant (robust across the
   flow migration that re-placement performs). *)
let tenant_rate host ~tenant =
  let fab = Ihnet.Host.fabric host in
  E.Fabric.refresh fab;
  List.fold_left
    (fun acc (f : E.Flow.t) ->
      if f.E.Flow.tenant = tenant && f.E.Flow.cls = E.Flow.Payload then acc +. f.E.Flow.rate
      else acc)
    0.0 (E.Fabric.active_flows fab)

let start_victim host ~src ~dst =
  let mgr = Ihnet.Host.enable_manager host () in
  let p =
    match Ihnet.Host.submit_intent host (R.Intent.pipe ~tenant:1 ~src ~dst ~rate:victim_rate) with
    | Ok [ p ] -> p
    | Ok _ -> failwith "E17: expected one placement"
    | Error e -> failwith ("E17: admission refused: " ^ R.Mgr_error.to_string e)
  in
  let f =
    E.Fabric.start_flow (Ihnet.Host.fabric host) ~tenant:1 ~demand:victim_rate
      ~path:p.R.Placement.path ~size:E.Flow.Unbounded ()
  in
  ignore (R.Manager.attach mgr f);
  p

let hop_link (p : R.Placement.t) n =
  (List.nth p.R.Placement.path.T.Path.hops n).T.Path.link.T.Link.id

type outcome = {
  label : string;
  pre : float;
  faulted : float;
  post : float;
  detect : U.Units.ns option;
  recover : U.Units.ns option;
  state : string;
  actions : int;
}

let slo_label host =
  match Ihnet.Host.manager host with
  | None -> "-"
  | Some mgr ->
    let r = R.Slo.check mgr in
    if r.R.Slo.violations > 0 then "VIOLATED"
    else if r.R.Slo.degraded > 0 then "degraded (explicit)"
    else "met"

(* Announced fault on ext->socket0; with vs without the supervisor. *)
let run_alternate_path ~remediate =
  let host = fresh_host () in
  let p = start_victim host ~src:"ext" ~dst:"socket0" in
  let rem =
    if remediate then Some
        (Ihnet.Host.enable_remediation host
           ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = false }
           ()) else None
  in
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let pre = tenant_rate host ~tenant:1 in
  let bad = hop_link p 1 in
  let t0 = Ihnet.Host.now host in
  E.Fabric.inject_fault (Ihnet.Host.fabric host) bad sick;
  Ihnet.Host.run_for host (U.Units.us 100.0);
  let faulted = tenant_rate host ~tenant:1 in
  Ihnet.Host.run_for host (U.Units.ms 10.0);
  let post = tenant_rate host ~tenant:1 in
  {
    label = (if remediate then "announced, alt path (re-place)" else "no remediation (baseline)");
    pre;
    faulted;
    post;
    detect = Option.bind rem (fun r -> R.Remediation.time_to_detect r bad ~since:t0);
    recover = Option.bind rem (fun r -> R.Remediation.time_to_recover r bad);
    state = slo_label host;
    actions = (match rem with Some r -> R.Remediation.actions_count r | None -> 0);
  }

(* gpu0 sits behind pciesw0's single uplink: no alternate path, so the
   ladder ends in graceful degradation; clearing the fault restores the
   full floor. *)
let run_degrade () =
  let host = fresh_host () in
  let p = start_victim host ~src:"gpu0" ~dst:"socket0" in
  let rem =
    Ihnet.Host.enable_remediation host
      ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = false }
      ()
  in
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let pre = tenant_rate host ~tenant:1 in
  let bad = hop_link p 1 in
  let t0 = Ihnet.Host.now host in
  E.Fabric.inject_fault (Ihnet.Host.fabric host) bad sick;
  Ihnet.Host.run_for host (U.Units.us 100.0);
  let faulted = tenant_rate host ~tenant:1 in
  Ihnet.Host.run_for host (U.Units.ms 20.0);
  let state_during = slo_label host in
  let post_degraded = tenant_rate host ~tenant:1 in
  E.Fabric.clear_fault (Ihnet.Host.fabric host) bad;
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let restored = tenant_rate host ~tenant:1 in
  ( {
      label = "no alt path (degrade floor)";
      pre;
      faulted;
      post = post_degraded;
      detect = R.Remediation.time_to_detect rem bad ~since:t0;
      recover = R.Remediation.time_to_recover rem bad;
      state = state_during;
      actions = R.Remediation.actions_count rem;
    },
    restored )

(* Fabric announcements disabled as a detector: only the heartbeat
   mesh's boolean tomography can open the case. *)
let run_silent () =
  let host = fresh_host () in
  let p = start_victim host ~src:"ext" ~dst:"socket0" in
  let config = { R.Remediation.default_config with R.Remediation.use_fault_events = false } in
  let rem = Ihnet.Host.enable_remediation host ~config () in
  Ihnet.Host.run_for host (U.Units.ms 10.0) (* heartbeat baseline warm-up *);
  let pre = tenant_rate host ~tenant:1 in
  let bad = hop_link p 1 in
  let t0 = Ihnet.Host.now host in
  E.Fabric.inject_fault (Ihnet.Host.fabric host) bad sick;
  Ihnet.Host.run_for host (U.Units.us 100.0);
  let faulted = tenant_rate host ~tenant:1 in
  Ihnet.Host.run_for host (U.Units.ms 20.0);
  let post = tenant_rate host ~tenant:1 in
  {
    label = "silent fault (heartbeat detects)";
    pre;
    faulted;
    post;
    detect = R.Remediation.time_to_detect rem bad ~since:t0;
    recover = R.Remediation.time_to_recover rem bad;
    state = slo_label host;
    actions = R.Remediation.actions_count rem;
  }

(* A link that toggles every 1 ms for 12 ms: without damping every
   toggle would trigger another migration attempt. *)
let run_flap () =
  let host = fresh_host () in
  let p = start_victim host ~src:"ext" ~dst:"socket0" in
  let rem =
    Ihnet.Host.enable_remediation host
      ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = false }
      ()
  in
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let pre = tenant_rate host ~tenant:1 in
  let bad = hop_link p 1 in
  let t0 = Ihnet.Host.now host in
  let toggles = 12 in
  E.Fabric.flap_link (Ihnet.Host.fabric host) bad sick ~period:(U.Units.ms 1.0) ~toggles;
  Ihnet.Host.run_for host (U.Units.ms 1.5);
  let faulted = tenant_rate host ~tenant:1 in
  Ihnet.Host.run_for host (U.Units.ms 28.5) (* flap ends clean at 12 ms, hold-down expires *);
  let post = tenant_rate host ~tenant:1 in
  let held =
    List.exists
      (fun (a : R.Remediation.action) ->
        String.length a.R.Remediation.detail >= 4 && String.sub a.R.Remediation.detail 0 4 = "flap")
      (R.Remediation.actions rem)
  in
  ( {
      label = Printf.sprintf "flapping link (%d toggles)" toggles;
      pre;
      faulted;
      post;
      detect = R.Remediation.time_to_detect rem bad ~since:t0;
      recover = R.Remediation.time_to_recover rem bad;
      state = slo_label host;
      actions = R.Remediation.actions_count rem;
    },
    held,
    toggles )

let run () =
  let remediated = run_alternate_path ~remediate:true in
  let baseline = run_alternate_path ~remediate:false in
  let degraded, restored = run_degrade () in
  let silent = run_silent () in
  let flapped, held, toggles = run_flap () in
  let table =
    U.Table.create ~title:"E17: fault remediation — time to detect/recover, victim throughput"
      ~columns:
        [ "scenario"; "pre"; "under fault"; "after loop"; "detect"; "recover"; "SLO"; "actions" ]
  in
  let opt_time = function
    | Some v -> Format.asprintf "%a" U.Units.pp_time v
    | None -> "-"
  in
  List.iter
    (fun o ->
      U.Table.add_row table
        [
          o.label;
          Format.asprintf "%a" U.Units.pp_rate o.pre;
          Format.asprintf "%a" U.Units.pp_rate o.faulted;
          Format.asprintf "%a" U.Units.pp_rate o.post;
          opt_time o.detect;
          opt_time o.recover;
          o.state;
          string_of_int o.actions;
        ])
    [ remediated; baseline; degraded; silent; flapped ];
  let restored_frac = remediated.post /. remediated.pre in
  let baseline_frac = baseline.post /. baseline.pre in
  let silent_frac = silent.post /. silent.pre in
  let ok =
    restored_frac >= 0.9 && baseline_frac <= 0.5 && silent_frac >= 0.9
    && degraded.state = "degraded (explicit)"
    && restored >= victim_rate *. 0.99
    && held
    && flapped.actions < toggles
  in
  {
    id = "E17";
    title = "self-healing: remediation vs baseline";
    claim =
      "a managed intra-host network should not just detect degradation but recover from it: \
       re-arbitrate, re-place, or degrade explicitly";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "remediated victim back to %.0f%% of pre-fault (baseline stuck at %.0f%%); silent fault \
         recovered via heartbeats to %.0f%%; no-alternate case degraded explicitly then restored \
         to %s on clear; flap damping held %d actions under %d toggles — %s"
        (100.0 *. restored_frac) (100.0 *. baseline_frac) (100.0 *. silent_frac)
        (Format.asprintf "%a" U.Units.pp_rate restored)
        flapped.actions toggles
        (if ok then "matches the self-healing goal" else "MISMATCH");
  }
