(* E6 — §3.1's motivating case: "a hardware failure occurring on the
   PCIe switch may silently cause the connected PCIe device to suffer
   performance degradation. ... This cannot be easily detected using
   performance counters only ... This can be addressed by having
   devices ... periodically send heartbeats to each other".

   Two silent faults on the switch's upstream link, each detected with
   (a) a counter pipeline — hardware-fidelity sampler + CUSUM on every
   PCIe link's utilization — and (b) the heartbeat mesh:

   - latency-only fault (+5 us, full capacity): the workload's rate is
     unchanged, so counters see nothing at all;
   - throughput fault (capacity x0.2): counters eventually alarm, but
     on every link the victim flows cross; heartbeats also alarm and
     localize to the faulty link (up to serial-link ambiguity). *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
open Common

type method_outcome = {
  detected : bool;
  latency : U.Units.ns; (* detection time after injection; nan if none *)
  localization : string;
}

let background host =
  (* steady load through the switch subtree at ~40% of the x16 slot *)
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let path =
    Option.get (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0"))
  in
  E.Fabric.start_flow fab ~tenant:1 ~demand:12e9 ~llc_target:true ~path ~size:E.Flow.Unbounded ()

let run_variant ~label ~fault =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  ignore (background host);
  (* counter pipeline *)
  let sampler =
    Mon.Sampler.start fab
      {
        (Mon.Sampler.default_config ()) with
        Mon.Sampler.period = U.Units.us 100.0;
        fidelity = Mon.Counter.Hardware { max_read_hz = 10_000.0 };
      }
  in
  let platform = Mon.Anomaly.create () in
  let pcie_links =
    List.filter
      (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Pcie _ -> true | _ -> false)
      (T.Topology.links topo)
  in
  List.iter
    (fun (l : T.Link.t) ->
      List.iter
        (fun dir ->
          Mon.Anomaly.watch platform
            ~series:(Mon.Sampler.util_series l.T.Link.id dir)
            (Mon.Anomaly.Cusum { drift = 0.5; threshold = 5.0 }))
        [ T.Link.Fwd; T.Link.Rev ])
    pcie_links;
  (* heartbeat mesh *)
  let hb = Mon.Heartbeat.start fab () in
  (* warm up both detectors *)
  Ihnet.Host.run_for host (U.Units.ms 10.0);
  Mon.Anomaly.feed platform (Mon.Sampler.telemetry sampler);
  Mon.Anomaly.clear_alarms platform;
  (* inject on the switch upstream link *)
  let bad_link = (find_link host "rp0.0" "pciesw0").T.Link.id in
  let t_inject = Ihnet.Host.now host in
  E.Fabric.inject_fault fab bad_link fault;
  (* observe for 20 ms, feeding the platform each ms *)
  let counter_alarm = ref None in
  for _ = 1 to 20 do
    Ihnet.Host.run_for host (U.Units.ms 1.0);
    Mon.Anomaly.feed platform (Mon.Sampler.telemetry sampler);
    if !counter_alarm = None then counter_alarm := Mon.Anomaly.first_alarm platform
  done;
  let counter_outcome =
    match !counter_alarm with
    | Some a ->
      let alarmed_series =
        List.sort_uniq compare
          (List.map (fun (x : Mon.Anomaly.alarm) -> x.Mon.Anomaly.series)
             (Mon.Anomaly.alarms platform))
      in
      {
        detected = true;
        latency = a.Mon.Anomaly.at -. t_inject;
        localization =
          Printf.sprintf "ambiguous: %d series alarmed" (List.length alarmed_series);
      }
    | None -> { detected = false; latency = nan; localization = "-" }
  in
  let hb_outcome =
    match Mon.Heartbeat.first_detection hb with
    | Some at when at >= t_inject ->
      let loc =
        match Mon.Heartbeat.localize hb with
        | [] -> "none"
        | suspects ->
          let top_score = (List.hd suspects).Mon.Heartbeat.score in
          let tops =
            List.filter (fun s -> s.Mon.Heartbeat.score >= top_score -. 1e-9) suspects
          in
          if List.exists (fun s -> s.Mon.Heartbeat.link = bad_link) tops then
            Printf.sprintf "correct (top group of %d serial links)" (List.length tops)
          else "WRONG link"
      in
      { detected = true; latency = at -. t_inject; localization = loc }
    | Some _ | None -> { detected = false; latency = nan; localization = "-" }
  in
  Mon.Heartbeat.stop hb;
  Mon.Sampler.stop sampler;
  (label, counter_outcome, hb_outcome)

let run () =
  let latency_fault =
    { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 }
  in
  let throughput_fault = E.Fault.degrade ~capacity_factor:0.2 () in
  let v1 = run_variant ~label:"latency-only fault (+5 us)" ~fault:latency_fault in
  let v2 = run_variant ~label:"throughput fault (capacity x0.2)" ~fault:throughput_fault in
  let table =
    U.Table.create ~title:"E6: silent PCIe switch degradation — counters vs heartbeats"
      ~columns:[ "fault"; "method"; "detected"; "detection latency"; "localization" ]
  in
  let add (label, counters, hb) =
    let row method_name (o : method_outcome) =
      U.Table.add_row table
        [
          label;
          method_name;
          (if o.detected then "yes" else "no");
          (if o.detected then Format.asprintf "%a" U.Units.pp_time o.latency else "-");
          o.localization;
        ]
    in
    row "hw counters + CUSUM" counters;
    row "heartbeat mesh" hb
  in
  add v1;
  add v2;
  let _, c1, h1 = v1 and _, c2, h2 = v2 in
  let ok = (not c1.detected) && h1.detected && h2.detected in
  {
    id = "E6";
    title = "failure detection: counters vs heartbeats";
    claim =
      "silent switch degradation 'cannot be easily detected using performance counters only'; \
       heartbeats detect and localize it";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "latency fault: counters %s, heartbeats detect in %s; throughput fault: counters %s \
         (no localization), heartbeats localize — %s"
        (if c1.detected then "detected (unexpected)" else "blind")
        (Format.asprintf "%a" U.Units.pp_time h1.latency)
        (if c2.detected then Format.asprintf "detect in %a" U.Units.pp_time c2.latency
         else "blind")
        (if ok then "matches the paper's claim" else "MISMATCH");
  }
