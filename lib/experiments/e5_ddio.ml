(* E5 — §2's DDIO thrashing: "due to the limited cache spaces and the
   high throughput direct write, these two devices can cause cache
   thrashing and the data are evicted from the cache before being
   consumed ... leads to more consumption of the intra-host network
   resources (e.g., memory bus bandwidth)".

   Sweep: one DDIO writer; two concurrent writers (nic0 + nic1, on
   different root ports so their aggregate exceeds the I/O ways'
   absorbing rate); and the two-writer case with DDIO disabled. We
   report LLC I/O-way hit rate and the induced memory-bus traffic. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
open Common

let writer host name =
  let topo = Ihnet.Host.topology host in
  let fab = Ihnet.Host.fabric host in
  let path =
    Option.get (T.Routing.shortest_path topo (device_id host name) (device_id host "socket0"))
  in
  E.Fabric.start_flow fab ~tenant:1 ~llc_target:true ~path ~size:E.Flow.Unbounded ()

let mem_bus_rate host =
  (* wire rate on the socket0 <-> mc links, both directions *)
  let fab = Ihnet.Host.fabric host in
  List.fold_left
    (fun acc mc ->
      let l = find_link host "socket0" mc in
      acc
      +. E.Fabric.link_rate fab l.T.Link.id T.Link.Fwd
      +. E.Fabric.link_rate fab l.T.Link.id T.Link.Rev)
    0.0 [ "mc0.0"; "mc0.1" ]

let observe host writers =
  let fab = Ihnet.Host.fabric host in
  let flows = List.map (writer host) writers in
  Ihnet.Host.run_for host (U.Units.ms 1.0);
  let write_rate = List.fold_left (fun acc (f : E.Flow.t) -> acc +. f.E.Flow.rate) 0.0 flows in
  let hit = E.Fabric.ddio_hit_rate fab ~socket:0 in
  let spill = E.Fabric.ddio_spill_rate fab ~socket:0 in
  let mem = mem_bus_rate host in
  List.iter (E.Fabric.stop_flow fab) flows;
  Ihnet.Host.run_for host (U.Units.ms 0.5);
  (write_rate, hit, spill, mem)

let run () =
  let table =
    U.Table.create ~title:"E5: DDIO cache thrashing and induced memory-bus traffic"
      ~columns:
        [ "scenario"; "ddio"; "DMA write rate"; "LLC io-way hit"; "induced mem traffic"; "mem-bus rate" ]
  in
  let add label ddio (w, h, s, m) =
    U.Table.add_row table
      [
        label;
        ddio;
        Printf.sprintf "%.1f GB/s" (gb w);
        Printf.sprintf "%.0f%%" (h *. 100.0);
        Printf.sprintf "%.1f GB/s" (gb s);
        Printf.sprintf "%.1f GB/s" (gb m);
      ]
  in
  let host = fresh_host () in
  let one = observe host [ "nic0" ] in
  add "one 200G NIC writing" "on" one;
  let two = observe host [ "nic0"; "nic1" ] in
  add "two 200G NICs writing" "on" two;
  let off_config = { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off } in
  let host_off = fresh_host ~config:off_config () in
  let off = observe host_off [ "nic0"; "nic1" ] in
  add "two 200G NICs writing" "off" off;
  let (_, h1, s1, _) = one and (_, h2, s2, _) = two and (_, _, s_off, _) = off in
  let ok = h1 > 0.95 && h2 < h1 -. 0.2 && s2 > s1 +. 1e9 in
  {
    id = "E5";
    title = "DDIO thrashing converts I/O writes into memory-bus traffic";
    claim =
      "one high-throughput device fits the dedicated LLC ways; two thrash them, and the \
       evicted data costs extra memory-bus bandwidth (write-back + re-read)";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "hit rate %.0f%% -> %.0f%% going from one to two writers; induced traffic %.1f -> %.1f \
         GB/s (ddio-off baseline: %.1f GB/s one-way) — %s"
        (h1 *. 100.0) (h2 *. 100.0) (gb s1) (gb s2) (gb s_off)
        (if ok then "matches the paper's claim" else "MISMATCH");
  }
