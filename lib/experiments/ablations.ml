(* Ablations of the design decisions DESIGN.md §4 calls out.

   A1 — load-dependent latency model: what a fixed-latency fabric model
        would miss about the paper's §2 interference stories.
   A2 — where the arbiter enforces (§3.2-Q2): in-fabric guarantees
        (floors, the "next-generation hardware" option) vs end-host-only
        rate caps on aggressors (what today's hosts can do).
   A3 — counter fidelity (§3.1-Q1): what root-cause analysis can say
        under hardware vs software vs oracle counters. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager
open Common

(* {1 A1 — latency model} *)

let run_a1 () =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let path =
    T.Path.concat
      (Option.get (T.Routing.shortest_path topo (device_id host "ext") (device_id host "nic0")))
      (Option.get
         (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0")))
  in
  let table =
    U.Table.create ~title:"A1: load-dependent vs fixed latency model (kv request path)"
      ~columns:[ "fabric state"; "fixed model (base only)"; "load-dependent model" ]
  in
  let row label =
    U.Table.add_row table
      [
        label;
        Format.asprintf "%a" U.Units.pp_time (T.Path.base_latency path);
        Format.asprintf "%a" U.Units.pp_time (E.Fabric.path_latency fab path);
      ]
  in
  row "idle";
  let lb = W.Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
  Ihnet.Host.run_for host (U.Units.ms 1.0);
  row "PCIe loopback aggressor";
  W.Rdma.stop_loopback lb;
  let idle_fixed = T.Path.base_latency path in
  let loaded = E.Fabric.path_latency fab path in
  ignore loaded;
  {
    id = "A1";
    title = "ablation: latency model";
    claim =
      "design choice: per-hop latency inflates with utilization (capped M/M/1 shape); a \
       fixed-latency model cannot express the paper's interference symptoms at all";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "the fixed model reads %s regardless of load — every latency result of E2/E3/E4/E8 \
         would collapse to a constant; the load-dependent model is load-bearing"
        (Format.asprintf "%a" U.Units.pp_time idle_fixed);
  }

(* {1 A2 — enforcement point} *)

let kv_p99 fab tenant =
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant ~nic:"nic0") in
  kv

let run_a2 () =
  let variant label setup =
    let host = fresh_host () in
    let fab = Ihnet.Host.fabric host in
    let kv = kv_p99 fab 1 in
    let ml =
      W.Mltrain.start fab
        {
          (W.Mltrain.default_config ~tenant:2 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
          W.Mltrain.compute_time = 0.0;
          loader_streams = 3;
        }
    in
    setup host fab;
    Ihnet.Host.run_for host (U.Units.ms 30.0);
    let result =
      ( label,
        p99 (W.Kvstore.latencies kv),
        W.Mltrain.iterations_done ml,
        E.Fabric.link_utilization fab (find_link host "rp0.0" "pciesw0").T.Link.id T.Link.Fwd )
    in
    W.Kvstore.stop kv;
    W.Mltrain.stop ml;
    result
  in
  let nothing _ _ = () in
  (* end-host-only: cap the aggressor's flows at its NIC-equivalent
     share; nothing protects the victim inside the fabric *)
  let endhost_caps _host fab =
    List.iter
      (fun (f : E.Flow.t) ->
        if f.E.Flow.tenant = 2 then E.Fabric.set_flow_limits fab f ~cap:4e9 ())
      (E.Fabric.active_flows fab)
  in
  (* in-fabric: the manager floors the victim's flows on every hop *)
  let in_fabric host fab =
    let mgr = R.Manager.create fab () in
    R.Manager.start_shim mgr ~period:(U.Units.us 50.0);
    let intent =
      {
        (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbps 4.0)) with
        R.Intent.targets =
          [
            R.Intent.Pipe { src = "ext"; dst = "socket0"; rate = U.Units.gbps 4.0 };
            R.Intent.Pipe { src = "socket0"; dst = "ext"; rate = U.Units.gbps 4.0 };
          ];
      }
    in
    (match R.Manager.submit mgr intent with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e));
    ignore host
  in
  let rows =
    [
      variant "no enforcement" nothing;
      variant "end-host caps on aggressor" endhost_caps;
      variant "in-fabric guarantees (floors)" in_fabric;
    ]
  in
  let table =
    U.Table.create ~title:"A2: enforcement point (kv victim + ml aggressor)"
      ~columns:[ "enforcement"; "kv p99"; "ml iterations"; "pcie upstream util" ]
  in
  List.iter
    (fun (label, p, iters, util) ->
      U.Table.add_row table
        [
          label;
          Format.asprintf "%a" U.Units.pp_time p;
          string_of_int iters;
          Printf.sprintf "%.0f%%" (util *. 100.0);
        ])
    rows;
  let p99_of i = match List.nth rows i with _, p, _, _ -> p in
  let iters_of i = match List.nth rows i with _, _, n, _ -> n in
  {
    id = "A2";
    title = "ablation: where the arbiter enforces (§3.2-Q2)";
    claim =
      "end-host rate caps (today's knob) throttle the aggressor without restoring the \
       victim's latency — the residual load still queues in the fabric; in-fabric floors \
       protect the victim while the aggressor keeps the leftover";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "kv p99: %s unprotected, %s with end-host caps (ml starved to %d iterations), %s \
         with in-fabric floors (ml keeps %d) — the shim needs fabric-level floors to be \
         work-conserving"
        (Format.asprintf "%a" U.Units.pp_time (p99_of 0))
        (Format.asprintf "%a" U.Units.pp_time (p99_of 1))
        (iters_of 1)
        (Format.asprintf "%a" U.Units.pp_time (p99_of 2))
        (iters_of 2);
  }

(* {1 A3 — counter fidelity} *)

let run_a3 () =
  let run_fidelity label fidelity =
    let host = fresh_host () in
    let fab = Ihnet.Host.fabric host in
    let topo = Ihnet.Host.topology host in
    let victim_path =
      T.Path.concat
        (Option.get (T.Routing.shortest_path topo (device_id host "ext") (device_id host "nic0")))
        (Option.get
           (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0")))
    in
    ignore
      (E.Fabric.start_flow fab ~tenant:1 ~demand:1e8 ~llc_target:true ~path:victim_path
         ~size:E.Flow.Unbounded ());
    let agg = W.Rdma.start_loopback fab ~tenant:7 ~nic:"nic0" () in
    Ihnet.Host.run_for host (U.Units.ms 1.0);
    let counter = Mon.Counter.create fab ~fidelity in
    let before = Mon.Rootcause.snapshot counter ~tenants:[ 1; 7 ] in
    Ihnet.Host.run_for host (U.Units.ms 5.0);
    let after = Mon.Rootcause.snapshot counter ~tenants:[ 1; 7 ] in
    let culprits = Mon.Rootcause.diagnose counter ~before ~after ~victim_path in
    let congested =
      match culprits with c :: _ -> c.Mon.Rootcause.utilization > 0.9 | [] -> false
    in
    let aggressor = Mon.Rootcause.top_aggressor culprits in
    let induced_visible =
      match culprits with
      | c :: _ -> List.mem_assoc (-1) c.Mon.Rootcause.contributors
      | [] -> false
    in
    W.Rdma.stop_loopback agg;
    (label, congested, aggressor, induced_visible)
  in
  let rows =
    [
      run_fidelity "hardware (PCM-like)" (Mon.Counter.Hardware { max_read_hz = 10_000.0 });
      run_fidelity "software interception" Mon.Counter.Software;
      run_fidelity "oracle" Mon.Counter.Oracle;
    ]
  in
  let table =
    U.Table.create ~title:"A3: root-cause analysis under each counter fidelity (loopback aggressor)"
      ~columns:[ "fidelity"; "congestion found"; "aggressor named"; "induced traffic visible" ]
  in
  List.iter
    (fun (label, congested, aggressor, induced) ->
      U.Table.add_row table
        [
          label;
          (if congested then "yes" else "no");
          (match aggressor with Some (tn, _) -> Printf.sprintf "tenant %d" tn | None -> "no");
          (if induced then "yes" else "no");
        ])
    rows;
  let named i = match List.nth rows i with _, _, a, _ -> a <> None in
  let ok = (not (named 0)) && named 1 && named 2 in
  {
    id = "A3";
    title = "ablation: counter fidelity (§3.1-Q1)";
    claim =
      "hardware counters detect congestion but cannot attribute it; per-tenant attribution \
       needs software interception — 'almost none of today's hardware counters supports \
       accurate per-tenant monitoring'";
    tables = [ table ];
    verdict =
      (if ok then
         "hardware fidelity sees the congested hop but names nobody; software/oracle name \
          tenant 7 — matches the paper's Q1 analysis"
       else "MISMATCH");
  }
