(* E13 — §2 on CXL (citing Sharma [49] and DirectCXL [21]):
   "Compute Express Link (CXL) exposes memory in devices as remote
   memory in a NUMA system, and it enables devices to directly access
   host local memory through a cache coherence interface. These
   features provide a more flexible memory model and reduce the
   overhead (e.g., with a latency of ~150ns from device to host
   memory)."

   We attach a CXL.mem expander below socket 0's root complex and
   compare a device's access to host DRAM over the coherent CXL fabric
   against the PCIe DMA path:

   - CXL access ≈ the one-way path latency (a coherent load/store
     completes without the DMA request/completion protocol);
   - a PCIe DMA read pays a full round trip (request TLP out,
     completion back) plus IOMMU translation.

   We also check the "remote memory in a NUMA system" framing: the CPU
   reaching the expander's media vs reaching the other socket's DRAM. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
open Common

(* DDR media latency behind the expander's controller (the device-side
   cost CXL.mem adds on top of fabric hops). *)
let media_latency = 60.0

let one_way fab topo a b =
  let path = Option.get (T.Routing.shortest_path topo a b) in
  (E.Fabric.path_latency fab path, path)

let run () =
  let topo = T.Builder.two_socket_with_cxl () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
  let table =
    U.Table.create ~title:"E13: CXL vs PCIe access paths (idle host)"
      ~columns:[ "access"; "mechanism"; "latency"; "paper says" ]
  in
  (* 1. device -> host DRAM over CXL: one-way coherent store *)
  let cxl_to_dram, _ = one_way fab topo (dev "cxl0") (dev "dimm0.0.0") in
  U.Table.add_row table
    [
      "cxl0 -> host DRAM";
      "coherent CXL.mem store";
      Format.asprintf "%a" U.Units.pp_time cxl_to_dram;
      "~150 ns";
    ];
  (* 2. the same reach over PCIe DMA: round trip + translation *)
  let nic_path_lat, _ = one_way fab topo (dev "nic0") (dev "dimm0.0.0") in
  let pcie_read = 2.0 *. nic_path_lat in
  U.Table.add_row table
    [
      "nic0 -> host DRAM (read)";
      "PCIe DMA round trip";
      Format.asprintf "%a" U.Units.pp_time pcie_read;
      "higher than CXL";
    ];
  (* 3. CPU -> CXL expander media: the remote-NUMA framing *)
  let cpu_to_cxl, _ = one_way fab topo (dev "socket0") (dev "cxl0") in
  let cpu_to_cxl = cpu_to_cxl +. media_latency in
  U.Table.add_row table
    [
      "socket0 -> cxl0 media";
      "CXL.mem load (remote NUMA)";
      Format.asprintf "%a" U.Units.pp_time cpu_to_cxl;
      "like a NUMA hop";
    ];
  (* 4. reference: CPU -> other socket's DRAM *)
  let cpu_remote_dram, _ = one_way fab topo (dev "socket0") (dev "dimm1.0.0") in
  U.Table.add_row table
    [
      "socket0 -> socket1 DRAM";
      "inter-socket NUMA access";
      Format.asprintf "%a" U.Units.pp_time cpu_remote_dram;
      "(reference)";
    ];
  (* 5. bandwidth: the expander's link feeds memory at PHY rate *)
  let bw = Ihnet_monitor.Diagnostics.perf_now fab ~src:"cxl0" ~dst:"dimm0.0.0" in
  U.Table.add_row table
    [
      "cxl0 -> host DRAM";
      "sustained bandwidth";
      Format.asprintf "%a" U.Units.pp_rate bw;
      "gen5 x8 PHY (~32 GB/s)";
    ];
  let ok =
    cxl_to_dram >= 130.0 && cxl_to_dram <= 170.0
    && pcie_read > 2.5 *. cxl_to_dram
    && Float.abs (cpu_to_cxl -. cpu_remote_dram) < 150.0
  in
  {
    id = "E13";
    title = "CXL reduces intra-host access overhead";
    claim =
      "CXL gives devices coherent access to host memory at ~150 ns and exposes device memory \
       as remote NUMA (§2, citing [49])";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "device->host-DRAM over CXL: %s (paper: ~150 ns); the PCIe DMA read path costs %s; \
         CPU->expander media (%s) sits in the same band as a NUMA hop (%s) — %s"
        (Format.asprintf "%a" U.Units.pp_time cxl_to_dram)
        (Format.asprintf "%a" U.Units.pp_time pcie_read)
        (Format.asprintf "%a" U.Units.pp_time cpu_to_cxl)
        (Format.asprintf "%a" U.Units.pp_time cpu_remote_dram)
        (if ok then "matches the paper's numbers" else "MISMATCH");
  }
