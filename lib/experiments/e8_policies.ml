(* E8 — §3.2: the compile-schedule-arbitrate scheme "allows the
   intra-host networks to eliminate performance interference and
   deliver predictable performance based on the applications' intent";
   existing knobs (RDT-style) are "limited point solutions".

   The KV-vs-ML co-location of E4 is replayed under three policies:
   no management, an RDT-like static memory-bandwidth partition, and
   the holistic manager with a 4 Gb/s end-to-end pipe intent for the
   KV tenant. *)

module E = Ihnet_engine
module U = Ihnet_util
module W = Ihnet_workload
module R = Ihnet_manager
open Common

let kv_tenant = 1
let ml_tenant = 2

let run_policy label make_policy =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let policy, cleanup = make_policy fab in
  let handle = R.Policy.install fab policy ~period:(U.Units.us 50.0) in
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:kv_tenant ~nic:"nic0") in
  let ml =
    W.Mltrain.start fab
      {
        (W.Mltrain.default_config ~tenant:ml_tenant ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
        W.Mltrain.compute_time = 0.0;
        loader_streams = 3;
      }
  in
  Ihnet.Host.run_for host (U.Units.ms 40.0);
  let lat = W.Kvstore.latencies kv in
  let stats =
    ( label,
      p50 lat,
      p99 lat,
      W.Kvstore.achieved_rate kv /. W.Kvstore.offered_rate kv,
      W.Mltrain.iterations_done ml )
  in
  W.Kvstore.stop kv;
  W.Mltrain.stop ml;
  R.Policy.uninstall handle;
  cleanup ();
  stats

let run () =
  let no_mgmt fab =
    ignore fab;
    (R.Policy.No_management, fun () -> ())
  in
  let static fab =
    ignore fab;
    (R.Policy.Static_partition { tenants = [ kv_tenant; ml_tenant ] }, fun () -> ())
  in
  let holistic fab =
    let mgr = R.Manager.create fab () in
    (* protect both directions of the kv service end to end *)
    let intent =
      {
        (R.Intent.pipe ~tenant:kv_tenant ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbps 4.0)) with
        R.Intent.targets =
          [
            R.Intent.Pipe { src = "ext"; dst = "socket0"; rate = U.Units.gbps 4.0 };
            R.Intent.Pipe { src = "socket0"; dst = "ext"; rate = U.Units.gbps 4.0 };
          ];
      }
    in
    (match R.Manager.submit mgr intent with
    | Ok _ -> ()
    | Error e -> failwith ("E8: intent rejected: " ^ R.Mgr_error.to_string e));
    (R.Policy.Holistic mgr, fun () -> R.Manager.revoke mgr ~tenant:kv_tenant)
  in
  let rows =
    [
      run_policy "no management" no_mgmt;
      run_policy "static partition (RDT-like)" static;
      run_policy "holistic manager" holistic;
    ]
  in
  let table =
    U.Table.create
      ~title:"E8: co-location interference under three management policies (kv + ml trainer)"
      ~columns:[ "policy"; "kv p50"; "kv p99"; "kv offered load served"; "ml iterations" ]
  in
  List.iter
    (fun (label, a, b, served, iters) ->
      U.Table.add_row table
        [
          label;
          Format.asprintf "%a" U.Units.pp_time a;
          Format.asprintf "%a" U.Units.pp_time b;
          Printf.sprintf "%.0f%%" (served *. 100.0);
          string_of_int iters;
        ])
    rows;
  let p99_of i = match List.nth rows i with _, _, v, _, _ -> v in
  let served_of i = match List.nth rows i with _, _, _, v, _ -> v in
  let iters_of i = match List.nth rows i with _, _, _, _, v -> v in
  let ok =
    p99_of 2 < p99_of 0 /. 2.0 (* holistic at least halves tail latency *)
    && served_of 2 > 0.98 (* and serves the full offered load *)
    && iters_of 2 > 0 (* while the trainer still progresses *)
    && p99_of 1 > p99_of 2 (* the point solution is not enough *)
  in
  {
    id = "E8";
    title = "holistic management eliminates interference";
    claim =
      "point solutions (RDT-like memory partitioning) mitigate only one component; the \
       compile-schedule-arbitrate manager delivers predictable end-to-end performance";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "kv p99: no-mgmt %s, static %s, holistic %s — %s"
        (Format.asprintf "%a" U.Units.pp_time (p99_of 0))
        (Format.asprintf "%a" U.Units.pp_time (p99_of 1))
        (Format.asprintf "%a" U.Units.pp_time (p99_of 2))
        (if ok then "holistic wins, point solution does not (matches paper)" else "MISMATCH");
  }
