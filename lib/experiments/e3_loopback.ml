(* E3 — §2, citing Collie [31]: "an RDMA loopback traffic can exhaust
   the PCIe bandwidth and causes the application to suffer from PCIe
   congestion".

   Victim: an inbound RDMA stream ext -> nic0 -> memory. Aggressor: a
   loopback on the same NIC. We report the victim's throughput and
   latency with and without the aggressor. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
open Common

let victim_path host =
  let topo = Ihnet.Host.topology host in
  let p1 =
    Option.get (T.Routing.shortest_path topo (device_id host "ext") (device_id host "nic0"))
  in
  let p2 =
    Option.get (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0"))
  in
  T.Path.concat p1 p2

let run () =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let path = victim_path host in
  (* the victim is an application with a fixed offered load (20 GB/s of
     inbound RDMA), not an elastic sink — so its latency reading is not
     polluted by saturating its own path *)
  let victim =
    E.Fabric.start_flow fab ~tenant:1 ~demand:20e9 ~llc_target:true ~path ~size:E.Flow.Unbounded ()
  in
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let rate_alone = victim.E.Flow.rate in
  let lat_alone = E.Fabric.path_latency fab ~payload_bytes:512 path in
  let lb = W.Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let rate_busy = victim.E.Flow.rate in
  let lat_busy = E.Fabric.path_latency fab ~payload_bytes:512 path in
  let agg_rate = W.Rdma.loopback_rate lb in
  W.Rdma.stop_loopback lb;
  Ihnet.Host.run_for host (U.Units.ms 1.0);
  let rate_recovered = victim.E.Flow.rate in
  let lat_recovered = E.Fabric.path_latency fab ~payload_bytes:512 path in
  E.Fabric.stop_flow fab victim;
  let table =
    U.Table.create ~title:"E3: RDMA loopback exhausting PCIe bandwidth"
      ~columns:[ "phase"; "victim throughput"; "victim path latency"; "aggressor rate" ]
  in
  let row phase rate lat agg =
    U.Table.add_row table
      [
        phase;
        Printf.sprintf "%.1f GB/s" (gb rate);
        Format.asprintf "%a" U.Units.pp_time lat;
        (if agg = 0.0 then "-" else Printf.sprintf "%.1f GB/s" (gb agg));
      ]
  in
  row "victim alone (20 GB/s offered)" rate_alone lat_alone 0.0;
  row "with loopback aggressor" rate_busy lat_busy agg_rate;
  row "aggressor stopped" rate_recovered lat_recovered 0.0;
  let drop = 1.0 -. (rate_busy /. rate_alone) in
  let ok = drop > 0.2 && lat_busy > lat_alone *. 2.0 && rate_recovered > rate_alone *. 0.95 in
  {
    id = "E3";
    title = "RDMA loopback exhausts PCIe bandwidth";
    claim = "loopback traffic can exhaust PCIe bandwidth; co-located apps suffer PCIe congestion";
    tables = [ table ];
    verdict =
      Printf.sprintf "victim lost %.0f%% throughput and latency rose %.1fx under loopback — %s"
        (drop *. 100.0) (lat_busy /. lat_alone)
        (if ok then "matches the paper's claim" else "MISMATCH");
  }
