(* E1 — reproduce Figure 1's capacity / basic-latency table.

   For each link class we drive an elastic probe across a representative
   link (ihperf), read the wire rate the link sustains, and take the
   zero-load latency from ihtrace. Paper ranges are from Figure 1. *)

module T = Ihnet_topology
module E = Ihnet_engine
module U = Ihnet_util
module Mon = Ihnet_monitor
open Common

type row = {
  cls : int;
  label : string;
  probe : string * string; (* src dev, dst dev for the elastic probe *)
  watch : string * string; (* link endpoints whose wire rate we read *)
  paper_cap : string;
  cap_lo : float; (* acceptance band, bytes/s wire *)
  cap_hi : float;
  paper_lat : string;
  lat_lo : float;
  lat_hi : float;
}

let rows =
  [
    {
      cls = 1;
      label = "inter-socket connect";
      probe = ("socket0", "socket1");
      watch = ("socket0", "socket1");
      paper_cap = "20-72 GB/s";
      cap_lo = 20e9;
      cap_hi = 72e9;
      paper_lat = "130-220 ns";
      lat_lo = 130.0;
      lat_hi = 220.0;
    }
  ]

(* Class 2 (intra-socket / memory) is an aggregate: all channels of one
   socket driven in parallel. Handled separately below. *)

let measure_link_rate host (a, b) =
  let link = find_link host a b in
  let fab = Ihnet.Host.fabric host in
  Float.max
    (E.Fabric.link_rate fab link.T.Link.id T.Link.Fwd)
    (E.Fabric.link_rate fab link.T.Link.id T.Link.Rev)

let probe_and_measure host (src, dst) watch =
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let path =
    match T.Routing.shortest_path topo (device_id host src) (device_id host dst) with
    | Some p -> p
    | None -> failwith "E1: no probe path"
  in
  let flow =
    E.Fabric.start_flow fab ~tenant:1 ~cls:E.Flow.Probe ~path ~size:E.Flow.Unbounded ()
  in
  Ihnet.Host.run_for host (U.Units.ms 1.0);
  let rate = measure_link_rate host watch in
  E.Fabric.stop_flow fab flow;
  rate

let base_latency_of host (a, b) = (find_link host a b).T.Link.base_latency

let memory_aggregate host =
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let dimms =
    T.Topology.find_devices topo (fun d ->
        (match d.T.Device.kind with T.Device.Dimm _ -> true | _ -> false)
        && d.T.Device.socket = 0)
  in
  let sock = device_id host "socket0" in
  let flows =
    List.map
      (fun (d : T.Device.t) ->
        let path = Option.get (T.Routing.shortest_path topo sock d.T.Device.id) in
        E.Fabric.start_flow fab ~tenant:1 ~cls:E.Flow.Probe ~path ~size:E.Flow.Unbounded ())
      dimms
  in
  Ihnet.Host.run_for host (U.Units.ms 1.0);
  let total = List.fold_left (fun acc (f : E.Flow.t) -> acc +. f.E.Flow.rate) 0.0 flows in
  List.iter (E.Fabric.stop_flow fab) flows;
  total

let run () =
  let host = fresh_host () in
  let table =
    U.Table.create ~title:"E1 / Figure 1: capacity and basic latency per link class"
      ~columns:
        [ "class"; "link"; "paper capacity"; "measured"; "paper latency"; "measured"; "ok" ]
  in
  let ok = ref true in
  let add_row ~cls ~label ~cap ~(band : float * float) ~lat ~(lat_band : float * float)
      ~paper_cap ~paper_lat =
    let cap_lo, cap_hi = band and lat_lo, lat_hi = lat_band in
    let fits = cap >= cap_lo && cap <= cap_hi && lat >= lat_lo && lat <= lat_hi in
    if not fits then ok := false;
    U.Table.add_row table
      [
        Printf.sprintf "(%d)" cls;
        label;
        paper_cap;
        Printf.sprintf "%.1f GB/s" (gb cap);
        paper_lat;
        Printf.sprintf "%.0f ns" lat;
        (if fits then "yes" else "NO");
      ]
  in
  (* class 1 *)
  List.iter
    (fun r ->
      let cap = probe_and_measure host r.probe r.watch in
      let lat = base_latency_of host r.watch in
      add_row ~cls:r.cls ~label:r.label ~cap ~band:(r.cap_lo, r.cap_hi) ~lat
        ~lat_band:(r.lat_lo, r.lat_hi) ~paper_cap:r.paper_cap ~paper_lat:r.paper_lat)
    rows;
  (* class 2: aggregate of one socket's memory system; latency of one
     mesh+channel traversal *)
  let cap2 = memory_aggregate host in
  let lat2 =
    base_latency_of host ("socket0", "mc0.0") +. base_latency_of host ("mc0.0", "dimm0.0.0")
  in
  add_row ~cls:2 ~label:"intra-socket connect (memory)" ~cap:cap2 ~band:(100e9, 200e9) ~lat:lat2
    ~lat_band:(2.0, 110.0) ~paper_cap:"100-200 GB/s" ~paper_lat:"2-110 ns";
  (* class 3: switch upstream x16 *)
  let cap3 = probe_and_measure host ("nic0", "socket0") ("rp0.0", "pciesw0") in
  let lat3 = base_latency_of host ("rp0.0", "pciesw0") in
  add_row ~cls:3 ~label:"pcie switch upstream x16" ~cap:cap3 ~band:(U.Units.gbps 220.0, U.Units.gbps 260.0)
    ~lat:lat3 ~lat_band:(30.0, 120.0) ~paper_cap:"~256 Gbps" ~paper_lat:"30-120 ns";
  (* class 4: switch downstream x16 *)
  let cap4 = probe_and_measure host ("gpu0", "ssd0") ("pciesw0", "gpu0") in
  let lat4 = base_latency_of host ("pciesw0", "gpu0") in
  add_row ~cls:4 ~label:"pcie switch downstream x16" ~cap:cap4
    ~band:(U.Units.gbps 220.0, U.Units.gbps 260.0) ~lat:lat4 ~lat_band:(30.0, 120.0)
    ~paper_cap:"~256 Gbps" ~paper_lat:"30-120 ns";
  (* class 5: inter-host (probe from gpu0 so the route exits via nic0,
     the NIC under the same switch) *)
  let cap5 = probe_and_measure host ("gpu0", "ext") ("nic0", "ext") in
  let lat5 = base_latency_of host ("nic0", "ext") in
  add_row ~cls:5 ~label:"inter-host network" ~cap:cap5
    ~band:(U.Units.gbps 180.0, U.Units.gbps 210.0) ~lat:lat5 ~lat_band:(0.0, 2000.0)
    ~paper_cap:"~200 Gbps" ~paper_lat:"<2 us";
  {
    id = "E1";
    title = "Figure 1 link classes";
    claim =
      "capacity/latency of link classes (1)-(5): 20-72 GB/s @130-220ns, 100-200 GB/s @2-110ns, \
       ~256 Gbps @30-120ns (x2), ~200 Gbps @<2us";
    tables = [ table ];
    verdict =
      (if !ok then "all five classes measured inside the paper's ranges"
       else "MISMATCH: some class fell outside the paper's range");
  }
