(* E11 — §3.2-Q1: "If work-conserving should or can be supported also
   remains unknown."

   Two tenants hold equal 10 GB/s guarantees on the same PCIe subtree;
   tenant B is idle half the time (on/off). Under strict reservations
   (floor = cap) B's idle capacity is wasted; work-conserving floors let
   A borrow it and return it within one arbitration period when B
   comes back. We report A's throughput, fabric utilization, and B's
   guarantee compliance while active. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module R = Ihnet_manager
open Common

let guarantee = 10e9

let run_mode ~work_conserving =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let topo = Ihnet.Host.topology host in
  let mgr = R.Manager.create fab () in
  R.Manager.start_shim mgr ~period:(U.Units.us 50.0);
  let intent tenant =
    {
      (R.Intent.pipe ~tenant ~src:"ext" ~dst:"socket0" ~rate:guarantee) with
      R.Intent.work_conserving;
    }
  in
  (match R.Manager.submit mgr (intent 1) with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e));
  (match R.Manager.submit mgr (intent 2) with Ok _ -> () | Error e -> failwith (R.Mgr_error.to_string e));
  let path =
    T.Path.concat
      (Option.get (T.Routing.shortest_path topo (device_id host "ext") (device_id host "nic0")))
      (Option.get
         (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0")))
  in
  (* tenant A: always-on elastic; tenant B: 50% duty cycle, 2 ms period *)
  let a = E.Fabric.start_flow fab ~tenant:1 ~llc_target:true ~path ~size:E.Flow.Unbounded () in
  let b_active = ref None in
  let b_rates = ref [] and a_rates = ref [] in
  let sim = Ihnet.Host.sim host in
  let rec b_cycle on _ =
    (match (on, !b_active) with
    | true, None ->
      b_active :=
        Some (E.Fabric.start_flow fab ~tenant:2 ~llc_target:true ~path ~size:E.Flow.Unbounded ())
    | false, Some f ->
      E.Fabric.stop_flow fab f;
      b_active := None
    | _ -> ());
    E.Sim.schedule sim ~after:(U.Units.ms 1.0) (b_cycle (not on))
  in
  E.Sim.schedule sim ~after:0.0 (b_cycle true);
  (* sample rates every 100 us for 20 ms *)
  for _ = 1 to 200 do
    Ihnet.Host.run_for host (U.Units.us 100.0);
    a_rates := a.E.Flow.rate :: !a_rates;
    match !b_active with
    | Some f when f.E.Flow.state = E.Flow.Running -> b_rates := f.E.Flow.rate :: !b_rates
    | _ -> ()
  done;
  let mean xs = U.Stats.mean (Array.of_list xs) in
  let a_mean = mean !a_rates in
  let b_mean = mean !b_rates in
  (* B's guarantee compliance while active *)
  let b_ok =
    let violations = List.filter (fun r -> r < guarantee *. 0.95) !b_rates in
    1.0 -. (float_of_int (List.length violations) /. float_of_int (max 1 (List.length !b_rates)))
  in
  (a_mean, b_mean, b_ok)

let run () =
  let a_strict, b_strict, ok_strict = run_mode ~work_conserving:false in
  let a_wc, b_wc, ok_wc = run_mode ~work_conserving:true in
  let table =
    U.Table.create ~title:"E11: strict reservation vs work-conserving guarantees"
      ~columns:
        [ "mode"; "tenant A mean rate"; "tenant B mean rate (active)"; "B guarantee compliance" ]
  in
  let add label a b ok =
    U.Table.add_row table
      [
        label;
        Printf.sprintf "%.1f GB/s" (gb a);
        Printf.sprintf "%.1f GB/s" (gb b);
        Printf.sprintf "%.0f%%" (ok *. 100.0);
      ]
  in
  add "strict (floor = cap)" a_strict b_strict ok_strict;
  add "work-conserving" a_wc b_wc ok_wc;
  let ok = a_wc > a_strict *. 1.3 && ok_wc > 0.9 && ok_strict > 0.9 in
  {
    id = "E11";
    title = "work-conserving guarantees";
    claim =
      "whether work-conserving sharing can be supported is open (Q1); it should lift \
       utilization without breaking guarantees";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "work-conserving lifts tenant A from %.1f to %.1f GB/s while B keeps its guarantee \
         %.0f%% of the time — %s"
        (gb a_strict) (gb a_wc) (ok_wc *. 100.0)
        (if ok then "work-conserving is viable (answers Q1 affirmatively)" else "MISMATCH");
  }
