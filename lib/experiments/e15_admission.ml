(* E15 — §3.2: "The arbiter should dynamically adjust the allocation
   promptly when applications come and go to avoid interference and
   poor resource utilization."

   Tenants arrive as a Poisson process (mean every 2 ms), each asking
   for a 6 GB/s hose at a random NIC, running at its guarantee for an
   exponential lifetime (mean 10 ms), then leaving. The scheduler's
   headroom decides how much of each link is reservable. Sweep it:
   admit more (high headroom) and the fabric runs hotter — latency for
   everyone rises; admit less and capacity idles. The table is the
   capacity-planning trade-off an operator actually tunes. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module R = Ihnet_manager
open Common

let nics = [| "nic0"; "nic1"; "nic2" |]
let guarantee = 6e9
let duration = U.Units.ms 60.0

type outcome = {
  arrived : int;
  admitted : int;
  mean_probe_latency : float;
  violations : int;
}

let run_headroom headroom =
  let host = fresh_host ~seed:7 () in
  let fab = Ihnet.Host.fabric host in
  let sim = Ihnet.Host.sim host in
  let topo = Ihnet.Host.topology host in
  let mgr = R.Manager.create fab ~headroom () in
  R.Manager.start_shim mgr ~period:(U.Units.us 50.0);
  let rng = U.Rng.create 23 in
  let arrived = ref 0 and admitted = ref 0 and violations = ref 0 in
  let next_tenant = ref 1 in
  let probe_path =
    T.Path.concat
      (Option.get (T.Routing.shortest_path topo (device_id host "ext") (device_id host "nic0")))
      (Option.get
         (T.Routing.shortest_path topo (device_id host "nic0") (device_id host "socket0")))
  in
  let latencies = U.Stats.Online.create () in
  (* tenant arrivals *)
  let rec arrival _ =
    if E.Sim.now sim < duration then begin
      incr arrived;
      let tenant = !next_tenant in
      incr next_tenant;
      let nic = nics.(U.Rng.int rng (Array.length nics)) in
      (match
         R.Manager.submit mgr (R.Intent.hose ~tenant ~endpoint:nic ~to_host:guarantee ~from_host:0.0)
       with
      | Ok _ ->
        incr admitted;
        let path =
          Option.get
            (T.Routing.shortest_path topo (device_id host nic) (device_id host "socket0"))
        in
        let flow =
          E.Fabric.start_flow fab ~tenant ~demand:guarantee ~llc_target:true ~path
            ~size:E.Flow.Unbounded ()
        in
        (* departure after an exponential lifetime *)
        E.Sim.schedule sim ~after:(U.Rng.exponential rng (U.Units.ms 10.0)) (fun _ ->
            (* check the guarantee held at departure *)
            if flow.E.Flow.state = E.Flow.Running && flow.E.Flow.rate < guarantee *. 0.98 then
              incr violations;
            E.Fabric.stop_flow fab flow;
            R.Manager.revoke mgr ~tenant)
      | Error _ -> ());
      E.Sim.schedule sim ~after:(U.Rng.exponential rng (U.Units.ms 2.0)) arrival
    end
  in
  E.Sim.schedule sim ~after:0.0 arrival;
  (* latency probe every 500 us *)
  E.Sim.every sim ~period:(U.Units.us 500.0) ~until:duration (fun _ ->
      U.Stats.Online.add latencies (E.Fabric.path_latency fab ~payload_bytes:512 probe_path));
  Ihnet.Host.run_for host duration;
  R.Manager.stop_shim mgr;
  {
    arrived = !arrived;
    admitted = !admitted;
    mean_probe_latency = U.Stats.Online.mean latencies;
    violations = !violations;
  }

let run () =
  let table =
    U.Table.create
      ~title:"E15: admission under tenant churn vs scheduler headroom (6 GB/s hoses, 60 ms)"
      ~columns:
        [ "headroom"; "arrived"; "admitted"; "admit %"; "mean probe latency"; "guarantee violations" ]
  in
  let outcomes =
    List.map
      (fun headroom ->
        let o = run_headroom headroom in
        U.Table.add_row table
          [
            Printf.sprintf "%.0f%%" (headroom *. 100.0);
            string_of_int o.arrived;
            string_of_int o.admitted;
            Printf.sprintf "%.0f%%" (100.0 *. float_of_int o.admitted /. float_of_int o.arrived);
            Format.asprintf "%a" U.Units.pp_time o.mean_probe_latency;
            string_of_int o.violations;
          ];
        (headroom, o))
      [ 0.5; 0.7; 0.9; 1.0 ]
  in
  let get h = List.assoc h outcomes in
  let low = get 0.5 and high = get 1.0 in
  let ok =
    high.admitted > low.admitted
    && high.mean_probe_latency > low.mean_probe_latency
    (* guarantees must hold wherever slack exists; at 100% headroom the
       scheduler has none left for protocol overheads, and violations
       become possible — which is the reason headroom exists *)
    && List.for_all (fun (h, o) -> h >= 1.0 || o.violations = 0) outcomes
  in
  {
    id = "E15";
    title = "admission vs headroom under churn";
    claim =
      "the arbiter adjusts as applications come and go; the reservable headroom trades \
       admission rate against latency slack — and is what keeps guarantees feasible";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "headroom 50%% admits %d/%d at %s mean latency; 100%% admits %d/%d at %s but books \
         the fabric so full that %d guarantee(s) slip — %s"
        low.admitted low.arrived
        (Format.asprintf "%a" U.Units.pp_time low.mean_probe_latency)
        high.admitted high.arrived
        (Format.asprintf "%a" U.Units.pp_time high.mean_probe_latency)
        high.violations
        (if ok then
           "admission and latency trade cleanly, and over-booking is visible exactly where \
            expected (matches the §3.2 arbiter story)"
         else "MISMATCH");
  }
