(* E2 — §1/§2: "the microsecond-level intra-host latency can become a
   main contributor to the end-to-end latency".

   A remote RDMA access entering through nic0 toward host memory
   traverses classes (5),(4),(3),(2) of Figure 1; we decompose its
   one-way latency hop by hop, idle and under PCIe congestion, and
   report the intra-host share. *)

module U = Ihnet_util
module W = Ihnet_workload
open Common

let breakdown_table host ~title =
  let fab = Ihnet.Host.fabric host in
  let hops = W.Rdma.remote_read_breakdown fab ~nic:"nic0" ~target:"dimm0.0.0" in
  let table =
    U.Table.create ~title ~columns:[ "hop"; "figure-1 class"; "latency" ]
  in
  List.iter
    (fun (h : W.Rdma.hop_breakdown) ->
      U.Table.add_row table
        [
          h.W.Rdma.label;
          (match h.W.Rdma.figure1_class with Some c -> Printf.sprintf "(%d)" c | None -> "-");
          Format.asprintf "%a" U.Units.pp_time h.W.Rdma.latency;
        ])
    hops;
  let total = List.fold_left (fun acc (h : W.Rdma.hop_breakdown) -> acc +. h.W.Rdma.latency) 0.0 hops in
  let share = W.Rdma.intra_host_share fab ~nic:"nic0" ~target:"dimm0.0.0" in
  U.Table.add_row table
    [ "TOTAL one-way"; ""; Format.asprintf "%a" U.Units.pp_time total ];
  U.Table.add_row table
    [ "intra-host share"; ""; Printf.sprintf "%.0f%%" (share *. 100.0) ];
  (table, share)

let run () =
  let host = fresh_host () in
  let idle_table, idle_share = breakdown_table host ~title:"E2a: remote read latency, idle host" in
  (* congest the PCIe subtree with a loopback aggressor *)
  let lb = W.Rdma.start_loopback (Ihnet.Host.fabric host) ~tenant:2 ~nic:"nic0" () in
  Ihnet.Host.run_for host (U.Units.ms 2.0);
  let busy_table, busy_share =
    breakdown_table host ~title:"E2b: same path under PCIe congestion (loopback aggressor)"
  in
  W.Rdma.stop_loopback lb;
  let sane = idle_share > 0.1 && idle_share < 0.6 && busy_share > idle_share in
  {
    id = "E2";
    title = "intra-host share of end-to-end latency";
    claim =
      "intra-host latency is sub-us to a few us and 'no longer negligible'; under congestion \
       the intra-host network 'can even be the bottleneck'";
    tables = [ idle_table; busy_table ];
    verdict =
      Printf.sprintf
        "idle: intra-host = %.0f%% of one-way latency; congested: %.0f%% — %s"
        (idle_share *. 100.0) (busy_share *. 100.0)
        (if sane then "matches the paper's claim" else "MISMATCH");
  }
