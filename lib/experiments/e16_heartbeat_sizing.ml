(* E16 — §3.1: heartbeats "similar to works like Pingmesh" meet the Q2
   cost question: how often should devices probe each other?

   Sweep the probe period. Faster rounds detect a silent fault sooner
   but burn more fabric bandwidth on probe traffic (all-pairs mesh over
   11 endpoints = 110 paths). The fault appears at 20 ms: a silent
   +5 µs on the switch uplink. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
open Common

let run_period period =
  let host = fresh_host () in
  let fab = Ihnet.Host.fabric host in
  let hb =
    Mon.Heartbeat.start fab
      ~config:{ (Mon.Heartbeat.default_config ()) with Mon.Heartbeat.period }
      ()
  in
  (* warm-up must cover the baseline-learning rounds at every period *)
  let warm = 10.0 *. period in
  Ihnet.Host.run_for host warm;
  let probe_rate = Mon.Heartbeat.probe_wire_bytes hb /. (warm /. 1e9) in
  let bad = (find_link host "rp0.0" "pciesw0").T.Link.id in
  let t_inject = Ihnet.Host.now host in
  E.Fabric.inject_fault fab bad
    { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 };
  Ihnet.Host.run_for host (5.0 *. period);
  let detection =
    match Mon.Heartbeat.first_detection hb with
    | Some at when at >= t_inject -> at -. t_inject
    | Some _ | None -> nan
  in
  Mon.Heartbeat.stop hb;
  (probe_rate, detection)

let run () =
  let table =
    U.Table.create
      ~title:"E16: heartbeat probe period vs detection latency and probe overhead"
      ~columns:[ "probe period"; "probe traffic (all pairs)"; "detection latency" ]
  in
  let rows =
    List.map
      (fun period ->
        let rate, detection = run_period period in
        U.Table.add_row table
          [
            Format.asprintf "%a" U.Units.pp_time period;
            Format.asprintf "%a" U.Units.pp_rate rate;
            (if Float.is_nan detection then "not detected"
             else Format.asprintf "%a" U.Units.pp_time detection);
          ];
        (period, rate, detection))
      [ U.Units.us 100.0; U.Units.ms 1.0; U.Units.ms 10.0 ]
  in
  let _, fast_rate, fast_det = List.nth rows 0 in
  let _, slow_rate, slow_det = List.nth rows 2 in
  let ok =
    fast_det < slow_det
    && fast_rate > slow_rate *. 50.0
    && fast_det <= U.Units.us 200.0
    && List.for_all (fun (_, _, d) -> not (Float.is_nan d)) rows
  in
  {
    id = "E16";
    title = "heartbeat sizing";
    claim =
      "device-to-device heartbeats detect silent failures; their period trades detection \
       latency against the probes' own fabric footprint (§3.1 + Q2)";
    tables = [ table ];
    verdict =
      Printf.sprintf
        "100 us rounds detect in %s costing %s of probes; 10 ms rounds cost %s but need %s — %s"
        (Format.asprintf "%a" U.Units.pp_time fast_det)
        (Format.asprintf "%a" U.Units.pp_rate fast_rate)
        (Format.asprintf "%a" U.Units.pp_rate slow_rate)
        (Format.asprintf "%a" U.Units.pp_time slow_det)
        (if ok then "the probing budget buys detection speed (matches §3.1)" else "MISMATCH");
  }
