(** The experiment registry: id → runner. *)

val all : (string * (unit -> Common.result)) list
(** In order E1 … E11. *)

val find : string -> (unit -> Common.result) option
(** Case-insensitive lookup by id ("e4", "E4"). *)

val run_all : unit -> Common.result list
(** Run every experiment, printing each result as it completes. *)
