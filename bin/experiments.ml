(* Experiment runner: regenerates every table of EXPERIMENTS.md.

   Usage:
     dune exec bin/experiments.exe            # run everything
     dune exec bin/experiments.exe -- e4 e8   # run a subset
     dune exec bin/experiments.exe -- --list  *)

let list_experiments () =
  List.iter (fun (id, _) -> print_endline id) Ihnet_experiments.Registry.all

let save_csvs out_dir (r : Ihnet_experiments.Common.result) =
  match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i table ->
        let path =
          Filename.concat dir
            (Printf.sprintf "%s%s.csv" (String.lowercase_ascii r.Ihnet_experiments.Common.id)
               (if i = 0 then "" else Printf.sprintf "-%d" (i + 1)))
        in
        let oc = open_out path in
        output_string oc (Ihnet_util.Table.to_csv table);
        close_out oc)
      r.Ihnet_experiments.Common.tables

let run_ids out_dir ids =
  let failures = ref [] in
  List.iter
    (fun id ->
      match Ihnet_experiments.Registry.find id with
      | Some run ->
        let r = run () in
        Ihnet_experiments.Common.print_result r;
        save_csvs out_dir r
      | None ->
        Printf.eprintf "unknown experiment %S (use --list)\n" id;
        failures := id :: !failures)
    ids;
  if !failures <> [] then exit 1

open Cmdliner

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E16, A1..A3); all when omitted.")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Also write each table as CSV into DIR.")

let main list_flag out_dir ids =
  if list_flag then list_experiments ()
  else if ids = [] then
    List.iter (save_csvs out_dir) (Ihnet_experiments.Registry.run_all ())
  else run_ids out_dir ids

let cmd =
  let doc = "regenerate the ihnet paper-reproduction experiment tables" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const main $ list_arg $ out_arg $ ids_arg)

let () = exit (Cmd.eval cmd)
